#include "cell/cell_library.hpp"

#include <cstdio>
#include <map>
#include <mutex>
#include <numeric>
#include <utility>

#include "core/gate_delay.hpp"
#include "core/gate_parametrize.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/hybrid_gate_channel.hpp"
#include "sim/inertial.hpp"
#include "spice/cells.hpp"
#include "spice/characterize.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/text.hpp"

namespace charlie::cell {

namespace {

struct CellInfo {
  const char* name;
  sim::GateKind kind;
  int arity;
  bool hybrid;
};

constexpr CellInfo kRegistry[] = {
    {"INV", sim::GateKind::kInv, 1, false},
    {"BUF", sim::GateKind::kBuf, 1, false},
    {"AND2", sim::GateKind::kAnd2, 2, false},
    {"OR2", sim::GateKind::kOr2, 2, false},
    {"XOR2", sim::GateKind::kXor2, 2, false},
    {"NAND2", sim::GateKind::kNand2, 2, true},
    {"NOR2", sim::GateKind::kNor2, 2, true},
    {"NAND3", sim::GateKind::kNand3, 3, true},
    {"NOR3", sim::GateKind::kNor3, 3, true},
};

using util::to_upper_ascii;

spice::CellKind spice_cell(const std::string& name) {
  if (name == "NOR2") return spice::CellKind::kNor2;
  if (name == "NOR3") return spice::CellKind::kNor3;
  if (name == "NAND2") return spice::CellKind::kNand2;
  CHARLIE_ASSERT_MSG(name == "NAND3", "not a substrate cell");
  return spice::CellKind::kNand3;
}

core::GateTopology topology_of(const std::string& name) {
  return name.starts_with("NAND") ? core::GateTopology::kNandLike
                                  : core::GateTopology::kNorLike;
}

// --- process-wide characterization memo ----------------------------------
// Keyed by (technology fingerprint, cell name): the measure+fit pipeline --
// the expensive part -- runs at most once per key per process, and every
// library built for the same technology shares one mode table per cell.

struct FittedCell {
  core::GateParams params;
  std::shared_ptr<const core::GateModeTables> tables;
};

std::mutex g_cache_mutex;

std::map<std::pair<std::string, std::string>, FittedCell>& fit_cache() {
  static std::map<std::pair<std::string, std::string>, FittedCell> cache;
  return cache;
}

std::map<std::string, spice::InverterDelays>& inverter_cache() {
  static std::map<std::string, spice::InverterDelays> cache;
  return cache;
}

std::map<std::string, long>& run_counts() {
  static std::map<std::string, long> counts;
  return counts;
}

// Per-direction SIS summary of a hybrid cell: the average of the model's
// per-input single-input-switching delays (a SIS channel cannot see which
// input switched), pure delay included.
struct RiseFall {
  double rise = 0.0;
  double fall = 0.0;
};

RiseFall average_sis_delays(const FittedCell& cell) {
  const core::GateSisDelays d =
      core::gate_characteristic_delays(*cell.tables);
  const double dmin = cell.params.delta_min;
  auto mean = [](const std::vector<double>& v) {
    return std::accumulate(v.begin(), v.end(), 0.0) /
           static_cast<double>(v.size());
  };
  return {mean(d.rise) + dmin, mean(d.fall) + dmin};
}

// Assemble the full spec list from the four fitted hybrid cells plus the
// inverter delays; the remaining SIS cells are documented compositions.
std::vector<CellSpec> build_specs(
    const std::map<std::string, FittedCell>& fitted, double inv_rise,
    double inv_fall) {
  const RiseFall nand2 = average_sis_delays(fitted.at("NAND2"));
  const RiseFall nor2 = average_sis_delays(fitted.at("NOR2"));

  std::vector<CellSpec> specs;
  for (const auto& info : kRegistry) {
    CellSpec spec;
    spec.name = info.name;
    spec.kind = info.kind;
    spec.arity = info.arity;
    spec.hybrid = info.hybrid;
    if (info.hybrid) {
      const FittedCell& cell = fitted.at(info.name);
      spec.params = cell.params;
      spec.tables = cell.tables;
    } else if (spec.name == "INV") {
      spec.rise_delay = inv_rise;
      spec.fall_delay = inv_fall;
    } else if (spec.name == "BUF") {
      // Two inverters back to back: either output edge traverses one
      // falling and one rising inverter stage.
      spec.rise_delay = inv_fall + inv_rise;
      spec.fall_delay = inv_fall + inv_rise;
    } else if (spec.name == "AND2") {
      // NAND2 + INV: the AND output rises when the NAND output falls.
      spec.rise_delay = nand2.fall + inv_rise;
      spec.fall_delay = nand2.rise + inv_fall;
    } else if (spec.name == "OR2") {
      // NOR2 + INV, same duality.
      spec.rise_delay = nor2.fall + inv_rise;
      spec.fall_delay = nor2.rise + inv_fall;
    } else {
      CHARLIE_ASSERT(spec.name == "XOR2");
      // Four-NAND2 realization, three NAND2 stages on the critical path.
      const double stage = 0.5 * (nand2.rise + nand2.fall);
      spec.rise_delay = 3.0 * stage;
      spec.fall_delay = 3.0 * stage;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

// --- CellSpec -------------------------------------------------------------

std::unique_ptr<sim::GateChannel> CellSpec::make_mis_channel() const {
  CHARLIE_ASSERT_MSG(hybrid && tables != nullptr,
                     "cell library: not a hybrid MIS cell");
  return std::make_unique<sim::HybridGateChannel>(tables);
}

std::unique_ptr<sim::SisChannel> CellSpec::make_sis_channel() const {
  CHARLIE_ASSERT_MSG(!hybrid, "cell library: not a SIS cell");
  return std::make_unique<sim::InertialChannel>(rise_delay, fall_delay);
}

CellArcTable CellSpec::arc_table() const {
  CellArcTable arcs;
  if (hybrid) {
    CHARLIE_ASSERT_MSG(tables != nullptr, "cell library: hybrid cell "
                                          "without mode tables");
    core::GateArcEnvelope env = core::gate_arc_envelope(*tables);
    arcs.output_rise = std::move(env.rise);
    arcs.output_fall = std::move(env.fall);
    // The event channel applies the pure delay to every input switch before
    // the mode change; arcs carry the total input-to-crossing time.
    for (double& d : arcs.output_rise) d += params.delta_min;
    for (double& d : arcs.output_fall) d += params.delta_min;
  } else {
    arcs.output_rise.assign(static_cast<std::size_t>(arity), rise_delay);
    arcs.output_fall.assign(static_cast<std::size_t>(arity), fall_delay);
  }
  return arcs;
}

// --- CellLibrary ----------------------------------------------------------

const std::vector<std::string>& CellLibrary::cell_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& info : kRegistry) out.emplace_back(info.name);
    return out;
  }();
  return names;
}

CellLibrary CellLibrary::characterize(const spice::Technology& tech) {
  tech.validate();
  const std::string fp = tech.fingerprint();
  std::map<std::string, FittedCell> fitted;
  spice::InverterDelays inv;
  {
    // The lock covers the pipeline runs too: concurrent characterize()
    // calls for the same technology wait instead of duplicating the run.
    std::lock_guard<std::mutex> lock(g_cache_mutex);
    for (const auto& info : kRegistry) {
      if (!info.hybrid) continue;
      const std::string name = info.name;
      auto it = fit_cache().find({fp, name});
      if (it == fit_cache().end()) {
        // Run the pipeline fully before inserting: a throw (e.g. a SPICE
        // convergence failure) must not leave a half-built cache entry
        // behind for later calls to trip over.
        // The spice/core layers sit below obs, so the characterization
        // pipeline is instrumented here at the cell seam: one span per
        // stage, labeled with the cell being characterized.
        spice::GateSisTargets measured;
        {
          obs::ScopedSpan obs_span("cell.measure");
          obs_span.label(name);
          measured = spice::measure_gate_targets(tech, spice_cell(name));
        }
        core::GateTargets targets;
        targets.fall = measured.fall;
        targets.rise = measured.rise;
        targets.fall_all = measured.fall_all;
        targets.rise_all = measured.rise_all;
        core::GateFitOptions opts;
        opts.vdd = tech.vdd;
        opts.nelder_mead_evaluations = 1500;
        core::GateFitResult fit;
        {
          obs::ScopedSpan obs_span("cell.fit");
          obs_span.label(name);
          fit = core::fit_gate_params(topology_of(name), targets, opts);
        }
        FittedCell cell;
        cell.params = fit.params;
        cell.tables = core::GateModeTables::make(fit.params);
        it = fit_cache().emplace(std::pair{fp, name}, std::move(cell)).first;
        ++run_counts()[name];
      }
      fitted[name] = it->second;
    }
    auto it = inverter_cache().find(fp);
    if (it == inverter_cache().end()) {
      const spice::InverterDelays measured =
          spice::measure_inverter_delays(tech);
      it = inverter_cache().emplace(fp, measured).first;
      ++run_counts()["INV"];
    }
    inv = it->second;
  }
  CellLibrary lib;
  lib.fingerprint_ = fp;
  lib.specs_ = build_specs(fitted, inv.rise, inv.fall);
  return lib;
}

CellLibrary CellLibrary::reference() {
  std::map<std::string, FittedCell> fitted;
  const std::pair<const char*, core::GateParams> cells[] = {
      {"NOR2", core::GateParams::nor2_reference()},
      {"NOR3", core::GateParams::nor3_reference()},
      {"NAND2", core::GateParams::nand2_reference()},
      {"NAND3", core::GateParams::nand3_reference()},
  };
  for (const auto& [name, params] : cells) {
    FittedCell cell;
    cell.params = params;
    cell.tables = core::GateModeTables::make(params);
    fitted[name] = std::move(cell);
  }
  CellLibrary lib;
  // Paper-regime inverter: a touch faster than the NOR2 SIS delays, rising
  // edge slower than falling (weaker pMOS), as in the substrate.
  lib.specs_ = build_specs(fitted, /*inv_rise=*/24e-12, /*inv_fall=*/18e-12);
  return lib;
}

CellLibrary CellLibrary::at_corner(const core::ProcessPoint& point) const {
  point.validate();
  if (corner_ != core::ProcessPoint::nominal().fingerprint()) {
    throw ConfigError(
        "cell library: at_corner requires a nominal library (corners do not "
        "compose)");
  }
  if (point.is_nominal()) return *this;

  // The SIS delay scale needs the technology supply; every library carries
  // hybrid cells, whose fitted vdd is that supply.
  double vdd_nominal = 0.0;
  for (const auto& spec : specs_) {
    if (spec.hybrid) {
      vdd_nominal = spec.params.vdd;
      break;
    }
  }
  CHARLIE_ASSERT_MSG(vdd_nominal > 0.0, "library without hybrid cells");
  const double s = point.resistance_scale(vdd_nominal);

  CellLibrary lib;
  lib.fingerprint_ = fingerprint_;
  lib.corner_ = point.fingerprint();
  lib.specs_ = specs_;
  for (auto& spec : lib.specs_) {
    if (spec.hybrid) {
      spec.params = spec.params.derive_for(point);
      // Corner tables are memoized like the nominal fit (keyed by cell +
      // tech + corner fingerprints) so concurrent libraries at the same
      // corner share one table per cell. Reference libraries (empty tech
      // fingerprint) skip the memo: their derivation is already instant.
      if (!fingerprint_.empty()) {
        const std::string key =
            fingerprint_ + "\x1f" + lib.corner_;
        std::lock_guard<std::mutex> lock(g_cache_mutex);
        auto it = fit_cache().find({key, spec.name});
        if (it == fit_cache().end()) {
          FittedCell cell;
          cell.params = spec.params;
          cell.tables = core::GateModeTables::make(spec.params);
          it = fit_cache().emplace(std::pair{key, spec.name}, std::move(cell))
                   .first;
          // No run_counts() bump: the SPICE pipeline did not run.
        }
        spec.tables = it->second.tables;
      } else {
        spec.tables = core::GateModeTables::make(spec.params);
      }
    } else {
      spec.rise_delay *= s;
      spec.fall_delay *= s;
    }
  }
  return lib;
}

CellLibrary CellLibrary::characterize_at(const spice::Technology& tech,
                                         const core::ProcessPoint& point) {
  return characterize(tech).at_corner(point);
}

CellLibrary CellLibrary::characterize_cached(const std::string& csv_path,
                                             const spice::Technology& tech) {
  return characterize_cached(csv_path, tech, core::ProcessPoint::nominal());
}

CellLibrary CellLibrary::characterize_cached(const std::string& csv_path,
                                             const spice::Technology& tech,
                                             const core::ProcessPoint& point) {
  try {
    CellLibrary lib = load_csv(csv_path);
    if (lib.fingerprint_ == tech.fingerprint() &&
        lib.corner_ == point.fingerprint()) {
      return lib;
    }
  } catch (const ConfigError&) {
    // Missing, stale, or malformed cache: fall through and regenerate.
  }
  CellLibrary lib = characterize_at(tech, point);
  try {
    lib.save_csv(csv_path);
  } catch (const ConfigError&) {
    // An unwritable cache path degrades to characterize-per-process (the
    // in-memory memo still applies); it must not discard the library.
  }
  return lib;
}

void CellLibrary::save_csv(const std::string& path) const {
  util::CsvWriter w(path, {"cell", "field", "index", "value"});
  // Schema version first: load_csv requires an exact match, so files from
  // an older schema (or written before versioning existed) regenerate
  // instead of silently loading with missing fields.
  w.row_text({"_format", "version", "0", std::to_string(kCsvFormatVersion)});
  w.row_text({"_tech", "fingerprint", "0", fingerprint_});
  w.row_text({"_corner", "fingerprint", "0", corner_});
  for (const auto& spec : specs_) {
    if (spec.hybrid) {
      const core::GateParams& p = spec.params;
      w.row_text({spec.name, "topology", "0",
                  p.topology == core::GateTopology::kNandLike ? "1" : "0"});
      for (std::size_t i = 0; i < p.r_series.size(); ++i) {
        w.row_text({spec.name, "r_series", std::to_string(i),
                    format_value(p.r_series[i])});
      }
      for (std::size_t i = 0; i < p.r_parallel.size(); ++i) {
        w.row_text({spec.name, "r_parallel", std::to_string(i),
                    format_value(p.r_parallel[i])});
      }
      w.row_text({spec.name, "c_int", "0", format_value(p.c_int)});
      w.row_text({spec.name, "c_out", "0", format_value(p.c_out)});
      w.row_text({spec.name, "vdd", "0", format_value(p.vdd)});
      w.row_text({spec.name, "delta_min", "0", format_value(p.delta_min)});
    } else {
      w.row_text({spec.name, "rise", "0", format_value(spec.rise_delay)});
      w.row_text({spec.name, "fall", "0", format_value(spec.fall_delay)});
    }
  }
}

CellLibrary CellLibrary::load_csv(const std::string& path) {
  const std::string text = util::read_text_file(path);

  // cell -> field -> index -> value text. The value is everything after the
  // third comma, so the fingerprint may contain any separator but a comma.
  std::map<std::string, std::map<std::string, std::map<long, std::string>>>
      rows;
  int line_no = 0;
  std::size_t pos = 0;
  auto fail = [&](const std::string& why) -> void {
    throw ConfigError("cell library " + path + ":" +
                      std::to_string(line_no) + ": " + why);
  };
  while (pos < text.size()) {
    const auto eol = text.find('\n', pos);
    std::string line = eol == std::string::npos
                           ? text.substr(pos)
                           : text.substr(pos, eol - pos);
    pos = eol == std::string::npos ? text.size() : eol + 1;
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line_no == 1) {
      if (line != "cell,field,index,value") fail("bad header");
      continue;
    }
    const auto c1 = line.find(',');
    const auto c2 = c1 == std::string::npos ? c1 : line.find(',', c1 + 1);
    const auto c3 = c2 == std::string::npos ? c2 : line.find(',', c2 + 1);
    if (c3 == std::string::npos) fail("expected cell,field,index,value");
    const std::string cell = line.substr(0, c1);
    const std::string field = line.substr(c1 + 1, c2 - c1 - 1);
    const long index = util::parse_long_field(
        line.substr(c2 + 1, c3 - c2 - 1), path + " index");
    if (!rows[cell][field].emplace(index, line.substr(c3 + 1)).second) {
      fail("duplicate entry " + cell + "/" + field + "[" +
           std::to_string(index) + "]");
    }
  }

  auto lookup = [&rows, &path](const std::string& cell,
                               const std::string& field,
                               long index) -> const std::string& {
    const auto ci = rows.find(cell);
    if (ci != rows.end()) {
      const auto fi = ci->second.find(field);
      if (fi != ci->second.end()) {
        const auto ii = fi->second.find(index);
        if (ii != fi->second.end()) return ii->second;
      }
    }
    throw ConfigError("cell library " + path + ": missing " + cell + "/" +
                      field + "[" + std::to_string(index) + "]");
  };
  auto number = [&](const std::string& cell, const std::string& field,
                    long index) {
    return util::parse_double_field(lookup(cell, field, index),
                                    path + " " + cell + "/" + field);
  };

  const long version =
      util::parse_long_field(lookup("_format", "version", 0), path + " version");
  if (version != kCsvFormatVersion) {
    throw ConfigError("cell library " + path + ": schema version " +
                      std::to_string(version) + " (expected " +
                      std::to_string(kCsvFormatVersion) + ")");
  }
  const std::string fingerprint = lookup("_tech", "fingerprint", 0);
  const std::string corner = lookup("_corner", "fingerprint", 0);

  std::map<std::string, FittedCell> fitted;
  double inv_rise = 0.0;
  double inv_fall = 0.0;
  for (const auto& info : kRegistry) {
    const std::string name = info.name;
    if (info.hybrid) {
      FittedCell cell;
      cell.params.topology = number(name, "topology", 0) != 0.0
                                 ? core::GateTopology::kNandLike
                                 : core::GateTopology::kNorLike;
      for (long i = 0; i < info.arity; ++i) {
        cell.params.r_series.push_back(number(name, "r_series", i));
        cell.params.r_parallel.push_back(number(name, "r_parallel", i));
      }
      cell.params.c_int = number(name, "c_int", 0);
      cell.params.c_out = number(name, "c_out", 0);
      cell.params.vdd = number(name, "vdd", 0);
      cell.params.delta_min = number(name, "delta_min", 0);
      cell.tables = core::GateModeTables::make(cell.params);  // validates
      fitted[name] = std::move(cell);
    } else if (name == "INV") {
      inv_rise = number(name, "rise", 0);
      inv_fall = number(name, "fall", 0);
    }
  }

  CellLibrary lib;
  lib.fingerprint_ = fingerprint;
  lib.corner_ = corner;
  lib.specs_ = build_specs(fitted, inv_rise, inv_fall);
  // build_specs re-derives the composite SIS cells; the stored rows take
  // precedence so explicit edits (set_sis_delays before save, or a
  // hand-tuned cache file) survive a round trip.
  for (auto& spec : lib.specs_) {
    if (!spec.hybrid && spec.name != "INV") {
      spec.rise_delay = number(spec.name, "rise", 0);
      spec.fall_delay = number(spec.name, "fall", 0);
    }
  }
  return lib;
}

const CellSpec* CellLibrary::find_canonical(
    const std::string& canonical) const {
  for (const auto& spec : specs_) {
    if (spec.name == canonical) return &spec;
  }
  return nullptr;
}

const CellSpec* CellLibrary::find(const std::string& name) const {
  return find_canonical(to_upper_ascii(name));
}

const CellSpec& CellLibrary::spec(const std::string& name) const {
  const CellSpec* spec = find(name);
  if (spec == nullptr) {
    throw ConfigError("cell library: unknown cell \"" + name + "\"");
  }
  return *spec;
}

void CellLibrary::set_sis_delays(const std::string& name, double rise,
                                 double fall) {
  const std::string canonical = to_upper_ascii(name);
  for (auto& spec : specs_) {
    if (spec.name != canonical) continue;
    if (spec.hybrid) {
      throw ConfigError("cell library: " + canonical +
                        " is a hybrid MIS cell, not a SIS cell");
    }
    spec.rise_delay = rise;
    spec.fall_delay = fall;
    return;
  }
  throw ConfigError("cell library: unknown cell \"" + name + "\"");
}

long CellLibrary::n_characterization_runs(const std::string& name) {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  const auto it = run_counts().find(to_upper_ascii(name));
  return it == run_counts().end() ? 0 : it->second;
}

void CellLibrary::reset_characterization_cache() {
  std::lock_guard<std::mutex> lock(g_cache_mutex);
  fit_cache().clear();
  inverter_cache().clear();
  run_counts().clear();
}

}  // namespace charlie::cell
