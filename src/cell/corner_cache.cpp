#include "cell/corner_cache.hpp"

#include <cstdio>
#include <filesystem>
#include <utility>

namespace charlie::cell {

namespace {

// FNV-1a 64-bit over the key string; the fingerprint stays in the file
// itself, so the name only has to spread corners across distinct files.
std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

CornerCache::CornerCache(std::string directory, spice::Technology tech)
    : dir_(std::move(directory)), tech_(std::move(tech)) {
  tech_.validate();
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  // A failed mkdir is deliberately ignored: library_at still works, the
  // CSV writes just keep failing silently (characterize_cached semantics).
}

std::string CornerCache::corner_path(const core::ProcessPoint& point) const {
  const std::uint64_t h =
      fnv1a64(tech_.fingerprint() + "\x1f" + point.fingerprint());
  char name[32];
  std::snprintf(name, sizeof name, "corner_%016llx.csv",
                static_cast<unsigned long long>(h));
  return dir_ + "/" + name;
}

std::shared_ptr<const CellLibrary> CornerCache::library_at(
    const core::ProcessPoint& point) {
  const std::string key = point.fingerprint();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
  }
  // Load/characterize outside the cache lock: CellLibrary has its own
  // process-wide memo lock, and two threads racing on the same corner just
  // produce identical libraries (last insert wins).
  auto lib = std::make_shared<const CellLibrary>(
      CellLibrary::characterize_cached(corner_path(point), tech_, point));
  std::lock_guard<std::mutex> lock(mutex_);
  return memo_.emplace(key, std::move(lib)).first->second;
}

std::size_t CornerCache::n_memoized() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return memo_.size();
}

}  // namespace charlie::cell
