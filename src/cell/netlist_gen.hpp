// Synthetic benchmark netlist generation.
//
// generate_netlist() grows a layered random combinational netlist over the
// nine-cell library -- SIS cells (INV, BUF, AND2, OR2, XOR2), hybrid MIS
// cells (NAND2, NOR2, NAND3, NOR3), and a configurable fraction of gate
// outputs routed through RC WIRE segments -- sized by gate count, so the
// sharded-simulation benchmarks (bench/bench_sharded_throughput.cpp,
// tools/gen_netlist) can exercise circuits far beyond the shipped ISCAS
// examples. Gates in layer L draw their inputs from the preceding
// `locality` layers, which keeps the live-net profile narrow and gives
// CircuitBuilder::build_sharded realistic low-cut partition points.
//
// Generation is deterministic for a fixed config (one util::Rng stream
// seeded by config.seed) and always yields a valid acyclic netlist:
// layer-by-layer construction cannot create a cycle, every net has exactly
// one driver, and wire geometries repeat from a small preset pool so the
// builder's wire-table collapse is memoized, not re-derived per wire.
#pragma once

#include <cstddef>
#include <cstdint>

#include "cell/netlist.hpp"

namespace charlie::cell {

struct NetlistGenConfig {
  std::size_t n_gates = 100000;  // cell instances; WIREs come on top
  std::size_t n_inputs = 64;
  std::size_t n_outputs = 32;    // declared outputs, from the last layers
  std::size_t layer_width = 256; // gates per topological layer
  std::size_t locality = 4;      // how many preceding layers inputs span
  double wire_fraction = 0.02;   // gate outputs driven through a WIRE
  std::uint64_t seed = 1;

  void validate() const;  // throws ConfigError on nonsense
};

NetlistDesc generate_netlist(const NetlistGenConfig& config);

}  // namespace charlie::cell
