#include "cell/netlist.hpp"

#include <algorithm>
#include <cctype>
#include <unordered_set>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/text.hpp"

namespace charlie::cell {

namespace {

using util::to_upper_ascii;
using util::trim_ascii;

[[noreturn]] void syntax_error(int line, const std::string& why) {
  throw ConfigError("netlist:" + std::to_string(line) + ": " + why);
}

bool is_identifier(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  return std::all_of(name.begin(), name.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  });
}

// One `head(arg, arg, ...)` statement, already comment-stripped and trimmed.
struct Statement {
  std::string head;
  std::vector<std::string> args;
};

Statement parse_statement(const std::string& text, int line) {
  const auto open = text.find('(');
  if (open == std::string::npos) {
    syntax_error(line, "expected `cell(out, in, ...)`, got \"" + text + "\"");
  }
  Statement s;
  s.head = trim_ascii(text.substr(0, open));
  if (!is_identifier(s.head)) {
    syntax_error(line, "bad cell name \"" + s.head + "\"");
  }
  const auto close = text.find(')', open);
  if (close == std::string::npos) syntax_error(line, "missing `)`");
  const std::string tail = trim_ascii(text.substr(close + 1));
  if (!tail.empty() && tail != ";") {
    syntax_error(line, "trailing text after `)`: \"" + tail + "\"");
  }

  std::string args = text.substr(open + 1, close - open - 1);
  std::size_t pos = 0;
  while (true) {
    const auto comma = args.find(',', pos);
    const std::string arg = trim_ascii(
        comma == std::string::npos ? args.substr(pos)
                                   : args.substr(pos, comma - pos));
    if (arg.empty() && comma == std::string::npos && s.args.empty()) {
      break;  // empty argument list: `cell()`
    }
    if (!is_identifier(arg)) {
      syntax_error(line, "bad net name \"" + arg + "\"");
    }
    s.args.push_back(arg);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return s;
}

}  // namespace

NetlistDesc parse_netlist(const std::string& text) {
  NetlistDesc desc;
  std::unordered_set<std::string> declared_inputs;

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto eol = text.find('\n', pos);
    std::string line = eol == std::string::npos
                           ? text.substr(pos)
                           : text.substr(pos, eol - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    for (const char* marker : {"#", "//"}) {
      const auto at = line.find(marker);
      if (at != std::string::npos) line.erase(at);
    }
    line = trim_ascii(line);
    if (line.empty()) continue;

    const Statement s = parse_statement(line, line_no);
    if (to_upper_ascii(s.head) == "INPUT") {
      if (s.args.empty()) {
        syntax_error(line_no, "input() needs at least one net name");
      }
      for (const auto& name : s.args) {
        if (!declared_inputs.insert(name).second) {
          syntax_error(line_no, "primary input \"" + name +
                                    "\" declared twice");
        }
        desc.inputs.push_back(name);
      }
      continue;
    }
    if (s.args.empty()) {
      syntax_error(line_no,
                   "instance needs an output net: " + s.head + "(...)");
    }
    NetlistInstance inst;
    inst.cell = to_upper_ascii(s.head);
    inst.output = s.args.front();
    inst.inputs.assign(s.args.begin() + 1, s.args.end());
    inst.line = line_no;
    desc.instances.push_back(std::move(inst));
  }
  return desc;
}

NetlistDesc read_netlist_file(const std::string& path) {
  try {
    return parse_netlist(util::read_text_file(path));
  } catch (const ConfigError& e) {
    throw ConfigError(path + ": " + e.what());
  }
}

}  // namespace charlie::cell
