#include "cell/netlist.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <unordered_set>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/text.hpp"

namespace charlie::cell {

namespace {

using util::to_upper_ascii;
using util::trim_ascii;

[[noreturn]] void syntax_error(const std::string& source, int line,
                               const std::string& why) {
  throw ConfigError(source + ":" + std::to_string(line) + ": " + why);
}

bool is_identifier(const std::string& name) {
  if (name.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(name[0])) && name[0] != '_') {
    return false;
  }
  return std::all_of(name.begin(), name.end(), [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  });
}

// One `head(arg, arg, ...)` statement, already comment-stripped and
// trimmed. Arguments are either net identifiers or `key=value` parameter
// assignments (WIRE statements only; validated by the caller).
struct Argument {
  std::string text;   // identifier, or the key for assignments
  std::string value;  // assignment value; empty means plain identifier
  bool is_assignment = false;
};

struct Statement {
  std::string head;
  std::vector<Argument> args;
};

Statement parse_statement(const std::string& text, int line,
                          const std::string& source) {
  const auto open = text.find('(');
  if (open == std::string::npos) {
    syntax_error(source, line, "expected `cell(out, in, ...)`, got \"" + text + "\"");
  }
  Statement s;
  s.head = trim_ascii(text.substr(0, open));
  if (!is_identifier(s.head)) {
    syntax_error(source, line, "bad cell name \"" + s.head + "\"");
  }
  const auto close = text.find(')', open);
  if (close == std::string::npos) syntax_error(source, line, "missing `)`");
  const std::string tail = trim_ascii(text.substr(close + 1));
  if (!tail.empty() && tail != ";") {
    syntax_error(source, line, "trailing text after `)`: \"" + tail + "\"");
  }

  std::string args = text.substr(open + 1, close - open - 1);
  std::size_t pos = 0;
  while (true) {
    const auto comma = args.find(',', pos);
    const std::string arg = trim_ascii(
        comma == std::string::npos ? args.substr(pos)
                                   : args.substr(pos, comma - pos));
    if (arg.empty() && comma == std::string::npos && s.args.empty()) {
      break;  // empty argument list: `cell()`
    }
    Argument parsed;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      parsed.is_assignment = true;
      parsed.text = trim_ascii(arg.substr(0, eq));
      parsed.value = trim_ascii(arg.substr(eq + 1));
      if (!is_identifier(parsed.text)) {
        syntax_error(source, line, "bad parameter name \"" + parsed.text + "\"");
      }
      if (parsed.value.empty()) {
        syntax_error(source, line,
                     "parameter \"" + parsed.text + "\" needs a value");
      }
    } else {
      parsed.text = arg;
      if (!is_identifier(parsed.text)) {
        syntax_error(source, line, "bad net name \"" + arg + "\"");
      }
    }
    s.args.push_back(std::move(parsed));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return s;
}

// The i-th argument as a plain net identifier (rejects assignments).
const std::string& net_argument(const Statement& s, std::size_t i, int line,
                                const std::string& source) {
  const Argument& arg = s.args[i];
  if (arg.is_assignment) {
    syntax_error(source, line, "expected a net name, got parameter assignment \"" +
                           arg.text + "=" + arg.value + "\"");
  }
  return arg.text;
}

NetlistWire parse_wire(const Statement& s, int line,
                       const std::string& source) {
  if (s.args.size() < 2) {
    syntax_error(source, line, "WIRE needs two nets: WIRE(out, in, r=.., c=..)");
  }
  NetlistWire wire;
  wire.output = net_argument(s, 0, line, source);
  wire.input = net_argument(s, 1, line, source);
  wire.line = line;
  bool have_r = false;
  bool have_c = false;
  std::unordered_set<std::string> seen;
  for (std::size_t i = 2; i < s.args.size(); ++i) {
    const Argument& arg = s.args[i];
    if (!arg.is_assignment) {
      syntax_error(source, line, "WIRE takes key=value parameters after the two "
                         "nets, got net name \"" +
                             arg.text + "\"");
    }
    const std::string key = util::to_lower_ascii(arg.text);
    if (!seen.insert(key).second) {
      syntax_error(source, line, "WIRE parameter \"" + key + "\" given twice");
    }
    const std::string context =
        source + ":" + std::to_string(line) + ": WIRE parameter " + key;
    if (key == "r") {
      wire.r_total = util::parse_double_field(arg.value, context);
      have_r = true;
    } else if (key == "c") {
      wire.c_total = util::parse_double_field(arg.value, context);
      have_c = true;
    } else if (key == "sections") {
      wire.sections = static_cast<int>(
          util::parse_long_field(arg.value, context));
    } else if (key == "rdrive") {
      wire.r_drive = util::parse_double_field(arg.value, context);
    } else if (key == "cload") {
      wire.c_load = util::parse_double_field(arg.value, context);
    } else if (key == "tdrive") {
      wire.t_drive = util::parse_double_field(arg.value, context);
    } else if (key == "vdd") {
      wire.vdd = util::parse_double_field(arg.value, context);
    } else {
      syntax_error(source, line, "unknown WIRE parameter \"" + key +
                             "\" (expected r, c, sections, rdrive, cload, "
                             "tdrive, vdd)");
    }
  }
  if (!have_r || !have_c) {
    syntax_error(source, line, "WIRE requires both r= and c= parameters");
  }
  return wire;
}

}  // namespace

NetlistDesc parse_netlist(const std::string& text,
                          const std::string& source) {
  NetlistDesc desc;
  std::unordered_set<std::string> declared_inputs;
  std::unordered_set<std::string> declared_outputs;

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const auto eol = text.find('\n', pos);
    std::string line = eol == std::string::npos
                           ? text.substr(pos)
                           : text.substr(pos, eol - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    for (const char* marker : {"#", "//"}) {
      const auto at = line.find(marker);
      if (at != std::string::npos) line.erase(at);
    }
    line = trim_ascii(line);
    if (line.empty()) continue;

    const Statement s = parse_statement(line, line_no, source);
    const std::string head = to_upper_ascii(s.head);
    if (head == "INPUT") {
      if (s.args.empty()) {
        syntax_error(source, line_no, "input() needs at least one net name");
      }
      for (std::size_t i = 0; i < s.args.size(); ++i) {
        const std::string& name = net_argument(s, i, line_no, source);
        if (!declared_inputs.insert(name).second) {
          syntax_error(source, line_no, "primary input \"" + name +
                                    "\" declared twice");
        }
        desc.inputs.push_back(name);
      }
      continue;
    }
    if (head == "OUTPUT") {
      if (s.args.empty()) {
        syntax_error(source, line_no, "output() needs at least one net name");
      }
      for (std::size_t i = 0; i < s.args.size(); ++i) {
        const std::string& name = net_argument(s, i, line_no, source);
        if (!declared_outputs.insert(name).second) {
          syntax_error(source, line_no, "primary output \"" + name +
                                    "\" declared twice");
        }
        desc.outputs.push_back(name);
      }
      continue;
    }
    if (head == "WIRE") {
      desc.wires.push_back(parse_wire(s, line_no, source));
      continue;
    }
    if (s.args.empty()) {
      syntax_error(source, line_no,
                   "instance needs an output net: " + s.head + "(...)");
    }
    NetlistInstance inst;
    inst.cell = head;
    inst.output = net_argument(s, 0, line_no, source);
    inst.inputs.reserve(s.args.size() - 1);
    for (std::size_t i = 1; i < s.args.size(); ++i) {
      inst.inputs.push_back(net_argument(s, i, line_no, source));
    }
    inst.line = line_no;
    desc.instances.push_back(std::move(inst));
  }
  return desc;
}

NetlistDesc read_netlist_file(const std::string& path) {
  // Parse errors carry `path:line:` via the source name; read_text_file's
  // own I/O errors already name the path.
  return parse_netlist(util::read_text_file(path), path);
}

namespace {

// Full-precision doubles so write/parse round-trips bit-exact wire params.
std::string number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void write_net_list_stmt(std::string& out, const char* head,
                         const std::vector<std::string>& nets) {
  // Long declarations wrap at 16 nets per statement for readability.
  constexpr std::size_t kPerLine = 16;
  for (std::size_t begin = 0; begin < nets.size(); begin += kPerLine) {
    out += head;
    out += '(';
    const std::size_t end = std::min(nets.size(), begin + kPerLine);
    for (std::size_t i = begin; i < end; ++i) {
      if (i > begin) out += ", ";
      out += nets[i];
    }
    out += ")\n";
  }
}

}  // namespace

std::string write_netlist(const NetlistDesc& desc) {
  std::string out;
  write_net_list_stmt(out, "input", desc.inputs);
  write_net_list_stmt(out, "output", desc.outputs);
  for (const auto& inst : desc.instances) {
    out += inst.cell;
    out += '(';
    out += inst.output;
    for (const auto& input : inst.inputs) {
      out += ", ";
      out += input;
    }
    out += ")\n";
  }
  for (const auto& wire : desc.wires) {
    out += "WIRE(" + wire.output + ", " + wire.input;
    out += ", r=" + number(wire.r_total);
    out += ", c=" + number(wire.c_total);
    out += ", sections=" + std::to_string(wire.sections);
    if (wire.r_drive != 0.0) out += ", rdrive=" + number(wire.r_drive);
    if (wire.c_load != 0.0) out += ", cload=" + number(wire.c_load);
    if (wire.t_drive != 0.0) out += ", tdrive=" + number(wire.t_drive);
    out += ", vdd=" + number(wire.vdd);
    out += ")\n";
  }
  return out;
}

void write_netlist_file(const NetlistDesc& desc, const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    throw ConfigError("netlist: cannot open \"" + path + "\" for writing");
  }
  file << write_netlist(desc);
  file.close();
  if (!file) {
    throw ConfigError("netlist: failed writing \"" + path + "\"");
  }
}

}  // namespace charlie::cell
