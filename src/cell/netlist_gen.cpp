#include "cell/netlist_gen.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace charlie::cell {

namespace {

struct CellChoice {
  const char* name;
  std::size_t arity;
  int weight;  // relative draw frequency
};

// Mixed SIS / hybrid-MIS workload; NAND/NOR dominate as in synthesized
// logic, with enough 3-input cells to exercise the MIS tables.
constexpr CellChoice kCellMix[] = {
    {"INV", 1, 1},   {"BUF", 1, 1},   {"AND2", 2, 2},
    {"OR2", 2, 2},   {"XOR2", 2, 2},  {"NAND2", 2, 3},
    {"NOR2", 2, 3},  {"NAND3", 3, 2}, {"NOR3", 3, 2},
};

// A handful of repeating wire geometries (same scale as the shipped
// example netlists): distinct fingerprints stay countable so the builder
// collapses each geometry exactly once no matter the netlist size.
struct WirePreset {
  double r_total;
  double c_total;
  int sections;
};
constexpr WirePreset kWirePresets[] = {
    {6e3, 1.5e-15, 4},
    {12e3, 2.5e-15, 8},
    {24e3, 5e-15, 8},
};

}  // namespace

void NetlistGenConfig::validate() const {
  if (n_gates < 1) throw ConfigError("netlist gen: n_gates must be >= 1");
  if (n_inputs < 1) throw ConfigError("netlist gen: n_inputs must be >= 1");
  if (n_outputs < 1) {
    throw ConfigError("netlist gen: n_outputs must be >= 1");
  }
  if (layer_width < 1) {
    throw ConfigError("netlist gen: layer_width must be >= 1");
  }
  if (locality < 1) throw ConfigError("netlist gen: locality must be >= 1");
  if (wire_fraction < 0.0 || wire_fraction > 1.0) {
    throw ConfigError("netlist gen: wire_fraction must be in [0, 1]");
  }
}

NetlistDesc generate_netlist(const NetlistGenConfig& config) {
  config.validate();
  util::Rng rng(config.seed);

  int total_weight = 0;
  for (const CellChoice& cell : kCellMix) total_weight += cell.weight;

  NetlistDesc desc;
  desc.inputs.reserve(config.n_inputs);
  for (std::size_t i = 0; i < config.n_inputs; ++i) {
    desc.inputs.push_back("i" + std::to_string(i));
  }

  // layers[l] holds the nets gates of layer l+1 may read; layer 0 is the
  // primary inputs.
  std::vector<std::vector<std::string>> layers;
  layers.push_back(desc.inputs);

  desc.instances.reserve(config.n_gates);
  std::size_t emitted = 0;
  while (emitted < config.n_gates) {
    // Flatten the locality window once per layer.
    std::vector<std::string> pool;
    const std::size_t window_begin =
        layers.size() > config.locality ? layers.size() - config.locality : 0;
    for (std::size_t l = window_begin; l < layers.size(); ++l) {
      pool.insert(pool.end(), layers[l].begin(), layers[l].end());
    }

    std::vector<std::string> layer_nets;
    const std::size_t layer_gates =
        std::min(config.layer_width, config.n_gates - emitted);
    layer_nets.reserve(layer_gates);
    for (std::size_t g = 0; g < layer_gates; ++g) {
      // Weighted cell draw.
      int draw = static_cast<int>(rng.uniform_int(0, total_weight - 1));
      const CellChoice* choice = &kCellMix[0];
      for (const CellChoice& cell : kCellMix) {
        draw -= cell.weight;
        if (draw < 0) {
          choice = &cell;
          break;
        }
      }

      NetlistInstance inst;
      inst.cell = choice->name;
      inst.output = "n" + std::to_string(emitted);
      inst.inputs.reserve(choice->arity);
      for (std::size_t port = 0; port < choice->arity; ++port) {
        // Prefer distinct input nets; duplicates are valid but quiet, so a
        // few redraws keep the switching activity up.
        std::string pick;
        for (int attempt = 0; attempt < 4; ++attempt) {
          pick = pool[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(pool.size()) - 1))];
          if (std::find(inst.inputs.begin(), inst.inputs.end(), pick) ==
              inst.inputs.end()) {
            break;
          }
        }
        inst.inputs.push_back(std::move(pick));
      }
      desc.instances.push_back(std::move(inst));

      std::string usable = "n" + std::to_string(emitted);
      if (rng.bernoulli(config.wire_fraction)) {
        const WirePreset& preset = kWirePresets[static_cast<std::size_t>(
            rng.uniform_int(
                0, static_cast<std::int64_t>(std::size(kWirePresets)) - 1))];
        NetlistWire wire;
        wire.output = usable + "w";
        wire.input = usable;
        wire.r_total = preset.r_total;
        wire.c_total = preset.c_total;
        wire.sections = preset.sections;
        desc.wires.push_back(std::move(wire));
        usable += "w";
      }
      layer_nets.push_back(std::move(usable));
      ++emitted;
    }
    layers.push_back(std::move(layer_nets));
  }

  // Observed outputs: the freshest nets, walking layers backwards.
  std::size_t wanted = config.n_outputs;
  for (std::size_t l = layers.size(); l-- > 1 && wanted > 0;) {
    const auto& nets = layers[l];
    for (std::size_t i = nets.size(); i-- > 0 && wanted > 0;) {
      desc.outputs.push_back(nets[i]);
      --wanted;
    }
  }
  std::reverse(desc.outputs.begin(), desc.outputs.end());
  return desc;
}

}  // namespace charlie::cell
