// Characterized standard-cell library: the construction front-end's
// registry of cells.
//
// Real timing flows separate *cell characterization* (run the analog
// substrate once per cell, fit the delay model) from *netlist
// instantiation* (stamp thousands of gate instances that share the fitted
// model). CellLibrary is that separation for this repo:
//
//   * characterize(tech) runs the existing spice::measure_gate_targets +
//     core::fit_gate_params pipeline once per hybrid cell (NOR2, NOR3,
//     NAND2, NAND3) and spice::measure_inverter_delays once for the INV;
//     results are memoized process-wide, keyed by cell name + technology
//     fingerprint, so repeated characterize() calls never re-run SPICE.
//   * save_csv/load_csv persist a characterized library, fingerprint
//     included, so examples and benches skip the substrate entirely when a
//     valid cache file exists (characterize_cached wraps the whole
//     load-or-characterize-and-save lifecycle).
//   * reference() builds the library from the Table-I-regime reference
//     parameters (core::GateParams::*_reference) without touching the
//     substrate -- instant startup for demos; its NOR2 is bit-identical to
//     the paper's NorParams::paper_table1 model.
//
// Cells come in two families:
//   * hybrid MIS cells (NOR2/NOR3/NAND2/NAND3): fitted core::GateParams
//     with one shared core::GateModeTables per cell -- every channel
//     instance produced by the spec shares that table;
//   * SIS cells (INV/BUF/AND2/OR2/XOR2): inertial channels whose rise/fall
//     delays are measured (INV) or derived from the measured cells by
//     documented composition (BUF = 2x INV, AND2 = NAND2 + INV,
//     OR2 = NOR2 + INV, XOR2 = 3 average NAND2 stages).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/gate_mode_tables.hpp"
#include "core/gate_params.hpp"
#include "core/process_point.hpp"
#include "sim/channel.hpp"
#include "sim/circuit.hpp"
#include "spice/technology.hpp"

namespace charlie::cell {

/// Per-arc pin-to-pin delay table of one cell: the static-timing-analysis
/// front door. Entry i bounds the time from input i's transition to the
/// output V_th crossing in the named direction, over every switching
/// context the event engine can produce (sta layer; conservatism argument
/// in docs/sta.md).
struct CellArcTable {
  std::vector<double> output_rise;  // arc input i -> output rising [s]
  std::vector<double> output_fall;  // arc input i -> output falling [s]
};

struct CellSpec {
  std::string name;          // canonical upper-case, e.g. "NOR2"
  sim::GateKind kind = sim::GateKind::kBuf;
  int arity = 0;
  bool hybrid = false;       // hybrid MIS channel vs SIS inertial channel

  // Hybrid cells: fitted model and the one mode table every instance shares.
  core::GateParams params;
  std::shared_ptr<const core::GateModeTables> tables;

  // SIS cells: per-direction inertial delays.
  double rise_delay = 0.0;  // output rising [s]
  double fall_delay = 0.0;  // output falling [s]

  /// MIS-aware channel sharing this spec's mode table (hybrid cells only).
  std::unique_ptr<sim::GateChannel> make_mis_channel() const;

  /// Inertial output channel (SIS cells only).
  std::unique_ptr<sim::SisChannel> make_sis_channel() const;

  /// Static per-arc delays of this cell at its characterized (or derived)
  /// process point. Hybrid cells evaluate the conservative characteristic
  /// envelope on the shared mode tables (core::gate_arc_envelope) and add
  /// the pure delay delta_min -- the same total delay path the event
  /// channel applies; SIS cells report their inertial rise/fall delay on
  /// every pin. A corner library (at_corner) yields that corner's arcs.
  CellArcTable arc_table() const;
};

class CellLibrary {
 public:
  /// Canonical cell names, registry order: INV, BUF, AND2, OR2, XOR2,
  /// NAND2, NOR2, NAND3, NOR3.
  static const std::vector<std::string>& cell_names();

  /// Library from the Table-I-regime reference parameters; no substrate
  /// run, empty technology fingerprint.
  static CellLibrary reference();

  /// Characterize every cell against the analog substrate. Memoized: the
  /// measure+fit pipeline runs at most once per (cell, tech fingerprint)
  /// per process; later calls reuse the cached fit and shared mode tables.
  static CellLibrary characterize(const spice::Technology& tech);

  /// Library at a process corner: characterize(tech) at nominal (the only
  /// place SPICE runs), then derive every cell analytically via
  /// GateParams::derive_for. Corner mode tables are memoized process-wide,
  /// keyed by (cell, tech fingerprint, corner fingerprint), so every
  /// library built for the same corner shares one table per cell.
  static CellLibrary characterize_at(const spice::Technology& tech,
                                     const core::ProcessPoint& point);

  /// Load `csv_path` if it holds a library characterized for `tech`
  /// (matching fingerprint); otherwise characterize and (re)write the file.
  /// The CSV is a cache: a missing, stale, or malformed file is regenerated,
  /// never an error.
  static CellLibrary characterize_cached(const std::string& csv_path,
                                         const spice::Technology& tech);

  /// Corner-aware flavor of characterize_cached: the file must match both
  /// the technology and the corner fingerprint, else it is regenerated via
  /// characterize_at (no SPICE re-run when the nominal fit is memoized).
  static CellLibrary characterize_cached(const std::string& csv_path,
                                         const spice::Technology& tech,
                                         const core::ProcessPoint& point);

  /// Derive this (nominal) library at a process point: hybrid cells via
  /// GateParams::derive_for, SIS cells by scaling their inertial delays
  /// with the common resistance factor. Throws ConfigError when called on
  /// an already-derived (non-nominal) library -- corners do not compose.
  CellLibrary at_corner(const core::ProcessPoint& point) const;

  /// Persist the library (long-format CSV `cell,field,index,value`,
  /// full-precision values, fingerprint row first).
  void save_csv(const std::string& path) const;

  /// Reload a library written by save_csv. Throws ConfigError on malformed
  /// or incomplete files. Mode tables are re-derived from the stored
  /// parameters (cheap); the characterization pipeline is NOT re-run.
  static CellLibrary load_csv(const std::string& path);

  /// Lookup by (case-insensitive) cell name; spec() throws ConfigError for
  /// unknown cells, find() returns nullptr.
  const CellSpec& spec(const std::string& name) const;
  const CellSpec* find(const std::string& name) const;

  /// Override the inertial delays of a SIS cell (demos that sweep a delay).
  /// Throws ConfigError for unknown or hybrid cells.
  void set_sis_delays(const std::string& name, double rise, double fall);

  /// Fingerprint of the technology this library was characterized for;
  /// empty for reference() libraries.
  const std::string& tech_fingerprint() const { return fingerprint_; }

  /// Fingerprint of the process corner the cells are derived at
  /// (core::ProcessPoint::fingerprint(); the nominal fingerprint unless the
  /// library came from at_corner / characterize_at).
  const std::string& corner_fingerprint() const { return corner_; }

  /// CSV schema version written by save_csv and required by load_csv; files
  /// from older schemas fail to load and regenerate silently.
  static constexpr int kCsvFormatVersion = 2;

  const std::vector<CellSpec>& specs() const { return specs_; }

  /// Testing hooks for the characterize-once guarantee: number of times the
  /// measure+fit pipeline actually ran for `name` (any technology) since
  /// process start or the last reset; reset clears both the counters and
  /// the memoization cache.
  static long n_characterization_runs(const std::string& name);
  static void reset_characterization_cache();

 private:
  const CellSpec* find_canonical(const std::string& canonical) const;

  std::vector<CellSpec> specs_;  // registry order
  std::string fingerprint_;
  std::string corner_ = core::ProcessPoint::nominal().fingerprint();
};

}  // namespace charlie::cell
