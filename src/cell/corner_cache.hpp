// Multi-corner characterization cache: a directory of per-corner cell
// library CSVs plus an in-memory memo.
//
// Statistical flows touch many process corners of one technology. The
// expensive step -- the SPICE measure+fit pipeline -- only ever runs at
// nominal (corners derive analytically, see CellLibrary::characterize_at),
// but corner libraries are still worth caching: the CSV makes cold starts
// instant and the memo makes repeated lookups free.
//
// Each corner gets its own file, named by a hash of (technology fingerprint,
// corner fingerprint), with CellLibrary's bit-exact CSV format and
// silent-regeneration semantics: a truncated, garbage, or wrong-corner file
// is rewritten from the memoized nominal fit without re-running SPICE, and
// corruption of one corner's file never touches any other corner.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "cell/cell_library.hpp"
#include "core/process_point.hpp"
#include "spice/technology.hpp"

namespace charlie::cell {

class CornerCache {
 public:
  /// The directory is created if missing; creation failure degrades to
  /// memo-plus-characterize (the cache never turns an IO problem into an
  /// error).
  CornerCache(std::string directory, spice::Technology tech);

  /// The library at `point`, from (in order): the in-memory memo, a valid
  /// cached CSV, or characterize_at + rewrite. Thread-safe.
  std::shared_ptr<const CellLibrary> library_at(
      const core::ProcessPoint& point);

  /// File a corner is cached under (hash-named within the directory).
  std::string corner_path(const core::ProcessPoint& point) const;

  const std::string& directory() const { return dir_; }
  std::size_t n_memoized() const;

 private:
  std::string dir_;
  spice::Technology tech_;
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const CellLibrary>> memo_;
};

}  // namespace charlie::cell
