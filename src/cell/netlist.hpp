// Structural netlist description and its text format.
//
// A netlist is the cell-library front-end's unit of work: primary inputs
// plus a list of cell instances (cell name, output net, input nets),
// decoupled from any characterized library so the same topology can be
// instantiated against different technologies. sim::CircuitBuilder turns a
// NetlistDesc + cell::CellLibrary into a validated sim::Circuit.
//
// Text grammar (see docs/netlist_format.md for the full description):
//
//   # comment (also //); blank lines ignored
//   input(a, b, c)          # declare primary inputs, repeatable
//   NAND2(n1, a, b)         # instance: CELL(output, input, ...)
//   nor3(out, n1, c, d)     # cell names are case-insensitive
//
// Net names are case-sensitive identifiers [A-Za-z_][A-Za-z0-9_]*. The
// parser checks syntax only; semantic validation (cells exist, arities
// match, nets are driven exactly once, the graph is acyclic) happens in
// CircuitBuilder, which knows the library.
#pragma once

#include <string>
#include <vector>

namespace charlie::cell {

struct NetlistInstance {
  std::string cell;                 // canonical upper-case cell name
  std::string output;               // net driven by this instance
  std::vector<std::string> inputs;  // input nets, port order
  int line = 0;                     // 1-based source line (diagnostics)
};

struct NetlistDesc {
  std::vector<std::string> inputs;  // primary inputs, declaration order
  std::vector<NetlistInstance> instances;

  std::size_t n_gates() const { return instances.size(); }
};

/// Parse netlist text. Throws ConfigError with a line number on syntax
/// errors (malformed statements, bad identifiers, empty argument lists,
/// re-declared primary inputs).
NetlistDesc parse_netlist(const std::string& text);

/// Read and parse a netlist file (errors are prefixed with the path).
NetlistDesc read_netlist_file(const std::string& path);

}  // namespace charlie::cell
