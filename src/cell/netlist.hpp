// Structural netlist description and its text format.
//
// A netlist is the cell-library front-end's unit of work: primary inputs,
// primary outputs, cell instances (cell name, output net, input nets), and
// RC wires, decoupled from any characterized library so the same topology
// can be instantiated against different technologies. sim::CircuitBuilder
// turns a NetlistDesc + cell::CellLibrary into a validated sim::Circuit.
//
// Text grammar (see docs/netlist_format.md for the full description):
//
//   # comment (also //); blank lines ignored
//   input(a, b, c)          # declare primary inputs, repeatable
//   output(out1, out2)      # declare observed primary outputs, repeatable
//   NAND2(n1, a, b)         # instance: CELL(output, input, ...)
//   nor3(out, n1, c, d)     # cell names are case-insensitive
//   WIRE(n1w, n1, r=12e3, c=2.5e-15, sections=8)   # RC interconnect
//
// WIRE statements take two nets (driven net first, driving net second) and
// key=value parameters: `r` and `c` (total line resistance/capacitance,
// required), `sections`, `rdrive`, `cload`, `tdrive`, `vdd` (optional).
//
// Net names are case-sensitive identifiers [A-Za-z_][A-Za-z0-9_]*. The
// parser checks syntax only (including duplicate input/output
// declarations); semantic validation (cells exist, arities match, nets are
// driven exactly once, the graph is acyclic) happens in CircuitBuilder,
// which knows the library.
#pragma once

#include <string>
#include <vector>

namespace charlie::cell {

struct NetlistInstance {
  std::string cell;                 // canonical upper-case cell name
  std::string output;               // net driven by this instance
  std::vector<std::string> inputs;  // input nets, port order
  int line = 0;                     // 1-based source line (diagnostics)
};

/// One `WIRE(out, in, r=.., c=.., ...)` statement: an RC interconnect
/// segment driving `output` from `input` (wire::WireParams semantics).
struct NetlistWire {
  std::string output;      // far-end net the wire drives
  std::string input;       // near-end net driving the wire
  double r_total = 0.0;    // [ohm], required in the text format
  double c_total = 0.0;    // [farad], required in the text format
  int sections = 8;
  double r_drive = 0.0;    // [ohm]
  double c_load = 0.0;     // [farad]
  double t_drive = 0.0;    // driver edge time constant [s]; 0 = ideal step
  double vdd = 0.8;        // [volt]
  int line = 0;            // 1-based source line (diagnostics)
};

struct NetlistDesc {
  std::vector<std::string> inputs;   // primary inputs, declaration order
  std::vector<std::string> outputs;  // declared primary outputs, in order
  std::vector<NetlistInstance> instances;
  std::vector<NetlistWire> wires;

  std::size_t n_gates() const { return instances.size(); }
  std::size_t n_wires() const { return wires.size(); }
};

/// Parse netlist text. Throws ConfigError with a `source:line:` prefix on
/// syntax errors (malformed statements, bad identifiers, empty argument
/// lists, re-declared primary inputs/outputs, malformed or missing WIRE
/// parameters, key=value arguments outside WIRE statements). `source`
/// names the text's origin in those messages -- read_netlist_file passes
/// the file path, so errors are directly clickable.
NetlistDesc parse_netlist(const std::string& text,
                          const std::string& source = "netlist");

/// Read and parse a netlist file (errors carry `path:line:`).
NetlistDesc read_netlist_file(const std::string& path);

/// Serialize to the text format above; parse_netlist(write_netlist(d))
/// round-trips every field (doubles are written with full precision).
std::string write_netlist(const NetlistDesc& desc);

/// Serialize to a file. Throws ConfigError if the file cannot be written.
void write_netlist_file(const NetlistDesc& desc, const std::string& path);

}  // namespace charlie::cell
