#include "wire/wire_tables.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/gate_delay.hpp"
#include "util/error.hpp"

namespace charlie::wire {

WireMoments wire_moments(const WireParams& params) {
  params.validate();
  const int n = params.n_sections;
  // Segment j (1-based) connects node j-1 to node j; the driver resistance
  // folds into the first segment. Node k carries c_total/N, the last node
  // additionally c_load. The output is node N.
  std::vector<double> r_seg(static_cast<std::size_t>(n), 0.0);
  std::vector<double> cap(static_cast<std::size_t>(n), 0.0);
  const double r_sec = params.r_total / static_cast<double>(n);
  const double c_sec = params.c_total / static_cast<double>(n);
  for (int j = 0; j < n; ++j) {
    r_seg[static_cast<std::size_t>(j)] = r_sec + (j == 0 ? params.r_drive : 0.0);
    cap[static_cast<std::size_t>(j)] = c_sec + (j == n - 1 ? params.c_load : 0.0);
  }

  // AWE voltage-moment recursion on a chain. Order 0: every node follows
  // the source, V^(0) = 1. Order p: the current through segment j is the
  // sum of downstream capacitor currents C_k V_k^(p-1); node moments are
  // minus the accumulated resistive drops.
  std::vector<double> v(static_cast<std::size_t>(n), 1.0);
  WireMoments m;
  for (int order = 1; order <= 2; ++order) {
    // Suffix sums of C_k V_k^(p-1): segment currents.
    std::vector<double> seg_current(static_cast<std::size_t>(n), 0.0);
    double suffix = 0.0;
    for (int j = n - 1; j >= 0; --j) {
      suffix += cap[static_cast<std::size_t>(j)] * v[static_cast<std::size_t>(j)];
      seg_current[static_cast<std::size_t>(j)] = suffix;
    }
    double drop = 0.0;
    for (int j = 0; j < n; ++j) {
      drop += r_seg[static_cast<std::size_t>(j)] *
              seg_current[static_cast<std::size_t>(j)];
      v[static_cast<std::size_t>(j)] = -drop;
    }
    (order == 1 ? m.m1 : m.m2) = v[static_cast<std::size_t>(n - 1)];
  }
  return m;
}

WireModeTables::WireModeTables(const WireParams& params) : params_(params) {
  params_.validate();
  vth_ = params_.vth();
  drive_delay_ = (1.0 - std::log(2.0)) * params_.t_drive;

  const WireMoments m = wire_moments(params_);
  b1_ = -m.m1;
  b2_ = m.m1 * m.m1 - m.m2;
  // b1 > 0 and b2 >= 0 hold for any passive RC ladder (the moments
  // alternate in sign and are log-convex); a violation means the moment
  // recursion is broken, not that the parameters are unusual. b2 reaches 0
  // for a genuinely single-pole ladder (one section: m2 = m1^2 exactly, up
  // to rounding), which gets its own realization below.
  CHARLIE_ASSERT_MSG(b1_ > 0.0, "wire collapse: non-positive b1");
  CHARLIE_ASSERT_MSG(b2_ > -1e-9 * b1_ * b1_,
                     "wire collapse: negative b2 beyond rounding");

  // Scaled companion realization over x = (u, V_out) with
  // u = (b2/b1) dV_out/dt: poles are the roots of b2 s^2 + b1 s + 1 = 0 --
  // real and negative whenever b1^2 >= 4 b2 (always, for RC-ladder
  // moments; derive_mode_table falls back to the generic machinery
  // otherwise). The raw companion form (u = dV_out/dt) mixes entries of
  // magnitude 1 and 1/b2 ~ 1e21, which defeats the scale-relative
  // singularity/eigenvalue classifiers; scaling u by the b2/b1 time
  // constant keeps every entry at the 1/tau scale and u itself in volts.
  //
  // A single-pole ladder (b2 vanishing relative to b1^2, catastrophic
  // cancellation included) degenerates to V_out' = (V_drive - V_out)/b1;
  // realized as A = -I/b1 with a dormant u state so every downstream
  // consumer sees the same 2-state shape.
  const bool single_pole = b2_ <= 1e-9 * b1_ * b1_;
  if (single_pole) b2_ = 0.0;
  const ode::Mat2 a = single_pole
                          ? ode::Mat2{-1.0 / b1_, 0.0, 0.0, -1.0 / b1_}
                          : ode::Mat2{-b1_ / b2_, -1.0 / b1_, b1_ / b2_, 0.0};
  double slowest = 0.0;
  for (bool high : {false, true}) {
    const double v_drive = high ? params_.vdd : 0.0;
    const ode::Vec2 g = single_pole ? ode::Vec2{0.0, v_drive / b1_}
                                    : ode::Vec2{v_drive / b1_, 0.0};
    core::ModeTable t = core::derive_mode_table(ode::AffineOde2(a, g));
    t.steady = {0.0, v_drive};
    (high ? high_ : low_) = t;
  }
  const double rate = low_.ode.slowest_rate();
  CHARLIE_ASSERT_MSG(rate < 0.0, "wire collapse: unstable reduced system");
  slowest = 1.0 / -rate;
  horizon_ = 60.0 * slowest;

  // Static per-arc delays: the step-response V_th crossing from the settled
  // opposite rail (the event channel's settled-line case), plus the
  // drive-shape correction applied to every drive switch.
  const double rise =
      core::mode_table_crossing(high_, low_.steady, horizon_, vth_,
                                /*rising=*/true);
  const double fall =
      core::mode_table_crossing(low_, high_.steady, horizon_, vth_,
                                /*rising=*/false);
  CHARLIE_ASSERT_MSG(rise >= 0.0 && fall >= 0.0,
                     "wire collapse: step response never crosses V_th");
  step_delay_rise_ = rise + drive_delay_;
  step_delay_fall_ = fall + drive_delay_;
}

std::shared_ptr<const WireModeTables> WireModeTables::make(
    const WireParams& params) {
  return std::make_shared<const WireModeTables>(params);
}

}  // namespace charlie::wire
