// Precomputed drive-state tables of the hybrid interconnect model.
//
// The N-section RC ladder of a WireParams is an N-state linear system; the
// event engine wants the same closed-form 2-state machinery it uses for
// gate modes. WireModeTables performs that collapse once per WireParams:
//
//   1. The ladder's first two output-voltage moments m1, m2 are computed
//      exactly (AWE-style path-resistance recursion over the chain,
//      r_drive and c_load included).
//   2. The transfer function is matched to the second-order Pade form
//      H(s) = 1 / (1 + b1 s + b2 s^2) with b1 = -m1, b2 = m1^2 - m2; for
//      passive RC ladders both coefficients are positive and the poles are
//      real, so the reduced system is a stable two-time-constant model that
//      preserves the DC gain and the first two delay moments of the full
//      ladder.
//   3. The form is realized as the affine 2-state system over
//      x = (u, V_out), u = (b2/b1) dV_out/dt (the scaling keeps u in volts
//      and the system matrix uniformly at the 1/tau scale):
//
//         u'     = (V_drive - V_out) / b1 - (b1 / b2) u
//         V_out' = (b1 / b2) u
//
//      with one mode per drive state (V_drive = 0 or VDD), pushed through
//      the exact same core::derive_mode_table() derivation the gate tables
//      use -- eigendecomposition, equilibria, spectral projectors, and the
//      two-exponential scalar expansion of V_out all come out for free.
//
// Like core::GateModeTables, a WireModeTables is immutable and shared
// through a shared_ptr: a netlist with thousands of identical wire segments
// pays the collapse exactly once.
#pragma once

#include <memory>

#include "core/gate_mode_tables.hpp"
#include "wire/wire_params.hpp"

namespace charlie::wire {

/// First and second moments of the ladder's output-voltage transfer
/// expansion H(s) = 1 + m1 s + m2 s^2 + O(s^3). m1 is minus the Elmore
/// delay; m2 > 0 for passive RC chains.
struct WireMoments {
  double m1 = 0.0;
  double m2 = 0.0;
};

/// Exact moments of the discrete ladder (O(N) recursion).
WireMoments wire_moments(const WireParams& params);

class WireModeTables {
 public:
  /// Validates `params` (throws ConfigError) and derives both drive-state
  /// tables plus the crossing-search horizon (60 slowest time constants,
  /// the gate-table convention).
  explicit WireModeTables(const WireParams& params);

  /// Shared immutable table for reuse across many channel instances.
  static std::shared_ptr<const WireModeTables> make(const WireParams& params);

  const WireParams& params() const { return params_; }
  double vth() const { return vth_; }
  double horizon() const { return horizon_; }

  /// Pade denominator coefficients of the collapse (diagnostics/tests).
  double b1() const { return b1_; }
  double b2() const { return b2_; }

  /// Elmore delay of the full ladder (= b1), the inertial baseline delay.
  double elmore_delay() const { return b1_; }

  /// First-moment drive-shape correction (1 - ln 2) t_drive: how far the
  /// centroid of the driver's exponential output edge lags its V_th
  /// crossing. WireChannel defers every drive switch by this much.
  double drive_delay() const { return drive_delay_; }

  /// Static pin-to-pin arc delay of the wire in the given output direction:
  /// the V_th crossing time of the collapsed model's step response from the
  /// settled opposite rail, plus drive_delay(). This is exactly the delay
  /// sim::WireChannel produces for a drive switch into a settled line; a
  /// switch into a partially charged line crosses no later (the state is
  /// closer to the destination rail), so the settled-line delay is the
  /// conservative per-arc bound the static timing analyzer uses.
  double step_delay(bool rising) const {
    return rising ? step_delay_rise_ : step_delay_fall_;
  }

  /// Mode table of the given drive state. The wire output voltage is the
  /// state's .y component; .x is the auxiliary slope state
  /// u = (b2/b1) dV_out/dt.
  const core::ModeTable& drive_table(bool high) const {
    return high ? high_ : low_;
  }

 private:
  WireParams params_;
  double vth_ = 0.0;
  double horizon_ = 0.0;
  double b1_ = 0.0;
  double b2_ = 0.0;
  double drive_delay_ = 0.0;
  double step_delay_rise_ = 0.0;
  double step_delay_fall_ = 0.0;
  core::ModeTable low_;
  core::ModeTable high_;
};

}  // namespace charlie::wire
