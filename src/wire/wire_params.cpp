#include "wire/wire_params.hpp"

#include <cstdio>

#include "util/error.hpp"
#include "wire/wire_tables.hpp"

namespace charlie::wire {

double WireParams::elmore_delay() const {
  // The first ladder moment is minus the Elmore delay; one recursion
  // serves both this and the collapse, so they can never disagree.
  return -wire_moments(*this).m1;
}

void WireParams::validate() const {
  if (!(r_total > 0.0)) {
    throw ConfigError("wire: r_total must be positive, got " +
                      std::to_string(r_total));
  }
  if (!(c_total > 0.0)) {
    throw ConfigError("wire: c_total must be positive, got " +
                      std::to_string(c_total));
  }
  if (n_sections < 1 || n_sections > kMaxWireSections) {
    throw ConfigError("wire: n_sections must be in [1, " +
                      std::to_string(kMaxWireSections) + "], got " +
                      std::to_string(n_sections));
  }
  if (!(r_drive >= 0.0)) {
    throw ConfigError("wire: r_drive must be non-negative");
  }
  if (!(c_load >= 0.0)) {
    throw ConfigError("wire: c_load must be non-negative");
  }
  if (!(vdd > 0.0)) {
    throw ConfigError("wire: vdd must be positive");
  }
  if (!(t_drive >= 0.0)) {
    throw ConfigError("wire: t_drive must be non-negative");
  }
}

std::string WireParams::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "wire{r=%.4g ohm, c=%.4g F, sections=%d, r_drive=%.4g ohm, "
                "c_load=%.4g F, vdd=%.4g V, t_drive=%.4g s}",
                r_total, c_total, n_sections, r_drive, c_load, vdd, t_drive);
  return buf;
}

std::string WireParams::fingerprint() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%.17g|%.17g|%d|%.17g|%.17g|%.17g|%.17g",
                r_total, c_total, n_sections, r_drive, c_load, vdd, t_drive);
  return buf;
}

WireParams WireParams::reference() {
  WireParams p;
  p.r_total = 15e3;    // a long minimum-width wire in the Table-I regime
  p.c_total = 3e-15;   // distributed line capacitance
  p.n_sections = 8;
  p.r_drive = 10e3;    // reference-cell output resistance scale
  p.c_load = 300e-18;  // receiver pin load
  p.vdd = 0.8;
  return p;
}

}  // namespace charlie::wire
