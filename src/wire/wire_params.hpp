// Parameters of the hybrid interconnect (RC-wire) model.
//
// A wire between a driving channel and its fanout is an N-section lumped
// RC ladder: the driver couples in through its output resistance r_drive,
// each section contributes r_total/N in series and c_total/N to ground, and
// the receiver pin adds c_load at the far end. The ladder is collapsed to
// the same affine 2-state form the gate modes use (wire/wire_tables.hpp),
// so the whole two-exponential hybrid machinery -- scalar expansion,
// spectral projectors, Newton crossing solve -- carries over to
// interconnect unchanged.
#pragma once

#include <string>

namespace charlie::wire {

/// Upper bound on ladder discretization; beyond this the second-order
/// collapse has long converged to the distributed-line limit.
inline constexpr int kMaxWireSections = 64;

struct WireParams {
  double r_total = 0.0;  // total line resistance [ohm]
  double c_total = 0.0;  // total line capacitance [farad]
  int n_sections = 8;    // ladder sections the collapse integrates
  double r_drive = 0.0;  // driver output resistance [ohm], may be 0
  double c_load = 0.0;   // receiver pin capacitance [farad], may be 0
  double vdd = 0.8;      // supply voltage [volt]
  // Time constant of the driver's output edge [s]; 0 models an ideal rail
  // step at the event time. A real driver edge crosses V_th at the event
  // time but delivers its charge around the edge's *centroid*, which for an
  // exponential edge lags by (1 - ln 2) t_drive; the wire channel applies
  // that first-moment correction to every drive switch (the same
  // moment-matching philosophy as the ladder collapse, and the wire's
  // analogue of the gate model's pure delay delta_min).
  double t_drive = 0.0;

  /// Discretization threshold V_th = VDD/2 (the receiver's mode-switch
  /// threshold; same convention as the gate models).
  double vth() const { return 0.5 * vdd; }

  /// First moment of the ladder (Elmore delay), r_drive and c_load
  /// included. This is the delay the inertial lumped-load baseline uses.
  double elmore_delay() const;

  /// Throws ConfigError unless r_total and c_total are positive, vdd is
  /// positive, 1 <= n_sections <= kMaxWireSections, and r_drive/c_load are
  /// non-negative.
  void validate() const;

  std::string to_string() const;

  /// Value-identity key (full-precision field dump). Equal fingerprints
  /// produce identical collapsed tables, so builders memoize on it.
  std::string fingerprint() const;

  /// Wire in the Table-I regime (tens of kOhm, femtofarad line): RC
  /// comparable to the reference cells' 28-56 ps gate delays.
  static WireParams reference();
};

}  // namespace charlie::wire
