#include "waveform/edges.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace charlie::waveform {
namespace {

// Builder tracking the current linear segment of the synthesized signal.
class SlewBuilder {
 public:
  SlewBuilder(Waveform& out, double t0, double v0)
      : out_(out), t_cur_(t0), v_cur_(v0) {
    out_.append(t0, v0);
  }

  // Move along the current course to absolute time `t` and drop a breakpoint.
  void emit_at(double t) {
    if (t <= t_cur_) return;
    advance(t);
    out_.append(t_cur_, v_cur_);
  }

  // Switch to the ramp of slope `m` through (t_i, v_th) heading to `rail`.
  void switch_to_edge(double t_i, double m, double v_th, double rail) {
    CHARLIE_ASSERT(m != 0.0);
    double t_switch;
    if (slope_ == 0.0) {
      // Flat: the new line reaches the current level at its departure point.
      t_switch = t_i + (v_cur_ - v_th) / m;
    } else {
      // Ramping (opposite slope): intersect the two lines, but if the
      // current ramp saturates at its rail first, depart from the flat part.
      const double t_rail = t_cur_ + (rail_ - v_cur_) / slope_;
      const double t_lines =
          (v_th - m * t_i - v_cur_ + slope_ * t_cur_) / (slope_ - m);
      if (t_lines <= t_rail) {
        t_switch = t_lines;
      } else {
        emit_at(t_rail);  // also records the rail-hit corner
        t_switch = t_i + (v_cur_ - v_th) / m;
      }
    }
    t_switch = std::max(t_switch, t_cur_);
    emit_at(t_switch);
    slope_ = m;
    rail_ = rail;
  }

  // Complete any in-flight ramp (corner at the rail) and hold flat to t_end.
  void finish(double t_end) {
    if (slope_ != 0.0) {
      const double t_rail = t_cur_ + (rail_ - v_cur_) / slope_;
      if (t_rail < t_end) {
        emit_at(t_rail);
        slope_ = 0.0;
      }
    }
    emit_at(t_end);
  }

 private:
  void advance(double t) {
    if (slope_ != 0.0) {
      const double t_rail = t_cur_ + (rail_ - v_cur_) / slope_;
      if (t >= t_rail) {
        // Passed the corner: record it so interpolation stays exact. When
        // the query lands exactly on the corner, the caller's append covers
        // it -- appending here too would duplicate the timestamp.
        if (t_rail > t_cur_ && t > t_rail) {
          out_.append(t_rail, rail_);
        }
        t_cur_ = std::max(t_rail, t_cur_);
        v_cur_ = rail_;
        slope_ = 0.0;
      }
    }
    v_cur_ += slope_ * (t - t_cur_);
    t_cur_ = t;
  }

  Waveform& out_;
  double t_cur_;
  double v_cur_;
  double slope_ = 0.0;
  double rail_ = 0.0;
};

}  // namespace

Waveform slew_limited_waveform(const DigitalTrace& trace,
                               const EdgeParams& params, double t_begin,
                               double t_end) {
  CHARLIE_ASSERT(t_end > t_begin);
  CHARLIE_ASSERT(params.v_high > params.v_low);
  CHARLIE_ASSERT(params.rise_time > 0.0);

  const double s = params.slew_rate();
  const double v_th = params.v_threshold();

  Waveform out;
  const double v0 = trace.initial_value() ? params.v_high : params.v_low;
  SlewBuilder builder(out, t_begin, v0);

  const auto& ts = trace.transitions();
  for (std::size_t i = 0; i < ts.size(); ++i) {
    if (ts[i] >= t_end) break;
    const bool rising = trace.is_rising(i);
    const double m = rising ? s : -s;
    const double rail = rising ? params.v_high : params.v_low;
    builder.switch_to_edge(ts[i], m, v_th, rail);
  }
  builder.finish(t_end);
  return out;
}

}  // namespace charlie::waveform
