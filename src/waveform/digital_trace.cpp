#include "waveform/digital_trace.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace charlie::waveform {

DigitalTrace::DigitalTrace(bool initial_value, std::vector<double> transitions)
    : initial_(initial_value), transitions_(std::move(transitions)) {
  for (std::size_t i = 1; i < transitions_.size(); ++i) {
    CHARLIE_ASSERT_MSG(transitions_[i - 1] < transitions_[i],
                       "transitions must be strictly time-ordered");
  }
}

void DigitalTrace::append_transition(double t) {
  CHARLIE_ASSERT_MSG(transitions_.empty() || t > transitions_.back(),
                     "transition must advance time");
  transitions_.push_back(t);
}

bool DigitalTrace::value_at(double t) const {
  // Count transitions at or before t.
  const auto it =
      std::upper_bound(transitions_.begin(), transitions_.end(), t);
  const std::size_t count =
      static_cast<std::size_t>(std::distance(transitions_.begin(), it));
  return initial_ != (count % 2 == 1);
}

bool DigitalTrace::final_value() const {
  return initial_ != (transitions_.size() % 2 == 1);
}

bool DigitalTrace::is_rising(std::size_t i) const {
  CHARLIE_ASSERT(i < transitions_.size());
  // Value before transition i is initial_ flipped i times; the transition
  // rises when that value is 0.
  const bool before = initial_ != (i % 2 == 1);
  return !before;
}

DigitalTrace DigitalTrace::without_short_pulses(double min_width) const {
  CHARLIE_ASSERT(min_width >= 0.0);
  // Repeatedly drop adjacent transition pairs closer than min_width;
  // removing a pair can merge its neighbours into a new short pulse, so
  // iterate to a fixed point (the classic inertial cancellation cascade).
  std::vector<double> ts = transitions_;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
      if (ts[i + 1] - ts[i] < min_width) {
        ts.erase(ts.begin() + static_cast<std::ptrdiff_t>(i),
                 ts.begin() + static_cast<std::ptrdiff_t>(i) + 2);
        changed = true;
        break;
      }
    }
  }
  return DigitalTrace(initial_, std::move(ts));
}

DigitalTrace DigitalTrace::window(double t0, double t1) const {
  CHARLIE_ASSERT(t1 >= t0);
  DigitalTrace out(value_at(t0), {});
  for (double t : transitions_) {
    if (t > t0 && t <= t1) out.append_transition(t);
  }
  return out;
}

}  // namespace charlie::waveform
