#include "waveform/digitize.hpp"

#include "util/error.hpp"
#include "util/math.hpp"

namespace charlie::waveform {

std::vector<Crossing> find_crossings(const Waveform& w, double threshold) {
  std::vector<Crossing> out;
  const auto& s = w.samples();
  if (s.size() < 2) return out;

  // Track the current digital state; emit a crossing whenever it flips.
  bool state = s.front().v > threshold;
  for (std::size_t i = 1; i < s.size(); ++i) {
    const double v0 = s[i - 1].v;
    const double v1 = s[i].v;
    const bool next_state = v1 > threshold ? true
                            : v1 < threshold ? false
                                             : state;  // exactly on: hold
    if (next_state == state) continue;
    double t_cross;
    if (v1 == v0) {
      // Flat segment ending on the far side: the level change happened no
      // later than the segment start (defensive; interpolation below covers
      // every sloped segment).
      t_cross = s[i - 1].t;
    } else {
      t_cross = s[i - 1].t + (threshold - v0) / (v1 - v0) *
                                 (s[i].t - s[i - 1].t);
      t_cross = math::clamp(t_cross, s[i - 1].t, s[i].t);
    }
    out.push_back({t_cross, next_state});
    state = next_state;
  }
  return out;
}

DigitalTrace digitize(const Waveform& w, double threshold) {
  CHARLIE_ASSERT_MSG(!w.empty(), "digitize of empty waveform");
  const bool initial = w.samples().front().v > threshold;
  DigitalTrace trace(initial, {});
  double last_t = -1e300;
  for (const Crossing& c : find_crossings(w, threshold)) {
    // Guard against two crossings landing on the same timestamp after
    // interpolation rounding; nudge by the smallest representable amount.
    const double t = c.t > last_t ? c.t : std::nextafter(last_t, 1e300);
    trace.append_transition(t);
    last_t = t;
  }
  return trace;
}

}  // namespace charlie::waveform
