// Piecewise-linear analog waveform (time-ordered (t, v) breakpoints).
//
// Used for SPICE PWL sources, for recording simulated node voltages, and as
// the common format digitized into DigitalTrace.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace charlie::waveform {

struct Sample {
  double t = 0.0;
  double v = 0.0;
};

class Waveform {
 public:
  Waveform() = default;
  explicit Waveform(std::vector<Sample> samples);

  /// Append a sample; time must be strictly increasing.
  void append(double t, double v);

  /// Linear interpolation; clamps to the first/last value outside the span.
  double value_at(double t) const;

  /// Sample a callable on an even grid over [t0, t1].
  static Waveform from_function(const std::function<double(double)>& f,
                                double t0, double t1, std::size_t n_samples);

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  const std::vector<Sample>& samples() const { return samples_; }
  double t_front() const;
  double t_back() const;

  /// Minimum / maximum sample value (requires non-empty).
  double v_min() const;
  double v_max() const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace charlie::waveform
