#include "waveform/generator.hpp"

#include <algorithm>
#include <cstdio>

#include "util/error.hpp"
#include "util/units.hpp"

namespace charlie::waveform {

std::string TraceConfig::label() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g/%g - %s", mu / units::ps,
                sigma / units::ps, global_mode ? "GLOBAL" : "LOCAL");
  return buf;
}

std::vector<DigitalTrace> generate_traces(const TraceConfig& config,
                                          std::size_t n_inputs,
                                          util::Rng& rng) {
  CHARLIE_ASSERT(n_inputs >= 1);
  CHARLIE_ASSERT(config.n_transitions >= 1);
  CHARLIE_ASSERT(config.min_width > 0.0);

  std::vector<DigitalTrace> traces;
  traces.reserve(n_inputs);

  if (!config.global_mode) {
    for (std::size_t i = 0; i < n_inputs; ++i) {
      DigitalTrace trace(false, {});
      double t = config.t_start;
      for (std::size_t k = 0; k < config.n_transitions; ++k) {
        t += rng.normal_above(config.mu, config.sigma, config.min_width);
        trace.append_transition(t);
      }
      traces.push_back(std::move(trace));
    }
    return traces;
  }

  // GLOBAL: one master schedule; each transition lands on one input, so
  // different inputs rarely switch close together.
  for (std::size_t i = 0; i < n_inputs; ++i) {
    traces.emplace_back(false, std::vector<double>{});
  }
  double t = config.t_start;
  for (std::size_t k = 0; k < config.n_transitions; ++k) {
    t += rng.normal_above(config.mu, config.sigma, config.min_width);
    const std::size_t input = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n_inputs) - 1));
    traces[input].append_transition(t);
  }
  return traces;
}

std::vector<TraceConfig> paper_fig7_configs() {
  using units::ps;
  std::vector<TraceConfig> configs(4);
  configs[0] = {100 * ps, 50 * ps, false, 500, 0.0, 1 * ps};
  configs[1] = {200 * ps, 100 * ps, false, 500, 0.0, 1 * ps};
  configs[2] = {2000 * ps, 1000 * ps, true, 500, 0.0, 1 * ps};
  configs[3] = {5000 * ps, 5 * ps, true, 250, 0.0, 1 * ps};
  return configs;
}

}  // namespace charlie::waveform
