// Digital (binary) signal trace: an initial value plus strictly increasing
// transition times, each flipping the value. This is the signal format the
// event-driven simulator and the deviation-area metric operate on.
#pragma once

#include <cstddef>
#include <vector>

namespace charlie::waveform {

class DigitalTrace {
 public:
  DigitalTrace() = default;
  DigitalTrace(bool initial_value, std::vector<double> transitions);

  /// Append a transition; must advance time.
  void append_transition(double t);

  /// Pre-size the transition storage (capacity hint, e.g. from stimulus
  /// statistics in the event-driven simulator).
  void reserve(std::size_t n) { transitions_.reserve(n); }

  /// Reset to an empty trace with the given initial value, keeping the
  /// transition storage capacity (arena reuse across simulation runs).
  void reset(bool initial_value) {
    initial_ = initial_value;
    transitions_.clear();
  }

  /// Signal value at time t (transitions take effect at exactly t).
  bool value_at(double t) const;

  bool initial_value() const { return initial_; }
  bool final_value() const;
  const std::vector<double>& transitions() const { return transitions_; }
  std::size_t n_transitions() const { return transitions_.size(); }
  bool empty() const { return transitions_.empty(); }

  /// Direction of transition `i`: true = rising (0 -> 1).
  bool is_rising(std::size_t i) const;

  /// Remove pulse pairs shorter than `min_width` (both polarities), the way
  /// an ideal inertial filter would. Returns the filtered trace.
  DigitalTrace without_short_pulses(double min_width) const;

  /// Restrict to transitions inside [t0, t1]; the initial value becomes
  /// value_at(t0).
  DigitalTrace window(double t0, double t1) const;

 private:
  bool initial_ = false;
  std::vector<double> transitions_;
};

}  // namespace charlie::waveform
