// Threshold digitization of analog waveforms.
//
// Both the paper's analog reference traces and our hybrid-model output
// voltages are reduced to digital traces by recording V = Vth crossings
// (Vth = VDD/2 throughout the paper).
#pragma once

#include <vector>

#include "waveform/digital_trace.hpp"
#include "waveform/waveform.hpp"

namespace charlie::waveform {

struct Crossing {
  double t = 0.0;
  bool rising = false;  // analog signal crossing threshold upward
};

/// All threshold crossings of `w`, by linear interpolation inside segments.
/// Touching the threshold without crossing is not a crossing. Segments that
/// sit exactly on the threshold are resolved by the eventual departure
/// direction.
std::vector<Crossing> find_crossings(const Waveform& w, double threshold);

/// Digitize: initial value is (v(t_front) > threshold), one transition per
/// crossing.
DigitalTrace digitize(const Waveform& w, double threshold);

}  // namespace charlie::waveform
