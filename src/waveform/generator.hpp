// Random input-trace generation for the accuracy experiments (paper §VI).
//
// The paper's waveform configurations are written "mu/sigma - MODE", e.g.
// "100/50 - LOCAL": inter-transition gaps are drawn from N(mu, sigma)
// picoseconds.
//   LOCAL  -- transitions are generated independently for each input, so
//             transitions on different inputs frequently land close
//             together (small |Delta|, heavy MIS activity).
//   GLOBAL -- ONE global transition sequence is generated and every
//             transition is assigned to a single (random) input, so
//             concurrent switching on different inputs is unlikely
//             (|Delta| is of the order of the pulse width); this probes
//             the SIS asymptotes of the models.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "waveform/digital_trace.hpp"

namespace charlie::waveform {

struct TraceConfig {
  double mu = 100e-12;     // mean pulse width [s]
  double sigma = 50e-12;   // std-dev of pulse width [s]
  bool global_mode = false;
  std::size_t n_transitions = 500;  // per input
  double t_start = 0.0;             // first transition lands after t_start
  double min_width = 1e-12;         // truncation floor for drawn widths

  /// Paper-style label, e.g. "100/50 - LOCAL" (mu/sigma in ps).
  std::string label() const;
};

/// Generate `n_inputs` digital traces per `config`. All inputs start at
/// logic 0. In GLOBAL mode, `n_transitions` counts the transitions of the
/// global sequence (so the per-input count is roughly n / n_inputs).
std::vector<DigitalTrace> generate_traces(const TraceConfig& config,
                                          std::size_t n_inputs,
                                          util::Rng& rng);

/// The four waveform configurations evaluated in the paper's Fig 7.
std::vector<TraceConfig> paper_fig7_configs();

}  // namespace charlie::waveform
