// Analog edge synthesis: digital traces -> slew-limited analog waveforms.
//
// The paper drives its SPICE reference with the standard-cell library's
// input ramps f_up/f_down, with t_A/t_B defined as the Vth = VDD/2 crossing
// times. We model the driver as slew-limited: each digital transition at
// time t_i launches a linear ramp that crosses Vth exactly at t_i (when
// reachable). Overlapping edges -- pulses shorter than the edge duration --
// produce the physically expected runt triangles.
#pragma once

#include "waveform/digital_trace.hpp"
#include "waveform/waveform.hpp"

namespace charlie::waveform {

struct EdgeParams {
  double v_low = 0.0;
  double v_high = 0.8;       // FreePDK15 VDD used throughout the paper
  double rise_time = 20e-12; // full-swing edge duration [s]

  double slew_rate() const { return (v_high - v_low) / rise_time; }
  double v_threshold() const { return 0.5 * (v_low + v_high); }
};

/// Build the analog waveform for `trace` over [t_begin, t_end].
///
/// Each transition's ramp is the line through (t_i, Vth) with slope
/// +/- slew_rate; the signal follows its current trajectory until it meets
/// the next transition's line, then follows that line until it hits a rail.
Waveform slew_limited_waveform(const DigitalTrace& trace,
                               const EdgeParams& params, double t_begin,
                               double t_end);

}  // namespace charlie::waveform
