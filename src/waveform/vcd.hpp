// Value Change Dump (IEEE 1364 §18) export of simulation traces.
//
// write_vcd() serializes DigitalTraces -- and optionally analog sample
// series such as a hybrid channel's (u, V_O) state -- into the standard
// VCD text format GTKWave and every other waveform viewer load directly.
// Times are quantized to an integer timescale (default 1 fs, comfortably
// below the engine's crossing-solve resolution), digital signals become
// 1-bit wires, analog series become $var real dumps.
//
// parse_vcd() is the minimal inverse for the digital subset this writer
// emits (single flat scope, 1-bit wires, real vars ignored): enough to
// round-trip our own output and diff edges against the source traces,
// which is how tests/waveform/test_vcd.cpp locks the format.
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "waveform/digital_trace.hpp"

namespace charlie::waveform {

struct VcdDigitalSignal {
  std::string name;
  const DigitalTrace* trace = nullptr;  // borrowed; must outlive the call
};

struct VcdAnalogSignal {
  std::string name;
  /// Time-sorted (t, value) samples.
  std::vector<std::pair<double, double>> samples;
};

struct VcdOptions {
  /// Seconds per VCD time unit; transition times are rounded to the nearest
  /// tick. 1 fs keeps sub-ps crossing times to < 0.5 fs quantization error.
  double timescale = 1e-15;
  /// Name of the single $scope module wrapping all signals.
  std::string module = "charlie";
};

/// Write header + $dumpvars + time-ordered value changes. Signal names must
/// be unique; traces quantizing two transitions of one signal onto the same
/// tick keep both (the later change wins visually, as in any VCD).
void write_vcd(std::ostream& os, const std::vector<VcdDigitalSignal>& digital,
               const std::vector<VcdAnalogSignal>& analog = {},
               const VcdOptions& options = {});
void write_vcd(const std::string& path,
               const std::vector<VcdDigitalSignal>& digital,
               const std::vector<VcdAnalogSignal>& analog = {},
               const VcdOptions& options = {});

struct VcdData {
  double timescale = 1e-15;  // seconds per tick
  /// Digital signals by name; transition times are tick * timescale.
  std::map<std::string, DigitalTrace> digital;
};

/// Parse the digital subset write_vcd emits. Throws ConfigError on
/// structurally invalid input (unknown id codes, missing header sections).
VcdData parse_vcd(std::istream& is);
VcdData parse_vcd_file(const std::string& path);

}  // namespace charlie::waveform
