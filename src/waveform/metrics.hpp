// Accuracy metrics between digital traces.
//
// The paper's Fig 7 compares delay models by "deviation area": the digitized
// SPICE trace is subtracted from the model's trace and the absolute area is
// summed -- for 0/1 signals this is the total time the two traces disagree.
// Results are then normalized against the inertial-delay baseline.
#pragma once

#include <vector>

#include "waveform/digital_trace.hpp"

namespace charlie::waveform {

/// Total time within [t0, t1] where the two traces differ (the paper's
/// deviation area for unit-amplitude signals). Symmetric and >= 0; zero iff
/// the traces agree almost everywhere in the window.
double deviation_area(const DigitalTrace& a, const DigitalTrace& b, double t0,
                      double t1);

/// Per-edge delay statistics between a reference trace and a model trace:
/// pairs each reference transition with the nearest same-direction model
/// transition (within `pairing_window`) and reports the signed offsets.
struct EdgePairingStats {
  std::vector<double> offsets;  // model time minus reference time, per pair
  std::size_t unmatched_reference = 0;
  std::size_t unmatched_model = 0;
  double mean_abs_offset = 0.0;
  double max_abs_offset = 0.0;
};

EdgePairingStats pair_edges(const DigitalTrace& reference,
                            const DigitalTrace& model,
                            double pairing_window);

}  // namespace charlie::waveform
