#include "waveform/waveform.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/math.hpp"

namespace charlie::waveform {

Waveform::Waveform(std::vector<Sample> samples) : samples_(std::move(samples)) {
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    CHARLIE_ASSERT_MSG(samples_[i - 1].t < samples_[i].t,
                       "waveform samples must be strictly time-ordered");
  }
}

void Waveform::append(double t, double v) {
  CHARLIE_ASSERT_MSG(samples_.empty() || t > samples_.back().t,
                     "waveform append must advance time");
  samples_.push_back({t, v});
}

double Waveform::value_at(double t) const {
  CHARLIE_ASSERT_MSG(!samples_.empty(), "value_at on empty waveform");
  if (t <= samples_.front().t) return samples_.front().v;
  if (t >= samples_.back().t) return samples_.back().v;
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const Sample& s, double value) { return s.t < value; });
  const Sample& hi = *it;
  const Sample& lo = *(it - 1);
  return math::lerp_at(lo.t, lo.v, hi.t, hi.v, t);
}

Waveform Waveform::from_function(const std::function<double(double)>& f,
                                 double t0, double t1,
                                 std::size_t n_samples) {
  CHARLIE_ASSERT(n_samples >= 2);
  Waveform w;
  for (double t : math::linspace(t0, t1, n_samples)) {
    w.append(t, f(t));
  }
  return w;
}

double Waveform::t_front() const {
  CHARLIE_ASSERT(!samples_.empty());
  return samples_.front().t;
}

double Waveform::t_back() const {
  CHARLIE_ASSERT(!samples_.empty());
  return samples_.back().t;
}

double Waveform::v_min() const {
  CHARLIE_ASSERT(!samples_.empty());
  return std::min_element(samples_.begin(), samples_.end(),
                          [](const Sample& a, const Sample& b) {
                            return a.v < b.v;
                          })
      ->v;
}

double Waveform::v_max() const {
  CHARLIE_ASSERT(!samples_.empty());
  return std::max_element(samples_.begin(), samples_.end(),
                          [](const Sample& a, const Sample& b) {
                            return a.v < b.v;
                          })
      ->v;
}

}  // namespace charlie::waveform
