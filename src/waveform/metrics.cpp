#include "waveform/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace charlie::waveform {

double deviation_area(const DigitalTrace& a, const DigitalTrace& b, double t0,
                      double t1) {
  CHARLIE_ASSERT_MSG(t1 >= t0, "deviation_area: inverted window");
  // Sweep the merged transition sequence; accumulate segment lengths where
  // the values differ.
  const auto& ta = a.transitions();
  const auto& tb = b.transitions();
  std::size_t ia =
      std::lower_bound(ta.begin(), ta.end(), t0) - ta.begin();
  std::size_t ib =
      std::lower_bound(tb.begin(), tb.end(), t0) - tb.begin();

  double t = t0;
  bool va = a.value_at(t0);
  bool vb = b.value_at(t0);
  // value_at uses upper_bound semantics (transition effective at its own
  // timestamp); if a transition sits exactly at t0 it is already reflected
  // in va/vb, so skip it in the sweep.
  while (ia < ta.size() && ta[ia] <= t0) ++ia;
  while (ib < tb.size() && tb[ib] <= t0) ++ib;

  double area = 0.0;
  while (t < t1) {
    const double next_a = ia < ta.size() ? ta[ia] : t1;
    const double next_b = ib < tb.size() ? tb[ib] : t1;
    const double t_next = std::min({next_a, next_b, t1});
    if (va != vb) area += t_next - t;
    if (t_next >= t1) break;
    if (next_a == t_next && ia < ta.size()) {
      va = !va;
      ++ia;
    }
    if (next_b == t_next && ib < tb.size()) {
      vb = !vb;
      ++ib;
    }
    t = t_next;
  }
  return area;
}

EdgePairingStats pair_edges(const DigitalTrace& reference,
                            const DigitalTrace& model,
                            double pairing_window) {
  CHARLIE_ASSERT(pairing_window > 0.0);
  EdgePairingStats stats;
  const auto& rt = reference.transitions();
  const auto& mt = model.transitions();
  std::vector<bool> model_used(mt.size(), false);

  for (std::size_t i = 0; i < rt.size(); ++i) {
    const bool dir = reference.is_rising(i);
    double best = pairing_window;
    std::ptrdiff_t best_j = -1;
    // Nearest unused same-direction model edge.
    for (std::size_t j = 0; j < mt.size(); ++j) {
      if (model_used[j] || model.is_rising(j) != dir) continue;
      const double d = std::fabs(mt[j] - rt[i]);
      if (d < best) {
        best = d;
        best_j = static_cast<std::ptrdiff_t>(j);
      }
    }
    if (best_j >= 0) {
      model_used[static_cast<std::size_t>(best_j)] = true;
      stats.offsets.push_back(mt[static_cast<std::size_t>(best_j)] - rt[i]);
    } else {
      ++stats.unmatched_reference;
    }
  }
  stats.unmatched_model =
      static_cast<std::size_t>(std::count(model_used.begin(),
                                          model_used.end(), false));
  double acc = 0.0;
  for (double o : stats.offsets) {
    const double a = std::fabs(o);
    acc += a;
    stats.max_abs_offset = std::max(stats.max_abs_offset, a);
  }
  stats.mean_abs_offset =
      stats.offsets.empty() ? 0.0
                            : acc / static_cast<double>(stats.offsets.size());
  return stats;
}

}  // namespace charlie::waveform
