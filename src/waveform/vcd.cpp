#include "waveform/vcd.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace charlie::waveform {

namespace {

// VCD id codes: shortest base-94 strings over the printable ASCII range
// '!'..'~', the same scheme real simulators emit.
std::string id_code(std::size_t index) {
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index > 0);
  return id;
}

long long to_tick(double t, double timescale) {
  return static_cast<long long>(std::llround(t / timescale));
}

// Timescale directive text: VCD only allows {1,10,100}{s..fs}; we emit the
// decade at or below the requested resolution and scale ticks accordingly.
struct Timescale {
  std::string text;
  double seconds;
};

Timescale timescale_directive(double requested) {
  static constexpr struct {
    const char* text;
    double seconds;
  } kScales[] = {
      {"1 s", 1.0},      {"100 ms", 1e-1},  {"10 ms", 1e-2},  {"1 ms", 1e-3},
      {"100 us", 1e-4},  {"10 us", 1e-5},   {"1 us", 1e-6},   {"100 ns", 1e-7},
      {"10 ns", 1e-8},   {"1 ns", 1e-9},    {"100 ps", 1e-10}, {"10 ps", 1e-11},
      {"1 ps", 1e-12},   {"100 fs", 1e-13}, {"10 fs", 1e-14}, {"1 fs", 1e-15},
  };
  for (const auto& scale : kScales) {
    if (requested >= scale.seconds * (1.0 - 1e-9)) {
      return {scale.text, scale.seconds};
    }
  }
  return {"1 fs", 1e-15};
}

double timescale_seconds(const std::string& magnitude,
                         const std::string& unit) {
  double m = 0.0;
  if (magnitude == "1") {
    m = 1.0;
  } else if (magnitude == "10") {
    m = 10.0;
  } else if (magnitude == "100") {
    m = 100.0;
  } else {
    throw ConfigError("vcd: bad timescale magnitude '" + magnitude + "'");
  }
  double u = 0.0;
  if (unit == "s") {
    u = 1.0;
  } else if (unit == "ms") {
    u = 1e-3;
  } else if (unit == "us") {
    u = 1e-6;
  } else if (unit == "ns") {
    u = 1e-9;
  } else if (unit == "ps") {
    u = 1e-12;
  } else if (unit == "fs") {
    u = 1e-15;
  } else {
    throw ConfigError("vcd: bad timescale unit '" + unit + "'");
  }
  return m * u;
}

struct Change {
  long long tick;
  std::size_t order;  // original emit order; stable tiebreak within a tick
  std::size_t signal; // index into the combined signal table
  bool is_real;
  bool bit;
  double real;
};

}  // namespace

void write_vcd(std::ostream& os, const std::vector<VcdDigitalSignal>& digital,
               const std::vector<VcdAnalogSignal>& analog,
               const VcdOptions& options) {
  const Timescale ts = timescale_directive(options.timescale);

  // Header. Deliberately no $date: output must be bit-identical across runs
  // (the determinism lint and the round-trip test both rely on it).
  os << "$version charlie write_vcd $end\n";
  os << "$timescale " << ts.text << " $end\n";
  os << "$scope module " << options.module << " $end\n";
  std::vector<std::string> ids;
  ids.reserve(digital.size() + analog.size());
  for (std::size_t i = 0; i < digital.size(); ++i) {
    ids.push_back(id_code(i));
    os << "$var wire 1 " << ids.back() << " " << digital[i].name << " $end\n";
  }
  for (std::size_t i = 0; i < analog.size(); ++i) {
    ids.push_back(id_code(digital.size() + i));
    os << "$var real 64 " << ids.back() << " " << analog[i].name << " $end\n";
  }
  os << "$upscope $end\n";
  os << "$enddefinitions $end\n";

  // Initial values at time 0.
  os << "$dumpvars\n";
  char real_buffer[64];
  for (std::size_t i = 0; i < digital.size(); ++i) {
    const bool v0 = digital[i].trace != nullptr && digital[i].trace->initial_value();
    os << (v0 ? '1' : '0') << ids[i] << "\n";
  }
  for (std::size_t i = 0; i < analog.size(); ++i) {
    const double v0 = analog[i].samples.empty() ? 0.0 : analog[i].samples.front().second;
    std::snprintf(real_buffer, sizeof(real_buffer), "%.17g", v0);
    os << 'r' << real_buffer << ' ' << ids[digital.size() + i] << "\n";
  }
  os << "$end\n";

  // Gather all value changes, sort by (tick, emit order), emit grouped under
  // #tick markers. Changes landing on tick 0 still get a #0 group (after
  // $dumpvars), matching common simulator output.
  std::vector<Change> changes;
  for (std::size_t i = 0; i < digital.size(); ++i) {
    if (digital[i].trace == nullptr) continue;
    const DigitalTrace& trace = *digital[i].trace;
    for (std::size_t k = 0; k < trace.n_transitions(); ++k) {
      changes.push_back({to_tick(trace.transitions()[k], ts.seconds),
                         changes.size(), i, false, trace.is_rising(k), 0.0});
    }
  }
  for (std::size_t i = 0; i < analog.size(); ++i) {
    // First sample already emitted in $dumpvars.
    for (std::size_t k = 1; k < analog[i].samples.size(); ++k) {
      changes.push_back({to_tick(analog[i].samples[k].first, ts.seconds),
                         changes.size(), digital.size() + i, true, false,
                         analog[i].samples[k].second});
    }
  }
  std::stable_sort(changes.begin(), changes.end(),
                   [](const Change& a, const Change& b) {
                     if (a.tick != b.tick) return a.tick < b.tick;
                     return a.order < b.order;
                   });

  long long current_tick = -1;
  for (const Change& change : changes) {
    if (change.tick != current_tick) {
      current_tick = change.tick;
      os << '#' << current_tick << "\n";
    }
    if (change.is_real) {
      std::snprintf(real_buffer, sizeof(real_buffer), "%.17g", change.real);
      os << 'r' << real_buffer << ' ' << ids[change.signal] << "\n";
    } else {
      os << (change.bit ? '1' : '0') << ids[change.signal] << "\n";
    }
  }
}

void write_vcd(const std::string& path,
               const std::vector<VcdDigitalSignal>& digital,
               const std::vector<VcdAnalogSignal>& analog,
               const VcdOptions& options) {
  std::ofstream os(path);
  if (!os) throw ConfigError("vcd: cannot write " + path);
  write_vcd(os, digital, analog, options);
}

VcdData parse_vcd(std::istream& is) {
  VcdData data;
  bool saw_timescale = false;
  bool saw_enddefinitions = false;

  struct Signal {
    std::string name;
    bool is_real = false;
    bool value = false;
    bool has_initial = false;
    std::vector<double> transitions;
  };
  std::map<std::string, Signal> by_id;  // id code -> signal state

  long long current_tick = 0;
  std::string token;
  auto read_until_end = [&](std::vector<std::string>& words) {
    words.clear();
    std::string w;
    while (is >> w) {
      if (w == "$end") return;
      words.push_back(w);
    }
    throw ConfigError("vcd: unterminated $ directive");
  };

  std::vector<std::string> words;
  while (is >> token) {
    if (token.empty()) continue;
    if (token[0] == '$') {
      if (token == "$timescale") {
        read_until_end(words);
        // Either "$timescale 1 fs $end" or "$timescale 1fs $end".
        std::string magnitude, unit;
        if (words.size() == 2) {
          magnitude = words[0];
          unit = words[1];
        } else if (words.size() == 1) {
          std::size_t split = 0;
          while (split < words[0].size() &&
                 std::isdigit(static_cast<unsigned char>(words[0][split]))) {
            ++split;
          }
          magnitude = words[0].substr(0, split);
          unit = words[0].substr(split);
        } else {
          throw ConfigError("vcd: malformed $timescale");
        }
        data.timescale = timescale_seconds(magnitude, unit);
        saw_timescale = true;
      } else if (token == "$var") {
        read_until_end(words);
        // $var <type> <width> <id> <name...> $end
        if (words.size() < 4) throw ConfigError("vcd: malformed $var");
        Signal signal;
        signal.is_real = words[0] == "real";
        signal.name = words[3];
        for (std::size_t i = 4; i < words.size(); ++i) {
          signal.name += words[i];  // bit-range suffixes like "[3:0]"
        }
        if (!signal.is_real && words[1] != "1") {
          throw ConfigError("vcd: only 1-bit wires supported, got width " +
                            words[1]);
        }
        by_id[words[2]] = std::move(signal);
      } else if (token == "$enddefinitions") {
        read_until_end(words);
        saw_enddefinitions = true;
      } else if (token == "$dumpvars" || token == "$dumpall" ||
                 token == "$dumpon" || token == "$dumpoff" || token == "$end") {
        // Value-change sections: their contents parse via the normal
        // value-change path below; bare $end closes them.
        continue;
      } else {
        read_until_end(words);  // $date, $version, $comment, $scope, $upscope
      }
      continue;
    }
    if (token[0] == '#') {
      current_tick = std::stoll(token.substr(1));
      continue;
    }
    if (token[0] == '0' || token[0] == '1' || token[0] == 'x' ||
        token[0] == 'X' || token[0] == 'z' || token[0] == 'Z') {
      const std::string id = token.substr(1);
      const auto it = by_id.find(id);
      if (it == by_id.end()) {
        throw ConfigError("vcd: value change for unknown id '" + id + "'");
      }
      const bool value = token[0] == '1';  // x/z collapse to 0
      Signal& signal = it->second;
      if (!signal.has_initial) {
        signal.has_initial = true;
        signal.value = value;
        // An initial change at tick > 0 is also a transition from the
        // (unknown, taken-as-!value) pre-dump state only if the dump says
        // so; write_vcd always dumps initials at tick 0, so treat the first
        // change as the initial value.
      } else if (value != signal.value) {
        signal.value = value;
        const double t = static_cast<double>(current_tick) * data.timescale;
        if (!signal.transitions.empty() && signal.transitions.back() == t) {
          // Two flips on one tick cancel: a sub-tick pulse quantizes away
          // (DigitalTrace requires strictly increasing transition times).
          signal.transitions.pop_back();
        } else {
          signal.transitions.push_back(t);
        }
      }
      continue;
    }
    if (token[0] == 'r' || token[0] == 'R') {
      // Real value change: "r<value> <id>" -- consume the id, ignore.
      std::string id;
      if (!(is >> id)) throw ConfigError("vcd: truncated real value change");
      if (by_id.find(id) == by_id.end()) {
        throw ConfigError("vcd: value change for unknown id '" + id + "'");
      }
      continue;
    }
    if (token[0] == 'b' || token[0] == 'B') {
      throw ConfigError("vcd: vector value changes not supported");
    }
    throw ConfigError("vcd: unrecognized token '" + token + "'");
  }

  if (!saw_timescale) throw ConfigError("vcd: missing $timescale");
  if (!saw_enddefinitions) throw ConfigError("vcd: missing $enddefinitions");

  for (auto& [id, signal] : by_id) {
    if (signal.is_real) continue;
    // Initial value is the dumped value minus the parity of transitions
    // recorded after it -- i.e. the value at the $dumpvars point.
    bool initial = signal.value;
    if (signal.transitions.size() % 2 == 1) initial = !initial;
    data.digital.emplace(signal.name,
                         DigitalTrace(initial, std::move(signal.transitions)));
  }
  return data;
}

VcdData parse_vcd_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw ConfigError("vcd: cannot read " + path);
  return parse_vcd(is);
}

}  // namespace charlie::waveform
