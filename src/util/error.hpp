// Error handling for the charlie library.
//
// Policy (per C++ Core Guidelines E.*): exceptions for runtime errors that a
// caller can plausibly handle, CHARLIE_ASSERT for internal invariants whose
// violation indicates a bug. Assertions throw `charlie::AssertionError`
// (rather than aborting) so tests can verify that invalid inputs are caught.
#pragma once

#include <stdexcept>
#include <string>

namespace charlie {

/// Thrown when a CHARLIE_ASSERT invariant is violated.
class AssertionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a numerical routine fails to converge.
class ConvergenceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when user-provided configuration is invalid.
class ConfigError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

namespace detail {
[[noreturn]] void assertion_failed(const char* expr, const char* file,
                                   int line, const std::string& msg);
}  // namespace detail

}  // namespace charlie

#define CHARLIE_ASSERT(expr)                                              \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::charlie::detail::assertion_failed(#expr, __FILE__, __LINE__, ""); \
    }                                                                     \
  } while (false)

#define CHARLIE_ASSERT_MSG(expr, msg)                                       \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::charlie::detail::assertion_failed(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (false)
