// Minimal CSV writer used by benches and examples to dump figure data.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace charlie::util {

/// Writes rows of doubles with a header line. Files land wherever the caller
/// points them (benches use ./bench_out). Throws ConfigError if the file
/// cannot be opened.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> columns);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Append one row; size must match the header.
  void row(const std::vector<double>& values);

  /// Append one row of preformatted strings; size must match the header.
  void row_text(const std::vector<std::string>& values);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::size_t n_columns_;
  std::ofstream out_;
};

/// Ensure a directory exists (mkdir -p semantics). Returns the path.
std::string ensure_directory(const std::string& path);

}  // namespace charlie::util
