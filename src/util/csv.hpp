// Minimal CSV writer/reader used by benches and examples to dump and
// reload figure data, plus the strict numeric field parsing both the reader
// and the CLI flag parser share.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace charlie::util {

/// Strict whole-field parse of a double: leading/trailing whitespace is
/// tolerated, but the entire remaining field must be consumed -- trailing
/// garbage after a valid number ("1.5abc", "3e", "1.2.3") is rejected with
/// ConfigError, as are empty fields, overflow, and the non-finite literals
/// ("nan", "inf"). `context` names the field in the error message.
double parse_double_field(const std::string& text, const std::string& context);

/// Strict whole-field parse of a base-10 integer (same rules).
long parse_long_field(const std::string& text, const std::string& context);

/// Writes rows of doubles with a header line. Files land wherever the caller
/// points them (benches use ./bench_out). Throws ConfigError if the file
/// cannot be opened.
class CsvWriter {
 public:
  CsvWriter(const std::string& path, std::vector<std::string> columns);
  ~CsvWriter();

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Append one row; size must match the header.
  void row(const std::vector<double>& values);

  /// Append one row of preformatted strings; size must match the header.
  void row_text(const std::vector<std::string>& values);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::size_t n_columns_;
  std::ofstream out_;
};

/// A numeric CSV file read back into memory: the header row plus one
/// vector of doubles per data row.
struct CsvData {
  std::vector<std::string> columns;
  std::vector<std::vector<double>> rows;
};

/// Read a CSV written by CsvWriter (header + numeric rows). Every field is
/// parsed strictly (parse_double_field); malformed fields, ragged rows, and
/// a missing header throw ConfigError with the offending line number.
CsvData read_numeric_csv(const std::string& path);

/// Ensure a directory exists (mkdir -p semantics). Returns the path.
std::string ensure_directory(const std::string& path);

/// Read a whole text file into a string. Throws ConfigError if the file
/// cannot be opened or read.
std::string read_text_file(const std::string& path);

}  // namespace charlie::util
