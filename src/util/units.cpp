#include "util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace charlie::units {
namespace {

struct Scale {
  double factor;
  const char* suffix;
};

std::string format_scaled(double value, int precision,
                          const std::array<Scale, 7>& scales,
                          const char* base_suffix) {
  const double mag = std::fabs(value);
  char buf[64];
  if (mag == 0.0) {
    std::snprintf(buf, sizeof buf, "%.*f %s", precision, 0.0, base_suffix);
    return buf;
  }
  for (const auto& s : scales) {
    if (mag >= s.factor) {
      std::snprintf(buf, sizeof buf, "%.*f %s", precision, value / s.factor,
                    s.suffix);
      return buf;
    }
  }
  const auto& last = scales.back();
  std::snprintf(buf, sizeof buf, "%.*f %s", precision, value / last.factor,
                last.suffix);
  return buf;
}

}  // namespace

std::string format_time(double seconds_value, int precision) {
  static constexpr std::array<Scale, 7> scales{{{1.0, "s"},
                                                {1e-3, "ms"},
                                                {1e-6, "us"},
                                                {1e-9, "ns"},
                                                {1e-12, "ps"},
                                                {1e-15, "fs"},
                                                {1e-18, "as"}}};
  return format_scaled(seconds_value, precision, scales, "s");
}

std::string format_resistance(double ohms_value, int precision) {
  static constexpr std::array<Scale, 7> scales{{{1e9, "GOhm"},
                                                {1e6, "MOhm"},
                                                {1e3, "kOhm"},
                                                {1.0, "Ohm"},
                                                {1e-3, "mOhm"},
                                                {1e-6, "uOhm"},
                                                {1e-9, "nOhm"}}};
  return format_scaled(ohms_value, precision, scales, "Ohm");
}

std::string format_capacitance(double farads_value, int precision) {
  static constexpr std::array<Scale, 7> scales{{{1.0, "F"},
                                                {1e-3, "mF"},
                                                {1e-6, "uF"},
                                                {1e-9, "nF"},
                                                {1e-12, "pF"},
                                                {1e-15, "fF"},
                                                {1e-18, "aF"}}};
  return format_scaled(farads_value, precision, scales, "F");
}

std::string format_voltage(double volts_value, int precision) {
  static constexpr std::array<Scale, 7> scales{{{1e3, "kV"},
                                                {1.0, "V"},
                                                {1e-3, "mV"},
                                                {1e-6, "uV"},
                                                {1e-9, "nV"},
                                                {1e-12, "pV"},
                                                {1e-15, "fV"}}};
  return format_scaled(volts_value, precision, scales, "V");
}

}  // namespace charlie::units
