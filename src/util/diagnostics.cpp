#include "util/diagnostics.hpp"

namespace charlie::util {

RunCounters& RunCounters::local() {
  thread_local RunCounters counters;
  return counters;
}

RunCounters RunCounters::operator-(const RunCounters& other) const {
  RunCounters d;
  d.newton_brent_fallbacks =
      newton_brent_fallbacks - other.newton_brent_fallbacks;
  d.scan_fallbacks = scan_fallbacks - other.scan_fallbacks;
  d.nonfinite_guard_trips =
      nonfinite_guard_trips - other.nonfinite_guard_trips;
  d.fit_fallbacks = fit_fallbacks - other.fit_fallbacks;
  return d;
}

RunCounters& RunCounters::operator+=(const RunCounters& other) {
  newton_brent_fallbacks += other.newton_brent_fallbacks;
  scan_fallbacks += other.scan_fallbacks;
  nonfinite_guard_trips += other.nonfinite_guard_trips;
  fit_fallbacks += other.fit_fallbacks;
  return *this;
}

}  // namespace charlie::util
