#include "util/math.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace charlie::math {

bool almost_equal(double a, double b, double rtol, double atol) {
  const double diff = std::fabs(a - b);
  const double scale = std::max(std::fabs(a), std::fabs(b));
  return diff <= atol + rtol * scale;
}

double lerp_at(double x0, double y0, double x1, double y1, double x) {
  CHARLIE_ASSERT_MSG(x0 != x1, "lerp_at: degenerate segment");
  const double t = (x - x0) / (x1 - x0);
  return y0 + t * (y1 - y0);
}

double clamp(double v, double lo, double hi) {
  CHARLIE_ASSERT(lo <= hi);
  return std::min(std::max(v, lo), hi);
}

double log1mexp(double x) {
  CHARLIE_ASSERT_MSG(x < 0.0, "log1mexp requires x < 0");
  // Split point from Maechler (2012): use expm1 for x > -ln2, log1p otherwise.
  constexpr double kLn2 = 0.6931471805599453;
  if (x > -kLn2) {
    return std::log(-std::expm1(x));
  }
  return std::log1p(-std::exp(x));
}

int sign(double v) { return (v > 0.0) - (v < 0.0); }

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) /
         static_cast<double>(v.size());
}

double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  if (v.size() % 2 == 1) return v[mid];
  const double hi = v[mid];
  const double lo = *std::max_element(
      v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid));
  return 0.5 * (lo + hi);
}

double rms(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc / static_cast<double>(v.size()));
}

std::vector<double> linspace(double lo, double hi, std::size_t n) {
  CHARLIE_ASSERT_MSG(n >= 2, "linspace needs at least two points");
  std::vector<double> out(n);
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;  // avoid accumulated rounding on the endpoint
  return out;
}

double rel_error(double a, double b, double floor) {
  return std::fabs(a - b) / std::max(std::fabs(b), floor);
}

}  // namespace charlie::math
