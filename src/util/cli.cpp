#include "util/cli.hpp"

#include <limits>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/error.hpp"

namespace charlie::util {

Cli::Cli(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    args_.push_back({argv[i], false});
  }
}

bool Cli::has_flag(const std::string& name) {
  for (auto& a : args_) {
    if (!a.consumed && a.text == name) {
      a.consumed = true;
      return true;
    }
  }
  return false;
}

std::string Cli::take_value(const std::string& name, bool& found) {
  found = false;
  for (std::size_t i = 0; i < args_.size(); ++i) {
    auto& a = args_[i];
    if (a.consumed) continue;
    if (a.text == name) {
      if (i + 1 >= args_.size()) {
        throw ConfigError("missing value after " + name);
      }
      a.consumed = true;
      args_[i + 1].consumed = true;
      found = true;
      return args_[i + 1].text;
    }
    const std::string prefix = name + "=";
    if (a.text.rfind(prefix, 0) == 0) {
      a.consumed = true;
      found = true;
      return a.text.substr(prefix.size());
    }
  }
  return {};
}

int Cli::get_int(const std::string& name, int fallback) {
  bool found = false;
  const std::string v = take_value(name, found);
  if (!found) return fallback;
  // Strict whole-field parse: "5x" is a typo, not 5 (std::stoi would
  // silently accept the prefix).
  const long value = parse_long_field(v, "invalid integer for " + name);
  if (value < std::numeric_limits<int>::min() ||
      value > std::numeric_limits<int>::max()) {
    throw ConfigError("integer out of range for " + name + ": " + v);
  }
  return static_cast<int>(value);
}

double Cli::get_double(const std::string& name, double fallback) {
  bool found = false;
  const std::string v = take_value(name, found);
  if (!found) return fallback;
  return parse_double_field(v, "invalid number for " + name);
}

std::string Cli::get_string(const std::string& name,
                            const std::string& fallback) {
  bool found = false;
  const std::string v = take_value(name, found);
  return found ? v : fallback;
}

void Cli::finish() const {
  for (const auto& a : args_) {
    if (!a.consumed) {
      throw ConfigError("unknown argument: " + a.text);
    }
  }
}

}  // namespace charlie::util
