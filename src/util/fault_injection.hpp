// Deterministic fault-injection harness.
//
// The library plants named fault sites at its documented failure
// boundaries (crossing solver, channel state update, thread-pool work item,
// text-file reads). Disarmed -- the production state -- a site costs one
// relaxed atomic load and a predicted-false branch; nothing is locked,
// counted, or allocated, so release hot paths stay clean. Tests arm a site
// with a Plan and the harness fires the configured fault (throw, NaN
// corruption, text truncation) at a deterministic hit index.
//
// Determinism across thread counts: hits are counted per *locality* -- a
// thread-local tally that run supervisors reset at the start of each
// logical run (BatchRunner resets before every run it executes). A plan
// "fire on the k-th hit" therefore fires in exactly the runs whose own
// event content reaches k hits of that site, no matter which worker
// executes which run or how runs interleave. Global fire totals are kept
// separately for assertions.
//
// Sites in the library (see docs/robustness.md for the documented outcome
// of each):
//   "crossing.solve"       -- two-exp crossing solver entry  [throw]
//   "crossing.newton"      -- force the Newton -> Brent fallback  [branch]
//   "hybrid_channel.state" -- channel analog state at a mode switch  [NaN]
//   "thread_pool.item"     -- worker-thread work item  [throw]
//   "io.read_text_file"    -- netlist / characterization-cache read  [truncate]
#pragma once

#include <atomic>
#include <cstddef>
#include <string>

namespace charlie::util {

class FaultInjector {
 public:
  enum class Action {
    kConvergenceError,  // throw charlie::ConvergenceError at the site
    kRuntimeError,      // throw std::runtime_error at the site
    kNanValue,          // replace a double with quiet NaN
    kTruncateText,      // truncate a text buffer to half its length
    kForceBranch,       // make a branch site take its degraded path
  };

  struct Plan {
    Action action = Action::kRuntimeError;
    /// Local (per-run) hits skipped before the first fire.
    long fire_after = 0;
    /// Maximum fires per locality; -1 = every eligible hit.
    long count = -1;
  };

  /// Arm `site` with `plan`, replacing any previous plan for the site.
  static void arm(const std::string& site, const Plan& plan);
  static void disarm(const std::string& site);
  static void disarm_all();

  /// Reset the calling thread's hit tallies (start of a logical run).
  static void reset_local_hits();

  /// Total fires of `site` across all threads since it was armed.
  static long fires(const std::string& site);

  /// True iff any site is armed. The only check on disarmed hot paths.
  static bool armed() {
    return n_armed_.load(std::memory_order_relaxed) > 0;
  }

  // --- site hooks (called through the CHARLIE_FAULT_* macros) --------------

  /// Throws per the site's plan if it fires; no-op otherwise.
  static void throw_point(const char* site);
  /// Returns NaN if the site fires, `value` otherwise.
  static double corrupt_double(const char* site, double value);
  /// Truncates `text` to half its length if the site fires.
  static void corrupt_text(const char* site, std::string& text);
  /// True iff the site fires with a kForceBranch plan; no other effect.
  /// For sites whose fault is a forced control-flow branch (e.g. skipping
  /// Newton so the Brent fallback is exercised).
  static bool trip(const char* site);

  /// RAII guard for tests: disarms everything and clears the local tallies
  /// on destruction, so a failing test cannot leak armed faults into the
  /// rest of the suite.
  class Scope {
   public:
    Scope() = default;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      disarm_all();
      reset_local_hits();
    }
  };

 private:
  static std::atomic<int> n_armed_;
};

}  // namespace charlie::util

// Site macros: the armed() fast-path check stays inline; everything else is
// behind the call.
#define CHARLIE_FAULT_POINT(site)                          \
  do {                                                     \
    if (::charlie::util::FaultInjector::armed()) {         \
      ::charlie::util::FaultInjector::throw_point(site);   \
    }                                                      \
  } while (false)

#define CHARLIE_FAULT_DOUBLE(site, value)                          \
  (::charlie::util::FaultInjector::armed()                         \
       ? ::charlie::util::FaultInjector::corrupt_double((site), (value)) \
       : (value))

#define CHARLIE_FAULT_BRANCH(site)                  \
  (::charlie::util::FaultInjector::armed() &&       \
   ::charlie::util::FaultInjector::trip(site))

#define CHARLIE_FAULT_TEXT(site, text)                     \
  do {                                                     \
    if (::charlie::util::FaultInjector::armed()) {         \
      ::charlie::util::FaultInjector::corrupt_text((site), (text)); \
    }                                                      \
  } while (false)
