#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "util/error.hpp"

namespace charlie::util {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  CHARLIE_ASSERT_MSG(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  CHARLIE_ASSERT_MSG(cells.size() == header_.size(), "table row width mismatch");
  rows_.push_back(std::move(cells));
}

void TextTable::add_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(fmt(v, precision));
  add_row(std::move(text));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "  " : "");
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_sci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string fmt_percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.*f %%", precision, fraction * 100.0);
  return buf;
}

}  // namespace charlie::util
