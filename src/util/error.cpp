#include "util/error.hpp"

#include <sstream>

namespace charlie::detail {

void assertion_failed(const char* expr, const char* file, int line,
                      const std::string& msg) {
  std::ostringstream os;
  os << "assertion failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) {
    os << " (" << msg << ")";
  }
  throw AssertionError(os.str());
}

}  // namespace charlie::detail
