#include "util/text.hpp"

#include <algorithm>
#include <cctype>

namespace charlie::util {

std::string to_upper_ascii(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::toupper(c));
  });
  return s;
}

std::string to_lower_ascii(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string trim_ascii(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

}  // namespace charlie::util
