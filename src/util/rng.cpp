#include "util/rng.hpp"

#include <cmath>

#include "util/error.hpp"

namespace charlie::util {

double Rng::uniform(double lo, double hi) {
  CHARLIE_ASSERT(lo <= hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mu, double sigma) {
  CHARLIE_ASSERT(sigma >= 0.0);
  if (sigma == 0.0) return mu;
  std::normal_distribution<double> dist(mu, sigma);
  return dist(engine_);
}

double Rng::normal_above(double mu, double sigma, double lo) {
  CHARLIE_ASSERT_MSG(lo < mu + 8.0 * sigma || sigma == 0.0,
                     "truncation bound too far in the tail");
  if (sigma == 0.0) return mu > lo ? mu : lo;
  for (int attempt = 0; attempt < 10000; ++attempt) {
    const double v = normal(mu, sigma);
    if (v > lo) return v;
  }
  return lo + (mu > lo ? mu - lo : sigma);  // pathological sigma: clamp
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CHARLIE_ASSERT(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  CHARLIE_ASSERT(p >= 0.0 && p <= 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Rng Rng::fork() {
  // Derive a child seed from the parent stream; golden-ratio increment
  // decorrelates consecutive forks.
  const std::uint64_t child = engine_() ^ 0x9e3779b97f4a7c15ULL;
  return Rng(child);
}

namespace {

// splitmix64 finalizer (Steele/Lea/Flood): full-avalanche 64-bit mix.
std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

}  // namespace

CounterRng::CounterRng(std::uint64_t seed, std::uint64_t index)
    // Two mix rounds keyed by (seed, index) decorrelate adjacent indices and
    // adjacent seeds; without the second round, streams for (s, i) and
    // (s+1, i-1) style key pairs would share long prefixes.
    : state_(mix64(mix64(seed + kGamma) ^ (index * kGamma + 1))) {}

std::uint64_t CounterRng::next_u64() {
  state_ += kGamma;
  return mix64(state_);
}

double CounterRng::uniform01() {
  // Top 53 bits -> [0, 1) on the double grid.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double CounterRng::uniform(double lo, double hi) {
  CHARLIE_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

double CounterRng::normal(double mu, double sigma) {
  CHARLIE_ASSERT(sigma >= 0.0);
  // Box-Muller, cosine branch only: exactly two uniforms per draw keeps the
  // stream layout fixed (important for reproducibility across refactors).
  const double u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(1.0 - u1));  // 1-u1 in (0,1]
  const double z = r * std::cos(2.0 * 3.14159265358979323846 * u2);
  return mu + sigma * z;
}

double CounterRng::normal_clamped(double mu, double sigma, double max_sigma) {
  CHARLIE_ASSERT(max_sigma > 0.0);
  double z = normal(0.0, 1.0);
  if (z < -max_sigma) z = -max_sigma;
  if (z > max_sigma) z = max_sigma;
  return mu + sigma * z;
}

}  // namespace charlie::util
