#include "util/rng.hpp"

#include "util/error.hpp"

namespace charlie::util {

double Rng::uniform(double lo, double hi) {
  CHARLIE_ASSERT(lo <= hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal(double mu, double sigma) {
  CHARLIE_ASSERT(sigma >= 0.0);
  if (sigma == 0.0) return mu;
  std::normal_distribution<double> dist(mu, sigma);
  return dist(engine_);
}

double Rng::normal_above(double mu, double sigma, double lo) {
  CHARLIE_ASSERT_MSG(lo < mu + 8.0 * sigma || sigma == 0.0,
                     "truncation bound too far in the tail");
  if (sigma == 0.0) return mu > lo ? mu : lo;
  for (int attempt = 0; attempt < 10000; ++attempt) {
    const double v = normal(mu, sigma);
    if (v > lo) return v;
  }
  return lo + (mu > lo ? mu - lo : sigma);  // pathological sigma: clamp
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  CHARLIE_ASSERT(lo <= hi);
  std::uniform_int_distribution<std::int64_t> dist(lo, hi);
  return dist(engine_);
}

bool Rng::bernoulli(double p) {
  CHARLIE_ASSERT(p >= 0.0 && p <= 1.0);
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Rng Rng::fork() {
  // Derive a child seed from the parent stream; golden-ratio increment
  // decorrelates consecutive forks.
  const std::uint64_t child = engine_() ^ 0x9e3779b97f4a7c15ULL;
  return Rng(child);
}

}  // namespace charlie::util
