// Tiny command-line flag parser for benches and examples.
//
//   util::Cli cli(argc, argv);
//   const int reps   = cli.get_int("--reps", 5);
//   const bool quick = cli.has_flag("--quick");
//   cli.finish();  // reject unknown arguments
#pragma once

#include <string>
#include <vector>

namespace charlie::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if `name` was passed as a bare flag.
  bool has_flag(const std::string& name);

  /// Value of `--name value` or `--name=value`; `fallback` if absent.
  int get_int(const std::string& name, int fallback);
  double get_double(const std::string& name, double fallback);
  std::string get_string(const std::string& name, const std::string& fallback);

  /// Throws ConfigError if any argument was never consumed (catches typos).
  void finish() const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  struct Arg {
    std::string text;
    bool consumed = false;
  };
  // Finds `name` (or `name=...`); marks it consumed; returns the value string
  // or nullopt-equivalent via `found`.
  std::string take_value(const std::string& name, bool& found);

  std::string program_;
  std::vector<Arg> args_;
};

}  // namespace charlie::util
