// Fixed pool of worker threads for data-parallel batches.
//
// Built for the Monte-Carlo batch runner: N independent work items are
// claimed dynamically by W persistent workers. Scheduling order is
// intentionally non-deterministic; callers that need reproducible results
// must make each item's output depend only on its index (the batch runner
// stores per-run results by run index and reduces sequentially).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace charlie::util {

class ThreadPool {
 public:
  /// n_threads = 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t n_threads() const { return workers_.size(); }

  /// Run fn(worker_index, item_index) for every item in [0, n), items
  /// claimed dynamically by the workers. Blocks until all items complete.
  /// worker_index is in [0, n_threads()) and identifies the executing
  /// worker, e.g. to index per-worker scratch state. If any item throws,
  /// the remaining items still run and the first exception is rethrown
  /// here.
  void parallel_for(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::size_t next_item_ = 0;
  std::size_t remaining_ = 0;  // items not yet completed
  std::size_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;
};

}  // namespace charlie::util
