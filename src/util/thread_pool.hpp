// Fixed pool of worker threads for data-parallel batches.
//
// Built for the Monte-Carlo batch runner and the sharded circuit engine:
// N independent work items are claimed dynamically by W persistent
// workers. Items are claimed in contiguous chunks off a single atomic
// cursor, so the per-item cost on the hot path is a fraction of one
// uncontended fetch_add -- the mutex + condition-variable pair is touched
// only to publish a batch and to park idle workers between batches (the
// original design took the mutex once per item, which serialized small
// items behind the lock and bought zero wall-clock from extra workers).
//
// Scheduling order is intentionally non-deterministic; callers that need
// reproducible results must make each item's output depend only on its
// index (the batch runner stores per-run results by run index and reduces
// sequentially). parallel_for may be called repeatedly but not
// concurrently from several threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace charlie::util {

class ThreadPool {
 public:
  /// n_threads = 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t n_threads() const { return workers_.size(); }

  /// Run fn(worker_index, item_index) for every item in [0, n), items
  /// claimed dynamically by the workers in chunks (chunk size chosen from
  /// n and the worker count). Blocks until all items complete.
  /// worker_index is in [0, n_threads()) and identifies the executing
  /// worker, e.g. to index per-worker scratch state. If any item throws,
  /// the remaining items still run and the first exception is rethrown
  /// here.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Same, with an explicit claim-chunk size (grain >= 1). grain = 1 gives
  /// the finest dynamic load balancing; larger grains amortize the claim
  /// for very cheap items.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Observability hook around each claimed chunk, invoked on the worker
  /// thread: on_chunk_begin before the chunk's first item, on_chunk_end
  /// after its last. The pool sits below the obs layer in the build graph,
  /// so the tracer (obs::TraceRecorder) plugs in through this neutral
  /// interface instead of the pool calling obs directly. The uninstalled
  /// cost is one relaxed load and a predicted-false branch per chunk (not
  /// per item).
  struct ChunkObserver {
    virtual ~ChunkObserver() = default;
    virtual void on_chunk_begin(std::size_t worker, std::size_t first,
                                std::size_t count) = 0;
    virtual void on_chunk_end(std::size_t worker, std::size_t first,
                              std::size_t count) = 0;
  };

  /// Install (or, with nullptr, remove) the process-wide chunk observer.
  /// The observer must outlive every batch that runs while it is installed;
  /// install/remove from a coordinating thread with no batch in flight.
  static void set_chunk_observer(ChunkObserver* observer) {
    chunk_observer_.store(observer, std::memory_order_release);
  }

 private:
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;

  // Hot claim cursor on its own cache line: (generation << 32) | next_item,
  // advanced by CAS from the workers. The generation tag makes a claim by a
  // late-waking worker against an already-finished batch fail instead of
  // stealing items from the next batch.
  alignas(64) std::atomic<std::uint64_t> cursor_{0};

  alignas(64) std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  std::size_t job_size_ = 0;
  std::size_t job_grain_ = 1;
  std::size_t remaining_ = 0;  // items not yet completed (guarded by mutex_)
  std::size_t generation_ = 0;
  bool stop_ = false;
  std::exception_ptr first_error_;

  static std::atomic<ChunkObserver*> chunk_observer_;
};

}  // namespace charlie::util
