// Small ASCII string helpers shared across layers (CSV parsing, netlist
// parsing, cell-name canonicalization).
#pragma once

#include <string>

namespace charlie::util {

/// Copy of `s` with ASCII letters upper-cased (locale-independent).
std::string to_upper_ascii(std::string s);

/// Copy of `s` with ASCII letters lower-cased (locale-independent).
std::string to_lower_ascii(std::string s);

/// Copy of `text` with leading/trailing spaces, tabs, CR, and LF removed.
std::string trim_ascii(const std::string& text);

}  // namespace charlie::util
