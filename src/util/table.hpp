// Aligned console table printer. Benches use this to print the same rows
// the paper's tables/figures report.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace charlie::util {

/// Collects rows of strings and prints them column-aligned:
///
///   TextTable t({"delta [ps]", "delay [ps]"});
///   t.add_row({"-60", "37.91"});
///   t.print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must match the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with fixed precision.
  void add_row(const std::vector<double>& cells, int precision = 3);

  /// Render with a header underline and two-space column gaps.
  void print(std::ostream& os) const;

  std::size_t n_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with fixed precision (helper for table cells).
std::string fmt(double v, int precision = 3);

/// Format a double in scientific notation.
std::string fmt_sci(double v, int precision = 3);

/// Format a percentage with sign, e.g. "-28.01 %".
std::string fmt_percent(double fraction, int precision = 2);

}  // namespace charlie::util
