// SI unit helpers for the charlie library.
//
// All quantities in the library are plain `double` in base SI units
// (seconds, volts, ohms, farads, amperes). These constants and literals
// make construction and printing of such quantities readable:
//
//   double delta = 30.0 * units::ps;          // 30 picoseconds
//   double r_on  = 45.150 * units::kilo_ohm;  // Table I value
//   std::string s = units::format_time(d);    // "30.000 ps"
#pragma once

#include <string>

namespace charlie::units {

// --- time ---------------------------------------------------------------
inline constexpr double second = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;
inline constexpr double fs = 1e-15;

// --- resistance ----------------------------------------------------------
inline constexpr double ohm = 1.0;
inline constexpr double kilo_ohm = 1e3;
inline constexpr double mega_ohm = 1e6;

// --- capacitance ---------------------------------------------------------
inline constexpr double farad = 1.0;
inline constexpr double pF = 1e-12;
inline constexpr double fF = 1e-15;
inline constexpr double aF = 1e-18;

// --- voltage / current ---------------------------------------------------
inline constexpr double volt = 1.0;
inline constexpr double mV = 1e-3;
inline constexpr double ampere = 1.0;
inline constexpr double mA = 1e-3;
inline constexpr double uA = 1e-6;

/// Render a time in engineering units, e.g. "28.431 ps".
std::string format_time(double seconds_value, int precision = 3);

/// Render a resistance, e.g. "45.150 kΩ".
std::string format_resistance(double ohms_value, int precision = 3);

/// Render a capacitance, e.g. "617.259 aF".
std::string format_capacitance(double farads_value, int precision = 3);

/// Render a voltage, e.g. "0.400 V".
std::string format_voltage(double volts_value, int precision = 3);

}  // namespace charlie::units
