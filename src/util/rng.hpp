// Deterministic random number generation.
//
// All stochastic components (trace generators, fitting restarts, Monte-Carlo
// benches) draw from an explicitly seeded Rng so experiments are exactly
// reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>

namespace charlie::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Normal with mean `mu` and standard deviation `sigma` (sigma >= 0).
  double normal(double mu, double sigma);

  /// Normal truncated to values > lo (resampled; lo must be < mu + 8 sigma).
  double normal_above(double mu, double sigma, double lo);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability `p` of true.
  bool bernoulli(double p);

  /// Fork an independent, deterministically derived stream (for per-run
  /// streams inside repeated experiments).
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Counter-based stream keyed by (seed, index): a splitmix64 generator whose
/// state is a mix of the key, so the stream for index k is a pure function of
/// the key and never depends on how many other streams were drawn first.
/// This is what makes Monte-Carlo sample k's draws order-independent: any
/// worker, on any thread, at any time reconstructs exactly the same stream
/// from (base_seed, run_index).
class CounterRng {
 public:
  CounterRng(std::uint64_t seed, std::uint64_t index);

  /// Next raw 64-bit word of the stream.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Normal(mu, sigma) via Box-Muller (two uniforms per draw; sigma >= 0).
  double normal(double mu, double sigma);

  /// Normal(mu, sigma) with the standard score clamped to [-max_sigma,
  /// +max_sigma]; truncation keeps sampled process points inside the span a
  /// collocation grid was built for.
  double normal_clamped(double mu, double sigma, double max_sigma);

 private:
  std::uint64_t state_;
};

}  // namespace charlie::util
