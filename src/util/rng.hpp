// Deterministic random number generation.
//
// All stochastic components (trace generators, fitting restarts, Monte-Carlo
// benches) draw from an explicitly seeded Rng so experiments are exactly
// reproducible run-to-run.
#pragma once

#include <cstdint>
#include <random>

namespace charlie::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Normal with mean `mu` and standard deviation `sigma` (sigma >= 0).
  double normal(double mu, double sigma);

  /// Normal truncated to values > lo (resampled; lo must be < mu + 8 sigma).
  double normal_above(double mu, double sigma, double lo);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial with probability `p` of true.
  bool bernoulli(double p);

  /// Fork an independent, deterministically derived stream (for per-run
  /// streams inside repeated experiments).
  Rng fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace charlie::util
