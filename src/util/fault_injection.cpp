#include "util/fault_injection.hpp"

#include <limits>
#include <map>
#include <mutex>
#include <stdexcept>

#include "util/error.hpp"

namespace charlie::util {

std::atomic<int> FaultInjector::n_armed_{0};

namespace {

struct SiteState {
  FaultInjector::Plan plan;
  long global_fires = 0;
};

std::mutex g_mutex;

std::map<std::string, SiteState>& sites() {
  static std::map<std::string, SiteState> s;
  return s;
}

// Per-thread (hits, fires) tally per site. Reset at run boundaries so fire
// indices are a function of the run's own content, not of scheduling.
struct LocalTally {
  long hits = 0;
  long fires = 0;
};

std::map<std::string, LocalTally>& local_tallies() {
  thread_local std::map<std::string, LocalTally> t;
  return t;
}

// Decides whether `site` fires on this hit; returns the armed action if so.
// Only called when armed() -- the disarmed path never reaches here.
bool decide(const char* site, FaultInjector::Action* action) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = sites().find(site);
  if (it == sites().end()) return false;
  LocalTally& tally = local_tallies()[site];
  const long hit_index = tally.hits++;
  const FaultInjector::Plan& plan = it->second.plan;
  if (hit_index < plan.fire_after) return false;
  if (plan.count >= 0 && tally.fires >= plan.count) return false;
  ++tally.fires;
  ++it->second.global_fires;
  *action = plan.action;
  return true;
}

}  // namespace

void FaultInjector::arm(const std::string& site, const Plan& plan) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto [it, inserted] = sites().emplace(site, SiteState{plan, 0});
  if (!inserted) {
    it->second.plan = plan;
    it->second.global_fires = 0;
  }
  n_armed_.store(static_cast<int>(sites().size()),
                 std::memory_order_relaxed);
}

void FaultInjector::disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  sites().erase(site);
  n_armed_.store(static_cast<int>(sites().size()),
                 std::memory_order_relaxed);
}

void FaultInjector::disarm_all() {
  std::lock_guard<std::mutex> lock(g_mutex);
  sites().clear();
  n_armed_.store(0, std::memory_order_relaxed);
}

void FaultInjector::reset_local_hits() { local_tallies().clear(); }

long FaultInjector::fires(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  const auto it = sites().find(site);
  return it == sites().end() ? 0 : it->second.global_fires;
}

void FaultInjector::throw_point(const char* site) {
  Action action;
  if (!decide(site, &action)) return;
  const std::string what = std::string("injected fault at ") + site;
  switch (action) {
    case Action::kConvergenceError:
      throw ConvergenceError(what);
    case Action::kRuntimeError:
      throw std::runtime_error(what);
    case Action::kNanValue:
    case Action::kTruncateText:
    case Action::kForceBranch:
      // Value-corruption plans do not fire at throw points; a site is armed
      // with the action its hook understands.
      return;
  }
}

bool FaultInjector::trip(const char* site) {
  Action action;
  return decide(site, &action) && action == Action::kForceBranch;
}

double FaultInjector::corrupt_double(const char* site, double value) {
  Action action;
  if (!decide(site, &action)) return value;
  if (action == Action::kNanValue) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return value;
}

void FaultInjector::corrupt_text(const char* site, std::string& text) {
  Action action;
  if (!decide(site, &action)) return;
  if (action == Action::kTruncateText) {
    text.resize(text.size() / 2);
  }
}

}  // namespace charlie::util
