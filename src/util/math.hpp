// Small math helpers shared across the library.
#pragma once

#include <cmath>
#include <cstddef>
#include <vector>

namespace charlie::math {

/// Absolute-plus-relative tolerance comparison.
/// Returns true when |a-b| <= atol + rtol*max(|a|,|b|).
bool almost_equal(double a, double b, double rtol = 1e-9, double atol = 1e-12);

/// Linear interpolation: value at `x` on the segment (x0,y0)-(x1,y1).
/// Requires x0 != x1.
double lerp_at(double x0, double y0, double x1, double y1, double x);

/// Clamp `v` into [lo, hi].
double clamp(double v, double lo, double hi);

/// Numerically stable log(1 - exp(x)) for x < 0.
double log1mexp(double x);

/// sign(v): -1, 0, or +1.
int sign(double v);

/// Mean of a vector; returns 0 for an empty vector.
double mean(const std::vector<double>& v);

/// Sample standard deviation (n-1 denominator); returns 0 for n < 2.
double stddev(const std::vector<double>& v);

/// Median (copies and sorts); returns 0 for an empty vector.
double median(std::vector<double> v);

/// Root-mean-square of a vector; returns 0 for an empty vector.
double rms(const std::vector<double>& v);

/// Evenly spaced grid of `n` points covering [lo, hi] inclusive (n >= 2).
std::vector<double> linspace(double lo, double hi, std::size_t n);

/// Relative error |a-b| / max(|b|, floor); useful for tolerant comparisons
/// against reference values that may be near zero.
double rel_error(double a, double b, double floor = 1e-30);

}  // namespace charlie::math
