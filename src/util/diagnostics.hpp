// Thread-local numerical-guard and fallback telemetry.
//
// The hybrid model's documented degradation paths -- Newton handing a
// crossing to Brent, a defective spectrum forcing the generic scan, an
// isfinite guard tripping on a non-finite state, a fit swallowing a
// ConvergenceError as an infeasible-corner penalty -- are silent by design:
// the run keeps going. RunCounters makes them countable without making
// them chatty. Guard sites bump the executing thread's counters (no
// atomics, no locks, nothing shared, safe under any thread pool); a run
// supervisor (sim::RunGuard) snapshots the counters at run start and diffs
// at the end, so a per-run diagnostics record costs two struct copies.
#pragma once

namespace charlie::util {

struct RunCounters {
  /// Newton failed to converge on a two-exponential crossing and the
  /// bracketed Brent fallback finished the solve.
  long newton_brent_fallbacks = 0;
  /// A defective/complex mode spectrum routed a crossing search through the
  /// generic sampling scan instead of the scalar expansion.
  long scan_fallbacks = 0;
  /// An isfinite guard tripped (non-finite mode-table derivation, channel
  /// state, or crossing time).
  long nonfinite_guard_trips = 0;
  /// A parameter fit swallowed a ConvergenceError as an infeasible-corner
  /// penalty evaluation.
  long fit_fallbacks = 0;

  /// Counters of the calling thread. Guard sites increment fields directly:
  /// `RunCounters::local().scan_fallbacks++`.
  static RunCounters& local();

  RunCounters operator-(const RunCounters& other) const;
  RunCounters& operator+=(const RunCounters& other);
  bool any() const {
    return newton_brent_fallbacks != 0 || scan_fallbacks != 0 ||
           nonfinite_guard_trips != 0 || fit_fallbacks != 0;
  }
};

}  // namespace charlie::util
