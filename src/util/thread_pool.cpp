#include "util/thread_pool.hpp"

#include <algorithm>

namespace charlie::util {

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  workers_.reserve(n_threads);
  for (std::size_t w = 0; w < n_threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &fn;
  job_size_ = n;
  next_item_ = 0;
  remaining_ = n;
  first_error_ = nullptr;
  ++generation_;
  cv_work_.notify_all();
  cv_done_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::size_t seen_generation = 0;
  while (true) {
    cv_work_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && generation_ != seen_generation &&
                       next_item_ < job_size_);
    });
    if (stop_) return;
    seen_generation = generation_;
    while (job_ != nullptr && next_item_ < job_size_) {
      const std::size_t item = next_item_++;
      const auto* job = job_;
      lock.unlock();
      try {
        (*job)(worker_index, item);
        lock.lock();
      } catch (...) {
        lock.lock();
        if (!first_error_) first_error_ = std::current_exception();
      }
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace charlie::util
