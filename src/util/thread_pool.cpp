#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace charlie::util {

namespace {

// The claim cursor packs (generation, next item) into one atomic word so a
// worker that wakes late -- after its batch has already been drained and a
// new one published -- can never claim items that belong to the newer
// batch: its compare-exchange carries the old generation tag and fails.
constexpr std::uint64_t pack(std::uint32_t generation, std::uint32_t item) {
  return (static_cast<std::uint64_t>(generation) << 32) | item;
}
constexpr std::uint32_t cursor_generation(std::uint64_t cursor) {
  return static_cast<std::uint32_t>(cursor >> 32);
}
constexpr std::uint32_t cursor_item(std::uint64_t cursor) {
  return static_cast<std::uint32_t>(cursor);
}

}  // namespace

std::atomic<ThreadPool::ChunkObserver*> ThreadPool::chunk_observer_{nullptr};

ThreadPool::ThreadPool(std::size_t n_threads) {
  if (n_threads == 0) {
    n_threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  workers_.reserve(n_threads);
  for (std::size_t w = 0; w < n_threads; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  // Default grain: ~8 chunks per worker for dynamic load balancing, never
  // fewer than one item per claim. Small batches (n <= workers) degenerate
  // to one claim per item.
  const std::size_t grain =
      std::max<std::size_t>(1, n / (8 * std::max<std::size_t>(n_threads(), 1)));
  parallel_for(n, grain, fn);
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  CHARLIE_ASSERT_MSG(n <= 0xffffffffu, "parallel_for: item count exceeds 2^32");
  grain = std::max<std::size_t>(grain, 1);
  std::unique_lock<std::mutex> lock(mutex_);
  job_ = &fn;
  job_size_ = n;
  job_grain_ = grain;
  remaining_ = n;
  first_error_ = nullptr;
  ++generation_;
  cursor_.store(pack(static_cast<std::uint32_t>(generation_), 0),
                std::memory_order_release);
  cv_work_.notify_all();
  cv_done_.wait(lock, [&] { return remaining_ == 0; });
  job_ = nullptr;
  if (first_error_) std::rethrow_exception(first_error_);
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::size_t seen_generation = 0;
  while (true) {
    cv_work_.wait(lock,
                  [&] { return stop_ || generation_ != seen_generation; });
    if (stop_) return;
    seen_generation = generation_;
    const auto my_generation = static_cast<std::uint32_t>(seen_generation);
    const auto* job = job_;
    const auto size = static_cast<std::uint32_t>(job_size_);
    const auto grain = static_cast<std::uint32_t>(
        std::min<std::size_t>(job_grain_, 0xffffffffu));
    lock.unlock();

    // Lock-free chunked claim loop: one CAS per chunk, no mutex touched
    // until this worker's share of the batch is finished. A failed
    // generation check means the batch is over (or was never ours) and the
    // cursor is left untouched.
    std::size_t done_here = 0;
    std::exception_ptr error;
    std::uint64_t cursor = cursor_.load(std::memory_order_acquire);
    while (cursor_generation(cursor) == my_generation &&
           cursor_item(cursor) < size) {
      const std::uint32_t begin = cursor_item(cursor);
      const std::uint32_t end = std::min(size, begin + grain);
      if (!cursor_.compare_exchange_weak(cursor, pack(my_generation, end),
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
        continue;  // another worker moved the cursor; retry with its value
      }
      ChunkObserver* const observer =
          chunk_observer_.load(std::memory_order_relaxed);
      if (observer != nullptr) {
        observer->on_chunk_begin(worker_index, begin, end - begin);
      }
      for (std::uint32_t item = begin; item < end; ++item) {
        try {
          // Fault site: an exception escaping a work item on the worker
          // thread itself (as opposed to inside the job body) must follow
          // the same capture-and-rethrow contract.
          CHARLIE_FAULT_POINT("thread_pool.item");
          (*job)(worker_index, item);
        } catch (...) {
          // Remember this worker's first failure; remaining items still
          // run (parallel_for's contract).
          if (!error) error = std::current_exception();
        }
      }
      if (observer != nullptr) {
        observer->on_chunk_end(worker_index, begin, end - begin);
      }
      done_here += end - begin;
      cursor = cursor_.load(std::memory_order_acquire);
    }

    lock.lock();
    if (error && !first_error_) first_error_ = error;
    if (done_here > 0) {
      remaining_ -= done_here;
      if (remaining_ == 0) cv_done_.notify_all();
    }
  }
}

}  // namespace charlie::util
