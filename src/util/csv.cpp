#include "util/csv.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace charlie::util {

namespace {

std::string trimmed(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return {};
  const auto end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

[[noreturn]] void malformed(const std::string& context,
                            const std::string& text, const char* why) {
  throw ConfigError(context + ": " + why + ": \"" + text + "\"");
}

}  // namespace

double parse_double_field(const std::string& text,
                          const std::string& context) {
  const std::string field = trimmed(text);
  if (field.empty()) malformed(context, text, "empty numeric field");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(field.c_str(), &end);
  if (end != field.c_str() + field.size()) {
    // strtod happily stops at the first non-numeric character; a partial
    // parse means trailing garbage ("1.5abc") or malformed text ("1.2.3").
    malformed(context, text, "malformed number");
  }
  if (errno == ERANGE) malformed(context, text, "number out of range");
  if (!std::isfinite(value)) {
    // strtod also consumes the literal tokens "nan"/"inf"/"infinity",
    // which are not numbers in any data this library writes or reads.
    malformed(context, text, "non-finite number");
  }
  return value;
}

long parse_long_field(const std::string& text, const std::string& context) {
  const std::string field = trimmed(text);
  if (field.empty()) malformed(context, text, "empty integer field");
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(field.c_str(), &end, 10);
  if (end != field.c_str() + field.size()) {
    malformed(context, text, "malformed integer");
  }
  if (errno == ERANGE) malformed(context, text, "integer out of range");
  return value;
}

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : path_(path), n_columns_(columns.size()) {
  CHARLIE_ASSERT_MSG(!columns.empty(), "CSV needs at least one column");
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent);
  }
  out_.open(path);
  if (!out_) {
    throw ConfigError("cannot open CSV output file: " + path);
  }
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out_ << (i ? "," : "") << columns[i];
  }
  out_ << '\n';
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::row(const std::vector<double>& values) {
  CHARLIE_ASSERT_MSG(values.size() == n_columns_, "CSV row width mismatch");
  std::ostringstream os;
  os.precision(12);
  for (std::size_t i = 0; i < values.size(); ++i) {
    os << (i ? "," : "") << values[i];
  }
  out_ << os.str() << '\n';
}

void CsvWriter::row_text(const std::vector<std::string>& values) {
  CHARLIE_ASSERT_MSG(values.size() == n_columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    out_ << (i ? "," : "") << values[i];
  }
  out_ << '\n';
}

CsvData read_numeric_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ConfigError("cannot open CSV input file: " + path);
  }
  auto split = [](const std::string& line) {
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
      const std::size_t comma = line.find(',', start);
      if (comma == std::string::npos) {
        fields.push_back(line.substr(start));
        return fields;
      }
      fields.push_back(line.substr(start, comma - start));
      start = comma + 1;
    }
  };

  CsvData data;
  std::string line;
  if (!std::getline(in, line)) {
    throw ConfigError(path + ": missing CSV header");
  }
  for (const std::string& name : split(line)) {
    data.columns.push_back(trimmed(name));
  }
  long line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (trimmed(line).empty()) continue;
    const auto fields = split(line);
    if (fields.size() != data.columns.size()) {
      throw ConfigError(path + ":" + std::to_string(line_no) +
                        ": expected " + std::to_string(data.columns.size()) +
                        " fields, got " + std::to_string(fields.size()));
    }
    std::vector<double> row;
    row.reserve(fields.size());
    for (const std::string& field : fields) {
      row.push_back(
          parse_double_field(field, path + ":" + std::to_string(line_no)));
    }
    data.rows.push_back(std::move(row));
  }
  return data;
}

std::string ensure_directory(const std::string& path) {
  std::filesystem::create_directories(path);
  return path;
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw ConfigError("read_text_file: cannot open " + path);
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad()) throw ConfigError("read_text_file: read error on " + path);
  std::string result = text.str();
  // Fault site: a truncated read models a corrupt/partial file on disk;
  // every parser downstream must fail with ConfigError, never crash.
  CHARLIE_FAULT_TEXT("io.read_text_file", result);
  return result;
}

}  // namespace charlie::util
