#include "util/csv.hpp"

#include <filesystem>
#include <sstream>

#include "util/error.hpp"

namespace charlie::util {

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> columns)
    : path_(path), n_columns_(columns.size()) {
  CHARLIE_ASSERT_MSG(!columns.empty(), "CSV needs at least one column");
  const auto parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent);
  }
  out_.open(path);
  if (!out_) {
    throw ConfigError("cannot open CSV output file: " + path);
  }
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out_ << (i ? "," : "") << columns[i];
  }
  out_ << '\n';
}

CsvWriter::~CsvWriter() = default;

void CsvWriter::row(const std::vector<double>& values) {
  CHARLIE_ASSERT_MSG(values.size() == n_columns_, "CSV row width mismatch");
  std::ostringstream os;
  os.precision(12);
  for (std::size_t i = 0; i < values.size(); ++i) {
    os << (i ? "," : "") << values[i];
  }
  out_ << os.str() << '\n';
}

void CsvWriter::row_text(const std::vector<std::string>& values) {
  CHARLIE_ASSERT_MSG(values.size() == n_columns_, "CSV row width mismatch");
  for (std::size_t i = 0; i < values.size(); ++i) {
    out_ << (i ? "," : "") << values[i];
  }
  out_ << '\n';
}

std::string ensure_directory(const std::string& path) {
  std::filesystem::create_directories(path);
  return path;
}

}  // namespace charlie::util
