// RC transmission-line golden reference for the hybrid interconnect model.
//
// build_rc_line instantiates the *full* N-section lumped ladder -- driver
// resistance, N series/shunt sections, receiver load -- into an analog
// netlist. The wire model (wire/wire_tables.hpp) collapses the same ladder
// to two states; this is the uncollapsed circuit the collapse is validated
// against, the way spice::build_nor2 is the gate model's substrate truth.
//
// RcLineSpec mirrors wire::WireParams field-for-field but lives in the
// spice layer (which sits below core/wire in the build graph) so the
// substrate does not depend on the model it validates.
#pragma once

#include <string>
#include <vector>

#include "spice/netlist.hpp"
#include "spice/transient.hpp"
#include "waveform/digital_trace.hpp"

namespace charlie::spice {

struct RcLineSpec {
  double r_total = 0.0;  // total line resistance [ohm]
  double c_total = 0.0;  // total line capacitance [farad]
  int n_sections = 8;    // lumped ladder sections
  double r_drive = 0.0;  // driver output resistance [ohm], may be 0
  double c_load = 0.0;   // receiver pin capacitance [farad], may be 0
  double vdd = 0.8;      // rail for the PWL drive [volt]
};

struct RcLineNodes {
  NodeId in = 0;               // source-side node (attach the driver here)
  std::vector<NodeId> taps;    // ladder nodes, source to load order
  NodeId out = 0;              // far end (= taps.back())
};

/// Instantiate the ladder into `netlist`. Nodes are named `<prefix>in`,
/// `<prefix>t1` ... `<prefix>tN`; the output is the last tap. r_drive = 0
/// connects the first section directly to `in`.
RcLineNodes build_rc_line(Netlist& netlist, const RcLineSpec& spec,
                          const std::string& prefix = "w");

struct RcLineTransientResult {
  waveform::Waveform vin;   // the applied drive
  waveform::Waveform vout;  // far-end response
  long n_steps = 0;
};

/// Drive the full ladder with a slew-limited PWL rendering of `drive`
/// (edges of duration `rise_time`, V_th crossings at the transition times)
/// and record the input/output waveforms over [0, t_end].
RcLineTransientResult run_rc_line(const RcLineSpec& spec,
                                  const waveform::DigitalTrace& drive,
                                  double rise_time, double t_end,
                                  const TransientOptions& transient_options);

}  // namespace charlie::spice
