#include "spice/technology.hpp"

#include "util/error.hpp"

namespace charlie::spice {

void Technology::validate() const {
  CHARLIE_ASSERT(vdd > 0.0);
  nmos.validate();
  pmos.validate();
  CHARLIE_ASSERT(c_internal > 0.0);
  CHARLIE_ASSERT(c_output > 0.0);
  CHARLIE_ASSERT(c_gd >= 0.0);
  CHARLIE_ASSERT(c_gs >= 0.0);
  CHARLIE_ASSERT(input_rise_time > 0.0);
}

Technology Technology::freepdk15_like() {
  // Tuned so the NOR2 characteristic delays land in the paper's Fig 2
  // regime: fall ~ 44.6/28.6/48.3 ps and rise ~ 52.1/56.8/50.0 ps for
  // Delta = -inf/0/+inf, with the same orderings and effect signs.
  Technology t;
  t.vdd = 0.8;
  t.nmos.vt = 0.22;
  t.nmos.k = 50e-6;
  t.nmos.lambda = 0.06;
  t.pmos.vt = 0.24;
  t.pmos.k = 90e-6;
  t.pmos.lambda = 0.06;
  t.c_internal = 60e-18;
  t.c_output = 600e-18;
  t.c_gd = 20e-18;
  t.c_gs = 25e-18;
  t.input_rise_time = 40e-12;
  return t;
}

Technology Technology::coupling_heavy() {
  Technology t = freepdk15_like();
  t.c_gd = 120e-18;
  t.input_rise_time = 30e-12;
  return t;
}

}  // namespace charlie::spice
