#include "spice/technology.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace charlie::spice {

std::string Technology::fingerprint() const {
  // %.17g round-trips IEEE doubles exactly, so the fingerprint changes iff
  // some parameter value changes. No commas: the string is embedded in CSV
  // cell-library caches.
  // The leading v<N> is the fingerprint format version: growing this struct
  // must bump kFingerprintVersion so every pre-existing cache mismatches
  // instead of colliding with the old parameter set (two technologies that
  // differ only in a not-yet-fingerprinted field would otherwise share a
  // fingerprint).
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "v%d;vdd=%.17g;nmos=%.17g/%.17g/%.17g;pmos=%.17g/%.17g/%.17g;"
                "c_int=%.17g;c_out=%.17g;c_gd=%.17g;c_gs=%.17g;t_rise=%.17g",
                kFingerprintVersion, vdd, nmos.vt, nmos.k, nmos.lambda,
                pmos.vt, pmos.k, pmos.lambda, c_internal, c_output, c_gd,
                c_gs, input_rise_time);
  return buf;
}

void Technology::validate() const {
  CHARLIE_ASSERT(vdd > 0.0);
  nmos.validate();
  pmos.validate();
  CHARLIE_ASSERT(c_internal > 0.0);
  CHARLIE_ASSERT(c_output > 0.0);
  CHARLIE_ASSERT(c_gd >= 0.0);
  CHARLIE_ASSERT(c_gs >= 0.0);
  CHARLIE_ASSERT(input_rise_time > 0.0);
}

Technology Technology::freepdk15_like() {
  // Tuned so the NOR2 characteristic delays land in the paper's Fig 2
  // regime: fall ~ 44.6/28.6/48.3 ps and rise ~ 52.1/56.8/50.0 ps for
  // Delta = -inf/0/+inf, with the same orderings and effect signs.
  Technology t;
  t.vdd = 0.8;
  t.nmos.vt = 0.22;
  t.nmos.k = 50e-6;
  t.nmos.lambda = 0.06;
  t.pmos.vt = 0.24;
  t.pmos.k = 90e-6;
  t.pmos.lambda = 0.06;
  t.c_internal = 60e-18;
  t.c_output = 600e-18;
  t.c_gd = 20e-18;
  t.c_gs = 25e-18;
  t.input_rise_time = 40e-12;
  return t;
}

Technology Technology::coupling_heavy() {
  Technology t = freepdk15_like();
  t.c_gd = 120e-18;
  t.input_rise_time = 30e-12;
  return t;
}

}  // namespace charlie::spice
