// Transistor-level standard cells with explicit parasitics.
//
// The NOR2 matches paper Fig 1: pMOS T1 (gate A) from VDD to internal node
// N, pMOS T2 (gate B) from N to output O, nMOS T3 (gate A) and T4 (gate B)
// from O to ground. C_N and C_O load the internal and output nodes, and
// per-device gate capacitances provide the input-output coupling the paper
// identifies as the cause of the MIS slow-down.
#pragma once

#include <string>

#include "spice/netlist.hpp"
#include "spice/technology.hpp"

namespace charlie::spice {

struct Nor2Nodes {
  NodeId vdd = 0;
  NodeId a = 0;
  NodeId b = 0;
  NodeId n = 0;  // internal p-stack node
  NodeId o = 0;  // output
};

/// Instantiate a NOR2 into `netlist`. Nodes are named `<prefix>a`,
/// `<prefix>b`, `<prefix>n`, `<prefix>o`; the supply node is `vdd`.
Nor2Nodes build_nor2(Netlist& netlist, const Technology& tech,
                     const std::string& prefix = "");

struct InverterNodes {
  NodeId vdd = 0;
  NodeId in = 0;
  NodeId out = 0;
};

/// CMOS inverter with an output load of tech.c_output.
InverterNodes build_inverter(Netlist& netlist, const Technology& tech,
                             const std::string& prefix = "");

struct Nand2Nodes {
  NodeId vdd = 0;
  NodeId a = 0;
  NodeId b = 0;
  NodeId m = 0;  // internal n-stack node
  NodeId o = 0;
};

/// NAND2 (dual of the NOR2: series nMOS, parallel pMOS).
Nand2Nodes build_nand2(Netlist& netlist, const Technology& tech,
                       const std::string& prefix = "");

}  // namespace charlie::spice
