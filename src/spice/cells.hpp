// Transistor-level standard cells with explicit parasitics.
//
// The NOR2 matches paper Fig 1: pMOS T1 (gate A) from VDD to internal node
// N, pMOS T2 (gate B) from N to output O, nMOS T3 (gate A) and T4 (gate B)
// from O to ground. C_N and C_O load the internal and output nodes, and
// per-device gate capacitances provide the input-output coupling the paper
// identifies as the cause of the MIS slow-down.
#pragma once

#include <string>
#include <vector>

#include "spice/netlist.hpp"
#include "spice/technology.hpp"

namespace charlie::spice {

struct Nor2Nodes {
  NodeId vdd = 0;
  NodeId a = 0;
  NodeId b = 0;
  NodeId n = 0;  // internal p-stack node
  NodeId o = 0;  // output
};

/// Instantiate a NOR2 into `netlist`. Nodes are named `<prefix>a`,
/// `<prefix>b`, `<prefix>n`, `<prefix>o`; the supply node is `vdd`.
Nor2Nodes build_nor2(Netlist& netlist, const Technology& tech,
                     const std::string& prefix = "");

struct InverterNodes {
  NodeId vdd = 0;
  NodeId in = 0;
  NodeId out = 0;
};

/// CMOS inverter with an output load of tech.c_output.
InverterNodes build_inverter(Netlist& netlist, const Technology& tech,
                             const std::string& prefix = "");

struct Nand2Nodes {
  NodeId vdd = 0;
  NodeId a = 0;
  NodeId b = 0;
  NodeId m = 0;  // internal n-stack node
  NodeId o = 0;
};

/// NAND2 (dual of the NOR2: series nMOS, parallel pMOS).
Nand2Nodes build_nand2(Netlist& netlist, const Technology& tech,
                       const std::string& prefix = "");

struct Nor3Nodes {
  NodeId vdd = 0;
  NodeId a = 0;
  NodeId b = 0;
  NodeId c = 0;
  NodeId n1 = 0;  // p-stack node between T1 (A) and T2 (B)
  NodeId n2 = 0;  // p-stack node between T2 (B) and T3 (C)
  NodeId o = 0;
};

/// NOR3: three series pMOS (A at VDD, C adjacent to the output) and three
/// parallel nMOS, with parasitics on both internal stack nodes.
Nor3Nodes build_nor3(Netlist& netlist, const Technology& tech,
                     const std::string& prefix = "");

struct Nand3Nodes {
  NodeId vdd = 0;
  NodeId a = 0;
  NodeId b = 0;
  NodeId c = 0;
  NodeId m1 = 0;  // n-stack node between T_A (at the output) and T_B
  NodeId m2 = 0;  // n-stack node between T_B and T_C (at ground)
  NodeId o = 0;
};

/// NAND3 (dual of the NOR3: series nMOS with A adjacent to the output,
/// parallel pMOS).
Nand3Nodes build_nand3(Netlist& netlist, const Technology& tech,
                       const std::string& prefix = "");

/// The standard cells the multi-input characterization and accuracy
/// pipelines know how to build and drive.
enum class CellKind {
  kNor2,
  kNor3,
  kNand2,
  kNand3,
};

int cell_arity(CellKind kind);
bool cell_is_nand(CellKind kind);
std::string cell_name(CellKind kind);

/// Uniform view of any cell: input nodes in port order and the output.
struct GateCellNodes {
  NodeId vdd = 0;
  std::vector<NodeId> inputs;
  NodeId o = 0;
};

/// Instantiate `kind` into `netlist`; input nodes are named `<prefix>a`,
/// `<prefix>b` (, `<prefix>c`), the output `<prefix>o`.
GateCellNodes build_cell(Netlist& netlist, const Technology& tech,
                         CellKind kind, const std::string& prefix = "");

}  // namespace charlie::spice
