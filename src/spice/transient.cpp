#include "spice/transient.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace charlie::spice {

const waveform::Waveform& TransientResult::wave(const std::string& node) const {
  const auto it = waves.find(node);
  if (it == waves.end()) {
    throw ConfigError("transient result: node was not recorded: " + node);
  }
  return it->second;
}

TransientResult transient_analysis(Netlist& netlist,
                                   const std::vector<std::string>& record,
                                   const TransientOptions& options) {
  CHARLIE_ASSERT_MSG(options.t_end > options.t_start,
                     "transient: empty time span");
  const double span = options.t_end - options.t_start;
  const double h_max =
      options.h_max > 0.0 ? options.h_max : span / 50.0;

  // Resolve recorded nodes up front.
  std::vector<std::pair<std::string, NodeId>> taps;
  taps.reserve(record.size());
  for (const auto& name : record) {
    taps.emplace_back(name, netlist.find_node(name));
  }

  TransientResult result;
  for (const auto& [name, id] : taps) {
    result.waves.emplace(name, waveform::Waveform{});
  }

  // --- DC operating point seeds the element states ------------------------
  DcOpOptions dc;
  dc.t = options.t_start;
  std::vector<double> x = dc_operating_point(netlist, dc);

  StampContext ctx;
  ctx.mode = AnalysisMode::kTransient;
  ctx.t = options.t_start;
  ctx.h = options.h_initial;
  ctx.x = x;
  for (auto& e : netlist.elements()) {
    e->initialize_state(ctx);
  }

  auto record_point = [&](double t, const std::vector<double>& sol) {
    for (auto& [name, id] : taps) {
      const double v = id == kGround ? 0.0 : sol[static_cast<std::size_t>(id - 1)];
      result.waves.at(name).append(t, v);
    }
  };
  record_point(options.t_start, x);

  const std::vector<double> bps =
      netlist.breakpoints(options.t_start, options.t_end);
  std::size_t bp_index = 0;

  double t = options.t_start;
  double h = options.h_initial;
  bool have_history = false;   // two accepted points for the predictor
  bool after_discontinuity = true;  // start and each breakpoint: BE + no LTE
  std::vector<double> x_prev = x;
  double h_prev = 0.0;

  long steps = 0;
  while (t < options.t_end - 1e-21) {
    if (++steps > options.max_steps) {
      throw ConvergenceError("transient: exceeded max_steps");
    }
    // Next mandatory breakpoint.
    while (bp_index < bps.size() && bps[bp_index] <= t + options.h_min) {
      ++bp_index;
    }
    const double t_stop =
        bp_index < bps.size() ? std::min(bps[bp_index], options.t_end)
                              : options.t_end;
    double h_eff = std::min(h, t_stop - t);
    const bool lands_on_stop = (t + h_eff >= t_stop - 1e-21);
    if (lands_on_stop) h_eff = t_stop - t;

    ctx.t = t + h_eff;
    ctx.h = h_eff;
    ctx.backward_euler = after_discontinuity;
    ctx.gmin = 1e-12;

    // Seed Newton with the linear predictor when history is available.
    std::vector<double> seed = x;
    if (have_history && h_prev > 0.0) {
      for (std::size_t i = 0; i < seed.size(); ++i) {
        seed[i] = x[i] + (x[i] - x_prev[i]) * (h_eff / h_prev);
      }
    }
    const NewtonResult nr = solve_newton(netlist, ctx, seed, options.newton);
    if (!nr.converged) {
      ++result.n_newton_failures;
      h *= 0.25;
      if (h < options.h_min) {
        throw ConvergenceError("transient: Newton failed at minimum step");
      }
      continue;
    }

    // Local error estimate via the linear predictor (node voltages only).
    double err_ratio = 0.0;
    if (have_history && !after_discontinuity && h_prev > 0.0) {
      const int n_node_vars = netlist.n_nodes() - 1;
      for (int i = 0; i < n_node_vars; ++i) {
        const double pred = x[i] + (x[i] - x_prev[i]) * (h_eff / h_prev);
        const double tol =
            options.v_abstol + options.v_reltol * std::fabs(nr.x[i]);
        err_ratio = std::max(err_ratio, std::fabs(nr.x[i] - pred) / tol);
      }
      if (err_ratio > 1.0 && h_eff > 4.0 * options.h_min) {
        ++result.n_rejected;
        h = h_eff * std::clamp(0.9 / std::sqrt(err_ratio), 0.1, 0.5);
        continue;
      }
    }

    // Accept.
    ctx.x = nr.x;
    for (auto& e : netlist.elements()) {
      e->commit(ctx);
    }
    x_prev = std::move(x);
    x = nr.x;
    h_prev = h_eff;
    t += h_eff;
    have_history = true;
    after_discontinuity = false;
    ++result.n_accepted;
    record_point(t, x);

    if (lands_on_stop && bp_index < bps.size() &&
        std::fabs(t - bps[bp_index]) <= 1e-21 + 1e-12 * std::fabs(t)) {
      // Crossed a source corner: restart gently.
      ++bp_index;
      after_discontinuity = true;
      have_history = false;
      h = options.h_initial;
      continue;
    }

    // Grow/shrink for the next step.
    double factor = 2.0;
    if (err_ratio > 0.0) {
      factor = std::clamp(0.9 / std::sqrt(err_ratio), 0.5, 2.0);
    }
    h = std::min(h_eff * factor, h_max);
    h = std::max(h, options.h_min);
  }

  return result;
}

}  // namespace charlie::spice
