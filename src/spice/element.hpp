// Element interface for the MNA-based analog simulator.
//
// Each element stamps its linearized companion model into the MNA system
// for the current Newton iterate. Ground is node 0 and its row/column are
// eliminated by the Stamper.
#pragma once

#include <span>
#include <vector>

#include "spice/lu.hpp"

namespace charlie::spice {

using NodeId = int;
inline constexpr NodeId kGround = 0;

enum class AnalysisMode {
  kDcOperatingPoint,  // capacitors open, sources at t = t0
  kTransient,         // capacitors via companion models
};

struct StampContext {
  AnalysisMode mode = AnalysisMode::kDcOperatingPoint;
  double t = 0.0;     // time at the end of the step being solved
  double h = 0.0;     // step size (transient only)
  double gmin = 1e-12;  // shunt conductance for Newton robustness
  bool backward_euler = false;  // true: BE companion; false: trapezoidal
  std::span<const double> x;    // iterate: [v(1..N), branch currents]
};

/// Write access to the MNA system with ground elimination. Unknown indices:
/// node k (k >= 1) maps to row k-1; branch variable j maps to row
/// n_nodes-1+j.
class Stamper {
 public:
  Stamper(DenseMatrix& a, std::vector<double>& rhs, int n_nodes);

  /// Conductance stamp between two nodes.
  void conductance(NodeId n1, NodeId n2, double g);
  /// Current source of value `i` flowing from n1 to n2 (into n2).
  void current(NodeId n1, NodeId n2, double i);
  /// Raw matrix entry (row/col in unknown indexing, ground = -1 skipped).
  void matrix(int row, int col, double value);
  void rhs(int row, double value);

  /// Unknown index of a node (-1 for ground) / of a branch variable.
  int node_index(NodeId n) const;
  int branch_index(int branch) const { return n_nodes_ - 1 + branch; }

 private:
  DenseMatrix& a_;
  std::vector<double>& rhs_;
  int n_nodes_;
};

class Element {
 public:
  virtual ~Element() = default;

  /// Stamp the element's (linearized) contribution for iterate ctx.x.
  virtual void stamp(Stamper& s, const StampContext& ctx) const = 0;

  /// Called once after a step is accepted; elements with state (capacitors)
  /// update their history from the converged solution.
  virtual void commit(const StampContext& ctx);

  /// Initialize state from the DC operating point solution.
  virtual void initialize_state(const StampContext& ctx);

  /// Append required time breakpoints in (t0, t1] (PWL source corners).
  virtual void collect_breakpoints(double t0, double t1,
                                   std::vector<double>& out) const;

  /// Number of extra branch unknowns (voltage sources contribute 1).
  virtual int n_branch_vars() const { return 0; }

  /// Set by the netlist when branch variables are assigned.
  void set_first_branch(int index) { first_branch_ = index; }
  int first_branch() const { return first_branch_; }

 protected:
  /// Voltage of node `n` in iterate `x` (0 for ground).
  static double node_voltage(const StampContext& ctx, NodeId n,
                             int n_nodes);

 private:
  int first_branch_ = -1;
};

}  // namespace charlie::spice
