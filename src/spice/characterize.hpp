// NOR2 characterization harness on the analog substrate: the reference
// measurements the paper obtains from Spectre (Fig 2) come from here.
//
// Inputs are slew-limited ramps whose V_th crossing defines t_A/t_B; the
// gate delay is the output V_th crossing relative to the earlier (falling
// output) or later (rising output) input, as in paper Section II.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "spice/cells.hpp"
#include "spice/transient.hpp"
#include "waveform/digital_trace.hpp"
#include "waveform/edges.hpp"

namespace charlie::spice {

struct CharacterizeOptions {
  double settle_time = 400e-12;  // quiet time before the measured edges
  double tail_time = 400e-12;    // observation window after the edges
  TransientOptions transient;    // t_start/t_end filled in by the harness

  CharacterizeOptions();
};

struct MisMeasurement {
  double delay = 0.0;    // gate delay per the paper's convention
  double t_out = 0.0;    // absolute output crossing time
  double t_first = 0.0;  // earlier input crossing
  double t_second = 0.0; // later input crossing
};

/// Falling-output MIS delay: both inputs start low (output high), A rises
/// at t_ref, B at t_ref + delta. Delay = tO - min(tA, tB).
MisMeasurement measure_falling_delay(const Technology& tech, double delta,
                                     const CharacterizeOptions& opts = {});

/// History conditioning for rising measurements: which input rose first
/// determines V_N while the gate sits in (1,1) (paper Section II).
enum class NorHistory {
  kInternalDrained,    // B high first: V_N ~ GND (paper's worst case)
  kInternalPrecharged, // A high first: V_N ~ VDD
};

/// Rising-output MIS delay: both inputs high, A falls at t_ref, B at
/// t_ref + delta. Delay = tO - max(tA, tB).
MisMeasurement measure_rising_delay(const Technology& tech, double delta,
                                    NorHistory history,
                                    const CharacterizeOptions& opts = {});

/// Run a NOR2 testbench with arbitrary digital input traces and record the
/// analog waveforms of a, b, n, o.
struct Nor2TransientResult {
  waveform::Waveform va;
  waveform::Waveform vb;
  waveform::Waveform vn;
  waveform::Waveform vo;
  long n_steps = 0;
};
Nor2TransientResult run_nor2(const Technology& tech,
                             const waveform::DigitalTrace& a,
                             const waveform::DigitalTrace& b, double t_end,
                             const TransientOptions& transient_options);

/// Run any supported cell (spice::CellKind) with arbitrary digital input
/// traces and record the analog input and output waveforms.
struct GateTransientResult {
  std::vector<waveform::Waveform> vin;  // one per input, port order
  waveform::Waveform vo;
  long n_steps = 0;
};
GateTransientResult run_gate_cell(const Technology& tech, CellKind cell,
                                  std::span<const waveform::DigitalTrace> in,
                                  double t_end,
                                  const TransientOptions& transient_options);

/// Characteristic delays of a substrate cell for the generalized gate fit
/// (core::fit_gate_params): per-input single-input-switching delays in both
/// directions plus the two simultaneous-switching extremes, measured with
/// worst-case internal-stack history. Delay convention as in the paper:
/// output crossing minus the (last) input crossing.
struct GateSisTargets {
  std::vector<double> fall;  // per input, output falling
  std::vector<double> rise;  // per input, output rising
  double fall_all = 0.0;     // all inputs rise simultaneously
  double rise_all = 0.0;     // all inputs fall simultaneously
};
GateSisTargets measure_gate_targets(const Technology& tech, CellKind cell,
                                    const CharacterizeOptions& opts = {});

/// Single-input-switching delays of the substrate inverter, measured like
/// the gate targets (output V_th crossing minus input V_th crossing). The
/// cell library derives its SIS-channel cells (INV/BUF/AND2/OR2/XOR2) from
/// these plus the NAND2/NOR2 gate targets.
struct InverterDelays {
  double rise = 0.0;  // output rising (input falls)
  double fall = 0.0;  // output falling (input rises)
};
InverterDelays measure_inverter_delays(const Technology& tech,
                                       const CharacterizeOptions& opts = {});

/// The six characteristic Charlie delays of the substrate gate, measured
/// at |Delta| = `delta_large` for the SIS values. Rising values use the
/// drained history (V_N = GND), matching the paper's choice.
struct SubstrateCharacteristics {
  double fall_minus_inf = 0.0;
  double fall_zero = 0.0;
  double fall_plus_inf = 0.0;
  double rise_minus_inf = 0.0;
  double rise_zero = 0.0;
  double rise_plus_inf = 0.0;
};
SubstrateCharacteristics measure_characteristics(
    const Technology& tech, double delta_large = 200e-12,
    const CharacterizeOptions& opts = {});

}  // namespace charlie::spice
