#include "spice/characterize.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "waveform/digitize.hpp"

namespace charlie::spice {

CharacterizeOptions::CharacterizeOptions() {
  transient.v_abstol = 2e-5;
  transient.v_reltol = 2e-4;
}

Nor2TransientResult run_nor2(const Technology& tech,
                             const waveform::DigitalTrace& a,
                             const waveform::DigitalTrace& b, double t_end,
                             const TransientOptions& transient_options) {
  tech.validate();
  Netlist nl;
  const Nor2Nodes nodes = build_nor2(nl, tech);

  waveform::EdgeParams edges;
  edges.v_low = 0.0;
  edges.v_high = tech.vdd;
  edges.rise_time = tech.input_rise_time;

  nl.add_vsource(nodes.vdd, kGround, tech.vdd);
  nl.add_vsource_pwl(nodes.a, kGround,
                     waveform::slew_limited_waveform(a, edges, 0.0, t_end));
  nl.add_vsource_pwl(nodes.b, kGround,
                     waveform::slew_limited_waveform(b, edges, 0.0, t_end));

  TransientOptions opts = transient_options;
  opts.t_start = 0.0;
  opts.t_end = t_end;
  TransientResult tr = transient_analysis(nl, {"a", "b", "n", "o"}, opts);

  Nor2TransientResult result;
  result.va = std::move(tr.waves.at("a"));
  result.vb = std::move(tr.waves.at("b"));
  result.vn = std::move(tr.waves.at("n"));
  result.vo = std::move(tr.waves.at("o"));
  result.n_steps = tr.n_accepted;
  return result;
}

namespace {

// First crossing of vo in `direction` at or after `t_from`.
double output_crossing(const waveform::Waveform& vo, double vth, bool rising,
                       double t_from) {
  for (const auto& c : waveform::find_crossings(vo, vth)) {
    if (c.rising == rising && c.t >= t_from) return c.t;
  }
  throw ConvergenceError(
      "characterize: output never crossed the threshold in the window");
}

}  // namespace

MisMeasurement measure_falling_delay(const Technology& tech, double delta,
                                     const CharacterizeOptions& opts) {
  const double t_ref = opts.settle_time;
  const double t_a = delta >= 0.0 ? t_ref : t_ref - delta;  // -delta = |delta|
  const double t_b = t_a + delta;
  const double t_end = std::max(t_a, t_b) + opts.tail_time;

  waveform::DigitalTrace a(false, {t_a});
  waveform::DigitalTrace b(false, {t_b});
  const auto sim = run_nor2(tech, a, b, t_end, opts.transient);

  MisMeasurement m;
  m.t_first = std::min(t_a, t_b);
  m.t_second = std::max(t_a, t_b);
  m.t_out = output_crossing(sim.vo, tech.vth(), /*rising=*/false,
                            m.t_first - tech.input_rise_time);
  m.delay = m.t_out - m.t_first;
  return m;
}

MisMeasurement measure_rising_delay(const Technology& tech, double delta,
                                    NorHistory history,
                                    const CharacterizeOptions& opts) {
  // Conditioning: enter (1,1) through (1,0) to drain N (B rises last) or
  // through (0,1) to precharge it (A rises last).
  const double t_cond1 = 0.3 * opts.settle_time;
  const double t_cond2 = 0.6 * opts.settle_time;
  const bool a_rises_first = history == NorHistory::kInternalDrained;

  const double t_ref = t_cond2 + opts.settle_time;
  const double t_a = delta >= 0.0 ? t_ref : t_ref - delta;
  const double t_b = t_a + delta;
  const double t_end = std::max(t_a, t_b) + opts.tail_time;

  waveform::DigitalTrace a(false, {});
  waveform::DigitalTrace b(false, {});
  a.append_transition(a_rises_first ? t_cond1 : t_cond2);
  b.append_transition(a_rises_first ? t_cond2 : t_cond1);
  a.append_transition(t_a);
  b.append_transition(t_b);

  const auto sim = run_nor2(tech, a, b, t_end, opts.transient);

  MisMeasurement m;
  m.t_first = std::min(t_a, t_b);
  m.t_second = std::max(t_a, t_b);
  m.t_out = output_crossing(sim.vo, tech.vth(), /*rising=*/true,
                            m.t_first - tech.input_rise_time);
  m.delay = m.t_out - m.t_second;
  return m;
}

SubstrateCharacteristics measure_characteristics(
    const Technology& tech, double delta_large,
    const CharacterizeOptions& opts) {
  CHARLIE_ASSERT(delta_large > 0.0);
  SubstrateCharacteristics c;
  c.fall_minus_inf = measure_falling_delay(tech, -delta_large, opts).delay;
  c.fall_zero = measure_falling_delay(tech, 0.0, opts).delay;
  c.fall_plus_inf = measure_falling_delay(tech, delta_large, opts).delay;
  const NorHistory h = NorHistory::kInternalDrained;
  c.rise_minus_inf = measure_rising_delay(tech, -delta_large, h, opts).delay;
  c.rise_zero = measure_rising_delay(tech, 0.0, h, opts).delay;
  c.rise_plus_inf = measure_rising_delay(tech, delta_large, h, opts).delay;
  return c;
}

}  // namespace charlie::spice
