#include "spice/characterize.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "waveform/digitize.hpp"

namespace charlie::spice {

CharacterizeOptions::CharacterizeOptions() {
  transient.v_abstol = 2e-5;
  transient.v_reltol = 2e-4;
}

Nor2TransientResult run_nor2(const Technology& tech,
                             const waveform::DigitalTrace& a,
                             const waveform::DigitalTrace& b, double t_end,
                             const TransientOptions& transient_options) {
  tech.validate();
  Netlist nl;
  const Nor2Nodes nodes = build_nor2(nl, tech);

  waveform::EdgeParams edges;
  edges.v_low = 0.0;
  edges.v_high = tech.vdd;
  edges.rise_time = tech.input_rise_time;

  nl.add_vsource(nodes.vdd, kGround, tech.vdd);
  nl.add_vsource_pwl(nodes.a, kGround,
                     waveform::slew_limited_waveform(a, edges, 0.0, t_end));
  nl.add_vsource_pwl(nodes.b, kGround,
                     waveform::slew_limited_waveform(b, edges, 0.0, t_end));

  TransientOptions opts = transient_options;
  opts.t_start = 0.0;
  opts.t_end = t_end;
  TransientResult tr = transient_analysis(nl, {"a", "b", "n", "o"}, opts);

  Nor2TransientResult result;
  result.va = std::move(tr.waves.at("a"));
  result.vb = std::move(tr.waves.at("b"));
  result.vn = std::move(tr.waves.at("n"));
  result.vo = std::move(tr.waves.at("o"));
  result.n_steps = tr.n_accepted;
  return result;
}

namespace {

// First crossing of vo in `direction` at or after `t_from`.
double output_crossing(const waveform::Waveform& vo, double vth, bool rising,
                       double t_from) {
  for (const auto& c : waveform::find_crossings(vo, vth)) {
    if (c.rising == rising && c.t >= t_from) return c.t;
  }
  throw ConvergenceError(
      "characterize: output never crossed the threshold in the window");
}

}  // namespace

MisMeasurement measure_falling_delay(const Technology& tech, double delta,
                                     const CharacterizeOptions& opts) {
  const double t_ref = opts.settle_time;
  const double t_a = delta >= 0.0 ? t_ref : t_ref - delta;  // -delta = |delta|
  const double t_b = t_a + delta;
  const double t_end = std::max(t_a, t_b) + opts.tail_time;

  waveform::DigitalTrace a(false, {t_a});
  waveform::DigitalTrace b(false, {t_b});
  const auto sim = run_nor2(tech, a, b, t_end, opts.transient);

  MisMeasurement m;
  m.t_first = std::min(t_a, t_b);
  m.t_second = std::max(t_a, t_b);
  m.t_out = output_crossing(sim.vo, tech.vth(), /*rising=*/false,
                            m.t_first - tech.input_rise_time);
  m.delay = m.t_out - m.t_first;
  return m;
}

MisMeasurement measure_rising_delay(const Technology& tech, double delta,
                                    NorHistory history,
                                    const CharacterizeOptions& opts) {
  // Conditioning: enter (1,1) through (1,0) to drain N (B rises last) or
  // through (0,1) to precharge it (A rises last).
  const double t_cond1 = 0.3 * opts.settle_time;
  const double t_cond2 = 0.6 * opts.settle_time;
  const bool a_rises_first = history == NorHistory::kInternalDrained;

  const double t_ref = t_cond2 + opts.settle_time;
  const double t_a = delta >= 0.0 ? t_ref : t_ref - delta;
  const double t_b = t_a + delta;
  const double t_end = std::max(t_a, t_b) + opts.tail_time;

  waveform::DigitalTrace a(false, {});
  waveform::DigitalTrace b(false, {});
  a.append_transition(a_rises_first ? t_cond1 : t_cond2);
  b.append_transition(a_rises_first ? t_cond2 : t_cond1);
  a.append_transition(t_a);
  b.append_transition(t_b);

  const auto sim = run_nor2(tech, a, b, t_end, opts.transient);

  MisMeasurement m;
  m.t_first = std::min(t_a, t_b);
  m.t_second = std::max(t_a, t_b);
  m.t_out = output_crossing(sim.vo, tech.vth(), /*rising=*/true,
                            m.t_first - tech.input_rise_time);
  m.delay = m.t_out - m.t_second;
  return m;
}

GateTransientResult run_gate_cell(const Technology& tech, CellKind cell,
                                  std::span<const waveform::DigitalTrace> in,
                                  double t_end,
                                  const TransientOptions& transient_options) {
  tech.validate();
  CHARLIE_ASSERT(static_cast<int>(in.size()) == cell_arity(cell));
  Netlist nl;
  const GateCellNodes nodes = build_cell(nl, tech, cell);

  waveform::EdgeParams edges;
  edges.v_low = 0.0;
  edges.v_high = tech.vdd;
  edges.rise_time = tech.input_rise_time;

  nl.add_vsource(nodes.vdd, kGround, tech.vdd);
  std::vector<std::string> record;
  for (std::size_t i = 0; i < in.size(); ++i) {
    nl.add_vsource_pwl(
        nodes.inputs[i], kGround,
        waveform::slew_limited_waveform(in[i], edges, 0.0, t_end));
    record.push_back(nl.node_name(nodes.inputs[i]));
  }
  const std::string out_name = nl.node_name(nodes.o);
  record.push_back(out_name);

  TransientOptions opts = transient_options;
  opts.t_start = 0.0;
  opts.t_end = t_end;
  TransientResult tr = transient_analysis(nl, record, opts);

  GateTransientResult result;
  for (std::size_t i = 0; i < in.size(); ++i) {
    result.vin.push_back(std::move(tr.waves.at(record[i])));
  }
  result.vo = std::move(tr.waves.at(out_name));
  result.n_steps = tr.n_accepted;
  return result;
}

GateSisTargets measure_gate_targets(const Technology& tech, CellKind cell,
                                    const CharacterizeOptions& opts) {
  const int n = cell_arity(cell);
  const bool nand = cell_is_nand(cell);

  // Conditioning ladder: staggered early edges that establish the resting
  // input state and the worst-case internal-stack history (charged for
  // NAND-like, drained for NOR-like) well before the measured edge.
  auto t_cond = [&](int k) { return (0.20 + 0.08 * k) * opts.settle_time; };
  const double t_drop = t_cond(n + 1);  // release rung for NAND fall_all
  const double t_ref = t_drop + opts.settle_time;

  auto measure = [&](const std::vector<waveform::DigitalTrace>& traces,
                     bool rising) {
    const double t_end = t_ref + opts.tail_time;
    const auto sim = run_gate_cell(tech, cell, traces, t_end, opts.transient);
    return output_crossing(sim.vo, tech.vth(), rising,
                           t_ref - tech.input_rise_time) -
           t_ref;
  };

  GateSisTargets targets;
  for (int i = 0; i < n; ++i) {
    {
      // fall[i]: resting inputs (high for NAND, low for NOR), input i rises
      // at t_ref.
      std::vector<waveform::DigitalTrace> traces;
      for (int j = 0; j < n; ++j) {
        waveform::DigitalTrace tr(false, {});
        if (j == i) {
          tr.append_transition(t_ref);
        } else if (nand) {
          tr.append_transition(t_cond(j));
        }
        traces.push_back(std::move(tr));
      }
      targets.fall.push_back(measure(traces, /*rising=*/false));
    }
    {
      // rise[i]: input i holds the output low (alone for NOR, with the full
      // stack for NAND) and falls at t_ref.
      std::vector<waveform::DigitalTrace> traces;
      for (int j = 0; j < n; ++j) {
        waveform::DigitalTrace tr(false, {});
        if (j == i) {
          tr.append_transition(nand ? t_cond(j) : t_cond(0));
          tr.append_transition(t_ref);
        } else if (nand) {
          tr.append_transition(t_cond(j));
        }
        traces.push_back(std::move(tr));
      }
      targets.rise.push_back(measure(traces, /*rising=*/true));
    }
  }
  {
    // fall_all: every input rises at t_ref. For NAND cells the stack is
    // preconditioned charged (its worst case): inputs 0..n-2 pulse high
    // early, connecting the internal nodes to the then-high output, and
    // release before the measured edge.
    std::vector<waveform::DigitalTrace> traces;
    for (int j = 0; j < n; ++j) {
      waveform::DigitalTrace tr(false, {});
      if (nand && j < n - 1) {
        tr.append_transition(t_cond(j));
        tr.append_transition(t_drop);
      }
      tr.append_transition(t_ref);
      traces.push_back(std::move(tr));
    }
    targets.fall_all = measure(traces, /*rising=*/false);
  }
  {
    // rise_all: every input falls at t_ref from all-high. For NOR cells the
    // stack is preconditioned drained (its worst case): inputs 0..n-2 rise
    // first so the output-adjacent device empties the stack node into the
    // already-low output before input n-1 isolates it.
    std::vector<waveform::DigitalTrace> traces;
    for (int j = 0; j < n; ++j) {
      waveform::DigitalTrace tr(false, {});
      tr.append_transition(j == n - 1 && !nand ? t_drop : t_cond(j));
      tr.append_transition(t_ref);
      traces.push_back(std::move(tr));
    }
    targets.rise_all = measure(traces, /*rising=*/true);
  }
  return targets;
}

InverterDelays measure_inverter_delays(const Technology& tech,
                                       const CharacterizeOptions& opts) {
  tech.validate();
  const double t_ref = opts.settle_time;

  auto measure = [&](bool input_rises) {
    Netlist nl;
    const InverterNodes nodes = build_inverter(nl, tech);
    waveform::EdgeParams edges;
    edges.v_low = 0.0;
    edges.v_high = tech.vdd;
    edges.rise_time = tech.input_rise_time;

    const double t_end = t_ref + opts.tail_time;
    waveform::DigitalTrace in(!input_rises, {t_ref});
    nl.add_vsource(nodes.vdd, kGround, tech.vdd);
    nl.add_vsource_pwl(nodes.in, kGround,
                       waveform::slew_limited_waveform(in, edges, 0.0, t_end));

    TransientOptions topts = opts.transient;
    topts.t_start = 0.0;
    topts.t_end = t_end;
    TransientResult tr =
        transient_analysis(nl, {nl.node_name(nodes.out)}, topts);
    const auto& vo = tr.waves.at(nl.node_name(nodes.out));
    return output_crossing(vo, tech.vth(), /*rising=*/!input_rises,
                           t_ref - tech.input_rise_time) -
           t_ref;
  };

  InverterDelays d;
  d.fall = measure(/*input_rises=*/true);
  d.rise = measure(/*input_rises=*/false);
  return d;
}

SubstrateCharacteristics measure_characteristics(
    const Technology& tech, double delta_large,
    const CharacterizeOptions& opts) {
  CHARLIE_ASSERT(delta_large > 0.0);
  SubstrateCharacteristics c;
  c.fall_minus_inf = measure_falling_delay(tech, -delta_large, opts).delay;
  c.fall_zero = measure_falling_delay(tech, 0.0, opts).delay;
  c.fall_plus_inf = measure_falling_delay(tech, delta_large, opts).delay;
  const NorHistory h = NorHistory::kInternalDrained;
  c.rise_minus_inf = measure_rising_delay(tech, -delta_large, h, opts).delay;
  c.rise_zero = measure_rising_delay(tech, 0.0, h, opts).delay;
  c.rise_plus_inf = measure_rising_delay(tech, delta_large, h, opts).delay;
  return c;
}

}  // namespace charlie::spice
