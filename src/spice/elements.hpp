// Linear circuit elements: resistor, capacitor, voltage source (DC / PWL),
// current source.
#pragma once

#include <memory>
#include <string>

#include "spice/element.hpp"
#include "waveform/waveform.hpp"

namespace charlie::spice {

class Resistor final : public Element {
 public:
  Resistor(NodeId n1, NodeId n2, double resistance);
  void stamp(Stamper& s, const StampContext& ctx) const override;

 private:
  NodeId n1_;
  NodeId n2_;
  double g_;
};

/// Capacitor integrated with a trapezoidal (default) or backward-Euler
/// companion model; keeps (v, i) history across steps.
class Capacitor final : public Element {
 public:
  Capacitor(NodeId n1, NodeId n2, double capacitance, int n_nodes);
  void stamp(Stamper& s, const StampContext& ctx) const override;
  void commit(const StampContext& ctx) override;
  void initialize_state(const StampContext& ctx) override;

  double capacitance() const { return c_; }
  double state_voltage() const { return v_prev_; }

 private:
  double branch_voltage(const StampContext& ctx) const;

  NodeId n1_;
  NodeId n2_;
  double c_;
  int n_nodes_;
  double v_prev_ = 0.0;
  double i_prev_ = 0.0;
};

/// Independent voltage source with one branch unknown. The waveform is a
/// time function; DC sources use a constant.
class VoltageSource final : public Element {
 public:
  /// DC source.
  VoltageSource(NodeId n_plus, NodeId n_minus, double dc_volts);
  /// PWL source; value_at() is evaluated at the step end time. Breakpoints
  /// are the sample instants.
  VoltageSource(NodeId n_plus, NodeId n_minus, waveform::Waveform pwl);

  void stamp(Stamper& s, const StampContext& ctx) const override;
  void collect_breakpoints(double t0, double t1,
                           std::vector<double>& out) const override;
  int n_branch_vars() const override { return 1; }

  double value_at(double t) const;

 private:
  NodeId n_plus_;
  NodeId n_minus_;
  double dc_ = 0.0;
  bool is_pwl_ = false;
  waveform::Waveform pwl_;
};

class CurrentSource final : public Element {
 public:
  /// Constant current flowing from n_plus through the source to n_minus.
  CurrentSource(NodeId n_plus, NodeId n_minus, double dc_amps);
  void stamp(Stamper& s, const StampContext& ctx) const override;

 private:
  NodeId n_plus_;
  NodeId n_minus_;
  double dc_;
};

}  // namespace charlie::spice
