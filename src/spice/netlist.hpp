// Netlist: named nodes plus an owned list of elements.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "spice/element.hpp"
#include "spice/elements.hpp"
#include "spice/mosfet.hpp"
#include "waveform/waveform.hpp"

namespace charlie::spice {

class Netlist {
 public:
  Netlist();

  /// Get-or-create a named node. "0" and "gnd" map to ground.
  NodeId node(const std::string& name);

  /// Node id for an existing name; throws ConfigError if unknown.
  NodeId find_node(const std::string& name) const;
  bool has_node(const std::string& name) const;
  const std::string& node_name(NodeId id) const;

  int n_nodes() const { return static_cast<int>(node_names_.size()); }
  int n_branches() const { return n_branches_; }
  /// MNA unknown count: (n_nodes - 1) node voltages + branch currents.
  int n_unknowns() const { return n_nodes() - 1 + n_branches_; }

  // --- element factories ---------------------------------------------------
  Resistor& add_resistor(NodeId n1, NodeId n2, double ohms);
  Capacitor& add_capacitor(NodeId n1, NodeId n2, double farads);
  VoltageSource& add_vsource(NodeId n_plus, NodeId n_minus, double dc_volts);
  VoltageSource& add_vsource_pwl(NodeId n_plus, NodeId n_minus,
                                 waveform::Waveform pwl);
  CurrentSource& add_isource(NodeId n_plus, NodeId n_minus, double amps);
  Mosfet& add_nmos(NodeId d, NodeId g, NodeId s, const MosfetParams& params);
  Mosfet& add_pmos(NodeId d, NodeId g, NodeId s, const MosfetParams& params);

  const std::vector<std::unique_ptr<Element>>& elements() const {
    return elements_;
  }
  std::vector<std::unique_ptr<Element>>& elements() { return elements_; }

  /// All source breakpoints in (t0, t1], sorted and deduplicated.
  std::vector<double> breakpoints(double t0, double t1) const;

 private:
  template <typename T, typename... Args>
  T& emplace(Args&&... args);

  std::vector<std::string> node_names_;
  std::unordered_map<std::string, NodeId> node_ids_;
  std::vector<std::unique_ptr<Element>> elements_;
  int n_branches_ = 0;
};

}  // namespace charlie::spice
