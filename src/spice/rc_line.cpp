#include "spice/rc_line.hpp"

#include "util/error.hpp"
#include "waveform/edges.hpp"

namespace charlie::spice {

RcLineNodes build_rc_line(Netlist& nl, const RcLineSpec& spec,
                          const std::string& prefix) {
  if (!(spec.r_total > 0.0) || !(spec.c_total > 0.0)) {
    throw ConfigError("rc line: r_total and c_total must be positive");
  }
  if (spec.n_sections < 1) {
    throw ConfigError("rc line: n_sections must be >= 1");
  }
  if (spec.r_drive < 0.0 || spec.c_load < 0.0) {
    throw ConfigError("rc line: r_drive and c_load must be non-negative");
  }

  RcLineNodes nodes;
  nodes.in = nl.node(prefix + "in");
  const double r_sec = spec.r_total / spec.n_sections;
  const double c_sec = spec.c_total / spec.n_sections;
  NodeId prev = nodes.in;
  for (int k = 1; k <= spec.n_sections; ++k) {
    const NodeId tap = nl.node(prefix + "t" + std::to_string(k));
    // The driver resistance folds into the first segment so a zero r_drive
    // never stamps a zero-ohm resistor.
    nl.add_resistor(prev, tap, r_sec + (k == 1 ? spec.r_drive : 0.0));
    double cap = c_sec + (k == spec.n_sections ? spec.c_load : 0.0);
    nl.add_capacitor(tap, kGround, cap);
    nodes.taps.push_back(tap);
    prev = tap;
  }
  nodes.out = nodes.taps.back();
  return nodes;
}

RcLineTransientResult run_rc_line(const RcLineSpec& spec,
                                  const waveform::DigitalTrace& drive,
                                  double rise_time, double t_end,
                                  const TransientOptions& transient_options) {
  CHARLIE_ASSERT(rise_time > 0.0);
  CHARLIE_ASSERT(t_end > 0.0);
  Netlist nl;
  const RcLineNodes nodes = build_rc_line(nl, spec);

  waveform::EdgeParams edges;
  edges.v_low = 0.0;
  edges.v_high = spec.vdd;
  edges.rise_time = rise_time;
  nl.add_vsource_pwl(nodes.in, kGround,
                     waveform::slew_limited_waveform(drive, edges, 0.0, t_end));

  const std::string in_name = nl.node_name(nodes.in);
  const std::string out_name = nl.node_name(nodes.out);

  TransientOptions opts = transient_options;
  opts.t_start = 0.0;
  opts.t_end = t_end;
  TransientResult tr = transient_analysis(nl, {in_name, out_name}, opts);

  RcLineTransientResult result;
  result.vin = std::move(tr.waves.at(in_name));
  result.vout = std::move(tr.waves.at(out_name));
  result.n_steps = tr.n_accepted;
  return result;
}

}  // namespace charlie::spice
