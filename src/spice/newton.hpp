// Damped Newton-Raphson solve of the stamped MNA system.
#pragma once

#include <functional>
#include <vector>

#include "spice/netlist.hpp"

namespace charlie::spice {

struct NewtonOptions {
  int max_iterations = 200;
  double v_abstol = 1e-7;   // [V] convergence on node-voltage updates
  double v_reltol = 1e-6;
  double max_update = 0.4;  // [V] per-iteration voltage limiting
};

struct NewtonResult {
  std::vector<double> x;
  int iterations = 0;
  bool converged = false;
};

/// Solve the nonlinear system defined by stamping every element of
/// `netlist` under `ctx` (ctx.x is overridden per iterate). `x0` seeds the
/// iteration.
NewtonResult solve_newton(const Netlist& netlist, StampContext ctx,
                          std::vector<double> x0,
                          const NewtonOptions& options = {});

}  // namespace charlie::spice
