#include "spice/lu.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace charlie::spice {

DenseMatrix::DenseMatrix(std::size_t n) : n_(n), a_(n * n, 0.0) {}

void DenseMatrix::clear() { std::fill(a_.begin(), a_.end(), 0.0); }

double& DenseMatrix::at(std::size_t row, std::size_t col) {
  CHARLIE_ASSERT(row < n_ && col < n_);
  return a_[row * n_ + col];
}

double DenseMatrix::at(std::size_t row, std::size_t col) const {
  CHARLIE_ASSERT(row < n_ && col < n_);
  return a_[row * n_ + col];
}

void DenseMatrix::add(std::size_t row, std::size_t col, double value) {
  at(row, col) += value;
}

std::vector<double> lu_solve(DenseMatrix& a, std::vector<double> b) {
  const std::size_t n = a.size();
  CHARLIE_ASSERT(b.size() == n);
  auto& m = a.data();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::fabs(m[perm[col] * n + col]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double v = std::fabs(m[perm[row] * n + col]);
      if (v > best) {
        best = v;
        pivot = row;
      }
    }
    if (best < 1e-300) {
      throw ConvergenceError("lu_solve: singular MNA matrix");
    }
    std::swap(perm[col], perm[pivot]);
    const std::size_t prow = perm[col];
    const double diag = m[prow * n + col];
    for (std::size_t row = col + 1; row < n; ++row) {
      const std::size_t r = perm[row];
      const double factor = m[r * n + col] / diag;
      if (factor == 0.0) continue;
      m[r * n + col] = factor;  // store L
      for (std::size_t k = col + 1; k < n; ++k) {
        m[r * n + k] -= factor * m[prow * n + k];
      }
      b[r] -= factor * b[prow];
    }
  }

  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    const std::size_t r = perm[i];
    double acc = b[r];
    for (std::size_t k = i + 1; k < n; ++k) acc -= m[r * n + k] * x[k];
    x[i] = acc / m[r * n + i];
  }
  return x;
}

}  // namespace charlie::spice
