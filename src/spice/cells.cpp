#include "spice/cells.hpp"

namespace charlie::spice {

Nor2Nodes build_nor2(Netlist& nl, const Technology& tech,
                     const std::string& prefix) {
  tech.validate();
  Nor2Nodes nodes;
  nodes.vdd = nl.node("vdd");
  nodes.a = nl.node(prefix + "a");
  nodes.b = nl.node(prefix + "b");
  nodes.n = nl.node(prefix + "n");
  nodes.o = nl.node(prefix + "o");

  // T1: pMOS, gate A, source VDD, drain N.
  nl.add_pmos(nodes.n, nodes.a, nodes.vdd, tech.pmos);
  // T2: pMOS, gate B, source N, drain O.
  nl.add_pmos(nodes.o, nodes.b, nodes.n, tech.pmos);
  // T3: nMOS, gate A, drain O, source GND.
  nl.add_nmos(nodes.o, nodes.a, kGround, tech.nmos);
  // T4: nMOS, gate B, drain O, source GND.
  nl.add_nmos(nodes.o, nodes.b, kGround, tech.nmos);

  // Node parasitics of Fig 1.
  nl.add_capacitor(nodes.n, kGround, tech.c_internal);
  nl.add_capacitor(nodes.o, kGround, tech.c_output);

  // Gate capacitances: the input-to-node coupling paths.
  if (tech.c_gd > 0.0) {
    nl.add_capacitor(nodes.a, nodes.n, tech.c_gd);  // T1 gate-drain
    nl.add_capacitor(nodes.b, nodes.o, tech.c_gd);  // T2 gate-drain
    nl.add_capacitor(nodes.a, nodes.o, tech.c_gd);  // T3 gate-drain
    nl.add_capacitor(nodes.b, nodes.o, tech.c_gd);  // T4 gate-drain
  }
  if (tech.c_gs > 0.0) {
    nl.add_capacitor(nodes.a, nodes.vdd, tech.c_gs);  // T1 gate-source
    nl.add_capacitor(nodes.b, nodes.n, tech.c_gs);    // T2 gate-source
    nl.add_capacitor(nodes.a, kGround, tech.c_gs);    // T3 gate-source
    nl.add_capacitor(nodes.b, kGround, tech.c_gs);    // T4 gate-source
  }
  return nodes;
}

InverterNodes build_inverter(Netlist& nl, const Technology& tech,
                             const std::string& prefix) {
  tech.validate();
  InverterNodes nodes;
  nodes.vdd = nl.node("vdd");
  nodes.in = nl.node(prefix + "in");
  nodes.out = nl.node(prefix + "out");
  nl.add_pmos(nodes.out, nodes.in, nodes.vdd, tech.pmos);
  nl.add_nmos(nodes.out, nodes.in, kGround, tech.nmos);
  nl.add_capacitor(nodes.out, kGround, tech.c_output);
  if (tech.c_gd > 0.0) {
    nl.add_capacitor(nodes.in, nodes.out, 2.0 * tech.c_gd);
  }
  return nodes;
}

Nand2Nodes build_nand2(Netlist& nl, const Technology& tech,
                       const std::string& prefix) {
  tech.validate();
  Nand2Nodes nodes;
  nodes.vdd = nl.node("vdd");
  nodes.a = nl.node(prefix + "a");
  nodes.b = nl.node(prefix + "b");
  nodes.m = nl.node(prefix + "m");
  nodes.o = nl.node(prefix + "o");

  // Parallel pMOS to VDD, series nMOS to ground (A on top).
  nl.add_pmos(nodes.o, nodes.a, nodes.vdd, tech.pmos);
  nl.add_pmos(nodes.o, nodes.b, nodes.vdd, tech.pmos);
  nl.add_nmos(nodes.o, nodes.a, nodes.m, tech.nmos);
  nl.add_nmos(nodes.m, nodes.b, kGround, tech.nmos);

  nl.add_capacitor(nodes.m, kGround, tech.c_internal);
  nl.add_capacitor(nodes.o, kGround, tech.c_output);
  if (tech.c_gd > 0.0) {
    nl.add_capacitor(nodes.a, nodes.o, 2.0 * tech.c_gd);
    nl.add_capacitor(nodes.b, nodes.o, tech.c_gd);
    nl.add_capacitor(nodes.b, nodes.m, tech.c_gd);
  }
  return nodes;
}

}  // namespace charlie::spice
