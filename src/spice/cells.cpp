#include "spice/cells.hpp"

namespace charlie::spice {

Nor2Nodes build_nor2(Netlist& nl, const Technology& tech,
                     const std::string& prefix) {
  tech.validate();
  Nor2Nodes nodes;
  nodes.vdd = nl.node("vdd");
  nodes.a = nl.node(prefix + "a");
  nodes.b = nl.node(prefix + "b");
  nodes.n = nl.node(prefix + "n");
  nodes.o = nl.node(prefix + "o");

  // T1: pMOS, gate A, source VDD, drain N.
  nl.add_pmos(nodes.n, nodes.a, nodes.vdd, tech.pmos);
  // T2: pMOS, gate B, source N, drain O.
  nl.add_pmos(nodes.o, nodes.b, nodes.n, tech.pmos);
  // T3: nMOS, gate A, drain O, source GND.
  nl.add_nmos(nodes.o, nodes.a, kGround, tech.nmos);
  // T4: nMOS, gate B, drain O, source GND.
  nl.add_nmos(nodes.o, nodes.b, kGround, tech.nmos);

  // Node parasitics of Fig 1.
  nl.add_capacitor(nodes.n, kGround, tech.c_internal);
  nl.add_capacitor(nodes.o, kGround, tech.c_output);

  // Gate capacitances: the input-to-node coupling paths.
  if (tech.c_gd > 0.0) {
    nl.add_capacitor(nodes.a, nodes.n, tech.c_gd);  // T1 gate-drain
    nl.add_capacitor(nodes.b, nodes.o, tech.c_gd);  // T2 gate-drain
    nl.add_capacitor(nodes.a, nodes.o, tech.c_gd);  // T3 gate-drain
    nl.add_capacitor(nodes.b, nodes.o, tech.c_gd);  // T4 gate-drain
  }
  if (tech.c_gs > 0.0) {
    nl.add_capacitor(nodes.a, nodes.vdd, tech.c_gs);  // T1 gate-source
    nl.add_capacitor(nodes.b, nodes.n, tech.c_gs);    // T2 gate-source
    nl.add_capacitor(nodes.a, kGround, tech.c_gs);    // T3 gate-source
    nl.add_capacitor(nodes.b, kGround, tech.c_gs);    // T4 gate-source
  }
  return nodes;
}

InverterNodes build_inverter(Netlist& nl, const Technology& tech,
                             const std::string& prefix) {
  tech.validate();
  InverterNodes nodes;
  nodes.vdd = nl.node("vdd");
  nodes.in = nl.node(prefix + "in");
  nodes.out = nl.node(prefix + "out");
  nl.add_pmos(nodes.out, nodes.in, nodes.vdd, tech.pmos);
  nl.add_nmos(nodes.out, nodes.in, kGround, tech.nmos);
  nl.add_capacitor(nodes.out, kGround, tech.c_output);
  if (tech.c_gd > 0.0) {
    nl.add_capacitor(nodes.in, nodes.out, 2.0 * tech.c_gd);
  }
  return nodes;
}

Nand2Nodes build_nand2(Netlist& nl, const Technology& tech,
                       const std::string& prefix) {
  tech.validate();
  Nand2Nodes nodes;
  nodes.vdd = nl.node("vdd");
  nodes.a = nl.node(prefix + "a");
  nodes.b = nl.node(prefix + "b");
  nodes.m = nl.node(prefix + "m");
  nodes.o = nl.node(prefix + "o");

  // Parallel pMOS to VDD, series nMOS to ground (A on top).
  nl.add_pmos(nodes.o, nodes.a, nodes.vdd, tech.pmos);
  nl.add_pmos(nodes.o, nodes.b, nodes.vdd, tech.pmos);
  nl.add_nmos(nodes.o, nodes.a, nodes.m, tech.nmos);
  nl.add_nmos(nodes.m, nodes.b, kGround, tech.nmos);

  nl.add_capacitor(nodes.m, kGround, tech.c_internal);
  nl.add_capacitor(nodes.o, kGround, tech.c_output);
  if (tech.c_gd > 0.0) {
    nl.add_capacitor(nodes.a, nodes.o, 2.0 * tech.c_gd);
    nl.add_capacitor(nodes.b, nodes.o, tech.c_gd);
    nl.add_capacitor(nodes.b, nodes.m, tech.c_gd);
  }
  return nodes;
}

Nor3Nodes build_nor3(Netlist& nl, const Technology& tech,
                     const std::string& prefix) {
  tech.validate();
  Nor3Nodes nodes;
  nodes.vdd = nl.node("vdd");
  nodes.a = nl.node(prefix + "a");
  nodes.b = nl.node(prefix + "b");
  nodes.c = nl.node(prefix + "c");
  nodes.n1 = nl.node(prefix + "n1");
  nodes.n2 = nl.node(prefix + "n2");
  nodes.o = nl.node(prefix + "o");

  // Series pull-up VDD -T1(A)- n1 -T2(B)- n2 -T3(C)- O.
  nl.add_pmos(nodes.n1, nodes.a, nodes.vdd, tech.pmos);
  nl.add_pmos(nodes.n2, nodes.b, nodes.n1, tech.pmos);
  nl.add_pmos(nodes.o, nodes.c, nodes.n2, tech.pmos);
  // Parallel pull-down.
  nl.add_nmos(nodes.o, nodes.a, kGround, tech.nmos);
  nl.add_nmos(nodes.o, nodes.b, kGround, tech.nmos);
  nl.add_nmos(nodes.o, nodes.c, kGround, tech.nmos);

  nl.add_capacitor(nodes.n1, kGround, tech.c_internal);
  nl.add_capacitor(nodes.n2, kGround, tech.c_internal);
  nl.add_capacitor(nodes.o, kGround, tech.c_output);

  // Gate-drain coupling of every device, gate-source of the stack top and
  // the nMOS row (same pattern as build_nor2).
  if (tech.c_gd > 0.0) {
    nl.add_capacitor(nodes.a, nodes.n1, tech.c_gd);
    nl.add_capacitor(nodes.b, nodes.n2, tech.c_gd);
    nl.add_capacitor(nodes.c, nodes.o, tech.c_gd);
    nl.add_capacitor(nodes.a, nodes.o, tech.c_gd);
    nl.add_capacitor(nodes.b, nodes.o, tech.c_gd);
    nl.add_capacitor(nodes.c, nodes.o, tech.c_gd);
  }
  if (tech.c_gs > 0.0) {
    nl.add_capacitor(nodes.a, nodes.vdd, tech.c_gs);
    nl.add_capacitor(nodes.b, nodes.n1, tech.c_gs);
    nl.add_capacitor(nodes.c, nodes.n2, tech.c_gs);
    nl.add_capacitor(nodes.a, kGround, tech.c_gs);
    nl.add_capacitor(nodes.b, kGround, tech.c_gs);
    nl.add_capacitor(nodes.c, kGround, tech.c_gs);
  }
  return nodes;
}

Nand3Nodes build_nand3(Netlist& nl, const Technology& tech,
                       const std::string& prefix) {
  tech.validate();
  Nand3Nodes nodes;
  nodes.vdd = nl.node("vdd");
  nodes.a = nl.node(prefix + "a");
  nodes.b = nl.node(prefix + "b");
  nodes.c = nl.node(prefix + "c");
  nodes.m1 = nl.node(prefix + "m1");
  nodes.m2 = nl.node(prefix + "m2");
  nodes.o = nl.node(prefix + "o");

  // Parallel pull-up, series pull-down O -T_A- m1 -T_B- m2 -T_C- GND.
  nl.add_pmos(nodes.o, nodes.a, nodes.vdd, tech.pmos);
  nl.add_pmos(nodes.o, nodes.b, nodes.vdd, tech.pmos);
  nl.add_pmos(nodes.o, nodes.c, nodes.vdd, tech.pmos);
  nl.add_nmos(nodes.o, nodes.a, nodes.m1, tech.nmos);
  nl.add_nmos(nodes.m1, nodes.b, nodes.m2, tech.nmos);
  nl.add_nmos(nodes.m2, nodes.c, kGround, tech.nmos);

  nl.add_capacitor(nodes.m1, kGround, tech.c_internal);
  nl.add_capacitor(nodes.m2, kGround, tech.c_internal);
  nl.add_capacitor(nodes.o, kGround, tech.c_output);

  // Gate-drain coupling per device (same pattern as build_nand2).
  if (tech.c_gd > 0.0) {
    nl.add_capacitor(nodes.a, nodes.o, 2.0 * tech.c_gd);
    nl.add_capacitor(nodes.b, nodes.o, tech.c_gd);
    nl.add_capacitor(nodes.c, nodes.o, tech.c_gd);
    nl.add_capacitor(nodes.b, nodes.m1, tech.c_gd);
    nl.add_capacitor(nodes.c, nodes.m2, tech.c_gd);
  }
  return nodes;
}

int cell_arity(CellKind kind) {
  return (kind == CellKind::kNor3 || kind == CellKind::kNand3) ? 3 : 2;
}

bool cell_is_nand(CellKind kind) {
  return kind == CellKind::kNand2 || kind == CellKind::kNand3;
}

std::string cell_name(CellKind kind) {
  switch (kind) {
    case CellKind::kNor2:
      return "NOR2";
    case CellKind::kNor3:
      return "NOR3";
    case CellKind::kNand2:
      return "NAND2";
    case CellKind::kNand3:
      return "NAND3";
  }
  return "?";
}

GateCellNodes build_cell(Netlist& nl, const Technology& tech, CellKind kind,
                         const std::string& prefix) {
  GateCellNodes out;
  switch (kind) {
    case CellKind::kNor2: {
      const Nor2Nodes n = build_nor2(nl, tech, prefix);
      out.vdd = n.vdd;
      out.inputs = {n.a, n.b};
      out.o = n.o;
      break;
    }
    case CellKind::kNor3: {
      const Nor3Nodes n = build_nor3(nl, tech, prefix);
      out.vdd = n.vdd;
      out.inputs = {n.a, n.b, n.c};
      out.o = n.o;
      break;
    }
    case CellKind::kNand2: {
      const Nand2Nodes n = build_nand2(nl, tech, prefix);
      out.vdd = n.vdd;
      out.inputs = {n.a, n.b};
      out.o = n.o;
      break;
    }
    case CellKind::kNand3: {
      const Nand3Nodes n = build_nand3(nl, tech, prefix);
      out.vdd = n.vdd;
      out.inputs = {n.a, n.b, n.c};
      out.o = n.o;
      break;
    }
  }
  return out;
}

}  // namespace charlie::spice
