// Adaptive-step transient analysis.
//
// Trapezoidal integration with a predictor-based local error controller:
// each accepted solution is compared against the linear extrapolation of
// the two previous points; the difference estimates the local quadratic
// term and drives the step size. Source breakpoints (PWL corners) are
// always landed on exactly, and the step restarts small after each one.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "spice/dcop.hpp"
#include "spice/netlist.hpp"
#include "waveform/waveform.hpp"

namespace charlie::spice {

struct TransientOptions {
  double t_start = 0.0;
  double t_end = 0.0;       // required
  double h_initial = 1e-15;
  double h_min = 1e-19;
  double h_max = 0.0;       // 0 = (t_end - t_start) / 50
  double v_abstol = 1e-5;   // [V] LTE target per node
  double v_reltol = 1e-4;
  long max_steps = 100'000'000;
  NewtonOptions newton;
};

struct TransientResult {
  /// Waveforms of the recorded nodes, keyed by node name.
  std::unordered_map<std::string, waveform::Waveform> waves;
  long n_accepted = 0;
  long n_rejected = 0;
  long n_newton_failures = 0;

  const waveform::Waveform& wave(const std::string& node) const;
};

/// Run a transient analysis recording the named nodes. Element state
/// (capacitor history) is initialized from the DC operating point at
/// t_start. Throws ConvergenceError on an unrecoverable step failure.
TransientResult transient_analysis(Netlist& netlist,
                                   const std::vector<std::string>& record,
                                   const TransientOptions& options);

}  // namespace charlie::spice
