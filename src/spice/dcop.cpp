#include "spice/dcop.hpp"

#include "util/error.hpp"

namespace charlie::spice {

std::vector<double> dc_operating_point(const Netlist& netlist,
                                       const DcOpOptions& options) {
  std::vector<double> x(static_cast<std::size_t>(netlist.n_unknowns()), 0.0);

  StampContext ctx;
  ctx.mode = AnalysisMode::kDcOperatingPoint;
  ctx.t = options.t;

  // Continuation in gmin: solve with a strong shunt everywhere, then relax
  // it, reusing each solution as the next seed.
  bool have_solution = false;
  for (double gmin = options.gmin_start; gmin >= options.gmin_final;
       gmin *= 0.01) {
    ctx.gmin = gmin;
    const NewtonResult r = solve_newton(netlist, ctx, x, options.newton);
    if (r.converged) {
      x = r.x;
      have_solution = true;
    } else if (!have_solution) {
      // Early failure with a strong shunt: tighten damping and retry once.
      NewtonOptions strict = options.newton;
      strict.max_update = 0.1;
      strict.max_iterations = 500;
      const NewtonResult r2 = solve_newton(netlist, ctx, x, strict);
      if (r2.converged) {
        x = r2.x;
        have_solution = true;
      }
    }
  }
  ctx.gmin = options.gmin_final;
  const NewtonResult final_r = solve_newton(netlist, ctx, x, options.newton);
  if (!final_r.converged) {
    throw ConvergenceError("dc_operating_point: Newton failed to converge");
  }
  return final_r.x;
}

}  // namespace charlie::spice
