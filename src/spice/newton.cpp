#include "spice/newton.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace charlie::spice {

NewtonResult solve_newton(const Netlist& netlist, StampContext ctx,
                          std::vector<double> x0,
                          const NewtonOptions& options) {
  const int n = netlist.n_unknowns();
  CHARLIE_ASSERT(static_cast<int>(x0.size()) == n);
  const int n_node_vars = netlist.n_nodes() - 1;

  NewtonResult result;
  result.x = std::move(x0);

  DenseMatrix a(static_cast<std::size_t>(n));
  std::vector<double> rhs(static_cast<std::size_t>(n));

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    a.clear();
    std::fill(rhs.begin(), rhs.end(), 0.0);
    Stamper stamper(a, rhs, netlist.n_nodes());
    ctx.x = result.x;
    for (const auto& e : netlist.elements()) {
      e->stamp(stamper, ctx);
    }
    std::vector<double> x_new = lu_solve(a, rhs);

    // Voltage limiting: scale the whole update so no node moves more than
    // max_update volts (keeps MOSFET linearizations in their trust region).
    double biggest = 0.0;
    for (int i = 0; i < n_node_vars; ++i) {
      biggest = std::max(biggest, std::fabs(x_new[i] - result.x[i]));
    }
    double scale = 1.0;
    if (biggest > options.max_update) {
      scale = options.max_update / biggest;
    }
    bool converged = true;
    for (int i = 0; i < n; ++i) {
      const double step = (x_new[i] - result.x[i]) * scale;
      result.x[i] += step;
      if (i < n_node_vars) {
        const double tol =
            options.v_abstol + options.v_reltol * std::fabs(result.x[i]);
        if (std::fabs(step) > tol) converged = false;
      }
    }
    if (converged && scale == 1.0) {
      result.converged = true;
      return result;
    }
  }
  return result;  // converged = false
}

}  // namespace charlie::spice
