#include "spice/mosfet.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace charlie::spice {

void MosfetParams::validate() const {
  CHARLIE_ASSERT_MSG(vt > 0.0, "mosfet vt must be positive (magnitude)");
  CHARLIE_ASSERT_MSG(k > 0.0, "mosfet k must be positive");
  CHARLIE_ASSERT_MSG(lambda >= 0.0, "mosfet lambda must be non-negative");
}

MosfetOperatingPoint nmos_current(const MosfetParams& p, double vgs,
                                  double vds) {
  CHARLIE_ASSERT_MSG(vds >= 0.0, "nmos_current expects vds >= 0");
  MosfetOperatingPoint op;
  const double vov = vgs - p.vt;  // overdrive
  if (vov <= 0.0) {
    // Cutoff: zero current; the element adds a gmin shunt for Jacobian
    // regularity.
    return op;
  }
  const double clm = 1.0 + p.lambda * vds;
  if (vds < vov) {
    // Triode.
    const double shape = vov * vds - 0.5 * vds * vds;
    op.id = p.k * shape * clm;
    op.gm = p.k * vds * clm;
    op.gds = p.k * (vov - vds) * clm + p.k * shape * p.lambda;
  } else {
    // Saturation.
    const double base = 0.5 * p.k * vov * vov;
    op.id = base * clm;
    op.gm = p.k * vov * clm;
    op.gds = base * p.lambda;
  }
  return op;
}

namespace {

// Channel current I(d->s) and its partial derivatives with respect to the
// *physical* terminal voltages (vd, vg, vs).
//
// PMOS is evaluated in mirrored space w = -v, where it behaves as an NMOS;
// the physical current is the negated mirrored current, and because the two
// sign flips cancel, the physical partials equal the mirrored ones.
// Channel symmetry (vds < 0) swaps the source/drain roles.
struct Linearized {
  double i = 0.0;
  double gd = 0.0;
  double gg = 0.0;
  double gs = 0.0;
};

Linearized linearize(MosfetType type, const MosfetParams& params, double vd,
                     double vg, double vs) {
  const double sign = type == MosfetType::kPmos ? -1.0 : 1.0;
  const double wd = sign * vd;
  const double wg = sign * vg;
  const double ws = sign * vs;

  Linearized lin;
  if (wd >= ws) {
    const MosfetOperatingPoint op = nmos_current(params, wg - ws, wd - ws);
    lin.i = sign * op.id;
    lin.gd = op.gds;
    lin.gg = op.gm;
    lin.gs = -(op.gm + op.gds);
  } else {
    // Reversed channel: physical mirrored current flows s->d with the
    // terminal at `d` acting as source.
    const MosfetOperatingPoint op = nmos_current(params, wg - wd, ws - wd);
    lin.i = sign * -op.id;
    lin.gd = op.gm + op.gds;
    lin.gg = -op.gm;
    lin.gs = -op.gds;
  }
  return lin;
}

}  // namespace

Mosfet::Mosfet(MosfetType type, NodeId drain, NodeId gate, NodeId source,
               MosfetParams params, int n_nodes)
    : type_(type), d_(drain), g_(gate), s_(source), params_(params),
      n_nodes_(n_nodes) {
  params_.validate();
}

void Mosfet::stamp(Stamper& st, const StampContext& ctx) const {
  const double vd = node_voltage(ctx, d_, n_nodes_);
  const double vg = node_voltage(ctx, g_, n_nodes_);
  const double vs = node_voltage(ctx, s_, n_nodes_);

  const Linearized lin = linearize(type_, params_, vd, vg, vs);

  const int id = st.node_index(d_);
  const int ig = st.node_index(g_);
  const int is = st.node_index(s_);

  // Jacobian of the channel current I(d->s): +row at drain, -row at source.
  st.matrix(id, id, lin.gd);
  st.matrix(id, ig, lin.gg);
  st.matrix(id, is, lin.gs);
  st.matrix(is, id, -lin.gd);
  st.matrix(is, ig, -lin.gg);
  st.matrix(is, is, -lin.gs);

  // Newton rhs: move the affine part of the linearization across.
  const double i_const = lin.i - lin.gd * vd - lin.gg * vg - lin.gs * vs;
  st.rhs(id, -i_const);
  st.rhs(is, i_const);

  // gmin shunt keeps cutoff devices from leaving nodes floating.
  st.conductance(d_, s_, ctx.gmin);
}

}  // namespace charlie::spice
