// Dense LU factorization with partial pivoting.
//
// MNA systems in this library are tiny (a NOR testbench is ~8 unknowns), so
// a straightforward dense solver is both simpler and faster than sparse
// machinery.
#pragma once

#include <cstddef>
#include <vector>

namespace charlie::spice {

/// Row-major dense square matrix with a companion right-hand side.
class DenseMatrix {
 public:
  explicit DenseMatrix(std::size_t n);

  void clear();
  std::size_t size() const { return n_; }

  double& at(std::size_t row, std::size_t col);
  double at(std::size_t row, std::size_t col) const;
  void add(std::size_t row, std::size_t col, double value);

  std::vector<double>& data() { return a_; }
  const std::vector<double>& data() const { return a_; }

 private:
  std::size_t n_;
  std::vector<double> a_;
};

/// Solve A x = b in place (A is overwritten by its factors).
/// Throws ConvergenceError when the matrix is numerically singular.
std::vector<double> lu_solve(DenseMatrix& a, std::vector<double> b);

}  // namespace charlie::spice
