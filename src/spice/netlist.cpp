#include "spice/netlist.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace charlie::spice {

Netlist::Netlist() {
  node_names_.push_back("0");
  node_ids_["0"] = kGround;
  node_ids_["gnd"] = kGround;
}

NodeId Netlist::node(const std::string& name) {
  const auto it = node_ids_.find(name);
  if (it != node_ids_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  node_ids_[name] = id;
  return id;
}

NodeId Netlist::find_node(const std::string& name) const {
  const auto it = node_ids_.find(name);
  if (it == node_ids_.end()) {
    throw ConfigError("unknown node: " + name);
  }
  return it->second;
}

bool Netlist::has_node(const std::string& name) const {
  return node_ids_.count(name) > 0;
}

const std::string& Netlist::node_name(NodeId id) const {
  CHARLIE_ASSERT(id >= 0 && id < n_nodes());
  return node_names_[static_cast<std::size_t>(id)];
}

template <typename T, typename... Args>
T& Netlist::emplace(Args&&... args) {
  auto owned = std::make_unique<T>(std::forward<Args>(args)...);
  T& ref = *owned;
  if (ref.n_branch_vars() > 0) {
    ref.set_first_branch(n_branches_);
    n_branches_ += ref.n_branch_vars();
  }
  elements_.push_back(std::move(owned));
  return ref;
}

Resistor& Netlist::add_resistor(NodeId n1, NodeId n2, double ohms) {
  return emplace<Resistor>(n1, n2, ohms);
}

Capacitor& Netlist::add_capacitor(NodeId n1, NodeId n2, double farads) {
  return emplace<Capacitor>(n1, n2, farads, n_nodes());
}

VoltageSource& Netlist::add_vsource(NodeId n_plus, NodeId n_minus,
                                    double dc_volts) {
  return emplace<VoltageSource>(n_plus, n_minus, dc_volts);
}

VoltageSource& Netlist::add_vsource_pwl(NodeId n_plus, NodeId n_minus,
                                        waveform::Waveform pwl) {
  return emplace<VoltageSource>(n_plus, n_minus, std::move(pwl));
}

CurrentSource& Netlist::add_isource(NodeId n_plus, NodeId n_minus,
                                    double amps) {
  return emplace<CurrentSource>(n_plus, n_minus, amps);
}

Mosfet& Netlist::add_nmos(NodeId d, NodeId g, NodeId s,
                          const MosfetParams& params) {
  return emplace<Mosfet>(MosfetType::kNmos, d, g, s, params, n_nodes());
}

Mosfet& Netlist::add_pmos(NodeId d, NodeId g, NodeId s,
                          const MosfetParams& params) {
  return emplace<Mosfet>(MosfetType::kPmos, d, g, s, params, n_nodes());
}

std::vector<double> Netlist::breakpoints(double t0, double t1) const {
  std::vector<double> out;
  for (const auto& e : elements_) {
    e->collect_breakpoints(t0, t1, out);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end(),
                        [](double a, double b) {
                          return std::fabs(a - b) < 1e-18;
                        }),
            out.end());
  return out;
}

}  // namespace charlie::spice
