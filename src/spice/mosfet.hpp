// Level-1 (Shichman-Hodges) MOSFET with channel-length modulation.
//
// The paper's reference simulations use FreePDK15 FinFETs in Spectre; this
// library substitutes a Level-1 model tuned to the same delay regime (see
// technology.hpp and DESIGN.md). The MIS effects under study are determined
// by circuit topology (parallel nMOS, series pMOS, node capacitances and
// gate-coupling), all of which survive the device-model simplification.
//
// The DC model is purely resistive; gate capacitances are added as explicit
// Capacitor elements by the cell builders, which keeps the Newton stamps
// simple and makes the coupling capacitances visible in the netlist.
#pragma once

#include <string>

#include "spice/element.hpp"

namespace charlie::spice {

struct MosfetParams {
  double vt = 0.2;        // threshold voltage magnitude [V]
  double k = 40e-6;       // transconductance k' * W/L [A/V^2]
  double lambda = 0.05;   // channel-length modulation [1/V]

  void validate() const;
};

enum class MosfetType { kNmos, kPmos };

/// Small-signal linearization of the drain current at a bias point.
struct MosfetOperatingPoint {
  double id = 0.0;   // drain current (positive into the drain for NMOS)
  double gm = 0.0;   // d id / d vgs
  double gds = 0.0;  // d id / d vds
};

/// DC drain current and derivatives for an NMOS at (vgs, vds >= 0).
/// PMOS and reversed-channel operation are handled by the element.
MosfetOperatingPoint nmos_current(const MosfetParams& p, double vgs,
                                  double vds);

class Mosfet final : public Element {
 public:
  Mosfet(MosfetType type, NodeId drain, NodeId gate, NodeId source,
         MosfetParams params, int n_nodes);

  void stamp(Stamper& s, const StampContext& ctx) const override;

  MosfetType type() const { return type_; }
  const MosfetParams& params() const { return params_; }

 private:
  MosfetType type_;
  NodeId d_;
  NodeId g_;
  NodeId s_;
  MosfetParams params_;
  int n_nodes_;
};

}  // namespace charlie::spice
