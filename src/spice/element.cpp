#include "spice/element.hpp"

#include "util/error.hpp"

namespace charlie::spice {

Stamper::Stamper(DenseMatrix& a, std::vector<double>& rhs, int n_nodes)
    : a_(a), rhs_(rhs), n_nodes_(n_nodes) {
  CHARLIE_ASSERT(n_nodes >= 1);
}

int Stamper::node_index(NodeId n) const {
  CHARLIE_ASSERT(n >= 0 && n < n_nodes_);
  return n - 1;  // ground (0) becomes -1 and is skipped
}

void Stamper::conductance(NodeId n1, NodeId n2, double g) {
  const int i = node_index(n1);
  const int j = node_index(n2);
  if (i >= 0) a_.add(i, i, g);
  if (j >= 0) a_.add(j, j, g);
  if (i >= 0 && j >= 0) {
    a_.add(i, j, -g);
    a_.add(j, i, -g);
  }
}

void Stamper::current(NodeId n1, NodeId n2, double i) {
  const int a = node_index(n1);
  const int b = node_index(n2);
  // Current leaving n1, entering n2: KCL rhs gets -i at n1, +i at n2.
  if (a >= 0) rhs_[a] -= i;
  if (b >= 0) rhs_[b] += i;
}

void Stamper::matrix(int row, int col, double value) {
  if (row < 0 || col < 0) return;
  a_.add(static_cast<std::size_t>(row), static_cast<std::size_t>(col), value);
}

void Stamper::rhs(int row, double value) {
  if (row < 0) return;
  rhs_[row] += value;
}

void Element::commit(const StampContext&) {}

void Element::initialize_state(const StampContext&) {}

void Element::collect_breakpoints(double, double, std::vector<double>&) const {}

double Element::node_voltage(const StampContext& ctx, NodeId n, int n_nodes) {
  CHARLIE_ASSERT(n >= 0 && n < n_nodes);
  if (n == kGround) return 0.0;
  return ctx.x[n - 1];
}

}  // namespace charlie::spice
