// Device-parameter presets ("technology") for the analog substrate.
//
// The paper characterizes a NOR2 from the Nangate FreePDK15 15 nm FinFET
// library (VDD = 0.8 V) with gate delays in the 28-56 ps range. The preset
// below tunes Level-1 devices and parasitics into the same regime so the
// substrate exhibits the paper's MIS phenomenology at comparable scales:
//   * parallel nMOS pull-down  -> falling MIS speed-up near Delta = 0;
//   * series pMOS + C_N        -> rising history asymmetry
//     (early A-fall precharges N, early B-fall drains it);
//   * gate-drain coupling caps -> rising MIS slow-down bump near Delta = 0
//     and the small local maxima on the falling curve.
#pragma once

#include "spice/mosfet.hpp"

namespace charlie::spice {

struct Technology {
  double vdd = 0.8;           // [V]
  MosfetParams nmos{};        // pull-down devices
  MosfetParams pmos{};        // pull-up devices
  double c_internal = 60e-18;   // C_N at the p-stack internal node [F]
  double c_output = 600e-18;    // C_O output load [F]
  double c_gd = 35e-18;         // per-device gate-drain coupling [F]
  double c_gs = 25e-18;         // per-device gate-source coupling [F]
  double input_rise_time = 20e-12;  // driver edge duration [s]

  double vth() const { return 0.5 * vdd; }
  void validate() const;

  /// Value-identity key of every device/parasitic parameter (full-precision
  /// field dump). Two technologies with equal fingerprints produce identical
  /// characterization results, so caches (cell::CellLibrary) key on it.
  ///
  /// The string leads with a format-version field (kFingerprintVersion):
  /// adding a Technology parameter must bump the version so cached
  /// characterizations written before the field existed can never silently
  /// match a technology that now differs in it.
  std::string fingerprint() const;

  /// Bump when the set of parameters participating in fingerprint() grows.
  static constexpr int kFingerprintVersion = 2;

  /// Default preset tuned to the paper's 15 nm delay regime.
  static Technology freepdk15_like();

  /// Slower, strongly coupled preset: exaggerates the coupling-capacitance
  /// effects (useful in tests that assert the MIS bump exists).
  static Technology coupling_heavy();
};

}  // namespace charlie::spice
