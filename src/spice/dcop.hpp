// DC operating-point analysis with gmin stepping.
#pragma once

#include <vector>

#include "spice/netlist.hpp"
#include "spice/newton.hpp"

namespace charlie::spice {

struct DcOpOptions {
  double t = 0.0;            // time at which sources are evaluated
  double gmin_start = 1e-3;  // initial relaxation conductance
  double gmin_final = 1e-12;
  NewtonOptions newton;
};

/// Solve for the DC operating point. Returns the full unknown vector
/// [v(1..N-1), branch currents]. Throws ConvergenceError when even the
/// gmin-stepped sequence fails.
std::vector<double> dc_operating_point(const Netlist& netlist,
                                       const DcOpOptions& options = {});

}  // namespace charlie::spice
