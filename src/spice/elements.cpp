#include "spice/elements.hpp"

#include "util/error.hpp"

namespace charlie::spice {

// --- Resistor --------------------------------------------------------------

Resistor::Resistor(NodeId n1, NodeId n2, double resistance)
    : n1_(n1), n2_(n2), g_(1.0 / resistance) {
  CHARLIE_ASSERT_MSG(resistance > 0.0, "resistor must be positive");
}

void Resistor::stamp(Stamper& s, const StampContext&) const {
  s.conductance(n1_, n2_, g_);
}

// --- Capacitor ---------------------------------------------------------------

Capacitor::Capacitor(NodeId n1, NodeId n2, double capacitance, int n_nodes)
    : n1_(n1), n2_(n2), c_(capacitance), n_nodes_(n_nodes) {
  CHARLIE_ASSERT_MSG(capacitance > 0.0, "capacitance must be positive");
}

double Capacitor::branch_voltage(const StampContext& ctx) const {
  return node_voltage(ctx, n1_, n_nodes_) - node_voltage(ctx, n2_, n_nodes_);
}

void Capacitor::stamp(Stamper& s, const StampContext& ctx) const {
  if (ctx.mode == AnalysisMode::kDcOperatingPoint) {
    // Open circuit at DC; a tiny shunt keeps floating nodes well-posed.
    s.conductance(n1_, n2_, ctx.gmin);
    return;
  }
  CHARLIE_ASSERT(ctx.h > 0.0);
  if (ctx.backward_euler) {
    const double geq = c_ / ctx.h;
    const double ieq = geq * v_prev_;
    s.conductance(n1_, n2_, geq);
    // i = geq*v - ieq; the -ieq part is a current source from n2 to n1.
    s.current(n2_, n1_, ieq);
  } else {
    const double geq = 2.0 * c_ / ctx.h;
    const double ieq = geq * v_prev_ + i_prev_;
    s.conductance(n1_, n2_, geq);
    s.current(n2_, n1_, ieq);
  }
}

void Capacitor::commit(const StampContext& ctx) {
  if (ctx.mode != AnalysisMode::kTransient) return;
  const double v_new = branch_voltage(ctx);
  if (ctx.backward_euler) {
    i_prev_ = c_ / ctx.h * (v_new - v_prev_);
  } else {
    const double geq = 2.0 * c_ / ctx.h;
    i_prev_ = geq * (v_new - v_prev_) - i_prev_;
  }
  v_prev_ = v_new;
}

void Capacitor::initialize_state(const StampContext& ctx) {
  v_prev_ = branch_voltage(ctx);
  i_prev_ = 0.0;
}

// --- VoltageSource -----------------------------------------------------------

VoltageSource::VoltageSource(NodeId n_plus, NodeId n_minus, double dc_volts)
    : n_plus_(n_plus), n_minus_(n_minus), dc_(dc_volts) {}

VoltageSource::VoltageSource(NodeId n_plus, NodeId n_minus,
                             waveform::Waveform pwl)
    : n_plus_(n_plus), n_minus_(n_minus), is_pwl_(true), pwl_(std::move(pwl)) {
  CHARLIE_ASSERT_MSG(!pwl_.empty(), "PWL source needs samples");
}

double VoltageSource::value_at(double t) const {
  return is_pwl_ ? pwl_.value_at(t) : dc_;
}

void VoltageSource::stamp(Stamper& s, const StampContext& ctx) const {
  const int k = s.branch_index(first_branch());
  const int p = s.node_index(n_plus_);
  const int m = s.node_index(n_minus_);
  // KCL: branch current enters n+ and leaves n-.
  s.matrix(p, k, 1.0);
  s.matrix(m, k, -1.0);
  // Branch equation: v(n+) - v(n-) = V(t).
  s.matrix(k, p, 1.0);
  s.matrix(k, m, -1.0);
  s.rhs(k, value_at(ctx.t));
}

void VoltageSource::collect_breakpoints(double t0, double t1,
                                        std::vector<double>& out) const {
  if (!is_pwl_) return;
  for (const auto& sample : pwl_.samples()) {
    if (sample.t > t0 && sample.t <= t1) out.push_back(sample.t);
  }
}

// --- CurrentSource -----------------------------------------------------------

CurrentSource::CurrentSource(NodeId n_plus, NodeId n_minus, double dc_amps)
    : n_plus_(n_plus), n_minus_(n_minus), dc_(dc_amps) {}

void CurrentSource::stamp(Stamper& s, const StampContext&) const {
  s.current(n_plus_, n_minus_, dc_);
}

}  // namespace charlie::spice
