// Uniform N-input gate models for the accuracy comparison, generalizing
// sim/nor_models.hpp beyond the 2-input NOR.
//
// Every delay model is wrapped as a GateChannel so the same trace harness
// drives them all:
//   * SIS-channel models (inertial, pure delay) compute the boolean
//     NOR/NAND in zero time and push the value changes through the
//     single-input channel placed at the gate output -- the Involution Tool
//     arrangement, whose inability to see which input switched is exactly
//     what the hybrid model fixes;
//   * the hybrid model is natively N-input (HybridGateChannel).
#pragma once

#include <memory>

#include "core/gate_modes.hpp"
#include "core/gate_params.hpp"
#include "sim/channel.hpp"

namespace charlie::sim {

/// Zero-time boolean NOR/NAND of N inputs followed by an owned SIS output
/// channel.
class SisLogicGate : public GateChannel {
 public:
  SisLogicGate(core::GateTopology topology, int n_inputs,
               std::unique_ptr<SisChannel> channel);

  int n_inputs() const override { return n_inputs_; }
  void initialize(double t0, const std::vector<bool>& values) override;
  void on_input(double t, int port, bool value) override;
  void on_fire(const PendingEvent& fired) override;
  std::optional<PendingEvent> pending() const override;
  bool initial_output() const override;

 private:
  bool eval() const;

  core::GateTopology topology_;
  int n_inputs_;
  std::unique_ptr<SisChannel> channel_;
  core::GateState state_ = 0;
  bool gate_value_ = true;
};

/// Gate-delay figures used to parametrize the SIS baselines: single-input
/// channels cannot distinguish which input switched, so they are given the
/// average of the per-input SIS delays per transition direction.
struct SisGateDelays {
  double rise = 0.0;
  double fall = 0.0;
};

std::unique_ptr<GateChannel> make_inertial_gate(core::GateTopology topology,
                                                int n_inputs,
                                                const SisGateDelays& delays);
std::unique_ptr<GateChannel> make_pure_gate(core::GateTopology topology,
                                            int n_inputs,
                                            const SisGateDelays& delays);

}  // namespace charlie::sim
