// The paper's two-input, MIS-aware NOR delay channel, as the NOR2 instance
// of the generalized sim::HybridGateChannel.
//
// All crossing machinery (two-exponential scalar expansion, Newton solve
// with Brent fallback, committed/live event split) lives in the base class;
// this subclass only pins the arity to 2, keeps the NorParams-based
// constructors, and preserves the Mode-typed accessors existing callers and
// tests use.
//
// Legacy alias: new code should obtain channels from a characterized
// cell::CellLibrary ("NOR2" spec -> make_mis_channel()), which shares one
// mode table per cell; constructing from the same parameters either way is
// bit-identical (cell_library's NOR2 reference is
// GateParams::nor2_reference() == from_nor(NorParams::paper_table1())).
#pragma once

#include <memory>

#include "core/mode_tables.hpp"
#include "core/modes.hpp"
#include "core/nor_params.hpp"
#include "sim/hybrid_gate_channel.hpp"

namespace charlie::sim {

class HybridNorChannel final : public HybridGateChannel {
 public:
  /// Builds a private mode table. For many instances of the same cell,
  /// precompute one table and use the sharing constructor instead.
  explicit HybridNorChannel(const core::NorParams& params)
      : HybridNorChannel(core::NorModeTables::make(params)) {}

  /// Shares an immutable mode table across channel instances.
  explicit HybridNorChannel(
      std::shared_ptr<const core::NorModeTables> tables)
      : HybridGateChannel(
            std::shared_ptr<const core::GateModeTables>(tables)),
        nor_tables_(std::move(tables)) {}

  core::Mode mode() const {
    const core::GateState s = input_state();
    return core::mode_from_inputs(core::gate_state_input(s, 0),
                                  core::gate_state_input(s, 1));
  }
  const std::shared_ptr<const core::NorModeTables>& tables() const {
    return nor_tables_;
  }

 private:
  std::shared_ptr<const core::NorModeTables> nor_tables_;
};

}  // namespace charlie::sim
