// Pure (constant) delay channel: every input transition reappears at the
// output exactly `delay` later. No cancellation -- short pulses propagate
// unchanged, which is exactly the behaviour that makes pure delays
// unfaithful for glitch propagation (paper Section I).
#pragma once

#include <deque>

#include "sim/channel.hpp"

namespace charlie::sim {

class PureDelayChannel final : public SisChannel {
 public:
  explicit PureDelayChannel(double delay);

  void initialize(double t0, bool value) override;
  void on_input(double t, bool value) override;
  void on_fire(const PendingEvent& fired) override;
  std::optional<PendingEvent> pending() const override;
  bool initial_output() const override { return initial_output_; }

 private:
  double delay_;
  bool initial_output_ = false;
  std::deque<PendingEvent> queue_;  // FIFO of not-yet-fired transitions
};

}  // namespace charlie::sim
