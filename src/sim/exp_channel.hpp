// Exponential involution channel (the IDM's Exp-Channel).
//
// The channel tracks a first-order RC state v(t) relaxing toward 1 (input
// high) or 0 (input low) with time constants tau_up / tau_down; output
// transitions occur when v crosses 1/2, and a pure delay delta_min defers
// the effect of each input transition. Because the switching waveforms are
// strictly monotone, the induced delay function
//
//   delta_up(T) = delta_min + tau_up * ln(2 - e^{-(T + delta_min)/tau_down})
//
// is a negative involution together with its falling counterpart:
// -delta_down(-delta_up(T)) = T (Fuegger et al., the paper's [3]). The
// same construction also yields the cancellation semantics for free: if an
// input reversal happens before the threshold is reached, the crossing
// simply never occurs and the pending event is withdrawn.
#pragma once

#include <deque>

#include "sim/channel.hpp"

namespace charlie::sim {

struct ExpChannelParams {
  double delta_inf_up = 0.0;    // SIS delay for rising outputs [s]
  double delta_inf_down = 0.0;  // SIS delay for falling outputs [s]
  double delta_min = 0.0;       // pure delay [s]; must be < both SIS delays

  double tau_up() const;
  double tau_down() const;
  void validate() const;
};

class ExpChannel final : public SisChannel {
 public:
  explicit ExpChannel(const ExpChannelParams& params);

  void initialize(double t0, bool value) override;
  void on_input(double t, bool value) override;
  void on_fire(const PendingEvent& fired) override;
  std::optional<PendingEvent> pending() const override;
  bool initial_output() const override { return output_; }

  /// Closed-form delay function delta(T) of this channel for a transition
  /// in direction `rising`, where T is the previous-output-to-input delay.
  /// Returns nullopt when the transition is cancelled (T below the
  /// cancellation bound where the argument of the log is <= 1/2... i.e.
  /// the waveform cannot reach the threshold).
  std::optional<double> delay_function(double big_t, bool rising) const;

 private:
  double state_at(double t) const;  // v(t) on the current segment

  ExpChannelParams params_;
  // Current analog segment: from (t_ref_, v_ref_) toward target_.
  double t_ref_ = 0.0;
  double v_ref_ = 0.0;
  double target_ = 0.0;
  double tau_ = 1.0;
  bool output_ = false;
  // Crossings predating the effective time of the latest input are decided
  // and non-cancellable; the live crossing of the current segment is not.
  std::deque<PendingEvent> committed_;
  std::optional<PendingEvent> live_;
};

}  // namespace charlie::sim
