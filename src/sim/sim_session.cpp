#include "sim/sim_session.hpp"

#include <algorithm>

#include "obs/trace_recorder.hpp"
#include "util/error.hpp"

namespace charlie::sim {

SimSession::SimSession(Circuit& circuit,
                       const std::vector<waveform::DigitalTrace>& stimuli,
                       double t_begin)
    : SimSession(circuit, stimuli, t_begin, Circuit::SimResult{}) {}

SimSession::SimSession(Circuit& circuit,
                       const std::vector<waveform::DigitalTrace>& stimuli,
                       double t_begin, Circuit::SimResult&& arena)
    : SimSession(circuit, stimuli, t_begin, RunBudget{}, std::move(arena)) {}

SimSession::SimSession(Circuit& circuit,
                       const std::vector<waveform::DigitalTrace>& stimuli,
                       double t_begin, const RunBudget& budget,
                       Circuit::SimResult&& arena)
    : circuit_(&circuit), t_begin_(t_begin), horizon_(t_begin),
      guard_(budget), guard_active_(budget.enabled()),
      t_processed_(t_begin), result_(std::move(arena)) {
  CHARLIE_ASSERT_MSG(stimuli.size() == circuit_->primary_inputs_.size(),
                     "circuit: one stimulus trace per primary input");
  initialize(stimuli);
}

void SimSession::mark_failed(const std::string& what) {
  if (status_ != RunStatus::kOk) return;  // first terminal status wins
  status_ = RunStatus::kFailed;
  error_ = what;
}

void SimSession::initialize(
    const std::vector<waveform::DigitalTrace>& stimuli) {
  Circuit& c = *circuit_;
  const std::size_t n_nets = c.n_nets();

  // --- steady-state initialization (topological settle) -------------------
  // Window convention (see circuit.hpp): value_at(t_begin) already includes
  // a transition at exactly t_begin; only strictly later transitions become
  // events.
  net_value_.assign(n_nets, 0);
  for (std::size_t i = 0; i < stimuli.size(); ++i) {
    net_value_[static_cast<std::size_t>(c.primary_inputs_[i])] =
        stimuli[i].value_at(t_begin_) ? 1 : 0;
  }
  // Gates were appended after their input nets exist, so a forward sweep
  // settles an acyclic circuit (two passes as a fixpoint safety net).
  for (int pass = 0; pass < 2; ++pass) {
    for (auto& gate : c.gates_) {
      for (std::size_t p = 0; p < gate.inputs.size(); ++p) {
        gate.in_values[p] =
            net_value_[static_cast<std::size_t>(gate.inputs[p])] != 0;
      }
      gate.zero_time_value = eval_gate(gate.kind, gate.in_values[0],
                                       gate.in_values[1], gate.in_values[2]);
      net_value_[static_cast<std::size_t>(gate.output)] =
          gate.zero_time_value ? 1 : 0;
    }
  }
  for (auto& gate : c.gates_) {
    if (gate.sis) {
      gate.sis->initialize(t_begin_, gate.zero_time_value);
    } else {
      gate.mis->initialize(
          t_begin_,
          std::vector<bool>(gate.in_values.begin(),
                            gate.in_values.begin() + gate.inputs.size()));
    }
  }

  // --- stimulus stream -----------------------------------------------------
  // All primary-input events are known up front: one sorted vector walked
  // by an index beats pushing them through the gate heap. Equal-time order
  // is input-declaration order (stable sort over per-input appends), and a
  // stimulus always precedes gate firings at the same instant. Transitions
  // beyond the final horizon simply never get processed.
  std::size_t n_stim = 0;
  for (const auto& trace : stimuli) n_stim += trace.n_transitions();
  stim_events_.clear();
  stim_events_.reserve(n_stim);
  for (std::size_t i = 0; i < stimuli.size(); ++i) {
    const auto& trace = stimuli[i];
    for (std::size_t k = 0; k < trace.n_transitions(); ++k) {
      const double t = trace.transitions()[k];
      if (t <= t_begin_) continue;
      stim_events_.push_back({t, c.primary_inputs_[i], trace.is_rising(k)});
    }
  }
  std::stable_sort(stim_events_.begin(), stim_events_.end(),
                   [](const StimulusEvent& x, const StimulusEvent& y) {
                     return x.t < y.t;
                   });

  // --- result traces, pre-sized from stimulus statistics -------------------
  // The arena path resets existing traces in place, keeping their
  // capacity; extra traces from a larger previous circuit are dropped.
  const std::size_t per_net_estimate =
      stimuli.empty() ? 0 : stim_events_.size() / stimuli.size() + 1;
  result_.n_events = 0;
  if (result_.traces.size() > n_nets) result_.traces.resize(n_nets);
  for (std::size_t i = 0; i < result_.traces.size(); ++i) {
    result_.traces[i].reset(net_value_[i] != 0);
    result_.traces[i].reserve(per_net_estimate);
  }
  result_.traces.reserve(n_nets);
  for (std::size_t i = result_.traces.size(); i < n_nets; ++i) {
    result_.traces.emplace_back(net_value_[i] != 0, std::vector<double>{});
    result_.traces.back().reserve(per_net_estimate);
  }

  heap_.reset(c.gates_.size());
  seq_ = 0;
  deferred_.clear();
  is_deferred_.assign(c.gates_.size(), 0);
}

void SimSession::reschedule(std::size_t gate_index) {
  Circuit::Gate& gate = circuit_->gates_[gate_index];
  const auto pending = gate.sis ? gate.sis->pending() : gate.mis->pending();
  if (pending.has_value() && pending->t <= horizon_) {
    heap_.schedule(gate_index, pending->t, seq_++, pending->value);
    return;
  }
  heap_.cancel(gate_index);
  // A pending event beyond the horizon must be re-armed when the horizon
  // moves; remember the gate (once -- insertion order preserves the
  // original schedule order across windows).
  if (pending.has_value() && is_deferred_[gate_index] == 0) {
    is_deferred_[gate_index] = 1;
    deferred_.push_back(gate_index);
  }
}

void SimSession::propagate_net_change(Circuit::NetId net, double t,
                                      bool value) {
  Circuit& c = *circuit_;
  const auto net_index = static_cast<std::size_t>(net);
  if ((net_value_[net_index] != 0) == value) return;  // defensive
  net_value_[net_index] = value ? 1 : 0;
  result_.traces[net_index].append_transition(t);
  for (const auto& [gate_index, port] : c.fanout_[net_index]) {
    Circuit::Gate& gate = c.gates_[gate_index];
    gate.in_values[static_cast<std::size_t>(port)] = value;
    if (gate.sis) {
      const bool nv = eval_gate(gate.kind, gate.in_values[0],
                                gate.in_values[1], gate.in_values[2]);
      if (nv != gate.zero_time_value) {
        gate.zero_time_value = nv;
        gate.sis->on_input(t, nv);
      }
    } else {
      gate.mis->on_input(t, port, value);
    }
    reschedule(gate_index);
  }
}

void SimSession::inject(std::size_t input_index, double t, bool input_value) {
  CHARLIE_ASSERT(input_index < circuit_->primary_inputs_.size());
  CHARLIE_ASSERT_MSG(t > horizon_,
                     "sim session: injected event at or before the horizon");
  injected_.push_back({t, circuit_->primary_inputs_[input_index],
                       input_value});
}

void SimSession::advance(double t_horizon) {
  // A terminated session stays terminated: callers driving windowed
  // schedules (sharded wavefront) may keep issuing advances, which must
  // not resurrect a tripped or failed run.
  if (status_ != RunStatus::kOk) return;
  CHARLIE_ASSERT(t_horizon >= horizon_);
  horizon_ = t_horizon;

  // One span per advance slice; the event count is filled in at the end so
  // windowed schedules (sharded wavefront) show per-window event volume.
  const long events_before = n_stimulus_events_ + n_gate_events_;
  obs::ScopedSpan obs_span("sim.advance", "events", 0);

  // Merge injected boundary transitions into the unprocessed stimulus tail.
  // Both ranges are time-sorted; inplace_merge is stable, so pre-known
  // stimuli precede injected events at equal times.
  if (!injected_.empty()) {
    std::stable_sort(injected_.begin(), injected_.end(),
                     [](const StimulusEvent& x, const StimulusEvent& y) {
                       return x.t < y.t;
                     });
    const std::size_t mid = stim_events_.size();
    stim_events_.insert(stim_events_.end(), injected_.begin(),
                        injected_.end());
    std::inplace_merge(stim_events_.begin() +
                           static_cast<std::ptrdiff_t>(stim_index_),
                       stim_events_.begin() + static_cast<std::ptrdiff_t>(mid),
                       stim_events_.end(),
                       [](const StimulusEvent& x, const StimulusEvent& y) {
                         return x.t < y.t;
                       });
    injected_.clear();
  }

  // Re-arm gates whose pending events were beyond the previous horizon.
  // reschedule() may defer them again (still beyond this horizon); swap
  // first so the re-appends land in a fresh list.
  if (!deferred_.empty()) {
    std::vector<std::size_t> rearm;
    rearm.swap(deferred_);
    for (const std::size_t gate_index : rearm) {
      is_deferred_[gate_index] = 0;
    }
    for (const std::size_t gate_index : rearm) {
      reschedule(gate_index);
    }
  }

  // --- event loop ----------------------------------------------------------
  // Every heap entry satisfies t <= horizon_ by construction (reschedule
  // filters), so only the stimulus stream needs the horizon check.
  while ((stim_index_ < stim_events_.size() &&
          stim_events_[stim_index_].t <= horizon_) ||
         !heap_.empty()) {
    // Budget poll before taking the next event: a trip leaves exactly
    // n_events processed and the remaining events pending, so the partial
    // traces are a deterministic prefix of the full run.
    if (guard_active_) {
      const RunStatus st = guard_.check(n_stimulus_events_ + n_gate_events_);
      if (st != RunStatus::kOk) {
        status_ = st;
        obs_span.set_value0(n_stimulus_events_ + n_gate_events_ -
                            events_before);
        return;
      }
    }
    const bool take_stimulus =
        stim_index_ < stim_events_.size() &&
        stim_events_[stim_index_].t <= horizon_ &&
        (heap_.empty() || stim_events_[stim_index_].t <= heap_.top().t);
    if (take_stimulus) {
      const StimulusEvent& ev = stim_events_[stim_index_++];
      ++n_stimulus_events_;
      t_processed_ = ev.t;
      propagate_net_change(ev.net, ev.t, ev.value);
      if (static_cast<long>(heap_.size()) > max_heap_depth_) {
        max_heap_depth_ = static_cast<long>(heap_.size());
      }
      continue;
    }
    const std::size_t gate_index = heap_.top_slot();
    const EventHeap::Entry fired = heap_.top();
    heap_.pop();
    ++n_gate_events_;
    t_processed_ = fired.t;
    Circuit::Gate& gate = circuit_->gates_[gate_index];
    const PendingEvent event{fired.t, fired.value};
    if (gate.sis) {
      gate.sis->on_fire(event);
    } else {
      gate.mis->on_fire(event);
    }
    reschedule(gate_index);
    propagate_net_change(gate.output, fired.t, fired.value);
    // Heap occupancy peaks right after an event's reschedules, before the
    // next pop -- one compare per event keeps the counter always-on cheap.
    if (static_cast<long>(heap_.size()) > max_heap_depth_) {
      max_heap_depth_ = static_cast<long>(heap_.size());
    }
  }
  obs_span.set_value0(n_stimulus_events_ + n_gate_events_ - events_before);
}

namespace {

void stamp(Circuit::SimResult& result, const RunGuard& guard,
           RunStatus status, long n_events, double t_reached,
           const std::string& error) {
  result.n_events = n_events;
  result.status = status;
  result.diagnostics = guard.finish(status, n_events, t_reached);
  result.diagnostics.error = error;
}

}  // namespace

const Circuit::SimResult& SimSession::result() {
  stamp(result_, guard_, status_, n_stimulus_events_ + n_gate_events_,
        status_ == RunStatus::kOk ? horizon_ : t_processed_, error_);
  result_.max_heap_depth = max_heap_depth_;
  return result_;
}

Circuit::SimResult SimSession::take_result() {
  result();
  return std::move(result_);
}

}  // namespace charlie::sim
