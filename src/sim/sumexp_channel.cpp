#include "sim/sumexp_channel.hpp"

#include <cmath>

#include "fit/brent_root.hpp"
#include "util/error.hpp"

namespace charlie::sim {

void SumExpChannelParams::validate() const {
  CHARLIE_ASSERT(tau_up_a > 0.0 && tau_up_b > 0.0);
  CHARLIE_ASSERT(tau_down_a > 0.0 && tau_down_b > 0.0);
  CHARLIE_ASSERT(weight_up >= 0.0 && weight_up <= 1.0);
  CHARLIE_ASSERT(weight_down >= 0.0 && weight_down <= 1.0);
  CHARLIE_ASSERT(delta_min >= 0.0);
}

namespace {

double shape_of(double dt, double ta, double tb, double w) {
  return w * std::exp(-dt / ta) + (1.0 - w) * std::exp(-dt / tb);
}

// First dt > 0 with shape(dt) = 1/2 (shape is monotone decreasing from 1).
double half_crossing(double ta, double tb, double w) {
  const double hi = 64.0 * std::max(ta, tb);
  return fit::brent_root(
      [&](double dt) { return shape_of(dt, ta, tb, w) - 0.5; }, 0.0, hi);
}

}  // namespace

double SumExpChannelParams::sis_delay(bool rising) const {
  const double ta = rising ? tau_up_a : tau_down_a;
  const double tb = rising ? tau_up_b : tau_down_b;
  const double w = rising ? weight_up : weight_down;
  return delta_min + half_crossing(ta, tb, w);
}

void SumExpChannelParams::calibrate_direction(bool rising, double target_sis) {
  CHARLIE_ASSERT_MSG(target_sis > delta_min,
                     "sumexp: SIS target must exceed delta_min");
  const double current = sis_delay(rising) - delta_min;
  const double scale = (target_sis - delta_min) / current;
  if (rising) {
    tau_up_a *= scale;
    tau_up_b *= scale;
  } else {
    tau_down_a *= scale;
    tau_down_b *= scale;
  }
}

SumExpChannel::SumExpChannel(const SumExpChannelParams& params)
    : params_(params) {
  params_.validate();
}

void SumExpChannel::initialize(double t0, bool value) {
  t_ref_ = t0;
  v_ref_ = value ? 1.0 : 0.0;
  target_ = v_ref_;
  segment_rising_ = value;
  output_ = value;
  committed_.clear();
  live_.reset();
}

std::optional<PendingEvent> SumExpChannel::pending() const {
  if (!committed_.empty()) return committed_.front();
  return live_;
}

double SumExpChannel::shape(double dt, bool rising) const {
  const double ta = rising ? params_.tau_up_a : params_.tau_down_a;
  const double tb = rising ? params_.tau_up_b : params_.tau_down_b;
  const double w = rising ? params_.weight_up : params_.weight_down;
  return shape_of(dt, ta, tb, w);
}

double SumExpChannel::state_at(double t) const {
  if (t <= t_ref_) return v_ref_;
  return target_ +
         (v_ref_ - target_) * shape(t - t_ref_, segment_rising_);
}

void SumExpChannel::on_input(double t, bool value) {
  const double te = t + params_.delta_min;
  // A crossing before the effective input time has already happened and
  // cannot be cancelled by this input.
  if (live_.has_value() && live_->t <= te) {
    committed_.push_back(*live_);
  }
  live_.reset();
  const double v_now = state_at(te);

  t_ref_ = te;
  v_ref_ = v_now;
  target_ = value ? 1.0 : 0.0;
  segment_rising_ = value;

  const bool crossing_possible =
      (value && v_now < 0.5) || (!value && v_now > 0.5);
  if (!crossing_possible) return;

  // v(te + dt) = target + (v_now - target) * shape(dt); solve for 1/2.
  // shape must decay to (1/2 - target)/(v_now - target), which lies in
  // (0, 1) exactly when a crossing exists.
  const double ratio = (0.5 - target_) / (v_now - target_);
  CHARLIE_ASSERT(ratio > 0.0 && ratio < 1.0);
  const double ta = segment_rising_ ? params_.tau_up_a : params_.tau_down_a;
  const double tb = segment_rising_ ? params_.tau_up_b : params_.tau_down_b;
  const double hi = 64.0 * std::max(ta, tb);
  const double dt = fit::brent_root(
      [&](double x) { return shape(x, segment_rising_) - ratio; }, 0.0, hi);
  live_ = PendingEvent{te + dt, value};
}

void SumExpChannel::on_fire(const PendingEvent& fired) {
  output_ = fired.value;
  if (!committed_.empty()) {
    committed_.pop_front();
    return;
  }
  CHARLIE_ASSERT(live_.has_value());
  live_.reset();
}

}  // namespace charlie::sim
