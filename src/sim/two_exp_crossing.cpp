#include "sim/two_exp_crossing.hpp"

#include <algorithm>
#include <cmath>

#include "fit/brent_root.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace charlie::sim {

double TwoExpVo::value(double tau) const {
  return d + a1 * std::exp(l1 * tau) + a2 * std::exp(l2 * tau);
}

TwoExpVo two_exp_expand(const core::ModeTable& mt, const ode::Vec2& x_ref) {
  TwoExpVo vo;
  vo.valid = mt.scalar_valid;
  if (!mt.scalar_valid) return vo;  // defective/complex: use the generic scan
  const ode::Vec2 dev = x_ref - mt.xp;
  double a1 = mt.p1c * dev.x + mt.p1d * dev.y;
  double a2 = dev.y - a1;
  double d = mt.d;
  // Zero-eigenvalue components are constant and fold into d.
  if (mt.fold1) {
    d += a1;
    a1 = 0.0;
  }
  if (mt.fold2) {
    d += a2;
    a2 = 0.0;
  }
  vo.d = d;
  vo.a1 = a1;
  vo.l1 = mt.l1;
  vo.a2 = a2;
  vo.l2 = mt.l2;
  return vo;
}

namespace {

// Root of vo.value(tau) = vth inside the sign-change bracket [lo, hi],
// where flo = vo.value(lo) - vth is already known: safeguarded Newton on
// the two-exponential form (analytic derivative, bisection fallback step)
// started from `seed`, Brent only if Newton fails to converge.
double solve_crossing(const TwoExpVo& vo, double vth, double lo, double hi,
                      double flo, double seed) {
  CHARLIE_FAULT_POINT("crossing.solve");
  double a = lo;
  double b = hi;
  double fa = flo;
  if (fa == 0.0) return a;
  // "crossing.newton" fault site: pretend Newton failed so the Brent
  // fallback (and its diagnostics counter) gets exercised.
  if (!CHARLIE_FAULT_BRANCH("crossing.newton")) {
    double x = (seed > a && seed < b) ? seed : 0.5 * (a + b);
    for (int iter = 0; iter < 32; ++iter) {
      const double e1 = std::exp(vo.l1 * x);
      const double e2 = std::exp(vo.l2 * x);
      const double fx = vo.d + vo.a1 * e1 + vo.a2 * e2 - vth;
      if (fx == 0.0) return x;
      if ((fx < 0.0) == (fa < 0.0)) {
        a = x;
        fa = fx;
      } else {
        b = x;
      }
      const double dfx = vo.a1 * vo.l1 * e1 + vo.a2 * vo.l2 * e2;
      double next = dfx != 0.0 ? x - fx / dfx : 0.5 * (a + b);
      // Newton stepping outside the (shrinking) bracket means the local
      // slope extrapolates past the root; bisect instead.
      if (!(next > a && next < b)) next = 0.5 * (a + b);
      // Stop well below the library's 1e-18 s root tolerance target; the
      // final Newton step bounds the remaining error (quadratic
      // convergence).
      if (std::fabs(next - x) <= 1e-17 + 1e-14 * std::fabs(next)) return next;
      x = next;
    }
  }
  // Non-convergence (e.g. near-tangent crossing): Brent on the narrowed
  // bracket is unconditionally robust. Surfaced per run through
  // RunDiagnostics.counters.
  ++util::RunCounters::local().newton_brent_fallbacks;
  auto f = [&](double tau) { return vo.value(tau) - vth; };
  return fit::brent_root(f, a, b);
}

}  // namespace

std::optional<TwoExpCrossing> two_exp_next_crossing(const TwoExpVo& vo,
                                                    double vth, double tau0,
                                                    double horizon) {
  auto f = [&](double tau) { return vo.value(tau) - vth; };
  const double tau_end = tau0 + horizon;
  // Geometric right-expansion on the scalar form (same scheme as
  // fit::expand_bracket_right, but monomorphized: no std::function on the
  // per-event path). Returns the bracket with f(a) so callers don't pay the
  // two exp() of re-evaluating the left edge.
  struct Bracket {
    double a;
    double b;
    double fa;
  };
  auto expand_right = [&](double a, double b) -> std::optional<Bracket> {
    double fa = f(a);
    double fb = f(b);
    while (fa * fb > 0.0) {
      if (b >= tau_end) return std::nullopt;
      const double width = (b - a) * 2.0;
      a = b;
      fa = fb;
      b = std::min(a + width, tau_end);
      fb = f(b);
    }
    return Bracket{a, b, fa};
  };
  // The dominant call site searches from the segment start (tau0 = 0),
  // where exp() is exactly 1 -- no calls needed. Evaluated on the scalar
  // expansion (not the state vector) so the sign agrees bit-for-bit with
  // the f() that solve_crossing and expand_right iterate; a disagreement
  // within rounding error of vth could otherwise hand solve_crossing a
  // non-bracketing interval.
  const double f0 = tau0 == 0.0 ? vo.d + vo.a1 + vo.a2 - vth : f(tau0);
  const double fd = vo.d - vth;  // asymptotic value (l1, l2 <= 0)

  auto found = [&](double tau_lo, double tau_hi, double flo, double seed,
                   bool rising) -> std::optional<TwoExpCrossing> {
    const double tau_c = solve_crossing(vo, vth, tau_lo, tau_hi, flo, seed);
    // Guardrail at the solver boundary: a non-finite crossing time would
    // poison the event heap (NaN comparisons silently reorder events).
    if (!std::isfinite(tau_c)) {
      ++util::RunCounters::local().nonfinite_guard_trips;
      throw ConvergenceError("two-exp crossing: non-finite crossing time");
    }
    return TwoExpCrossing{tau_c, rising};
  };

  // Interior extremum of f: f'(tau*) = 0 with
  // a1 l1 e^{l1 tau} = -a2 l2 e^{l2 tau}.
  double tau_star = -1.0;
  const double p = vo.a1 * vo.l1;
  const double q = vo.a2 * vo.l2;
  if (p != 0.0 && q != 0.0 && vo.l1 != vo.l2 && -q / p > 0.0) {
    tau_star = std::log(-q / p) / (vo.l1 - vo.l2);
  }

  if (tau_star > tau0 && tau_star < tau_end) {
    const double f_star = f(tau_star);
    if (f0 != 0.0 && f0 * f_star < 0.0) {
      return found(tau0, tau_star, f0, 0.5 * (tau0 + tau_star), f_star > 0.0);
    }
    if (f_star == 0.0) {
      // Tangent touch: not a crossing; continue past it.
    }
    // No crossing before the extremum; check the tail beyond it.
    if (f_star * fd < 0.0) {
      // The tail decays monotonically from f_star toward fd: bracket by
      // expansion (the slope vanishes at the extremum, so the analytic
      // seed below does not apply).
      const auto bracket = expand_right(tau_star, tau_star + 1e-12);
      if (bracket.has_value()) {
        return found(bracket->a, bracket->b, bracket->fa,
                     0.5 * (bracket->a + bracket->b), fd > 0.0);
      }
      return std::nullopt;
    }
    return std::nullopt;
  }

  // No interior extremum after tau0: f decays monotonically toward fd.
  if (f0 != 0.0 && f0 * fd < 0.0) {
    // Seed Newton by matching value and slope at tau0 with one decaying
    // exponential toward fd:  f ~ fd + (f0-fd) e^{-r (tau-tau0)}.
    const double df0 =
        tau0 == 0.0 ? vo.a1 * vo.l1 + vo.a2 * vo.l2
                    : vo.a1 * vo.l1 * std::exp(vo.l1 * tau0) +
                          vo.a2 * vo.l2 * std::exp(vo.l2 * tau0);
    const double r = -df0 / (f0 - fd);
    if (r > 0.0) {
      // -fd/(f0-fd) = |fd|/(|f0|+|fd|) is in (0,1), so the seed is finite
      // and to the right of tau0.
      const double seed = tau0 - std::log(-fd / (f0 - fd)) / r;
      const double fend = f(tau_end);
      if (fend == 0.0) {
        // Crossing exactly at the horizon. The expansion path below treats
        // fa*fb == 0 as a closed bracket; match its semantics.
        return TwoExpCrossing{tau_end, fd > 0.0};
      }
      if ((fend < 0.0) != (f0 < 0.0)) {
        return found(tau0, tau_end, f0, seed, fd > 0.0);
      }
      // Crossing beyond the horizon (asymptote grazes the threshold): no
      // event within the search window.
      return std::nullopt;
    }
    const auto bracket = expand_right(tau0, tau0 + 1e-12);
    if (bracket.has_value()) {
      return found(bracket->a, bracket->b, bracket->fa,
                   0.5 * (bracket->a + bracket->b), fd > 0.0);
    }
  }
  return std::nullopt;
}

std::optional<ScanCrossing> scan_vo_crossing(
    const core::ModeTable& mt, double vth, double t_from, double horizon,
    const std::function<double(double)>& vo_at) {
  // Every scan search is a fallback off the analytic two-exp path
  // (defective/complex spectrum or a degraded mode table); count it so a
  // run that silently lost the fast path shows up in its diagnostics.
  ++util::RunCounters::local().scan_fallbacks;
  auto f = [&](double t) { return vo_at(t) - vth; };

  // Scan at a fraction of the fastest rate of the mode, but never more
  // than ~4k evaluations per search window.
  const auto& eig = mt.ode.eigen();
  const double fastest =
      eig.is_real()
          ? std::max(std::fabs(eig.lambda1), std::fabs(eig.lambda2))
          : std::hypot(eig.re, eig.im);
  double step = fastest > 0.0 ? 0.125 / fastest : horizon / 64.0;
  step = std::max(step, horizon / 4096.0);

  double a = t_from;
  double fa = f(a);
  const double t_end = t_from + horizon;
  while (a < t_end) {
    const double b = std::min(a + step, t_end);
    const double fb = f(b);
    if (fa != 0.0 && fa * fb <= 0.0) {
      const double tc = fb == 0.0 ? b : fit::brent_root(f, a, b);
      return ScanCrossing{tc, fb > 0.0 || (fb == 0.0 && fa < 0.0)};
    }
    a = b;
    fa = fb;
  }
  return std::nullopt;
}

}  // namespace charlie::sim
