#include "sim/surface_nor_channel.hpp"

#include "util/error.hpp"

namespace charlie::sim {

SurfaceNorChannel::SurfaceNorChannel(const core::DelaySurface& surface)
    : surface_(surface) {}

void SurfaceNorChannel::initialize(double t0, const std::vector<bool>& values) {
  CHARLIE_ASSERT(values.size() == 2);
  in_a_ = values[0];
  in_b_ = values[1];
  nor_value_ = !(in_a_ || in_b_);
  output_ = nor_value_;
  t_last_a_ = t0 - 1.0;  // effectively -infinity on circuit time scales
  t_last_b_ = t0 - 1.0;
  live_.reset();
}

void SurfaceNorChannel::on_input(double t, int port, bool value) {
  CHARLIE_ASSERT(port == 0 || port == 1);
  const double t_other = port == 0 ? t_last_b_ : t_last_a_;
  if (port == 0) {
    in_a_ = value;
    t_last_a_ = t;
  } else {
    in_b_ = value;
    t_last_b_ = t;
  }
  const bool nor_new = !(in_a_ || in_b_);

  if (nor_new != nor_value_) {
    nor_value_ = nor_new;
    if (live_.has_value()) {
      // The pending event targeted the previous boolean value; the gate
      // output returning to its committed value annihilates both (IDM
      // cancellation).
      CHARLIE_ASSERT(nor_new == output_);
      live_.reset();
      return;
    }
    if (!nor_new) {
      // Falling output: triggered by this (first) rising input; the other
      // input is still low, so at this point Delta is at its SIS
      // asymptote. If the second input follows, the reschedule branch
      // below updates the delay. Delta = tB - tA: A first => +inf.
      const double delta = port == 0 ? 1.0 : -1.0;  // beyond the table range
      live_ = PendingEvent{t + surface_.falling(delta), false};
    } else {
      // Rising output: this falling input is the later one; the other
      // input's last transition was its fall.
      const double delta = port == 0 ? t_other - t : t - t_other;
      live_ = PendingEvent{t + surface_.rising(delta), true};
    }
    return;
  }

  // Boolean output unchanged. The one MIS-relevant case: a pending falling
  // event exists (first input rose) and the *second* input rises, entering
  // (1,1) -- now Delta is known and the delay is re-evaluated from the
  // earlier input (the paper's delta_fall(Delta) measured from
  // min(tA, tB)).
  if (live_.has_value() && !live_->value && value) {
    const double t_first = t_other;  // the other input rose earlier
    const double delta = port == 1 ? t - t_first : t_first - t;
    live_ = PendingEvent{t_first + surface_.falling(delta), false};
  }
}

void SurfaceNorChannel::on_fire(const PendingEvent& fired) {
  CHARLIE_ASSERT(live_.has_value());
  output_ = fired.value;
  live_.reset();
}

}  // namespace charlie::sim
