// The paper's contribution generalized to N inputs: a MIS-aware delay
// channel for series/parallel CMOS gates (NOR2/NOR3/NAND2/NAND3/...),
// driven by the 2^N-mode hybrid ODE model.
//
// The channel integrates the exact closed-form mode trajectories of
// (V_int, V_O). Every input threshold crossing switches the mode after the
// pure delay delta_min; output events are V_O = VDD/2 crossings of the
// resulting piecewise-exponential waveform. Cancellation (glitch
// suppression) follows automatically: if a mode switch makes a pending
// crossing unreachable, it simply never happens.
//
// Unlike single-input channels, this channel sees *which* input switched
// and *when*, so all the MIS behaviour of Sections III-IV -- speed-up for
// near-simultaneous switching on the parallel network, the internal-node
// history effect of the series stack -- carries over to trace simulation
// for every arity.
//
// All mode-level math (ODEs, spectra, projector rows, steady states) is
// precomputed once per GateParams in a core::GateModeTables that many
// channel instances share; the per-event work is a handful of multiply-adds
// plus a Newton crossing solve.
#pragma once

#include <deque>
#include <memory>

#include "core/gate_mode_tables.hpp"
#include "sim/channel.hpp"
#include "sim/two_exp_crossing.hpp"

namespace charlie::sim {

class HybridGateChannel : public GateChannel {
 public:
  /// Builds a private mode table. For many instances of the same cell,
  /// precompute one table and use the sharing constructor instead.
  explicit HybridGateChannel(const core::GateParams& params);

  /// Shares an immutable mode table across channel instances.
  explicit HybridGateChannel(
      std::shared_ptr<const core::GateModeTables> tables);

  int n_inputs() const override { return n_inputs_; }
  void initialize(double t0, const std::vector<bool>& values) override;
  void on_input(double t, int port, bool value) override;
  void on_fire(const PendingEvent& fired) override;
  std::optional<PendingEvent> pending() const override;
  bool initial_output() const override { return output_; }

  /// Current analog state (V_int, V_O) at time t >= last event time.
  ode::Vec2 state_at(double t) const;

  /// Current input state (bit i = logic level of input i, post pure delay).
  core::GateState input_state() const { return state_; }

  const std::shared_ptr<const core::GateModeTables>& gate_tables() const {
    return tables_;
  }

  /// Swap in different mode tables of the same arity (the per-run
  /// process-variation rebinding path). Only legal between runs: call
  /// initialize() before the next simulation. Rebinding the original
  /// tables restores the channel bit-exactly.
  void rebind_tables(std::shared_ptr<const core::GateModeTables> tables);

 private:
  std::optional<PendingEvent> next_crossing(double t_from) const;
  std::optional<PendingEvent> next_crossing_scan(double t_from) const;
  void refresh_scalar();

  std::shared_ptr<const core::GateModeTables> tables_;
  const core::ModeTable* mt_ = nullptr;  // current mode's table entry
  // Cached table scalars, read on every event:
  double vth_ = 0.0;
  double horizon_ = 0.0;
  double delta_min_ = 0.0;
  int n_inputs_ = 0;
  core::GateState state_ = 0;  // logical input levels (post pure delay)
  // Scalar two-exponential expansion of V_O on the current segment (see
  // sim/two_exp_crossing.hpp); the crossing search runs on it instead of a
  // linear scan (hot path for event-driven simulation).
  TwoExpVo scalar_{};
  double t_ref_ = 0.0;   // time of the state snapshot
  ode::Vec2 x_ref_{};    // (V_int, V_O) at t_ref_
  bool output_ = false;
  // Crossings that precede the effective time of the latest input are
  // physically decided and can no longer be cancelled; the live crossing
  // of the current mode can. See on_input.
  std::deque<PendingEvent> committed_;
  std::optional<PendingEvent> live_;
};

}  // namespace charlie::sim
