#include "sim/event_heap.hpp"

#include "util/error.hpp"

namespace charlie::sim {

void EventHeap::reset(std::size_t n_slots) {
  entries_.assign(n_slots, Entry{});
  pos_.assign(n_slots, -1);
  heap_.clear();
  heap_.reserve(n_slots);
}

void EventHeap::schedule(std::size_t slot, double t, long seq, bool value) {
  CHARLIE_ASSERT(slot < entries_.size());
  entries_[slot] = Entry{t, seq, value};
  if (pos_[slot] < 0) {
    heap_.push_back(slot);
    pos_[slot] = static_cast<int>(heap_.size() - 1);
    sift_up(heap_.size() - 1);
    return;
  }
  const auto i = static_cast<std::size_t>(pos_[slot]);
  sift_up(i);
  sift_down(static_cast<std::size_t>(pos_[slot]));
}

void EventHeap::cancel(std::size_t slot) {
  CHARLIE_ASSERT(slot < entries_.size());
  if (pos_[slot] < 0) return;
  const auto i = static_cast<std::size_t>(pos_[slot]);
  pos_[slot] = -1;
  const std::size_t moved = heap_.back();
  heap_.pop_back();
  if (i == heap_.size()) return;  // removed the last element
  place(i, moved);
  sift_up(i);
  sift_down(static_cast<std::size_t>(pos_[moved]));
}

void EventHeap::pop() {
  CHARLIE_ASSERT(!heap_.empty());
  cancel(heap_[0]);
}

void EventHeap::sift_up(std::size_t i) {
  const std::size_t slot = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(slot, heap_[parent])) break;
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, slot);
}

void EventHeap::sift_down(std::size_t i) {
  const std::size_t slot = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], slot)) break;
    place(i, heap_[child]);
    i = child;
  }
  place(i, slot);
}

}  // namespace charlie::sim
