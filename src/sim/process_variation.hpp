// Process variation for statistical batch simulation.
//
// ProcessVariation describes independent Gaussian perturbations of the
// core::ProcessPoint axes. sample(seed, run_index) draws a run's process
// corner from a counter-based RNG stream, so a sample is a pure function of
// (seed, global run index) -- never of which worker draws it or in which
// order runs execute (thread-count-invariant batches, split/replay-stable
// via BatchConfig::first_run_index). Samples are sigma-clamped to exactly
// the span of grid_spec(), so grid interpolation never extrapolates.
//
// ProcessBinder retargets one circuit clone to a sampled point between runs
// without allocation:
//   * hybrid MIS channels are rebound to a worker-local GateModeTables copy
//     re-filled in place by core::ModeTableGrid::interpolate_into (one copy
//     and one blend per distinct cell table, shared by all its instances);
//   * inertial SIS channels get their nominal rise/fall delays scaled by
//     ProcessPoint::resistance_scale (the same factor
//     cell::CellLibrary::at_corner applies);
//   * wire channels (interconnect) deliberately stay nominal -- RC wires
//     carry no device parameters, only geometry.
// Binding the nominal point restores the original shared tables and delays
// bit-exactly, so a variation-capable batch with all sigmas at zero is
// indistinguishable from a pre-variation one.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/mode_table_grid.hpp"
#include "core/process_point.hpp"
#include "sim/circuit.hpp"
#include "sim/hybrid_gate_channel.hpp"
#include "sim/inertial.hpp"

namespace charlie::sim {

/// Gaussian process variation; all sigmas zero = nominal-only (disabled).
struct ProcessVariation {
  double vdd_sigma = 0.0;    // sigma of vdd_scale (relative, nominal 1)
  double vth_sigma = 0.0;    // sigma of vth_shift [V] (nominal 0)
  double drive_sigma = 0.0;  // sigma of drive_scale (relative, nominal 1)
  // Samples clamp their standard score to [-max_sigma, +max_sigma]; the
  // collocation grid spans exactly that range per active axis.
  double max_sigma = 3.5;
  // Grid resolution per active axis (collocation points; >= 2 for an
  // actual span, 3 puts a point at nominal).
  int grid_levels = 3;
  // Nominal supply voltage used to close the SIS delay scale when the
  // circuit has no hybrid gate to read it from; 0 = read from the circuit.
  double vdd_nominal = 0.0;

  bool enabled() const {
    return vdd_sigma > 0.0 || vth_sigma > 0.0 || drive_sigma > 0.0;
  }

  /// Throws ConfigError on negative/non-finite sigmas, a non-positive
  /// max_sigma or grid_levels, or spans wide enough to cross zero supply
  /// or drive.
  void validate() const;

  /// The process sample of global run `run_index` under `seed`: a pure
  /// function of the key, independent of draw order. All three axes always
  /// consume the same number of stream draws, so enabling one sigma never
  /// shifts another axis's values.
  core::ProcessPoint sample(std::uint64_t seed, std::uint64_t run_index) const;

  /// Grid extents matching the clamped sample range exactly (inactive axes
  /// stay pinned at nominal).
  core::ModeTableGrid::Spec grid_spec() const;
};

/// Everything that makes one batch run distinct: the stimulus stream seed
/// and the process sample. Both derive from (base_seed, global run index).
struct RunSpec {
  std::uint64_t stimulus_seed = 0;
  core::ProcessPoint point;
};

/// Per-worker channel retargeting (see the file comment). Construction
/// registers every process-aware channel and allocates the worker-local
/// table copies; bind() is allocation-free.
class ProcessBinder {
 public:
  /// One shared grid per distinct nominal table; keyed by the table's
  /// address so clones that share tables (the CircuitBuilder path) share
  /// grids across all workers.
  using GridMap = std::map<const core::GateModeTables*,
                           std::shared_ptr<const core::ModeTableGrid>>;

  /// Build (or extend) `grids` with one ModeTableGrid per distinct hybrid
  /// table of `circuit` not already present. Call once per worker clone
  /// before constructing its binder; tables already covered are skipped,
  /// so shared tables pay one corner derivation total.
  static void build_grids(Circuit& circuit,
                          const core::ModeTableGrid::Spec& spec,
                          GridMap& grids);

  /// Registers the channels of `circuit`. `vdd_override` closes the SIS
  /// delay scale; 0 = read VDD from the first hybrid gate. Throws
  /// ConfigError when inertial channels exist but no VDD source does.
  ProcessBinder(Circuit& circuit, const GridMap& grids,
                double vdd_override = 0.0);

  /// Retarget every registered channel to `point`. Allocation-free; the
  /// nominal point restores the original tables/delays bit-exactly.
  void bind(const core::ProcessPoint& point);

  std::size_t n_hybrid_channels() const { return hybrid_channels_.size(); }
  std::size_t n_inertial_channels() const { return inertial_.size(); }
  double vdd_nominal() const { return vdd_nominal_; }

 private:
  struct TableRebind {
    std::shared_ptr<const core::GateModeTables> nominal;
    std::shared_ptr<const core::ModeTableGrid> grid;
    std::shared_ptr<core::GateModeTables> local;  // this binder's scratch
  };
  struct HybridSlot {
    HybridGateChannel* channel = nullptr;
    std::size_t rebind = 0;  // index into rebinds_
  };
  struct InertialSlot {
    InertialChannel* channel = nullptr;
    double delay_up = 0.0;    // nominal
    double delay_down = 0.0;  // nominal
  };

  std::vector<TableRebind> rebinds_;
  std::vector<HybridSlot> hybrid_channels_;
  std::vector<InertialSlot> inertial_;
  double vdd_nominal_ = 0.0;
};

}  // namespace charlie::sim
