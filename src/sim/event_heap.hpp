// Indexed binary min-heap of pending gate events, keyed by slot (gate).
//
// The event-driven engine keeps at most one scheduled firing per gate (the
// channel contract exposes one pending event at a time). A lazy-deletion
// priority queue therefore wastes work: every reschedule leaves a stale
// entry behind that must be popped, checked, and discarded later. The
// indexed heap gives each gate one slot and moves it on reschedule
// (decrease/increase-key), so superseded events never enter the queue and
// every pop is live. All operations are O(log n); cancel and schedule of
// an absent slot are O(log n) too.
#pragma once

#include <cstddef>
#include <vector>

namespace charlie::sim {

class EventHeap {
 public:
  struct Entry {
    double t = 0.0;
    long seq = 0;  // FIFO tie-break for equal times (later schedule loses)
    bool value = false;
  };

  /// Drop all events and size the heap for slots [0, n_slots).
  void reset(std::size_t n_slots);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  bool contains(std::size_t slot) const { return pos_[slot] >= 0; }

  /// Insert `slot` or move its key; the heap re-sorts in either direction.
  void schedule(std::size_t slot, double t, long seq, bool value);

  /// Remove `slot`'s event if present (no-op otherwise).
  void cancel(std::size_t slot);

  /// Slot and payload of the earliest event. Requires !empty().
  std::size_t top_slot() const { return heap_[0]; }
  const Entry& top() const { return entries_[heap_[0]]; }

  /// Remove the earliest event. Requires !empty().
  void pop();

 private:
  bool before(std::size_t sa, std::size_t sb) const {
    const Entry& a = entries_[sa];
    const Entry& b = entries_[sb];
    if (a.t != b.t) return a.t < b.t;
    return a.seq < b.seq;
  }
  void place(std::size_t i, std::size_t slot) {
    heap_[i] = slot;
    pos_[slot] = static_cast<int>(i);
  }
  void sift_up(std::size_t i);
  void sift_down(std::size_t i);

  std::vector<Entry> entries_;    // indexed by slot
  std::vector<int> pos_;          // slot -> heap position, -1 when absent
  std::vector<std::size_t> heap_;  // heap of slots
};

}  // namespace charlie::sim
