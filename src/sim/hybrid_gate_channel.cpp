#include "sim/hybrid_gate_channel.hpp"

#include <algorithm>
#include <cmath>

#include "fit/brent_root.hpp"
#include "util/error.hpp"

namespace charlie::sim {

HybridGateChannel::HybridGateChannel(const core::GateParams& params)
    : HybridGateChannel(core::GateModeTables::make(params)) {}

HybridGateChannel::HybridGateChannel(
    std::shared_ptr<const core::GateModeTables> tables)
    : tables_(std::move(tables)) {
  CHARLIE_ASSERT(tables_ != nullptr);
  mt_ = &tables_->state_table(state_);
  vth_ = tables_->vth();
  horizon_ = tables_->horizon();
  delta_min_ = tables_->delta_min();
  n_inputs_ = tables_->n_inputs();
}

void HybridGateChannel::initialize(double t0,
                                   const std::vector<bool>& values) {
  CHARLIE_ASSERT(values.size() == static_cast<std::size_t>(n_inputs_));
  state_ = 0;
  for (int i = 0; i < n_inputs_; ++i) {
    state_ = core::gate_state_with(state_, i, values[i]);
  }
  mt_ = &tables_->state_table(state_);
  t_ref_ = t0;
  // Steady state; an isolated internal stack node defaults to the
  // worst-case history value (GND for NOR-like, VDD for NAND-like).
  x_ref_ = mt_->steady;
  if (core::gate_mode_internal_frozen(tables_->gate_params(), state_)) {
    x_ref_.x = tables_->default_hold();
  }
  output_ = tables_->output_value(state_);
  refresh_scalar();
  committed_.clear();
  live_.reset();
}

std::optional<PendingEvent> HybridGateChannel::pending() const {
  if (!committed_.empty()) return committed_.front();
  return live_;
}

ode::Vec2 HybridGateChannel::state_at(double t) const {
  CHARLIE_ASSERT(t >= t_ref_ - 1e-18);
  if (t <= t_ref_) return x_ref_;
  const double tau = t - t_ref_;
  const core::ModeTable& mt = *mt_;
  if (mt.spectral_valid) {
    const ode::Vec2 dev = x_ref_ - mt.xp;
    return mt.xp + std::exp(mt.l1 * tau) * (mt.s1 * dev) +
           std::exp(mt.l2 * tau) * (mt.s2 * dev);
  }
  return mt.ode.state_at(tau, x_ref_);
}

void HybridGateChannel::refresh_scalar() {
  const core::ModeTable& mt = *mt_;
  scalar_.valid = mt.scalar_valid;
  if (!mt.scalar_valid) return;  // defective/complex: use the generic scan
  const ode::Vec2 dev = x_ref_ - mt.xp;
  double a1 = mt.p1c * dev.x + mt.p1d * dev.y;
  double a2 = dev.y - a1;
  double d = mt.d;
  // Zero-eigenvalue components are constant and fold into d.
  if (mt.fold1) {
    d += a1;
    a1 = 0.0;
  }
  if (mt.fold2) {
    d += a2;
    a2 = 0.0;
  }
  scalar_.d = d;
  scalar_.a1 = a1;
  scalar_.l1 = mt.l1;
  scalar_.a2 = a2;
  scalar_.l2 = mt.l2;
}

double HybridGateChannel::vo_scalar(double tau) const {
  return scalar_.d + scalar_.a1 * std::exp(scalar_.l1 * tau) +
         scalar_.a2 * std::exp(scalar_.l2 * tau);
}

double HybridGateChannel::solve_crossing(double lo, double hi, double flo,
                                         double seed) const {
  const double vth = vth_;
  double a = lo;
  double b = hi;
  double fa = flo;
  if (fa == 0.0) return a;
  double x = (seed > a && seed < b) ? seed : 0.5 * (a + b);
  for (int iter = 0; iter < 32; ++iter) {
    const double e1 = std::exp(scalar_.l1 * x);
    const double e2 = std::exp(scalar_.l2 * x);
    const double fx = scalar_.d + scalar_.a1 * e1 + scalar_.a2 * e2 - vth;
    if (fx == 0.0) return x;
    if ((fx < 0.0) == (fa < 0.0)) {
      a = x;
      fa = fx;
    } else {
      b = x;
    }
    const double dfx =
        scalar_.a1 * scalar_.l1 * e1 + scalar_.a2 * scalar_.l2 * e2;
    double next = dfx != 0.0 ? x - fx / dfx : 0.5 * (a + b);
    // Newton stepping outside the (shrinking) bracket means the local
    // slope extrapolates past the root; bisect instead.
    if (!(next > a && next < b)) next = 0.5 * (a + b);
    // Stop well below the library's 1e-18 s root tolerance target; the
    // final Newton step bounds the remaining error (quadratic convergence).
    if (std::fabs(next - x) <= 1e-17 + 1e-14 * std::fabs(next)) return next;
    x = next;
  }
  // Non-convergence (e.g. near-tangent crossing): Brent on the narrowed
  // bracket is unconditionally robust.
  auto f = [&](double tau) { return vo_scalar(tau) - vth; };
  return fit::brent_root(f, a, b);
}

std::optional<PendingEvent> HybridGateChannel::next_crossing(
    double t_from) const {
  if (!scalar_.valid) return next_crossing_scan(t_from);

  const double vth = vth_;
  auto f = [&](double tau) { return vo_scalar(tau) - vth; };
  const double tau0 = std::max(t_from - t_ref_, 0.0);
  const double tau_end = tau0 + horizon_;
  // Geometric right-expansion on the scalar form (same scheme as
  // fit::expand_bracket_right, but monomorphized: no std::function on the
  // per-event path). Returns the bracket with f(a) so callers don't pay the
  // two exp() of re-evaluating the left edge.
  struct Bracket {
    double a;
    double b;
    double fa;
  };
  auto expand_right = [&](double a, double b) -> std::optional<Bracket> {
    double fa = f(a);
    double fb = f(b);
    while (fa * fb > 0.0) {
      if (b >= tau_end) return std::nullopt;
      const double width = (b - a) * 2.0;
      a = b;
      fa = fb;
      b = std::min(a + width, tau_end);
      fb = f(b);
    }
    return Bracket{a, b, fa};
  };
  // The dominant call site searches from the segment start (tau0 = 0),
  // where exp() is exactly 1 -- no calls needed. Evaluated on the scalar
  // expansion (not x_ref_.y) so the sign agrees bit-for-bit with the f()
  // that solve_crossing and expand_right iterate; a disagreement within
  // rounding error of vth could otherwise hand solve_crossing a
  // non-bracketing interval.
  const double f0 =
      tau0 == 0.0 ? scalar_.d + scalar_.a1 + scalar_.a2 - vth : f(tau0);
  const double fd = scalar_.d - vth;  // asymptotic value (l1, l2 <= 0)

  auto found = [&](double tau_lo, double tau_hi, double flo,
                   double seed, bool rising) -> std::optional<PendingEvent> {
    const double tau_c = solve_crossing(tau_lo, tau_hi, flo, seed);
    return PendingEvent{t_ref_ + tau_c, rising};
  };

  // Interior extremum of f: f'(tau*) = 0 with
  // a1 l1 e^{l1 tau} = -a2 l2 e^{l2 tau}.
  double tau_star = -1.0;
  const double p = scalar_.a1 * scalar_.l1;
  const double q = scalar_.a2 * scalar_.l2;
  if (p != 0.0 && q != 0.0 && scalar_.l1 != scalar_.l2 && -q / p > 0.0) {
    tau_star = std::log(-q / p) / (scalar_.l1 - scalar_.l2);
  }

  if (tau_star > tau0 && tau_star < tau_end) {
    const double f_star = f(tau_star);
    if (f0 != 0.0 && f0 * f_star < 0.0) {
      return found(tau0, tau_star, f0, 0.5 * (tau0 + tau_star),
                   f_star > 0.0);
    }
    if (f_star == 0.0) {
      // Tangent touch: not a crossing; continue past it.
    }
    // No crossing before the extremum; check the tail beyond it.
    if (f_star * fd < 0.0) {
      // The tail decays monotonically from f_star toward fd: bracket by
      // expansion (the slope vanishes at the extremum, so the analytic
      // seed below does not apply).
      const auto bracket = expand_right(tau_star, tau_star + 1e-12);
      if (bracket.has_value()) {
        return found(bracket->a, bracket->b, bracket->fa,
                     0.5 * (bracket->a + bracket->b), fd > 0.0);
      }
      return std::nullopt;
    }
    return std::nullopt;
  }

  // No interior extremum after tau0: f decays monotonically toward fd.
  if (f0 != 0.0 && f0 * fd < 0.0) {
    // Seed Newton by matching value and slope at tau0 with one decaying
    // exponential toward fd:  f ~ fd + (f0-fd) e^{-r (tau-tau0)}.
    const double df0 =
        tau0 == 0.0 ? scalar_.a1 * scalar_.l1 + scalar_.a2 * scalar_.l2
                    : scalar_.a1 * scalar_.l1 * std::exp(scalar_.l1 * tau0) +
                          scalar_.a2 * scalar_.l2 * std::exp(scalar_.l2 * tau0);
    const double r = -df0 / (f0 - fd);
    if (r > 0.0) {
      // -fd/(f0-fd) = |fd|/(|f0|+|fd|) is in (0,1), so the seed is finite
      // and to the right of tau0.
      const double seed = tau0 - std::log(-fd / (f0 - fd)) / r;
      const double fend = f(tau_end);
      if (fend == 0.0) {
        // Crossing exactly at the horizon. The expansion path below treats
        // fa*fb == 0 as a closed bracket; match its semantics.
        return PendingEvent{t_ref_ + tau_end, fd > 0.0};
      }
      if ((fend < 0.0) != (f0 < 0.0)) {
        return found(tau0, tau_end, f0, seed, fd > 0.0);
      }
      // Crossing beyond the horizon (asymptote grazes the threshold): no
      // event within the search window.
      return std::nullopt;
    }
    const auto bracket = expand_right(tau0, tau0 + 1e-12);
    if (bracket.has_value()) {
      return found(bracket->a, bracket->b, bracket->fa,
                   0.5 * (bracket->a + bracket->b), fd > 0.0);
    }
  }
  return std::nullopt;
}

std::optional<PendingEvent> HybridGateChannel::next_crossing_scan(
    double t_from) const {
  const double vth = vth_;
  const double horizon = horizon_;
  auto f = [&](double t) { return state_at(t).y - vth; };

  // Scan at a fraction of the fastest time constant of the current mode,
  // but never more than ~4k evaluations per search window.
  const auto& eig = mt_->ode.eigen();
  const double fastest =
      std::max(std::fabs(eig.lambda1), std::fabs(eig.lambda2));
  double step = fastest > 0.0 ? 0.125 / fastest : horizon / 64.0;
  step = std::max(step, horizon / 4096.0);

  double a = t_from;
  double fa = f(a);
  const double t_end = t_from + horizon;
  while (a < t_end) {
    const double b = std::min(a + step, t_end);
    const double fb = f(b);
    if (fa != 0.0 && fa * fb <= 0.0) {
      const double tc = fb == 0.0 ? b : fit::brent_root(f, a, b);
      return PendingEvent{tc, fb > 0.0 || (fb == 0.0 && fa < 0.0)};
    }
    a = b;
    fa = fb;
  }
  return std::nullopt;
}

void HybridGateChannel::on_input(double t, int port, bool value) {
  CHARLIE_ASSERT(port >= 0 && port < n_inputs_);
  const double te = t + delta_min_;  // pure delay defers the switch
  CHARLIE_ASSERT_MSG(te >= t_ref_ - 1e-18,
                     "hybrid channel: out-of-order input");

  // A live crossing earlier than the effective switch time has physically
  // happened already -- the new input cannot cancel it (the pure delay
  // shifts the *effect* of the input past it). Promote it to the committed
  // queue; only crossings after te are recomputed.
  double search_from = te;
  if (live_.has_value() && live_->t <= te) {
    committed_.push_back(*live_);
    // Multiple same-mode crossings before te would have been discovered
    // one at a time via on_fire; find any others up to te now.
    double from = live_->t + 1e-18;
    live_.reset();
    while (true) {
      const auto extra = next_crossing(from);
      if (!extra.has_value() || extra->t > te) break;
      committed_.push_back(*extra);
      from = extra->t + 1e-18;
    }
  } else {
    live_.reset();
  }

  // Evolve the analog state to the switch instant, then change mode.
  x_ref_ = state_at(te);
  t_ref_ = te;
  state_ = core::gate_state_with(state_, port, value);
  mt_ = &tables_->state_table(state_);
  refresh_scalar();

  live_ = next_crossing(search_from);
}

void HybridGateChannel::on_fire(const PendingEvent& fired) {
  output_ = fired.value;
  if (!committed_.empty()) {
    // Desync between the engine's queue and the channel's committed list
    // would silently corrupt output traces; fail loudly instead.
    const PendingEvent& front = committed_.front();
    CHARLIE_ASSERT_MSG(front.t == fired.t && front.value == fired.value,
                       "hybrid channel: fired event does not match the "
                       "committed front");
    committed_.pop_front();
    return;
  }
  CHARLIE_ASSERT(live_.has_value());
  CHARLIE_ASSERT_MSG(live_->t == fired.t && live_->value == fired.value,
                     "hybrid channel: fired event does not match the live "
                     "crossing");
  // The waveform may cross again within the same mode (non-monotone V_O);
  // keep looking just past the crossing.
  live_ = next_crossing(fired.t + 1e-18);
}

}  // namespace charlie::sim
