#include "sim/hybrid_gate_channel.hpp"

#include <algorithm>
#include <cmath>

#include "util/diagnostics.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"

namespace charlie::sim {

HybridGateChannel::HybridGateChannel(const core::GateParams& params)
    : HybridGateChannel(core::GateModeTables::make(params)) {}

HybridGateChannel::HybridGateChannel(
    std::shared_ptr<const core::GateModeTables> tables)
    : tables_(std::move(tables)) {
  CHARLIE_ASSERT(tables_ != nullptr);
  mt_ = &tables_->state_table(state_);
  vth_ = tables_->vth();
  horizon_ = tables_->horizon();
  delta_min_ = tables_->delta_min();
  n_inputs_ = tables_->n_inputs();
}

void HybridGateChannel::rebind_tables(
    std::shared_ptr<const core::GateModeTables> tables) {
  CHARLIE_ASSERT(tables != nullptr);
  CHARLIE_ASSERT_MSG(tables->n_inputs() == n_inputs_,
                     "rebind_tables: arity mismatch");
  tables_ = std::move(tables);
  mt_ = &tables_->state_table(state_);
  vth_ = tables_->vth();
  horizon_ = tables_->horizon();
  delta_min_ = tables_->delta_min();
}

void HybridGateChannel::initialize(double t0,
                                   const std::vector<bool>& values) {
  CHARLIE_ASSERT(values.size() == static_cast<std::size_t>(n_inputs_));
  state_ = 0;
  for (int i = 0; i < n_inputs_; ++i) {
    state_ = core::gate_state_with(state_, i, values[i]);
  }
  mt_ = &tables_->state_table(state_);
  // Re-read the cached scalars: a shared worker-local table may have been
  // re-derived in place (process-variation rebinding) since the last run.
  vth_ = tables_->vth();
  horizon_ = tables_->horizon();
  delta_min_ = tables_->delta_min();
  t_ref_ = t0;
  // Steady state; an isolated internal stack node defaults to the
  // worst-case history value (GND for NOR-like, VDD for NAND-like).
  x_ref_ = mt_->steady;
  if (core::gate_mode_internal_frozen(tables_->gate_params(), state_)) {
    x_ref_.x = tables_->default_hold();
  }
  output_ = tables_->output_value(state_);
  refresh_scalar();
  committed_.clear();
  live_.reset();
}

std::optional<PendingEvent> HybridGateChannel::pending() const {
  if (!committed_.empty()) return committed_.front();
  return live_;
}

ode::Vec2 HybridGateChannel::state_at(double t) const {
  CHARLIE_ASSERT(t >= t_ref_ - 1e-18);
  if (t <= t_ref_) return x_ref_;
  const double tau = t - t_ref_;
  const core::ModeTable& mt = *mt_;
  if (mt.spectral_valid) {
    const ode::Vec2 dev = x_ref_ - mt.xp;
    return mt.xp + std::exp(mt.l1 * tau) * (mt.s1 * dev) +
           std::exp(mt.l2 * tau) * (mt.s2 * dev);
  }
  return mt.ode.state_at(tau, x_ref_);
}

void HybridGateChannel::refresh_scalar() {
  scalar_ = two_exp_expand(*mt_, x_ref_);
}

std::optional<PendingEvent> HybridGateChannel::next_crossing(
    double t_from) const {
  if (!scalar_.valid) return next_crossing_scan(t_from);
  const double tau0 = std::max(t_from - t_ref_, 0.0);
  const auto crossing = two_exp_next_crossing(scalar_, vth_, tau0, horizon_);
  if (!crossing.has_value()) return std::nullopt;
  return PendingEvent{t_ref_ + crossing->tau, crossing->rising};
}

std::optional<PendingEvent> HybridGateChannel::next_crossing_scan(
    double t_from) const {
  const auto crossing = scan_vo_crossing(
      *mt_, vth_, t_from, horizon_,
      [this](double t) { return state_at(t).y; });
  if (!crossing.has_value()) return std::nullopt;
  return PendingEvent{crossing->t, crossing->rising};
}

void HybridGateChannel::on_input(double t, int port, bool value) {
  CHARLIE_ASSERT(port >= 0 && port < n_inputs_);
  const double te = t + delta_min_;  // pure delay defers the switch
  CHARLIE_ASSERT_MSG(te >= t_ref_ - 1e-18,
                     "hybrid channel: out-of-order input");

  // A live crossing earlier than the effective switch time has physically
  // happened already -- the new input cannot cancel it (the pure delay
  // shifts the *effect* of the input past it). Promote it to the committed
  // queue; only crossings after te are recomputed.
  double search_from = te;
  if (live_.has_value() && live_->t <= te) {
    committed_.push_back(*live_);
    // Multiple same-mode crossings before te would have been discovered
    // one at a time via on_fire; find any others up to te now.
    double from = live_->t + 1e-18;
    live_.reset();
    while (true) {
      const auto extra = next_crossing(from);
      if (!extra.has_value() || extra->t > te) break;
      committed_.push_back(*extra);
      from = extra->t + 1e-18;
    }
  } else {
    live_.reset();
  }

  // Evolve the analog state to the switch instant, then change mode.
  x_ref_ = state_at(te);
  x_ref_.y = CHARLIE_FAULT_DOUBLE("hybrid_channel.state", x_ref_.y);
  // Guardrail at the mode-switch boundary: a non-finite analog state
  // (overflowed exponential, corrupted table) would propagate NaN into
  // every later crossing search of this channel. Fail the run loudly here
  // instead; the budgeted entry points turn this into a kFailed result.
  if (!std::isfinite(x_ref_.x) || !std::isfinite(x_ref_.y)) {
    ++util::RunCounters::local().nonfinite_guard_trips;
    throw ConvergenceError(
        "hybrid channel: non-finite analog state at a mode switch");
  }
  t_ref_ = te;
  state_ = core::gate_state_with(state_, port, value);
  mt_ = &tables_->state_table(state_);
  refresh_scalar();

  live_ = next_crossing(search_from);
}

void HybridGateChannel::on_fire(const PendingEvent& fired) {
  output_ = fired.value;
  if (!committed_.empty()) {
    // Desync between the engine's queue and the channel's committed list
    // would silently corrupt output traces; fail loudly instead.
    const PendingEvent& front = committed_.front();
    CHARLIE_ASSERT_MSG(front.t == fired.t && front.value == fired.value,
                       "hybrid channel: fired event does not match the "
                       "committed front");
    committed_.pop_front();
    return;
  }
  CHARLIE_ASSERT(live_.has_value());
  CHARLIE_ASSERT_MSG(live_->t == fired.t && live_->value == fired.value,
                     "hybrid channel: fired event does not match the live "
                     "crossing");
  // The waveform may cross again within the same mode (non-monotone V_O);
  // keep looking just past the crossing.
  live_ = next_crossing(fired.t + 1e-18);
}

}  // namespace charlie::sim
