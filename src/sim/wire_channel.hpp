// Hybrid interconnect channel: the RC wire between a driving channel and
// its fanout, simulated as a continuous analog system instead of a
// threshold-digitized edge.
//
// A WireChannel owns the collapsed 2-state wire model of a
// wire::WireModeTables (see wire/wire_tables.hpp) and performs analog state
// handoff between driver and receiver: the driver's output events switch
// the wire's drive state while the wire's analog state (slope, V_out)
// carries over continuously -- nothing resets at an event boundary, so the
// wire remembers how far the previous transition actually got. Output
// events are V_out = VDD/2 crossings of the resulting piecewise
// two-exponential waveform; they feed the receiving gate's mode-switch
// thresholds exactly like any other net transition. Drive switches are
// deferred by the first-moment drive-shape correction (1 - ln 2) t_drive
// (see wire/wire_params.hpp), the wire's analogue of the gate model's
// pure delay: it places the rail step at the centroid of the driver's
// real output edge.
//
// The continuous state is what distinguishes the hybrid wire from an
// inertial lumped-load delay: a pulse shorter than the wire's RC only
// partially charges the line, so the next edge starts from that partial
// state (short-pulse attenuation, slope-dependent delay, and glitch
// suppression all fall out of the dynamics instead of an ad-hoc rejection
// rule).
//
// All drive-state math is precomputed once per WireParams in the shared
// WireModeTables; the per-event work is the same two-exponential crossing
// solve the gate channels use (sim/two_exp_crossing.hpp).
#pragma once

#include <deque>
#include <memory>

#include "sim/channel.hpp"
#include "sim/two_exp_crossing.hpp"
#include "wire/wire_tables.hpp"

namespace charlie::sim {

class WireChannel final : public SisChannel {
 public:
  /// Builds a private table. For many instances of the same wire geometry,
  /// precompute one table and use the sharing constructor instead.
  explicit WireChannel(const wire::WireParams& params);

  /// Shares an immutable collapsed table across channel instances.
  explicit WireChannel(std::shared_ptr<const wire::WireModeTables> tables);

  void initialize(double t0, bool value) override;
  void on_input(double t, bool value) override;
  void on_fire(const PendingEvent& fired) override;
  std::optional<PendingEvent> pending() const override;
  bool initial_output() const override { return output_; }

  /// Current analog state (u, V_out) at time t >= last event time, where
  /// u = (b2/b1) dV_out/dt is the scaled slope state of the collapse.
  ode::Vec2 state_at(double t) const;

  /// Logic level currently driving the wire.
  bool drive_value() const { return input_; }

  const std::shared_ptr<const wire::WireModeTables>& wire_tables() const {
    return tables_;
  }

 private:
  std::optional<PendingEvent> next_crossing(double t_from) const;
  std::optional<PendingEvent> next_crossing_scan(double t_from) const;
  void refresh_scalar();

  std::shared_ptr<const wire::WireModeTables> tables_;
  const core::ModeTable* mt_ = nullptr;  // current drive state's table
  double vth_ = 0.0;
  double horizon_ = 0.0;
  double drive_delay_ = 0.0;  // first-moment drive-shape correction
  TwoExpVo scalar_{};
  double t_ref_ = 0.0;  // time of the state snapshot
  ode::Vec2 x_ref_{};   // (u, V_out) at t_ref_
  bool input_ = false;
  bool output_ = false;
  // Crossings before the latest input are physically decided and can no
  // longer be cancelled; the live crossing of the current drive state can.
  // Same commitment semantics as HybridGateChannel::on_input.
  std::deque<PendingEvent> committed_;
  std::optional<PendingEvent> live_;
};

}  // namespace charlie::sim
