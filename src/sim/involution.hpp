// Involution-property utilities.
//
// A delay-function pair (delta_up, delta_down) is a *negative involution*
// when -delta_down(-delta_up(T)) = T wherever defined (Fuegger et al.,
// paper reference [3]) -- the defining property of IDM channels and the
// reason they model glitch cancellation faithfully. Channels built from
// monotone analog waveforms satisfy it by construction; these helpers let
// tests verify it numerically.
#pragma once

#include <functional>
#include <optional>

namespace charlie::sim {

/// delta(T): delay for a transition whose previous-output-to-input
/// separation is T; nullopt = transition cancelled.
using DelayFunction = std::function<std::optional<double>(double)>;

struct InvolutionCheck {
  double max_abs_error = 0.0;  // max |(-delta_down(-delta_up(T))) - T|
  int points_checked = 0;
  int points_cancelled = 0;  // where either direction cancelled
};

/// Check -delta_down(-delta_up(T)) = T over `n` points of T in [t_lo, t_hi].
InvolutionCheck check_involution(const DelayFunction& delta_up,
                                 const DelayFunction& delta_down,
                                 double t_lo, double t_hi, int n = 200);

}  // namespace charlie::sim
