// Resumable event-driven simulation session over a Circuit.
//
// SimSession is the engine behind Circuit::simulate, exposed separately so
// simulated time can be advanced in windows: the sharded circuit runner
// (sim/sharded_circuit.hpp) advances each shard one conservative window
// quantum at a time, injecting the boundary transitions produced by
// upstream shards between advances. A session borrows the circuit's
// channel state, so at most one session may be active per Circuit at a
// time.
//
// Window convention (same as Circuit::simulate): construction settles the
// circuit at t_begin from stimuli[i].value_at(t_begin); each advance(t)
// call then processes every event in (previous horizon, t]. Events whose
// (channel-delayed) time lands beyond the current horizon stay pending
// inside their channel and fire in a later window -- the deferred-gate
// bookkeeping re-arms them, preserving the original schedule order for
// equal-time events. A single advance(t_end) therefore reproduces
// Circuit::simulate bit-for-bit.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/circuit.hpp"
#include "sim/event_heap.hpp"
#include "waveform/digital_trace.hpp"

namespace charlie::sim {

class SimSession {
 public:
  /// Settle `circuit` at t_begin and queue the stimulus transitions. Traces
  /// with no transitions are valid stimuli (e.g. shard boundary inputs that
  /// receive their transitions later through inject()).
  SimSession(Circuit& circuit,
             const std::vector<waveform::DigitalTrace>& stimuli,
             double t_begin);

  /// Arena variant: reuses `arena`'s trace storage (reset, not
  /// reallocated). take_result() hands the storage back.
  SimSession(Circuit& circuit,
             const std::vector<waveform::DigitalTrace>& stimuli,
             double t_begin, Circuit::SimResult&& arena);

  /// Budgeted variant: advance() polls `budget` and terminates the session
  /// early with the corresponding RunStatus instead of running to the
  /// horizon. After a trip the session is finished: further advance()
  /// calls are no-ops and the result carries the partial traces.
  SimSession(Circuit& circuit,
             const std::vector<waveform::DigitalTrace>& stimuli,
             double t_begin, const RunBudget& budget,
             Circuit::SimResult&& arena = Circuit::SimResult{});

  SimSession(const SimSession&) = delete;
  SimSession& operator=(const SimSession&) = delete;

  /// Current horizon: all events with t <= t_horizon() are processed.
  double t_horizon() const { return horizon_; }

  /// Current value of a net (settled value right after construction).
  bool value(Circuit::NetId net) const {
    return net_value_[static_cast<std::size_t>(net)] != 0;
  }

  /// Queue an externally produced transition on the `input_index`-th
  /// declared primary input (shard boundary exchange). Must satisfy
  /// t > t_horizon(); takes effect on the next advance().
  void inject(std::size_t input_index, double t, bool input_value);

  /// Process every event with t <= t_horizon (stimuli, injected boundary
  /// transitions, and gate firings). Horizons must not decrease.
  void advance(double t_horizon);

  long n_stimulus_events() const { return n_stimulus_events_; }
  long n_gate_events() const { return n_gate_events_; }

  /// Peak event-heap occupancy so far (see Circuit::SimResult).
  long max_heap_depth() const { return max_heap_depth_; }

  /// kOk while the session may still advance; any other value is sticky.
  RunStatus status() const { return status_; }

  /// Record a failure captured outside the event loop (the budgeted
  /// Circuit::simulate catches and forwards exception text). Sticky like a
  /// budget trip; only the first terminal status wins.
  void mark_failed(const std::string& what);

  /// Traces appended so far (up to the current horizon); n_events is the
  /// processed stimulus + gate event count.
  const Circuit::SimResult& result();

  /// Move the result out; the session must not be advanced afterwards.
  Circuit::SimResult take_result();

 private:
  struct StimulusEvent {
    double t = 0.0;
    Circuit::NetId net = -1;
    bool value = false;
  };

  void initialize(const std::vector<waveform::DigitalTrace>& stimuli);
  void reschedule(std::size_t gate_index);
  void propagate_net_change(Circuit::NetId net, double t, bool value);

  Circuit* circuit_;
  double t_begin_ = 0.0;
  double horizon_ = 0.0;
  RunGuard guard_;
  bool guard_active_ = false;     // false: the loop skips every poll
  RunStatus status_ = RunStatus::kOk;
  std::string error_;             // captured failure text (kFailed)
  double t_processed_ = 0.0;      // time of the last processed event
  Circuit::SimResult result_;
  std::vector<std::uint8_t> net_value_;  // hot path: byte per net, no
                                         // vector<bool> bit gymnastics
  std::vector<StimulusEvent> stim_events_;
  std::size_t stim_index_ = 0;
  std::vector<StimulusEvent> injected_;  // pending inject()s, merged by advance
  EventHeap heap_;
  long seq_ = 0;
  // Gates whose channel holds a pending event beyond the current horizon;
  // re-armed (in insertion order, preserving schedule order) on the next
  // advance.
  std::vector<std::size_t> deferred_;
  std::vector<std::uint8_t> is_deferred_;
  long n_stimulus_events_ = 0;
  long n_gate_events_ = 0;
  long max_heap_depth_ = 0;
};

}  // namespace charlie::sim
