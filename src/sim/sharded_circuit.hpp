// One large circuit partitioned across workers.
//
// ShardedCircuit goes past the embarrassingly-parallel Monte-Carlo batch:
// it simulates a SINGLE netlist on several cores by partitioning the gates
// into K shards along the topological order (CircuitBuilder::build_sharded
// places the cuts where the fewest nets are live -- a balanced min-cut
// along the topo order), so every cross-shard net flows from a lower shard
// to a higher one and the shard graph is acyclic.
//
// Synchronization is conservative windowed execution on the engine's own
// (t_begin, t_end] window convention: simulated time is cut into window
// quanta, and shard k may advance through window w as soon as (a) it has
// finished window w-1 and (b) every shard feeding it has finished window w
// -- at which point all boundary transitions with t <= the window end are
// known and injected as stimuli. Steps of this wavefront run on the worker
// pool: within one step, the runnable (shard, window) pairs are mutually
// independent, so K shards and W windows expose min(K, W) - 1 steps of
// pipeline parallelism with no speculation and no rollback.
//
// Determinism: every (shard, window) task consumes exactly the boundary
// transitions the monolithic engine would have produced (exchange buckets
// are indexed by window and drained in a fixed edge order), and each
// shard's SimSession replays them with the engine's stimulus-before-gate
// ordering. The result is bit-identical to single-threaded
// Circuit::simulate for any shard count, thread count, and window size --
// regression-locked by tests/sim/test_sharded_circuit.cpp -- with one
// caveat shared by all conservative orderings: two *distinct* events on a
// dependency path whose timestamps collide to the exact same double could
// tie-break differently than the monolithic seq order. Crossing times come
// from continuous solves, so exact collisions do not occur in practice
// (docs/performance.md has the argument).
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/circuit.hpp"
#include "util/thread_pool.hpp"
#include "waveform/digital_trace.hpp"

namespace charlie::sim {

struct ShardedSimConfig {
  /// Synchronization quantum [s]; 0 picks (t_end - t_begin) / (8 *
  /// n_shards). Smaller windows expose more pipeline overlap at more
  /// barrier cost; the result is bit-identical either way.
  double window = 0.0;
  /// Worker threads; 0 = min(n_shards, hardware concurrency).
  std::size_t n_threads = 0;
  /// Execution budget for the whole sharded run. The event ceiling is
  /// enforced on the coordinating thread at wavefront-step granularity
  /// (deterministic for a fixed shard/window config); deadlines and
  /// cancellation are additionally polled inside each shard task.
  RunBudget budget;
};

class ShardedCircuit {
 public:
  /// One shard as assembled by CircuitBuilder::build_sharded.
  struct Shard {
    std::unique_ptr<Circuit> circuit;
    /// For each of circuit's primary inputs: the global stimulus index it
    /// mirrors, or -1 for a boundary net fed by an upstream shard.
    std::vector<int> input_binding;
  };

  /// One cross-shard net: producer-local output net -> consumer-local
  /// primary input. A net consumed by several shards has one edge per
  /// consumer.
  struct BoundaryEdge {
    std::size_t from_shard = 0;
    Circuit::NetId from_net = -1;
    std::size_t to_shard = 0;
    std::size_t to_input = 0;  // consumer-local primary-input index
  };

  /// Wires pre-built shards together. `global_inputs` are the netlist's
  /// primary input names in stimulus order; `net_home` maps every
  /// non-input net name to (shard, shard-local NetId).
  ShardedCircuit(
      std::vector<Shard> shards, std::vector<BoundaryEdge> edges,
      std::vector<std::string> global_inputs,
      std::unordered_map<std::string, std::pair<std::size_t, Circuit::NetId>>
          net_home);

  std::size_t n_shards() const { return shards_.size(); }
  std::size_t n_gates() const;
  std::size_t n_inputs() const { return global_inputs_.size(); }
  std::size_t n_boundary_edges() const { return edges_.size(); }

  /// Simulation result addressed by net name (shards renumber nets, so
  /// global ids would be meaningless). Traces of primary inputs are the
  /// windowed stimuli; every other net's trace comes from the shard that
  /// produced it. Keeps pointers into this ShardedCircuit -- the circuit
  /// must outlive the result.
  struct Result {
    long n_events = 0;       // matches Circuit::simulate's count
    std::size_t n_windows = 0;
    /// kOk unless the run terminated early: budget/deadline/cancellation
    /// trip, or a failure captured out of a shard task (the wavefront
    /// stops at the end of the step that tripped; traces are best-effort
    /// up to diagnostics.t_horizon, the lowest horizon any shard fully
    /// reached). The pool stays usable either way.
    RunStatus status = RunStatus::kOk;
    RunDiagnostics diagnostics;

    bool ok() const { return status == RunStatus::kOk; }
    const waveform::DigitalTrace& trace(const std::string& net) const;

    /// Events processed by each (shard, window) task: shard_window_events
    /// [shard][window]. Always recorded (a subtraction per task, no tracing
    /// required) -- this is the data that shows whether the topo-order
    /// partition actually balances and where the wavefront's long pole is.
    std::vector<std::vector<long>> shard_window_events;

    /// Load imbalance of the shard partition: the busiest shard's total
    /// event count over the per-shard mean (1.0 = perfectly balanced, K =
    /// one shard did everything). 0 when no events were processed.
    double load_imbalance() const;

    /// Observability aggregate for this run: shard.* counters and
    /// histograms (per-task window events, per-shard totals, exchange
    /// bucket occupancy), filled in deterministic shard/edge order.
    /// docs/observability.md lists the names.
    obs::MetricsRegistry metrics;

    // Storage (public for the assembler; address traces via trace()).
    std::vector<Circuit::SimResult> shard_results;   // by shard
    std::vector<waveform::DigitalTrace> input_traces;  // by global input
    const ShardedCircuit* owner = nullptr;
  };

  /// Simulate (t_begin, t_end] with `stimuli[i]` driving the i-th global
  /// primary input. Bit-identical to the equivalent monolithic
  /// Circuit::simulate for any config.
  Result simulate(const std::vector<waveform::DigitalTrace>& stimuli,
                  double t_begin, double t_end,
                  const ShardedSimConfig& config = {});

 private:
  std::vector<Shard> shards_;
  std::vector<BoundaryEdge> edges_;
  std::vector<std::string> global_inputs_;
  std::unordered_map<std::string, std::pair<std::size_t, Circuit::NetId>>
      net_home_;
  std::unordered_map<std::string, std::size_t> input_index_;  // by name
  // Edge indices grouped by producer / consumer shard, in deterministic
  // construction order (consumer drain order must not depend on timing).
  std::vector<std::vector<std::size_t>> out_edges_;  // by from_shard
  std::vector<std::vector<std::size_t>> in_edges_;   // by to_shard
  std::unique_ptr<util::ThreadPool> pool_;  // lazily (re)built in simulate
};

}  // namespace charlie::sim
