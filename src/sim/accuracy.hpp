// Deviation-area accuracy pipeline (the paper's Section VI experiment),
// generalized over the multi-input cells of spice::CellKind.
//
// For each repetition: generate random input traces per the waveform
// configuration, obtain the golden output by running the transistor-level
// cell on the analog substrate and digitizing V_O at V_th, run every delay
// model on the digitized analog inputs, and accumulate the deviation area
// |model - golden|. Results are averaged over repetitions and normalized
// against the inertial-delay baseline, exactly as in Fig 7.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "spice/characterize.hpp"
#include "waveform/generator.hpp"
#include "wire/wire_params.hpp"

namespace charlie::sim {

struct ModelUnderTest {
  std::string name;
  /// Fresh channel per repetition (channels are stateful).
  std::function<std::unique_ptr<GateChannel>()> make;
  bool is_baseline = false;  // normalization reference (inertial delay)
};

struct AccuracyOptions {
  int repetitions = 3;
  std::uint64_t seed = 20220314;  // DATE'22 conference date
  double tail_time = 500e-12;     // observation margin after the last edge
  spice::TransientOptions transient;

  // Note on trace timing: the generator's t_start is floored at
  // 2 * Technology::input_rise_time so the first edge's analog ramp can
  // develop from a settled DC state; a caller-specified TraceConfig::t_start
  // beyond the floor is honored as-is.

  AccuracyOptions();
};

struct ModelAccuracy {
  std::string name;
  double mean_area = 0.0;        // averaged deviation area [s]
  double stddev_area = 0.0;      // across repetitions
  double normalized = 0.0;       // mean_area / baseline mean_area
};

struct AccuracyResult {
  std::string config_label;
  std::vector<ModelAccuracy> models;
  long golden_transitions = 0;   // total golden output transitions
};

/// Run the experiment for one waveform configuration on the 2-input NOR
/// (the paper's setup).
AccuracyResult evaluate_accuracy(const spice::Technology& tech,
                                 const waveform::TraceConfig& config,
                                 const std::vector<ModelUnderTest>& models,
                                 const AccuracyOptions& options = {});

/// Run the experiment for one waveform configuration on any supported cell;
/// every model channel must match the cell's arity.
AccuracyResult evaluate_gate_accuracy(const spice::Technology& tech,
                                      spice::CellKind cell,
                                      const waveform::TraceConfig& config,
                                      const std::vector<ModelUnderTest>& models,
                                      const AccuracyOptions& options = {});

/// Single-input delay model under test for the interconnect experiment.
struct WireModelUnderTest {
  std::string name;
  /// Fresh channel per repetition (channels are stateful).
  std::function<std::unique_ptr<SisChannel>()> make;
  bool is_baseline = false;  // normalization reference (inertial lumped load)
};

struct WireAccuracyOptions {
  int repetitions = 3;
  std::uint64_t seed = 20240316;  // follow-up paper's arXiv date
  double tail_time = 500e-12;     // observation margin after the last edge
  double drive_rise_time = 20e-12;  // slew of the PWL drive edges
  spice::TransientOptions transient;

  WireAccuracyOptions();
};

/// Fig-7-style deviation-area experiment for the interconnect model: the
/// golden output is the transient of the *full* N-section ladder
/// (spice::build_rc_line) under slew-limited random drive, digitized at
/// V_th; each model runs on the digitized drive and accumulates
/// |model - golden| deviation area, normalized against the baseline.
AccuracyResult evaluate_wire_accuracy(
    const wire::WireParams& params, const waveform::TraceConfig& config,
    const std::vector<WireModelUnderTest>& models,
    const WireAccuracyOptions& options = {});

}  // namespace charlie::sim
