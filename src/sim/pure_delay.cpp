#include "sim/pure_delay.hpp"

#include "util/error.hpp"

namespace charlie::sim {

PureDelayChannel::PureDelayChannel(double delay) : delay_(delay) {
  CHARLIE_ASSERT_MSG(delay >= 0.0, "pure delay must be non-negative");
}

void PureDelayChannel::initialize(double t0, bool value) {
  (void)t0;
  initial_output_ = value;
  queue_.clear();
}

void PureDelayChannel::on_input(double t, bool value) {
  queue_.push_back({t + delay_, value});
}

void PureDelayChannel::on_fire(const PendingEvent&) {
  CHARLIE_ASSERT(!queue_.empty());
  queue_.pop_front();
}

std::optional<PendingEvent> PureDelayChannel::pending() const {
  if (queue_.empty()) return std::nullopt;
  return queue_.front();
}

}  // namespace charlie::sim
