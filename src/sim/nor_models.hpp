// Uniform two-input NOR gate models for the accuracy comparison (Fig 7).
//
// Every delay model is wrapped as a GateChannel so the same trace harness
// drives them all:
//   * SIS-channel models (inertial, Exp, SumExp, pure) compute the boolean
//     NOR in zero time and push the value changes through the single-input
//     channel placed at the gate output -- exactly the Involution Tool
//     arrangement the paper describes (and whose inability to see which
//     input switched causes the Exp-Channel's broad-pulse errors);
//   * the hybrid model is natively two-input (HybridNorChannel).
#pragma once

#include <memory>

#include "core/nor_params.hpp"
#include "sim/channel.hpp"
#include "sim/exp_channel.hpp"
#include "sim/gate_models.hpp"
#include "sim/inertial.hpp"
#include "sim/pure_delay.hpp"
#include "sim/sumexp_channel.hpp"

namespace charlie::sim {

/// Zero-time boolean NOR followed by an owned SIS output channel: the
/// 2-input NOR instance of the generalized SisLogicGate.
class SisNorGate final : public SisLogicGate {
 public:
  explicit SisNorGate(std::unique_ptr<SisChannel> channel)
      : SisLogicGate(core::GateTopology::kNorLike, 2, std::move(channel)) {}
};

/// Gate-delay figures used to parametrize the SIS baselines. Following the
/// paper (Section VI), single-input channels cannot distinguish which input
/// switched, so they are given the *average* of the two SIS asymptotes per
/// transition direction.
struct SisNorDelays {
  double rise = 0.0;  // average of rise(-inf), rise(+inf)
  double fall = 0.0;  // average of fall(-inf), fall(+inf)
};

std::unique_ptr<GateChannel> make_inertial_nor(const SisNorDelays& delays);
std::unique_ptr<GateChannel> make_pure_nor(const SisNorDelays& delays);
std::unique_ptr<GateChannel> make_exp_nor(const SisNorDelays& delays,
                                          double delta_min);
std::unique_ptr<GateChannel> make_sumexp_nor(const SisNorDelays& delays,
                                             double delta_min);

}  // namespace charlie::sim
