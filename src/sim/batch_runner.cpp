#include "sim/batch_runner.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace_recorder.hpp"
#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace charlie::sim {

Histogram::Histogram(double lo, double hi, std::size_t n_bins)
    : lo_(lo), hi_(hi), bins_(n_bins, 0) {
  CHARLIE_ASSERT(hi > lo);
  CHARLIE_ASSERT(n_bins >= 1);
}

void Histogram::add(double x) {
  // A default-constructed histogram has no bins; letting the in-range path
  // below run would index an empty vector.
  CHARLIE_ASSERT_MSG(!bins_.empty(), "histogram: add() without a range");
  ++count_;
  sum_ += x;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>(
      static_cast<double>(bins_.size()) * (x - lo_) / (hi_ - lo_));
  ++bins_[std::min(bin, bins_.size() - 1)];
}

void Histogram::merge(const Histogram& other) {
  CHARLIE_ASSERT(other.lo_ == lo_ && other.hi_ == hi_ &&
                 other.bins_.size() == bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
}

const NetAggregate& BatchResult::net(const std::string& name) const {
  for (const auto& agg : nets) {
    if (agg.net == name) return agg;
  }
  throw ConfigError("batch result: net \"" + name + "\" was not observed");
}

std::vector<NetCriticality> BatchResult::criticality_ranking() const {
  std::vector<std::string> names;
  names.reserve(nets.size());
  for (const auto& agg : nets) names.push_back(agg.net);
  return rank_net_criticality(names, stats.criticality);
}

BatchRunner::BatchRunner(CircuitFactory factory, std::string output_net,
                         BatchConfig config)
    : BatchRunner(std::move(factory),
                  std::vector<std::string>{std::move(output_net)},
                  std::move(config)) {}

BatchRunner::BatchRunner(CircuitFactory factory,
                         std::vector<std::string> output_nets,
                         BatchConfig config)
    : factory_(std::move(factory)),
      output_nets_(std::move(output_nets)),
      config_(std::move(config)) {
  CHARLIE_ASSERT(factory_ != nullptr);
  CHARLIE_ASSERT(config_.n_runs >= 1);
  CHARLIE_ASSERT_MSG(!output_nets_.empty(),
                     "batch runner: at least one observed net");
}

namespace {

struct NetStats {
  long long transitions = 0;
  Histogram pulse_width;
  Histogram response_delay;
};

struct RunStats {
  long n_events = 0;
  long max_heap_depth = 0;
  RunDiagnostics diagnostics;
  std::vector<NetStats> nets;  // parallel to the observed-net list;
                               // empty when the run did not finish kOk
  // Largest response delay of the run across all observed nets, and the
  // index of the net it occurred on; -1 when the run produced no response
  // sample (or did not finish kOk).
  double critical_delay = -1.0;
  int critical_net = -1;
};

RunStats run_one(Circuit& circuit, const std::vector<Circuit::NetId>& outputs,
                 Circuit::SimResult& arena, std::vector<double>& stim_times,
                 const BatchConfig& config, const RunSpec& spec,
                 ProcessBinder* binder, double pulse_hi, double response_hi) {
  // Retarget the worker's clone to this run's process sample before any
  // channel state is initialized (simulate_into reinitializes all of it).
  if (binder != nullptr) binder->bind(spec.point);
  util::Rng rng(spec.stimulus_seed);
  const auto stimuli =
      waveform::generate_traces(config.trace, circuit.n_inputs(), rng);
  double t_last = config.trace.t_start;
  for (const auto& trace : stimuli) {
    if (!trace.empty()) t_last = std::max(t_last, trace.transitions().back());
  }
  const double t_end = t_last + config.t_settle;
  // Arena-reusing simulation: the worker's trace storage is reset in place,
  // not reallocated (bit-identical to Circuit::simulate). The budgeted
  // entry point never throws through the engine -- a failure or budget
  // trip comes back as a structured non-kOk result.
  circuit.simulate_into(stimuli, 0.0, t_end, config.budget, arena);
  const Circuit::SimResult& result = arena;

  RunStats stats;
  stats.n_events = result.n_events;
  stats.max_heap_depth = result.max_heap_depth;
  stats.diagnostics = result.diagnostics;
  // A terminated run contributes its diagnostics and event count but no
  // histogram samples: partial traces would skew the distributions
  // silently.
  if (!result.ok()) return stats;

  // Stimulus transitions, merged and sorted once per run; every observed
  // net's response delays sweep the same sequence.
  stim_times.clear();
  for (const auto& trace : stimuli) {
    stim_times.insert(stim_times.end(), trace.transitions().begin(),
                      trace.transitions().end());
  }
  std::sort(stim_times.begin(), stim_times.end());

  stats.nets.reserve(outputs.size());
  for (std::size_t n = 0; n < outputs.size(); ++n) {
    NetStats net;
    net.pulse_width = Histogram(0.0, pulse_hi, config.histogram_bins);
    net.response_delay = Histogram(0.0, response_hi, config.histogram_bins);

    const auto& out = result.trace(outputs[n]);
    net.transitions = static_cast<long long>(out.n_transitions());
    for (std::size_t k = 1; k < out.n_transitions(); ++k) {
      net.pulse_width.add(out.transitions()[k] - out.transitions()[k - 1]);
    }

    // Response delay: output transition time minus the latest stimulus
    // transition at or before it. Both sequences are time-sorted, so one
    // merged sweep suffices.
    std::size_t si = 0;
    for (std::size_t k = 0; k < out.n_transitions(); ++k) {
      const double t = out.transitions()[k];
      while (si + 1 < stim_times.size() && stim_times[si + 1] <= t) ++si;
      if (si < stim_times.size() && stim_times[si] <= t) {
        const double delay = t - stim_times[si];
        net.response_delay.add(delay);
        // Strict > ties the run's critical delay to the lowest net index.
        if (delay > stats.critical_delay) {
          stats.critical_delay = delay;
          stats.critical_net = static_cast<int>(n);
        }
      }
    }
    stats.nets.push_back(std::move(net));
  }
  return stats;
}

}  // namespace

void BatchRunner::ensure_workers() {
  if (pool_ != nullptr) return;
  pool_ = std::make_unique<util::ThreadPool>(config_.n_threads);
  const std::size_t n_workers = pool_->n_threads();

  // One circuit clone per worker, built up front on this thread (the
  // factory need not be thread-safe). Circuit::simulate_into reinitializes
  // all channel state and reuses the worker's trace arena, so a clone
  // serves every run its worker claims, across every run() call.
  workers_.resize(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    workers_[w].circuit = factory_();
    CHARLIE_ASSERT(workers_[w].circuit != nullptr);
    // Resolved per clone: a factory is not required to assign net ids in
    // the same order on every call.
    workers_[w].outputs.reserve(output_nets_.size());
    for (const auto& name : output_nets_) {
      workers_[w].outputs.push_back(workers_[w].circuit->find_net(name));
    }
  }

  // Variation batches: one collocation grid per distinct cell table
  // (shared by every worker whose clone shares the table, i.e. the
  // CircuitBuilder path pays the corner derivation once per cell), plus a
  // per-worker binder owning the worker-local table copies.
  if (config_.variation.enabled()) {
    config_.variation.validate();
    const core::ModeTableGrid::Spec spec = config_.variation.grid_spec();
    ProcessBinder::GridMap grids;
    for (Worker& w : workers_) {
      ProcessBinder::build_grids(*w.circuit, spec, grids);
    }
    for (Worker& w : workers_) {
      w.binder = std::make_unique<ProcessBinder>(
          *w.circuit, grids, config_.variation.vdd_nominal);
    }
  }
}

BatchResult BatchRunner::run() {
  ensure_workers();
  const std::size_t n_workers = pool_->n_threads();

  const double pulse_hi = config_.pulse_width_hi > 0.0
                              ? config_.pulse_width_hi
                              : 4.0 * config_.trace.mu;
  const double response_hi = config_.response_delay_hi > 0.0
                                 ? config_.response_delay_hi
                                 : config_.trace.mu;

  // Per-run results indexed by run (not worker): the reduction below walks
  // them in run order, which is what makes the aggregate independent of
  // which worker executed which run.
  std::vector<RunStats> per_run(config_.n_runs);
  // Exactly one run matches capture_run, so the slot is written by at most
  // one worker (no synchronization needed beyond the pool's batch barrier).
  std::vector<BatchResult::CapturedTrace> captured;
  pool_->parallel_for(
      config_.n_runs, [&](std::size_t worker, std::size_t run) {
        Worker& w = workers_[worker];
        obs::ScopedSpan obs_span("batch.run", "run",
                                 static_cast<long long>(run), "events", 0);
        // Fresh per-run fault tallies: an armed plan's fire index depends
        // only on this run's own content, not on which worker executes it
        // or how runs interleave (thread-count-invariant fault placement).
        if (util::FaultInjector::armed()) {
          util::FaultInjector::reset_local_hits();
        }
        // The run's content derives from its global index through
        // counter-based streams: splitting or re-basing a batch via
        // first_run_index reproduces per-run content exactly.
        const std::uint64_t index = config_.first_run_index + run;
        RunSpec spec;
        spec.stimulus_seed =
            util::CounterRng(config_.base_seed, index).next_u64();
        if (config_.variation.enabled()) {
          spec.point = config_.variation.sample(config_.base_seed, index);
        }
        try {
          per_run[run] = run_one(*w.circuit, w.outputs, w.arena, w.stim_times,
                                 config_, spec, w.binder.get(), pulse_hi,
                                 response_hi);
          obs_span.set_value1(per_run[run].n_events);
          if (config_.capture_run == static_cast<long>(run)) {
            // Copy out of the arena before this worker's next run resets it.
            for (std::size_t i = 0; i < w.circuit->n_inputs(); ++i) {
              const Circuit::NetId id = w.circuit->input_net(i);
              captured.push_back({w.circuit->net_name(id), w.arena.trace(id)});
            }
            for (const Circuit::NetId id : w.outputs) {
              captured.push_back({w.circuit->net_name(id), w.arena.trace(id)});
            }
          }
        } catch (const std::exception& e) {
          // Isolation backstop for failures outside the engine's no-throw
          // boundary (stimulus generation, accounting): only this run
          // fails; the worker and its arena stay usable.
          per_run[run] = RunStats{};
          per_run[run].diagnostics.status = RunStatus::kFailed;
          per_run[run].diagnostics.error = e.what();
        }
      });

  // Sequential reduction in run order: bit-identical for any thread count.
  BatchResult result;
  result.n_runs = config_.n_runs;
  result.n_threads = n_workers;
  result.events_per_run.reserve(config_.n_runs);
  result.nets.reserve(output_nets_.size());
  for (const auto& name : output_nets_) {
    NetAggregate agg;
    agg.net = name;
    agg.pulse_width = Histogram(0.0, pulse_hi, config_.histogram_bins);
    agg.response_delay = Histogram(0.0, response_hi, config_.histogram_bins);
    result.nets.push_back(std::move(agg));
  }
  result.diagnostics.reserve(config_.n_runs);
  result.critical_delays.reserve(config_.n_runs);
  result.stats.criticality.assign(result.nets.size(), 0);
  std::vector<double> sample;  // critical delays of contributing runs
  sample.reserve(config_.n_runs);
  for (RunStats& stats : per_run) {
    result.total_events += stats.n_events;
    result.events_per_run.push_back(stats.n_events);
    // Observability aggregate, folded in run order like everything else.
    obs::absorb_run_counters(result.metrics, stats.diagnostics.counters);
    result.metrics.observe("sim.events_per_run",
                           static_cast<double>(stats.n_events));
    result.metrics.observe("sim.max_heap_depth",
                           static_cast<double>(stats.max_heap_depth));
    result.diagnostics.push_back(std::move(stats.diagnostics));
    if (result.diagnostics.back().status != RunStatus::kOk) {
      ++result.n_failed;
      result.critical_delays.push_back(-1.0);
      continue;  // no histogram/statistics contribution from a failed run
    }
    result.critical_delays.push_back(stats.critical_delay);
    if (stats.critical_delay >= 0.0) {
      sample.push_back(stats.critical_delay);
      ++result.stats.criticality[static_cast<std::size_t>(
          stats.critical_net)];
    }
    for (std::size_t n = 0; n < result.nets.size(); ++n) {
      result.nets[n].transitions += stats.nets[n].transitions;
      result.nets[n].pulse_width.merge(stats.nets[n].pulse_width);
      result.nets[n].response_delay.merge(stats.nets[n].response_delay);
    }
  }
  result.metrics.add("batch.runs", static_cast<long long>(result.n_runs));
  result.metrics.add("batch.runs_failed",
                     static_cast<long long>(result.n_failed));
  result.metrics.add("batch.events", result.total_events);
  result.captured = std::move(captured);

  // Single-net compatibility view: the first observed net.
  result.total_output_transitions = result.nets.front().transitions;
  result.pulse_width = result.nets.front().pulse_width;
  result.response_delay = result.nets.front().response_delay;

  // Distribution queries over the per-run critical delays. `sample` was
  // collected in run order and is reduced with fixed-order arithmetic, so
  // every statistic is bit-identical for any thread count.
  BatchStats& st = result.stats;
  st.n_samples = sample.size();
  if (!sample.empty()) {
    double sum = 0.0;
    for (const double x : sample) sum += x;
    st.mean = sum / static_cast<double>(sample.size());
    double ss = 0.0;
    for (const double x : sample) ss += (x - st.mean) * (x - st.mean);
    st.stddev = std::sqrt(ss / static_cast<double>(sample.size()));
    std::vector<double> sorted = sample;
    std::sort(sorted.begin(), sorted.end());
    st.min = sorted.front();
    st.max = sorted.back();
    st.quantiles.reserve(config_.quantiles.size());
    for (const double q : config_.quantiles) {
      // Nearest-rank: the ceil(q n)-th order statistic, clamped to the
      // sample range for q outside (0, 1].
      const double rank = std::ceil(q * static_cast<double>(sorted.size()));
      const auto i = static_cast<std::size_t>(std::clamp(
          rank, 1.0, static_cast<double>(sorted.size())));
      st.quantiles.emplace_back(q, sorted[i - 1]);
    }
    if (config_.stat_deadline > 0.0) {
      st.deadline = config_.stat_deadline;
      for (const double x : sample) {
        if (x <= st.deadline) ++st.n_meeting_deadline;
      }
      st.yield = static_cast<double>(st.n_meeting_deadline) /
                 static_cast<double>(st.n_samples);
    }
  } else {
    for (const double q : config_.quantiles) st.quantiles.emplace_back(q, 0.0);
    if (config_.stat_deadline > 0.0) st.deadline = config_.stat_deadline;
  }
  return result;
}

}  // namespace charlie::sim
