#include "sim/batch_runner.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace charlie::sim {

Histogram::Histogram(double lo, double hi, std::size_t n_bins)
    : lo_(lo), hi_(hi), bins_(n_bins, 0) {
  CHARLIE_ASSERT(hi > lo);
  CHARLIE_ASSERT(n_bins >= 1);
}

void Histogram::add(double x) {
  // A default-constructed histogram has no bins; letting the in-range path
  // below run would index an empty vector.
  CHARLIE_ASSERT_MSG(!bins_.empty(), "histogram: add() without a range");
  ++count_;
  sum_ += x;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const auto bin = static_cast<std::size_t>(
      static_cast<double>(bins_.size()) * (x - lo_) / (hi_ - lo_));
  ++bins_[std::min(bin, bins_.size() - 1)];
}

void Histogram::merge(const Histogram& other) {
  CHARLIE_ASSERT(other.lo_ == lo_ && other.hi_ == hi_ &&
                 other.bins_.size() == bins_.size());
  for (std::size_t i = 0; i < bins_.size(); ++i) bins_[i] += other.bins_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  count_ += other.count_;
  sum_ += other.sum_;
}

const NetAggregate& BatchResult::net(const std::string& name) const {
  for (const auto& agg : nets) {
    if (agg.net == name) return agg;
  }
  throw ConfigError("batch result: net \"" + name + "\" was not observed");
}

BatchRunner::BatchRunner(CircuitFactory factory, std::string output_net,
                         BatchConfig config)
    : BatchRunner(std::move(factory),
                  std::vector<std::string>{std::move(output_net)},
                  std::move(config)) {}

BatchRunner::BatchRunner(CircuitFactory factory,
                         std::vector<std::string> output_nets,
                         BatchConfig config)
    : factory_(std::move(factory)),
      output_nets_(std::move(output_nets)),
      config_(std::move(config)) {
  CHARLIE_ASSERT(factory_ != nullptr);
  CHARLIE_ASSERT(config_.n_runs >= 1);
  CHARLIE_ASSERT_MSG(!output_nets_.empty(),
                     "batch runner: at least one observed net");
}

namespace {

struct NetStats {
  long long transitions = 0;
  Histogram pulse_width;
  Histogram response_delay;
};

struct RunStats {
  long n_events = 0;
  RunDiagnostics diagnostics;
  std::vector<NetStats> nets;  // parallel to the observed-net list;
                               // empty when the run did not finish kOk
};

RunStats run_one(Circuit& circuit, const std::vector<Circuit::NetId>& outputs,
                 Circuit::SimResult& arena, std::vector<double>& stim_times,
                 const BatchConfig& config, std::uint64_t seed,
                 double pulse_hi, double response_hi) {
  util::Rng rng(seed);
  const auto stimuli =
      waveform::generate_traces(config.trace, circuit.n_inputs(), rng);
  double t_last = config.trace.t_start;
  for (const auto& trace : stimuli) {
    if (!trace.empty()) t_last = std::max(t_last, trace.transitions().back());
  }
  const double t_end = t_last + config.t_settle;
  // Arena-reusing simulation: the worker's trace storage is reset in place,
  // not reallocated (bit-identical to Circuit::simulate). The budgeted
  // entry point never throws through the engine -- a failure or budget
  // trip comes back as a structured non-kOk result.
  circuit.simulate_into(stimuli, 0.0, t_end, config.budget, arena);
  const Circuit::SimResult& result = arena;

  RunStats stats;
  stats.n_events = result.n_events;
  stats.diagnostics = result.diagnostics;
  // A terminated run contributes its diagnostics and event count but no
  // histogram samples: partial traces would skew the distributions
  // silently.
  if (!result.ok()) return stats;

  // Stimulus transitions, merged and sorted once per run; every observed
  // net's response delays sweep the same sequence.
  stim_times.clear();
  for (const auto& trace : stimuli) {
    stim_times.insert(stim_times.end(), trace.transitions().begin(),
                      trace.transitions().end());
  }
  std::sort(stim_times.begin(), stim_times.end());

  stats.nets.reserve(outputs.size());
  for (const Circuit::NetId output : outputs) {
    NetStats net;
    net.pulse_width = Histogram(0.0, pulse_hi, config.histogram_bins);
    net.response_delay = Histogram(0.0, response_hi, config.histogram_bins);

    const auto& out = result.trace(output);
    net.transitions = static_cast<long long>(out.n_transitions());
    for (std::size_t k = 1; k < out.n_transitions(); ++k) {
      net.pulse_width.add(out.transitions()[k] - out.transitions()[k - 1]);
    }

    // Response delay: output transition time minus the latest stimulus
    // transition at or before it. Both sequences are time-sorted, so one
    // merged sweep suffices.
    std::size_t si = 0;
    for (std::size_t k = 0; k < out.n_transitions(); ++k) {
      const double t = out.transitions()[k];
      while (si + 1 < stim_times.size() && stim_times[si + 1] <= t) ++si;
      if (si < stim_times.size() && stim_times[si] <= t) {
        net.response_delay.add(t - stim_times[si]);
      }
    }
    stats.nets.push_back(std::move(net));
  }
  return stats;
}

}  // namespace

void BatchRunner::ensure_workers() {
  if (pool_ != nullptr) return;
  pool_ = std::make_unique<util::ThreadPool>(config_.n_threads);
  const std::size_t n_workers = pool_->n_threads();

  // One circuit clone per worker, built up front on this thread (the
  // factory need not be thread-safe). Circuit::simulate_into reinitializes
  // all channel state and reuses the worker's trace arena, so a clone
  // serves every run its worker claims, across every run() call.
  workers_.resize(n_workers);
  for (std::size_t w = 0; w < n_workers; ++w) {
    workers_[w].circuit = factory_();
    CHARLIE_ASSERT(workers_[w].circuit != nullptr);
    // Resolved per clone: a factory is not required to assign net ids in
    // the same order on every call.
    workers_[w].outputs.reserve(output_nets_.size());
    for (const auto& name : output_nets_) {
      workers_[w].outputs.push_back(workers_[w].circuit->find_net(name));
    }
  }
}

BatchResult BatchRunner::run() {
  ensure_workers();
  const std::size_t n_workers = pool_->n_threads();

  const double pulse_hi = config_.pulse_width_hi > 0.0
                              ? config_.pulse_width_hi
                              : 4.0 * config_.trace.mu;
  const double response_hi = config_.response_delay_hi > 0.0
                                 ? config_.response_delay_hi
                                 : config_.trace.mu;

  // Per-run results indexed by run (not worker): the reduction below walks
  // them in run order, which is what makes the aggregate independent of
  // which worker executed which run.
  std::vector<RunStats> per_run(config_.n_runs);
  pool_->parallel_for(
      config_.n_runs, [&](std::size_t worker, std::size_t run) {
        Worker& w = workers_[worker];
        // Fresh per-run fault tallies: an armed plan's fire index depends
        // only on this run's own content, not on which worker executes it
        // or how runs interleave (thread-count-invariant fault placement).
        if (util::FaultInjector::armed()) {
          util::FaultInjector::reset_local_hits();
        }
        try {
          per_run[run] = run_one(*w.circuit, w.outputs, w.arena, w.stim_times,
                                 config_, config_.base_seed + run, pulse_hi,
                                 response_hi);
        } catch (const std::exception& e) {
          // Isolation backstop for failures outside the engine's no-throw
          // boundary (stimulus generation, accounting): only this run
          // fails; the worker and its arena stay usable.
          per_run[run] = RunStats{};
          per_run[run].diagnostics.status = RunStatus::kFailed;
          per_run[run].diagnostics.error = e.what();
        }
      });

  // Sequential reduction in run order: bit-identical for any thread count.
  BatchResult result;
  result.n_runs = config_.n_runs;
  result.n_threads = n_workers;
  result.events_per_run.reserve(config_.n_runs);
  result.nets.reserve(output_nets_.size());
  for (const auto& name : output_nets_) {
    NetAggregate agg;
    agg.net = name;
    agg.pulse_width = Histogram(0.0, pulse_hi, config_.histogram_bins);
    agg.response_delay = Histogram(0.0, response_hi, config_.histogram_bins);
    result.nets.push_back(std::move(agg));
  }
  result.diagnostics.reserve(config_.n_runs);
  for (RunStats& stats : per_run) {
    result.total_events += stats.n_events;
    result.events_per_run.push_back(stats.n_events);
    result.diagnostics.push_back(std::move(stats.diagnostics));
    if (result.diagnostics.back().status != RunStatus::kOk) {
      ++result.n_failed;
      continue;  // no histogram contribution from a terminated run
    }
    for (std::size_t n = 0; n < result.nets.size(); ++n) {
      result.nets[n].transitions += stats.nets[n].transitions;
      result.nets[n].pulse_width.merge(stats.nets[n].pulse_width);
      result.nets[n].response_delay.merge(stats.nets[n].response_delay);
    }
  }
  // Single-net compatibility view: the first observed net.
  result.total_output_transitions = result.nets.front().transitions;
  result.pulse_width = result.nets.front().pulse_width;
  result.response_delay = result.nets.front().response_delay;
  return result;
}

}  // namespace charlie::sim
