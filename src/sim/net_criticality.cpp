#include "sim/net_criticality.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace charlie::sim {

std::vector<NetCriticality> rank_net_criticality(
    const std::vector<std::string>& nets,
    const std::vector<std::uint64_t>& counts) {
  CHARLIE_ASSERT_MSG(nets.size() == counts.size(),
                     "net criticality: counts not parallel to nets");
  std::vector<std::size_t> index;
  index.reserve(nets.size());
  for (std::size_t n = 0; n < nets.size(); ++n) {
    if (counts[n] > 0) index.push_back(n);
  }
  std::stable_sort(index.begin(), index.end(),
                   [&](std::size_t a, std::size_t b) {
                     return counts[a] > counts[b];
                   });
  std::vector<NetCriticality> ranked;
  ranked.reserve(index.size());
  for (const std::size_t n : index) {
    ranked.push_back({nets[n], counts[n]});
  }
  return ranked;
}

}  // namespace charlie::sim
