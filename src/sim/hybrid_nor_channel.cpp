#include "sim/hybrid_nor_channel.hpp"

#include <algorithm>
#include <cmath>

#include "fit/brent_root.hpp"
#include "util/error.hpp"

namespace charlie::sim {

HybridNorChannel::HybridNorChannel(const core::NorParams& params)
    : params_(params) {
  params_.validate();
  double slowest = 0.0;
  for (core::Mode m : core::kAllModes) {
    const ode::Eigen2 eig = core::mode_ode(m, params_).eigen();
    for (double lambda : {eig.lambda1, eig.lambda2}) {
      if (lambda < 0.0) slowest = std::max(slowest, 1.0 / -lambda);
    }
  }
  horizon_ = 60.0 * slowest;
}

void HybridNorChannel::initialize(double t0, const std::vector<bool>& values) {
  CHARLIE_ASSERT(values.size() == 2);
  in_a_ = values[0];
  in_b_ = values[1];
  mode_ = core::mode_from_inputs(in_a_, in_b_);
  ode_ = core::mode_ode(mode_, params_);
  t_ref_ = t0;
  // Steady state; the isolated V_N of (1,1) defaults to the paper's GND
  // worst case.
  x_ref_ = core::mode_steady_state(mode_, params_, 0.0);
  output_ = core::mode_output(mode_);
  refresh_scalar();
  committed_.clear();
  live_.reset();
}

std::optional<PendingEvent> HybridNorChannel::pending() const {
  if (!committed_.empty()) return committed_.front();
  return live_;
}

ode::Vec2 HybridNorChannel::state_at(double t) const {
  CHARLIE_ASSERT(t >= t_ref_ - 1e-18);
  if (t <= t_ref_) return x_ref_;
  return ode_.state_at(t - t_ref_, x_ref_);
}

void HybridNorChannel::refresh_scalar() {
  scalar_ = ScalarVo{};
  const auto& eig = ode_.eigen();
  const ode::Mat2& a = ode_.a();
  if (eig.kind == ode::EigenKind::kRealDistinct) {
    // Spectral projectors: P1 = (A - l2 I)/(l1 - l2), P2 = I - P1.
    const double l1 = eig.lambda1;
    const double l2 = eig.lambda2;
    // Deviation from the particular solution. For singular A (mode (1,1))
    // one eigenvalue is 0 and g = 0, so the homogeneous form with xp = 0
    // is exact; otherwise xp is the equilibrium.
    ode::Vec2 xp{0.0, 0.0};
    double d = 0.0;
    if (ode_.has_equilibrium()) {
      xp = ode_.equilibrium();
      d = xp.y;
    }
    const ode::Vec2 dev = x_ref_ - xp;
    const double inv = 1.0 / (l1 - l2);
    const ode::Mat2 p1 =
        (a - l2 * ode::Mat2::identity()) * inv;
    const ode::Vec2 c1 = p1 * dev;
    const ode::Vec2 c2 = dev - c1;
    scalar_.valid = true;
    scalar_.d = d;
    scalar_.a1 = c1.y;
    scalar_.l1 = l1;
    scalar_.a2 = c2.y;
    scalar_.l2 = l2;
    // A zero eigenvalue folds its (constant) component into d.
    if (l1 == 0.0) {
      scalar_.d += scalar_.a1;
      scalar_.a1 = 0.0;
    }
    if (l2 == 0.0) {
      scalar_.d += scalar_.a2;
      scalar_.a2 = 0.0;
    }
  } else if (eig.kind == ode::EigenKind::kRealRepeated) {
    // A = lambda I: V_O decays independently.
    ode::Vec2 xp{0.0, 0.0};
    double d = 0.0;
    if (ode_.has_equilibrium()) {
      xp = ode_.equilibrium();
      d = xp.y;
    }
    scalar_.valid = true;
    scalar_.d = d;
    scalar_.a1 = 0.0;
    scalar_.l1 = 0.0;
    scalar_.a2 = x_ref_.y - xp.y;
    scalar_.l2 = eig.lambda1;
  }
  // Defective / complex: leave invalid and use the generic scan.
}

double HybridNorChannel::vo_scalar(double tau) const {
  return scalar_.d + scalar_.a1 * std::exp(scalar_.l1 * tau) +
         scalar_.a2 * std::exp(scalar_.l2 * tau);
}

std::optional<PendingEvent> HybridNorChannel::next_crossing(
    double t_from) const {
  if (!scalar_.valid) return next_crossing_scan(t_from);

  const double vth = params_.vth();
  auto f = [&](double tau) { return vo_scalar(tau) - vth; };
  const double tau0 = std::max(t_from - t_ref_, 0.0);
  const double tau_end = tau0 + horizon_;
  const double f0 = f(tau0);
  const double fd = scalar_.d - vth;  // asymptotic value (l1, l2 <= 0)

  auto found = [&](double tau_lo, double tau_hi,
                   bool rising) -> std::optional<PendingEvent> {
    const double tau_c = fit::brent_root(f, tau_lo, tau_hi);
    return PendingEvent{t_ref_ + tau_c, rising};
  };

  // Interior extremum of f: f'(tau*) = 0 with
  // a1 l1 e^{l1 tau} = -a2 l2 e^{l2 tau}.
  double tau_star = -1.0;
  const double p = scalar_.a1 * scalar_.l1;
  const double q = scalar_.a2 * scalar_.l2;
  if (p != 0.0 && q != 0.0 && scalar_.l1 != scalar_.l2 && -q / p > 0.0) {
    tau_star = std::log(-q / p) / (scalar_.l1 - scalar_.l2);
  }

  if (tau_star > tau0 && tau_star < tau_end) {
    const double f_star = f(tau_star);
    if (f0 != 0.0 && f0 * f_star < 0.0) {
      return found(tau0, tau_star, f_star > 0.0);
    }
    if (f_star == 0.0) {
      // Tangent touch: not a crossing; continue past it.
    }
    // No crossing before the extremum; check the tail beyond it.
    if (f_star * fd < 0.0) {
      // The tail decays monotonically from f_star toward fd: bracket by
      // expansion.
      const auto bracket = fit::expand_bracket_right(
          f, tau_star, tau_star + 1e-12, tau_end);
      if (bracket.has_value()) {
        return found(bracket->first, bracket->second, fd > 0.0);
      }
      return std::nullopt;
    }
    return std::nullopt;
  }

  // No interior extremum after tau0: f is monotone toward fd.
  if (f0 != 0.0 && f0 * fd < 0.0) {
    const auto bracket =
        fit::expand_bracket_right(f, tau0, tau0 + 1e-12, tau_end);
    if (bracket.has_value()) {
      return found(bracket->first, bracket->second, fd > 0.0);
    }
  }
  return std::nullopt;
}

std::optional<PendingEvent> HybridNorChannel::next_crossing_scan(
    double t_from) const {
  const double vth = params_.vth();
  auto f = [&](double t) { return state_at(t).y - vth; };

  // Scan at a fraction of the fastest time constant of the current mode,
  // but never more than ~4k evaluations per search window.
  const auto& eig = ode_.eigen();
  const double fastest =
      std::max(std::fabs(eig.lambda1), std::fabs(eig.lambda2));
  double step = fastest > 0.0 ? 0.125 / fastest : horizon_ / 64.0;
  step = std::max(step, horizon_ / 4096.0);

  double a = t_from;
  double fa = f(a);
  const double t_end = t_from + horizon_;
  while (a < t_end) {
    const double b = std::min(a + step, t_end);
    const double fb = f(b);
    if (fa != 0.0 && fa * fb <= 0.0) {
      const double tc = fb == 0.0 ? b : fit::brent_root(f, a, b);
      return PendingEvent{tc, fb > 0.0 || (fb == 0.0 && fa < 0.0)};
    }
    a = b;
    fa = fb;
  }
  return std::nullopt;
}

void HybridNorChannel::on_input(double t, int port, bool value) {
  CHARLIE_ASSERT(port == 0 || port == 1);
  const double te = t + params_.delta_min;  // pure delay defers the switch
  CHARLIE_ASSERT_MSG(te >= t_ref_ - 1e-18,
                     "hybrid channel: out-of-order input");

  // A live crossing earlier than the effective switch time has physically
  // happened already -- the new input cannot cancel it (the pure delay
  // shifts the *effect* of the input past it). Promote it to the committed
  // queue; only crossings after te are recomputed.
  double search_from = te;
  if (live_.has_value() && live_->t <= te) {
    committed_.push_back(*live_);
    // Multiple same-mode crossings before te would have been discovered
    // one at a time via on_fire; find any others up to te now.
    double from = live_->t + 1e-18;
    live_.reset();
    while (true) {
      const auto extra = next_crossing(from);
      if (!extra.has_value() || extra->t > te) break;
      committed_.push_back(*extra);
      from = extra->t + 1e-18;
    }
  } else {
    live_.reset();
  }

  // Evolve the analog state to the switch instant, then change mode.
  x_ref_ = state_at(te);
  t_ref_ = te;
  if (port == 0) {
    in_a_ = value;
  } else {
    in_b_ = value;
  }
  mode_ = core::mode_from_inputs(in_a_, in_b_);
  ode_ = core::mode_ode(mode_, params_);
  refresh_scalar();

  live_ = next_crossing(search_from);
}

void HybridNorChannel::on_fire(const PendingEvent& fired) {
  output_ = fired.value;
  if (!committed_.empty()) {
    committed_.pop_front();
    return;
  }
  CHARLIE_ASSERT(live_.has_value());
  // The waveform may cross again within the same mode (non-monotone V_O);
  // keep looking just past the crossing.
  live_ = next_crossing(fired.t + 1e-18);
}

}  // namespace charlie::sim
