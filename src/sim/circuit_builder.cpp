#include "sim/circuit_builder.hpp"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/wire_channel.hpp"
#include "util/error.hpp"

namespace charlie::sim {

namespace {

[[noreturn]] void build_error(const cell::NetlistInstance& inst,
                              const std::string& why) {
  std::string where = inst.cell + "(" + inst.output + ", ...)";
  if (inst.line > 0) where += " (line " + std::to_string(inst.line) + ")";
  throw ConfigError("circuit builder: " + where + ": " + why);
}

[[noreturn]] void wire_error(const cell::NetlistWire& wire,
                             const std::string& why) {
  std::string where = "WIRE(" + wire.output + ", " + wire.input + ")";
  if (wire.line > 0) where += " (line " + std::to_string(wire.line) + ")";
  throw ConfigError("circuit builder: " + where + ": " + why);
}

wire::WireParams wire_params_of(const cell::NetlistWire& wire) {
  wire::WireParams params;
  params.r_total = wire.r_total;
  params.c_total = wire.c_total;
  params.n_sections = wire.sections;
  params.r_drive = wire.r_drive;
  params.c_load = wire.c_load;
  params.t_drive = wire.t_drive;
  params.vdd = wire.vdd;
  return params;
}

}  // namespace

CircuitBuilder::CircuitBuilder(
    std::shared_ptr<const cell::CellLibrary> library)
    : library_(std::move(library)),
      wire_cache_(std::make_shared<WireTableCache>()) {
  CHARLIE_ASSERT(library_ != nullptr);
}

CircuitBuilder::CircuitBuilder(const cell::CellLibrary& library)
    : library_(std::make_shared<cell::CellLibrary>(library)),
      wire_cache_(std::make_shared<WireTableCache>()) {}

std::size_t CircuitBuilder::n_wire_tables() const {
  std::lock_guard<std::mutex> lock(wire_cache_->mutex);
  return wire_cache_->tables.size();
}

std::shared_ptr<const wire::WireModeTables> CircuitBuilder::wire_tables_for(
    const cell::NetlistWire& wire) const {
  const wire::WireParams params = wire_params_of(wire);
  const std::string key = params.fingerprint();
  std::lock_guard<std::mutex> lock(wire_cache_->mutex);
  auto it = wire_cache_->tables.find(key);
  if (it == wire_cache_->tables.end()) {
    it = wire_cache_->tables.emplace(key, wire::WireModeTables::make(params))
             .first;
  }
  return it->second;
}

std::unique_ptr<Circuit> CircuitBuilder::build(
    const cell::NetlistDesc& desc) const {
  // --- semantic validation -------------------------------------------------
  // Unified element list: gates first, wires after, so one driver map and
  // one topological pass cover both. Element e >= n_gates is wire
  // e - n_gates.
  const std::size_t n_gates = desc.instances.size();
  const std::size_t n_elems = n_gates + desc.wires.size();
  auto is_wire = [&](std::size_t e) { return e >= n_gates; };
  auto wire_of = [&](std::size_t e) -> const cell::NetlistWire& {
    return desc.wires[e - n_gates];
  };

  // Net name -> driver: -1 for primary inputs, element index otherwise.
  std::unordered_map<std::string, int> driver;
  for (const auto& name : desc.inputs) {
    if (!driver.emplace(name, -1).second) {
      throw ConfigError("circuit builder: primary input \"" + name +
                        "\" declared twice");
    }
  }
  std::vector<const cell::CellSpec*> specs(n_gates, nullptr);
  for (std::size_t i = 0; i < n_gates; ++i) {
    const auto& inst = desc.instances[i];
    const cell::CellSpec* spec = library_->find(inst.cell);
    if (spec == nullptr) {
      build_error(inst, "unknown cell \"" + inst.cell + "\"");
    }
    specs[i] = spec;
    if (static_cast<int>(inst.inputs.size()) != spec->arity) {
      build_error(inst, "cell " + spec->name + " takes " +
                            std::to_string(spec->arity) + " inputs, got " +
                            std::to_string(inst.inputs.size()));
    }
    if (!driver.emplace(inst.output, static_cast<int>(i)).second) {
      build_error(inst, "net \"" + inst.output + "\" is defined twice");
    }
  }
  for (std::size_t w = 0; w < desc.wires.size(); ++w) {
    const auto& wire = desc.wires[w];
    try {
      wire_params_of(wire).validate();
    } catch (const ConfigError& e) {
      wire_error(wire, e.what());
    }
    if (!driver.emplace(wire.output, static_cast<int>(n_gates + w)).second) {
      wire_error(wire, "net \"" + wire.output + "\" is defined twice");
    }
  }
  for (const auto& inst : desc.instances) {
    for (const auto& input : inst.inputs) {
      if (driver.find(input) == driver.end()) {
        build_error(inst, "input net \"" + input +
                              "\" is driven by no gate, wire, or primary "
                              "input");
      }
    }
  }
  for (const auto& wire : desc.wires) {
    if (driver.find(wire.input) == driver.end()) {
      wire_error(wire, "input net \"" + wire.input +
                           "\" is driven by no gate, wire, or primary "
                           "input");
    }
  }
  for (const auto& name : desc.outputs) {
    if (driver.find(name) == driver.end()) {
      throw ConfigError("circuit builder: declared primary output \"" + name +
                        "\" is driven by no gate, wire, or primary input");
    }
  }

  // --- topological order (Kahn) -------------------------------------------
  // The engine appends gates after their input nets exist, so elements are
  // emitted in dependency order regardless of netlist order; leftover
  // elements sit on a combinational cycle.
  auto element_inputs = [&](std::size_t e, auto&& visit) {
    if (is_wire(e)) {
      visit(wire_of(e).input);
    } else {
      for (const auto& input : desc.instances[e].inputs) visit(input);
    }
  };
  std::vector<int> missing_inputs(n_elems, 0);
  std::unordered_map<int, std::vector<int>> dependents;  // driver -> users
  std::vector<int> ready;
  for (std::size_t e = 0; e < n_elems; ++e) {
    element_inputs(e, [&](const std::string& input) {
      const int d = driver.at(input);
      if (d >= 0) {
        ++missing_inputs[e];
        dependents[d].push_back(static_cast<int>(e));
      }
    });
    if (missing_inputs[e] == 0) ready.push_back(static_cast<int>(e));
  }
  std::vector<int> order;
  order.reserve(n_elems);
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const int e = ready[head];
    order.push_back(e);
    const auto it = dependents.find(e);
    if (it == dependents.end()) continue;
    for (const int user : it->second) {
      if (--missing_inputs[user] == 0) ready.push_back(user);
    }
  }
  if (order.size() != n_elems) {
    for (std::size_t e = 0; e < n_elems; ++e) {
      if (missing_inputs[e] > 0) {
        if (is_wire(e)) {
          wire_error(wire_of(e), "combinational cycle through net \"" +
                                     wire_of(e).output + "\"");
        }
        build_error(desc.instances[e],
                    "combinational cycle through net \"" +
                        desc.instances[e].output + "\"");
      }
    }
  }

  // --- emission ------------------------------------------------------------
  auto circuit = std::make_unique<Circuit>();
  for (const auto& name : desc.inputs) circuit->add_input(name);
  for (const int e : order) {
    if (is_wire(static_cast<std::size_t>(e))) {
      const auto& wire = wire_of(static_cast<std::size_t>(e));
      circuit->add_gate(
          GateKind::kBuf, wire.output, {circuit->find_net(wire.input)},
          std::make_unique<WireChannel>(wire_tables_for(wire)));
      continue;
    }
    const auto& inst = desc.instances[static_cast<std::size_t>(e)];
    const cell::CellSpec& spec = *specs[static_cast<std::size_t>(e)];
    std::vector<Circuit::NetId> inputs;
    inputs.reserve(inst.inputs.size());
    for (const auto& input : inst.inputs) {
      inputs.push_back(circuit->find_net(input));
    }
    if (spec.hybrid) {
      circuit->add_mis_gate(spec.kind, inst.output, std::move(inputs),
                            spec.make_mis_channel());
    } else {
      circuit->add_gate(spec.kind, inst.output, std::move(inputs),
                        spec.make_sis_channel());
    }
  }
  return circuit;
}

std::unique_ptr<Circuit> CircuitBuilder::build_text(
    const std::string& netlist_text) const {
  return build(cell::parse_netlist(netlist_text));
}

std::unique_ptr<Circuit> CircuitBuilder::build_file(
    const std::string& path) const {
  return build(cell::read_netlist_file(path));
}

}  // namespace charlie::sim
