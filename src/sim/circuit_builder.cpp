#include "sim/circuit_builder.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/wire_channel.hpp"
#include "util/error.hpp"

namespace charlie::sim {

namespace {

[[noreturn]] void build_error(const cell::NetlistInstance& inst,
                              const std::string& why) {
  std::string where = inst.cell + "(" + inst.output + ", ...)";
  if (inst.line > 0) where += " (line " + std::to_string(inst.line) + ")";
  throw ConfigError("circuit builder: " + where + ": " + why);
}

[[noreturn]] void wire_error(const cell::NetlistWire& wire,
                             const std::string& why) {
  std::string where = "WIRE(" + wire.output + ", " + wire.input + ")";
  if (wire.line > 0) where += " (line " + std::to_string(wire.line) + ")";
  throw ConfigError("circuit builder: " + where + ": " + why);
}

wire::WireParams wire_params_of(const cell::NetlistWire& wire) {
  wire::WireParams params;
  params.r_total = wire.r_total;
  params.c_total = wire.c_total;
  params.n_sections = wire.sections;
  params.r_drive = wire.r_drive;
  params.c_load = wire.c_load;
  params.t_drive = wire.t_drive;
  params.vdd = wire.vdd;
  return params;
}

// Unified element indexing (gates first, wires after) lives on
// NetlistTopology so the sta layer walks netlists the same way.
bool is_wire(const cell::NetlistDesc& desc, std::size_t e) {
  return NetlistTopology::is_wire(desc, e);
}

const cell::NetlistWire& wire_of(const cell::NetlistDesc& desc,
                                 std::size_t e) {
  return NetlistTopology::wire_of(desc, e);
}

const std::string& output_of(const cell::NetlistDesc& desc, std::size_t e) {
  return NetlistTopology::output_of(desc, e);
}

template <typename Visit>
void for_each_input(const cell::NetlistDesc& desc, std::size_t e,
                    Visit&& visit) {
  NetlistTopology::for_each_input(desc, e, std::forward<Visit>(visit));
}

NetlistTopology prepare_netlist(const cell::NetlistDesc& desc,
                                const cell::CellLibrary& library) {
  // --- semantic validation -------------------------------------------------
  const std::size_t n_gates = desc.instances.size();
  const std::size_t n_elems = n_gates + desc.wires.size();

  NetlistTopology prep;
  for (const auto& name : desc.inputs) {
    if (!prep.driver.emplace(name, -1).second) {
      throw ConfigError("circuit builder: primary input \"" + name +
                        "\" declared twice");
    }
  }
  prep.specs.assign(n_gates, nullptr);
  for (std::size_t i = 0; i < n_gates; ++i) {
    const auto& inst = desc.instances[i];
    const cell::CellSpec* spec = library.find(inst.cell);
    if (spec == nullptr) {
      build_error(inst, "unknown cell \"" + inst.cell + "\"");
    }
    prep.specs[i] = spec;
    if (static_cast<int>(inst.inputs.size()) != spec->arity) {
      build_error(inst, "cell " + spec->name + " takes " +
                            std::to_string(spec->arity) + " inputs, got " +
                            std::to_string(inst.inputs.size()));
    }
    if (!prep.driver.emplace(inst.output, static_cast<int>(i)).second) {
      build_error(inst, "net \"" + inst.output + "\" is defined twice");
    }
  }
  for (std::size_t w = 0; w < desc.wires.size(); ++w) {
    const auto& wire = desc.wires[w];
    try {
      wire_params_of(wire).validate();
    } catch (const ConfigError& e) {
      wire_error(wire, e.what());
    }
    if (!prep.driver.emplace(wire.output, static_cast<int>(n_gates + w))
             .second) {
      wire_error(wire, "net \"" + wire.output + "\" is defined twice");
    }
  }
  for (const auto& inst : desc.instances) {
    for (const auto& input : inst.inputs) {
      if (prep.driver.find(input) == prep.driver.end()) {
        build_error(inst, "input net \"" + input +
                              "\" is driven by no gate, wire, or primary "
                              "input");
      }
    }
  }
  for (const auto& wire : desc.wires) {
    if (prep.driver.find(wire.input) == prep.driver.end()) {
      wire_error(wire, "input net \"" + wire.input +
                           "\" is driven by no gate, wire, or primary "
                           "input");
    }
  }
  for (const auto& name : desc.outputs) {
    if (prep.driver.find(name) == prep.driver.end()) {
      throw ConfigError("circuit builder: declared primary output \"" + name +
                        "\" is driven by no gate, wire, or primary input");
    }
  }

  // --- topological order (Kahn) -------------------------------------------
  // The engine appends gates after their input nets exist, so elements are
  // emitted in dependency order regardless of netlist order; leftover
  // elements sit on a combinational cycle.
  std::vector<int> missing_inputs(n_elems, 0);
  std::unordered_map<int, std::vector<int>> dependents;  // driver -> users
  std::vector<int> ready;
  for (std::size_t e = 0; e < n_elems; ++e) {
    for_each_input(desc, e, [&](const std::string& input) {
      const int d = prep.driver.at(input);
      if (d >= 0) {
        ++missing_inputs[e];
        dependents[d].push_back(static_cast<int>(e));
      }
    });
    if (missing_inputs[e] == 0) ready.push_back(static_cast<int>(e));
  }
  prep.order.reserve(n_elems);
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const int e = ready[head];
    prep.order.push_back(e);
    const auto it = dependents.find(e);
    if (it == dependents.end()) continue;
    for (const int user : it->second) {
      if (--missing_inputs[user] == 0) ready.push_back(user);
    }
  }
  if (prep.order.size() != n_elems) {
    for (std::size_t e = 0; e < n_elems; ++e) {
      if (missing_inputs[e] > 0) {
        if (is_wire(desc, e)) {
          wire_error(wire_of(desc, e), "combinational cycle through net \"" +
                                           wire_of(desc, e).output + "\"");
        }
        build_error(desc.instances[e],
                    "combinational cycle through net \"" +
                        desc.instances[e].output + "\"");
      }
    }
  }
  return prep;
}

}  // namespace

CircuitBuilder::CircuitBuilder(
    std::shared_ptr<const cell::CellLibrary> library)
    : library_(std::move(library)),
      wire_cache_(std::make_shared<WireTableCache>()) {
  CHARLIE_ASSERT(library_ != nullptr);
}

CircuitBuilder::CircuitBuilder(const cell::CellLibrary& library)
    : library_(std::make_shared<cell::CellLibrary>(library)),
      wire_cache_(std::make_shared<WireTableCache>()) {}

NetlistTopology CircuitBuilder::analyze_topology(
    const cell::NetlistDesc& desc) const {
  return prepare_netlist(desc, *library_);
}

std::size_t CircuitBuilder::n_wire_tables() const {
  std::lock_guard<std::mutex> lock(wire_cache_->mutex);
  return wire_cache_->tables.size();
}

std::shared_ptr<const wire::WireModeTables> CircuitBuilder::wire_tables_for(
    const cell::NetlistWire& wire) const {
  const wire::WireParams params = wire_params_of(wire);
  const std::string key = params.fingerprint();
  std::lock_guard<std::mutex> lock(wire_cache_->mutex);
  auto it = wire_cache_->tables.find(key);
  if (it == wire_cache_->tables.end()) {
    it = wire_cache_->tables.emplace(key, wire::WireModeTables::make(params))
             .first;
  }
  return it->second;
}

void CircuitBuilder::emit_element(Circuit& circuit,
                                  const cell::NetlistDesc& desc,
                                  const std::vector<const cell::CellSpec*>&
                                      specs,
                                  std::size_t e) const {
  if (is_wire(desc, e)) {
    const auto& wire = wire_of(desc, e);
    circuit.add_gate(GateKind::kBuf, wire.output,
                     {circuit.find_net(wire.input)},
                     std::make_unique<WireChannel>(wire_tables_for(wire)));
    return;
  }
  const auto& inst = desc.instances[e];
  const cell::CellSpec& spec = *specs[e];
  std::vector<Circuit::NetId> inputs;
  inputs.reserve(inst.inputs.size());
  for (const auto& input : inst.inputs) {
    inputs.push_back(circuit.find_net(input));
  }
  if (spec.hybrid) {
    circuit.add_mis_gate(spec.kind, inst.output, std::move(inputs),
                         spec.make_mis_channel());
  } else {
    circuit.add_gate(spec.kind, inst.output, std::move(inputs),
                     spec.make_sis_channel());
  }
}

std::unique_ptr<Circuit> CircuitBuilder::build(
    const cell::NetlistDesc& desc) const {
  const NetlistTopology prep = prepare_netlist(desc, *library_);
  auto circuit = std::make_unique<Circuit>();
  for (const auto& name : desc.inputs) circuit->add_input(name);
  for (const int e : prep.order) {
    emit_element(*circuit, desc, prep.specs, static_cast<std::size_t>(e));
  }
  return circuit;
}

std::unique_ptr<ShardedCircuit> CircuitBuilder::build_sharded(
    const cell::NetlistDesc& desc, std::size_t n_shards) const {
  const NetlistTopology prep = prepare_netlist(desc, *library_);
  const std::size_t n_elems = prep.order.size();
  const std::size_t n_parts = std::clamp<std::size_t>(
      n_shards, 1, std::max<std::size_t>(n_elems, 1));

  // --- cut placement -------------------------------------------------------
  // A cut at topo position p separates order[0..p) from order[p..). Its
  // cost is the number of nets live across it: nets produced before p whose
  // last consumer sits at or after p. Costs for every p come from one
  // difference array over the net live ranges; each of the K-1 cuts then
  // takes the cheapest position within a balance slack around its ideal
  // (equal-element) position.
  std::vector<int> pos(n_elems, 0);
  for (std::size_t i = 0; i < n_elems; ++i) {
    pos[static_cast<std::size_t>(prep.order[i])] = static_cast<int>(i);
  }
  std::vector<int> last_use(n_elems, -1);
  for (std::size_t e = 0; e < n_elems; ++e) {
    for_each_input(desc, e, [&](const std::string& input) {
      const int d = prep.driver.at(input);
      if (d >= 0) {
        last_use[static_cast<std::size_t>(d)] = std::max(
            last_use[static_cast<std::size_t>(d)], pos[e]);
      }
    });
  }
  std::vector<int> live(n_elems + 1, 0);
  for (std::size_t d = 0; d < n_elems; ++d) {
    if (last_use[d] < 0) continue;  // output consumed by no element
    ++live[static_cast<std::size_t>(pos[d]) + 1];
    --live[static_cast<std::size_t>(last_use[d]) + 1];
  }
  for (std::size_t p = 1; p <= n_elems; ++p) live[p] += live[p - 1];

  std::vector<std::size_t> cut(n_parts + 1, 0);
  cut[n_parts] = n_elems;
  const std::size_t slack =
      std::max<std::size_t>(1, n_elems / (4 * n_parts));
  for (std::size_t i = 1; i < n_parts; ++i) {
    const std::size_t ideal = i * n_elems / n_parts;
    // Every shard keeps at least one element: cut i stays in
    // [cut[i-1] + 1, n_elems - (n_parts - i)].
    const std::size_t floor_p = cut[i - 1] + 1;
    const std::size_t ceil_p = n_elems - (n_parts - i);
    std::size_t lo = std::max(floor_p, ideal > slack ? ideal - slack : 1);
    std::size_t hi = std::min(ceil_p, ideal + slack);
    if (lo > hi) {
      lo = hi = std::clamp(ideal, floor_p, ceil_p);
    }
    std::size_t best = lo;
    for (std::size_t p = lo; p <= hi; ++p) {
      const auto distance = [&](std::size_t q) {
        return q > ideal ? q - ideal : ideal - q;
      };
      if (live[p] < live[best] ||
          (live[p] == live[best] && distance(p) < distance(best))) {
        best = p;
      }
    }
    cut[i] = best;
  }

  std::vector<int> shard_of(n_elems, 0);
  for (std::size_t s = 0; s < n_parts; ++s) {
    for (std::size_t p = cut[s]; p < cut[s + 1]; ++p) {
      shard_of[static_cast<std::size_t>(prep.order[p])] =
          static_cast<int>(s);
    }
  }

  // --- per-shard emission --------------------------------------------------
  std::unordered_map<std::string, std::size_t> input_index;
  for (std::size_t i = 0; i < desc.inputs.size(); ++i) {
    input_index.emplace(desc.inputs[i], i);
  }

  std::vector<ShardedCircuit::Shard> shards(n_parts);
  std::vector<ShardedCircuit::BoundaryEdge> edges;
  std::unordered_map<std::string, std::pair<std::size_t, Circuit::NetId>>
      net_home;
  for (std::size_t s = 0; s < n_parts; ++s) {
    // External nets of this shard: global primary inputs it reads (declared
    // in global stimulus order) and boundary nets from earlier shards
    // (declared in producer topo order) -- both deterministic.
    std::unordered_set<std::string> seen;
    std::vector<std::size_t> primaries;  // global input indices
    std::vector<int> producers;          // upstream element indices
    for (std::size_t p = cut[s]; p < cut[s + 1]; ++p) {
      const auto e = static_cast<std::size_t>(prep.order[p]);
      for_each_input(desc, e, [&](const std::string& input) {
        if (!seen.insert(input).second) return;
        const int d = prep.driver.at(input);
        if (d < 0) {
          primaries.push_back(input_index.at(input));
        } else if (shard_of[static_cast<std::size_t>(d)] !=
                   static_cast<int>(s)) {
          producers.push_back(d);
        }
      });
    }
    std::sort(primaries.begin(), primaries.end());
    std::sort(producers.begin(), producers.end(), [&](int a, int b) {
      return pos[static_cast<std::size_t>(a)] <
             pos[static_cast<std::size_t>(b)];
    });

    auto circuit = std::make_unique<Circuit>();
    std::vector<int> binding;
    binding.reserve(primaries.size() + producers.size());
    for (const std::size_t g : primaries) {
      circuit->add_input(desc.inputs[g]);
      binding.push_back(static_cast<int>(g));
    }
    for (const int d : producers) {
      const std::string& net = output_of(desc, static_cast<std::size_t>(d));
      const std::size_t from_shard =
          static_cast<std::size_t>(shard_of[static_cast<std::size_t>(d)]);
      ShardedCircuit::BoundaryEdge edge;
      edge.from_shard = from_shard;
      edge.from_net = shards[from_shard].circuit->find_net(net);
      edge.to_shard = s;
      edge.to_input = circuit->n_inputs();
      circuit->add_input(net);
      binding.push_back(-1);
      edges.push_back(edge);
    }
    for (std::size_t p = cut[s]; p < cut[s + 1]; ++p) {
      const auto e = static_cast<std::size_t>(prep.order[p]);
      emit_element(*circuit, desc, prep.specs, e);
      const std::string& net = output_of(desc, e);
      net_home.emplace(net, std::make_pair(s, circuit->find_net(net)));
    }
    shards[s].circuit = std::move(circuit);
    shards[s].input_binding = std::move(binding);
  }

  return std::make_unique<ShardedCircuit>(std::move(shards), std::move(edges),
                                          desc.inputs, std::move(net_home));
}

std::unique_ptr<Circuit> CircuitBuilder::build_text(
    const std::string& netlist_text) const {
  return build(cell::parse_netlist(netlist_text));
}

std::unique_ptr<Circuit> CircuitBuilder::build_file(
    const std::string& path) const {
  return build(cell::read_netlist_file(path));
}

}  // namespace charlie::sim
