#include "sim/circuit_builder.hpp"

#include <unordered_map>
#include <vector>

#include "util/error.hpp"

namespace charlie::sim {

namespace {

[[noreturn]] void build_error(const cell::NetlistInstance& inst,
                              const std::string& why) {
  std::string where = inst.cell + "(" + inst.output + ", ...)";
  if (inst.line > 0) where += " (line " + std::to_string(inst.line) + ")";
  throw ConfigError("circuit builder: " + where + ": " + why);
}

}  // namespace

CircuitBuilder::CircuitBuilder(
    std::shared_ptr<const cell::CellLibrary> library)
    : library_(std::move(library)) {
  CHARLIE_ASSERT(library_ != nullptr);
}

CircuitBuilder::CircuitBuilder(const cell::CellLibrary& library)
    : library_(std::make_shared<cell::CellLibrary>(library)) {}

std::unique_ptr<Circuit> CircuitBuilder::build(
    const cell::NetlistDesc& desc) const {
  // --- semantic validation -------------------------------------------------
  // Net name -> driver: -1 for primary inputs, instance index otherwise.
  std::unordered_map<std::string, int> driver;
  for (const auto& name : desc.inputs) {
    if (!driver.emplace(name, -1).second) {
      throw ConfigError("circuit builder: primary input \"" + name +
                        "\" declared twice");
    }
  }
  std::vector<const cell::CellSpec*> specs(desc.instances.size(), nullptr);
  for (std::size_t i = 0; i < desc.instances.size(); ++i) {
    const auto& inst = desc.instances[i];
    const cell::CellSpec* spec = library_->find(inst.cell);
    if (spec == nullptr) {
      build_error(inst, "unknown cell \"" + inst.cell + "\"");
    }
    specs[i] = spec;
    if (static_cast<int>(inst.inputs.size()) != spec->arity) {
      build_error(inst, "cell " + spec->name + " takes " +
                            std::to_string(spec->arity) + " inputs, got " +
                            std::to_string(inst.inputs.size()));
    }
    if (!driver.emplace(inst.output, static_cast<int>(i)).second) {
      build_error(inst, "net \"" + inst.output + "\" is defined twice");
    }
  }
  for (const auto& inst : desc.instances) {
    for (const auto& input : inst.inputs) {
      if (driver.find(input) == driver.end()) {
        build_error(inst, "input net \"" + input +
                              "\" is driven by no gate or primary input");
      }
    }
  }

  // --- topological order (Kahn) -------------------------------------------
  // The engine appends gates after their input nets exist, so instances are
  // emitted in dependency order regardless of netlist order; leftover
  // instances sit on a combinational cycle.
  const std::size_t n = desc.instances.size();
  std::vector<int> missing_inputs(n, 0);
  std::unordered_map<int, std::vector<int>> dependents;  // driver -> users
  std::vector<int> ready;
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& input : desc.instances[i].inputs) {
      const int d = driver.at(input);
      if (d >= 0) {
        ++missing_inputs[i];
        dependents[d].push_back(static_cast<int>(i));
      }
    }
    if (missing_inputs[i] == 0) ready.push_back(static_cast<int>(i));
  }
  std::vector<int> order;
  order.reserve(n);
  for (std::size_t head = 0; head < ready.size(); ++head) {
    const int i = ready[head];
    order.push_back(i);
    const auto it = dependents.find(i);
    if (it == dependents.end()) continue;
    for (const int user : it->second) {
      if (--missing_inputs[user] == 0) ready.push_back(user);
    }
  }
  if (order.size() != n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (missing_inputs[i] > 0) {
        build_error(desc.instances[i],
                    "combinational cycle through net \"" +
                        desc.instances[i].output + "\"");
      }
    }
  }

  // --- emission ------------------------------------------------------------
  auto circuit = std::make_unique<Circuit>();
  for (const auto& name : desc.inputs) circuit->add_input(name);
  for (const int i : order) {
    const auto& inst = desc.instances[i];
    const cell::CellSpec& spec = *specs[i];
    std::vector<Circuit::NetId> inputs;
    inputs.reserve(inst.inputs.size());
    for (const auto& input : inst.inputs) {
      inputs.push_back(circuit->find_net(input));
    }
    if (spec.hybrid) {
      circuit->add_mis_gate(spec.kind, inst.output, std::move(inputs),
                            spec.make_mis_channel());
    } else {
      circuit->add_gate(spec.kind, inst.output, std::move(inputs),
                        spec.make_sis_channel());
    }
  }
  return circuit;
}

std::unique_ptr<Circuit> CircuitBuilder::build_text(
    const std::string& netlist_text) const {
  return build(cell::parse_netlist(netlist_text));
}

std::unique_ptr<Circuit> CircuitBuilder::build_file(
    const std::string& path) const {
  return build(cell::read_netlist_file(path));
}

}  // namespace charlie::sim
