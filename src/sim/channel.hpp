// Channel interfaces for digital timing simulation.
//
// Following the Involution Delay Model (IDM) architecture, circuits are
// zero-time boolean gates connected through delay channels. A channel
// receives input transitions and produces delayed output transitions, with
// single-history cancellation semantics: a pending output event can be
// withdrawn by a later input transition (glitch annihilation).
//
// Contract: at any moment a channel has at most ONE pending future output
// event, exposed through pending(). The simulator delivers input
// transitions via on_input and, once simulated time passes the pending
// event, fires it via on_fire -- after which pending() may expose a
// follow-up event (channels whose internal waveform crosses the threshold
// more than once per mode need this).
#pragma once

#include <optional>
#include <vector>

namespace charlie::sim {

struct PendingEvent {
  double t = 0.0;
  bool value = false;
};

/// Single-input channel processing an alternating boolean signal.
class SisChannel {
 public:
  virtual ~SisChannel() = default;

  /// Reset to a steady state consistent with input `value` at time t0.
  virtual void initialize(double t0, bool value) = 0;

  /// Input changed to `value` at time `t`. May create, move, or cancel the
  /// pending event.
  virtual void on_input(double t, bool value) = 0;

  /// The pending event fired (simulated time reached it).
  virtual void on_fire(const PendingEvent& fired) = 0;

  /// The channel's next output event, if any.
  virtual std::optional<PendingEvent> pending() const = 0;

  /// Output value in the initialized steady state.
  virtual bool initial_output() const = 0;
};

/// Multi-input gate channel (e.g. the MIS-aware hybrid NOR channel).
class GateChannel {
 public:
  virtual ~GateChannel() = default;
  virtual int n_inputs() const = 0;

  /// Reset to a steady state for the given input values at t0.
  virtual void initialize(double t0, const std::vector<bool>& values) = 0;

  virtual void on_input(double t, int port, bool value) = 0;
  virtual void on_fire(const PendingEvent& fired) = 0;
  virtual std::optional<PendingEvent> pending() const = 0;
  virtual bool initial_output() const = 0;
};

}  // namespace charlie::sim
