#include "sim/wire_channel.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace charlie::sim {

WireChannel::WireChannel(const wire::WireParams& params)
    : WireChannel(wire::WireModeTables::make(params)) {}

WireChannel::WireChannel(std::shared_ptr<const wire::WireModeTables> tables)
    : tables_(std::move(tables)) {
  CHARLIE_ASSERT(tables_ != nullptr);
  mt_ = &tables_->drive_table(input_);
  vth_ = tables_->vth();
  horizon_ = tables_->horizon();
  drive_delay_ = tables_->drive_delay();
}

void WireChannel::initialize(double t0, bool value) {
  input_ = value;
  mt_ = &tables_->drive_table(value);
  t_ref_ = t0;
  x_ref_ = mt_->steady;  // line fully settled at the driving rail
  output_ = value;
  refresh_scalar();
  committed_.clear();
  live_.reset();
}

std::optional<PendingEvent> WireChannel::pending() const {
  if (!committed_.empty()) return committed_.front();
  return live_;
}

ode::Vec2 WireChannel::state_at(double t) const {
  CHARLIE_ASSERT(t >= t_ref_ - 1e-18);
  if (t <= t_ref_) return x_ref_;
  const double tau = t - t_ref_;
  const core::ModeTable& mt = *mt_;
  if (mt.spectral_valid) {
    const ode::Vec2 dev = x_ref_ - mt.xp;
    return mt.xp + std::exp(mt.l1 * tau) * (mt.s1 * dev) +
           std::exp(mt.l2 * tau) * (mt.s2 * dev);
  }
  return mt.ode.state_at(tau, x_ref_);
}

void WireChannel::refresh_scalar() {
  scalar_ = two_exp_expand(*mt_, x_ref_);
}

std::optional<PendingEvent> WireChannel::next_crossing(double t_from) const {
  if (!scalar_.valid) return next_crossing_scan(t_from);
  const double tau0 = std::max(t_from - t_ref_, 0.0);
  const auto crossing = two_exp_next_crossing(scalar_, vth_, tau0, horizon_);
  if (!crossing.has_value()) return std::nullopt;
  return PendingEvent{t_ref_ + crossing->tau, crossing->rising};
}

std::optional<PendingEvent> WireChannel::next_crossing_scan(
    double t_from) const {
  const auto crossing = scan_vo_crossing(
      *mt_, vth_, t_from, horizon_,
      [this](double t) { return state_at(t).y; });
  if (!crossing.has_value()) return std::nullopt;
  return PendingEvent{crossing->t, crossing->rising};
}

void WireChannel::on_input(double t, bool value) {
  if (value == input_) return;  // defensive; the engine filters no-ops
  // The drive-shape correction defers the switch to the centroid of the
  // driver's output edge (wire_params.hpp): the rail flip acts at te.
  const double te = t + drive_delay_;
  CHARLIE_ASSERT_MSG(te >= t_ref_ - 1e-18,
                     "wire channel: out-of-order input");

  // A live crossing at or before the effective switch instant has
  // physically happened and can no longer be cancelled.
  if (live_.has_value() && live_->t <= te) {
    committed_.push_back(*live_);
    double from = live_->t + 1e-18;
    live_.reset();
    while (true) {
      const auto extra = next_crossing(from);
      if (!extra.has_value() || extra->t > te) break;
      committed_.push_back(*extra);
      from = extra->t + 1e-18;
    }
  } else {
    live_.reset();
  }

  // Analog handoff: evolve the line state to the switch instant, then flip
  // the drive rail. V_out and its slope carry over continuously.
  x_ref_ = state_at(te);
  t_ref_ = te;
  input_ = value;
  mt_ = &tables_->drive_table(value);
  refresh_scalar();

  live_ = next_crossing(te);
}

void WireChannel::on_fire(const PendingEvent& fired) {
  output_ = fired.value;
  if (!committed_.empty()) {
    const PendingEvent& front = committed_.front();
    CHARLIE_ASSERT_MSG(front.t == fired.t && front.value == fired.value,
                       "wire channel: fired event does not match the "
                       "committed front");
    committed_.pop_front();
    return;
  }
  CHARLIE_ASSERT(live_.has_value());
  CHARLIE_ASSERT_MSG(live_->t == fired.t && live_->value == fired.value,
                     "wire channel: fired event does not match the live "
                     "crossing");
  // The waveform may cross again within the same drive state (the slope
  // state can carry V_out back through the threshold); keep looking.
  live_ = next_crossing(fired.t + 1e-18);
}

}  // namespace charlie::sim
