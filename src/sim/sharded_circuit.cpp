#include "sim/sharded_circuit.hpp"

#include <algorithm>
#include <cmath>
#include <thread>
#include <utility>

#include "obs/trace_recorder.hpp"
#include "sim/sim_session.hpp"
#include "util/error.hpp"

namespace charlie::sim {

ShardedCircuit::ShardedCircuit(
    std::vector<Shard> shards, std::vector<BoundaryEdge> edges,
    std::vector<std::string> global_inputs,
    std::unordered_map<std::string, std::pair<std::size_t, Circuit::NetId>>
        net_home)
    : shards_(std::move(shards)),
      edges_(std::move(edges)),
      global_inputs_(std::move(global_inputs)),
      net_home_(std::move(net_home)) {
  CHARLIE_ASSERT_MSG(!shards_.empty(), "sharded circuit: no shards");
  for (std::size_t i = 0; i < global_inputs_.size(); ++i) {
    input_index_.emplace(global_inputs_[i], i);
  }
  out_edges_.resize(shards_.size());
  in_edges_.resize(shards_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const BoundaryEdge& e = edges_[i];
    // The shard graph must be acyclic; contiguous topo-order partitions
    // guarantee the stronger from < to.
    CHARLIE_ASSERT(e.from_shard < e.to_shard && e.to_shard < shards_.size());
    const Circuit& consumer = *shards_[e.to_shard].circuit;
    CHARLIE_ASSERT(e.to_input < consumer.n_inputs());
    CHARLIE_ASSERT_MSG(
        shards_[e.to_shard].input_binding[e.to_input] == -1,
        "sharded circuit: boundary edge targets a global-input binding");
    out_edges_[e.from_shard].push_back(i);
    in_edges_[e.to_shard].push_back(i);
  }
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = shards_[s];
    CHARLIE_ASSERT(shard.circuit != nullptr);
    CHARLIE_ASSERT(shard.input_binding.size() == shard.circuit->n_inputs());
  }
}

std::size_t ShardedCircuit::n_gates() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) n += shard.circuit->n_gates();
  return n;
}

double ShardedCircuit::Result::load_imbalance() const {
  if (shard_window_events.empty()) return 0.0;
  long total = 0;
  long busiest = 0;
  for (const auto& windows : shard_window_events) {
    long shard_total = 0;
    for (const long n : windows) shard_total += n;
    total += shard_total;
    busiest = std::max(busiest, shard_total);
  }
  if (total == 0) return 0.0;
  const double mean = static_cast<double>(total) /
                      static_cast<double>(shard_window_events.size());
  return static_cast<double>(busiest) / mean;
}

const waveform::DigitalTrace& ShardedCircuit::Result::trace(
    const std::string& net) const {
  CHARLIE_ASSERT(owner != nullptr);
  const auto home = owner->net_home_.find(net);
  if (home != owner->net_home_.end()) {
    return shard_results[home->second.first].trace(home->second.second);
  }
  const auto input = owner->input_index_.find(net);
  if (input != owner->input_index_.end()) {
    return input_traces[input->second];
  }
  throw ConfigError("sharded circuit: unknown net " + net);
}

namespace {

// One cross-shard transition in flight between a producer's window and the
// matching consumer window.
struct BoundaryEvent {
  double t = 0.0;
  bool value = false;
  std::size_t to_input = 0;
};

}  // namespace

ShardedCircuit::Result ShardedCircuit::simulate(
    const std::vector<waveform::DigitalTrace>& stimuli, double t_begin,
    double t_end, const ShardedSimConfig& config) {
  CHARLIE_ASSERT(t_end > t_begin);
  CHARLIE_ASSERT_MSG(stimuli.size() == global_inputs_.size(),
                     "sharded circuit: one stimulus per primary input");
  const std::size_t n_shards = shards_.size();

  // --- window schedule -----------------------------------------------------
  // W windows of quantum q; the last window's end is exactly t_end, and every
  // earlier boundary is strictly below it, so each advance() horizon strictly
  // increases and the union of windows is exactly (t_begin, t_end].
  const double span = t_end - t_begin;
  double quantum = config.window;
  if (!(quantum > 0.0)) quantum = span / (8.0 * static_cast<double>(n_shards));
  std::size_t n_windows =
      static_cast<std::size_t>(std::ceil(span / quantum));
  n_windows = std::max<std::size_t>(n_windows, 1);
  auto window_end = [&](std::size_t w) {
    return w + 1 == n_windows ? t_end
                              : t_begin + static_cast<double>(w + 1) * quantum;
  };

  std::size_t n_threads = config.n_threads;
  if (n_threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    n_threads = std::min<std::size_t>(n_shards, hw > 0 ? hw : 1);
  }
  if (pool_ == nullptr || pool_->n_threads() != n_threads) {
    pool_ = std::make_unique<util::ThreadPool>(n_threads);
  }

  // --- sessions, in shard (topo) order -------------------------------------
  // A downstream shard's boundary inputs settle at the value its producer
  // settled to, so sessions are constructed in ascending shard order and
  // boundary stimuli start as constant traces at the producer's t_begin
  // value; their transitions arrive later through inject().
  std::vector<std::unique_ptr<SimSession>> sessions(n_shards);
  // Shard tasks poll only the wall clock and the cancellation token; the
  // event ceiling is enforced below, on the coordinating thread at step
  // granularity, so a budget trip is deterministic for a fixed config.
  RunBudget task_budget = config.budget;
  task_budget.max_events = 0;
  {
    std::vector<waveform::DigitalTrace> shard_stimuli;
    for (std::size_t s = 0; s < n_shards; ++s) {
      const Shard& shard = shards_[s];
      shard_stimuli.clear();
      shard_stimuli.reserve(shard.circuit->n_inputs());
      for (const int binding : shard.input_binding) {
        shard_stimuli.push_back(
            binding >= 0 ? stimuli[static_cast<std::size_t>(binding)]
                         : waveform::DigitalTrace());
      }
      for (const std::size_t edge_index : in_edges_[s]) {
        const BoundaryEdge& e = edges_[edge_index];
        shard_stimuli[e.to_input] = waveform::DigitalTrace(
            sessions[e.from_shard]->value(e.from_net), {});
      }
      sessions[s] = std::make_unique<SimSession>(*shard.circuit, shard_stimuli,
                                                 t_begin, task_budget);
    }
  }

  // --- exchange buckets ----------------------------------------------------
  // buckets[edge][w] holds the producer's window-w boundary transitions. The
  // producer fills it at wavefront step from_shard + w; the consumer drains
  // it at step to_shard + w (strictly later), so no bucket is ever touched
  // by two tasks of the same step and no locking is needed.
  std::vector<std::vector<std::vector<BoundaryEvent>>> buckets(edges_.size());
  for (auto& per_window : buckets) per_window.resize(n_windows);
  std::vector<std::size_t> export_cursor(edges_.size(), 0);

  // Per-(shard, window) event counts, written by the owning task (distinct
  // slot per task, so no synchronization beyond the pool's step barrier).
  // Recorded unconditionally: a subtraction per window task is free next to
  // the window's event processing, and it is the data load_imbalance() and
  // the shard.* metrics summarize.
  std::vector<std::vector<long>> shard_window_events(
      n_shards, std::vector<long>(n_windows, 0));

  // --- conservative wavefront ----------------------------------------------
  // Task (shard k, window w) runs at step k + w; all tasks of one step are
  // mutually independent (distinct sessions, disjoint buckets), so each step
  // is one parallel_for. Grain 1: shard/window tasks are coarse already.
  RunStatus status = RunStatus::kOk;
  std::string error;
  RunGuard guard(config.budget);
  for (std::size_t step = 0; step + 1 < n_shards + n_windows; ++step) {
    const std::size_t k_lo = step >= n_windows ? step - n_windows + 1 : 0;
    const std::size_t k_hi = std::min(n_shards - 1, step);
    try {
      pool_->parallel_for(
          k_hi - k_lo + 1, 1, [&](std::size_t /*worker*/, std::size_t task) {
            const std::size_t k = k_lo + task;
            const std::size_t w = step - k;
            SimSession& session = *sessions[k];
            obs::ScopedSpan obs_span("shard.task", "shard",
                                     static_cast<long long>(k), "window",
                                     static_cast<long long>(w));
            const long events_before =
                session.n_stimulus_events() + session.n_gate_events();
            try {
              // Inject this window's boundary transitions, globally
              // time-sorted; the edge iteration order breaks (measure-zero)
              // exact-time ties deterministically.
              std::vector<BoundaryEvent> incoming;
              for (const std::size_t edge_index : in_edges_[k]) {
                const auto& bucket = buckets[edge_index][w];
                const std::size_t to_input = edges_[edge_index].to_input;
                for (const BoundaryEvent& ev : bucket) {
                  incoming.push_back({ev.t, ev.value, to_input});
                }
              }
              std::stable_sort(
                  incoming.begin(), incoming.end(),
                  [](const BoundaryEvent& a, const BoundaryEvent& b) {
                    return a.t < b.t;
                  });
              for (const BoundaryEvent& ev : incoming) {
                session.inject(ev.to_input, ev.t, ev.value);
              }
              session.advance(window_end(w));
              shard_window_events[k][w] = session.n_stimulus_events() +
                                          session.n_gate_events() -
                                          events_before;
              // Export this window's production on every out-edge: all
              // not-yet-exported transitions up to the new horizon.
              for (const std::size_t edge_index : out_edges_[k]) {
                const BoundaryEdge& e = edges_[edge_index];
                const waveform::DigitalTrace& produced =
                    session.result().trace(e.from_net);
                std::size_t& cursor = export_cursor[edge_index];
                auto& bucket = buckets[edge_index][w];
                while (cursor < produced.n_transitions() &&
                       produced.transitions()[cursor] <= session.t_horizon()) {
                  bucket.push_back({produced.transitions()[cursor],
                                    produced.is_rising(cursor), e.to_input});
                  ++cursor;
                }
              }
            } catch (const std::exception& e) {
              // Stamp the failing shard's own result, then let the pool
              // carry the exception to the coordinating thread (remaining
              // tasks of this step still complete; the pool stays usable).
              session.mark_failed(e.what());
              throw;
            }
          });
    } catch (const std::exception& e) {
      status = RunStatus::kFailed;
      error = e.what();
      break;
    }
    // In-task deadline/cancellation trips are sticky in the session; stop
    // scheduling further steps once any shard has terminated.
    for (std::size_t s = 0; s < n_shards && status == RunStatus::kOk; ++s) {
      if (sessions[s]->status() != RunStatus::kOk) {
        status = sessions[s]->status();
      }
    }
    // Deterministic event-budget check at step granularity: the summed
    // event count after a completed step does not depend on thread count.
    if (status == RunStatus::kOk && config.budget.enabled()) {
      long n_processed = 0;
      for (const auto& session : sessions) {
        n_processed +=
            session->n_stimulus_events() + session->n_gate_events();
      }
      status = guard.check(n_processed);
    }
    if (status != RunStatus::kOk) break;
  }

  // --- assembly ------------------------------------------------------------
  Result result;
  result.owner = this;
  result.n_windows = n_windows;
  result.shard_window_events = std::move(shard_window_events);
  result.shard_results.reserve(n_shards);
  long n_gate_events = 0;
  for (std::size_t s = 0; s < n_shards; ++s) {
    n_gate_events += sessions[s]->n_gate_events();
    result.shard_results.push_back(sessions[s]->take_result());
  }

  // Observability aggregate, filled in fixed shard/window/edge order on the
  // coordinating thread (deterministic for any thread count).
  result.metrics.add("shard.count", static_cast<long long>(n_shards));
  result.metrics.add("shard.windows", static_cast<long long>(n_windows));
  for (std::size_t s = 0; s < n_shards; ++s) {
    long shard_total = 0;
    for (std::size_t w = 0; w < n_windows; ++w) {
      const long n = result.shard_window_events[s][w];
      shard_total += n;
      result.metrics.observe("shard.window_events", static_cast<double>(n));
    }
    result.metrics.observe("shard.events", static_cast<double>(shard_total));
    result.metrics.observe(
        "sim.max_heap_depth",
        static_cast<double>(result.shard_results[s].max_heap_depth));
  }
  long long boundary_transitions = 0;
  for (std::size_t e = 0; e < buckets.size(); ++e) {
    for (std::size_t w = 0; w < n_windows; ++w) {
      result.metrics.observe("shard.boundary_bucket",
                             static_cast<double>(buckets[e][w].size()));
      boundary_transitions += static_cast<long long>(buckets[e][w].size());
    }
  }
  result.metrics.add("shard.boundary_transitions", boundary_transitions);
  // The monolithic engine's event count is its processed stimulus events
  // plus gate firings. Shard-local stimulus counts double-count boundary
  // injections and multi-shard fanout of primary inputs, so the stimulus
  // share is recomputed from the global traces instead.
  long n_stimulus_events = 0;
  result.input_traces.reserve(global_inputs_.size());
  for (const waveform::DigitalTrace& stimulus : stimuli) {
    waveform::DigitalTrace windowed(stimulus.value_at(t_begin), {});
    for (std::size_t i = 0; i < stimulus.n_transitions(); ++i) {
      const double t = stimulus.transitions()[i];
      if (t > t_begin && t <= t_end) windowed.append_transition(t);
    }
    n_stimulus_events += static_cast<long>(windowed.n_transitions());
    result.input_traces.push_back(std::move(windowed));
  }
  result.n_events = n_stimulus_events + n_gate_events;
  result.status = status;
  // Overall horizon actually covered: the lowest point any shard fully
  // reached (a terminated run's traces are only trustworthy below it).
  double t_reached = t_end;
  for (const Circuit::SimResult& shard_result : result.shard_results) {
    t_reached = std::min(t_reached, shard_result.diagnostics.t_horizon);
  }
  result.diagnostics =
      guard.finish(status, result.n_events,
                   status == RunStatus::kOk ? t_end : t_reached);
  result.diagnostics.error = error;
  return result;
}

}  // namespace charlie::sim
