#include "sim/circuit.hpp"

#include <algorithm>

#include "sim/sim_session.hpp"
#include "util/error.hpp"

namespace charlie::sim {

bool eval_gate(GateKind kind, std::span<const bool> in) {
  const std::size_t arity = gate_arity(kind);
  CHARLIE_ASSERT(in.size() == arity);
  return eval_gate(kind, in[0], arity >= 2 ? in[1] : false,
                   arity >= 3 ? in[2] : false);
}

Circuit::NetId Circuit::new_net(const std::string& name) {
  if (net_ids_.count(name) > 0) {
    throw ConfigError("circuit: duplicate net name: " + name);
  }
  const NetId id = static_cast<NetId>(net_names_.size());
  net_names_.push_back(name);
  net_ids_[name] = id;
  fanout_.emplace_back();
  return id;
}

Circuit::NetId Circuit::add_input(const std::string& name) {
  const NetId id = new_net(name);
  primary_inputs_.push_back(id);
  return id;
}

Circuit::NetId Circuit::add_gate(GateKind kind,
                                 const std::string& output_name,
                                 std::vector<NetId> inputs,
                                 std::unique_ptr<SisChannel> channel) {
  CHARLIE_ASSERT(channel != nullptr);
  CHARLIE_ASSERT_MSG(inputs.size() == gate_arity(kind),
                     "circuit: wrong gate arity");
  const NetId out = new_net(output_name);
  Gate gate;
  gate.kind = kind;
  gate.inputs = std::move(inputs);
  gate.output = out;
  gate.sis = std::move(channel);
  const std::size_t index = gates_.size();
  for (std::size_t port = 0; port < gate.inputs.size(); ++port) {
    CHARLIE_ASSERT(gate.inputs[port] >= 0 &&
                   gate.inputs[port] < static_cast<NetId>(n_nets()));
    fanout_[gate.inputs[port]].push_back({index, static_cast<int>(port)});
  }
  gates_.push_back(std::move(gate));
  return out;
}

Circuit::NetId Circuit::add_nor2_mis(const std::string& output_name, NetId a,
                                     NetId b,
                                     std::unique_ptr<GateChannel> channel) {
  return add_mis_gate(GateKind::kNor2, output_name, {a, b},
                      std::move(channel));
}

Circuit::NetId Circuit::add_mis_gate(GateKind kind,
                                     const std::string& output_name,
                                     std::vector<NetId> inputs,
                                     std::unique_ptr<GateChannel> channel) {
  CHARLIE_ASSERT(channel != nullptr);
  CHARLIE_ASSERT_MSG(inputs.size() == gate_arity(kind),
                     "circuit: wrong gate arity");
  CHARLIE_ASSERT_MSG(
      channel->n_inputs() == static_cast<int>(gate_arity(kind)),
      "circuit: channel arity does not match the gate kind");
  const NetId out = new_net(output_name);
  Gate gate;
  gate.kind = kind;
  gate.inputs = std::move(inputs);
  gate.output = out;
  gate.mis = std::move(channel);
  const std::size_t index = gates_.size();
  for (std::size_t port = 0; port < gate.inputs.size(); ++port) {
    CHARLIE_ASSERT(gate.inputs[port] >= 0 &&
                   gate.inputs[port] < static_cast<NetId>(n_nets()));
    fanout_[gate.inputs[port]].push_back({index, static_cast<int>(port)});
  }
  gates_.push_back(std::move(gate));
  return out;
}

Circuit::NetId Circuit::find_net(const std::string& name) const {
  const auto it = net_ids_.find(name);
  if (it == net_ids_.end()) throw ConfigError("circuit: unknown net " + name);
  return it->second;
}

const std::string& Circuit::net_name(NetId id) const {
  CHARLIE_ASSERT(id >= 0 && id < static_cast<NetId>(n_nets()));
  return net_names_[static_cast<std::size_t>(id)];
}

const waveform::DigitalTrace& Circuit::SimResult::trace(NetId id) const {
  CHARLIE_ASSERT(id >= 0 && id < static_cast<NetId>(traces.size()));
  return traces[static_cast<std::size_t>(id)];
}

Circuit::SimResult Circuit::simulate(
    const std::vector<waveform::DigitalTrace>& stimuli, double t_begin,
    double t_end) {
  CHARLIE_ASSERT(t_end > t_begin);
  // The whole window in one advance: reproduces the original single-pass
  // engine bit-for-bit (see sim/sim_session.hpp).
  SimSession session(*this, stimuli, t_begin);
  session.advance(t_end);
  return session.take_result();
}

void Circuit::simulate_into(const std::vector<waveform::DigitalTrace>& stimuli,
                            double t_begin, double t_end, SimResult& out) {
  CHARLIE_ASSERT(t_end > t_begin);
  SimSession session(*this, stimuli, t_begin, std::move(out));
  session.advance(t_end);
  out = session.take_result();
}

Circuit::SimResult Circuit::simulate(
    const std::vector<waveform::DigitalTrace>& stimuli, double t_begin,
    double t_end, const RunBudget& budget) {
  SimResult out;
  simulate_into(stimuli, t_begin, t_end, budget, out);
  return out;
}

void Circuit::simulate_into(const std::vector<waveform::DigitalTrace>& stimuli,
                            double t_begin, double t_end,
                            const RunBudget& budget, SimResult& out) {
  CHARLIE_ASSERT(t_end > t_begin);
  SimSession session(*this, stimuli, t_begin, budget, std::move(out));
  // The budgeted entry point is the no-throw boundary: a failure anywhere
  // in the run (solver non-convergence, assertion, injected fault) becomes
  // a structured kFailed result with the traces produced so far.
  try {
    session.advance(t_end);
  } catch (const std::exception& e) {
    session.mark_failed(e.what());
  }
  out = session.take_result();
}

}  // namespace charlie::sim
