#include "sim/circuit.hpp"

#include <algorithm>

#include "sim/event_heap.hpp"
#include "util/error.hpp"

namespace charlie::sim {

bool eval_gate(GateKind kind, std::span<const bool> in) {
  const std::size_t arity = gate_arity(kind);
  CHARLIE_ASSERT(in.size() == arity);
  return eval_gate(kind, in[0], arity >= 2 ? in[1] : false,
                   arity >= 3 ? in[2] : false);
}

Circuit::NetId Circuit::new_net(const std::string& name) {
  if (net_ids_.count(name) > 0) {
    throw ConfigError("circuit: duplicate net name: " + name);
  }
  const NetId id = static_cast<NetId>(net_names_.size());
  net_names_.push_back(name);
  net_ids_[name] = id;
  fanout_.emplace_back();
  return id;
}

Circuit::NetId Circuit::add_input(const std::string& name) {
  const NetId id = new_net(name);
  primary_inputs_.push_back(id);
  return id;
}

Circuit::NetId Circuit::add_gate(GateKind kind,
                                 const std::string& output_name,
                                 std::vector<NetId> inputs,
                                 std::unique_ptr<SisChannel> channel) {
  CHARLIE_ASSERT(channel != nullptr);
  CHARLIE_ASSERT_MSG(inputs.size() == gate_arity(kind),
                     "circuit: wrong gate arity");
  const NetId out = new_net(output_name);
  Gate gate;
  gate.kind = kind;
  gate.inputs = std::move(inputs);
  gate.output = out;
  gate.sis = std::move(channel);
  const std::size_t index = gates_.size();
  for (std::size_t port = 0; port < gate.inputs.size(); ++port) {
    CHARLIE_ASSERT(gate.inputs[port] >= 0 &&
                   gate.inputs[port] < static_cast<NetId>(n_nets()));
    fanout_[gate.inputs[port]].push_back({index, static_cast<int>(port)});
  }
  gates_.push_back(std::move(gate));
  return out;
}

Circuit::NetId Circuit::add_nor2_mis(const std::string& output_name, NetId a,
                                     NetId b,
                                     std::unique_ptr<GateChannel> channel) {
  return add_mis_gate(GateKind::kNor2, output_name, {a, b},
                      std::move(channel));
}

Circuit::NetId Circuit::add_mis_gate(GateKind kind,
                                     const std::string& output_name,
                                     std::vector<NetId> inputs,
                                     std::unique_ptr<GateChannel> channel) {
  CHARLIE_ASSERT(channel != nullptr);
  CHARLIE_ASSERT_MSG(inputs.size() == gate_arity(kind),
                     "circuit: wrong gate arity");
  CHARLIE_ASSERT_MSG(
      channel->n_inputs() == static_cast<int>(gate_arity(kind)),
      "circuit: channel arity does not match the gate kind");
  const NetId out = new_net(output_name);
  Gate gate;
  gate.kind = kind;
  gate.inputs = std::move(inputs);
  gate.output = out;
  gate.mis = std::move(channel);
  const std::size_t index = gates_.size();
  for (std::size_t port = 0; port < gate.inputs.size(); ++port) {
    CHARLIE_ASSERT(gate.inputs[port] >= 0 &&
                   gate.inputs[port] < static_cast<NetId>(n_nets()));
    fanout_[gate.inputs[port]].push_back({index, static_cast<int>(port)});
  }
  gates_.push_back(std::move(gate));
  return out;
}

Circuit::NetId Circuit::find_net(const std::string& name) const {
  const auto it = net_ids_.find(name);
  if (it == net_ids_.end()) throw ConfigError("circuit: unknown net " + name);
  return it->second;
}

const std::string& Circuit::net_name(NetId id) const {
  CHARLIE_ASSERT(id >= 0 && id < static_cast<NetId>(n_nets()));
  return net_names_[static_cast<std::size_t>(id)];
}

const waveform::DigitalTrace& Circuit::SimResult::trace(NetId id) const {
  CHARLIE_ASSERT(id >= 0 && id < static_cast<NetId>(traces.size()));
  return traces[static_cast<std::size_t>(id)];
}

namespace {

// Primary-input transition inside (t_begin, t_end], pre-sorted.
struct StimulusEvent {
  double t = 0.0;
  Circuit::NetId net = -1;
  bool value = false;
};

}  // namespace

Circuit::SimResult Circuit::simulate(
    const std::vector<waveform::DigitalTrace>& stimuli, double t_begin,
    double t_end) {
  CHARLIE_ASSERT(t_end > t_begin);
  CHARLIE_ASSERT_MSG(stimuli.size() == primary_inputs_.size(),
                     "circuit: one stimulus trace per primary input");

  // --- steady-state initialization (topological settle) -------------------
  // Window convention (see header): value_at(t_begin) already includes a
  // transition at exactly t_begin; only strictly later transitions become
  // events.
  std::vector<bool> net_value(n_nets(), false);
  for (std::size_t i = 0; i < stimuli.size(); ++i) {
    net_value[primary_inputs_[i]] = stimuli[i].value_at(t_begin);
  }
  // Gates were appended after their input nets exist, so a forward sweep
  // settles an acyclic circuit (two passes as a fixpoint safety net).
  for (int pass = 0; pass < 2; ++pass) {
    for (auto& gate : gates_) {
      for (std::size_t p = 0; p < gate.inputs.size(); ++p) {
        gate.in_values[p] = net_value[gate.inputs[p]];
      }
      gate.zero_time_value = eval_gate(gate.kind, gate.in_values[0],
                                       gate.in_values[1], gate.in_values[2]);
      net_value[gate.output] = gate.zero_time_value;
    }
  }
  for (auto& gate : gates_) {
    if (gate.sis) {
      gate.sis->initialize(t_begin, gate.zero_time_value);
    } else {
      gate.mis->initialize(
          t_begin, std::vector<bool>(gate.in_values.begin(),
                                     gate.in_values.begin() +
                                         gate.inputs.size()));
    }
  }

  // --- stimulus stream -----------------------------------------------------
  // All primary-input events are known up front: one sorted vector walked by
  // an index beats pushing them through the gate heap. Equal-time order is
  // input-declaration order (stable sort over per-input appends), and a
  // stimulus always precedes gate firings at the same instant -- both as in
  // the original single-queue engine.
  std::size_t n_stim = 0;
  for (const auto& trace : stimuli) n_stim += trace.n_transitions();
  std::vector<StimulusEvent> stim_events;
  stim_events.reserve(n_stim);
  for (std::size_t i = 0; i < stimuli.size(); ++i) {
    const auto& trace = stimuli[i];
    for (std::size_t k = 0; k < trace.n_transitions(); ++k) {
      const double t = trace.transitions()[k];
      if (t <= t_begin || t > t_end) continue;
      stim_events.push_back({t, primary_inputs_[i], trace.is_rising(k)});
    }
  }
  std::stable_sort(stim_events.begin(), stim_events.end(),
                   [](const StimulusEvent& x, const StimulusEvent& y) {
                     return x.t < y.t;
                   });

  // --- result traces, pre-sized from stimulus statistics -------------------
  SimResult result;
  result.traces.reserve(n_nets());
  const std::size_t per_net_estimate =
      stimuli.empty() ? 0 : stim_events.size() / stimuli.size() + 1;
  for (std::size_t i = 0; i < n_nets(); ++i) {
    result.traces.emplace_back(net_value[i], std::vector<double>{});
    result.traces.back().reserve(per_net_estimate);
  }

  // --- indexed gate-event heap ---------------------------------------------
  // One slot per gate; rescheduling moves the slot's key instead of queueing
  // a duplicate, so no stale events are ever popped.
  EventHeap heap;
  heap.reset(gates_.size());
  long seq = 0;

  auto reschedule = [&](std::size_t gate_index) {
    Gate& gate = gates_[gate_index];
    const auto pending =
        gate.sis ? gate.sis->pending() : gate.mis->pending();
    if (pending.has_value() && pending->t <= t_end) {
      heap.schedule(gate_index, pending->t, seq++, pending->value);
    } else {
      heap.cancel(gate_index);
    }
  };

  auto propagate_net_change = [&](NetId net, double t, bool value) {
    if (net_value[net] == value) return;  // defensive
    net_value[net] = value;
    result.traces[net].append_transition(t);
    for (const auto& [gate_index, port] : fanout_[net]) {
      Gate& gate = gates_[gate_index];
      gate.in_values[static_cast<std::size_t>(port)] = value;
      if (gate.sis) {
        const bool nv = eval_gate(gate.kind, gate.in_values[0],
                                  gate.in_values[1], gate.in_values[2]);
        if (nv != gate.zero_time_value) {
          gate.zero_time_value = nv;
          gate.sis->on_input(t, nv);
        }
      } else {
        gate.mis->on_input(t, port, value);
      }
      reschedule(gate_index);
    }
  };

  std::size_t si = 0;
  while (si < stim_events.size() || !heap.empty()) {
    const bool take_stimulus =
        si < stim_events.size() &&
        (heap.empty() || stim_events[si].t <= heap.top().t);
    ++result.n_events;
    if (take_stimulus) {
      const StimulusEvent& ev = stim_events[si++];
      propagate_net_change(ev.net, ev.t, ev.value);
      continue;
    }
    const std::size_t gate_index = heap.top_slot();
    const EventHeap::Entry fired = heap.top();
    heap.pop();
    Gate& gate = gates_[gate_index];
    const PendingEvent event{fired.t, fired.value};
    if (gate.sis) {
      gate.sis->on_fire(event);
    } else {
      gate.mis->on_fire(event);
    }
    reschedule(gate_index);
    propagate_net_change(gate.output, fired.t, fired.value);
  }

  return result;
}

}  // namespace charlie::sim
