#include "sim/circuit.hpp"

#include <algorithm>
#include <queue>

#include "util/error.hpp"

namespace charlie::sim {

bool eval_gate(GateKind kind, std::span<const bool> in) {
  switch (kind) {
    case GateKind::kBuf:
      CHARLIE_ASSERT(in.size() == 1);
      return in[0];
    case GateKind::kInv:
      CHARLIE_ASSERT(in.size() == 1);
      return !in[0];
    case GateKind::kAnd2:
      CHARLIE_ASSERT(in.size() == 2);
      return in[0] && in[1];
    case GateKind::kOr2:
      CHARLIE_ASSERT(in.size() == 2);
      return in[0] || in[1];
    case GateKind::kNand2:
      CHARLIE_ASSERT(in.size() == 2);
      return !(in[0] && in[1]);
    case GateKind::kNor2:
      CHARLIE_ASSERT(in.size() == 2);
      return !(in[0] || in[1]);
    case GateKind::kXor2:
      CHARLIE_ASSERT(in.size() == 2);
      return in[0] != in[1];
  }
  CHARLIE_ASSERT_MSG(false, "invalid gate kind");
  return false;
}

Circuit::NetId Circuit::new_net(const std::string& name) {
  if (net_ids_.count(name) > 0) {
    throw ConfigError("circuit: duplicate net name: " + name);
  }
  const NetId id = static_cast<NetId>(net_names_.size());
  net_names_.push_back(name);
  net_ids_[name] = id;
  fanout_.emplace_back();
  return id;
}

Circuit::NetId Circuit::add_input(const std::string& name) {
  const NetId id = new_net(name);
  primary_inputs_.push_back(id);
  return id;
}

Circuit::NetId Circuit::add_gate(GateKind kind,
                                 const std::string& output_name,
                                 std::vector<NetId> inputs,
                                 std::unique_ptr<SisChannel> channel) {
  CHARLIE_ASSERT(channel != nullptr);
  const std::size_t arity =
      (kind == GateKind::kBuf || kind == GateKind::kInv) ? 1 : 2;
  CHARLIE_ASSERT_MSG(inputs.size() == arity, "circuit: wrong gate arity");
  const NetId out = new_net(output_name);
  Gate gate;
  gate.kind = kind;
  gate.inputs = std::move(inputs);
  gate.output = out;
  gate.sis = std::move(channel);
  gate.in_values.assign(gate.inputs.size(), false);
  const std::size_t index = gates_.size();
  for (std::size_t port = 0; port < gate.inputs.size(); ++port) {
    CHARLIE_ASSERT(gate.inputs[port] >= 0 &&
                   gate.inputs[port] < static_cast<NetId>(n_nets()));
    fanout_[gate.inputs[port]].push_back({index, static_cast<int>(port)});
  }
  gates_.push_back(std::move(gate));
  return out;
}

Circuit::NetId Circuit::add_nor2_mis(const std::string& output_name, NetId a,
                                     NetId b,
                                     std::unique_ptr<GateChannel> channel) {
  CHARLIE_ASSERT(channel != nullptr);
  CHARLIE_ASSERT(channel->n_inputs() == 2);
  const NetId out = new_net(output_name);
  Gate gate;
  gate.kind = GateKind::kNor2;
  gate.inputs = {a, b};
  gate.output = out;
  gate.mis = std::move(channel);
  gate.in_values.assign(2, false);
  const std::size_t index = gates_.size();
  fanout_[a].push_back({index, 0});
  fanout_[b].push_back({index, 1});
  gates_.push_back(std::move(gate));
  return out;
}

Circuit::NetId Circuit::find_net(const std::string& name) const {
  const auto it = net_ids_.find(name);
  if (it == net_ids_.end()) throw ConfigError("circuit: unknown net " + name);
  return it->second;
}

const std::string& Circuit::net_name(NetId id) const {
  CHARLIE_ASSERT(id >= 0 && id < static_cast<NetId>(n_nets()));
  return net_names_[static_cast<std::size_t>(id)];
}

const waveform::DigitalTrace& Circuit::SimResult::trace(NetId id) const {
  CHARLIE_ASSERT(id >= 0 && id < static_cast<NetId>(traces.size()));
  return traces[static_cast<std::size_t>(id)];
}

namespace {

struct QueuedEvent {
  double t = 0.0;
  long seq = 0;           // FIFO tie-break
  bool is_stimulus = false;
  // Stimulus payload:
  Circuit::NetId net = -1;
  bool value = false;
  // Gate-fire payload:
  std::size_t gate = 0;
  long generation = 0;

  bool operator>(const QueuedEvent& o) const {
    if (t != o.t) return t > o.t;
    return seq > o.seq;
  }
};

}  // namespace

Circuit::SimResult Circuit::simulate(
    const std::vector<waveform::DigitalTrace>& stimuli, double t_begin,
    double t_end) {
  CHARLIE_ASSERT(t_end > t_begin);
  CHARLIE_ASSERT_MSG(stimuli.size() == primary_inputs_.size(),
                     "circuit: one stimulus trace per primary input");

  // --- steady-state initialization (topological settle) -------------------
  std::vector<bool> net_value(n_nets(), false);
  for (std::size_t i = 0; i < stimuli.size(); ++i) {
    net_value[primary_inputs_[i]] = stimuli[i].value_at(t_begin);
  }
  // Gates were appended after their input nets exist, so a forward sweep
  // settles an acyclic circuit (two passes as a fixpoint safety net).
  for (int pass = 0; pass < 2; ++pass) {
    for (auto& gate : gates_) {
      bool tmp[2] = {false, false};
      for (std::size_t p = 0; p < gate.inputs.size(); ++p) {
        gate.in_values[p] = net_value[gate.inputs[p]];
        tmp[p] = gate.in_values[p];
      }
      gate.zero_time_value = eval_gate(
          gate.kind, std::span<const bool>(tmp, gate.inputs.size()));
      net_value[gate.output] = gate.zero_time_value;
    }
  }
  for (auto& gate : gates_) {
    if (gate.sis) {
      gate.sis->initialize(t_begin, gate.zero_time_value);
    } else {
      gate.mis->initialize(t_begin,
                           {gate.in_values[0], gate.in_values[1]});
    }
    gate.generation = 0;
  }

  SimResult result;
  result.traces.reserve(n_nets());
  for (std::size_t i = 0; i < n_nets(); ++i) {
    result.traces.emplace_back(net_value[i], std::vector<double>{});
  }

  // --- event queue ---------------------------------------------------------
  std::priority_queue<QueuedEvent, std::vector<QueuedEvent>, std::greater<>>
      queue;
  long seq = 0;
  for (std::size_t i = 0; i < stimuli.size(); ++i) {
    const auto& trace = stimuli[i];
    for (std::size_t k = 0; k < trace.n_transitions(); ++k) {
      const double t = trace.transitions()[k];
      if (t <= t_begin || t > t_end) continue;
      QueuedEvent ev;
      ev.t = t;
      ev.seq = seq++;
      ev.is_stimulus = true;
      ev.net = primary_inputs_[i];
      ev.value = trace.is_rising(k);
      queue.push(ev);
    }
  }

  auto reschedule = [&](std::size_t gate_index) {
    Gate& gate = gates_[gate_index];
    ++gate.generation;
    const auto pending =
        gate.sis ? gate.sis->pending() : gate.mis->pending();
    if (pending.has_value() && pending->t <= t_end) {
      QueuedEvent ev;
      ev.t = pending->t;
      ev.seq = seq++;
      ev.is_stimulus = false;
      ev.gate = gate_index;
      ev.generation = gate.generation;
      ev.value = pending->value;
      queue.push(ev);
    }
  };

  // Forward declaration pattern: net toggle -> notify fanout channels.
  auto propagate_net_change = [&](NetId net, double t, bool value) {
    if (net_value[net] == value) return;  // defensive
    net_value[net] = value;
    result.traces[net].append_transition(t);
    for (const auto& [gate_index, port] : fanout_[net]) {
      Gate& gate = gates_[gate_index];
      gate.in_values[static_cast<std::size_t>(port)] = value;
      if (gate.sis) {
        bool tmp[2] = {gate.in_values[0],
                       gate.in_values.size() > 1 ? gate.in_values[1] : false};
        const bool nv = eval_gate(
            gate.kind, std::span<const bool>(tmp, gate.inputs.size()));
        if (nv != gate.zero_time_value) {
          gate.zero_time_value = nv;
          gate.sis->on_input(t, nv);
        }
      } else {
        gate.mis->on_input(t, port, value);
      }
      reschedule(gate_index);
    }
  };

  while (!queue.empty()) {
    const QueuedEvent ev = queue.top();
    queue.pop();
    ++result.n_events;
    if (ev.is_stimulus) {
      propagate_net_change(ev.net, ev.t, ev.value);
      continue;
    }
    Gate& gate = gates_[ev.gate];
    if (ev.generation != gate.generation) continue;  // superseded
    const auto pending =
        gate.sis ? gate.sis->pending() : gate.mis->pending();
    if (!pending.has_value() || pending->t != ev.t ||
        pending->value != ev.value) {
      continue;  // stale
    }
    if (gate.sis) {
      gate.sis->on_fire(*pending);
    } else {
      gate.mis->on_fire(*pending);
    }
    reschedule(ev.gate);
    propagate_net_change(gate.output, ev.t, ev.value);
  }

  return result;
}

}  // namespace charlie::sim
