// Threshold-crossing search on the two-exponential scalar expansion.
//
// Every mode segment of the hybrid machinery -- gate modes and collapsed
// RC-wire drive states alike -- writes the output voltage as
//
//   V_O(t_ref + tau) = d + a1 e^{l1 tau} + a2 e^{l2 tau},
//
// a two-exponential-plus-constant with at most one interior extremum and at
// most two threshold crossings. The search below reduces the per-event
// crossing problem to a handful of exp() evaluations plus a safeguarded
// Newton solve (Brent only on non-convergence). Extracted from
// HybridGateChannel so sim::WireChannel shares the exact same solver; the
// channels keep only their mode bookkeeping and generic-scan fallbacks.
#pragma once

#include <functional>
#include <optional>

#include "core/gate_mode_tables.hpp"
#include "ode/vec2.hpp"

namespace charlie::sim {

/// Scalar expansion of the output voltage on one mode segment. `valid` is
/// false when the mode's spectrum is defective/complex; callers must then
/// fall back to their generic scan.
struct TwoExpVo {
  bool valid = false;
  double d = 0.0;
  double a1 = 0.0;
  double l1 = 0.0;
  double a2 = 0.0;
  double l2 = 0.0;

  double value(double tau) const;
};

/// Expansion of a mode table entered at state `x_ref`: the mode-constant
/// pieces (l1, l2, projector row, particular solution) come precomputed
/// from the table; only the amplitudes depend on the entry state.
TwoExpVo two_exp_expand(const core::ModeTable& mt, const ode::Vec2& x_ref);

struct TwoExpCrossing {
  double tau = 0.0;  // crossing offset from the segment reference time
  bool rising = false;
};

/// First crossing of `vo` through `vth` in [tau0, tau0 + horizon], or
/// nullopt. Requires vo.valid and l1, l2 <= 0 (decaying modes).
std::optional<TwoExpCrossing> two_exp_next_crossing(const TwoExpVo& vo,
                                                    double vth, double tau0,
                                                    double horizon);

struct ScanCrossing {
  double t = 0.0;  // absolute time of the crossing
  bool rising = false;
};

/// Generic fallback for modes with a defective/complex spectrum (no scalar
/// expansion): sample `vo_at` (absolute-time output voltage) at a fraction
/// of the mode's fastest rate -- never more than ~4k evaluations per
/// window -- bracket a sign change, and polish with Brent. Cold path: the
/// std::function indirection is irrelevant here.
std::optional<ScanCrossing> scan_vo_crossing(
    const core::ModeTable& mt, double vth, double t_from, double horizon,
    const std::function<double(double)>& vo_at);

}  // namespace charlie::sim
