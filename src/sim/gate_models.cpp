#include "sim/gate_models.hpp"

#include "core/gate_modes.hpp"
#include "sim/inertial.hpp"
#include "sim/pure_delay.hpp"
#include "util/error.hpp"

namespace charlie::sim {

SisLogicGate::SisLogicGate(core::GateTopology topology, int n_inputs,
                           std::unique_ptr<SisChannel> channel)
    : topology_(topology), n_inputs_(n_inputs), channel_(std::move(channel)) {
  CHARLIE_ASSERT(channel_ != nullptr);
  CHARLIE_ASSERT(n_inputs_ >= 2 && n_inputs_ <= core::kMaxGateInputs);
}

bool SisLogicGate::eval() const {
  return core::gate_mode_output(topology_, state_, n_inputs_);
}

void SisLogicGate::initialize(double t0, const std::vector<bool>& values) {
  CHARLIE_ASSERT(values.size() == static_cast<std::size_t>(n_inputs_));
  state_ = 0;
  for (int i = 0; i < n_inputs_; ++i) {
    state_ = core::gate_state_with(state_, i, values[i]);
  }
  gate_value_ = eval();
  channel_->initialize(t0, gate_value_);
}

bool SisLogicGate::initial_output() const {
  return channel_->initial_output();
}

std::optional<PendingEvent> SisLogicGate::pending() const {
  return channel_->pending();
}

void SisLogicGate::on_input(double t, int port, bool value) {
  CHARLIE_ASSERT(port >= 0 && port < n_inputs_);
  state_ = core::gate_state_with(state_, port, value);
  const bool new_value = eval();
  if (new_value == gate_value_) {
    // The zero-time gate output is unchanged (other inputs still hold it);
    // nothing reaches the channel.
    return;
  }
  gate_value_ = new_value;
  channel_->on_input(t, new_value);
}

void SisLogicGate::on_fire(const PendingEvent& fired) {
  channel_->on_fire(fired);
}

std::unique_ptr<GateChannel> make_inertial_gate(core::GateTopology topology,
                                                int n_inputs,
                                                const SisGateDelays& delays) {
  return std::make_unique<SisLogicGate>(
      topology, n_inputs,
      std::make_unique<InertialChannel>(delays.rise, delays.fall));
}

std::unique_ptr<GateChannel> make_pure_gate(core::GateTopology topology,
                                            int n_inputs,
                                            const SisGateDelays& delays) {
  // A pure delay must be direction-independent to preserve ordering; use
  // the mean of the two directions.
  const double d = 0.5 * (delays.rise + delays.fall);
  return std::make_unique<SisLogicGate>(
      topology, n_inputs, std::make_unique<PureDelayChannel>(d));
}

}  // namespace charlie::sim
