// Netlist-driven circuit construction against a characterized cell library.
//
// CircuitBuilder is the instantiation half of the characterize-once /
// instantiate-many lifecycle: it consumes a cell::NetlistDesc (primary
// inputs + cell instances) and a cell::CellLibrary and emits a validated
// sim::Circuit -- hybrid MIS cells get HybridGateChannel instances sharing
// the library's per-cell mode tables, SIS cells get inertial channels with
// the library's characterized delays. Calling build() repeatedly (e.g. one
// clone per BatchRunner worker) re-instantiates the circuit without
// re-deriving anything.
//
// build() validates the netlist against the library and throws ConfigError
// (with the offending net/cell and source line when available) for:
//   * unknown cell names;
//   * arity mismatches between an instance and its cell;
//   * duplicate net definitions (two drivers, or a driver colliding with a
//     primary input);
//   * undriven nets (an instance input that nothing defines);
//   * combinational cycles (the engine requires acyclic circuits).
// Instances may appear in any order; the builder topologically sorts them.
#pragma once

#include <memory>
#include <string>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "sim/circuit.hpp"

namespace charlie::sim {

class CircuitBuilder {
 public:
  /// The library is shared, not copied: every circuit built refers to the
  /// same characterized specs and mode tables.
  explicit CircuitBuilder(std::shared_ptr<const cell::CellLibrary> library);

  /// Convenience: wraps `library` in a shared_ptr by copy.
  explicit CircuitBuilder(const cell::CellLibrary& library);

  /// Validate `desc` against the library and emit the circuit. Primary
  /// inputs are declared in netlist order (the stimulus order for
  /// Circuit::simulate and BatchRunner).
  std::unique_ptr<Circuit> build(const cell::NetlistDesc& desc) const;

  /// Parse-and-build conveniences for netlist text / files.
  std::unique_ptr<Circuit> build_text(const std::string& netlist_text) const;
  std::unique_ptr<Circuit> build_file(const std::string& path) const;

  const cell::CellLibrary& library() const { return *library_; }

 private:
  std::shared_ptr<const cell::CellLibrary> library_;
};

}  // namespace charlie::sim
