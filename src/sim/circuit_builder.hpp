// Netlist-driven circuit construction against a characterized cell library.
//
// CircuitBuilder is the instantiation half of the characterize-once /
// instantiate-many lifecycle: it consumes a cell::NetlistDesc (primary
// inputs, primary outputs, cell instances, RC wires) and a
// cell::CellLibrary and emits a validated sim::Circuit -- hybrid MIS cells
// get HybridGateChannel instances sharing the library's per-cell mode
// tables, SIS cells get inertial channels with the library's characterized
// delays, and WIRE statements get hybrid WireChannel instances sharing one
// collapsed wire::WireModeTables per distinct wire geometry (memoized
// inside the builder, so BatchRunner's per-worker build() clones never
// re-derive a collapse). Calling build() repeatedly re-instantiates the
// circuit without re-deriving anything.
//
// build() validates the netlist against the library and throws ConfigError
// (with the offending net/cell and source line when available) for:
//   * unknown cell names;
//   * arity mismatches between an instance and its cell;
//   * duplicate net definitions (two drivers -- gate or wire -- or a
//     driver colliding with a primary input);
//   * undriven nets (an instance or wire input that nothing defines);
//   * invalid wire parameters (wire::WireParams::validate);
//   * declared primary outputs that no net defines;
//   * combinational cycles (the engine requires acyclic circuits).
// Instances and wires may appear in any order; the builder topologically
// sorts them.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "sim/circuit.hpp"
#include "sim/sharded_circuit.hpp"
#include "wire/wire_tables.hpp"

namespace charlie::sim {

/// Validated netlist topology, ready for emission or static analysis: the
/// resolved cell spec per instance, the driver map, and the element
/// topological order. Elements use unified indexing -- gates first in
/// netlist order, wires after, so element e >= desc.instances.size() is
/// wire e - desc.instances.size(). Produced by
/// CircuitBuilder::analyze_topology (which performs the full build()
/// validation pass) and consumed by build()/build_sharded() internally and
/// by the sta layer's timing graph construction.
struct NetlistTopology {
  std::vector<const cell::CellSpec*> specs;     // per instance, netlist order
  std::unordered_map<std::string, int> driver;  // net -> -1 (primary input)
                                                //     or element index
  std::vector<int> order;                       // elements, topo order

  static bool is_wire(const cell::NetlistDesc& desc, std::size_t e) {
    return e >= desc.instances.size();
  }
  static const cell::NetlistWire& wire_of(const cell::NetlistDesc& desc,
                                          std::size_t e) {
    return desc.wires[e - desc.instances.size()];
  }
  static const std::string& output_of(const cell::NetlistDesc& desc,
                                      std::size_t e) {
    return is_wire(desc, e) ? wire_of(desc, e).output
                            : desc.instances[e].output;
  }
  template <typename Visit>
  static void for_each_input(const cell::NetlistDesc& desc, std::size_t e,
                             Visit&& visit) {
    if (is_wire(desc, e)) {
      visit(wire_of(desc, e).input);
    } else {
      for (const auto& input : desc.instances[e].inputs) visit(input);
    }
  }
};

class CircuitBuilder {
 public:
  /// The library is shared, not copied: every circuit built refers to the
  /// same characterized specs and mode tables.
  explicit CircuitBuilder(std::shared_ptr<const cell::CellLibrary> library);

  /// Convenience: wraps `library` in a shared_ptr by copy.
  explicit CircuitBuilder(const cell::CellLibrary& library);

  /// Validate `desc` against the library and emit the circuit. Primary
  /// inputs are declared in netlist order (the stimulus order for
  /// Circuit::simulate and BatchRunner). Wires are emitted as single-input
  /// buffer gates carrying a WireChannel.
  std::unique_ptr<Circuit> build(const cell::NetlistDesc& desc) const;

  /// Parse-and-build conveniences for netlist text / files.
  std::unique_ptr<Circuit> build_text(const std::string& netlist_text) const;
  std::unique_ptr<Circuit> build_file(const std::string& path) const;

  /// Validate `desc` and emit it as `n_shards` shard circuits for parallel
  /// simulation by sim::ShardedCircuit. Elements are split into contiguous
  /// runs of the topological order, balanced by element count, with each
  /// cut placed (within a balance slack) at the topo position where the
  /// fewest nets are live -- a cheap min-cut that keeps the shard graph
  /// acyclic by construction. n_shards is clamped to [1, n_elements];
  /// simulation output is bit-identical to build() + Circuit::simulate for
  /// any shard count.
  std::unique_ptr<ShardedCircuit> build_sharded(const cell::NetlistDesc& desc,
                                                std::size_t n_shards) const;

  /// Validate `desc` against the library (the same checks and ConfigError
  /// diagnostics as build()) and return its topology without instantiating
  /// any channel. This is the static-analysis entry point: the sta layer
  /// walks the returned topological order to build its timing graph.
  NetlistTopology analyze_topology(const cell::NetlistDesc& desc) const;

  /// Collapsed wire tables of one validated WIRE statement (shared,
  /// memoized per distinct geometry). The sta layer reads static per-arc
  /// wire delays off these tables.
  std::shared_ptr<const wire::WireModeTables> wire_tables(
      const cell::NetlistWire& wire) const {
    return wire_tables_for(wire);
  }

  const cell::CellLibrary& library() const { return *library_; }

  /// Number of distinct wire geometries collapsed so far (testing hook for
  /// the collapse-once guarantee across repeated build() calls).
  std::size_t n_wire_tables() const;

 private:
  std::shared_ptr<const wire::WireModeTables> wire_tables_for(
      const cell::NetlistWire& wire) const;

  /// Emit one validated element (gate or wire) of `desc` into `circuit`;
  /// `specs` is the per-instance resolved cell spec list.
  void emit_element(Circuit& circuit, const cell::NetlistDesc& desc,
                    const std::vector<const cell::CellSpec*>& specs,
                    std::size_t e) const;

  std::shared_ptr<const cell::CellLibrary> library_;
  // One collapsed table per distinct WireParams fingerprint, shared by
  // every WireChannel instance across all circuits this builder emits (and
  // across builder copies, which share the cache object). Guarded so
  // factory clones may be built from concurrent threads.
  struct WireTableCache {
    std::mutex mutex;
    std::unordered_map<std::string,
                       std::shared_ptr<const wire::WireModeTables>>
        tables;
  };
  std::shared_ptr<WireTableCache> wire_cache_;
};

}  // namespace charlie::sim
