// Netlist-driven circuit construction against a characterized cell library.
//
// CircuitBuilder is the instantiation half of the characterize-once /
// instantiate-many lifecycle: it consumes a cell::NetlistDesc (primary
// inputs, primary outputs, cell instances, RC wires) and a
// cell::CellLibrary and emits a validated sim::Circuit -- hybrid MIS cells
// get HybridGateChannel instances sharing the library's per-cell mode
// tables, SIS cells get inertial channels with the library's characterized
// delays, and WIRE statements get hybrid WireChannel instances sharing one
// collapsed wire::WireModeTables per distinct wire geometry (memoized
// inside the builder, so BatchRunner's per-worker build() clones never
// re-derive a collapse). Calling build() repeatedly re-instantiates the
// circuit without re-deriving anything.
//
// build() validates the netlist against the library and throws ConfigError
// (with the offending net/cell and source line when available) for:
//   * unknown cell names;
//   * arity mismatches between an instance and its cell;
//   * duplicate net definitions (two drivers -- gate or wire -- or a
//     driver colliding with a primary input);
//   * undriven nets (an instance or wire input that nothing defines);
//   * invalid wire parameters (wire::WireParams::validate);
//   * declared primary outputs that no net defines;
//   * combinational cycles (the engine requires acyclic circuits).
// Instances and wires may appear in any order; the builder topologically
// sorts them.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "sim/circuit.hpp"
#include "sim/sharded_circuit.hpp"
#include "wire/wire_tables.hpp"

namespace charlie::sim {

class CircuitBuilder {
 public:
  /// The library is shared, not copied: every circuit built refers to the
  /// same characterized specs and mode tables.
  explicit CircuitBuilder(std::shared_ptr<const cell::CellLibrary> library);

  /// Convenience: wraps `library` in a shared_ptr by copy.
  explicit CircuitBuilder(const cell::CellLibrary& library);

  /// Validate `desc` against the library and emit the circuit. Primary
  /// inputs are declared in netlist order (the stimulus order for
  /// Circuit::simulate and BatchRunner). Wires are emitted as single-input
  /// buffer gates carrying a WireChannel.
  std::unique_ptr<Circuit> build(const cell::NetlistDesc& desc) const;

  /// Parse-and-build conveniences for netlist text / files.
  std::unique_ptr<Circuit> build_text(const std::string& netlist_text) const;
  std::unique_ptr<Circuit> build_file(const std::string& path) const;

  /// Validate `desc` and emit it as `n_shards` shard circuits for parallel
  /// simulation by sim::ShardedCircuit. Elements are split into contiguous
  /// runs of the topological order, balanced by element count, with each
  /// cut placed (within a balance slack) at the topo position where the
  /// fewest nets are live -- a cheap min-cut that keeps the shard graph
  /// acyclic by construction. n_shards is clamped to [1, n_elements];
  /// simulation output is bit-identical to build() + Circuit::simulate for
  /// any shard count.
  std::unique_ptr<ShardedCircuit> build_sharded(const cell::NetlistDesc& desc,
                                                std::size_t n_shards) const;

  const cell::CellLibrary& library() const { return *library_; }

  /// Number of distinct wire geometries collapsed so far (testing hook for
  /// the collapse-once guarantee across repeated build() calls).
  std::size_t n_wire_tables() const;

 private:
  std::shared_ptr<const wire::WireModeTables> wire_tables_for(
      const cell::NetlistWire& wire) const;

  /// Emit one validated element (gate or wire) of `desc` into `circuit`;
  /// `specs` is the per-instance resolved cell spec list.
  void emit_element(Circuit& circuit, const cell::NetlistDesc& desc,
                    const std::vector<const cell::CellSpec*>& specs,
                    std::size_t e) const;

  std::shared_ptr<const cell::CellLibrary> library_;
  // One collapsed table per distinct WireParams fingerprint, shared by
  // every WireChannel instance across all circuits this builder emits (and
  // across builder copies, which share the cache object). Guarded so
  // factory clones may be built from concurrent threads.
  struct WireTableCache {
    std::mutex mutex;
    std::unordered_map<std::string,
                       std::shared_ptr<const wire::WireModeTables>>
        tables;
  };
  std::shared_ptr<WireTableCache> wire_cache_;
};

}  // namespace charlie::sim
