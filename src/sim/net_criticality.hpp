// Shared net-criticality ranking.
//
// Two subsystems count how often each net is the critical one: BatchRunner
// tallies which observed net carried each run's critical delay (Monte
// Carlo), and the sta layer tallies which endpoint owned the worst slack
// across sampled corners. Both reduce to the same shape -- a count per
// named net -- and both want the same presentation: non-zero entries,
// most-critical first, deterministic tie order. This header is that one
// shared path, so reports from the two engines stay comparable
// side-by-side.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace charlie::sim {

/// One net's criticality tally.
struct NetCriticality {
  std::string net;
  std::uint64_t count = 0;
};

/// Rank nets by criticality count: descending count, ties broken by the
/// position in `nets` (declaration order), zero-count nets dropped.
/// `counts` must be parallel to `nets`.
std::vector<NetCriticality> rank_net_criticality(
    const std::vector<std::string>& nets,
    const std::vector<std::uint64_t>& counts);

}  // namespace charlie::sim
