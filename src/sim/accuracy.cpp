#include "sim/accuracy.hpp"

#include <algorithm>
#include <cmath>

#include "sim/run_channel.hpp"
#include "spice/rc_line.hpp"
#include "util/error.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "waveform/digitize.hpp"
#include "waveform/metrics.hpp"

namespace charlie::sim {

AccuracyOptions::AccuracyOptions() {
  // Crossing-time fidelity of ~0.1 ps is ample for ps-scale deviation
  // areas; keep the analog runs fast.
  transient.v_abstol = 5e-5;
  transient.v_reltol = 5e-4;
}

AccuracyResult evaluate_accuracy(const spice::Technology& tech,
                                 const waveform::TraceConfig& config,
                                 const std::vector<ModelUnderTest>& models,
                                 const AccuracyOptions& options) {
  return evaluate_gate_accuracy(tech, spice::CellKind::kNor2, config, models,
                                options);
}

AccuracyResult evaluate_gate_accuracy(const spice::Technology& tech,
                                      spice::CellKind cell,
                                      const waveform::TraceConfig& config,
                                      const std::vector<ModelUnderTest>& models,
                                      const AccuracyOptions& options) {
  CHARLIE_ASSERT(!models.empty());
  const auto baseline_it =
      std::find_if(models.begin(), models.end(),
                   [](const ModelUnderTest& m) { return m.is_baseline; });
  CHARLIE_ASSERT_MSG(baseline_it != models.end(),
                     "accuracy: a baseline model is required");
  const std::size_t baseline_index =
      static_cast<std::size_t>(baseline_it - models.begin());
  const std::size_t n_inputs =
      static_cast<std::size_t>(spice::cell_arity(cell));

  util::Rng rng(options.seed);
  std::vector<std::vector<double>> areas(models.size());

  AccuracyResult result;
  result.config_label = config.label();

  for (int rep = 0; rep < options.repetitions; ++rep) {
    util::Rng rep_rng = rng.fork();
    // Floor t_start so the first edge's ramp can develop from a settled DC
    // state; never move a caller-specified start earlier (see
    // AccuracyOptions).
    waveform::TraceConfig cfg = config;
    cfg.t_start = std::max(cfg.t_start, 2.0 * tech.input_rise_time);
    const auto traces = waveform::generate_traces(cfg, n_inputs, rep_rng);
    double t_last = cfg.t_start;
    for (const auto& trace : traces) {
      if (!trace.empty()) t_last = std::max(t_last, trace.transitions().back());
    }
    const double t_end = t_last + options.tail_time;

    // Golden analog reference.
    const auto analog =
        spice::run_gate_cell(tech, cell, traces, t_end, options.transient);
    const auto golden = waveform::digitize(analog.vo, tech.vth());
    // Digital models see the digitized analog inputs, so runt pulses that
    // never reach V_th are absent for every model consistently.
    std::vector<waveform::DigitalTrace> digitized;
    digitized.reserve(n_inputs);
    for (const auto& wave : analog.vin) {
      digitized.push_back(waveform::digitize(wave, tech.vth()));
    }
    result.golden_transitions += static_cast<long>(golden.n_transitions());

    for (std::size_t m = 0; m < models.size(); ++m) {
      auto channel = models[m].make();
      const auto out = run_gate_channel(*channel, digitized, 0.0, t_end);
      areas[m].push_back(
          waveform::deviation_area(golden, out, 0.0, t_end));
    }
  }

  const double baseline_mean = math::mean(areas[baseline_index]);
  CHARLIE_ASSERT_MSG(baseline_mean > 0.0,
                     "accuracy: baseline produced zero deviation area");
  for (std::size_t m = 0; m < models.size(); ++m) {
    ModelAccuracy acc;
    acc.name = models[m].name;
    acc.mean_area = math::mean(areas[m]);
    acc.stddev_area = math::stddev(areas[m]);
    acc.normalized = acc.mean_area / baseline_mean;
    result.models.push_back(std::move(acc));
  }
  return result;
}

WireAccuracyOptions::WireAccuracyOptions() {
  // Same fidelity/runtime trade as AccuracyOptions: ~0.1 ps crossing
  // fidelity is ample for ps-scale deviation areas.
  transient.v_abstol = 5e-5;
  transient.v_reltol = 5e-4;
}

AccuracyResult evaluate_wire_accuracy(
    const wire::WireParams& params, const waveform::TraceConfig& config,
    const std::vector<WireModelUnderTest>& models,
    const WireAccuracyOptions& options) {
  CHARLIE_ASSERT(!models.empty());
  params.validate();
  const auto baseline_it =
      std::find_if(models.begin(), models.end(),
                   [](const WireModelUnderTest& m) { return m.is_baseline; });
  CHARLIE_ASSERT_MSG(baseline_it != models.end(),
                     "wire accuracy: a baseline model is required");
  const std::size_t baseline_index =
      static_cast<std::size_t>(baseline_it - models.begin());

  spice::RcLineSpec spec;
  spec.r_total = params.r_total;
  spec.c_total = params.c_total;
  spec.n_sections = params.n_sections;
  spec.r_drive = params.r_drive;
  spec.c_load = params.c_load;
  spec.vdd = params.vdd;

  util::Rng rng(options.seed);
  std::vector<std::vector<double>> areas(models.size());

  AccuracyResult result;
  result.config_label = config.label();

  for (int rep = 0; rep < options.repetitions; ++rep) {
    util::Rng rep_rng = rng.fork();
    // Floor t_start so the first edge's ramp can develop from a settled DC
    // state (same convention as the gate experiment).
    waveform::TraceConfig cfg = config;
    cfg.t_start = std::max(cfg.t_start, 2.0 * options.drive_rise_time);
    const auto traces = waveform::generate_traces(cfg, 1, rep_rng);
    const auto& drive = traces.front();
    double t_last = cfg.t_start;
    if (!drive.empty()) t_last = std::max(t_last, drive.transitions().back());
    const double t_end = t_last + options.tail_time;

    // Golden: the full uncollapsed ladder on the analog substrate.
    const auto analog = spice::run_rc_line(spec, drive, options.drive_rise_time,
                                           t_end, options.transient);
    const auto golden = waveform::digitize(analog.vout, params.vth());
    // Models see the digitized analog drive, so runt drive pulses that never
    // reach V_th are absent for every model consistently.
    const auto digitized = waveform::digitize(analog.vin, params.vth());
    result.golden_transitions += static_cast<long>(golden.n_transitions());

    for (std::size_t m = 0; m < models.size(); ++m) {
      auto channel = models[m].make();
      const auto out = run_sis_channel(*channel, digitized, 0.0, t_end);
      areas[m].push_back(waveform::deviation_area(golden, out, 0.0, t_end));
    }
  }

  const double baseline_mean = math::mean(areas[baseline_index]);
  CHARLIE_ASSERT_MSG(baseline_mean > 0.0,
                     "wire accuracy: baseline produced zero deviation area");
  for (std::size_t m = 0; m < models.size(); ++m) {
    ModelAccuracy acc;
    acc.name = models[m].name;
    acc.mean_area = math::mean(areas[m]);
    acc.stddev_area = math::stddev(areas[m]);
    acc.normalized = acc.mean_area / baseline_mean;
    result.models.push_back(std::move(acc));
  }
  return result;
}

}  // namespace charlie::sim
