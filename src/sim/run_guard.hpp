// Per-run execution budgets and structured failure status.
//
// A production engine ingesting arbitrary synthesized netlists and
// week-long Monte-Carlo batches cannot let one runaway run (oscillation,
// non-converging solve, corrupt input) hang or abort the whole job. The
// types here give every run a budget and a structured outcome:
//
//   RunBudget      -- event-count ceiling, wall-clock deadline, cooperative
//                     cancellation token, all optional.
//   RunStatus      -- ok / budget_exhausted / deadline_exceeded / cancelled
//                     / failed. Anything but kOk means the run terminated
//                     early; its traces are a valid prefix of the full run.
//   RunDiagnostics -- status, event count, horizon reached, the numerical
//                     guard/fallback counters (util::RunCounters) consumed
//                     by the run, and the captured error text for kFailed.
//   RunGuard       -- the supervisor SimSession polls in its event loop.
//
// Determinism: the event-count budget is checked against the engine's own
// deterministic event counter, so a budget-terminated run stops at the
// same event and produces bit-identical partial traces on every host and
// thread count. Wall-clock deadlines and cancellation are inherently
// host-dependent; they trade determinism for liveness (docs/robustness.md).
#pragma once

#include <atomic>
#include <chrono>
#include <string>

#include "util/diagnostics.hpp"

namespace charlie::sim {

enum class RunStatus {
  kOk,               // ran to the requested horizon
  kBudgetExhausted,  // event-count budget hit (deterministic cut)
  kDeadlineExceeded, // wall-clock deadline hit
  kCancelled,        // cooperative cancellation token observed
  kFailed,           // an exception was captured into the result
};

const char* to_string(RunStatus status);

struct RunBudget {
  /// Engine events (stimulus + gate firings) the run may process;
  /// 0 = unlimited.
  long max_events = 0;
  /// Wall-clock seconds the run may consume; 0 = unlimited.
  double max_wall_seconds = 0.0;
  /// Cooperative cancellation: the run terminates with kCancelled soon
  /// after the pointee becomes true. May be shared by many runs. The
  /// pointee must outlive every run holding the pointer.
  const std::atomic<bool>* cancel = nullptr;
  /// Events between wall-clock/cancellation polls (the event-count ceiling
  /// itself is checked on every event).
  long check_interval = 512;

  bool enabled() const {
    return max_events > 0 || max_wall_seconds > 0.0 || cancel != nullptr;
  }
};

struct RunDiagnostics {
  RunStatus status = RunStatus::kOk;
  long n_events = 0;          // events processed before termination
  double t_horizon = 0.0;     // simulated time actually reached
  /// Guard/fallback counters consumed by this run (snapshot diff of the
  /// executing thread's util::RunCounters).
  util::RunCounters counters;
  /// what() of the captured exception; empty unless status == kFailed.
  std::string error;

  /// One-line printable summary, e.g.
  /// "ok: 412 events, 2 newton->brent fallbacks".
  std::string summary() const;
};

/// Budget supervisor for one run. Construction snapshots the thread's
/// fallback counters and stamps the wall clock; check() is the per-event
/// poll; finish() produces the diagnostics record.
class RunGuard {
 public:
  explicit RunGuard(const RunBudget& budget);

  /// Returns kOk while the run may continue, else the tripped status.
  /// Cheap: the event ceiling is one compare; the wall clock and the
  /// cancellation token are polled every `check_interval` events.
  RunStatus check(long n_events) {
    if (budget_.max_events > 0 && n_events >= budget_.max_events) {
      return RunStatus::kBudgetExhausted;
    }
    if (n_events >= next_poll_) return poll(n_events);
    return RunStatus::kOk;
  }

  RunDiagnostics finish(RunStatus status, long n_events,
                        double t_horizon) const;

 private:
  RunStatus poll(long n_events);

  RunBudget budget_;
  std::chrono::steady_clock::time_point t_start_;
  util::RunCounters baseline_;
  long next_poll_ = 0;
};

}  // namespace charlie::sim
