#include "sim/run_channel.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace charlie::sim {

namespace {

struct InputEvent {
  double t;
  int port;
  bool value;
};

}  // namespace

waveform::DigitalTrace run_gate_channel(GateChannel& channel,
                                        const waveform::DigitalTrace& a,
                                        const waveform::DigitalTrace& b,
                                        double t_begin, double t_end) {
  CHARLIE_ASSERT(t_end > t_begin);
  CHARLIE_ASSERT(channel.n_inputs() == 2);

  // Merge the two input traces into one chronological event list.
  std::vector<InputEvent> events;
  events.reserve(a.n_transitions() + b.n_transitions());
  for (std::size_t i = 0; i < a.n_transitions(); ++i) {
    const double t = a.transitions()[i];
    if (t > t_begin && t < t_end) events.push_back({t, 0, a.is_rising(i)});
  }
  for (std::size_t i = 0; i < b.n_transitions(); ++i) {
    const double t = b.transitions()[i];
    if (t > t_begin && t < t_end) events.push_back({t, 1, b.is_rising(i)});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const InputEvent& x, const InputEvent& y) {
                     return x.t < y.t;
                   });

  channel.initialize(t_begin,
                     {a.value_at(t_begin), b.value_at(t_begin)});
  waveform::DigitalTrace out(channel.initial_output(), {});
  bool out_value = channel.initial_output();
  double out_last_t = t_begin;

  auto fire = [&](const PendingEvent& ev) {
    channel.on_fire(ev);
    if (ev.t >= t_end) return;
    // Defensive: channels guarantee alternation, but numerical crossings
    // could in principle repeat a value; keep the trace well-formed.
    if (ev.value == out_value) return;
    const double t = std::max(ev.t, std::nextafter(out_last_t, 1e300));
    out.append_transition(t);
    out_value = ev.value;
    out_last_t = t;
  };

  for (const InputEvent& in : events) {
    // Fire everything scheduled before this input takes effect.
    while (true) {
      const auto pending = channel.pending();
      if (!pending.has_value() || pending->t > in.t) break;
      fire(*pending);
    }
    channel.on_input(in.t, in.port, in.value);
  }
  // Drain remaining output events up to t_end.
  while (true) {
    const auto pending = channel.pending();
    if (!pending.has_value() || pending->t >= t_end) break;
    fire(*pending);
  }
  return out;
}

}  // namespace charlie::sim
