#include "sim/run_channel.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"

namespace charlie::sim {

namespace {

struct InputEvent {
  double t;
  int port;
  bool value;
};

// Shared implementation over trace pointers, so the two-input convenience
// overload never copies its (potentially long) traces.
waveform::DigitalTrace run_gate_channel_impl(
    GateChannel& channel,
    std::span<const waveform::DigitalTrace* const> inputs, double t_begin,
    double t_end) {
  CHARLIE_ASSERT(t_end > t_begin);
  CHARLIE_ASSERT(channel.n_inputs() == static_cast<int>(inputs.size()));

  // Merge the input traces into one chronological event list.
  std::size_t total = 0;
  for (const auto* trace : inputs) total += trace->n_transitions();
  std::vector<InputEvent> events;
  events.reserve(total);
  for (std::size_t port = 0; port < inputs.size(); ++port) {
    const auto& trace = *inputs[port];
    for (std::size_t i = 0; i < trace.n_transitions(); ++i) {
      const double t = trace.transitions()[i];
      if (t > t_begin && t < t_end) {
        events.push_back({t, static_cast<int>(port), trace.is_rising(i)});
      }
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const InputEvent& x, const InputEvent& y) {
                     return x.t < y.t;
                   });

  std::vector<bool> initial;
  initial.reserve(inputs.size());
  for (const auto* trace : inputs) initial.push_back(trace->value_at(t_begin));
  channel.initialize(t_begin, initial);
  waveform::DigitalTrace out(channel.initial_output(), {});
  bool out_value = channel.initial_output();
  double out_last_t = t_begin;

  auto fire = [&](const PendingEvent& ev) {
    channel.on_fire(ev);
    if (ev.t >= t_end) return;
    // Defensive: channels guarantee alternation, but numerical crossings
    // could in principle repeat a value; keep the trace well-formed.
    if (ev.value == out_value) return;
    const double t = std::max(ev.t, std::nextafter(out_last_t, 1e300));
    out.append_transition(t);
    out_value = ev.value;
    out_last_t = t;
  };

  for (const InputEvent& in : events) {
    // Fire everything scheduled before this input takes effect.
    while (true) {
      const auto pending = channel.pending();
      if (!pending.has_value() || pending->t > in.t) break;
      fire(*pending);
    }
    channel.on_input(in.t, in.port, in.value);
  }
  // Drain remaining output events up to t_end.
  while (true) {
    const auto pending = channel.pending();
    if (!pending.has_value() || pending->t >= t_end) break;
    fire(*pending);
  }
  return out;
}

}  // namespace

waveform::DigitalTrace run_gate_channel(
    GateChannel& channel, std::span<const waveform::DigitalTrace> inputs,
    double t_begin, double t_end) {
  std::vector<const waveform::DigitalTrace*> refs;
  refs.reserve(inputs.size());
  for (const auto& trace : inputs) refs.push_back(&trace);
  return run_gate_channel_impl(channel, refs, t_begin, t_end);
}

waveform::DigitalTrace run_gate_channel(GateChannel& channel,
                                        const waveform::DigitalTrace& a,
                                        const waveform::DigitalTrace& b,
                                        double t_begin, double t_end) {
  const waveform::DigitalTrace* traces[] = {&a, &b};
  return run_gate_channel_impl(channel, traces, t_begin, t_end);
}

waveform::DigitalTrace run_sis_channel(SisChannel& channel,
                                       const waveform::DigitalTrace& input,
                                       double t_begin, double t_end) {
  CHARLIE_ASSERT(t_end > t_begin);
  channel.initialize(t_begin, input.value_at(t_begin));
  waveform::DigitalTrace out(channel.initial_output(), {});
  bool out_value = channel.initial_output();
  double out_last_t = t_begin;

  auto fire = [&](const PendingEvent& ev) {
    channel.on_fire(ev);
    if (ev.t >= t_end) return;
    if (ev.value == out_value) return;  // defensive, as in the gate harness
    const double t = std::max(ev.t, std::nextafter(out_last_t, 1e300));
    out.append_transition(t);
    out_value = ev.value;
    out_last_t = t;
  };

  for (std::size_t i = 0; i < input.n_transitions(); ++i) {
    const double t = input.transitions()[i];
    if (t <= t_begin || t >= t_end) continue;
    while (true) {
      const auto pending = channel.pending();
      if (!pending.has_value() || pending->t > t) break;
      fire(*pending);
    }
    channel.on_input(t, input.is_rising(i));
  }
  while (true) {
    const auto pending = channel.pending();
    if (!pending.has_value() || pending->t >= t_end) break;
    fire(*pending);
  }
  return out;
}

}  // namespace charlie::sim
