#include "sim/channel.hpp"

namespace charlie::sim {

// Interface-only translation unit: keeps the vtables anchored here.

}  // namespace charlie::sim
