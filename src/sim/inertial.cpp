#include "sim/inertial.hpp"

#include "util/error.hpp"

namespace charlie::sim {

InertialChannel::InertialChannel(double delay_up, double delay_down)
    : delay_up_(delay_up), delay_down_(delay_down) {
  CHARLIE_ASSERT(delay_up >= 0.0 && delay_down >= 0.0);
}

void InertialChannel::set_delays(double delay_up, double delay_down) {
  CHARLIE_ASSERT(delay_up >= 0.0 && delay_down >= 0.0);
  delay_up_ = delay_up;
  delay_down_ = delay_down;
}

void InertialChannel::initialize(double t0, bool value) {
  (void)t0;
  output_ = value;
  pending_.reset();
}

void InertialChannel::on_input(double t, bool value) {
  if (pending_.has_value()) {
    // The pulse between the previous input transition and this one is
    // shorter than the channel delay: both transitions are swallowed.
    pending_.reset();
    CHARLIE_ASSERT_MSG(value == output_,
                       "inertial channel: input did not alternate");
    return;
  }
  if (value == output_) {
    return;  // no-op transition (can follow a cancellation)
  }
  pending_ = PendingEvent{t + (value ? delay_up_ : delay_down_), value};
}

void InertialChannel::on_fire(const PendingEvent& fired) {
  CHARLIE_ASSERT(pending_.has_value());
  output_ = fired.value;
  pending_.reset();
}

}  // namespace charlie::sim
