#include "sim/nor_models.hpp"

#include "util/error.hpp"

namespace charlie::sim {

SisNorGate::SisNorGate(std::unique_ptr<SisChannel> channel)
    : channel_(std::move(channel)) {
  CHARLIE_ASSERT(channel_ != nullptr);
}

void SisNorGate::initialize(double t0, const std::vector<bool>& values) {
  CHARLIE_ASSERT(values.size() == 2);
  in_a_ = values[0];
  in_b_ = values[1];
  nor_value_ = !(in_a_ || in_b_);
  channel_->initialize(t0, nor_value_);
}

bool SisNorGate::initial_output() const { return channel_->initial_output(); }

std::optional<PendingEvent> SisNorGate::pending() const {
  return channel_->pending();
}

void SisNorGate::on_input(double t, int port, bool value) {
  CHARLIE_ASSERT(port == 0 || port == 1);
  if (port == 0) {
    in_a_ = value;
  } else {
    in_b_ = value;
  }
  const bool nor_new = !(in_a_ || in_b_);
  if (nor_new == nor_value_) {
    // The zero-time gate output is unchanged (the other input still holds
    // it); nothing reaches the channel.
    return;
  }
  nor_value_ = nor_new;
  channel_->on_input(t, nor_new);
}

void SisNorGate::on_fire(const PendingEvent& fired) {
  channel_->on_fire(fired);
}

std::unique_ptr<GateChannel> make_inertial_nor(const SisNorDelays& delays) {
  return std::make_unique<SisNorGate>(
      std::make_unique<InertialChannel>(delays.rise, delays.fall));
}

std::unique_ptr<GateChannel> make_pure_nor(const SisNorDelays& delays) {
  // A pure delay must be direction-independent to preserve ordering; use
  // the mean of the two directions.
  const double d = 0.5 * (delays.rise + delays.fall);
  return std::make_unique<SisNorGate>(std::make_unique<PureDelayChannel>(d));
}

std::unique_ptr<GateChannel> make_exp_nor(const SisNorDelays& delays,
                                          double delta_min) {
  ExpChannelParams p;
  p.delta_inf_up = delays.rise;
  p.delta_inf_down = delays.fall;
  p.delta_min = delta_min;
  return std::make_unique<SisNorGate>(std::make_unique<ExpChannel>(p));
}

std::unique_ptr<GateChannel> make_sumexp_nor(const SisNorDelays& delays,
                                             double delta_min) {
  SumExpChannelParams p;
  p.delta_min = delta_min;
  p.calibrate_direction(true, delays.rise);
  p.calibrate_direction(false, delays.fall);
  return std::make_unique<SisNorGate>(std::make_unique<SumExpChannel>(p));
}

}  // namespace charlie::sim
