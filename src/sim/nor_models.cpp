#include "sim/nor_models.hpp"

#include "util/error.hpp"

namespace charlie::sim {

std::unique_ptr<GateChannel> make_inertial_nor(const SisNorDelays& delays) {
  return make_inertial_gate(core::GateTopology::kNorLike, 2,
                            {delays.rise, delays.fall});
}

std::unique_ptr<GateChannel> make_pure_nor(const SisNorDelays& delays) {
  return make_pure_gate(core::GateTopology::kNorLike, 2,
                        {delays.rise, delays.fall});
}

std::unique_ptr<GateChannel> make_exp_nor(const SisNorDelays& delays,
                                          double delta_min) {
  ExpChannelParams p;
  p.delta_inf_up = delays.rise;
  p.delta_inf_down = delays.fall;
  p.delta_min = delta_min;
  return std::make_unique<SisNorGate>(std::make_unique<ExpChannel>(p));
}

std::unique_ptr<GateChannel> make_sumexp_nor(const SisNorDelays& delays,
                                             double delta_min) {
  SumExpChannelParams p;
  p.delta_min = delta_min;
  p.calibrate_direction(true, delays.rise);
  p.calibrate_direction(false, delays.fall);
  return std::make_unique<SisNorGate>(std::make_unique<SumExpChannel>(p));
}

}  // namespace charlie::sim
