#include "sim/exp_channel.hpp"

#include <cmath>

#include "util/error.hpp"

namespace charlie::sim {

namespace {
constexpr double kLn2 = 0.6931471805599453;
}

double ExpChannelParams::tau_up() const {
  return (delta_inf_up - delta_min) / kLn2;
}

double ExpChannelParams::tau_down() const {
  return (delta_inf_down - delta_min) / kLn2;
}

void ExpChannelParams::validate() const {
  CHARLIE_ASSERT_MSG(delta_min >= 0.0, "exp channel: delta_min < 0");
  CHARLIE_ASSERT_MSG(delta_inf_up > delta_min,
                     "exp channel: delta_inf_up must exceed delta_min");
  CHARLIE_ASSERT_MSG(delta_inf_down > delta_min,
                     "exp channel: delta_inf_down must exceed delta_min");
}

ExpChannel::ExpChannel(const ExpChannelParams& params) : params_(params) {
  params_.validate();
}

void ExpChannel::initialize(double t0, bool value) {
  t_ref_ = t0;
  v_ref_ = value ? 1.0 : 0.0;
  target_ = v_ref_;
  tau_ = value ? params_.tau_up() : params_.tau_down();
  output_ = value;
  committed_.clear();
  live_.reset();
}

std::optional<PendingEvent> ExpChannel::pending() const {
  if (!committed_.empty()) return committed_.front();
  return live_;
}

double ExpChannel::state_at(double t) const {
  if (t <= t_ref_) return v_ref_;
  return target_ + (v_ref_ - target_) * std::exp(-(t - t_ref_) / tau_);
}

void ExpChannel::on_input(double t, bool value) {
  const double te = t + params_.delta_min;  // pure delay defers the effect
  // A crossing before the effective input time has already happened and
  // cannot be cancelled by this input.
  if (live_.has_value() && live_->t <= te) {
    committed_.push_back(*live_);
  }
  live_.reset();
  const double v_now = state_at(te);

  t_ref_ = te;
  v_ref_ = v_now;
  target_ = value ? 1.0 : 0.0;
  tau_ = value ? params_.tau_up() : params_.tau_down();

  if (value && v_now < 0.5) {
    // Rising crossing: v(t) = 1 - (1 - v_now) e^{-dt/tau} = 1/2.
    const double dt = tau_ * std::log((1.0 - v_now) / 0.5);
    live_ = PendingEvent{te + dt, true};
  } else if (!value && v_now > 0.5) {
    const double dt = tau_ * std::log(v_now / 0.5);
    live_ = PendingEvent{te + dt, false};
  }
  // Otherwise the waveform is already on the target side of the threshold:
  // any previously pending crossing is unreachable now (cancellation).
}

void ExpChannel::on_fire(const PendingEvent& fired) {
  output_ = fired.value;
  if (!committed_.empty()) {
    committed_.pop_front();
    return;
  }
  CHARLIE_ASSERT(live_.has_value());
  live_.reset();
}

std::optional<double> ExpChannel::delay_function(double big_t,
                                                 bool rising) const {
  // Previous output crossing at time 0 in the opposite direction; the
  // waveform keeps relaxing from 1/2 toward the opposite rail. The input
  // takes effect at T + delta_min.
  const double tau_new = rising ? params_.tau_up() : params_.tau_down();
  const double tau_old = rising ? params_.tau_down() : params_.tau_up();
  const double age = big_t + params_.delta_min;
  // When the input takes effect the old segment has relaxed from 1/2 away
  // from the new target rail for `age` seconds, so the distance to that
  // rail is (by up/down symmetry of the normalized waveform)
  //   gap(age) = 1 - 1/2 e^{-age/tau_old}.
  // For age < 0 (input before the previous output crossing) this
  // analytically continues the old segment backward; the delay becomes
  // smaller than delta_min and eventually NEGATIVE -- the IDM convention
  // under which -delta_down(-delta_up(T)) = T holds on the full domain
  // T > -delta_inf of the opposite direction. The function is undefined
  // (cancellation) once the extrapolated waveform sits at or beyond the
  // opposite rail, i.e. gap <= 0.
  const double gap = 1.0 - 0.5 * std::exp(-age / tau_old);
  if (gap <= 0.0) return std::nullopt;
  return params_.delta_min + tau_new * std::log(gap / 0.5);
}

}  // namespace charlie::sim
