#include "sim/process_variation.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace charlie::sim {

namespace {

// Salt separating the process-sample stream from the stimulus stream of the
// same (seed, run_index) key.
constexpr std::uint64_t kProcessStreamSalt = 0x70726f6373616c74ULL;

void check_sigma(double sigma, const char* name) {
  if (!(sigma >= 0.0) || !std::isfinite(sigma)) {
    throw ConfigError(std::string("process variation: ") + name +
                      " must be finite and >= 0");
  }
}

}  // namespace

void ProcessVariation::validate() const {
  check_sigma(vdd_sigma, "vdd_sigma");
  check_sigma(vth_sigma, "vth_sigma");
  check_sigma(drive_sigma, "drive_sigma");
  if (!(max_sigma > 0.0) || !std::isfinite(max_sigma)) {
    throw ConfigError("process variation: max_sigma must be finite and > 0");
  }
  if (grid_levels < 2) {
    throw ConfigError("process variation: grid_levels must be >= 2");
  }
  if (vdd_nominal < 0.0 || !std::isfinite(vdd_nominal)) {
    throw ConfigError("process variation: vdd_nominal must be >= 0");
  }
  if (max_sigma * vdd_sigma >= 1.0 || max_sigma * drive_sigma >= 1.0) {
    throw ConfigError(
        "process variation: the clamped span crosses zero supply or drive "
        "(max_sigma * sigma must stay below 1 for the scale axes)");
  }
}

core::ProcessPoint ProcessVariation::sample(std::uint64_t seed,
                                            std::uint64_t run_index) const {
  util::CounterRng rng(seed ^ kProcessStreamSalt, run_index);
  core::ProcessPoint p;
  // Always draw all three axes: the stream layout (two uniforms per draw)
  // must not depend on which sigmas are active. A zero sigma returns the
  // mean exactly, so inactive axes stay bit-exactly nominal.
  p.vdd_scale = rng.normal_clamped(1.0, vdd_sigma, max_sigma);
  p.vth_shift = rng.normal_clamped(0.0, vth_sigma, max_sigma);
  p.drive_scale = rng.normal_clamped(1.0, drive_sigma, max_sigma);
  return p;
}

core::ModeTableGrid::Spec ProcessVariation::grid_spec() const {
  validate();
  const auto levels = static_cast<std::size_t>(grid_levels);
  core::ModeTableGrid::Spec spec;
  if (vdd_sigma > 0.0) {
    spec.vdd_scale = {1.0 + vdd_sigma * -max_sigma,
                      1.0 + vdd_sigma * max_sigma, levels};
  }
  if (vth_sigma > 0.0) {
    spec.vth_shift = {0.0 + vth_sigma * -max_sigma,
                      0.0 + vth_sigma * max_sigma, levels};
  }
  if (drive_sigma > 0.0) {
    spec.drive_scale = {1.0 + drive_sigma * -max_sigma,
                        1.0 + drive_sigma * max_sigma, levels};
  }
  return spec;
}

void ProcessBinder::build_grids(Circuit& circuit,
                                const core::ModeTableGrid::Spec& spec,
                                GridMap& grids) {
  circuit.for_each_mis_channel([&](GateChannel& channel) {
    auto* hybrid = dynamic_cast<HybridGateChannel*>(&channel);
    if (hybrid == nullptr) return;  // non-hybrid MIS channels stay nominal
    auto& slot = grids[hybrid->gate_tables().get()];
    if (slot == nullptr) {
      slot = std::make_shared<const core::ModeTableGrid>(
          hybrid->gate_tables()->gate_params(), spec);
    }
  });
}

ProcessBinder::ProcessBinder(Circuit& circuit, const GridMap& grids,
                             double vdd_override)
    : vdd_nominal_(vdd_override) {
  std::map<const core::GateModeTables*, std::size_t> rebind_of;
  circuit.for_each_mis_channel([&](GateChannel& channel) {
    auto* hybrid = dynamic_cast<HybridGateChannel*>(&channel);
    if (hybrid == nullptr) return;
    const auto& nominal = hybrid->gate_tables();
    const auto [it, inserted] =
        rebind_of.emplace(nominal.get(), rebinds_.size());
    if (inserted) {
      const auto grid_it = grids.find(nominal.get());
      if (grid_it == grids.end()) {
        throw ConfigError(
            "process binder: no grid for a hybrid table; run build_grids "
            "over this circuit first");
      }
      TableRebind rebind;
      rebind.nominal = nominal;
      rebind.grid = grid_it->second;
      rebind.local = std::make_shared<core::GateModeTables>(*nominal);
      rebinds_.push_back(std::move(rebind));
    }
    if (vdd_nominal_ == 0.0) {
      vdd_nominal_ = nominal->gate_params().vdd;
    }
    hybrid_channels_.push_back({hybrid, it->second});
  });
  circuit.for_each_sis_channel([&](SisChannel& channel) {
    auto* inertial = dynamic_cast<InertialChannel*>(&channel);
    if (inertial == nullptr) return;  // wire/pure-delay channels stay nominal
    inertial_.push_back(
        {inertial, inertial->delay_up(), inertial->delay_down()});
  });
  if (!inertial_.empty() && vdd_nominal_ <= 0.0) {
    throw ConfigError(
        "process binder: circuit has inertial channels but no hybrid gate "
        "to read the nominal VDD from; set ProcessVariation::vdd_nominal");
  }
}

void ProcessBinder::bind(const core::ProcessPoint& point) {
  const bool nominal = point.is_nominal();
  if (!nominal) {
    for (TableRebind& rebind : rebinds_) {
      rebind.grid->interpolate_into(point, *rebind.local);
    }
  }
  for (const HybridSlot& slot : hybrid_channels_) {
    const TableRebind& rebind = rebinds_[slot.rebind];
    if (nominal) {
      slot.channel->rebind_tables(rebind.nominal);
    } else {
      slot.channel->rebind_tables(rebind.local);
    }
  }
  if (!inertial_.empty()) {
    const double s = point.resistance_scale(vdd_nominal_);
    for (const InertialSlot& slot : inertial_) {
      slot.channel->set_delays(slot.delay_up * s, slot.delay_down * s);
    }
  }
}

}  // namespace charlie::sim
