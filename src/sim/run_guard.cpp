#include "sim/run_guard.hpp"

#include "util/error.hpp"

namespace charlie::sim {

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kBudgetExhausted:
      return "budget_exhausted";
    case RunStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case RunStatus::kCancelled:
      return "cancelled";
    case RunStatus::kFailed:
      return "failed";
  }
  CHARLIE_ASSERT_MSG(false, "invalid run status");
  return "?";
}

std::string RunDiagnostics::summary() const {
  std::string s = to_string(status);
  s += ": " + std::to_string(n_events) + " events";
  if (counters.newton_brent_fallbacks > 0) {
    s += ", " + std::to_string(counters.newton_brent_fallbacks) +
         " newton->brent fallbacks";
  }
  if (counters.scan_fallbacks > 0) {
    s += ", " + std::to_string(counters.scan_fallbacks) + " scan fallbacks";
  }
  if (counters.nonfinite_guard_trips > 0) {
    s += ", " + std::to_string(counters.nonfinite_guard_trips) +
         " non-finite guard trips";
  }
  if (counters.fit_fallbacks > 0) {
    s += ", " + std::to_string(counters.fit_fallbacks) + " fit fallbacks";
  }
  if (!error.empty()) s += ", error: " + error;
  return s;
}

RunGuard::RunGuard(const RunBudget& budget)
    : budget_(budget),
      t_start_(std::chrono::steady_clock::now()),
      baseline_(util::RunCounters::local()),
      next_poll_(budget.check_interval > 0 ? budget.check_interval : 512) {}

RunStatus RunGuard::poll(long n_events) {
  next_poll_ =
      n_events + (budget_.check_interval > 0 ? budget_.check_interval : 512);
  if (budget_.cancel != nullptr &&
      budget_.cancel->load(std::memory_order_relaxed)) {
    return RunStatus::kCancelled;
  }
  if (budget_.max_wall_seconds > 0.0) {
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - t_start_;
    if (elapsed.count() >= budget_.max_wall_seconds) {
      return RunStatus::kDeadlineExceeded;
    }
  }
  return RunStatus::kOk;
}

RunDiagnostics RunGuard::finish(RunStatus status, long n_events,
                                double t_horizon) const {
  RunDiagnostics d;
  d.status = status;
  d.n_events = n_events;
  d.t_horizon = t_horizon;
  d.counters = util::RunCounters::local() - baseline_;
  return d;
}

}  // namespace charlie::sim
