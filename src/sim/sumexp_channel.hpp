// Sum-of-exponentials involution channel (the Involution Tool's
// SumExp-Channel).
//
// Identical architecture to the Exp-Channel but with a two-time-constant
// switching waveform
//
//   v(t) = target + (v0 - target) * (w e^{-t/tau_a} + (1-w) e^{-t/tau_b}),
//
// which models gates whose output edge has a slow tail. The threshold
// crossing has no closed form, so it is located with Brent's method; the
// involution property still holds by construction (monotone waveforms).
#pragma once

#include <deque>

#include "sim/channel.hpp"

namespace charlie::sim {

struct SumExpChannelParams {
  double tau_up_a = 10e-12;
  double tau_up_b = 40e-12;
  double weight_up = 0.7;    // weight of tau_up_a
  double tau_down_a = 10e-12;
  double tau_down_b = 40e-12;
  double weight_down = 0.7;
  double delta_min = 0.0;

  void validate() const;

  /// SIS delay (crossing time of the full-swing waveform) per direction.
  double sis_delay(bool rising) const;

  /// Scale both taus of one direction so the SIS delay matches `target`
  /// (keeps the weight and the tau ratio).
  void calibrate_direction(bool rising, double target_sis);
};

class SumExpChannel final : public SisChannel {
 public:
  explicit SumExpChannel(const SumExpChannelParams& params);

  void initialize(double t0, bool value) override;
  void on_input(double t, bool value) override;
  void on_fire(const PendingEvent& fired) override;
  std::optional<PendingEvent> pending() const override;
  bool initial_output() const override { return output_; }

 private:
  double state_at(double t) const;
  double shape(double dt, bool rising) const;  // w e^{-dt/ta} + (1-w) e^{-dt/tb}

  SumExpChannelParams params_;
  double t_ref_ = 0.0;
  double v_ref_ = 0.0;
  double target_ = 0.0;
  bool segment_rising_ = false;
  bool output_ = false;
  std::deque<PendingEvent> committed_;  // decided, non-cancellable crossings
  std::optional<PendingEvent> live_;
};

}  // namespace charlie::sim
