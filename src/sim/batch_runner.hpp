// Parallel Monte-Carlo batch simulation.
//
// Runs N independent event-driven simulations of the same circuit over
// randomly generated stimuli (one deterministic RNG stream per seed) and
// aggregates throughput counters and delay/metric histograms. Work is
// spread across a worker pool with one circuit clone per worker; results
// are stored per run index and reduced sequentially, so the aggregate is
// bit-identical no matter how many threads execute it.
//
// The pool, the per-worker circuit clones, and the per-worker simulation
// arenas (trace storage, stimulus scratch) are built once -- on the first
// run() -- and reused by every later run() of the same BatchRunner, so
// repeated batches pay neither thread spin-up nor clone construction nor
// trace reallocation. Each worker's state lives on its own cache lines.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/process_point.hpp"
#include "obs/metrics.hpp"
#include "sim/circuit.hpp"
#include "sim/net_criticality.hpp"
#include "sim/process_variation.hpp"
#include "util/thread_pool.hpp"
#include "waveform/generator.hpp"

namespace charlie::sim {

/// Fixed-range histogram with order-independent counts. The range is fixed
/// up front so per-run partials merge exactly.
class Histogram {
 public:
  Histogram() = default;
  Histogram(double lo, double hi, std::size_t n_bins);

  void add(double x);
  void merge(const Histogram& other);

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  const std::vector<std::uint64_t>& bins() const { return bins_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }

 private:
  double lo_ = 0.0;
  double hi_ = 1.0;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

struct BatchConfig {
  waveform::TraceConfig trace;   // stimulus statistics, per run
  std::size_t n_runs = 16;
  // Run i's stimulus stream and process sample are pure functions of
  // (base_seed, first_run_index + i) through counter-based RNG keys (see
  // util::CounterRng), so per-run content is independent of the thread
  // count and of how a batch is split across BatchRunner instances.
  std::uint64_t base_seed = 1;
  std::uint64_t first_run_index = 0;  // global index of this batch's run 0
  std::size_t n_threads = 1;     // 0 = hardware concurrency
  double t_settle = 1e-9;        // simulated tail after the last stimulus edge
  std::size_t histogram_bins = 32;
  // Histogram ranges; 0 = auto (pulse widths up to 4 mu, response delays up
  // to mu).
  double pulse_width_hi = 0.0;
  double response_delay_hi = 0.0;
  // Per-run execution budget (event ceiling, wall-clock deadline,
  // cancellation token). Default: no limits. A tripped run terminates with
  // the corresponding status in BatchResult::diagnostics; the batch
  // continues.
  RunBudget budget;
  // Gaussian process variation; all sigmas zero (default) = nominal-only
  // batch, the pre-variation fast path with no grids or rebinding.
  ProcessVariation variation;
  // Critical-delay quantiles reported in BatchResult::stats (values in
  // (0, 1], evaluated by nearest rank on the sorted sample).
  std::vector<double> quantiles = {0.5, 0.95, 0.99};
  // Timing deadline for the yield query [s]; 0 = no deadline (the yield
  // fields of BatchResult::stats stay zero).
  double stat_deadline = 0.0;
  // Batch-local index of one run whose traces (primary inputs + observed
  // nets) are copied into BatchResult::captured, e.g. for VCD export; -1
  // disables capture. A terminated run's partial traces are still captured.
  long capture_run = -1;
};

/// Aggregates of one observed net across the whole batch.
struct NetAggregate {
  std::string net;
  long long transitions = 0;
  // Width of every pulse on this net.
  Histogram pulse_width;
  // Latency of every transition relative to the latest stimulus transition
  // at or before it (input-to-output response proxy).
  Histogram response_delay;
};

/// Distribution queries over the per-run critical delays (the largest
/// response delay a run observes across all observed nets). Failed runs and
/// runs with no response sample are excluded; everything here is reduced in
/// run order from per-run values, so it is bit-identical for any thread
/// count.
struct BatchStats {
  std::size_t n_samples = 0;  // runs contributing a critical delay
  double mean = 0.0;          // of the critical delays [s]
  double stddev = 0.0;        // population standard deviation [s]
  double min = 0.0;
  double max = 0.0;
  // (q, delay) per requested quantile: nearest-rank (ceil(q n)-th order
  // statistic) on the sorted sample; 0 when the sample is empty.
  std::vector<std::pair<double, double>> quantiles;
  // Yield against BatchConfig::stat_deadline: the fraction of sampled runs
  // whose critical delay meets (<=) the deadline. All zero when no
  // deadline was configured.
  double deadline = 0.0;
  std::size_t n_meeting_deadline = 0;
  double yield = 0.0;
  // Per observed net (parallel to BatchResult::nets): the number of
  // sampled runs whose critical delay occurred on that net (ties go to the
  // lowest net index).
  std::vector<std::uint64_t> criticality;
};

struct BatchResult {
  std::size_t n_runs = 0;
  std::size_t n_threads = 0;
  long long total_events = 0;              // engine events across all runs
  long long total_output_transitions = 0;  // on the first observed net
  std::vector<long> events_per_run;        // indexed by run (= seed offset)
  // Aggregates of the first observed net (single-net compatibility view;
  // identical to nets.front()).
  Histogram pulse_width;
  Histogram response_delay;
  // Per-net aggregates, one entry per observed net in declaration order.
  std::vector<NetAggregate> nets;
  // Per-run outcome (status, guard counters, captured error), indexed by
  // run. Runs with a non-kOk status are excluded from every aggregate
  // above -- they contribute only their diagnostics and event count.
  std::vector<RunDiagnostics> diagnostics;
  std::size_t n_failed = 0;  // runs with a non-kOk status
  // Per-run critical delay (see BatchStats), indexed by run; -1.0 for runs
  // excluded from the statistics (failed, or no response sample).
  std::vector<double> critical_delays;
  // Statistical queries over critical_delays.
  BatchStats stats;
  // Batch-level observability aggregate, reduced in run order (bit-identical
  // for any thread count): guard/fallback counters folded through
  // obs::absorb_run_counters plus batch.* counters and sim.* histograms
  // (events per run, peak event-heap depth). docs/observability.md lists
  // the names.
  obs::MetricsRegistry metrics;
  // Traces of the BatchConfig::capture_run run (primary inputs first, then
  // the observed nets, both in declaration order); empty when capture was
  // disabled or the index is out of range.
  struct CapturedTrace {
    std::string net;
    waveform::DigitalTrace trace;
  };
  std::vector<CapturedTrace> captured;

  bool all_ok() const { return n_failed == 0; }
  const NetAggregate& net(const std::string& name) const;

  /// stats.criticality as a ranked list (rank_net_criticality over the
  /// observed nets): most-critical net first, zero-count nets dropped. The
  /// same presentation the sta layer uses for corner criticality, so batch
  /// and STA reports read side-by-side.
  std::vector<NetCriticality> criticality_ranking() const;
};

/// Builds one circuit instance per worker. Called from the coordinating
/// thread only, before any simulation starts.
using CircuitFactory = std::function<std::unique_ptr<Circuit>()>;

class BatchRunner {
 public:
  /// `output_net` names the net whose trace feeds the histograms.
  BatchRunner(CircuitFactory factory, std::string output_net,
              BatchConfig config);

  /// Observe several named nets (e.g. a netlist's `output(...)`
  /// declarations): every net gets its own NetAggregate; the legacy
  /// single-net fields mirror the first entry.
  BatchRunner(CircuitFactory factory, std::vector<std::string> output_nets,
              BatchConfig config);

  /// Runs the batch. Deterministic for a fixed (factory, config): the
  /// aggregate is bit-identical for any n_threads. May be called
  /// repeatedly; workers and their circuit clones persist across calls.
  ///
  /// Per-run isolation: one run's failure (solver non-convergence,
  /// assertion, injected fault) or budget trip is captured into that run's
  /// entry in BatchResult::diagnostics while every other run completes --
  /// run() does not throw for a single bad run, and the pool stays usable.
  BatchResult run();

 private:
  // One worker's mutable simulation state, cache-line-aligned so two
  // workers never share a line through this vector (the circuit clone and
  // arena allocations behind the pointers are each worker's own).
  struct alignas(64) Worker {
    std::unique_ptr<Circuit> circuit;
    std::vector<Circuit::NetId> outputs;  // observed nets, resolved per clone
    Circuit::SimResult arena;             // reused trace storage
    std::vector<double> stim_times;       // reused merged-stimulus scratch
    // Per-worker process retargeting (variation batches only). The grids
    // behind it are shared across workers; the worker-local table copies
    // are re-filled in place per run, so rebinding never allocates.
    std::unique_ptr<ProcessBinder> binder;
  };

  void ensure_workers();

  CircuitFactory factory_;
  std::vector<std::string> output_nets_;
  BatchConfig config_;
  std::unique_ptr<util::ThreadPool> pool_;  // built on first run()
  std::vector<Worker> workers_;
};

}  // namespace charlie::sim
