// Delay-function-based MIS-aware NOR channel.
//
// This mirrors how the paper integrated the hybrid model into the
// Involution Tool: instead of carrying the analog (V_N, V_O) state through
// the simulation (HybridNorChannel), each output transition's delay is
// looked up from the precomputed MIS curves delta_fall(Delta) /
// delta_rise(Delta) at the observed input separation (a DelaySurface).
//
// The two implementations coincide on well-separated transitions but
// differ on dense activity: the delay-function channel forgets the gate's
// analog history beyond the last two input events (e.g. a partially
// drained V_N), while the state-based channel is exact. Including both
// makes that design choice measurable (bench_fig7_accuracy --ablation).
#pragma once

#include "core/delay_surface.hpp"
#include "sim/channel.hpp"

namespace charlie::sim {

class SurfaceNorChannel final : public GateChannel {
 public:
  /// The surface is borrowed and must outlive the channel (it is large and
  /// typically shared by every gate instance of the same cell).
  explicit SurfaceNorChannel(const core::DelaySurface& surface);

  int n_inputs() const override { return 2; }
  void initialize(double t0, const std::vector<bool>& values) override;
  void on_input(double t, int port, bool value) override;
  void on_fire(const PendingEvent& fired) override;
  std::optional<PendingEvent> pending() const override { return live_; }
  bool initial_output() const override { return output_; }

 private:
  const core::DelaySurface& surface_;
  bool in_a_ = false;
  bool in_b_ = false;
  bool nor_value_ = true;  // zero-time boolean NOR of the inputs
  // Last transition time per input (for the Delta = tB - tA lookup);
  // -infinity-like before any transition.
  double t_last_a_ = -1.0;
  double t_last_b_ = -1.0;
  bool output_ = false;
  std::optional<PendingEvent> live_;
};

}  // namespace charlie::sim
