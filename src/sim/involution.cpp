#include "sim/involution.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace charlie::sim {

InvolutionCheck check_involution(const DelayFunction& delta_up,
                                 const DelayFunction& delta_down,
                                 double t_lo, double t_hi, int n) {
  CHARLIE_ASSERT(n >= 2);
  InvolutionCheck result;
  for (double t : math::linspace(t_lo, t_hi, static_cast<std::size_t>(n))) {
    const auto up = delta_up(t);
    if (!up.has_value()) {
      ++result.points_cancelled;
      continue;
    }
    const auto down = delta_down(-*up);
    if (!down.has_value()) {
      ++result.points_cancelled;
      continue;
    }
    const double roundtrip = -*down;
    result.max_abs_error =
        std::max(result.max_abs_error, std::fabs(roundtrip - t));
    ++result.points_checked;
  }
  return result;
}

}  // namespace charlie::sim
