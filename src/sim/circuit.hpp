// Event-driven digital timing simulation of gate-level circuits.
//
// Architecture per the Involution Tool: zero-time boolean gates whose
// outputs drive delay channels. Any SisChannel can decorate any gate; NOR2
// gates can alternatively carry a native two-input MIS-aware channel
// (HybridNorChannel), which is the paper's extension.
//
// The circuit must be combinational (acyclic); stimuli are digital traces
// on the primary inputs.
//
// add_input/add_gate/add_mis_gate are the low-level construction API:
// callers wire channels by hand and must add gates after their input nets.
// Most circuits should instead come from a structural netlist through
// sim::CircuitBuilder + cell::CellLibrary (sim/circuit_builder.hpp), which
// validates the topology and instantiates characterized cells.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/channel.hpp"
#include "sim/run_guard.hpp"
#include "util/error.hpp"
#include "waveform/digital_trace.hpp"

namespace charlie::sim {

enum class GateKind {
  kBuf,
  kInv,
  kAnd2,
  kOr2,
  kNand2,
  kNor2,
  kXor2,
  kNor3,
  kNand3,
};

/// Maximum gate arity the engine's fixed-size input arrays support.
inline constexpr std::size_t kMaxGateArity = 3;

/// Number of inputs of a gate kind.
inline constexpr std::size_t gate_arity(GateKind kind) {
  if (kind == GateKind::kBuf || kind == GateKind::kInv) return 1;
  if (kind == GateKind::kNor3 || kind == GateKind::kNand3) return 3;
  return 2;
}

/// Zero-time boolean function of a gate, fixed three-value form (`b`/`c`
/// are ignored for lower-arity kinds). This is the event-loop hot path: a
/// plain switch over the kind, no span/vector<bool> indirection.
inline bool eval_gate(GateKind kind, bool a, bool b, bool c = false) {
  switch (kind) {
    case GateKind::kBuf:
      return a;
    case GateKind::kInv:
      return !a;
    case GateKind::kAnd2:
      return a && b;
    case GateKind::kOr2:
      return a || b;
    case GateKind::kNand2:
      return !(a && b);
    case GateKind::kNor2:
      return !(a || b);
    case GateKind::kXor2:
      return a != b;
    case GateKind::kNor3:
      return !(a || b || c);
    case GateKind::kNand3:
      return !(a && b && c);
  }
  CHARLIE_ASSERT_MSG(false, "invalid gate kind");
  return false;
}

/// Zero-time boolean function of a gate (checked, span-based convenience).
bool eval_gate(GateKind kind, std::span<const bool> inputs);

class Circuit {
 public:
  using NetId = int;

  /// Declare a primary input net.
  NetId add_input(const std::string& name);

  /// Add a gate: zero-time boolean `kind` + SIS delay channel at the
  /// output. Returns the output net.
  NetId add_gate(GateKind kind, const std::string& output_name,
                 std::vector<NetId> inputs,
                 std::unique_ptr<SisChannel> channel);

  /// Add a NOR2 with a native two-input gate channel (MIS-aware).
  ///
  /// Legacy alias: exactly add_mis_gate(GateKind::kNor2, ...). Kept for the
  /// paper-era call sites; new code should build through sim::CircuitBuilder
  /// (or call add_mis_gate directly). The builder path is bit-identical --
  /// tests/cell/test_circuit_builder.cpp proves it trace-for-trace.
  NetId add_nor2_mis(const std::string& output_name, NetId a, NetId b,
                     std::unique_ptr<GateChannel> channel);

  /// Add a gate carrying a native multi-input channel (MIS-aware); the
  /// channel arity must match the gate kind (e.g. a 3-input
  /// HybridGateChannel on kNor3/kNand3).
  NetId add_mis_gate(GateKind kind, const std::string& output_name,
                     std::vector<NetId> inputs,
                     std::unique_ptr<GateChannel> channel);

  NetId find_net(const std::string& name) const;
  const std::string& net_name(NetId id) const;
  std::size_t n_nets() const { return net_names_.size(); }
  std::size_t n_gates() const { return gates_.size(); }
  std::size_t n_inputs() const { return primary_inputs_.size(); }

  struct SimResult {
    std::vector<waveform::DigitalTrace> traces;  // indexed by NetId
    long n_events = 0;
    /// Peak event-heap occupancy over the run: how many gate firings were
    /// simultaneously scheduled. A cheap always-on observability counter
    /// (obs::MetricsRegistry aggregates it across batch runs); lives here
    /// rather than in RunDiagnostics, whose layout is frozen.
    long max_heap_depth = 0;
    /// kOk unless the run was terminated early (budget, deadline,
    /// cancellation, captured failure). A non-kOk result's traces are a
    /// valid prefix of the full run up to diagnostics.t_horizon.
    RunStatus status = RunStatus::kOk;
    RunDiagnostics diagnostics;

    bool ok() const { return status == RunStatus::kOk; }
    const waveform::DigitalTrace& trace(NetId id) const;
  };

  /// Simulate with `stimuli[i]` driving the i-th declared input (order of
  /// add_input calls).
  ///
  /// Window convention: the simulated event window is (t_begin, t_end].
  /// The initial net values are the stimuli evaluated *at* t_begin
  /// (DigitalTrace transitions take effect at exactly their timestamp), so
  /// a stimulus transition at exactly t_begin is part of the steady-state
  /// initialization, not an event -- it appears in no trace and triggers no
  /// gate activity. Transitions after t_end are ignored; gate output events
  /// land in the result only if their (channel-delayed) time is <= t_end.
  SimResult simulate(const std::vector<waveform::DigitalTrace>& stimuli,
                     double t_begin, double t_end);

  /// Arena-reusing variant: identical semantics and bit-identical output,
  /// but `out`'s per-net trace storage is reset and reused instead of
  /// reallocated -- the batch runner calls this with one arena per worker
  /// so repeated runs stop paying the trace-vector allocations.
  void simulate_into(const std::vector<waveform::DigitalTrace>& stimuli,
                     double t_begin, double t_end, SimResult& out);

  /// Budgeted variant: the run is supervised by `budget` and NEVER throws
  /// through the engine -- a tripped budget/deadline/cancellation or a
  /// captured exception (ConvergenceError, AssertionError, injected fault)
  /// terminates the run with a structured partial result whose status and
  /// diagnostics say what happened. Event-count termination is
  /// deterministic: the run stops after exactly budget.max_events processed
  /// events, so the partial traces are bit-identical on every host.
  SimResult simulate(const std::vector<waveform::DigitalTrace>& stimuli,
                     double t_begin, double t_end, const RunBudget& budget);

  /// Budgeted arena variant (same semantics as the pair above combined).
  void simulate_into(const std::vector<waveform::DigitalTrace>& stimuli,
                     double t_begin, double t_end, const RunBudget& budget,
                     SimResult& out);

  /// Number of declared primary inputs; input_net(i) is the NetId of the
  /// i-th declared input (stimulus order).
  NetId input_net(std::size_t i) const { return primary_inputs_[i]; }

  /// Visit every native multi-input (MIS) channel, in gate construction
  /// order. Process-variation binding walks these to retarget channels
  /// between runs; mutating a channel mid-simulation is undefined.
  template <typename Fn>
  void for_each_mis_channel(Fn&& fn) {
    for (auto& gate : gates_) {
      if (gate.mis != nullptr) fn(*gate.mis);
    }
  }

  /// Visit every SIS delay channel, in gate construction order.
  template <typename Fn>
  void for_each_sis_channel(Fn&& fn) {
    for (auto& gate : gates_) {
      if (gate.sis != nullptr) fn(*gate.sis);
    }
  }

 private:
  friend class SimSession;
  struct Gate {
    GateKind kind = GateKind::kBuf;
    std::vector<NetId> inputs;
    NetId output = -1;
    // Exactly one of the two channels is set.
    std::unique_ptr<SisChannel> sis;
    std::unique_ptr<GateChannel> mis;
    // Simulation state (fixed arity <= kMaxGateArity, no heap-allocated
    // bitfield):
    std::array<bool, kMaxGateArity> in_values{};
    bool zero_time_value = false;  // boolean gate output (pre-channel)
  };

  NetId new_net(const std::string& name);

  std::vector<std::string> net_names_;
  std::unordered_map<std::string, NetId> net_ids_;
  std::vector<NetId> primary_inputs_;
  std::vector<Gate> gates_;
  std::vector<std::vector<std::pair<std::size_t, int>>> fanout_;
  // fanout_[net] = list of (gate index, port)
};

}  // namespace charlie::sim
