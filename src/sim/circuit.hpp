// Event-driven digital timing simulation of gate-level circuits.
//
// Architecture per the Involution Tool: zero-time boolean gates whose
// outputs drive delay channels. Any SisChannel can decorate any gate; NOR2
// gates can alternatively carry a native two-input MIS-aware channel
// (HybridNorChannel), which is the paper's extension.
//
// The circuit must be combinational (acyclic); stimuli are digital traces
// on the primary inputs.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/channel.hpp"
#include "waveform/digital_trace.hpp"

namespace charlie::sim {

enum class GateKind {
  kBuf,
  kInv,
  kAnd2,
  kOr2,
  kNand2,
  kNor2,
  kXor2,
};

/// Zero-time boolean function of a gate.
bool eval_gate(GateKind kind, std::span<const bool> inputs);

class Circuit {
 public:
  using NetId = int;

  /// Declare a primary input net.
  NetId add_input(const std::string& name);

  /// Add a gate: zero-time boolean `kind` + SIS delay channel at the
  /// output. Returns the output net.
  NetId add_gate(GateKind kind, const std::string& output_name,
                 std::vector<NetId> inputs,
                 std::unique_ptr<SisChannel> channel);

  /// Add a NOR2 with a native two-input gate channel (MIS-aware).
  NetId add_nor2_mis(const std::string& output_name, NetId a, NetId b,
                     std::unique_ptr<GateChannel> channel);

  NetId find_net(const std::string& name) const;
  const std::string& net_name(NetId id) const;
  std::size_t n_nets() const { return net_names_.size(); }
  std::size_t n_gates() const { return gates_.size(); }

  struct SimResult {
    std::vector<waveform::DigitalTrace> traces;  // indexed by NetId
    long n_events = 0;

    const waveform::DigitalTrace& trace(NetId id) const;
  };

  /// Simulate with `stimuli[i]` driving the i-th declared input (order of
  /// add_input calls) over [t_begin, t_end].
  SimResult simulate(const std::vector<waveform::DigitalTrace>& stimuli,
                     double t_begin, double t_end);

 private:
  struct Gate {
    GateKind kind = GateKind::kBuf;
    std::vector<NetId> inputs;
    NetId output = -1;
    // Exactly one of the two channels is set.
    std::unique_ptr<SisChannel> sis;
    std::unique_ptr<GateChannel> mis;
    // Simulation state:
    std::vector<bool> in_values;
    bool zero_time_value = false;  // boolean gate output (pre-channel)
    long generation = 0;           // invalidates stale queued firings
  };

  NetId new_net(const std::string& name);

  std::vector<std::string> net_names_;
  std::unordered_map<std::string, NetId> net_ids_;
  std::vector<NetId> primary_inputs_;
  std::vector<Gate> gates_;
  std::vector<std::vector<std::pair<std::size_t, int>>> fanout_;
  // fanout_[net] = list of (gate index, port)
};

}  // namespace charlie::sim
