// Trace-level harness: drive a multi-input gate channel with digital input
// traces and collect the output trace.
#pragma once

#include <span>

#include "sim/channel.hpp"
#include "waveform/digital_trace.hpp"

namespace charlie::sim {

/// Simulate `channel` on one input trace per port over [t_begin, t_end].
/// The channel is initialized to the inputs' initial values at t_begin;
/// output events after t_end are discarded.
waveform::DigitalTrace run_gate_channel(
    GateChannel& channel, std::span<const waveform::DigitalTrace> inputs,
    double t_begin, double t_end);

/// Two-input convenience overload.
waveform::DigitalTrace run_gate_channel(GateChannel& channel,
                                        const waveform::DigitalTrace& a,
                                        const waveform::DigitalTrace& b,
                                        double t_begin, double t_end);

/// Simulate a single-input channel (e.g. a WireChannel or an inertial
/// baseline) on one input trace over [t_begin, t_end]; same semantics as
/// run_gate_channel.
waveform::DigitalTrace run_sis_channel(SisChannel& channel,
                                       const waveform::DigitalTrace& input,
                                       double t_begin, double t_end);

}  // namespace charlie::sim
