// Inertial delay channel: constant rise/fall delay, with pulse rejection --
// an input transition arriving while a previous output event is still
// pending annihilates both (the classic inertial cancellation, equivalent
// to suppressing pulses shorter than the delay).
#pragma once

#include "sim/channel.hpp"

namespace charlie::sim {

class InertialChannel final : public SisChannel {
 public:
  InertialChannel(double delay_up, double delay_down);

  void initialize(double t0, bool value) override;
  void on_input(double t, bool value) override;
  void on_fire(const PendingEvent& fired) override;
  std::optional<PendingEvent> pending() const override { return pending_; }
  bool initial_output() const override { return output_; }

  double delay_up() const { return delay_up_; }
  double delay_down() const { return delay_down_; }

  /// Retarget the delays (per-run process-variation binding). Only legal
  /// between runs: an already-pending event keeps the delay it was
  /// scheduled with.
  void set_delays(double delay_up, double delay_down);

 private:
  double delay_up_;
  double delay_down_;
  bool output_ = false;  // committed output value
  std::optional<PendingEvent> pending_;
};

}  // namespace charlie::sim
