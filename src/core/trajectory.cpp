#include "core/trajectory.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/math.hpp"

namespace charlie::core {

NorTrajectory::NorTrajectory(const NorParams& params, double t0, Mode mode,
                             const ode::Vec2& x0)
    // mode_ode no longer validates (it sits on the simulation hot path, and
    // NorModeTables validates at construction); this public entry point must
    // reject invalid parameters itself, before mode_ode divides by them.
    : params_((params.validate(), params)),
      mode_(mode),
      pieces_(t0, x0, mode_ode(mode, params)) {}

NorTrajectory NorTrajectory::from_steady_state(const NorParams& params,
                                               double t0, Mode mode,
                                               double vn_hold) {
  return NorTrajectory(params, t0, mode,
                       mode_steady_state(mode, params, vn_hold));
}

void NorTrajectory::set_inputs(double t, bool a, bool b) {
  const Mode next = mode_from_inputs(a, b);
  if (next == mode_) return;
  pieces_.switch_mode(t, mode_ode(next, params_));
  mode_ = next;
}

waveform::Waveform NorTrajectory::sample_component(double t0, double t1,
                                                   std::size_t n,
                                                   bool output_component) const {
  CHARLIE_ASSERT(t1 > t0);
  CHARLIE_ASSERT(n >= 2);
  // Merge the even grid with segment start times so corners are exact.
  std::vector<double> grid = math::linspace(t0, t1, n);
  for (const auto& seg : pieces_.segments()) {
    if (seg.t_start > t0 && seg.t_start < t1) grid.push_back(seg.t_start);
  }
  std::sort(grid.begin(), grid.end());
  waveform::Waveform w;
  double last = -1e300;
  for (double t : grid) {
    if (t <= last) continue;
    const ode::Vec2 s = pieces_.state_at(t);
    w.append(t, output_component ? s.y : s.x);
    last = t;
  }
  return w;
}

waveform::Waveform NorTrajectory::sample_vo(double t0, double t1,
                                            std::size_t n) const {
  return sample_component(t0, t1, n, true);
}

waveform::Waveform NorTrajectory::sample_vn(double t0, double t1,
                                            std::size_t n) const {
  return sample_component(t0, t1, n, false);
}

}  // namespace charlie::core
