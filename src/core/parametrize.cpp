#include "core/parametrize.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "fit/brent_min.hpp"
#include "fit/levenberg_marquardt.hpp"
#include "fit/nelder_mead.hpp"
#include "fit/param_transform.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"

namespace charlie::core {
namespace {

constexpr double kLn2 = 0.6931471805599453;

std::array<double, 6> to_array(const CharacteristicDelays& d) {
  return {d.fall_minus_inf, d.fall_zero,      d.fall_plus_inf,
          d.rise_minus_inf, d.rise_zero,      d.rise_plus_inf};
}

void check_targets(const CharacteristicDelays& d) {
  for (double v : to_array(d)) {
    if (!(v > 0.0)) {
      throw ConfigError("fit_nor_params: characteristic delays must be > 0");
    }
  }
  if (!(d.fall_minus_inf > d.fall_zero)) {
    throw ConfigError(
        "fit_nor_params: expected fall(-inf) > fall(0) (Charlie speed-up)");
  }
}

NorParams params_from_vector(const std::vector<double>& v, double vdd,
                             double delta_min) {
  NorParams p;
  p.r1 = v[0];
  p.r2 = v[1];
  p.r3 = v[2];
  p.r4 = v[3];
  p.cn = v[4];
  p.co = v[5];
  p.vdd = vdd;
  p.delta_min = delta_min;
  return p;
}

// Soft box penalty keeping the fit inside a physically plausible region
// (transistor on-resistances of kOhms to a few hundred kOhms, node
// capacitances of attofarads to femtofarads). Without it the delta_min = 0
// fit drifts to MOhm/1-aF corners whose stiff spectra are numerically
// hostile and physically meaningless.
double box_penalty(const NorParams& p) {
  auto outside = [](double v, double lo, double hi) {
    if (v < lo) return std::log(lo / v);
    if (v > hi) return std::log(v / hi);
    return 0.0;
  };
  double acc = 0.0;
  for (double r : {p.r1, p.r2, p.r3, p.r4}) {
    acc += outside(r, 1e3, 400e3);
  }
  acc += outside(p.cn, 5e-18, 5e-15);
  acc += outside(p.co, 50e-18, 50e-15);
  return acc * acc;
}

// Weighted squared mismatch of the model's *raw* characteristic delays
// (delta_min excluded on both sides) against the corrected targets,
// normalized by the target magnitudes.
double objective(const NorParams& params,
                 const std::array<double, 6>& corrected_targets,
                 const double* weights, double vn0) {
  NorParams raw = params;
  raw.delta_min = 0.0;
  const auto achieved = to_array(characteristic_delays_exact(raw, vn0));
  double acc = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    const double rel =
        (achieved[i] - corrected_targets[i]) / corrected_targets[i];
    acc += weights[i] * rel * rel;
  }
  return acc + 0.1 * box_penalty(params);
}

}  // namespace

NorParams seed_from_targets(const CharacteristicDelays& corrected,
                            double vdd) {
  NorParams p;
  p.vdd = vdd;
  p.delta_min = 0.0;
  // C_O sets the overall impedance scale; any reasonable seed works since
  // the fit explores log space. Start near the paper's magnitude.
  p.co = 600e-18;
  // eq (9): fall(-inf) = ln2 * C_O * R4.
  p.r4 = corrected.fall_minus_inf / (kLn2 * p.co);
  // eq (8): fall(0) = ln2 * C_O * (R3 || R4).
  const double r_parallel = corrected.fall_zero / (kLn2 * p.co);
  const double inv_r3 = 1.0 / r_parallel - 1.0 / p.r4;
  p.r3 = inv_r3 > 0.0 ? 1.0 / inv_r3 : p.r4;
  // Rising asymptote: roughly ln2 * C_O * (R1 + R2) once V_N has settled.
  const double r12 = corrected.rise_plus_inf / (kLn2 * p.co);
  p.r1 = 0.45 * r12;
  p.r2 = 0.55 * r12;
  p.cn = 0.1 * p.co;
  return p;
}

FitResult fit_nor_params(const CharacteristicDelays& measured,
                         const FitOptions& options) {
  check_targets(measured);
  const long fallbacks_before = util::RunCounters::local().fit_fallbacks;

  const auto measured_arr = to_array(measured);
  const double smallest_target =
      *std::min_element(measured_arr.begin(), measured_arr.end());

  // Inner fit for a given delta_min; returns (params, objective, evals).
  auto fit_for_delta_min = [&](double delta_min) {
    std::array<double, 6> corrected{};
    const auto raw_targets = measured_arr;
    for (std::size_t i = 0; i < 6; ++i) {
      corrected[i] = std::max(raw_targets[i] - delta_min, 0.05 * raw_targets[i]);
    }
    CharacteristicDelays corr;
    corr.fall_minus_inf = corrected[0];
    corr.fall_zero = corrected[1];
    corr.fall_plus_inf = corrected[2];
    corr.rise_minus_inf = corrected[3];
    corr.rise_zero = corrected[4];
    corr.rise_plus_inf = corrected[5];

    const NorParams seed = seed_from_targets(corr, options.vdd);
    const std::vector<double> x0 = fit::to_log_space(
        {seed.r1, seed.r2, seed.r3, seed.r4, seed.cn, seed.co});

    auto obj = [&](const std::vector<double>& log_x) {
      const auto x = fit::from_log_space(log_x);
      const NorParams p = params_from_vector(x, options.vdd, delta_min);
      try {
        return objective(p, corrected, options.weights, options.vn0);
      } catch (const ConvergenceError&) {
        // Infeasible corner of parameter space: a non-converging exact
        // solve is expected there and becomes a penalty.
        ++util::RunCounters::local().fit_fallbacks;
        return 1e6;
      } catch (const ConfigError&) {
        // Also expected there: log-space steps can underflow a parameter
        // to exactly 0.0, which validation rejects. Anything else
        // (AssertionError, bad_alloc) is a real bug and propagates.
        ++util::RunCounters::local().fit_fallbacks;
        return 1e6;
      }
    };

    fit::NelderMeadOptions nm;
    nm.max_evaluations = options.nelder_mead_evaluations;
    nm.initial_step = 0.25;
    auto nm_result = fit::nelder_mead(obj, x0, nm);

    if (options.refine_with_lm) {
      auto residuals = [&](const std::vector<double>& log_x) {
        const auto x = fit::from_log_space(log_x);
        const NorParams p = params_from_vector(x, options.vdd, delta_min);
        std::vector<double> r(6, 1e3);
        try {
          NorParams raw = p;
          raw.delta_min = 0.0;
          const auto achieved =
              to_array(characteristic_delays_exact(raw, options.vn0));
          for (std::size_t i = 0; i < 6; ++i) {
            r[i] = std::sqrt(options.weights[i]) *
                   (achieved[i] - corrected[i]) / corrected[i];
          }
        } catch (const ConvergenceError&) {
          // keep the large penalty residuals
          ++util::RunCounters::local().fit_fallbacks;
        } catch (const ConfigError&) {
          // underflowed-parameter corner: keep the penalty residuals too
          ++util::RunCounters::local().fit_fallbacks;
        }
        return r;
      };
      fit::LmOptions lm;
      lm.max_iterations = 60;
      const auto lm_result = fit::levenberg_marquardt(residuals, nm_result.x, lm);
      if (2.0 * lm_result.cost < nm_result.f) {
        nm_result.x = lm_result.x;
        nm_result.f = 2.0 * lm_result.cost;
      }
    }

    struct Inner {
      std::vector<double> log_x;
      double f;
      int evals;
    };
    return Inner{nm_result.x, nm_result.f, nm_result.evaluations};
  };

  double delta_min;
  if (options.forced_delta_min >= 0.0) {
    delta_min = std::min(options.forced_delta_min, 0.9 * smallest_target);
  } else if (options.fit_delta_min) {
    // Coarse-but-robust line search over delta_min (objective is expensive,
    // so keep the evaluation budget small per probe).
    auto outer = [&](double dm) { return fit_for_delta_min(dm).f; };
    fit::MinimizeOptions mo;
    mo.max_iterations = 24;
    const auto best =
        fit::brent_minimize(outer, 0.0, 0.9 * smallest_target, mo);
    delta_min = best.x;
  } else {
    delta_min = delta_min_for_ratio(measured.fall_minus_inf,
                                    measured.fall_zero, options.target_ratio);
    delta_min = std::clamp(delta_min, 0.0, 0.9 * smallest_target);
  }

  const auto inner = fit_for_delta_min(delta_min);
  FitResult result;
  result.params = params_from_vector(fit::from_log_space(inner.log_x),
                                     options.vdd, delta_min);
  result.targets = measured;
  result.achieved =
      characteristic_delays_exact(result.params, options.vn0);
  result.objective = inner.f;
  result.evaluations = inner.evals;

  const auto ach = to_array(result.achieved);
  double acc = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    const double e = ach[i] - measured_arr[i];
    acc += e * e;
  }
  result.rms_error = std::sqrt(acc / 6.0);
  result.swallowed_fallbacks = static_cast<int>(
      util::RunCounters::local().fit_fallbacks - fallbacks_before);
  return result;
}

}  // namespace charlie::core
