// Model parametrization (paper Section V).
//
// Given the six measured characteristic Charlie delays of a real gate, find
// (R1..R4, C_N, C_O) and the pure delay delta_min such that the hybrid
// model's characteristic delays match. Per the paper, a direct simultaneous
// match of delta_fall(-inf) and delta_fall(0) is impossible whenever their
// ratio exceeds (R3+R4)/R3 ~= 2, so delta_min is first chosen to restore a
// fittable ratio (18 ps for the paper's gate), then the R/C values are
// fitted by least squares on the delta_min-corrected targets.
#pragma once

#include "core/charlie_delays.hpp"
#include "core/nor_params.hpp"

namespace charlie::core {

struct FitOptions {
  double vdd = 0.8;
  double vn0 = 0.0;          // (1,1) history value for the rising targets
  bool fit_delta_min = false;  // true: line-search delta_min instead of the
                               // closed-form ratio rule
  double forced_delta_min = -1.0;  // >= 0: pin delta_min to this value
                                   // (e.g. 0 for the paper's "HM without
                                   // pure delay" variant)
  double target_ratio = 2.0;   // achievable fall(-inf)/fall(0) ratio
  // Per-target weights in the least-squares objective, ordered as
  // CharacteristicDelays {fall -inf, 0, +inf, rise -inf, 0, +inf}.
  double weights[6] = {1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  int nelder_mead_evaluations = 4000;
  bool refine_with_lm = true;
};

struct FitResult {
  NorParams params;               // includes the chosen delta_min
  CharacteristicDelays targets;   // what was asked for
  CharacteristicDelays achieved;  // what the fitted model produces
  double rms_error = 0.0;         // RMS over the six targets [s]
  double objective = 0.0;         // final weighted least-squares value
  int evaluations = 0;
  // Infeasible objective evaluations (ConvergenceError from the exact
  // delay solve) swallowed as penalty values during this fit.
  int swallowed_fallbacks = 0;
};

/// Fit the hybrid model to measured characteristic delays.
/// Throws ConfigError when targets are non-positive or unorderable.
FitResult fit_nor_params(const CharacteristicDelays& measured,
                         const FitOptions& options = {});

/// Heuristic seed derived from the closed-form relations: R4 from eq (9),
/// R3 from eq (8), R1+R2 from the rising asymptote, nominal C_N/C_O split.
NorParams seed_from_targets(const CharacteristicDelays& corrected,
                            double vdd);

}  // namespace charlie::core
