// The MIS gate-delay model of the paper (Section IV).
//
// Falling output transition (both inputs rise, separation Delta = tB - tA):
//   start in the (0,0) steady state; at t=0 the earlier input rises
//   (mode (1,0) for Delta > 0, (0,1) for Delta < 0); at t = |Delta| the
//   later input rises (mode (1,1)). The delay is measured from the earlier
//   input:  delta_fall(Delta) = tO + delta_min.
//
// Rising output transition (both inputs fall):
//   start in the (1,1) steady state with V_N frozen at vn0 (the gate's
//   switching history; the paper evaluates GND, VDD/2 and VDD); at t=0 the
//   earlier input falls (mode (1,0) for Delta < 0, (0,1) for Delta > 0); at
//   t = |Delta| the later one falls (mode (0,0)). The delay is measured from
//   the later input:  delta_rise(Delta) = tO - |Delta| + delta_min.
#pragma once

#include <optional>

#include "core/crossing.hpp"
#include "core/nor_params.hpp"
#include "core/trajectory.hpp"

namespace charlie::core {

struct DelayResult {
  double delay = 0.0;    // reported gate delay, including delta_min
  double t_cross = 0.0;  // absolute output crossing time tO (t=0 = earlier input)
  Mode intermediate = Mode::kS00;  // mode occupied during (0, |Delta|)
};

class NorDelayModel {
 public:
  explicit NorDelayModel(const NorParams& params);

  /// delta_fall(Delta): falling-output MIS delay; Delta = tB - tA.
  DelayResult falling_delay(double delta) const;

  /// delta_rise(Delta; vn0): rising-output MIS delay. vn0 is the initial
  /// internal-node voltage in the (1,1) start mode (paper: GND worst case).
  DelayResult rising_delay(double delta, double vn0 = 0.0) const;

  /// SIS limits (|Delta| -> infinity), computed on single-switch
  /// trajectories rather than by saturating Delta.
  double falling_sis_b_first() const;              // delta_fall(-inf)
  double falling_sis_a_first() const;              // delta_fall(+inf)
  double rising_sis_b_first(double vn0 = 0.0) const;  // delta_rise(-inf)
  double rising_sis_a_first(double vn0 = 0.0) const;  // delta_rise(+inf)

  const NorParams& params() const { return params_; }

  /// Largest mode time constant (search-horizon building block).
  double slowest_time_constant() const;

 private:
  double horizon_after(double t) const;

  NorParams params_;
};

}  // namespace charlie::core
