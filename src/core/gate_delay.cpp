#include "core/gate_delay.hpp"

#include <algorithm>
#include <cmath>

#include "fit/brent_root.hpp"
#include "util/error.hpp"

namespace charlie::core {

namespace {

// Scalar expansion of V_O on one mode segment entered at x_ref (same form
// the event channel uses; see ModeTable).
struct ScalarVo {
  bool valid = false;
  double d = 0.0;
  double a1 = 0.0;
  double l1 = 0.0;
  double a2 = 0.0;
  double l2 = 0.0;
};

ScalarVo scalar_for(const ModeTable& mt, const ode::Vec2& x_ref) {
  ScalarVo s;
  s.valid = mt.scalar_valid;
  if (!s.valid) return s;
  const ode::Vec2 dev = x_ref - mt.xp;
  double a1 = mt.p1c * dev.x + mt.p1d * dev.y;
  double a2 = dev.y - a1;
  double d = mt.d;
  if (mt.fold1) {
    d += a1;
    a1 = 0.0;
  }
  if (mt.fold2) {
    d += a2;
    a2 = 0.0;
  }
  s.d = d;
  s.a1 = a1;
  s.l1 = mt.l1;
  s.a2 = a2;
  s.l2 = mt.l2;
  return s;
}

ode::Vec2 advance(const ModeTable& mt, const ode::Vec2& x_ref, double tau) {
  if (tau <= 0.0) return x_ref;
  if (mt.spectral_valid) {
    const ode::Vec2 dev = x_ref - mt.xp;
    return mt.xp + std::exp(mt.l1 * tau) * (mt.s1 * dev) +
           std::exp(mt.l2 * tau) * (mt.s2 * dev);
  }
  return mt.ode.state_at(tau, x_ref);
}

}  // namespace

double mode_table_crossing(const ModeTable& mt, const ode::Vec2& x_ref,
                           double tau_end, double vth, bool rising) {
  const ScalarVo sc = scalar_for(mt, x_ref);
  auto vo = [&](double tau) {
    if (sc.valid) {
      return sc.d + sc.a1 * std::exp(sc.l1 * tau) +
             sc.a2 * std::exp(sc.l2 * tau);
    }
    return advance(mt, x_ref, tau).y;
  };
  constexpr int kSteps = 256;
  const double step = tau_end / kSteps;
  if (!(step > 0.0)) return -1.0;
  double a = 0.0;
  double fa = vo(0.0) - vth;
  for (int k = 1; k <= kSteps; ++k) {
    const double b = k == kSteps ? tau_end : k * step;
    const double fb = vo(b) - vth;
    const bool matches = rising ? (fa < 0.0 && fb >= 0.0)
                                : (fa > 0.0 && fb <= 0.0);
    if (matches) {
      if (fb == 0.0) return b;
      return fit::brent_root([&](double tau) { return vo(tau) - vth; }, a, b);
    }
    a = b;
    fa = fb;
  }
  return -1.0;
}

double gate_output_crossing(const GateModeTables& tables, GateState s0,
                            double v_int_hold,
                            std::span<const GateInputEvent> events,
                            bool rising) {
  const GateParams& p = tables.gate_params();
  GateState s = s0;
  ode::Vec2 x = gate_mode_steady_state(p, s, v_int_hold);
  double t_seg = 0.0;
  const double vth = tables.vth();

  auto search_segment = [&](const ModeTable& mt, double tau_end) {
    const double tau = mode_table_crossing(mt, x, tau_end, vth, rising);
    return tau >= 0.0 ? t_seg + tau : -1.0;
  };

  for (std::size_t i = 0; i < events.size(); ++i) {
    const GateInputEvent& ev = events[i];
    CHARLIE_ASSERT_MSG(ev.t >= t_seg, "gate_output_crossing: unsorted events");
    const ModeTable& mt = tables.state_table(s);
    const double t_cross = search_segment(mt, ev.t - t_seg);
    if (t_cross >= 0.0) return t_cross;
    x = advance(mt, x, ev.t - t_seg);
    t_seg = ev.t;
    s = gate_state_with(s, ev.port, ev.value);
  }
  const ModeTable& mt = tables.state_table(s);
  const double t_cross = search_segment(mt, tables.horizon());
  if (t_cross < 0.0) {
    throw ConvergenceError(
        "gate_output_crossing: output never crossed V_th within the search "
        "horizon");
  }
  return t_cross;
}

GateSisDelays gate_characteristic_delays(const GateModeTables& tables) {
  const GateParams& p = tables.gate_params();
  const int n = p.n_inputs();
  const bool nor_like = p.topology == GateTopology::kNorLike;
  const GateState all = gate_n_states(n) - 1u;
  const double hold = p.worst_case_hold();

  GateSisDelays out;
  out.fall.reserve(n);
  out.rise.reserve(n);

  // For both topologies a rising input drives the output low (NOR: any high
  // input pulls down; NAND: the last high input completes the pull-down
  // chain) and a falling input drives it high. What differs is the resting
  // state of the other inputs: non-controlling is low for NOR-like, high
  // for NAND-like.
  for (int i = 0; i < n; ++i) {
    {
      // fall[i]: output high, input i rises.
      const GateState s0 = nor_like ? 0u : static_cast<GateState>(
                                               all & ~(1u << i));
      const GateInputEvent ev{0.0, i, true};
      out.fall.push_back(gate_output_crossing(
          tables, s0, hold, std::span<const GateInputEvent>(&ev, 1),
          /*rising=*/false));
    }
    {
      // rise[i]: output low (held by input i alone for NOR, by the full
      // stack for NAND), input i falls.
      const GateState s0 = nor_like ? (1u << i) : all;
      const GateInputEvent ev{0.0, i, false};
      out.rise.push_back(gate_output_crossing(
          tables, s0, hold, std::span<const GateInputEvent>(&ev, 1),
          /*rising=*/true));
    }
  }

  // Simultaneous switching of every input, worst-case internal history
  // (the all-low NAND state and the all-high NOR state freeze the stack).
  std::vector<GateInputEvent> all_rise;
  std::vector<GateInputEvent> all_fall;
  for (int i = 0; i < n; ++i) {
    all_rise.push_back({0.0, i, true});
    all_fall.push_back({0.0, i, false});
  }
  out.fall_all =
      gate_output_crossing(tables, 0u, hold, all_rise, /*rising=*/false);
  out.rise_all =
      gate_output_crossing(tables, all, hold, all_fall, /*rising=*/true);
  return out;
}

GateArcEnvelope gate_arc_envelope(const GateModeTables& tables) {
  const GateSisDelays sis = gate_characteristic_delays(tables);
  GateArcEnvelope env;
  env.rise.reserve(sis.rise.size());
  env.fall.reserve(sis.fall.size());
  for (const double d : sis.rise) env.rise.push_back(std::max(d, sis.rise_all));
  for (const double d : sis.fall) env.fall.push_back(std::max(d, sis.fall_all));
  return env;
}

}  // namespace charlie::core
