// Hybrid trajectory of the NOR model: modes switched at input threshold
// crossings, (V_N, V_O) continuous across switches.
#pragma once

#include <vector>

#include "core/modes.hpp"
#include "core/nor_params.hpp"
#include "ode/piecewise.hpp"
#include "waveform/waveform.hpp"

namespace charlie::core {

class NorTrajectory {
 public:
  /// Start at absolute time `t0` in `mode` with state `x0` = (V_N, V_O).
  NorTrajectory(const NorParams& params, double t0, Mode mode,
                const ode::Vec2& x0);

  /// Start at `t0` in the steady state of `mode` (V_N of (1,1) frozen at
  /// `vn_hold`).
  static NorTrajectory from_steady_state(const NorParams& params, double t0,
                                         Mode mode, double vn_hold = 0.0);

  /// Input change at absolute time `t` (>= previous switch).
  void set_inputs(double t, bool a, bool b);

  double vn_at(double t) const { return pieces_.state_at(t).x; }
  double vo_at(double t) const { return pieces_.state_at(t).y; }
  ode::Vec2 state_at(double t) const { return pieces_.state_at(t); }
  double vo_slope_at(double t) const { return pieces_.derivative_at(t).y; }

  Mode current_mode() const { return mode_; }
  double t_last_switch() const { return pieces_.t_last_switch(); }
  const ode::PiecewiseTrajectory& pieces() const { return pieces_; }
  const NorParams& params() const { return params_; }

  /// Sample V_O (or V_N) into a waveform over [t0, t1]; `n` samples plus the
  /// exact segment boundaries, so mode-switch corners are preserved.
  waveform::Waveform sample_vo(double t0, double t1, std::size_t n) const;
  waveform::Waveform sample_vn(double t0, double t1, std::size_t n) const;

 private:
  waveform::Waveform sample_component(double t0, double t1, std::size_t n,
                                      bool output_component) const;

  NorParams params_;
  Mode mode_;
  ode::PiecewiseTrajectory pieces_;
};

}  // namespace charlie::core
