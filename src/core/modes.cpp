#include "core/modes.hpp"

#include "util/error.hpp"

namespace charlie::core {

Mode mode_from_inputs(bool a, bool b) {
  if (a) {
    return b ? Mode::kS11 : Mode::kS10;
  }
  return b ? Mode::kS01 : Mode::kS00;
}

bool mode_input_a(Mode m) { return m == Mode::kS10 || m == Mode::kS11; }

bool mode_input_b(Mode m) { return m == Mode::kS01 || m == Mode::kS11; }

std::string mode_name(Mode m) {
  switch (m) {
    case Mode::kS00:
      return "(0,0)";
    case Mode::kS01:
      return "(0,1)";
    case Mode::kS10:
      return "(1,0)";
    case Mode::kS11:
      return "(1,1)";
  }
  CHARLIE_ASSERT_MSG(false, "invalid mode");
  return {};
}

ode::AffineOde2 mode_ode(Mode mode, const NorParams& p) {
  switch (mode) {
    case Mode::kS11: {
      // CN dVN/dt = 0
      // CO dVO/dt = -VO (1/R3 + 1/R4)
      const ode::Mat2 m{0.0, 0.0,  //
                        0.0, -(1.0 / (p.co * p.r3) + 1.0 / (p.co * p.r4))};
      return ode::AffineOde2(m, {0.0, 0.0});
    }
    case Mode::kS10: {
      // CN dVN/dt = -(VN - VO)/R2
      // CO dVO/dt = -VO/R3 + (VN - VO)/R2
      const ode::Mat2 m{
          -1.0 / (p.cn * p.r2), 1.0 / (p.cn * p.r2),  //
          1.0 / (p.co * p.r2),
          -(1.0 / (p.co * p.r2) + 1.0 / (p.co * p.r3))};
      return ode::AffineOde2(m, {0.0, 0.0});
    }
    case Mode::kS01: {
      // CN dVN/dt = (VDD - VN)/R1
      // CO dVO/dt = -VO/R4
      const ode::Mat2 m{-1.0 / (p.cn * p.r1), 0.0,  //
                        0.0, -1.0 / (p.co * p.r4)};
      return ode::AffineOde2(m, {p.vdd / (p.cn * p.r1), 0.0});
    }
    case Mode::kS00: {
      // CN dVN/dt = (VDD - VN)/R1 - (VN - VO)/R2
      // CO dVO/dt = (VN - VO)/R2
      const ode::Mat2 m{
          -(1.0 / (p.cn * p.r1) + 1.0 / (p.cn * p.r2)),
          1.0 / (p.cn * p.r2),  //
          1.0 / (p.co * p.r2), -1.0 / (p.co * p.r2)};
      return ode::AffineOde2(m, {p.vdd / (p.cn * p.r1), 0.0});
    }
  }
  CHARLIE_ASSERT_MSG(false, "invalid mode");
  return {};
}

ode::Vec2 mode_steady_state(Mode mode, const NorParams& p, double vn_hold) {
  switch (mode) {
    case Mode::kS00:
      return {p.vdd, p.vdd};
    case Mode::kS01:
      return {p.vdd, 0.0};
    case Mode::kS10:
      return {0.0, 0.0};
    case Mode::kS11:
      return {vn_hold, 0.0};
  }
  CHARLIE_ASSERT_MSG(false, "invalid mode");
  return {};
}

bool mode_output(Mode m) { return m == Mode::kS00; }

}  // namespace charlie::core
