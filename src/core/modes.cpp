#include "core/modes.hpp"

#include "util/error.hpp"

namespace charlie::core {

Mode mode_from_inputs(bool a, bool b) {
  if (a) {
    return b ? Mode::kS11 : Mode::kS10;
  }
  return b ? Mode::kS01 : Mode::kS00;
}

bool mode_input_a(Mode m) { return m == Mode::kS10 || m == Mode::kS11; }

bool mode_input_b(Mode m) { return m == Mode::kS01 || m == Mode::kS11; }

std::string mode_name(Mode m) {
  switch (m) {
    case Mode::kS00:
      return "(0,0)";
    case Mode::kS01:
      return "(0,1)";
    case Mode::kS10:
      return "(1,0)";
    case Mode::kS11:
      return "(1,1)";
  }
  CHARLIE_ASSERT_MSG(false, "invalid mode");
  return {};
}

namespace {

// GateParams view of a NorParams without per-call vector allocations:
// mode_ode sits inside trajectory construction and the Nelder-Mead fit
// objective (thousands of evaluations), so reuse one thread-local scratch.
const GateParams& gate_view(const NorParams& p) {
  static thread_local GateParams scratch = [] {
    GateParams g;
    g.topology = GateTopology::kNorLike;
    g.r_series.resize(2);
    g.r_parallel.resize(2);
    return g;
  }();
  scratch.r_series[0] = p.r1;
  scratch.r_series[1] = p.r2;
  scratch.r_parallel[0] = p.r3;
  scratch.r_parallel[1] = p.r4;
  scratch.c_int = p.cn;
  scratch.c_out = p.co;
  scratch.vdd = p.vdd;
  scratch.delta_min = p.delta_min;
  return scratch;
}

}  // namespace

// The per-mode systems transcribed from paper Section III B-E:
//   (1,1): CN dVN/dt = 0;                   CO dVO/dt = -VO (1/R3 + 1/R4)
//   (1,0): CN dVN/dt = -(VN - VO)/R2;       CO dVO/dt = -VO/R3 + (VN-VO)/R2
//   (0,1): CN dVN/dt = (VDD - VN)/R1;       CO dVO/dt = -VO/R4
//   (0,0): CN dVN/dt = (VDD-VN)/R1 - (VN-VO)/R2; CO dVO/dt = (VN-VO)/R2
// These are exactly the n = 2 kNorLike instances of the generalized gate
// network; delegating keeps the two derivations bit-identical.
ode::AffineOde2 mode_ode(Mode mode, const NorParams& p) {
  return gate_mode_ode(gate_view(p), gate_state_from_mode(mode));
}

ode::Vec2 mode_steady_state(Mode mode, const NorParams& p, double vn_hold) {
  return gate_mode_steady_state(gate_view(p), gate_state_from_mode(mode),
                                vn_hold);
}

bool mode_output(Mode m) { return m == Mode::kS00; }

}  // namespace charlie::core
