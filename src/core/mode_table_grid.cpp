#include "core/mode_table_grid.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <string>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define CHARLIE_HAVE_X86_DISPATCH 1
#endif

#include "util/error.hpp"

namespace charlie::core {

namespace {

// Packed per-mode field layout (see pack_mode / unpack below; any change
// must touch both).
constexpr std::size_t kModeStride = 17;

double axis_value(const ModeTableGrid::Axis& axis, std::size_t level) {
  if (axis.levels <= 1) return axis.lo;
  // Endpoints are returned verbatim so a query at a spec bound reproduces
  // the corner coordinate (and hence its resistance scale) bit-exactly.
  if (level == 0) return axis.lo;
  if (level + 1 == axis.levels) return axis.hi;
  return axis.lo + (axis.hi - axis.lo) * static_cast<double>(level) /
                       static_cast<double>(axis.levels - 1);
}

void validate_axis(const ModeTableGrid::Axis& axis, const char* name) {
  if (axis.levels == 0) {
    throw ConfigError(std::string("ModeTableGrid: ") + name +
                      " needs at least one level");
  }
  if (axis.levels == 1 && axis.lo != axis.hi) {
    throw ConfigError(std::string("ModeTableGrid: pinned axis ") + name +
                      " requires lo == hi");
  }
  if (axis.levels >= 2 && !(axis.hi > axis.lo)) {
    throw ConfigError(std::string("ModeTableGrid: active axis ") + name +
                      " requires hi > lo");
  }
  if (!(std::isfinite(axis.lo) && std::isfinite(axis.hi))) {
    throw ConfigError(std::string("ModeTableGrid: axis ") + name +
                      " bounds must be finite");
  }
}

void pack_mode(const ModeTable& t, double* out) {
  out[0] = t.steady.x;
  out[1] = t.steady.y;
  out[2] = t.xp.x;
  out[3] = t.xp.y;
  out[4] = t.d;
  out[5] = t.l1;
  out[6] = t.l2;
  out[7] = t.p1c;
  out[8] = t.p1d;
  out[9] = t.s1.a;
  out[10] = t.s1.b;
  out[11] = t.s1.c;
  out[12] = t.s1.d;
  out[13] = t.s2.a;
  out[14] = t.s2.b;
  out[15] = t.s2.c;
  out[16] = t.s2.d;
}

// The packed layout mirrors three contiguous double runs inside ModeTable
// (locked by the asserts below), so unpacking is three block copies.
static_assert(offsetof(ModeTable, xp) ==
              offsetof(ModeTable, steady) + 2 * sizeof(double));
static_assert(offsetof(ModeTable, l1) ==
              offsetof(ModeTable, d) + sizeof(double));
static_assert(offsetof(ModeTable, l2) ==
              offsetof(ModeTable, d) + 2 * sizeof(double));
static_assert(offsetof(ModeTable, p1c) ==
              offsetof(ModeTable, d) + 3 * sizeof(double));
static_assert(offsetof(ModeTable, p1d) ==
              offsetof(ModeTable, d) + 4 * sizeof(double));
static_assert(offsetof(ModeTable, s2) ==
              offsetof(ModeTable, s1) + 4 * sizeof(double));
static_assert(sizeof(ode::Vec2) == 2 * sizeof(double));
static_assert(sizeof(ode::Mat2) == 4 * sizeof(double));

void unpack_mode(const double* f, bool fold1, bool fold2, ModeTable& t) {
  std::memcpy(&t.steady, f, 4 * sizeof(double));      // steady, xp
  std::memcpy(&t.d, f + 4, 5 * sizeof(double));       // d, l1, l2, p1c, p1d
  std::memcpy(&t.s1, f + 9, 8 * sizeof(double));      // s1, s2
  t.scalar_valid = true;
  t.spectral_valid = true;
  t.fold1 = fold1;
  t.fold2 = fold2;
  if (fold1) t.l1 = 0.0;
  if (fold2) t.l2 = 0.0;
  // t.ode is intentionally left untouched (see header).
}

// Weighted sum of up to four packed corner blocks, written straight into
// the destination ModeTables:
//   field[j] = w0*c0[j] + w1*c1[j] + ... (left-associated, in corner order).
// Returns the blended horizon. The packed runs per mode ([0..3] steady/xp,
// [4..8] d..p1d, [9..16] s1/s2) land on the three contiguous double runs
// inside ModeTable (locked by the offset asserts above), so the kernels
// store directly into the struct fields -- no intermediate buffer, no
// second unpack pass. Structure flags and fold zeroing are applied by the
// caller afterwards.
//
// The kernels below differ only in instruction selection. Within one host
// the dispatch is fixed, so every run of a batch takes the same kernel and
// interpolated tables are bit-identical across thread counts, run splits,
// and replays; across ISAs the FMA kernels contract each multiply-add into
// one rounding, so the low bits may differ from the scalar kernel (well
// inside the documented interpolation tolerance).
double blend_modes_generic(const double* const* corner, const double* weight,
                           int n, std::size_t n_modes, ModeTable* tables) {
  for (std::size_t m = 0; m < n_modes; ++m) {
    const std::size_t base = m * kModeStride;
    ModeTable& t = tables[m];
#if defined(__SSE2__)
    double* const r1 = reinterpret_cast<double*>(&t.steady);
    double* const r2 = &t.d;
    double* const r3 = reinterpret_cast<double*>(&t.s1);
    auto pair = [&](std::size_t j) {
      __m128d a = _mm_mul_pd(_mm_set1_pd(weight[0]),
                             _mm_loadu_pd(corner[0] + base + j));
      for (int k = 1; k < n; ++k) {
        a = _mm_add_pd(a, _mm_mul_pd(_mm_set1_pd(weight[k]),
                                     _mm_loadu_pd(corner[k] + base + j)));
      }
      return a;
    };
    _mm_storeu_pd(r1, pair(0));
    _mm_storeu_pd(r1 + 2, pair(2));
    _mm_storeu_pd(r2, pair(4));
    _mm_storeu_pd(r2 + 2, pair(6));
    double p1d = weight[0] * corner[0][base + 8];
    for (int k = 1; k < n; ++k) p1d += weight[k] * corner[k][base + 8];
    r2[4] = p1d;
    _mm_storeu_pd(r3, pair(9));
    _mm_storeu_pd(r3 + 2, pair(11));
    _mm_storeu_pd(r3 + 4, pair(13));
    _mm_storeu_pd(r3 + 6, pair(15));
#else
    double f[kModeStride];
    for (std::size_t j = 0; j < kModeStride; ++j) {
      double acc = weight[0] * corner[0][base + j];
      for (int k = 1; k < n; ++k) acc += weight[k] * corner[k][base + j];
      f[j] = acc;
    }
    std::memcpy(&t.steady, f, 4 * sizeof(double));
    std::memcpy(&t.d, f + 4, 5 * sizeof(double));
    std::memcpy(&t.s1, f + 9, 8 * sizeof(double));
#endif
  }
  const std::size_t h = n_modes * kModeStride;
  double acc = weight[0] * corner[0][h];
  for (int k = 1; k < n; ++k) acc += weight[k] * corner[k][h];
  return acc;
}

#if defined(CHARLIE_HAVE_X86_DISPATCH)
__attribute__((target("avx2,fma"))) double blend_modes_avx2(
    const double* const* corner, const double* weight, int n,
    std::size_t n_modes, ModeTable* tables) {
  // Weight broadcasts hoisted out of the mode loop (n <= 4 by construction).
  __m256d w[4];
  for (int k = 0; k < n; ++k) w[k] = _mm256_set1_pd(weight[k]);
  for (std::size_t m = 0; m < n_modes; ++m) {
    const double* c = corner[0] + m * kModeStride;
    __m256d a = _mm256_mul_pd(w[0], _mm256_loadu_pd(c));
    __m256d b = _mm256_mul_pd(w[0], _mm256_loadu_pd(c + 4));
    __m256d s0 = _mm256_mul_pd(w[0], _mm256_loadu_pd(c + 9));
    __m256d s1 = _mm256_mul_pd(w[0], _mm256_loadu_pd(c + 13));
    double p1d = weight[0] * c[8];
    for (int k = 1; k < n; ++k) {
      c = corner[k] + m * kModeStride;
      a = _mm256_fmadd_pd(w[k], _mm256_loadu_pd(c), a);
      b = _mm256_fmadd_pd(w[k], _mm256_loadu_pd(c + 4), b);
      s0 = _mm256_fmadd_pd(w[k], _mm256_loadu_pd(c + 9), s0);
      s1 = _mm256_fmadd_pd(w[k], _mm256_loadu_pd(c + 13), s1);
      p1d += weight[k] * c[8];
    }
    ModeTable& t = tables[m];
    _mm256_storeu_pd(reinterpret_cast<double*>(&t.steady), a);
    _mm256_storeu_pd(&t.d, b);
    (&t.d)[4] = p1d;
    double* const r3 = reinterpret_cast<double*>(&t.s1);
    _mm256_storeu_pd(r3, s0);
    _mm256_storeu_pd(r3 + 4, s1);
  }
  const std::size_t h = n_modes * kModeStride;
  double acc = weight[0] * corner[0][h];
  for (int k = 1; k < n; ++k) acc += weight[k] * corner[k][h];
  return acc;
}

__attribute__((target("avx512f,avx2,fma"))) double blend_modes_avx512(
    const double* const* corner, const double* weight, int n,
    std::size_t n_modes, ModeTable* tables) {
  __m256d w4[4];
  __m512d w8[4];
  for (int k = 0; k < n; ++k) {
    w4[k] = _mm256_set1_pd(weight[k]);
    w8[k] = _mm512_set1_pd(weight[k]);
  }
  for (std::size_t m = 0; m < n_modes; ++m) {
    const double* c = corner[0] + m * kModeStride;
    __m256d a = _mm256_mul_pd(w4[0], _mm256_loadu_pd(c));
    __m256d b = _mm256_mul_pd(w4[0], _mm256_loadu_pd(c + 4));
    __m512d s = _mm512_mul_pd(w8[0], _mm512_loadu_pd(c + 9));
    double p1d = weight[0] * c[8];
    for (int k = 1; k < n; ++k) {
      c = corner[k] + m * kModeStride;
      a = _mm256_fmadd_pd(w4[k], _mm256_loadu_pd(c), a);
      b = _mm256_fmadd_pd(w4[k], _mm256_loadu_pd(c + 4), b);
      s = _mm512_fmadd_pd(w8[k], _mm512_loadu_pd(c + 9), s);
      p1d += weight[k] * c[8];
    }
    ModeTable& t = tables[m];
    _mm256_storeu_pd(reinterpret_cast<double*>(&t.steady), a);
    _mm256_storeu_pd(&t.d, b);
    (&t.d)[4] = p1d;
    _mm512_storeu_pd(reinterpret_cast<double*>(&t.s1), s);
  }
  const std::size_t h = n_modes * kModeStride;
  double acc = weight[0] * corner[0][h];
  for (int k = 1; k < n; ++k) acc += weight[k] * corner[k][h];
  return acc;
}

using BlendFn = double (*)(const double* const*, const double*, int,
                           std::size_t, ModeTable*);

BlendFn pick_blend() {
  if (__builtin_cpu_supports("avx512f")) return blend_modes_avx512;
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return blend_modes_avx2;
  }
  return blend_modes_generic;
}

const BlendFn blend_modes = pick_blend();
#else
constexpr auto blend_modes = blend_modes_generic;
#endif

// One active-axis interpolation stencil: the (at most two) grid levels
// bracketing the query coordinate, with their multilinear weights.
struct Stencil {
  std::size_t index[2];
  double weight[2];
  int n = 0;
};

Stencil axis_stencil(const ModeTableGrid::Axis& axis, double coord,
                     const char* name) {
  Stencil st;
  if (axis.levels <= 1) {
    if (coord != axis.lo) {
      throw ConfigError(std::string("ModeTableGrid: axis ") + name +
                        " is pinned at a different coordinate than the "
                        "queried point; rebuild the grid with this axis "
                        "active");
    }
    st.index[0] = 0;
    st.weight[0] = 1.0;
    st.n = 1;
    return st;
  }
  const double span = axis.hi - axis.lo;
  double t = (coord - axis.lo) / span * static_cast<double>(axis.levels - 1);
  // Clamp into the grid: sampled points live inside the span by
  // construction (truncated draws), so any excursion is rounding noise.
  if (!(t > 0.0)) t = 0.0;
  const double t_max = static_cast<double>(axis.levels - 1);
  if (t > t_max) t = t_max;
  std::size_t i0 = static_cast<std::size_t>(t);
  if (i0 > axis.levels - 2) i0 = axis.levels - 2;
  const double frac = t - static_cast<double>(i0);
  if (frac <= 0.0) {
    st.index[0] = i0;
    st.weight[0] = 1.0;
    st.n = 1;
  } else if (frac >= 1.0) {
    st.index[0] = i0 + 1;
    st.weight[0] = 1.0;
    st.n = 1;
  } else {
    st.index[0] = i0;
    st.weight[0] = 1.0 - frac;
    st.index[1] = i0 + 1;
    st.weight[1] = frac;
    st.n = 2;
  }
  return st;
}

}  // namespace

ModeTableGrid::ModeTableGrid(const GateParams& nominal, const Spec& spec)
    : nominal_(nominal) {
  nominal_.validate();
  axes_[0] = spec.vdd_scale;
  axes_[1] = spec.vth_shift;
  axes_[2] = spec.drive_scale;
  validate_axis(axes_[0], "vdd_scale");
  validate_axis(axes_[1], "vth_shift");
  validate_axis(axes_[2], "drive_scale");

  n_modes_ = gate_n_states(nominal_.n_inputs());
  n_corners_ = axes_[0].levels * axes_[1].levels * axes_[2].levels;
  corner_stride_ = n_modes_ * kModeStride + 1;  // +1: horizon
  data_.resize(n_corners_ * corner_stride_);
  fold1_.assign(n_modes_, false);
  fold2_.assign(n_modes_, false);

  // Derive exactly at every corner, reusing one scratch table set.
  GateModeTables scratch(nominal_);
  bool first = true;
  for (std::size_t iv = 0; iv < axes_[0].levels; ++iv) {
    for (std::size_t it = 0; it < axes_[1].levels; ++it) {
      for (std::size_t id = 0; id < axes_[2].levels; ++id) {
        ProcessPoint point;
        point.vdd_scale = axis_value(axes_[0], iv);
        point.vth_shift = axis_value(axes_[1], it);
        point.drive_scale = axis_value(axes_[2], id);
        scratch.rederive_at(nominal_, point);  // throws outside validity
        double* corner =
            data_.data() + corner_offset(iv, it, id) * corner_stride_;
        for (std::size_t m = 0; m < n_modes_; ++m) {
          const ModeTable& t = scratch.tables_[m];
          if (!t.scalar_valid || !t.spectral_valid) {
            throw ConfigError(
                "ModeTableGrid: mode without scalar/spectral expansion at a "
                "grid corner; this cell needs exact per-sample derivation");
          }
          if (first) {
            fold1_[m] = t.fold1;
            fold2_[m] = t.fold2;
          } else if (t.fold1 != fold1_[m] || t.fold2 != fold2_[m]) {
            throw ConfigError(
                "ModeTableGrid: mode expansion structure changes across "
                "corners; this cell needs exact per-sample derivation");
          }
          pack_mode(t, corner + m * kModeStride);
        }
        corner[n_modes_ * kModeStride] = scratch.horizon();
        first = false;
      }
    }
  }

  // Index each vdd level's corners by their exact resistance scale: the
  // derived tables are a pure function of (s, vdd_scale), so the vth x
  // drive face collapses to a sorted 1-D knot family per level. Corners
  // with bit-equal s carry bit-equal tables (same derived params through
  // the same deterministic derivation) -- drop the duplicates.
  s_knots_.resize(axes_[0].levels);
  for (std::size_t iv = 0; iv < axes_[0].levels; ++iv) {
    auto& knots = s_knots_[iv];
    knots.reserve(axes_[1].levels * axes_[2].levels);
    for (std::size_t it = 0; it < axes_[1].levels; ++it) {
      for (std::size_t id = 0; id < axes_[2].levels; ++id) {
        ProcessPoint point;
        point.vdd_scale = axis_value(axes_[0], iv);
        point.vth_shift = axis_value(axes_[1], it);
        point.drive_scale = axis_value(axes_[2], id);
        knots.push_back(
            {point.resistance_scale(nominal_.vdd),
             data_.data() + corner_offset(iv, it, id) * corner_stride_});
      }
    }
    std::sort(knots.begin(), knots.end(),
              [](const SKnot& a, const SKnot& b) { return a.s < b.s; });
    knots.erase(std::unique(knots.begin(), knots.end(),
                            [](const SKnot& a, const SKnot& b) {
                              return a.s == b.s;
                            }),
                knots.end());
  }
}

std::size_t ModeTableGrid::corner_offset(std::size_t iv, std::size_t it,
                                         std::size_t id) const {
  return (iv * axes_[1].levels + it) * axes_[2].levels + id;
}

void ModeTableGrid::interpolate_into(const ProcessPoint& point,
                                     GateModeTables& out) const {
  if (out.params_.n_inputs() != nominal_.n_inputs()) {
    throw ConfigError("ModeTableGrid::interpolate_into: arity mismatch");
  }
  // Pinned axes still gate on their exact coordinate (a mismatched query
  // must not silently alias into a valid resistance scale).
  if (axes_[1].levels <= 1 && point.vth_shift != axes_[1].lo) {
    throw ConfigError(
        "ModeTableGrid: axis vth_shift is pinned at a different coordinate "
        "than the queried point; rebuild the grid with this axis active");
  }
  if (axes_[2].levels <= 1 && point.drive_scale != axes_[2].lo) {
    throw ConfigError(
        "ModeTableGrid: axis drive_scale is pinned at a different coordinate "
        "than the queried point; rebuild the grid with this axis active");
  }
  const Stencil sv = axis_stencil(axes_[0], point.vdd_scale, "vdd_scale");
  const double s_q = point.resistance_scale_unchecked(nominal_.vdd);

  // Per bracketing vdd level, interpolate that level's 1-D s-family at the
  // query's exact resistance scale (clamped to the knot span: in-range by
  // construction for sampled points, so any excursion is rounding noise or
  // the mild s-drift of evaluating at an off-level vdd). A query landing on
  // a knot collapses to that corner with an exact weight.
  const double* corner[4];
  double weight[4];
  int n = 0;
  for (int a = 0; a < sv.n; ++a) {
    const auto& knots = s_knots_[sv.index[a]];
    const double wv = sv.weight[a];
    if (knots.size() == 1) {
      corner[n] = knots[0].corner;
      weight[n] = wv;
      ++n;
      continue;
    }
    // Linear scan for the bracketing pair: knot families are tiny (at most
    // vth levels x drive levels entries).
    std::size_t k = 0;
    while (k + 2 < knots.size() && knots[k + 1].s <= s_q) ++k;
    const double frac = (s_q - knots[k].s) / (knots[k + 1].s - knots[k].s);
    if (frac <= 0.0) {
      corner[n] = knots[k].corner;
      weight[n] = wv;
      ++n;
    } else if (frac >= 1.0) {
      corner[n] = knots[k + 1].corner;
      weight[n] = wv;
      ++n;
    } else {
      corner[n] = knots[k].corner;
      weight[n] = wv * (1.0 - frac);
      ++n;
      corner[n] = knots[k + 1].corner;
      weight[n] = wv * frac;
      ++n;
    }
  }

  // Blend the corner blocks straight into the destination tables (see
  // blend_modes for the determinism contract). An n == 1 stencil (a pinned
  // grid or an on-knot query) has weight exactly 1.0 and reads the stored
  // corner verbatim, so on-corner queries stay bit-exact on every kernel.
  double horizon;
  if (n == 1) {
    const double* c0 = corner[0];
    for (std::size_t m = 0; m < n_modes_; ++m) {
      unpack_mode(c0 + m * kModeStride, fold1_[m], fold2_[m], out.tables_[m]);
    }
    horizon = c0[n_modes_ * kModeStride];
  } else {
    horizon = blend_modes(corner, weight, n, n_modes_, out.tables_.data());
    for (std::size_t m = 0; m < n_modes_; ++m) {
      ModeTable& t = out.tables_[m];
      t.scalar_valid = true;
      t.spectral_valid = true;
      t.fold1 = fold1_[m] != 0;
      t.fold2 = fold2_[m] != 0;
      if (t.fold1) t.l1 = 0.0;
      if (t.fold2) t.l2 = 0.0;
    }
  }
  nominal_.rescale_into(s_q, point.vdd_scale, out.params_);
  out.vth_ = out.params_.vth();
  out.horizon_ = horizon;
}

std::shared_ptr<const GateModeTables> ModeTableGrid::interpolate(
    const ProcessPoint& point) const {
  auto out = std::make_shared<GateModeTables>(nominal_);
  interpolate_into(point, *out);
  return out;
}

}  // namespace charlie::core
