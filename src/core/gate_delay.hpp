// Closed-form delay evaluation of the generalized N-input hybrid gate.
//
// Drives the precomputed mode tables through a scripted sequence of input
// switches and root-finds the output V_th crossing -- the generalized
// analogue of core::NorDelayModel for arbitrary arity and both topologies.
// Used by the gate parametrization fit (gate_parametrize.hpp) and by tests
// that validate the event-driven channel against an independent evaluation;
// not an event-loop hot path.
#pragma once

#include <span>
#include <vector>

#include "core/gate_mode_tables.hpp"

namespace charlie::core {

struct GateInputEvent {
  double t = 0.0;  // effective switch time (pure delay already applied)
  int port = 0;
  bool value = false;
};

/// First V_th crossing of V_O in the `rising` direction on the trajectory
/// that starts in the steady state of `s0` at t = 0 (a frozen internal node
/// starts at `v_int_hold`) and switches modes per `events` (time-sorted,
/// t >= 0, effective times -- callers add delta_min themselves when
/// modeling the pure delay). Returns the absolute crossing time; throws
/// ConvergenceError when the output never crosses within the search
/// horizon after the last event.
double gate_output_crossing(const GateModeTables& tables, GateState s0,
                            double v_int_hold,
                            std::span<const GateInputEvent> events,
                            bool rising);

/// Characteristic delays of the generalized gate, *excluding* delta_min
/// (raw RC trajectories; the pure delay adds to every entry).
///   fall[i] / rise[i] -- single-input-switching delays: input i alone
///     causes the output transition, the other inputs held non-controlling.
///   fall_all / rise_all -- every input switches simultaneously, starting
///     from the worst-case internal-node history.
struct GateSisDelays {
  std::vector<double> fall;
  std::vector<double> rise;
  double fall_all = 0.0;
  double rise_all = 0.0;
};

GateSisDelays gate_characteristic_delays(const GateModeTables& tables);

}  // namespace charlie::core
