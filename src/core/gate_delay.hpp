// Closed-form delay evaluation of the generalized N-input hybrid gate.
//
// Drives the precomputed mode tables through a scripted sequence of input
// switches and root-finds the output V_th crossing -- the generalized
// analogue of core::NorDelayModel for arbitrary arity and both topologies.
// Used by the gate parametrization fit (gate_parametrize.hpp) and by tests
// that validate the event-driven channel against an independent evaluation;
// not an event-loop hot path.
#pragma once

#include <span>
#include <vector>

#include "core/gate_mode_tables.hpp"

namespace charlie::core {

struct GateInputEvent {
  double t = 0.0;  // effective switch time (pure delay already applied)
  int port = 0;
  bool value = false;
};

/// First `rising`-direction V_th crossing of the mode's output component on
/// the trajectory entered at `x_ref`, searched over [0, tau_end]; negative
/// when the segment has no such crossing. Dense scan + Brent refinement on
/// the two-exponential scalar expansion (generic state advance when the
/// spectrum is defective). Shared by the gate characteristic-delay
/// evaluation below and the wire-arc extraction of the static timing
/// analyzer (wire::WireModeTables::step_delay).
double mode_table_crossing(const ModeTable& mt, const ode::Vec2& x_ref,
                           double tau_end, double vth, bool rising);

/// First V_th crossing of V_O in the `rising` direction on the trajectory
/// that starts in the steady state of `s0` at t = 0 (a frozen internal node
/// starts at `v_int_hold`) and switches modes per `events` (time-sorted,
/// t >= 0, effective times -- callers add delta_min themselves when
/// modeling the pure delay). Returns the absolute crossing time; throws
/// ConvergenceError when the output never crosses within the search
/// horizon after the last event.
double gate_output_crossing(const GateModeTables& tables, GateState s0,
                            double v_int_hold,
                            std::span<const GateInputEvent> events,
                            bool rising);

/// Characteristic delays of the generalized gate, *excluding* delta_min
/// (raw RC trajectories; the pure delay adds to every entry).
///   fall[i] / rise[i] -- single-input-switching delays: input i alone
///     causes the output transition, the other inputs held non-controlling.
///   fall_all / rise_all -- every input switches simultaneously, starting
///     from the worst-case internal-node history.
struct GateSisDelays {
  std::vector<double> fall;
  std::vector<double> rise;
  double fall_all = 0.0;
  double rise_all = 0.0;
};

GateSisDelays gate_characteristic_delays(const GateModeTables& tables);

/// Conservative per-pin arc delays for static timing analysis, *excluding*
/// delta_min: entry i bounds the time from input i's (effective) switch to
/// the output V_th crossing over every switching context the event engine
/// can produce.
///
///   rise[i] = max(rise[i], rise_all) of gate_characteristic_delays
///   fall[i] = max(fall[i], fall_all)
///
/// The envelope argument (docs/sta.md): single-input switching with the
/// worst-case internal-node hold bounds staggered arrivals where input i
/// switches last into a settled stack, while the simultaneous-switch delay
/// bounds the near-simultaneous MIS regime -- the internal node at the last
/// arrival is always at least as favorable as one of the two extremes, so
/// the max of both covers the continuum between them.
struct GateArcEnvelope {
  std::vector<double> rise;  // output-rising arc through input i [s]
  std::vector<double> fall;  // output-falling arc through input i [s]
};

GateArcEnvelope gate_arc_envelope(const GateModeTables& tables);

}  // namespace charlie::core
