// Collocation-style process-point interpolation of gate mode tables.
//
// GateModeTables::rederive_at() re-derives all 2^N mode expansions exactly at
// a process point -- cheap, but still per-mode eigen-solves and divisions on
// every Monte-Carlo sample. Following the probabilistic-collocation idea
// (derive exactly at a small set of collocation points, interpolate between),
// ModeTableGrid derives the tables exactly at the corners of a tensor grid
// over the active process axes at construction, then serves any interior
// point by blending the derived per-mode quantities: particular solutions,
// eigenvalues, projector rows, spectral matrices, steady states, and the
// crossing-search horizon.
//
// The blend exploits the scale-rule structure of the derivation: a derived
// GateParams set -- and therefore the whole table set -- depends on the
// process point only through TWO scalars, the common resistance factor
// s = ProcessPoint::resistance_scale() (which absorbs vth_shift and
// drive_scale entirely) and vdd_scale. The vth x drive face of the tensor
// grid therefore samples a one-dimensional family of table sets indexed by
// s. A query computes its exact s, interpolates piecewise-linearly between
// the two bracketing s-knots at each vdd level (all corners of that level,
// sorted by their corner s), and lerps across the two bracketing vdd
// levels: at most four corners per query instead of the naive eight, with
// knot spacing finer than the per-axis level spacing.
//
// What is blended and what is exact:
//   * Blended: every ModeTable field the event hot path reads through the
//     scalar/spectral expansions (xp, d, l1, l2, p1c, p1d, s1, s2, steady)
//     plus the horizon. The derived quantities are smooth rational functions
//     of the resistance scale over the narrow spans used for variation
//     (a few sigma around nominal), so multilinear error is second order in
//     the cell spacing; tests/core/test_mode_table_grid.cpp and the RK45
//     cross-check lock the observed bound (docs/statistical_timing.md).
//   * Exact: the GateParams themselves (derive_for is closed-form) and
//     vth = vdd'/2.
//   * NOT interpolated: the raw per-mode AffineOde2. Interpolated tables are
//     only built for cells whose every mode has a valid scalar + spectral
//     expansion at every corner (construction throws otherwise), so the
//     generic ODE scan fallback -- the only reader of ModeTable::ode -- is
//     unreachable; the target object keeps whatever ODE it was constructed
//     with (its nominal one).
//
// interpolate_into() is allocation-free and const: a grid is built once per
// cell and shared read-only across all batch workers.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/gate_mode_tables.hpp"
#include "core/gate_params.hpp"
#include "core/process_point.hpp"

namespace charlie::core {

class ModeTableGrid {
 public:
  /// One process axis of the grid. levels == 1 pins the axis at `lo`
  /// (requires hi == lo); levels >= 2 spans [lo, hi] uniformly.
  struct Axis {
    double lo = 0.0;
    double hi = 0.0;
    std::size_t levels = 1;
  };

  /// Grid extents. Defaults pin every axis at nominal.
  struct Spec {
    Axis vdd_scale{1.0, 1.0, 1};
    Axis vth_shift{0.0, 0.0, 1};
    Axis drive_scale{1.0, 1.0, 1};
  };

  /// Derives `nominal`'s tables exactly at every grid corner. Throws
  /// ConfigError on an invalid spec, an out-of-validity corner (closed
  /// overdrive), or a cell whose mode structure is not interpolation-safe
  /// (a mode without scalar/spectral expansion, or expansion structure that
  /// changes across corners).
  ModeTableGrid(const GateParams& nominal, const Spec& spec);

  /// Blend the tables at `point` into `out` (a mutable per-worker copy of
  /// this cell's tables; arity must match). Pinned axes require the exact
  /// pinned coordinate; active-axis coordinates are clamped to the span.
  /// Allocation-free; safe to call concurrently from many threads.
  void interpolate_into(const ProcessPoint& point, GateModeTables& out) const;

  /// Convenience: a freshly allocated interpolated table (tests, one-offs).
  std::shared_ptr<const GateModeTables> interpolate(
      const ProcessPoint& point) const;

  const GateParams& nominal() const { return nominal_; }
  std::size_t n_corners() const { return n_corners_; }

 private:
  std::size_t corner_offset(std::size_t iv, std::size_t it,
                            std::size_t id) const;

  /// One corner of a vdd level, addressed by its exact resistance scale.
  struct SKnot {
    double s;
    const double* corner;  // into data_; stable once the ctor returns
  };

  GateParams nominal_;
  Axis axes_[3];                    // vdd_scale, vth_shift, drive_scale
  std::size_t n_modes_ = 0;
  std::size_t n_corners_ = 0;
  std::size_t corner_stride_ = 0;   // doubles per corner
  std::vector<double> data_;        // corner-major packed fields
  std::vector<std::vector<SKnot>> s_knots_;  // per vdd level, sorted by s,
                                             // exact duplicates dropped
  std::vector<unsigned char> fold1_;  // per-mode structure flags (corner-
  std::vector<unsigned char> fold2_;  // independent by construction)
};

}  // namespace charlie::core
