// Precomputed per-mode tables of the generalized N-input hybrid gate model.
//
// Event-driven simulation switches modes on every input transition, but the
// mode systems themselves depend only on the cell parameters: the 2^N ODEs,
// their eigendecompositions, particular solutions, steady states, and the
// spectral projector rows behind the scalar V_O expansion never change at
// runtime. GateModeTables computes all of it once per GateParams; channels
// share one immutable table through a shared_ptr, so a circuit with
// thousands of gate instances of the same cell pays the derivation exactly
// once and the per-event work reduces to a handful of multiply-adds.
//
// NorModeTables (core/mode_tables.hpp) is the 2-input NOR instance of this
// machinery, kept as a thin subclass for source compatibility.
#pragma once

#include <memory>
#include <vector>

#include "core/gate_modes.hpp"
#include "core/gate_params.hpp"
#include "ode/linear_ode2.hpp"

namespace charlie::core {

/// Precomputed quantities of one mode. The scalar expansion writes the
/// output voltage on a mode segment entered at state x_ref as
///
///   V_O(tau) = d + a1 e^{l1 tau} + a2 e^{l2 tau},
///   dev = x_ref - xp,  a1 = p1c dev.x + p1d dev.y,  a2 = dev.y - a1,
///
/// where (p1c, p1d) is the bottom row of the spectral projector
/// P1 = (A - l2 I)/(l1 - l2). Components with zero eigenvalue are constant
/// and fold into d (fold1/fold2). xp is the mode's particular solution: the
/// equilibrium when A is nonsingular, and a consistent solution of
/// A xp = -g when a frozen internal node makes A singular (possible for
/// both topologies; g need not vanish for NAND-like stacks).
struct ModeTable {
  ode::AffineOde2 ode;
  ode::Vec2 steady{};  // steady state; frozen V_int reported with hold = 0
  ode::Vec2 xp{};      // particular solution of the scalar expansion
  bool scalar_valid = false;  // false: defective/complex spectrum, use scan
  double d = 0.0;
  double l1 = 0.0;
  double l2 = 0.0;
  double p1c = 0.0;
  double p1d = 0.0;
  bool fold1 = false;
  bool fold2 = false;
  // Full spectral form of the state evolution,
  //   x(tau) = xp + e^{l1 tau} S1 (x_ref - xp) + e^{l2 tau} S2 (x_ref - xp),
  // valid when the spectrum is diagonalizable and a particular solution
  // exists. Two exp() calls replace the generic matrix-exponential
  // machinery on the event hot path.
  bool spectral_valid = false;
  ode::Mat2 s1{};
  ode::Mat2 s2{};
};

/// Derive every expansion field of a ModeTable (particular solution, scalar
/// two-exponential coefficients, spectral projectors) from its affine ODE.
/// `steady` is left default -- it encodes model-specific conventions (frozen
/// internal nodes, hold values) the caller owns. Shared by GateModeTables
/// and the interconnect tables (wire::WireModeTables), which collapse RC
/// lines to the same affine 2-state form.
ModeTable derive_mode_table(const ode::AffineOde2& mode_ode);

class GateModeTables {
 public:
  /// Validates `params` once (throws ConfigError) and derives all 2^N mode
  /// tables plus the crossing-search horizon (60 slowest time constants).
  explicit GateModeTables(const GateParams& params);
  virtual ~GateModeTables() = default;

  /// Shared immutable table for reuse across many channel instances.
  static std::shared_ptr<const GateModeTables> make(const GateParams& params);

  /// Re-derive every table in place for new parameters of the same arity.
  /// No reallocation: this is the per-sample path of process-variation
  /// batches, where a worker-local copy of a cell's tables is rebound to a
  /// fresh process sample before each run. Throws ConfigError on invalid
  /// params or arity mismatch.
  void rederive(const GateParams& params);

  /// rederive(nominal.derive_for(point)) without the temporary: scales the
  /// nominal parameters directly into this object's storage.
  void rederive_at(const GateParams& nominal, const ProcessPoint& point);

  const GateParams& gate_params() const { return params_; }
  int n_inputs() const { return params_.n_inputs(); }
  GateState n_states() const {
    return static_cast<GateState>(tables_.size());
  }
  double vth() const { return vth_; }
  double horizon() const { return horizon_; }
  double delta_min() const { return params_.delta_min; }

  /// Worst-case hold value for a frozen internal node at initialization.
  double default_hold() const { return params_.worst_case_hold(); }

  /// Boolean output the gate settles to in `state`.
  bool output_value(GateState state) const {
    return gate_mode_output(params_.topology, state, params_.n_inputs());
  }

  const ModeTable& state_table(GateState state) const {
    return tables_[state];
  }

 private:
  // ModeTableGrid writes interpolated fields straight into the tables of a
  // worker-local instance (interpolate_into), bypassing full re-derivation.
  friend class ModeTableGrid;

  /// Derive all 2^N tables + horizon from params_ (shared by the ctor and
  /// the rederive paths; resize is a no-op when the arity is unchanged).
  void derive_tables();

  GateParams params_;
  double vth_ = 0.0;
  double horizon_ = 0.0;
  std::vector<ModeTable> tables_;
};

}  // namespace charlie::core
