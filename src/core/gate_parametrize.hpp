// Parametrization of the generalized N-input hybrid gate (the Section V
// workflow for NOR3/NAND2/NAND3 and beyond).
//
// Given measured characteristic delays of a real gate -- per-input
// single-input-switching delays plus the two simultaneous-switching
// extremes -- find per-input series/parallel resistances and the two node
// capacitances such that the hybrid model reproduces them. As for the NOR2
// (core/parametrize.hpp), a pure delay delta_min is first chosen so the
// measured simultaneous-switching speed-up ratio becomes achievable by the
// RC network (an n-strong parallel pull can speed up at most n-fold), then
// the R/C values are fitted by weighted least squares in log space.
#pragma once

#include <vector>

#include "core/gate_delay.hpp"
#include "core/gate_params.hpp"

namespace charlie::core {

/// Measured characteristic delays of an n-input gate (all include whatever
/// pure delay the substrate exhibits; the fit strips delta_min itself).
/// Layout matches core::GateSisDelays.
struct GateTargets {
  std::vector<double> fall;  // per-input SIS delay, output falling [s]
  std::vector<double> rise;  // per-input SIS delay, output rising [s]
  double fall_all = 0.0;     // all inputs rise simultaneously
  double rise_all = 0.0;     // all inputs fall simultaneously
};

struct GateFitOptions {
  double vdd = 0.8;
  // >= 0: pin delta_min to this value. Like every delta_min the fit
  // chooses, it is still capped at 0.9x the smallest measured target so
  // the corrected targets stay positive; check GateFitResult::params for
  // the value actually used.
  double forced_delta_min = -1.0;
  double target_ratio = 0.0;  // <= 0: use n (parallel speed-up bound)
  int nelder_mead_evaluations = 2500;
};

struct GateFitResult {
  GateParams params;     // includes the chosen delta_min
  GateTargets targets;   // what was asked for
  GateTargets achieved;  // what the fitted model produces (incl. delta_min)
  double rms_error = 0.0;  // RMS over all 2n+2 targets [s]
  double objective = 0.0;
  int evaluations = 0;
  // Infeasible objective evaluations (ConvergenceError from the delay
  // solve) swallowed as penalty values during this fit.
  int swallowed_fallbacks = 0;
};

/// Fit the generalized hybrid model to measured characteristic delays.
/// Throws ConfigError when targets are non-positive or inconsistent.
GateFitResult fit_gate_params(GateTopology topology,
                              const GateTargets& measured,
                              const GateFitOptions& options = {});

}  // namespace charlie::core
