#include "core/gate_params.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/units.hpp"

namespace charlie::core {

double GateParams::worst_case_hold() const {
  return topology == GateTopology::kNorLike ? 0.0 : vdd;
}

void GateParams::validate() const {
  const int n = n_inputs();
  if (n < 2 || n > kMaxGateInputs) {
    throw ConfigError("GateParams: n_inputs must be in [2, " +
                      std::to_string(kMaxGateInputs) + "], got " +
                      std::to_string(n));
  }
  if (r_parallel.size() != r_series.size()) {
    throw ConfigError(
        "GateParams: r_series and r_parallel must have one entry per input");
  }
  auto positive = [](double v, const char* name) {
    if (!(v > 0.0)) {
      throw ConfigError(std::string("GateParams: ") + name +
                        " must be positive");
    }
  };
  for (double r : r_series) positive(r, "r_series");
  for (double r : r_parallel) positive(r, "r_parallel");
  positive(c_int, "c_int");
  positive(c_out, "c_out");
  positive(vdd, "vdd");
  if (delta_min < 0.0) {
    throw ConfigError("GateParams: delta_min must be non-negative");
  }
}

std::string GateParams::to_string() const {
  std::ostringstream os;
  os << (topology == GateTopology::kNorLike ? "Nor" : "Nand") << n_inputs()
     << "Params{Rs=[";
  for (std::size_t i = 0; i < r_series.size(); ++i) {
    os << (i ? ", " : "") << units::format_resistance(r_series[i]);
  }
  os << "], Rp=[";
  for (std::size_t i = 0; i < r_parallel.size(); ++i) {
    os << (i ? ", " : "") << units::format_resistance(r_parallel[i]);
  }
  os << "], Cint=" << units::format_capacitance(c_int)
     << ", Cout=" << units::format_capacitance(c_out)
     << ", VDD=" << units::format_voltage(vdd)
     << ", delta_min=" << units::format_time(delta_min) << "}";
  return os.str();
}

GateParams GateParams::derive_for(const ProcessPoint& point) const {
  GateParams out;
  derive_for_into(point, out);
  return out;
}

void GateParams::derive_for_into(const ProcessPoint& point,
                                 GateParams& out) const {
  rescale_into(point.resistance_scale(vdd), point.vdd_scale, out);
}

void GateParams::rescale_into(double resistance_scale, double vdd_scale,
                              GateParams& out) const {
  const double s = resistance_scale;
  out.topology = topology;
  out.r_series.resize(r_series.size());
  out.r_parallel.resize(r_parallel.size());
  for (std::size_t i = 0; i < r_series.size(); ++i) {
    out.r_series[i] = r_series[i] * s;
  }
  for (std::size_t i = 0; i < r_parallel.size(); ++i) {
    out.r_parallel[i] = r_parallel[i] * s;
  }
  out.c_int = c_int;
  out.c_out = c_out;
  out.vdd = vdd * vdd_scale;
  out.delta_min = delta_min * s;  // pure delay rides the RC product
}

GateParams GateParams::from_nor(const NorParams& p) {
  GateParams g;
  g.topology = GateTopology::kNorLike;
  g.r_series = {p.r1, p.r2};
  g.r_parallel = {p.r3, p.r4};
  g.c_int = p.cn;
  g.c_out = p.co;
  g.vdd = p.vdd;
  g.delta_min = p.delta_min;
  return g;
}

GateParams GateParams::nor2_reference() {
  return from_nor(NorParams::paper_table1());
}

GateParams GateParams::nor3_reference() {
  GateParams g;
  g.topology = GateTopology::kNorLike;
  // Table-I-scale devices, third stack entry slightly larger (deeper chain
  // devices are usually upsized less than ideally in real cells).
  g.r_series = {37.088e3, 40.905e3, 44.926e3};
  g.r_parallel = {45.150e3, 46.912e3, 48.761e3};
  g.c_int = 83.3e-18;  // two junctions lumped into the output-adjacent node
  g.c_out = 617.259e-18;
  g.vdd = 0.8;
  g.delta_min = 18e-12;
  return g;
}

GateParams GateParams::nand2_reference() {
  GateParams g;
  g.topology = GateTopology::kNandLike;
  // Dual of the paper's NOR2: the series stack is the nMOS side.
  g.r_series = {45.150e3, 48.761e3};
  g.r_parallel = {37.088e3, 44.926e3};
  g.c_int = 59.486e-18;
  g.c_out = 617.259e-18;
  g.vdd = 0.8;
  g.delta_min = 18e-12;
  return g;
}

GateParams GateParams::nand3_reference() {
  GateParams g;
  g.topology = GateTopology::kNandLike;
  g.r_series = {45.150e3, 46.912e3, 48.761e3};
  g.r_parallel = {37.088e3, 40.905e3, 44.926e3};
  g.c_int = 83.3e-18;
  g.c_out = 617.259e-18;
  g.vdd = 0.8;
  g.delta_min = 18e-12;
  return g;
}

}  // namespace charlie::core
