#include "core/gate_modes.hpp"

#include "util/error.hpp"

namespace charlie::core {

namespace {

// Negation that never produces -0.0, so switched-off modes keep exact-zero
// matrix entries (frozen rows are detected by equality with 0).
inline double neg(double x) { return x == 0.0 ? 0.0 : -x; }

// True when every series-chain device *not* adjacent to the output
// conducts: inputs 0..n-2 all low for NOR-like (pMOS), inputs 1..n-1 all
// high for NAND-like (nMOS).
bool chain_conducts(const GateParams& p, GateState s) {
  const int n = p.n_inputs();
  if (p.topology == GateTopology::kNorLike) {
    for (int i = 0; i < n - 1; ++i) {
      if (gate_state_input(s, i)) return false;
    }
    return true;
  }
  for (int i = 1; i < n; ++i) {
    if (!gate_state_input(s, i)) return false;
  }
  return true;
}

// The output-adjacent series device: input n-1 low for NOR-like pull-up,
// input 0 high for NAND-like pull-down.
bool link_conducts(const GateParams& p, GateState s) {
  if (p.topology == GateTopology::kNorLike) {
    return !gate_state_input(s, p.n_inputs() - 1);
  }
  return gate_state_input(s, 0);
}

// Lumped resistance of the conducting sub-chain (excludes the
// output-adjacent device).
double chain_resistance(const GateParams& p) {
  const int n = p.n_inputs();
  double r = 0.0;
  if (p.topology == GateTopology::kNorLike) {
    for (int i = 0; i < n - 1; ++i) r += p.r_series[i];
  } else {
    for (int i = 1; i < n; ++i) r += p.r_series[i];
  }
  return r;
}

double link_resistance(const GateParams& p) {
  return p.topology == GateTopology::kNorLike
             ? p.r_series[p.n_inputs() - 1]
             : p.r_series[0];
}

}  // namespace

std::string gate_state_name(GateState state, int n_inputs) {
  std::string out = "(";
  for (int i = 0; i < n_inputs; ++i) {
    if (i > 0) out += ',';
    out += gate_state_input(state, i) ? '1' : '0';
  }
  out += ')';
  return out;
}

bool gate_mode_output(GateTopology topology, GateState state, int n_inputs) {
  const GateState all = gate_n_states(n_inputs) - 1u;
  if (topology == GateTopology::kNorLike) {
    return (state & all) == 0u;  // high iff every input is low
  }
  return (state & all) != all;  // low iff every input is high
}

bool gate_mode_internal_frozen(const GateParams& params, GateState state) {
  return !chain_conducts(params, state) && !link_conducts(params, state);
}

ode::AffineOde2 gate_mode_ode(const GateParams& p, GateState s) {
  const int n = p.n_inputs();
  const bool chain = chain_conducts(p, s);
  const bool link = link_conducts(p, s);

  // Accumulate positive conductance-over-capacitance terms and negate at
  // the end, keeping the n = 2 NOR entries bit-identical to the paper's
  // printed per-mode systems (core::mode_ode delegates here).
  double a_xx = 0.0;  // V_int self term
  double a_xy = 0.0;  // V_O -> V_int coupling
  double a_yx = 0.0;  // V_int -> V_O coupling
  double a_yy = 0.0;  // V_O self term
  double g_x = 0.0;
  double g_y = 0.0;

  if (chain) {
    const double r_chain = chain_resistance(p);
    if (p.topology == GateTopology::kNorLike) {
      // Sub-chain connects V_int to VDD.
      a_xx += 1.0 / (p.c_int * r_chain);
      g_x += p.vdd / (p.c_int * r_chain);
    } else {
      // Sub-chain connects V_int to GND.
      a_xx += 1.0 / (p.c_int * r_chain);
    }
  }
  if (link) {
    const double r_link = link_resistance(p);
    a_xx += 1.0 / (p.c_int * r_link);
    a_xy += 1.0 / (p.c_int * r_link);
    a_yx += 1.0 / (p.c_out * r_link);
    a_yy += 1.0 / (p.c_out * r_link);
  }
  // Parallel devices tie the output to a rail: GND for NOR-like nMOS
  // (conducting on a high input), VDD for NAND-like pMOS (on a low input).
  for (int i = 0; i < n; ++i) {
    const bool on = p.topology == GateTopology::kNorLike
                        ? gate_state_input(s, i)
                        : !gate_state_input(s, i);
    if (!on) continue;
    a_yy += 1.0 / (p.c_out * p.r_parallel[i]);
    if (p.topology == GateTopology::kNandLike) {
      g_y += p.vdd / (p.c_out * p.r_parallel[i]);
    }
  }

  const ode::Mat2 m{neg(a_xx), a_xy,  //
                    a_yx, neg(a_yy)};
  return ode::AffineOde2(m, {g_x, g_y});
}

ode::Vec2 gate_mode_steady_state(const GateParams& p, GateState s,
                                 double v_int_hold) {
  const bool chain = chain_conducts(p, s);
  const bool link = link_conducts(p, s);
  if (p.topology == GateTopology::kNorLike) {
    if (chain && link) return {p.vdd, p.vdd};  // full pull-up path, no fight
    if (chain) return {p.vdd, 0.0};            // N charged, O drained
    if (link) return {0.0, 0.0};               // N drains into O
    return {v_int_hold, 0.0};                  // stack isolated
  }
  if (chain && link) return {0.0, 0.0};  // full pull-down path
  if (chain) return {0.0, p.vdd};        // M drained, O charged
  if (link) return {p.vdd, p.vdd};       // M charges through O
  return {v_int_hold, p.vdd};            // stack isolated
}

}  // namespace charlie::core
