#include "core/gate_parametrize.hpp"

#include <algorithm>
#include <cmath>

#include "core/charlie_delays.hpp"
#include "fit/nelder_mead.hpp"
#include "fit/param_transform.hpp"
#include "util/diagnostics.hpp"
#include "util/error.hpp"

namespace charlie::core {
namespace {

constexpr double kLn2 = 0.6931471805599453;

std::vector<double> to_vector(const GateTargets& t) {
  std::vector<double> v;
  v.reserve(t.fall.size() + t.rise.size() + 2);
  v.insert(v.end(), t.fall.begin(), t.fall.end());
  v.insert(v.end(), t.rise.begin(), t.rise.end());
  v.push_back(t.fall_all);
  v.push_back(t.rise_all);
  return v;
}

std::vector<double> to_vector(const GateSisDelays& d) {
  std::vector<double> v;
  v.reserve(d.fall.size() + d.rise.size() + 2);
  v.insert(v.end(), d.fall.begin(), d.fall.end());
  v.insert(v.end(), d.rise.begin(), d.rise.end());
  v.push_back(d.fall_all);
  v.push_back(d.rise_all);
  return v;
}

void check_targets(const GateTargets& t) {
  const std::size_t n = t.fall.size();
  if (n < 2 || t.rise.size() != n) {
    throw ConfigError(
        "fit_gate_params: need per-input fall and rise targets of equal "
        "size >= 2");
  }
  for (double v : to_vector(t)) {
    if (!(v > 0.0)) {
      throw ConfigError("fit_gate_params: characteristic delays must be > 0");
    }
  }
}

GateParams params_from_vector(GateTopology topology, int n,
                              const std::vector<double>& v, double vdd,
                              double delta_min) {
  GateParams p;
  p.topology = topology;
  p.r_series.assign(v.begin(), v.begin() + n);
  p.r_parallel.assign(v.begin() + n, v.begin() + 2 * n);
  p.c_int = v[2 * n];
  p.c_out = v[2 * n + 1];
  p.vdd = vdd;
  p.delta_min = delta_min;
  return p;
}

// Same plausibility box as the NOR2 fit: kOhm..hundreds-of-kOhm devices,
// aF..fF nodes; keeps the optimizer out of numerically hostile corners.
double box_penalty(const GateParams& p) {
  auto outside = [](double v, double lo, double hi) {
    if (v < lo) return std::log(lo / v);
    if (v > hi) return std::log(v / hi);
    return 0.0;
  };
  double acc = 0.0;
  for (double r : p.r_series) acc += outside(r, 1e3, 400e3);
  for (double r : p.r_parallel) acc += outside(r, 1e3, 400e3);
  acc += outside(p.c_int, 5e-18, 5e-15);
  acc += outside(p.c_out, 50e-18, 50e-15);
  return acc * acc;
}

GateSisDelays with_delta(const GateSisDelays& raw, double delta_min) {
  GateSisDelays out = raw;
  for (double& v : out.fall) v += delta_min;
  for (double& v : out.rise) v += delta_min;
  out.fall_all += delta_min;
  out.rise_all += delta_min;
  return out;
}

}  // namespace

GateFitResult fit_gate_params(GateTopology topology,
                              const GateTargets& measured,
                              const GateFitOptions& options) {
  check_targets(measured);
  const long fallbacks_before = util::RunCounters::local().fit_fallbacks;
  const int n = static_cast<int>(measured.fall.size());
  const auto measured_vec = to_vector(measured);
  const double smallest_target =
      *std::min_element(measured_vec.begin(), measured_vec.end());

  // delta_min via the paper's ratio rule on the parallel-network direction
  // (falling for NOR-like, rising for NAND-like): n equal parallel devices
  // can speed up the simultaneous transition at most n-fold over the
  // slowest SIS one.
  const double ratio =
      options.target_ratio > 0.0 ? options.target_ratio : double(n);
  double delta_min;
  if (options.forced_delta_min >= 0.0) {
    delta_min = std::min(options.forced_delta_min, 0.9 * smallest_target);
  } else {
    const bool nor_like = topology == GateTopology::kNorLike;
    const auto& sis = nor_like ? measured.fall : measured.rise;
    const double sis_max = *std::max_element(sis.begin(), sis.end());
    const double simultaneous =
        nor_like ? measured.fall_all : measured.rise_all;
    delta_min = delta_min_for_ratio(sis_max, simultaneous, ratio);
    delta_min = std::clamp(delta_min, 0.0, 0.9 * smallest_target);
  }

  // Targets with the pure delay stripped (floored so a large delta_min can
  // never push a target negative).
  std::vector<double> corrected(measured_vec.size());
  for (std::size_t i = 0; i < measured_vec.size(); ++i) {
    corrected[i] =
        std::max(measured_vec[i] - delta_min, 0.05 * measured_vec[i]);
  }
  GateTargets corr;
  corr.fall.assign(corrected.begin(), corrected.begin() + n);
  corr.rise.assign(corrected.begin() + n, corrected.begin() + 2 * n);
  corr.fall_all = corrected[2 * n];
  corr.rise_all = corrected[2 * n + 1];

  // Seed from single-RC relations: the parallel device of input i sets its
  // own SIS delay (falling for NOR-like, rising for NAND-like); the series
  // chain total comes from the opposite direction, split evenly.
  GateParams seed;
  seed.topology = topology;
  seed.vdd = options.vdd;
  seed.delta_min = 0.0;
  seed.c_out = 600e-18;
  seed.c_int = 0.12 * seed.c_out;
  const bool nor_like = topology == GateTopology::kNorLike;
  const auto& own = nor_like ? corr.fall : corr.rise;
  const auto& chain_dir = nor_like ? corr.rise : corr.fall;
  double chain_mean = 0.0;
  for (int i = 0; i < n; ++i) chain_mean += chain_dir[i];
  chain_mean /= n;
  const double chain_total = chain_mean / (kLn2 * seed.c_out);
  for (int i = 0; i < n; ++i) {
    seed.r_parallel.push_back(own[i] / (kLn2 * seed.c_out));
    seed.r_series.push_back(chain_total / n);
  }

  std::vector<double> flat = seed.r_series;
  flat.insert(flat.end(), seed.r_parallel.begin(), seed.r_parallel.end());
  flat.push_back(seed.c_int);
  flat.push_back(seed.c_out);
  const std::vector<double> x0 = fit::to_log_space(flat);

  auto obj = [&](const std::vector<double>& log_x) {
    const auto x = fit::from_log_space(log_x);
    const GateParams p =
        params_from_vector(topology, n, x, options.vdd, 0.0);
    try {
      const GateModeTables tables(p);
      const auto achieved = to_vector(gate_characteristic_delays(tables));
      double acc = 0.0;
      for (std::size_t i = 0; i < achieved.size(); ++i) {
        const double rel = (achieved[i] - corrected[i]) / corrected[i];
        acc += rel * rel;
      }
      return acc + 0.1 * box_penalty(p);
    } catch (const ConvergenceError&) {
      // Infeasible corner of parameter space: a non-converging delay
      // solve is expected there and becomes a penalty.
      ++util::RunCounters::local().fit_fallbacks;
      return 1e6;
    } catch (const ConfigError&) {
      // Also expected there: log-space steps can underflow a parameter to
      // exactly 0.0, which validation rejects. Anything else
      // (AssertionError, bad_alloc) is a real bug and propagates.
      ++util::RunCounters::local().fit_fallbacks;
      return 1e6;
    }
  };

  fit::NelderMeadOptions nm;
  nm.max_evaluations = options.nelder_mead_evaluations;
  nm.initial_step = 0.25;
  const auto nm_result = fit::nelder_mead(obj, x0, nm);

  GateFitResult result;
  result.params = params_from_vector(
      topology, n, fit::from_log_space(nm_result.x), options.vdd, delta_min);
  result.targets = measured;
  {
    GateParams raw = result.params;
    raw.delta_min = 0.0;
    const GateModeTables tables(raw);
    const auto achieved_raw = gate_characteristic_delays(tables);
    const auto achieved = with_delta(achieved_raw, delta_min);
    result.achieved.fall = achieved.fall;
    result.achieved.rise = achieved.rise;
    result.achieved.fall_all = achieved.fall_all;
    result.achieved.rise_all = achieved.rise_all;
  }
  result.objective = nm_result.f;
  result.evaluations = nm_result.evaluations;

  const auto ach_vec = to_vector(GateSisDelays{
      result.achieved.fall, result.achieved.rise, result.achieved.fall_all,
      result.achieved.rise_all});
  double acc = 0.0;
  for (std::size_t i = 0; i < ach_vec.size(); ++i) {
    const double e = ach_vec[i] - measured_vec[i];
    acc += e * e;
  }
  result.rms_error = std::sqrt(acc / static_cast<double>(ach_vec.size()));
  result.swallowed_fallbacks = static_cast<int>(
      util::RunCounters::local().fit_fallbacks - fallbacks_before);
  return result;
}

}  // namespace charlie::core
