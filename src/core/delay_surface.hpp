// Tabulated delta(Delta) delay curves with interpolation.
//
// Event-driven simulation queries gate delays once per input transition;
// precomputing the MIS curves on a Delta grid turns each query into a
// table lookup while keeping the exact SIS asymptotes outside the grid.
#pragma once

#include <vector>

#include "core/delay_model.hpp"
#include "core/nor_params.hpp"

namespace charlie::core {

class DelaySurface {
 public:
  /// Sample falling/rising MIS delays over Delta in [-delta_max, delta_max]
  /// with `n_points` per curve (n >= 2). `vn0` is the (1,1) history value
  /// used for the rising curve (paper: GND).
  static DelaySurface build(const NorParams& params, double delta_max,
                            std::size_t n_points, double vn0 = 0.0);

  /// Interpolated falling-output delay; clamps to the SIS limits outside
  /// the tabulated range.
  double falling(double delta) const;

  /// Interpolated rising-output delay.
  double rising(double delta) const;

  double delta_max() const { return delta_max_; }
  const NorParams& params() const { return params_; }
  double falling_sis_b_first() const { return fall_.front(); }
  double falling_sis_a_first() const { return fall_.back(); }
  double rising_sis_b_first() const { return rise_.front(); }
  double rising_sis_a_first() const { return rise_.back(); }

 private:
  DelaySurface() = default;
  double lookup(const std::vector<double>& table, double delta) const;

  NorParams params_;
  double delta_max_ = 0.0;
  double step_ = 0.0;
  std::vector<double> fall_;
  std::vector<double> rise_;
};

}  // namespace charlie::core
