#include "core/delay_surface.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/math.hpp"

namespace charlie::core {

DelaySurface DelaySurface::build(const NorParams& params, double delta_max,
                                 std::size_t n_points, double vn0) {
  CHARLIE_ASSERT(delta_max > 0.0);
  CHARLIE_ASSERT(n_points >= 2);
  DelaySurface s;
  s.params_ = params;
  s.delta_max_ = delta_max;
  s.step_ = 2.0 * delta_max / static_cast<double>(n_points - 1);
  const NorDelayModel model(params);
  s.fall_.reserve(n_points);
  s.rise_.reserve(n_points);
  for (double delta : math::linspace(-delta_max, delta_max, n_points)) {
    s.fall_.push_back(model.falling_delay(delta).delay);
    s.rise_.push_back(model.rising_delay(delta, vn0).delay);
  }
  return s;
}

double DelaySurface::lookup(const std::vector<double>& table,
                            double delta) const {
  if (delta <= -delta_max_) return table.front();
  if (delta >= delta_max_) return table.back();
  const double pos = (delta + delta_max_) / step_;
  const std::size_t idx = static_cast<std::size_t>(pos);
  if (idx + 1 >= table.size()) return table.back();
  const double frac = pos - static_cast<double>(idx);
  return table[idx] * (1.0 - frac) + table[idx + 1] * frac;
}

double DelaySurface::falling(double delta) const {
  return lookup(fall_, delta);
}

double DelaySurface::rising(double delta) const { return lookup(rise_, delta); }

}  // namespace charlie::core
