#include "core/gate_mode_tables.hpp"

#include <algorithm>
#include <cmath>

#include "util/diagnostics.hpp"
#include "util/error.hpp"

namespace charlie::core {

ModeTable derive_mode_table(const ode::AffineOde2& mode_ode) {
  ModeTable t;
  t.ode = mode_ode;
  const ode::Eigen2& eig = t.ode.eigen();
  const ode::Vec2& g = t.ode.g();
  bool xp_valid = false;
  if (t.ode.has_equilibrium()) {
    t.xp = t.ode.equilibrium();
    xp_valid = true;
  } else if (g.x == 0.0 && g.y == 0.0) {
    // Source-free singular mode (e.g. the NOR stack fully isolated):
    // xp = 0 trivially solves A xp = -g.
    xp_valid = true;
  } else {
    // Frozen internal node with a driven output (NAND-like stacks): the
    // V_int row of A is zero with g.x = 0, so A xp = -g stays consistent
    // and any solution serves as the particular point of the expansion.
    const ode::Mat2& a = t.ode.a();
    if (a.a == 0.0 && a.b == 0.0 && g.x == 0.0 && a.d != 0.0) {
      t.xp = {0.0, -g.y / a.d};
      xp_valid = true;
    }
  }
  if (xp_valid) t.d = t.xp.y;
  if (eig.kind == ode::EigenKind::kRealDistinct) {
    t.scalar_valid = true;
    t.l1 = eig.lambda1;
    t.l2 = eig.lambda2;
    const ode::Mat2& a = t.ode.a();
    const double inv = 1.0 / (t.l1 - t.l2);
    t.s1 = (a - t.l2 * ode::Mat2::identity()) * inv;
    t.s2 = ode::Mat2::identity() - t.s1;
    t.p1c = t.s1.c;
    t.p1d = t.s1.d;
  } else if (eig.kind == ode::EigenKind::kRealRepeated) {
    // A = lambda I: V_O decays independently of V_int, so the projector
    // row is zero and the whole deviation rides on the l2 exponential.
    t.scalar_valid = true;
    t.l1 = 0.0;
    t.l2 = eig.lambda1;
    t.s1 = ode::Mat2::zero();
    t.s2 = ode::Mat2::identity();
  }
  t.scalar_valid = t.scalar_valid && xp_valid;
  // Guardrail: a non-finite derived quantity (overflowed eigen-solve,
  // near-singular projector) must never reach the per-event hot path.
  // Degrade to the generic scan path, which only needs the ODE itself.
  if (t.scalar_valid &&
      !(std::isfinite(t.xp.x) && std::isfinite(t.xp.y) &&
        std::isfinite(t.d) && std::isfinite(t.l1) && std::isfinite(t.l2) &&
        std::isfinite(t.s1.a) && std::isfinite(t.s1.b) &&
        std::isfinite(t.s1.c) && std::isfinite(t.s1.d))) {
    t.scalar_valid = false;
    ++util::RunCounters::local().nonfinite_guard_trips;
  }
  t.fold1 = t.scalar_valid && t.l1 == 0.0;
  t.fold2 = t.scalar_valid && t.l2 == 0.0;
  t.spectral_valid = t.scalar_valid;
  return t;
}

GateModeTables::GateModeTables(const GateParams& params) : params_(params) {
  derive_tables();
}

void GateModeTables::derive_tables() {
  params_.validate();
  vth_ = params_.vth();
  tables_.resize(gate_n_states(params_.n_inputs()));
  double slowest = 0.0;
  for (GateState s = 0; s < tables_.size(); ++s) {
    ModeTable& t = tables_[s];
    t = derive_mode_table(gate_mode_ode(params_, s));
    t.steady = gate_mode_steady_state(params_, s, 0.0);
    const ode::Eigen2& eig = t.ode.eigen();
    for (double lambda : {eig.lambda1, eig.lambda2}) {
      if (lambda < 0.0) slowest = std::max(slowest, 1.0 / -lambda);
    }
  }
  horizon_ = 60.0 * slowest;
}

void GateModeTables::rederive(const GateParams& params) {
  if (params.n_inputs() != params_.n_inputs()) {
    throw ConfigError("GateModeTables::rederive: arity mismatch");
  }
  params_ = params;
  derive_tables();
}

void GateModeTables::rederive_at(const GateParams& nominal,
                                 const ProcessPoint& point) {
  if (nominal.n_inputs() != params_.n_inputs()) {
    throw ConfigError("GateModeTables::rederive_at: arity mismatch");
  }
  nominal.derive_for_into(point, params_);
  derive_tables();
}

std::shared_ptr<const GateModeTables> GateModeTables::make(
    const GateParams& params) {
  return std::make_shared<const GateModeTables>(params);
}

}  // namespace charlie::core
