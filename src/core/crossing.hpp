// Output threshold-crossing search on hybrid trajectories.
//
// The gate delay is defined by the time V_O crosses V_th = VDD/2 (paper
// Section II). Trajectories are sums of exponentials per segment, so
// crossings are located by sign-change scanning at a fraction of the
// fastest mode time constant, refined with Brent's method.
#pragma once

#include <optional>

#include "core/trajectory.hpp"

namespace charlie::core {

enum class CrossDirection {
  kEither,
  kRising,   // V_O crosses the threshold upward
  kFalling,  // downward
};

struct CrossingQuery {
  double threshold = 0.0;
  double t_start = 0.0;
  double t_end = 0.0;  // search horizon (absolute time)
  CrossDirection direction = CrossDirection::kEither;
};

/// First time in [t_start, t_end] where V_O crosses the threshold in the
/// requested direction; nullopt if it never does within the horizon.
std::optional<double> first_vo_crossing(const NorTrajectory& trajectory,
                                        const CrossingQuery& query);

/// Scan step heuristic: a fraction of the fastest time constant among the
/// trajectory's modes (clamped so a search window never exceeds ~100k steps).
double crossing_scan_step(const NorTrajectory& trajectory, double window);

}  // namespace charlie::core
