#include "core/mode_tables.hpp"

#include <algorithm>

namespace charlie::core {

NorModeTables::NorModeTables(const NorParams& params) : params_(params) {
  params_.validate();
  vth_ = params_.vth();
  double slowest = 0.0;
  for (Mode m : kAllModes) {
    ModeTable& t = tables_[static_cast<std::size_t>(m)];
    t.ode = mode_ode(m, params_);
    t.steady = mode_steady_state(m, params_, 0.0);
    const ode::Eigen2& eig = t.ode.eigen();
    for (double lambda : {eig.lambda1, eig.lambda2}) {
      if (lambda < 0.0) slowest = std::max(slowest, 1.0 / -lambda);
    }
    if (t.ode.has_equilibrium()) {
      t.xp = t.ode.equilibrium();
      t.d = t.xp.y;
    }
    if (eig.kind == ode::EigenKind::kRealDistinct) {
      t.scalar_valid = true;
      t.l1 = eig.lambda1;
      t.l2 = eig.lambda2;
      const ode::Mat2& a = t.ode.a();
      const double inv = 1.0 / (t.l1 - t.l2);
      t.s1 = (a - t.l2 * ode::Mat2::identity()) * inv;
      t.s2 = ode::Mat2::identity() - t.s1;
      t.p1c = t.s1.c;
      t.p1d = t.s1.d;
    } else if (eig.kind == ode::EigenKind::kRealRepeated) {
      // A = lambda I: V_O decays independently of V_N, so the projector row
      // is zero and the whole deviation rides on the l2 exponential.
      t.scalar_valid = true;
      t.l1 = 0.0;
      t.l2 = eig.lambda1;
      t.s1 = ode::Mat2::zero();
      t.s2 = ode::Mat2::identity();
    }
    t.fold1 = t.scalar_valid && t.l1 == 0.0;
    t.fold2 = t.scalar_valid && t.l2 == 0.0;
    const ode::Vec2& g = t.ode.g();
    t.spectral_valid = t.scalar_valid &&
                       (t.ode.has_equilibrium() || (g.x == 0.0 && g.y == 0.0));
  }
  horizon_ = 60.0 * slowest;
}

std::shared_ptr<const NorModeTables> NorModeTables::make(
    const NorParams& params) {
  return std::make_shared<const NorModeTables>(params);
}

}  // namespace charlie::core
