// Parameters of the hybrid NOR-gate model (paper Fig 1 / Table I).
//
// The gate is a 2-input CMOS NOR: pMOS T1 (input A, to VDD) in series with
// pMOS T2 (input B), nMOS T3 (input A) and T4 (input B) in parallel to GND.
// Replacing each transistor by an ideal switch + on-resistance yields one RC
// network per input state, with state capacitances C_N (internal p-stack
// node N) and C_O (output O).
#pragma once

#include <string>

namespace charlie::core {

struct NorParams {
  double r1 = 0.0;  // on-resistance of pMOS T1 (input A) [ohm]
  double r2 = 0.0;  // on-resistance of pMOS T2 (input B) [ohm]
  double r3 = 0.0;  // on-resistance of nMOS T3 (input A) [ohm]
  double r4 = 0.0;  // on-resistance of nMOS T4 (input B) [ohm]
  double cn = 0.0;  // parasitic capacitance at internal node N [farad]
  double co = 0.0;  // output load capacitance [farad]
  double vdd = 0.8;        // supply voltage [volt]
  double delta_min = 0.0;  // pure delay added to every gate delay [s]

  /// Discretization threshold V_th = VDD/2 (paper convention).
  double vth() const { return 0.5 * vdd; }

  /// Paper Table I: values fitted against Spectre/FreePDK15 analog
  /// simulations of the NOR gate, with delta_min = 18 ps and VDD = 0.8 V.
  static NorParams paper_table1();

  /// Throws ConfigError unless all R/C values and vdd are positive and
  /// delta_min is non-negative.
  void validate() const;

  std::string to_string() const;
};

}  // namespace charlie::core
