// Parameters of the generalized N-input hybrid gate model.
//
// The paper's 2-input NOR (NorParams) is one instance of a series/parallel
// CMOS structure: a series stack of N transistors on one side of the output
// and N parallel transistors on the other. Replacing every transistor by an
// ideal switch + on-resistance and lumping the stack's internal parasitics
// into a single capacitance at the node adjacent to the output device keeps
// the state two-dimensional, (V_int, V_O), for any N -- so the entire
// closed-form mode machinery (two-exponential scalar expansion, spectral
// projectors, Newton crossing solve) carries over unchanged.
//
// Conventions (fixed, documented here once):
//   * kNorLike  -- series pMOS pull-up, parallel nMOS pull-down.
//     Chain order VDD -T_0- ... -T_{n-2}- INT -T_{n-1}- O: the device
//     adjacent to the output is driven by input n-1 (paper Fig 1 with
//     A = input 0, B = input 1).
//   * kNandLike -- parallel pMOS pull-up, series nMOS pull-down.
//     Chain order O -T_0- INT -T_1- ... -T_{n-1}- GND: the device adjacent
//     to the output is driven by input 0 (matches spice::build_nand2/3).
//   * r_series[i] is the on-resistance of input i's series-stack device,
//     r_parallel[i] of its parallel device. The devices of the stack that
//     are *not* adjacent to the output lump into one equivalent resistance
//     (their sum) whenever the whole sub-chain conducts.
#pragma once

#include <string>
#include <vector>

#include "core/nor_params.hpp"
#include "core/process_point.hpp"

namespace charlie::core {

/// Fixed upper bound on gate arity; lets channels use stack arrays on the
/// event hot path instead of heap-allocated input vectors.
inline constexpr int kMaxGateInputs = 8;

enum class GateTopology {
  kNorLike,   // series pull-up stack, parallel pull-down
  kNandLike,  // parallel pull-up, series pull-down stack (the dual)
};

struct GateParams {
  GateTopology topology = GateTopology::kNorLike;
  std::vector<double> r_series;    // per-input series-stack device [ohm]
  std::vector<double> r_parallel;  // per-input parallel device [ohm]
  double c_int = 0.0;  // lumped stack-internal node capacitance [farad]
  double c_out = 0.0;  // output load capacitance [farad]
  double vdd = 0.8;        // supply voltage [volt]
  double delta_min = 0.0;  // pure delay added to every gate delay [s]

  int n_inputs() const { return static_cast<int>(r_series.size()); }

  /// Discretization threshold V_th = VDD/2 (paper convention).
  double vth() const { return 0.5 * vdd; }

  /// Worst-case value of the frozen internal node when the gate is
  /// initialized in an isolated-stack state: GND for NOR-like (the pull-up
  /// must recharge the stack before the output), VDD for NAND-like (the
  /// pull-down must drain it first).
  double worst_case_hold() const;

  /// Throws ConfigError unless 2 <= n <= kMaxGateInputs, the two resistance
  /// vectors have equal size, all R/C values and vdd are positive, and
  /// delta_min is non-negative.
  void validate() const;

  std::string to_string() const;

  /// Parameters of this (nominal) cell at a process point: every
  /// on-resistance and delta_min scale by point.resistance_scale(vdd), the
  /// supply by vdd_scale, the capacitances stay fitted (see
  /// core/process_point.hpp for the scale rule). derive_for(nominal()) is
  /// the identity.
  GateParams derive_for(const ProcessPoint& point) const;

  /// Same, writing into `out` without reallocating when arities match (the
  /// per-sample path of GateModeTables::rederive_at). `out` must not alias
  /// this object.
  void derive_for_into(const ProcessPoint& point, GateParams& out) const;

  /// derive_for_into with the resistance scale already computed: callers on
  /// the per-sample hot path (ModeTableGrid::interpolate_into) need
  /// point.resistance_scale(vdd) for their own stencil and pass it through
  /// instead of paying the validation and division twice. Bit-identical to
  /// derive_for_into for matching arguments.
  void rescale_into(double resistance_scale, double vdd_scale,
                    GateParams& out) const;

  /// The paper's NOR2 as a GateParams: r_series = {R1, R2},
  /// r_parallel = {R3, R4}, c_int = C_N, c_out = C_O. Mode ODEs built from
  /// the result are bit-identical to the NorParams ones.
  static GateParams from_nor(const NorParams& params);

  /// Reference cells in the Table-I regime (per-device resistances of a few
  /// tens of kOhm, attofarad node capacitances) for tests and examples that
  /// do not fit against an analog substrate. nor2_reference() is exactly
  /// from_nor(NorParams::paper_table1()), so channels built from it stay
  /// bit-identical to the paper's NOR2.
  static GateParams nor2_reference();
  static GateParams nor3_reference();
  static GateParams nand2_reference();
  static GateParams nand3_reference();
};

}  // namespace charlie::core
