#include "core/charlie_delays.hpp"

#include <algorithm>
#include <cmath>

#include "core/delay_model.hpp"
#include "util/error.hpp"

namespace charlie::core {
namespace {

constexpr double kLn2 = 0.6931471805599453;

// Linearized threshold crossing: the trajectory
//   V_O(t) = offset + k1 e^{l1 t} + k2 e^{l2 t}
// is Taylor-expanded at t = w and the resulting linear equation solved for
// V_O = vth. This is the common skeleton of eqs (10)-(12).
double taylor_crossing_at(double vth, double offset, double k1, double l1,
                          double k2, double l2, double w) {
  const double e1 = std::exp(l1 * w);
  const double e2 = std::exp(l2 * w);
  const double numerator =
      vth - offset - k1 * e1 * (1.0 - l1 * w) - k2 * e2 * (1.0 - l2 * w);
  const double denominator = k1 * l1 * e1 + k2 * l2 * e2;
  CHARLIE_ASSERT_MSG(denominator != 0.0,
                     "taylor_crossing: zero slope at expansion point");
  return numerator / denominator;
}

// Internal wrapper around taylor_crossing_solve for the eq (10)-(12)
// helpers: in debug builds a non-converged solve is an invariant violation
// (the characteristic-delay trajectories always cross V_th); release builds
// keep the historical return-last-iterate behaviour.
double taylor_crossing(double vth, double offset, double k1, double l1,
                       double k2, double l2, double w, double seed,
                       double t_floor) {
  const TaylorCrossingResult r =
      taylor_crossing_solve(vth, offset, k1, l1, k2, l2, w, seed, t_floor);
#ifndef NDEBUG
  CHARLIE_ASSERT_MSG(r.converged,
                     "taylor_crossing: Newton iteration did not converge");
#endif
  return r.t;
}

// Constants a, b, l of eqs (11)/(12), in terms of the (0,0) spectrum.
struct RiseConstants {
  double a = 0.0;
  double b = 0.0;
  double l = 0.0;  // equals VDD; asserted in tests
};

RiseConstants rise_constants(const NorParams& p, const ModeSpectrum& s00) {
  RiseConstants k;
  const double det = s00.gamma * s00.gamma - s00.beta * s00.beta;  // l1*l2
  k.a = p.vdd * (s00.alpha + s00.gamma) * (s00.alpha + s00.beta) /
        (p.cn * p.r1 * det);
  k.b = p.vdd * (s00.beta * s00.beta - s00.alpha * s00.alpha) /
        (p.cn * p.r1 * det);
  k.l = p.vdd * (s00.beta * s00.beta - s00.alpha * s00.alpha) * p.r2 /
        (p.r1 * det);
  return k;
}

// Coefficients c1, c2 of the (0,0) segment written on absolute time, where
// the switch into (0,0) happens at `ts` with state (vn_ts, vo_ts):
//   V_O(t) = c1 (alpha+beta) e^{l1 t} + c2 (alpha-beta) e^{l2 t} + VDD.
struct RiseCoefficients {
  double c1 = 0.0;
  double c2 = 0.0;
};

RiseCoefficients rise_coefficients(const NorParams& p,
                                   const ModeSpectrum& s00,
                                   const RiseConstants& k, double ts,
                                   double vn_ts, double vo_ts) {
  RiseCoefficients c;
  const double apb = s00.alpha + s00.beta;
  const double bracket2 = apb * vn_ts - vo_ts / (p.cn * p.r2) + k.a + k.b;
  c.c2 = bracket2 * p.cn * p.r2 / (2.0 * s00.beta * std::exp(s00.lambda2 * ts));
  const double bracket1 =
      apb * vn_ts - c.c2 * apb / (p.cn * p.r2) * std::exp(s00.lambda2 * ts) +
      k.a;
  c.c1 = bracket1 * p.cn * p.r2 / (apb * std::exp(s00.lambda1 * ts));
  return c;
}

}  // namespace

TaylorCrossingResult taylor_crossing_solve(double vth, double offset,
                                           double k1, double l1, double k2,
                                           double l2, double w, double seed,
                                           double t_floor) {
  TaylorCrossingResult r;
  if (w != kAutoExpansion) {
    // The paper's printed one-step form at a fixed expansion point is the
    // requested answer by definition.
    r.t = taylor_crossing_at(vth, offset, k1, l1, k2, l2, w);
    r.converged = true;
    r.iterations = 1;
    return r;
  }
  const double tau_slow = 1.0 / std::fabs(l1);
  // Residual scale for the accept test below: a true Newton fixed point has
  // |V_O(t) - vth| near machine epsilon relative to the coefficient sizes,
  // while an iterate pinned at a clamp bound (no crossing exists) does not.
  const double vscale =
      std::fabs(offset) + std::fabs(k1) + std::fabs(k2) + std::fabs(vth);
  double t = seed;
  for (int iter = 0; iter < 60; ++iter) {
    const double next = taylor_crossing_at(vth, offset, k1, l1, k2, l2, t);
    // Keep the iterate in a sane range; Newton from a bad seed can
    // overshoot into the flat tail.
    const double clamped = std::clamp(next, t_floor, seed + 50.0 * tau_slow);
    r.iterations = iter + 1;
    if (std::fabs(clamped - t) < 1e-9 * tau_slow) {
      const double resid = offset + k1 * std::exp(l1 * clamped) +
                           k2 * std::exp(l2 * clamped) - vth;
      r.t = clamped;
      r.converged = std::fabs(resid) <= 1e-6 * vscale;
      return r;
    }
    t = clamped;
  }
  r.t = t;
  r.converged = false;
  return r;
}

CharacteristicDelays characteristic_delays_exact(const NorParams& params,
                                                 double vn0) {
  const NorDelayModel model(params);
  CharacteristicDelays d;
  d.fall_minus_inf = model.falling_sis_b_first();
  d.fall_zero = model.falling_delay(0.0).delay;
  d.fall_plus_inf = model.falling_sis_a_first();
  d.rise_minus_inf = model.rising_sis_b_first(vn0);
  d.rise_zero = model.rising_delay(0.0, vn0).delay;
  d.rise_plus_inf = model.rising_sis_a_first(vn0);
  return d;
}

ModeSpectrum spectrum_mode10(const NorParams& p) {
  ModeSpectrum s;
  const double denom = 2.0 * p.co * p.cn * p.r2 * p.r3;
  const double sum = p.co * p.r3 + p.cn * (p.r2 + p.r3);
  s.alpha = (p.co * p.r3 - p.cn * (p.r2 + p.r3)) / denom;
  const double disc = sum * sum - 4.0 * p.co * p.cn * p.r2 * p.r3;
  CHARLIE_ASSERT_MSG(disc >= 0.0, "mode (1,0): complex spectrum");
  s.beta = std::sqrt(disc) / denom;
  s.gamma = -sum / denom;
  s.lambda1 = s.gamma + s.beta;
  s.lambda2 = s.gamma - s.beta;
  return s;
}

ModeSpectrum spectrum_mode00(const NorParams& p) {
  ModeSpectrum s;
  const double denom = 2.0 * p.co * p.cn * p.r1 * p.r2;
  const double sum = p.cn * p.r1 + p.co * (p.r1 + p.r2);
  s.alpha = (p.co * (p.r1 + p.r2) - p.cn * p.r1) / denom;
  const double disc = sum * sum - 4.0 * p.co * p.cn * p.r1 * p.r2;
  CHARLIE_ASSERT_MSG(disc >= 0.0, "mode (0,0): complex spectrum");
  s.beta = std::sqrt(disc) / denom;
  s.gamma = -sum / denom;
  s.lambda1 = s.gamma + s.beta;
  s.lambda2 = s.gamma - s.beta;
  return s;
}

double paper_fall_zero(const NorParams& p) {
  return kLn2 * p.co * (p.r3 * p.r4) / (p.r3 + p.r4);
}

double paper_fall_minus_inf(const NorParams& p) { return kLn2 * p.co * p.r4; }

double paper_fall_plus_inf(const NorParams& p, double w) {
  // Mode (1,0) from (VDD, VDD):
  //   V_N = (c1 + c2)/(C_N R2) e^{...},  V_O = c1(a+b)e^{l1 t} + c2(a-b)e^{l2 t}
  const ModeSpectrum s = spectrum_mode10(p);
  const double vth = p.vth();
  const double c2 = vth * ((s.alpha + s.beta) * p.cn * p.r2 - 1.0) / s.beta;
  const double c1 = p.vdd * p.cn * p.r2 - c2;
  const double tau_slow = 1.0 / std::fabs(s.lambda1);
  return taylor_crossing(vth, 0.0, c1 * (s.alpha + s.beta), s.lambda1,
                         c2 * (s.alpha - s.beta), s.lambda2, w,
                         0.5 * tau_slow, 1e-3 * tau_slow);
}

double paper_rise_nonneg(const NorParams& p, double delta, double vn0,
                         double w) {
  CHARLIE_ASSERT_MSG(delta >= 0.0, "eq (11) covers Delta >= 0");
  const ModeSpectrum s = spectrum_mode00(p);
  const RiseConstants k = rise_constants(p, s);
  // Intermediate mode (0,1): V_N charges toward VDD from X = vn0, V_O = 0.
  const double vn_ts =
      p.vdd + (vn0 - p.vdd) * std::exp(-delta / (p.cn * p.r1));
  const RiseCoefficients c = rise_coefficients(p, s, k, delta, vn_ts, 0.0);
  const double tau_slow = 1.0 / std::fabs(s.lambda1);
  const double t_cross = taylor_crossing(
      p.vth(), k.l, c.c1 * (s.alpha + s.beta), s.lambda1,
      c.c2 * (s.alpha - s.beta), s.lambda2, w, delta + 0.7 * tau_slow,
      delta + 1e-3 * tau_slow);
  return t_cross - delta;
}

double paper_rise_neg(const NorParams& p, double delta, double vn0, double w) {
  CHARLIE_ASSERT_MSG(delta < 0.0, "eq (12) covers Delta < 0");
  const double ts = -delta;
  // Intermediate mode (1,0) from (X, 0); spectrum (x, y, z) per eqs (1)-(3).
  const ModeSpectrum m10 = spectrum_mode10(p);
  const double x = m10.alpha;
  const double y = m10.beta;
  const double g2 = vn0 * p.cn * p.r2 * (x + y) / (2.0 * y);
  const double g1 = (y - x) * g2 / (x + y);
  const double e_slow = std::exp(m10.lambda1 * ts);  // z + y
  const double e_fast = std::exp(m10.lambda2 * ts);  // z - y
  const double vn_ts = (g1 * e_slow + g2 * e_fast) / (p.cn * p.r2);
  const double vo_ts = g1 * (x + y) * e_slow + g2 * (x - y) * e_fast;

  const ModeSpectrum s = spectrum_mode00(p);
  const RiseConstants k = rise_constants(p, s);
  const RiseCoefficients c = rise_coefficients(p, s, k, ts, vn_ts, vo_ts);
  const double tau_slow = 1.0 / std::fabs(s.lambda1);
  const double t_cross = taylor_crossing(
      p.vth(), k.l, c.c1 * (s.alpha + s.beta), s.lambda1,
      c.c2 * (s.alpha - s.beta), s.lambda2, w, ts + 0.7 * tau_slow,
      ts + 1e-3 * tau_slow);
  return t_cross - ts;
}

double delta_min_for_ratio(double measured_fall_minus_inf,
                           double measured_fall_zero, double target_ratio) {
  CHARLIE_ASSERT(target_ratio > 1.0);
  return (target_ratio * measured_fall_zero - measured_fall_minus_inf) /
         (target_ratio - 1.0);
}

}  // namespace charlie::core
