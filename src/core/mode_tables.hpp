// Precomputed per-mode tables of the hybrid NOR model.
//
// Event-driven simulation switches modes on every input transition, but the
// mode systems themselves depend only on the cell parameters: the four ODEs,
// their eigendecompositions, equilibria, steady states, and the spectral
// projector rows behind the scalar V_O expansion never change at runtime.
// NorModeTables computes all of it once per NorParams; channels share one
// immutable table through a shared_ptr, so a circuit with thousands of gate
// instances of the same cell pays the derivation exactly once and the
// per-event work reduces to a handful of multiply-adds.
#pragma once

#include <array>
#include <memory>

#include "core/modes.hpp"
#include "core/nor_params.hpp"
#include "ode/linear_ode2.hpp"

namespace charlie::core {

/// Precomputed quantities of one mode. The scalar expansion writes the
/// output voltage on a mode segment entered at state x_ref as
///
///   V_O(tau) = d + a1 e^{l1 tau} + a2 e^{l2 tau},
///   dev = x_ref - xp,  a1 = p1c dev.x + p1d dev.y,  a2 = dev.y - a1,
///
/// where (p1c, p1d) is the bottom row of the spectral projector
/// P1 = (A - l2 I)/(l1 - l2). Components with zero eigenvalue are constant
/// and fold into d (fold1/fold2).
struct ModeTable {
  ode::AffineOde2 ode;
  ode::Vec2 steady{};  // steady state; kS11 holds V_N, reported with vn = 0
  ode::Vec2 xp{};      // particular solution of the scalar expansion
  bool scalar_valid = false;  // false: defective/complex spectrum, use scan
  double d = 0.0;
  double l1 = 0.0;
  double l2 = 0.0;
  double p1c = 0.0;
  double p1d = 0.0;
  bool fold1 = false;
  bool fold2 = false;
  // Full spectral form of the state evolution,
  //   x(tau) = xp + e^{l1 tau} S1 (x_ref - xp) + e^{l2 tau} S2 (x_ref - xp),
  // valid when the spectrum is diagonalizable and either an equilibrium
  // exists or g = 0 (singular mode (1,1)). Two exp() calls replace the
  // generic matrix-exponential machinery on the event hot path.
  bool spectral_valid = false;
  ode::Mat2 s1{};
  ode::Mat2 s2{};
};

class NorModeTables {
 public:
  /// Validates `params` once (throws ConfigError) and derives all four mode
  /// tables plus the crossing-search horizon (60 slowest time constants).
  explicit NorModeTables(const NorParams& params);

  /// Shared immutable table for reuse across many channel instances.
  static std::shared_ptr<const NorModeTables> make(const NorParams& params);

  const NorParams& params() const { return params_; }
  double vth() const { return vth_; }
  double horizon() const { return horizon_; }
  const ModeTable& table(Mode m) const {
    return tables_[static_cast<std::size_t>(m)];
  }

 private:
  NorParams params_;
  double vth_ = 0.0;
  double horizon_ = 0.0;
  std::array<ModeTable, 4> tables_{};
};

}  // namespace charlie::core
