// Precomputed per-mode tables of the hybrid NOR model.
//
// NorModeTables is the 2-input NOR instance of the generalized
// core::GateModeTables (see gate_mode_tables.hpp): the four paper modes map
// onto the 2^2 input states of a kNorLike GateParams, and the derivation --
// eigendecompositions, equilibria, steady states, spectral projectors, the
// two-exponential scalar V_O expansion -- is shared. The subclass keeps the
// Mode-indexed accessors and the NorParams view so existing callers and
// tests are untouched, and converts to shared_ptr<const GateModeTables>
// implicitly for the generalized channels.
#pragma once

#include <memory>

#include "core/gate_mode_tables.hpp"
#include "core/modes.hpp"
#include "core/nor_params.hpp"

namespace charlie::core {

class NorModeTables : public GateModeTables {
 public:
  /// Validates `params` once (throws ConfigError) and derives all four mode
  /// tables plus the crossing-search horizon (60 slowest time constants).
  explicit NorModeTables(const NorParams& params)
      : GateModeTables(GateParams::from_nor(params)), params_(params) {}

  /// Shared immutable table for reuse across many channel instances.
  static std::shared_ptr<const NorModeTables> make(const NorParams& params) {
    return std::make_shared<const NorModeTables>(params);
  }

  const NorParams& params() const { return params_; }

  using GateModeTables::state_table;
  const ModeTable& table(Mode m) const {
    return state_table(gate_state_from_mode(m));
  }

 private:
  NorParams params_;
};

}  // namespace charlie::core
