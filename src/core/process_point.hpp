// A process point: where in the manufacturing-variation space a die landed.
//
// The hybrid model fits one nominal GateParams set per cell (paper Table I /
// the SPICE fitting pipeline). Process variation perturbs those fitted
// parameters analytically instead of re-running the characterization: the
// switch-level abstraction maps every variation axis onto the effective
// on-resistances of the devices, so a process point is a small named vector
// of scale factors and the whole derivation pipeline -- GateParams ->
// 2^N mode ODEs -> ModeTable expansions -- becomes a cheap function of it
// (GateParams::derive_for, GateModeTables::rederive_at, ModeTableGrid).
//
// Axes and their scale rule (first-order alpha-power-law argument):
//   * vdd_scale   -- supply scales to vdd' = vdd_scale * vdd. The logic
//     threshold follows (vth = vdd'/2, paper convention).
//   * vth_shift   -- device threshold shift in volts. The fitted on-
//     resistance of a conducting device varies inversely with its overdrive
//     (Vgs - Vt); with the device threshold pinned at the
//     kDeviceVtFraction * vdd convention used by the reference technology,
//       r' = r * overdrive_nominal / overdrive
//          = r * (1 - f) * vdd / (vdd_scale * vdd - f * vdd - vth_shift).
//   * drive_scale -- relative drive-strength (mobility * W/L) multiplier;
//     divides every on-resistance.
//
// Capacitances are treated as geometry-dominated and left at their fitted
// values; delta_min (the pure transport delay) scales with the RC product,
// i.e. with the same resistance factor.
#pragma once

#include <string>

namespace charlie::core {

/// Device-threshold convention of the reference technology: Vt = 0.3 * VDD.
/// resistance_scale() measures vth_shift against this baseline.
inline constexpr double kDeviceVtFraction = 0.3;

struct ProcessPoint {
  double vdd_scale = 1.0;    // supply multiplier (dimensionless)
  double vth_shift = 0.0;    // device threshold shift [volt]
  double drive_scale = 1.0;  // drive-strength multiplier (dimensionless)

  static ProcessPoint nominal() { return ProcessPoint{}; }

  bool is_nominal() const {
    return vdd_scale == 1.0 && vth_shift == 0.0 && drive_scale == 1.0;
  }

  /// Throws ConfigError unless the scale factors are positive and finite and
  /// the shift is finite.
  void validate() const;

  /// Common factor applied to every fitted on-resistance (and to delta_min)
  /// at this point, given the cell's nominal supply. Throws ConfigError when
  /// the overdrive closes (the devices would not conduct): that point is
  /// outside the model's validity region, not a slow corner.
  double resistance_scale(double vdd_nominal) const;

  /// resistance_scale without re-validating the point or the supply (the
  /// per-sample hot path, where both were checked when the batch was
  /// configured). Bit-identical to resistance_scale; still throws on a
  /// closed overdrive.
  double resistance_scale_unchecked(double vdd_nominal) const;

  /// Canonical textual identity (%.17g round-trip exact), used as the corner
  /// key of characterization caches alongside Technology::fingerprint().
  std::string fingerprint() const;
};

}  // namespace charlie::core
