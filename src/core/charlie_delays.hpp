// Characteristic Charlie delays (paper Section V, eqs (8)-(12)).
//
// The six values delta_fall(-inf, 0, +inf) and delta_rise(-inf, 0, +inf)
// characterize a gate's MIS behaviour and drive the parametrization. This
// module provides both
//   * exact values, from the closed-form trajectories + root finding, and
//   * the paper's printed analytic formulas, which Taylor-expand the
//     trajectory around a fixed expansion time w and solve the linearized
//     crossing (error O(t^2) per the paper's footnote 3).
//
// Notation notes (resolved against Section III and verified in tests):
//   * the literal 0.6 in the printed equations is V_th = VDD/2 (the
//     derivation used VDD = 1.2); we keep VDD symbolic;
//   * "D" in eq (12)'s z is C_N;
//   * eq (12)'s Delta appears as |Delta| in mode-local time.
#pragma once

#include "core/nor_params.hpp"

namespace charlie::core {

/// The six characteristic delays. Values include delta_min when produced by
/// `characteristic_delays_exact`; the raw eq (8)-(12) helpers exclude it
/// (they describe the pure RC trajectories).
struct CharacteristicDelays {
  double fall_minus_inf = 0.0;  // B switches first
  double fall_zero = 0.0;
  double fall_plus_inf = 0.0;   // A switches first
  double rise_minus_inf = 0.0;
  double rise_zero = 0.0;
  double rise_plus_inf = 0.0;
};

/// Exact characteristic delays of the hybrid model (including delta_min).
/// `vn0` is the (1,1) history value used for the rising cases.
CharacteristicDelays characteristic_delays_exact(const NorParams& params,
                                                 double vn0 = 0.0);

/// Spectral quantities of modes (1,0) (eqs (1)-(3)) and (0,0) (eqs (4)-(7)).
struct ModeSpectrum {
  double alpha = 0.0;
  double beta = 0.0;
  double gamma = 0.0;    // (lambda1 + lambda2)/2
  double lambda1 = 0.0;  // gamma + beta (slow)
  double lambda2 = 0.0;  // gamma - beta (fast)
};
ModeSpectrum spectrum_mode10(const NorParams& params);
ModeSpectrum spectrum_mode00(const NorParams& params);

/// eq (8): delta_fall(0) = ln 2 * C_O * (R3 || R4).
double paper_fall_zero(const NorParams& params);

/// eq (9): delta_fall(-inf) = ln 2 * C_O * R4.
double paper_fall_minus_inf(const NorParams& params);

/// Expansion-time choice for eqs (10)-(12). The paper prints fixed values
/// (w = 1e-10 or 2e-10 s) that presuppose the output crossing lands near w
/// -- true for the slower technology the derivation targeted, but far off
/// for Table-I-scale (tens of ps) gates, where a fixed 100 ps expansion
/// point extrapolates the trajectory's decayed tail and produces nonsense.
/// `w = 0` selects automatic mode: the Taylor crossing is iterated (which
/// is Newton's method on V_O(t) = V_th), converging quadratically to the
/// exact crossing; the paper's O(t^2) error claim is exactly the one-step
/// Newton error.
inline constexpr double kAutoExpansion = 0.0;

/// Result of the iterated (Newton) Taylor-crossing solve behind the
/// w = kAutoExpansion mode of eqs (10)-(12). `converged` is false when the
/// iteration budget was exhausted, or when the step tolerance was met only
/// because the iterate saturated at a clamp bound while the trajectory never
/// actually reaches `vth` (the residual check catches this); `t` is then the
/// last iterate and must not be trusted as a crossing time.
struct TaylorCrossingResult {
  double t = 0.0;
  bool converged = false;
  int iterations = 0;
};

/// Linearized-crossing solver shared by eqs (10)-(12): solves
///   offset + k1 e^{l1 t} + k2 e^{l2 t} = vth.
/// With w != kAutoExpansion, evaluates the paper's one-step printed form at
/// the fixed expansion point w (reported converged, 1 iteration). With
/// w == kAutoExpansion, iterates the expansion point (Newton) from `seed`,
/// clamping iterates to [t_floor, seed + 50/|l1|].
TaylorCrossingResult taylor_crossing_solve(double vth, double offset,
                                           double k1, double l1, double k2,
                                           double l2, double w, double seed,
                                           double t_floor);

/// eq (10): Taylor approximation of delta_fall(+inf).
double paper_fall_plus_inf(const NorParams& params,
                           double w = kAutoExpansion);

/// eq (11): Taylor approximation of delta_rise(Delta) for Delta >= 0, with
/// (1,1)-history value X = vn0.
double paper_rise_nonneg(const NorParams& params, double delta, double vn0,
                         double w = kAutoExpansion);

/// eq (12): Taylor approximation of delta_rise(Delta) for Delta < 0.
double paper_rise_neg(const NorParams& params, double delta, double vn0,
                      double w = kAutoExpansion);

/// The delta_min choice of Section IV: the pure delay that maps the measured
/// ratio fall(-inf)/fall(0) onto the model's achievable ratio
/// (R3+R4)/R3 ~= 2, i.e. delta_min = 2*fall(0) - fall(-inf) for ratio 2.
double delta_min_for_ratio(double measured_fall_minus_inf,
                           double measured_fall_zero, double target_ratio = 2.0);

}  // namespace charlie::core
