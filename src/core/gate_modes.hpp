// Operating modes of the generalized N-input hybrid gate model.
//
// An N-input gate has 2^N input states; each state turns the ideal switches
// of the series/parallel network on or off and yields one affine RC system
// V' = M V + g over V = (V_int, V_O). For N = 2 and kNorLike this
// reproduces the paper's four NOR modes exactly (Section III B-E);
// core::mode_ode delegates here so the two derivations cannot drift.
//
// A GateState packs the input levels as a bitmask: bit i (LSB = input 0) is
// the logic level of input i.
#pragma once

#include <string>

#include "core/gate_params.hpp"
#include "ode/linear_ode2.hpp"

namespace charlie::core {

using GateState = unsigned;

/// Number of input states of an n-input gate.
inline constexpr GateState gate_n_states(int n) { return 1u << n; }

/// Logic level of input `port` in `state`.
inline constexpr bool gate_state_input(GateState state, int port) {
  return ((state >> port) & 1u) != 0;
}

/// `state` with input `port` set to `value`.
inline constexpr GateState gate_state_with(GateState state, int port,
                                           bool value) {
  return value ? (state | (1u << port)) : (state & ~(1u << port));
}

/// "(1,0,1)"-style name, input 0 first (paper figure convention).
std::string gate_state_name(GateState state, int n_inputs);

/// Boolean output the gate settles to in `state`: NOR-like gates are high
/// iff every input is low, NAND-like gates are low iff every input is high.
bool gate_mode_output(GateTopology topology, GateState state, int n_inputs);

/// True when the internal stack node is isolated in `state` (every switch
/// adjacent to it is off), i.e. the mode ODE freezes V_int.
bool gate_mode_internal_frozen(const GateParams& params, GateState state);

/// The affine ODE V' = M V + g of `state` (see gate_params.hpp for the
/// series-chain conventions). Precondition: `params` is valid; validation
/// happens once at table construction, not per call.
ode::AffineOde2 gate_mode_ode(const GateParams& params, GateState state);

/// Steady state the mode converges to. When the internal node is frozen its
/// component stays at `v_int_hold`; every non-frozen steady state is exact
/// (supply-rail values, not a numeric matrix inversion).
ode::Vec2 gate_mode_steady_state(const GateParams& params, GateState state,
                                 double v_int_hold = 0.0);

}  // namespace charlie::core
