#include "core/delay_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace charlie::core {

NorDelayModel::NorDelayModel(const NorParams& params) : params_(params) {
  params_.validate();
}

double NorDelayModel::slowest_time_constant() const {
  double slowest = 0.0;
  for (Mode m : kAllModes) {
    const ode::Eigen2 eig = mode_ode(m, params_).eigen();
    for (double lambda : {eig.lambda1, eig.lambda2}) {
      if (lambda < 0.0) slowest = std::max(slowest, 1.0 / -lambda);
    }
  }
  CHARLIE_ASSERT(slowest > 0.0);
  return slowest;
}

double NorDelayModel::horizon_after(double t) const {
  return t + 60.0 * slowest_time_constant();
}

DelayResult NorDelayModel::falling_delay(double delta) const {
  const double ts = std::fabs(delta);
  // Earlier input rises at t=0: A for Delta > 0 (tA < tB), B for Delta < 0.
  const bool a_first = delta > 0.0;
  DelayResult result;
  result.intermediate = delta == 0.0 ? Mode::kS11
                        : a_first    ? Mode::kS10
                                     : Mode::kS01;

  NorTrajectory traj =
      NorTrajectory::from_steady_state(params_, 0.0, Mode::kS00);
  if (delta == 0.0) {
    traj.set_inputs(0.0, true, true);
  } else {
    traj.set_inputs(0.0, a_first, !a_first);
    traj.set_inputs(ts, true, true);
  }

  CrossingQuery q;
  q.threshold = params_.vth();
  q.t_start = 0.0;
  q.t_end = horizon_after(ts);
  q.direction = CrossDirection::kFalling;
  const auto t_cross = first_vo_crossing(traj, q);
  if (!t_cross.has_value()) {
    throw ConvergenceError(
        "nor delay model: falling output never crossed the threshold");
  }
  result.t_cross = *t_cross;
  result.delay = *t_cross + params_.delta_min;  // measured from earlier input
  return result;
}

DelayResult NorDelayModel::rising_delay(double delta, double vn0) const {
  const double ts = std::fabs(delta);
  // Earlier input falls at t=0: B for Delta < 0 (tB < tA), A for Delta > 0.
  const bool a_first = delta > 0.0;
  DelayResult result;
  result.intermediate = delta == 0.0 ? Mode::kS00
                        : a_first    ? Mode::kS01
                                     : Mode::kS10;

  NorTrajectory traj =
      NorTrajectory::from_steady_state(params_, 0.0, Mode::kS11, vn0);
  if (delta == 0.0) {
    traj.set_inputs(0.0, false, false);
  } else {
    traj.set_inputs(0.0, !a_first, a_first);
    traj.set_inputs(ts, false, false);
  }

  CrossingQuery q;
  q.threshold = params_.vth();
  // The output can only rise once mode (0,0) is active (both intermediate
  // modes keep O connected to GND), so the search starts at ts.
  q.t_start = ts;
  q.t_end = horizon_after(ts);
  q.direction = CrossDirection::kRising;
  const auto t_cross = first_vo_crossing(traj, q);
  if (!t_cross.has_value()) {
    throw ConvergenceError(
        "nor delay model: rising output never crossed the threshold");
  }
  result.t_cross = *t_cross;
  result.delay = *t_cross - ts + params_.delta_min;  // from later input
  return result;
}

namespace {

double single_mode_crossing(const NorParams& params, Mode start_mode,
                            double vn_hold, Mode target_mode,
                            CrossDirection direction, double horizon) {
  NorTrajectory traj =
      NorTrajectory::from_steady_state(params, 0.0, start_mode, vn_hold);
  traj.set_inputs(0.0, mode_input_a(target_mode), mode_input_b(target_mode));
  CrossingQuery q;
  q.threshold = params.vth();
  q.t_start = 0.0;
  q.t_end = horizon;
  q.direction = direction;
  const auto t = first_vo_crossing(traj, q);
  if (!t.has_value()) {
    throw ConvergenceError(
        "nor delay model: SIS output never crossed the threshold");
  }
  return *t;
}

}  // namespace

double NorDelayModel::falling_sis_b_first() const {
  // B rises alone: (0,0) -> (0,1); O drains through R4.
  return single_mode_crossing(params_, Mode::kS00, 0.0, Mode::kS01,
                              CrossDirection::kFalling, horizon_after(0.0)) +
         params_.delta_min;
}

double NorDelayModel::falling_sis_a_first() const {
  // A rises alone: (0,0) -> (1,0); O drains through R3, dragged by C_N.
  return single_mode_crossing(params_, Mode::kS00, 0.0, Mode::kS10,
                              CrossDirection::kFalling, horizon_after(0.0)) +
         params_.delta_min;
}

double NorDelayModel::rising_sis_b_first(double vn0) const {
  // B fell long ago: (1,1) -> (1,0) drains V_N to 0 regardless of vn0;
  // then A falls: (0,0) starts from (0, 0).
  (void)vn0;  // drained before the delay-defining switch
  NorTrajectory traj(params_, 0.0, Mode::kS00, ode::Vec2{0.0, 0.0});
  CrossingQuery q;
  q.threshold = params_.vth();
  q.t_start = 0.0;
  q.t_end = horizon_after(0.0);
  q.direction = CrossDirection::kRising;
  const auto t = first_vo_crossing(traj, q);
  if (!t.has_value()) {
    throw ConvergenceError(
        "nor delay model: SIS output never crossed the threshold");
  }
  return *t + params_.delta_min;
}

double NorDelayModel::rising_sis_a_first(double vn0) const {
  // A fell long ago: (1,1) -> (0,1) charges V_N to VDD regardless of vn0;
  // then B falls: (0,0) starts from (VDD, 0).
  (void)vn0;  // recharged before the delay-defining switch
  NorTrajectory traj(params_, 0.0, Mode::kS00, ode::Vec2{params_.vdd, 0.0});
  CrossingQuery q;
  q.threshold = params_.vth();
  q.t_start = 0.0;
  q.t_end = horizon_after(0.0);
  q.direction = CrossDirection::kRising;
  const auto t = first_vo_crossing(traj, q);
  if (!t.has_value()) {
    throw ConvergenceError(
        "nor delay model: SIS output never crossed the threshold");
  }
  return *t + params_.delta_min;
}

}  // namespace charlie::core
