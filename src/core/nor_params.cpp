#include "core/nor_params.hpp"

#include <sstream>

#include "util/error.hpp"
#include "util/units.hpp"

namespace charlie::core {

NorParams NorParams::paper_table1() {
  NorParams p;
  p.r1 = 37.088e3;
  p.r2 = 44.926e3;
  p.r3 = 45.150e3;
  p.r4 = 48.761e3;
  p.cn = 59.486e-18;
  p.co = 617.259e-18;
  p.vdd = 0.8;
  p.delta_min = 18e-12;
  return p;
}

void NorParams::validate() const {
  auto positive = [](double v, const char* name) {
    if (!(v > 0.0)) {
      throw ConfigError(std::string("NorParams: ") + name +
                        " must be positive");
    }
  };
  positive(r1, "r1");
  positive(r2, "r2");
  positive(r3, "r3");
  positive(r4, "r4");
  positive(cn, "cn");
  positive(co, "co");
  positive(vdd, "vdd");
  if (delta_min < 0.0) {
    throw ConfigError("NorParams: delta_min must be non-negative");
  }
}

std::string NorParams::to_string() const {
  std::ostringstream os;
  os << "NorParams{R1=" << units::format_resistance(r1)
     << ", R2=" << units::format_resistance(r2)
     << ", R3=" << units::format_resistance(r3)
     << ", R4=" << units::format_resistance(r4)
     << ", CN=" << units::format_capacitance(cn)
     << ", CO=" << units::format_capacitance(co)
     << ", VDD=" << units::format_voltage(vdd)
     << ", delta_min=" << units::format_time(delta_min) << "}";
  return os.str();
}

}  // namespace charlie::core
