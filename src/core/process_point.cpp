#include "core/process_point.hpp"

#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace charlie::core {

void ProcessPoint::validate() const {
  if (!(vdd_scale > 0.0) || !std::isfinite(vdd_scale)) {
    throw ConfigError("ProcessPoint: vdd_scale must be positive and finite");
  }
  if (!(drive_scale > 0.0) || !std::isfinite(drive_scale)) {
    throw ConfigError("ProcessPoint: drive_scale must be positive and finite");
  }
  if (!std::isfinite(vth_shift)) {
    throw ConfigError("ProcessPoint: vth_shift must be finite");
  }
}

double ProcessPoint::resistance_scale(double vdd_nominal) const {
  validate();
  if (!(vdd_nominal > 0.0)) {
    throw ConfigError("ProcessPoint: vdd_nominal must be positive");
  }
  return resistance_scale_unchecked(vdd_nominal);
}

double ProcessPoint::resistance_scale_unchecked(double vdd_nominal) const {
  // Same expression shape for both overdrives so the nominal point yields
  // exactly 1.0 (vdd_scale == 1 makes the products bit-identical).
  const double overdrive_nominal =
      vdd_nominal - kDeviceVtFraction * vdd_nominal;
  const double overdrive =
      vdd_scale * vdd_nominal - kDeviceVtFraction * vdd_nominal - vth_shift;
  if (!(overdrive > 0.0)) {
    throw ConfigError(
        "ProcessPoint: overdrive closed (vdd_scale/vth_shift push the "
        "devices out of conduction); point is outside the model's validity "
        "region");
  }
  return overdrive_nominal / (drive_scale * overdrive);
}

std::string ProcessPoint::fingerprint() const {
  char buf[128];
  std::snprintf(buf, sizeof buf, "vdd_scale=%.17g;vth_shift=%.17g;drive=%.17g",
                vdd_scale, vth_shift, drive_scale);
  return buf;
}

}  // namespace charlie::core
