#include "core/crossing.hpp"

#include <algorithm>
#include <cmath>

#include "fit/brent_root.hpp"
#include "util/error.hpp"

namespace charlie::core {
namespace {

double fastest_rate(const NorTrajectory& trajectory) {
  double fastest = 0.0;
  for (const auto& seg : trajectory.pieces().segments()) {
    const auto& eig = seg.ode.eigen();
    fastest = std::max({fastest, std::fabs(eig.lambda1),
                        std::fabs(eig.lambda2)});
  }
  return fastest;
}

}  // namespace

double crossing_scan_step(const NorTrajectory& trajectory, double window) {
  CHARLIE_ASSERT(window > 0.0);
  const double rate = fastest_rate(trajectory);
  double step = rate > 0.0 ? 0.125 / rate : window / 64.0;
  // Cap the evaluation count: a stiff V_N pole hardly bends V_O, and the
  // bracket is refined by Brent afterwards anyway.
  step = std::max(step, window / 8192.0);
  return std::min(step, window / 4.0);
}

std::optional<double> first_vo_crossing(const NorTrajectory& trajectory,
                                        const CrossingQuery& query) {
  CHARLIE_ASSERT_MSG(query.t_end > query.t_start,
                     "crossing query: empty window");
  const double step =
      crossing_scan_step(trajectory, query.t_end - query.t_start);
  auto f = [&](double t) { return trajectory.vo_at(t) - query.threshold; };

  const bool want_rising = query.direction != CrossDirection::kFalling;
  const bool want_falling = query.direction != CrossDirection::kRising;

  double a = query.t_start;
  double fa = f(a);
  while (a < query.t_end) {
    const double b = std::min(a + step, query.t_end);
    const double fb = f(b);
    if ((fa < 0.0 && fb >= 0.0 && want_rising) ||
        (fa > 0.0 && fb <= 0.0 && want_falling)) {
      if (fb == 0.0) return b;
      return fit::brent_root(f, a, b);
    }
    // Exactly-on-threshold start: move on until the sign is established.
    if (fa == 0.0 && fb != 0.0) {
      // Departing the threshold is not a crossing.
    }
    a = b;
    fa = fb;
  }
  return std::nullopt;
}

}  // namespace charlie::core
