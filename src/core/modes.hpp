// The four operating modes of the hybrid NOR model and their ODE systems
// (paper Section III B-E).
//
// State vector V = (V_N, V_O). For each input state (A,B), transistors are
// ideal switches and the resulting RC network gives V' = M V + g:
//
//   (1,1): both nMOS conduct; O drains through R3 || R4; N is isolated.
//   (1,0): T2 + T3 conduct; N discharges through R2 into O, O through R3.
//   (0,1): T1 + T4 conduct; N charges to VDD through R1, O drains via R4.
//   (0,0): T1 + T2 conduct; N and O charge toward VDD through R1 then R2.
#pragma once

#include <array>
#include <string>

#include "core/gate_modes.hpp"
#include "core/nor_params.hpp"
#include "ode/linear_ode2.hpp"

namespace charlie::core {

enum class Mode {
  kS00 = 0,  // (A,B) = (0,0)
  kS01 = 1,  // (A,B) = (0,1)
  kS10 = 2,  // (A,B) = (1,0)
  kS11 = 3,  // (A,B) = (1,1)
};

/// All modes, for iteration in tests and benches.
inline constexpr std::array<Mode, 4> kAllModes{Mode::kS00, Mode::kS01,
                                               Mode::kS10, Mode::kS11};

/// Mode for logic levels of inputs A and B.
Mode mode_from_inputs(bool a, bool b);

/// Input levels encoded by a mode.
bool mode_input_a(Mode m);
bool mode_input_b(Mode m);

/// "(1,0)"-style name used in paper figures.
std::string mode_name(Mode m);

/// Input state of the generalized gate tables for logic levels (a, b)
/// (bit 0 = input A, bit 1 = input B).
inline constexpr GateState gate_state_from_inputs(bool a, bool b) {
  return (a ? 1u : 0u) | (b ? 2u : 0u);
}

/// Input state encoding of a NOR2 Mode.
inline GateState gate_state_from_mode(Mode m) {
  return gate_state_from_inputs(mode_input_a(m), mode_input_b(m));
}

/// The affine ODE V' = M V + g for `mode` (paper Section III).
/// Precondition: `params` is valid (NorParams::validate). Validation happens
/// once at construction time -- NorModeTables or the channel constructors --
/// not per call, since this sits on the event-driven hot path.
ode::AffineOde2 mode_ode(Mode mode, const NorParams& params);

/// Steady state the mode converges to. For (1,1) the V_N component is
/// frozen at its initial value; `vn_hold` supplies that value.
ode::Vec2 mode_steady_state(Mode mode, const NorParams& params,
                            double vn_hold = 0.0);

/// Boolean NOR output for the input levels of `mode` (the logic value the
/// output eventually settles to).
bool mode_output(Mode m);

}  // namespace charlie::core
