// Closed-form matrix exponential exp(A t) for real 2x2 matrices.
//
// Uses Putzer's algorithm, which is uniform over all spectral cases:
//   exp(At) = r1(t) I + r2(t) (A - lambda1 I)
// with
//   r1(t) = e^{lambda1 t}
//   r2(t) = (e^{lambda2 t} - e^{lambda1 t}) / (lambda2 - lambda1)   (distinct)
//   r2(t) = t e^{lambda t}                                          (repeated)
// and the standard sine/cosine form for complex pairs.
#pragma once

#include "ode/eigen2.hpp"
#include "ode/mat2.hpp"

namespace charlie::ode {

/// exp(m * t).
Mat2 expm(const Mat2& m, double t);

/// exp(m * t) reusing a precomputed decomposition of `m` (hot path for
/// trajectory evaluation, where the same mode matrix is reused many times).
Mat2 expm(const Mat2& m, const Eigen2& eig, double t);

/// Integral of the exponential: Phi(t) = \int_0^t exp(m s) ds.
/// Needed for the variation-of-constants solution when `m` is singular
/// (mode (1,1) of the NOR model has a zero row, so -A^{-1} g does not exist).
Mat2 expm_integral(const Mat2& m, const Eigen2& eig, double t);

}  // namespace charlie::ode
