#include "ode/eigen2.hpp"

#include <cmath>

namespace charlie::ode {
namespace {

// Eigenvector of `m` for eigenvalue `lambda`, from the null space of
// (m - lambda I). Picks the numerically larger row.
Vec2 eigenvector_for(const Mat2& m, double lambda) {
  const double r1x = m.a - lambda;
  const double r1y = m.b;
  const double r2x = m.c;
  const double r2y = m.d - lambda;
  const double n1 = std::fabs(r1x) + std::fabs(r1y);
  const double n2 = std::fabs(r2x) + std::fabs(r2y);
  Vec2 v;
  if (n1 >= n2) {
    // Row 1 dominates: (r1x, r1y) . v = 0.
    v = (n1 == 0.0) ? Vec2{1.0, 0.0} : Vec2{-r1y, r1x};
  } else {
    v = Vec2{-r2y, r2x};
  }
  if (v.norm() == 0.0) {
    // (m - lambda I) vanished entirely: every vector is an eigenvector.
    v = {1.0, 0.0};
  }
  // Normalize for conditioning; orientation is irrelevant to callers.
  return v / v.norm();
}

}  // namespace

Eigen2 eigen_decompose(const Mat2& m) {
  Eigen2 e;
  const double tr = m.trace();
  const double det = m.det();
  const double disc = tr * tr - 4.0 * det;
  const double scale = m.norm_inf();
  const double tol = 1e-12 * std::max(scale * scale, 1e-300);

  if (disc > tol) {
    e.kind = EigenKind::kRealDistinct;
    const double root = std::sqrt(disc);
    // Stable quadratic roots: compute the larger-magnitude one first.
    const double q = -0.5 * (tr + std::copysign(root, tr));
    double l1;
    double l2;
    if (q != 0.0) {
      l1 = -q;        // = (tr + sign(tr)*root)/2
      l2 = det / -q;  // product of roots = det
    } else {
      l1 = 0.5 * (tr + root);
      l2 = 0.5 * (tr - root);
    }
    if (l1 > l2) std::swap(l1, l2);
    e.lambda1 = l1;
    e.lambda2 = l2;
    e.v1 = eigenvector_for(m, l1);
    e.v2 = eigenvector_for(m, l2);
    return e;
  }

  if (disc < -tol) {
    e.kind = EigenKind::kComplexPair;
    e.re = 0.5 * tr;
    e.im = 0.5 * std::sqrt(-disc);
    e.lambda1 = e.re;
    e.lambda2 = e.re;
    return e;
  }

  // Repeated eigenvalue lambda = tr/2.
  const double lambda = 0.5 * tr;
  e.lambda1 = lambda;
  e.lambda2 = lambda;
  const Mat2 shifted{m.a - lambda, m.b, m.c, m.d - lambda};
  if (shifted.norm_inf() <= 1e-12 * std::max(scale, 1e-300)) {
    e.kind = EigenKind::kRealRepeated;  // A = lambda I
    e.v1 = {1.0, 0.0};
    e.v2 = {0.0, 1.0};
  } else {
    e.kind = EigenKind::kRealDefective;
    e.v1 = eigenvector_for(m, lambda);
    e.v2 = e.v1;
  }
  return e;
}

bool is_hurwitz(const Eigen2& e) {
  if (e.kind == EigenKind::kComplexPair) return e.re < 0.0;
  return e.lambda1 < 0.0 && e.lambda2 < 0.0;
}

}  // namespace charlie::ode
