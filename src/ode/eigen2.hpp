// Analytic eigendecomposition of a real 2x2 matrix.
//
// The per-mode system matrices of the hybrid NOR model (paper Section III)
// are real with real, non-positive eigenvalues -- a property of passive RC
// networks -- but the decomposition below handles the general real case
// (distinct real, repeated, complex pair) so it can be reused and tested
// independently.
#pragma once

#include <complex>

#include "ode/mat2.hpp"

namespace charlie::ode {

enum class EigenKind {
  kRealDistinct,   // two distinct real eigenvalues
  kRealRepeated,   // repeated real eigenvalue, diagonalizable (A = lambda I)
  kRealDefective,  // repeated real eigenvalue, one eigenvector
  kComplexPair,    // complex-conjugate pair
};

struct Eigen2 {
  EigenKind kind = EigenKind::kRealDistinct;
  // For real kinds: lambda1 <= lambda2 are the eigenvalues and v1/v2 the
  // corresponding (unnormalized) eigenvectors. For kComplexPair: the pair is
  // re +/- i*im, and eigenvectors are not populated.
  double lambda1 = 0.0;
  double lambda2 = 0.0;
  Vec2 v1{};
  Vec2 v2{};
  double re = 0.0;
  double im = 0.0;

  bool is_real() const { return kind != EigenKind::kComplexPair; }
};

/// Decompose `m`. Discriminant comparisons use a tolerance scaled by the
/// matrix magnitude so nearly-repeated spectra are classified stably.
Eigen2 eigen_decompose(const Mat2& m);

/// Both eigenvalues (or the real part, for complex pairs) strictly negative:
/// the ODE x' = Ax is asymptotically stable.
bool is_hurwitz(const Eigen2& e);

}  // namespace charlie::ode
