// Two-component vector used for the (V_N, V_O) hybrid-model state.
#pragma once

#include <cmath>

namespace charlie::ode {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator-() const { return {-x, -y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }

  Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  Vec2& operator*=(double s) {
    x *= s;
    y *= s;
    return *this;
  }

  constexpr double dot(const Vec2& o) const { return x * o.x + y * o.y; }
  double norm() const { return std::hypot(x, y); }
  double norm_inf() const { return std::max(std::fabs(x), std::fabs(y)); }
};

constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

}  // namespace charlie::ode
