// Closed-form solution of the affine system  x'(t) = A x(t) + g.
//
// This is the workhorse of the hybrid NOR model: each input state
// (A,B) in {0,1}^2 yields one such system over x = (V_N, V_O)
// (paper Section III). The uniform variation-of-constants form
//
//   x(t) = exp(At) x0 + (int_0^t exp(As) ds) g
//
// is used because mode (1,1) has a singular A (V_N frozen), so the
// equilibrium form -A^{-1} g does not always exist.
#pragma once

#include "ode/eigen2.hpp"
#include "ode/expm.hpp"
#include "ode/mat2.hpp"
#include "ode/vec2.hpp"

namespace charlie::ode {

class AffineOde2 {
 public:
  AffineOde2() : AffineOde2(Mat2::zero(), Vec2{}) {}
  AffineOde2(const Mat2& a, const Vec2& g);

  /// Exact state at time `t` (t may be negative) starting from `x0` at t=0.
  Vec2 state_at(double t, const Vec2& x0) const;

  /// Right-hand side A x + g.
  Vec2 derivative(const Vec2& x) const { return a_ * x + g_; }

  /// True when A is nonsingular, i.e. a unique equilibrium exists.
  bool has_equilibrium() const { return !a_.is_singular(); }

  /// Equilibrium -A^{-1} g; requires has_equilibrium().
  Vec2 equilibrium() const;

  const Mat2& a() const { return a_; }
  const Vec2& g() const { return g_; }
  const Eigen2& eigen() const { return eig_; }

  /// Slowest decay rate max(Re lambda); 0 for the frozen V_N direction of
  /// mode (1,1). Useful for choosing search horizons in crossing solvers.
  double slowest_rate() const;

 private:
  Mat2 a_;
  Vec2 g_;
  Eigen2 eig_;
};

}  // namespace charlie::ode
