#include "ode/mat2.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace charlie::ode {

Mat2 Mat2::inverse() const {
  CHARLIE_ASSERT_MSG(!is_singular(), "Mat2::inverse: singular matrix");
  const double inv_det = 1.0 / det();
  return {d * inv_det, -b * inv_det, -c * inv_det, a * inv_det};
}

double Mat2::norm_inf() const {
  return std::max(std::fabs(a) + std::fabs(b), std::fabs(c) + std::fabs(d));
}

bool Mat2::is_singular(double rtol) const {
  const double scale = norm_inf();
  if (scale == 0.0) return true;
  return std::fabs(det()) <= rtol * scale * scale;
}

}  // namespace charlie::ode
