#include "ode/piecewise.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace charlie::ode {

PiecewiseTrajectory::PiecewiseTrajectory(double t0, const Vec2& x0,
                                         const AffineOde2& ode) {
  segments_.push_back({t0, x0, ode});
}

void PiecewiseTrajectory::switch_mode(double t, const AffineOde2& ode) {
  CHARLIE_ASSERT_MSG(t >= segments_.back().t_start,
                     "mode switches must be time-ordered");
  const Vec2 x = state_at(t);
  segments_.push_back({t, x, ode});
}

const PiecewiseTrajectory::Segment& PiecewiseTrajectory::segment_for(
    double t) const {
  CHARLIE_ASSERT_MSG(t >= t_begin() - 1e-18,
                     "state requested before trajectory start");
  // Last segment whose t_start <= t. upper_bound finds the first segment
  // strictly after t; step back one.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](double value, const Segment& s) { return value < s.t_start; });
  if (it != segments_.begin()) --it;
  return *it;
}

Vec2 PiecewiseTrajectory::state_at(double t) const {
  const Segment& s = segment_for(t);
  return s.ode.state_at(t - s.t_start, s.x_start);
}

Vec2 PiecewiseTrajectory::derivative_at(double t) const {
  const Segment& s = segment_for(t);
  return s.ode.derivative(s.ode.state_at(t - s.t_start, s.x_start));
}

}  // namespace charlie::ode
