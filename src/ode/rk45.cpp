#include "ode/rk45.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace charlie::ode {
namespace {

// Dormand-Prince 5(4) tableau.
constexpr double kC2 = 1.0 / 5.0;
constexpr double kC3 = 3.0 / 10.0;
constexpr double kC4 = 4.0 / 5.0;
constexpr double kC5 = 8.0 / 9.0;

constexpr double kA21 = 1.0 / 5.0;
constexpr double kA31 = 3.0 / 40.0, kA32 = 9.0 / 40.0;
constexpr double kA41 = 44.0 / 45.0, kA42 = -56.0 / 15.0, kA43 = 32.0 / 9.0;
constexpr double kA51 = 19372.0 / 6561.0, kA52 = -25360.0 / 2187.0,
                 kA53 = 64448.0 / 6561.0, kA54 = -212.0 / 729.0;
constexpr double kA61 = 9017.0 / 3168.0, kA62 = -355.0 / 33.0,
                 kA63 = 46732.0 / 5247.0, kA64 = 49.0 / 176.0,
                 kA65 = -5103.0 / 18656.0;
// 5th-order solution weights.
constexpr double kB1 = 35.0 / 384.0, kB3 = 500.0 / 1113.0,
                 kB4 = 125.0 / 192.0, kB5 = -2187.0 / 6784.0,
                 kB6 = 11.0 / 84.0;
// Embedded 4th-order weights.
constexpr double kE1 = 5179.0 / 57600.0, kE3 = 7571.0 / 16695.0,
                 kE4 = 393.0 / 640.0, kE5 = -92097.0 / 339200.0,
                 kE6 = 187.0 / 2100.0, kE7 = 1.0 / 40.0;

}  // namespace

Rk45Result integrate_rk45(const OdeRhs& f, std::span<const double> x0,
                          double t0, double t1, const Rk45Options& opts) {
  CHARLIE_ASSERT_MSG(t1 > t0, "rk45: t1 must exceed t0");
  const std::size_t n = x0.size();
  CHARLIE_ASSERT_MSG(n > 0, "rk45: empty state");

  const double span = t1 - t0;
  const double h_min = opts.h_min > 0.0 ? opts.h_min : span * 1e-14;
  const double h_max = opts.h_max > 0.0 ? opts.h_max : span;
  double h = opts.h_initial > 0.0 ? opts.h_initial : span / 100.0;
  h = std::min(h, h_max);

  std::vector<double> x(x0.begin(), x0.end());
  std::vector<double> k1(n), k2(n), k3(n), k4(n), k5(n), k6(n), k7(n);
  std::vector<double> xt(n), x5(n), err(n);

  Rk45Result result;
  if (opts.record_trajectory) {
    result.t.push_back(t0);
    result.x.push_back(x);
  }

  double t = t0;
  f(t, x, k1);  // FSAL: k1 of the next step reuses k7 of the previous one
  int steps = 0;
  while (t < t1) {
    if (++steps > opts.max_steps) {
      throw ConvergenceError("rk45: exceeded max_steps");
    }
    h = std::min(h, t1 - t);
    if (h < h_min) {
      throw ConvergenceError("rk45: step size underflow");
    }

    auto stage = [&](std::vector<double>& k, double c,
                     const auto&... weighted) {
      for (std::size_t i = 0; i < n; ++i) {
        double acc = x[i];
        ((acc += h * weighted.first * (*weighted.second)[i]), ...);
        xt[i] = acc;
      }
      f(t + c * h, xt, k);
    };
    stage(k2, kC2, std::pair{kA21, &k1});
    stage(k3, kC3, std::pair{kA31, &k1}, std::pair{kA32, &k2});
    stage(k4, kC4, std::pair{kA41, &k1}, std::pair{kA42, &k2},
          std::pair{kA43, &k3});
    stage(k5, kC5, std::pair{kA51, &k1}, std::pair{kA52, &k2},
          std::pair{kA53, &k3}, std::pair{kA54, &k4});
    stage(k6, 1.0, std::pair{kA61, &k1}, std::pair{kA62, &k2},
          std::pair{kA63, &k3}, std::pair{kA64, &k4}, std::pair{kA65, &k5});

    for (std::size_t i = 0; i < n; ++i) {
      x5[i] = x[i] + h * (kB1 * k1[i] + kB3 * k3[i] + kB4 * k4[i] +
                          kB5 * k5[i] + kB6 * k6[i]);
    }
    f(t + h, x5, k7);

    // Error estimate: 5th-order minus embedded 4th-order.
    double err_norm = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double x4 = x[i] + h * (kE1 * k1[i] + kE3 * k3[i] + kE4 * k4[i] +
                                    kE5 * k5[i] + kE6 * k6[i] + kE7 * k7[i]);
      const double scale =
          opts.atol + opts.rtol * std::max(std::fabs(x[i]), std::fabs(x5[i]));
      const double e = (x5[i] - x4) / scale;
      err_norm += e * e;
    }
    err_norm = std::sqrt(err_norm / static_cast<double>(n));

    if (err_norm <= 1.0) {
      t += h;
      x.swap(x5);
      k1.swap(k7);  // FSAL
      ++result.n_accepted;
      if (opts.record_trajectory) {
        result.t.push_back(t);
        result.x.push_back(x);
      }
    } else {
      ++result.n_rejected;
    }

    const double safety = 0.9;
    const double factor =
        err_norm > 0.0 ? safety * std::pow(err_norm, -0.2) : 5.0;
    h *= std::clamp(factor, 0.2, 5.0);
    h = std::min(h, h_max);
  }

  result.x_final = std::move(x);
  return result;
}

}  // namespace charlie::ode
