#include "ode/linear_ode2.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace charlie::ode {

AffineOde2::AffineOde2(const Mat2& a, const Vec2& g)
    : a_(a), g_(g), eig_(eigen_decompose(a)) {}

Vec2 AffineOde2::state_at(double t, const Vec2& x0) const {
  const Mat2 e = expm(a_, eig_, t);
  const Mat2 phi = expm_integral(a_, eig_, t);
  return e * x0 + phi * g_;
}

Vec2 AffineOde2::equilibrium() const {
  CHARLIE_ASSERT_MSG(has_equilibrium(),
                     "equilibrium() on a singular system matrix");
  return a_.inverse() * (-g_);
}

double AffineOde2::slowest_rate() const {
  if (eig_.kind == EigenKind::kComplexPair) return eig_.re;
  return std::max(eig_.lambda1, eig_.lambda2);
}

}  // namespace charlie::ode
