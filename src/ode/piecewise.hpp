// Piecewise-affine ("hybrid") trajectory: a sequence of affine ODE modes
// switched at given times, with the state kept continuous across switches.
//
// The hybrid NOR model drives this engine: every input threshold crossing
// appends a mode switch, and the output waveform is read back via state_at.
#pragma once

#include <vector>

#include "ode/linear_ode2.hpp"

namespace charlie::ode {

class PiecewiseTrajectory {
 public:
  /// Begin a trajectory at absolute time `t0` with state `x0` evolving
  /// under `ode`.
  PiecewiseTrajectory(double t0, const Vec2& x0, const AffineOde2& ode);

  /// Switch to a new mode at absolute time `t` (must be >= the previous
  /// switch time). The state at `t` is computed from the current segment and
  /// becomes the new segment's initial condition, guaranteeing continuity.
  void switch_mode(double t, const AffineOde2& ode);

  /// Exact state at absolute time `t` (t >= t_begin; extrapolates within the
  /// last segment for t beyond the final switch).
  Vec2 state_at(double t) const;

  /// Time derivative of the state at `t`.
  Vec2 derivative_at(double t) const;

  double t_begin() const { return segments_.front().t_start; }
  double t_last_switch() const { return segments_.back().t_start; }
  std::size_t n_segments() const { return segments_.size(); }

  struct Segment {
    double t_start;
    Vec2 x_start;
    AffineOde2 ode;
  };
  const std::vector<Segment>& segments() const { return segments_; }

 private:
  const Segment& segment_for(double t) const;

  std::vector<Segment> segments_;
};

}  // namespace charlie::ode
