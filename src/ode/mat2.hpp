// 2x2 real matrix used for the per-mode ODE system matrices.
#pragma once

#include "ode/vec2.hpp"

namespace charlie::ode {

struct Mat2 {
  // Row-major: [a b; c d].
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  double d = 0.0;

  constexpr Mat2() = default;
  constexpr Mat2(double a_, double b_, double c_, double d_)
      : a(a_), b(b_), c(c_), d(d_) {}

  static constexpr Mat2 identity() { return {1.0, 0.0, 0.0, 1.0}; }
  static constexpr Mat2 zero() { return {}; }

  constexpr double trace() const { return a + d; }
  constexpr double det() const { return a * d - b * c; }

  constexpr Vec2 operator*(const Vec2& v) const {
    return {a * v.x + b * v.y, c * v.x + d * v.y};
  }
  constexpr Mat2 operator*(const Mat2& m) const {
    return {a * m.a + b * m.c, a * m.b + b * m.d, c * m.a + d * m.c,
            c * m.b + d * m.d};
  }
  constexpr Mat2 operator+(const Mat2& m) const {
    return {a + m.a, b + m.b, c + m.c, d + m.d};
  }
  constexpr Mat2 operator-(const Mat2& m) const {
    return {a - m.a, b - m.b, c - m.c, d - m.d};
  }
  constexpr Mat2 operator*(double s) const {
    return {a * s, b * s, c * s, d * s};
  }

  /// Inverse; throws AssertionError when singular (|det| below `eps` times
  /// the matrix scale).
  Mat2 inverse() const;

  /// Infinity norm (max absolute row sum).
  double norm_inf() const;

  /// True when |det| is negligible relative to the matrix magnitude.
  bool is_singular(double rtol = 1e-12) const;
};

constexpr Mat2 operator*(double s, const Mat2& m) { return m * s; }

}  // namespace charlie::ode
