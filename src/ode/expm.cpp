#include "ode/expm.hpp"

#include <cmath>

#include "util/error.hpp"

namespace charlie::ode {
namespace {

// (e^{lambda t} - 1) / lambda, continuous at lambda = 0 (value t).
double phi1(double lambda, double t) {
  if (lambda == 0.0) return t;
  const double x = lambda * t;
  if (std::fabs(x) < 1e-4) {
    // Series to keep full precision for tiny exponents.
    return t * (1.0 + x / 2.0 + x * x / 6.0 + x * x * x / 24.0);
  }
  return std::expm1(x) / lambda;
}

// Divided difference (e^{l2 t} - e^{l1 t}) / (l2 - l1), stable form.
double exp_divided_difference(double l1, double l2, double t) {
  const double dl = l2 - l1;
  if (dl == 0.0) return t * std::exp(l1 * t);
  // Two regimes: for nearly equal eigenvalues the direct difference
  // cancels, so use e^{l1 t} * phi1(dl, t); for well-separated ones that
  // product can overflow (e^{l1 t} underflows to 0 while expm1(dl*t)
  // overflows to inf => NaN), while the direct difference is safe.
  if (std::fabs(dl * t) < 1.0) {
    return std::exp(l1 * t) * phi1(dl, t);
  }
  return (std::exp(l2 * t) - std::exp(l1 * t)) / dl;
}

}  // namespace

Mat2 expm(const Mat2& m, double t) { return expm(m, eigen_decompose(m), t); }

Mat2 expm(const Mat2& m, const Eigen2& eig, double t) {
  const Mat2 eye = Mat2::identity();
  switch (eig.kind) {
    case EigenKind::kRealDistinct: {
      const double r1 = std::exp(eig.lambda1 * t);
      const double r2 = exp_divided_difference(eig.lambda1, eig.lambda2, t);
      const Mat2 shifted = m - eig.lambda1 * eye;
      return r1 * eye + r2 * shifted;
    }
    case EigenKind::kRealRepeated: {
      // m = lambda I exactly (within tolerance).
      return std::exp(eig.lambda1 * t) * eye;
    }
    case EigenKind::kRealDefective: {
      const double r1 = std::exp(eig.lambda1 * t);
      const double r2 = t * r1;
      const Mat2 shifted = m - eig.lambda1 * eye;
      return r1 * eye + r2 * shifted;
    }
    case EigenKind::kComplexPair: {
      const double a = eig.re;
      const double b = eig.im;
      CHARLIE_ASSERT(b > 0.0);
      const double eat = std::exp(a * t);
      const Mat2 shifted = m - a * eye;
      return (eat * std::cos(b * t)) * eye +
             (eat * std::sin(b * t) / b) * shifted;
    }
  }
  CHARLIE_ASSERT_MSG(false, "unreachable eigen kind");
  return eye;
}

Mat2 expm_integral(const Mat2& m, const Eigen2& eig, double t) {
  const Mat2 eye = Mat2::identity();
  switch (eig.kind) {
    case EigenKind::kRealDistinct: {
      const double l1 = eig.lambda1;
      const double l2 = eig.lambda2;
      const double cap_r1 = phi1(l1, t);
      // R2(t) = (phi1(l2,t) - phi1(l1,t)) / (l2 - l1); separation is
      // guaranteed by the decomposition's discriminant tolerance.
      const double cap_r2 = (phi1(l2, t) - phi1(l1, t)) / (l2 - l1);
      const Mat2 shifted = m - l1 * eye;
      return cap_r1 * eye + cap_r2 * shifted;
    }
    case EigenKind::kRealRepeated: {
      return phi1(eig.lambda1, t) * eye;
    }
    case EigenKind::kRealDefective: {
      const double l = eig.lambda1;
      double cap_r2;
      if (l == 0.0) {
        cap_r2 = 0.5 * t * t;
      } else {
        // int_0^t s e^{ls} ds = (t e^{lt})/l - (e^{lt}-1)/l^2
        cap_r2 = (t * std::exp(l * t)) / l - phi1(l, t) / l;
      }
      const Mat2 shifted = m - l * eye;
      return phi1(l, t) * eye + cap_r2 * shifted;
    }
    case EigenKind::kComplexPair: {
      const double a = eig.re;
      const double b = eig.im;
      const double denom = a * a + b * b;
      CHARLIE_ASSERT(denom > 0.0);
      const double eat = std::exp(a * t);
      const double cosbt = std::cos(b * t);
      const double sinbt = std::sin(b * t);
      // int e^{as} cos(bs) = [e^{as}(a cos + b sin)]/(a^2+b^2)
      const double int_cos = (eat * (a * cosbt + b * sinbt) - a) / denom;
      // int e^{as} sin(bs)/b = [e^{as}(a sin - b cos) + b]/(b (a^2+b^2))
      const double int_sin_over_b =
          (eat * (a * sinbt - b * cosbt) + b) / (b * denom);
      const Mat2 shifted = m - a * eye;
      return int_cos * eye + int_sin_over_b * shifted;
    }
  }
  CHARLIE_ASSERT_MSG(false, "unreachable eigen kind");
  return eye;
}

}  // namespace charlie::ode
