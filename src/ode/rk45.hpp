// Dormand-Prince RK45 adaptive integrator.
//
// Serves as an independent numerical cross-check of the closed-form mode
// solutions (replacing the paper's MATLAB validation) and as a reference
// integrator in tests of the SPICE substrate.
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace charlie::ode {

/// Right-hand side: fills dxdt given (t, x). Sizes always match x0.
using OdeRhs =
    std::function<void(double t, std::span<const double> x, std::span<double> dxdt)>;

struct Rk45Options {
  double rtol = 1e-9;
  double atol = 1e-12;
  double h_initial = 0.0;  // 0 = auto from the interval
  double h_min = 0.0;      // 0 = (t1-t0) * 1e-14
  double h_max = 0.0;      // 0 = t1-t0
  int max_steps = 1'000'000;
  bool record_trajectory = false;  // keep all accepted (t, x) pairs
};

struct Rk45Result {
  std::vector<double> x_final;
  int n_accepted = 0;
  int n_rejected = 0;
  // Populated only when record_trajectory is set.
  std::vector<double> t;
  std::vector<std::vector<double>> x;
};

/// Integrate x' = f(t, x) from t0 to t1 (t1 > t0).
/// Throws ConvergenceError if the step count limit is exceeded or the step
/// size underflows.
Rk45Result integrate_rk45(const OdeRhs& f, std::span<const double> x0,
                          double t0, double t1, const Rk45Options& opts = {});

}  // namespace charlie::ode
