#include "obs/metrics.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"

namespace charlie::obs {

namespace {

// Shortest double representation that round-trips; matches the repo's CSV
// serialization convention.
std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void json_string_into(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  out += '"';
}

}  // namespace

void LogHistogram::add(double value) {
  ++count_;
  sum_ += value;
  if (count_ == 1) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  if (!(value > 0.0) || !std::isfinite(value)) {
    // Zero, negative, and non-finite samples have no log2 bin; they still
    // contribute to count/sum/min/max above.
    ++underflow_;
    return;
  }
  int exp2 = 0;
  std::frexp(value, &exp2);  // value = m * 2^exp2, m in [0.5, 1)
  const int e = exp2 - 1;    // floor(log2(value))
  if (e < kMinExp) {
    ++underflow_;
  } else if (e >= kMaxExp) {
    ++overflow_;
  } else {
    ++bins_[static_cast<std::size_t>(e - kMinExp)];
  }
}

void LogHistogram::merge(const LogHistogram& other) {
  for (std::size_t i = 0; i < kNumBins; ++i) bins_[i] += other.bins_[i];
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      if (other.min_ < min_) min_ = other.min_;
      if (other.max_ > max_) max_ = other.max_;
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LogHistogram::bin_lo(std::size_t i) {
  return std::ldexp(1.0, kMinExp + static_cast<int>(i));
}

bool LogHistogram::operator==(const LogHistogram& other) const {
  return bins_ == other.bins_ && underflow_ == other.underflow_ &&
         overflow_ == other.overflow_ && count_ == other.count_ &&
         sum_ == other.sum_ && min_ == other.min_ && max_ == other.max_;
}

void MetricsRegistry::add(std::string_view name, long long delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void MetricsRegistry::observe(std::string_view name, double value) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), LogHistogram{}).first;
  }
  it->second.add(value);
}

long long MetricsRegistry::counter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

const LogHistogram* MetricsRegistry::histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) add(name, value);
  for (const auto& [name, histogram] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, histogram);
    } else {
      it->second.merge(histogram);
    }
  }
}

bool MetricsRegistry::operator==(const MetricsRegistry& other) const {
  return counters_ == other.counters_ && histograms_ == other.histograms_;
}

void MetricsRegistry::write_json(std::ostream& os) const {
  os << to_json();
}

void MetricsRegistry::write_json(const std::string& path) const {
  std::ofstream os(path);
  if (!os) throw ConfigError("metrics registry: cannot write " + path);
  write_json(os);
}

std::string MetricsRegistry::to_json() const {
  std::string out;
  out += "{\n \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    json_string_into(out, name);
    out += ": ";
    out += std::to_string(value);
  }
  out += first ? "},\n" : "\n },\n";
  out += " \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += "\n  ";
    json_string_into(out, name);
    out += ": {\"count\": " + std::to_string(h.count());
    out += ", \"sum\": " + format_double(h.sum());
    out += ", \"mean\": " + format_double(h.mean());
    out += ", \"min\": " + format_double(h.min());
    out += ", \"max\": " + format_double(h.max());
    out += ", \"underflow\": " + std::to_string(h.underflow());
    out += ", \"overflow\": " + std::to_string(h.overflow());
    out += ", \"bins\": [";
    bool first_bin = true;
    for (std::size_t i = 0; i < LogHistogram::kNumBins; ++i) {
      if (h.bins()[i] == 0) continue;
      if (!first_bin) out += ", ";
      first_bin = false;
      out += "{\"lo\": " + format_double(LogHistogram::bin_lo(i));
      out += ", \"count\": " + std::to_string(h.bins()[i]) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n}\n" : "\n }\n}\n";
  return out;
}

void absorb_run_counters(MetricsRegistry& metrics,
                         const util::RunCounters& counters) {
  // Unconditional adds so the counters exist (at zero) even on clean runs:
  // a dashboard reading the JSON can tell "no fallbacks" from "not wired".
  metrics.add("run.newton_brent_fallbacks", counters.newton_brent_fallbacks);
  metrics.add("run.scan_fallbacks", counters.scan_fallbacks);
  metrics.add("run.nonfinite_guard_trips", counters.nonfinite_guard_trips);
  metrics.add("run.fit_fallbacks", counters.fit_fallbacks);
}

}  // namespace charlie::obs
