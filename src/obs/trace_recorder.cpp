#include "obs/trace_recorder.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>

#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace charlie::obs {

namespace {

// One thread's event ring. Owned by the global registry (never freed while
// the process lives -- pool workers persist across batches and may record
// again), written only by its owning thread.
struct ThreadBuffer {
  explicit ThreadBuffer(std::uint32_t thread_index) : tid(thread_index) {}
  std::uint32_t tid;
  std::vector<TraceEvent> ring;
  std::uint64_t written = 0;  // total events recorded since the last start()

  void push(const TraceEvent& event) {
    if (ring.empty()) return;  // recorder armed with zero capacity
    ring[static_cast<std::size_t>(written % ring.size())] = event;
    ++written;
  }
};

struct Registry {
  std::mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  std::size_t capacity = 1 << 16;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: threads may record at exit
  return *r;
}

thread_local ThreadBuffer* tls_buffer = nullptr;

ThreadBuffer& local_buffer() {
  if (tls_buffer == nullptr) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    r.buffers.push_back(std::make_unique<ThreadBuffer>(
        static_cast<std::uint32_t>(r.buffers.size())));
    tls_buffer = r.buffers.back().get();
    tls_buffer->ring.resize(r.capacity);
  }
  return *tls_buffer;
}

// ThreadPool chunk-claim adapter: the pool lives below obs in the layer
// graph, so it exposes a neutral observer hook and the recorder plugs this
// adapter in while armed. Chunk begin stamps a per-thread clock; chunk end
// records the complete span.
class PoolChunkTracer : public util::ThreadPool::ChunkObserver {
 public:
  void on_chunk_begin(std::size_t /*worker*/, std::size_t /*first*/,
                      std::size_t /*count*/) override {
    chunk_start_ = TraceRecorder::now_ns();
  }
  void on_chunk_end(std::size_t /*worker*/, std::size_t first,
                    std::size_t count) override {
    TraceEvent event;
    event.name = "pool.chunk";
    event.t_start_ns = chunk_start_;
    event.dur_ns = TraceRecorder::now_ns() - chunk_start_;
    event.k0 = "first";
    event.v0 = static_cast<long long>(first);
    event.k1 = "count";
    event.v1 = static_cast<long long>(count);
    TraceRecorder::record(event);
  }

 private:
  static thread_local long long chunk_start_;
};

thread_local long long PoolChunkTracer::chunk_start_ = 0;

PoolChunkTracer g_pool_tracer;

void json_escape_into(std::string& out, const char* text) {
  for (const char* p = text; *p != 0; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
}

}  // namespace

std::atomic<int> TraceRecorder::armed_{0};

void TraceRecorder::start(std::size_t capacity_per_thread) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.capacity = capacity_per_thread;
  for (auto& buffer : r.buffers) {
    buffer->ring.assign(capacity_per_thread, TraceEvent{});
    buffer->written = 0;
  }
  r.epoch = std::chrono::steady_clock::now();
  util::ThreadPool::set_chunk_observer(&g_pool_tracer);
  armed_.store(1, std::memory_order_release);
}

void TraceRecorder::stop() {
  armed_.store(0, std::memory_order_release);
  util::ThreadPool::set_chunk_observer(nullptr);
}

long long TraceRecorder::now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - registry().epoch)
      .count();
}

void TraceRecorder::record(const TraceEvent& event) {
  ThreadBuffer& buffer = local_buffer();
  TraceEvent stamped = event;
  stamped.tid = buffer.tid;
  buffer.push(stamped);
}

TraceRecorder::Snapshot TraceRecorder::collect() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  Snapshot snapshot;
  for (const auto& buffer : r.buffers) {
    const std::uint64_t capacity = buffer->ring.size();
    const std::uint64_t kept = std::min<std::uint64_t>(buffer->written,
                                                       capacity);
    snapshot.n_dropped += buffer->written - kept;
    // Oldest surviving event first (the ring overwrites forward).
    const std::uint64_t begin = buffer->written - kept;
    for (std::uint64_t i = 0; i < kept; ++i) {
      snapshot.events.push_back(
          buffer->ring[static_cast<std::size_t>((begin + i) % capacity)]);
    }
  }
  return snapshot;
}

void ScopedSpan::label(std::string_view text) {
  if (start_ns_ < 0) return;
  const std::size_t n = std::min(text.size(), sizeof(label_) - 1);
  std::memcpy(label_, text.data(), n);
  label_[n] = 0;
}

void ScopedSpan::finish() {
  TraceEvent event;
  event.name = name_;
  event.t_start_ns = start_ns_;
  event.dur_ns = TraceRecorder::now_ns() - start_ns_;
  event.phase = 'X';
  std::memcpy(event.label, label_, sizeof(label_));
  event.k0 = k0_;
  event.v0 = v0_;
  event.k1 = k1_;
  event.v1 = v1_;
  TraceRecorder::record(event);
}

void record_instant(const char* name, const char* key0, long long value0) {
  TraceEvent event;
  event.name = name;
  event.t_start_ns = TraceRecorder::now_ns();
  event.dur_ns = -1;
  event.phase = 'i';
  event.k0 = key0;
  event.v0 = value0;
  TraceRecorder::record(event);
}

void write_chrome_trace(const TraceRecorder::Snapshot& snapshot,
                        std::ostream& os) {
  // Chrome trace-event format (the JSON-object form): "X" complete events
  // carry ts+dur, "i" instants carry ts and a thread scope. Timestamps are
  // microseconds (double), per the format spec.
  std::string out;
  out.reserve(snapshot.events.size() * 96 + 256);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : snapshot.events) {
    if (event.name == nullptr) continue;
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    json_escape_into(out, event.name);
    out += "\",\"ph\":\"";
    out += event.phase;
    out += "\",\"pid\":0,\"tid\":";
    out += std::to_string(event.tid);
    out += ",\"ts\":";
    out += std::to_string(static_cast<double>(event.t_start_ns) * 1e-3);
    if (event.phase == 'X') {
      out += ",\"dur\":";
      out += std::to_string(
          static_cast<double>(event.dur_ns < 0 ? 0 : event.dur_ns) * 1e-3);
    } else {
      out += ",\"s\":\"t\"";
    }
    const bool has_args =
        event.k0 != nullptr || event.k1 != nullptr || event.label[0] != 0;
    if (has_args) {
      out += ",\"args\":{";
      bool first_arg = true;
      if (event.label[0] != 0) {
        out += "\"label\":\"";
        json_escape_into(out, event.label);
        out += "\"";
        first_arg = false;
      }
      if (event.k0 != nullptr) {
        if (!first_arg) out += ",";
        out += "\"";
        json_escape_into(out, event.k0);
        out += "\":";
        out += std::to_string(event.v0);
        first_arg = false;
      }
      if (event.k1 != nullptr) {
        if (!first_arg) out += ",";
        out += "\"";
        json_escape_into(out, event.k1);
        out += "\":";
        out += std::to_string(event.v1);
      }
      out += "}";
    }
    out += "}";
  }
  out += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{\"n_dropped\":";
  out += std::to_string(snapshot.n_dropped);
  out += "}}\n";
  os << out;
}

void write_chrome_trace(const TraceRecorder::Snapshot& snapshot,
                        const std::string& path) {
  std::ofstream os(path);
  if (!os) throw ConfigError("trace recorder: cannot write " + path);
  write_chrome_trace(snapshot, os);
}

}  // namespace charlie::obs
