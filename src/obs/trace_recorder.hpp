// Execution tracing: per-thread ring-buffered spans behind a one-branch
// disarmed check, exported as Chrome trace-event JSON.
//
// The engine's parallel execution modes (BatchRunner worker runs,
// ShardedCircuit wavefront tasks, ThreadPool chunk claims) have so far been
// observable only through aggregate counters; whether shard loads balance
// or the wavefront stalls between steps was asserted from the design, not
// seen. TraceRecorder makes runs inspectable: instrumented seams open a
// ScopedSpan (RAII), the span records (name, thread, start, duration, up to
// two integer args) into the recording thread's own fixed-capacity ring
// buffer -- no lock, no allocation, no shared cache line on the hot path --
// and write_chrome_trace() serializes a collected snapshot into the JSON
// the Perfetto / chrome://tracing viewers load directly.
//
// Disarmed cost: exactly the util::FaultInjector pattern -- one relaxed
// atomic load and a predicted-false branch per site (the
// BM_HybridCircuitTrace[Instrumented] ledger pair documents that this is in
// the host's measurement noise). Armed cost is one steady_clock read at
// span entry and a clock read plus a ~96-byte ring store at span exit.
//
// Threading contract: recording is safe from any thread at any time. The
// control surface -- start(), stop(), collect() -- must be called from a
// coordinating thread while no instrumented work is in flight (e.g. between
// BatchRunner::run() calls); the pool's batch-completion handshake gives
// the happens-before edge that makes the workers' buffered events visible
// to collect().
//
// Span names must be string literals (the recorder stores the pointer).
// Dynamic context -- a cell name on a characterization span -- goes through
// label(), which copies into a small fixed field; numeric context (shard,
// window, run index) through the two integer args.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace charlie::obs {

struct TraceEvent {
  const char* name = nullptr;   // static string (site name)
  long long t_start_ns = 0;     // steady-clock ns since recorder start
  long long dur_ns = -1;        // -1 for instant events
  std::uint32_t tid = 0;        // recorder-assigned thread index
  char phase = 'X';             // 'X' complete span, 'i' instant
  char label[23] = {0};         // optional dynamic label (cold paths)
  const char* k0 = nullptr;     // arg keys (static strings) and values
  long long v0 = 0;
  const char* k1 = nullptr;
  long long v1 = 0;
};

class TraceRecorder {
 public:
  /// Everything collected since start(): events in (thread, record) order
  /// plus the count of events the per-thread rings had to drop.
  struct Snapshot {
    std::vector<TraceEvent> events;
    std::uint64_t n_dropped = 0;
  };

  /// Arm recording. Clears previously buffered events and (re)sizes every
  /// thread's ring to `capacity_per_thread` events. Coordinating thread
  /// only, with no instrumented work in flight.
  static void start(std::size_t capacity_per_thread = 1 << 16);

  /// Disarm recording. Buffered events stay available to collect().
  static void stop();

  /// True iff recording is armed: the only check on disarmed hot paths.
  static bool armed() { return armed_.load(std::memory_order_relaxed) != 0; }

  /// Gather every thread's buffered events. Coordinating thread only, with
  /// no instrumented work in flight (see the header comment).
  static Snapshot collect();

  // --- recording internals (called through ScopedSpan / the macros) --------

  /// Append to the calling thread's ring (registers the thread first time).
  static void record(const TraceEvent& event);

  /// Monotonic timestamp relative to the recorder's start() epoch.
  static long long now_ns();

 private:
  static std::atomic<int> armed_;
};

/// RAII span: stamps the clock at construction when armed, records one
/// complete ('X') TraceEvent at scope exit. Does (almost) nothing disarmed.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) : name_(name) {
    label_[0] = 0;
    if (TraceRecorder::armed()) start_ns_ = TraceRecorder::now_ns();
  }
  ScopedSpan(const char* name, const char* key0, long long value0)
      : ScopedSpan(name) {
    k0_ = key0;
    v0_ = value0;
  }
  ScopedSpan(const char* name, const char* key0, long long value0,
             const char* key1, long long value1)
      : ScopedSpan(name, key0, value0) {
    k1_ = key1;
    v1_ = value1;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (start_ns_ >= 0) finish();
  }

  /// Update an arg value mid-span (e.g. events processed once known).
  void set_value0(long long value) { v0_ = value; }
  void set_value1(long long value) { v1_ = value; }

  /// Attach a short dynamic label (truncated to the fixed field); intended
  /// for cold paths such as per-cell characterization spans.
  void label(std::string_view text);

 private:
  void finish();

  long long start_ns_ = -1;  // -1: disarmed at construction, record nothing
  const char* name_;
  const char* k0_ = nullptr;
  const char* k1_ = nullptr;
  long long v0_ = 0;
  long long v1_ = 0;
  char label_[23];
};

/// Record an instant ('i') event; call sites should gate on armed() (the
/// CHARLIE_OBS_INSTANT macro does).
void record_instant(const char* name, const char* key0 = nullptr,
                    long long value0 = 0);

/// Serialize a snapshot as Chrome trace-event JSON ("traceEvents" array of
/// "X"/"i" events, timestamps in microseconds), loadable in Perfetto and
/// chrome://tracing. docs/observability.md documents the schema.
void write_chrome_trace(const TraceRecorder::Snapshot& snapshot,
                        std::ostream& os);
void write_chrome_trace(const TraceRecorder::Snapshot& snapshot,
                        const std::string& path);

}  // namespace charlie::obs

// Span macro: expands to a block-scoped RAII span with a unique name, so an
// instrumented seam is one line. The disarmed cost is the armed() check
// inside the ScopedSpan constructor.
#define CHARLIE_OBS_CONCAT2(a, b) a##b
#define CHARLIE_OBS_CONCAT(a, b) CHARLIE_OBS_CONCAT2(a, b)
#define CHARLIE_OBS_SPAN(...)                                       \
  ::charlie::obs::ScopedSpan CHARLIE_OBS_CONCAT(charlie_obs_span_,  \
                                                __LINE__)(__VA_ARGS__)

#define CHARLIE_OBS_INSTANT(...)                       \
  do {                                                 \
    if (::charlie::obs::TraceRecorder::armed()) {      \
      ::charlie::obs::record_instant(__VA_ARGS__);     \
    }                                                  \
  } while (false)
