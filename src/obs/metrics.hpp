// Named metrics: counters and log-binned histograms with deterministic
// aggregation and JSON export.
//
// MetricsRegistry is a *value* -- there is no global sink and no atomic in
// the data path. Producers fill a registry of their own (per run, per
// shard, per report) and consumers merge them in a fixed order, the same
// run-order-reduction discipline that makes BatchStats bit-identical at any
// thread count: counter adds are exact integer arithmetic, histogram bins
// are integer counts, and the floating-point sum/min/max moments are folded
// in merge order, so a reduction that walks runs 0..N-1 produces the same
// bytes no matter which worker produced which partial.
//
// Histograms are log-binned (one bin per power of two) because the engine's
// interesting distributions -- events per run, heap depths, response
// delays in seconds -- span many decades; a fixed-range linear histogram
// (sim::Histogram) needs the range up front, a log histogram does not.
//
// The util::RunCounters guard telemetry from PR 7 folds in through
// absorb_run_counters(), so per-run diagnostics and batch-level aggregates
// share one source of truth (the RunDiagnostics wire format is unchanged).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "util/diagnostics.hpp"

namespace charlie::obs {

/// Power-of-two-binned histogram: a finite value v > 0 lands in the bin
/// holding [2^e, 2^(e+1)) with e = floor(log2(v)). Values below the
/// smallest edge (or <= 0) count as underflow, values at or above the
/// largest as overflow; count/sum/min/max cover every added value.
class LogHistogram {
 public:
  /// Smallest / largest binned exponent: 2^-50 ~ 8.9e-16 (sub-femtosecond
  /// times) up to 2^34 ~ 1.7e10 (event counts).
  static constexpr int kMinExp = -50;
  static constexpr int kMaxExp = 34;
  static constexpr std::size_t kNumBins =
      static_cast<std::size_t>(kMaxExp - kMinExp);

  void add(double value);
  void merge(const LogHistogram& other);

  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  const std::array<std::uint64_t, kNumBins>& bins() const { return bins_; }

  /// Lower edge of bin i (= 2^(kMinExp + i)).
  static double bin_lo(std::size_t i);

  bool operator==(const LogHistogram& other) const;

 private:
  std::array<std::uint64_t, kNumBins> bins_{};
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Bump a named counter (creates it at zero first).
  void add(std::string_view name, long long delta = 1);

  /// Add one sample to a named histogram (creates it empty first).
  void observe(std::string_view name, double value);

  /// Current counter value; 0 for a name never bumped.
  long long counter(std::string_view name) const;

  /// Histogram by name; nullptr for a name never observed.
  const LogHistogram* histogram(std::string_view name) const;

  /// Fold `other` in (exact for counters and bin counts; moments fold in
  /// call order -- merge in a fixed order for bit-identical aggregates).
  void merge(const MetricsRegistry& other);

  bool empty() const { return counters_.empty() && histograms_.empty(); }

  // Deterministic (name-sorted) iteration for reports and serialization.
  const std::map<std::string, long long, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, LogHistogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// JSON export: {"counters": {name: value}, "histograms": {name:
  /// {count, sum, mean, min, max, underflow, overflow, bins: [{lo, count}]}}}
  /// with only non-empty bins listed. Schema in docs/observability.md.
  void write_json(std::ostream& os) const;
  void write_json(const std::string& path) const;
  std::string to_json() const;

  bool operator==(const MetricsRegistry& other) const;

 private:
  std::map<std::string, long long, std::less<>> counters_;
  std::map<std::string, LogHistogram, std::less<>> histograms_;
};

/// Fold one run's guard/fallback telemetry (the RunDiagnostics counters)
/// into `metrics` under the canonical names: run.newton_brent_fallbacks,
/// run.scan_fallbacks, run.nonfinite_guard_trips, run.fit_fallbacks.
void absorb_run_counters(MetricsRegistry& metrics,
                         const util::RunCounters& counters);

}  // namespace charlie::obs
