#include "sta/report.hpp"

#include <unordered_map>

#include "obs/trace_recorder.hpp"

namespace charlie::sta {

bool Report::meets_deadline() const {
  if (nominal.worst_slack < 0.0) return false;
  for (const auto& corner : corners) {
    if (corner.worst_slack < 0.0) return false;
  }
  return true;
}

Report analyze(const cell::NetlistDesc& desc,
               std::shared_ptr<const cell::CellLibrary> library,
               const StaOptions& options) {
  const TimingGraph graph(desc, std::move(library));

  Report report;
  report.endpoints = graph.endpoints();
  {
    CHARLIE_OBS_SPAN("sta.nominal");
    report.nominal = graph.analyze(graph.nominal_arcs(), options.deadline);
  }
  report.deadline = options.deadline > 0.0 ? options.deadline
                                           : report.nominal.critical_delay;
  {
    CHARLIE_OBS_SPAN("sta.paths", "n_paths",
                     static_cast<long long>(options.n_paths));
    report.paths =
        graph.critical_paths(graph.nominal_arcs(), options.n_paths);
  }

  if (options.n_corners > 0 && options.variation.enabled()) {
    CHARLIE_OBS_SPAN("sta.corners", "n_corners",
                     static_cast<long long>(options.n_corners));
    std::unordered_map<std::string, std::size_t> endpoint_index;
    for (std::size_t i = 0; i < graph.endpoints().size(); ++i) {
      endpoint_index.emplace(graph.endpoints()[i], i);
    }
    std::vector<std::uint64_t> counts(graph.endpoints().size(), 0);
    report.corners.reserve(options.n_corners);
    for (std::size_t c = 0; c < options.n_corners; ++c) {
      const core::ProcessPoint point =
          options.variation.sample(options.base_seed, c);
      const TimingResult r =
          graph.analyze(graph.arcs_at(point), options.deadline);
      report.corners.push_back(
          {point, r.critical_delay, r.worst_slack, r.critical_endpoint});
      ++counts[endpoint_index.at(r.critical_endpoint)];
    }
    report.corner_criticality =
        sim::rank_net_criticality(graph.endpoints(), counts);
  }

  if (options.variation.enabled()) {
    CHARLIE_OBS_SPAN("sta.ssta");
    report.ssta.valid = true;
    report.ssta.delay =
        graph.analyze_ssta(graph.canonical_arcs(options.variation));
    report.ssta.quantiles.reserve(options.quantiles.size());
    for (const double q : options.quantiles) {
      report.ssta.quantiles.emplace_back(q, report.ssta.delay.quantile(q));
    }
    if (options.deadline > 0.0) {
      report.ssta.yield = report.ssta.delay.prob_below(options.deadline);
    }
  }
  return report;
}

}  // namespace charlie::sta
