#include "sta/timing_graph.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <utility>

#include "util/error.hpp"

namespace charlie::sta {

namespace {

// Unateness of the supported gate kinds. "Same" feeds input rise into
// output rise (positive unate); "opposite" feeds input rise into output
// fall (negative unate). XOR is both (non-unate). Wires are emitted as
// kBuf, so they land in "same".
bool feeds_same(sim::GateKind kind) {
  switch (kind) {
    case sim::GateKind::kBuf:
    case sim::GateKind::kAnd2:
    case sim::GateKind::kOr2:
    case sim::GateKind::kXor2:
      return true;
    default:
      return false;
  }
}

bool feeds_opposite(sim::GateKind kind) {
  switch (kind) {
    case sim::GateKind::kInv:
    case sim::GateKind::kNand2:
    case sim::GateKind::kNor2:
    case sim::GateKind::kNand3:
    case sim::GateKind::kNor3:
    case sim::GateKind::kXor2:
      return true;
    default:
      return false;
  }
}

}  // namespace

TimingGraph::TimingGraph(const cell::NetlistDesc& desc,
                         std::shared_ptr<const cell::CellLibrary> library)
    : desc_(desc), library_(std::move(library)), builder_(library_) {
  const sim::NetlistTopology topo = builder_.analyze_topology(desc_);
  const std::size_t n_gates = desc_.instances.size();
  const std::size_t n_elems = n_gates + desc_.wires.size();

  auto add_net = [&](const std::string& name, int driver) {
    const int id = static_cast<int>(net_names_.size());
    net_names_.push_back(name);
    net_index_.emplace(name, id);
    driver_.push_back(driver);
    return id;
  };
  for (const auto& name : desc_.inputs) add_net(name, -1);
  for (std::size_t e = 0; e < n_elems; ++e) {
    add_net(sim::NetlistTopology::output_of(desc_, e), static_cast<int>(e));
  }

  elements_.resize(n_elems);
  for (std::size_t e = 0; e < n_elems; ++e) {
    Element& el = elements_[e];
    el.wire = sim::NetlistTopology::is_wire(desc_, e);
    el.kind = el.wire ? sim::GateKind::kBuf : topo.specs[e]->kind;
    el.output = net_id(sim::NetlistTopology::output_of(desc_, e));
    sim::NetlistTopology::for_each_input(
        desc_, e, [&](const std::string& in) {
          el.inputs.push_back(net_id(in));
        });
  }
  order_ = topo.order;

  endpoints_ = desc_.outputs;
  if (endpoints_.empty() && !desc_.instances.empty()) {
    endpoints_.push_back(desc_.instances.back().output);
  }
  if (endpoints_.empty() && !desc_.wires.empty()) {
    endpoints_.push_back(desc_.wires.back().output);
  }
  endpoint_ids_.reserve(endpoints_.size());
  for (const auto& name : endpoints_) endpoint_ids_.push_back(net_id(name));

  nominal_arcs_ = extract_arcs(desc_, *library_, builder_);
}

int TimingGraph::net_id(const std::string& name) const {
  const auto it = net_index_.find(name);
  CHARLIE_ASSERT_MSG(it != net_index_.end(), "timing graph: unknown net");
  return it->second;
}

ArcSet TimingGraph::arcs_at(const core::ProcessPoint& point) const {
  if (point.is_nominal()) return nominal_arcs_;
  const cell::CellLibrary corner = library_->at_corner(point);
  return extract_arcs(desc_, corner, builder_);
}

// Generic forward pass: latest/statistical arrival per (net, direction)
// over the topological order. `arc_of(e, pin, out_rising)` supplies the arc
// as a V; `join` merges competing contributions (max / statistical max).
// Every primary input arrives at V{} (time zero) in both directions.
template <typename V, typename ArcOf, typename Join>
void TimingGraph::propagate(ArcOf&& arc_of, Join&& join, std::vector<V>& rise,
                            std::vector<V>& fall) const {
  rise.assign(net_names_.size(), V{});
  fall.assign(net_names_.size(), V{});
  for (const int e : order_) {
    const Element& el = elements_[static_cast<std::size_t>(e)];
    const bool same = feeds_same(el.kind);
    const bool opposite = feeds_opposite(el.kind);
    for (const bool out_rising : {false, true}) {
      V best{};
      bool has = false;
      for (std::size_t p = 0; p < el.inputs.size(); ++p) {
        const auto in = static_cast<std::size_t>(el.inputs[p]);
        const V arc = arc_of(static_cast<std::size_t>(e), p, out_rising);
        const auto consider = [&](const V& arrival) {
          V cand = arrival + arc;
          best = has ? join(best, cand) : cand;
          has = true;
        };
        if (same) consider(out_rising ? rise[in] : fall[in]);
        if (opposite) consider(out_rising ? fall[in] : rise[in]);
      }
      CHARLIE_ASSERT_MSG(has, "timing graph: element with no timing arc");
      (out_rising ? rise : fall)[static_cast<std::size_t>(el.output)] = best;
    }
  }
}

TimingResult TimingGraph::analyze(const ArcSet& arcs, double deadline) const {
  CHARLIE_ASSERT_MSG(arcs.elements.size() == elements_.size(),
                     "timing graph: arc set does not match the netlist");
  std::vector<double> rise;
  std::vector<double> fall;
  propagate<double>(
      [&](std::size_t e, std::size_t p, bool out_rising) {
        return out_rising ? arcs.elements[e].rise[p] : arcs.elements[e].fall[p];
      },
      [](double a, double b) { return std::max(a, b); }, rise, fall);

  TimingResult res;
  bool first = true;
  for (std::size_t i = 0; i < endpoint_ids_.size(); ++i) {
    const auto id = static_cast<std::size_t>(endpoint_ids_[i]);
    for (const bool rising : {true, false}) {
      const double a = rising ? rise[id] : fall[id];
      if (first || a > res.critical_delay) {
        res.critical_delay = a;
        res.critical_endpoint = endpoints_[i];
        res.critical_rising = rising;
        first = false;
      }
    }
  }

  // Required times backward from the endpoints. A deadline of 0 measures
  // slack against the critical delay itself.
  const double target = deadline > 0.0 ? deadline : res.critical_delay;
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> req_rise(net_names_.size(), inf);
  std::vector<double> req_fall(net_names_.size(), inf);
  for (const int id : endpoint_ids_) {
    req_rise[static_cast<std::size_t>(id)] = target;
    req_fall[static_cast<std::size_t>(id)] = target;
  }
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    const Element& el = elements_[static_cast<std::size_t>(*it)];
    const bool same = feeds_same(el.kind);
    const bool opposite = feeds_opposite(el.kind);
    for (const bool out_rising : {false, true}) {
      const double r = out_rising
                           ? req_rise[static_cast<std::size_t>(el.output)]
                           : req_fall[static_cast<std::size_t>(el.output)];
      if (!std::isfinite(r)) continue;
      for (std::size_t p = 0; p < el.inputs.size(); ++p) {
        const auto in = static_cast<std::size_t>(el.inputs[p]);
        const double arc = out_rising
                               ? arcs.elements[static_cast<std::size_t>(*it)]
                                     .rise[p]
                               : arcs.elements[static_cast<std::size_t>(*it)]
                                     .fall[p];
        if (same) {
          double& t = out_rising ? req_rise[in] : req_fall[in];
          t = std::min(t, r - arc);
        }
        if (opposite) {
          double& t = out_rising ? req_fall[in] : req_rise[in];
          t = std::min(t, r - arc);
        }
      }
    }
  }

  res.nets.resize(net_names_.size());
  res.worst_slack = inf;
  for (std::size_t n = 0; n < net_names_.size(); ++n) {
    NetTiming& t = res.nets[n];
    t.net = net_names_[n];
    t.arrival_rise = rise[n];
    t.arrival_fall = fall[n];
    t.required_rise = req_rise[n];
    t.required_fall = req_fall[n];
    t.slack = std::min(req_rise[n] - rise[n], req_fall[n] - fall[n]);
    if (std::isfinite(t.slack)) res.worst_slack = std::min(res.worst_slack, t.slack);
  }
  if (!std::isfinite(res.worst_slack)) res.worst_slack = 0.0;
  return res;
}

std::vector<CriticalPath> TimingGraph::critical_paths(const ArcSet& arcs,
                                                      std::size_t k) const {
  CHARLIE_ASSERT_MSG(arcs.elements.size() == elements_.size(),
                     "timing graph: arc set does not match the netlist");
  std::vector<CriticalPath> out;
  if (k == 0 || endpoint_ids_.empty()) return out;

  std::vector<double> rise;
  std::vector<double> fall;
  propagate<double>(
      [&](std::size_t e, std::size_t p, bool out_rising) {
        return out_rising ? arcs.elements[e].rise[p] : arcs.elements[e].fall[p];
      },
      [](double a, double b) { return std::max(a, b); }, rise, fall);
  const auto arrival = [&](int net, bool rising) {
    return rising ? rise[static_cast<std::size_t>(net)]
                  : fall[static_cast<std::size_t>(net)];
  };

  // Best-first backward search from the endpoints. A state is a partial
  // path (endpoint back to `net` transitioning in `rising` direction) with
  // `suffix` = exact delay of that tail; its priority adds the head's
  // arrival, the exact maximum any completion can reach. Popping in
  // priority order therefore emits complete paths in exact decreasing
  // delay order (best-first search with a perfect heuristic). Each step
  // records the tail delay below it so the final times fall out of the
  // total.
  struct State {
    int net = -1;
    bool rising = true;
    double suffix = 0.0;
    double priority = 0.0;
    std::vector<PathStep> steps;  // endpoint first; t holds the tail delay
  };
  const auto cmp = [](const State& a, const State& b) {
    return a.priority < b.priority;
  };
  std::priority_queue<State, std::vector<State>, decltype(cmp)> queue(cmp);
  for (std::size_t i = 0; i < endpoint_ids_.size(); ++i) {
    for (const bool rising : {true, false}) {
      State s;
      s.net = endpoint_ids_[i];
      s.rising = rising;
      s.priority = arrival(s.net, rising);
      s.steps.push_back({endpoints_[i], rising, 0.0});
      queue.push(std::move(s));
    }
  }

  // Expansion guard: with exact arrivals the search only touches states on
  // top-k-competitive prefixes, but a dense graph of near-equal paths could
  // still blow up; cap the work and return what is proven so far.
  constexpr std::size_t kMaxExpansions = 200000;
  std::size_t expansions = 0;
  while (!queue.empty() && out.size() < k && expansions < kMaxExpansions) {
    ++expansions;
    State s = queue.top();
    queue.pop();
    const int d = driver_[static_cast<std::size_t>(s.net)];
    if (d < 0) {
      // Head is a primary input: the path is complete and its priority is
      // its exact delay.
      CriticalPath path;
      path.delay = s.suffix;
      path.steps.reserve(s.steps.size());
      for (auto it = s.steps.rbegin(); it != s.steps.rend(); ++it) {
        path.steps.push_back({it->net, it->rising, s.suffix - it->t});
      }
      out.push_back(std::move(path));
      continue;
    }
    const Element& el = elements_[static_cast<std::size_t>(d)];
    const bool same = feeds_same(el.kind);
    const bool opposite = feeds_opposite(el.kind);
    for (std::size_t p = 0; p < el.inputs.size(); ++p) {
      const int in = el.inputs[p];
      const double arc =
          s.rising ? arcs.elements[static_cast<std::size_t>(d)].rise[p]
                   : arcs.elements[static_cast<std::size_t>(d)].fall[p];
      const auto push = [&](bool in_rising) {
        State n = s;
        n.net = in;
        n.rising = in_rising;
        n.suffix += arc;
        n.priority = arrival(in, in_rising) + n.suffix;
        n.steps.push_back({net_names_[static_cast<std::size_t>(in)], in_rising,
                           n.suffix});
        queue.push(std::move(n));
      };
      if (same) push(s.rising);
      if (opposite) push(!s.rising);
    }
  }
  return out;
}

CanonicalArcSet TimingGraph::canonical_arcs(
    const sim::ProcessVariation& variation) const {
  variation.validate();
  const std::size_t n_elems = elements_.size();
  CanonicalArcSet set;
  set.rise.resize(n_elems);
  set.fall.resize(n_elems);
  for (std::size_t e = 0; e < n_elems; ++e) {
    const ElementArcs& arcs = nominal_arcs_.elements[e];
    set.rise[e].reserve(arcs.rise.size());
    set.fall[e].reserve(arcs.fall.size());
    for (const double d : arcs.rise) set.rise[e].push_back(Canonical::constant(d));
    for (const double d : arcs.fall) set.fall[e].push_back(Canonical::constant(d));
  }

  const std::array<double, kNAxes> sigmas = {
      variation.vdd_sigma, variation.vth_sigma, variation.drive_sigma};
  for (std::size_t axis = 0; axis < kNAxes; ++axis) {
    if (sigmas[axis] <= 0.0) continue;
    core::ProcessPoint plus = core::ProcessPoint::nominal();
    core::ProcessPoint minus = core::ProcessPoint::nominal();
    switch (axis) {
      case 0:
        plus.vdd_scale = 1.0 + sigmas[axis];
        minus.vdd_scale = 1.0 - sigmas[axis];
        break;
      case 1:
        plus.vth_shift = sigmas[axis];
        minus.vth_shift = -sigmas[axis];
        break;
      default:
        plus.drive_scale = 1.0 + sigmas[axis];
        minus.drive_scale = 1.0 - sigmas[axis];
        break;
    }
    const ArcSet up = arcs_at(plus);
    const ArcSet down = arcs_at(minus);
    for (std::size_t e = 0; e < n_elems; ++e) {
      for (std::size_t p = 0; p < set.rise[e].size(); ++p) {
        set.rise[e][p].sens[axis] =
            0.5 * (up.elements[e].rise[p] - down.elements[e].rise[p]);
      }
      for (std::size_t p = 0; p < set.fall[e].size(); ++p) {
        set.fall[e][p].sens[axis] =
            0.5 * (up.elements[e].fall[p] - down.elements[e].fall[p]);
      }
    }
  }
  return set;
}

Canonical TimingGraph::analyze_ssta(const CanonicalArcSet& arcs) const {
  CHARLIE_ASSERT_MSG(arcs.rise.size() == elements_.size() &&
                         arcs.fall.size() == elements_.size(),
                     "timing graph: canonical arc set does not match");
  std::vector<Canonical> rise;
  std::vector<Canonical> fall;
  propagate<Canonical>(
      [&](std::size_t e, std::size_t p, bool out_rising) {
        return out_rising ? arcs.rise[e][p] : arcs.fall[e][p];
      },
      [](const Canonical& a, const Canonical& b) {
        return statistical_max(a, b);
      },
      rise, fall);
  Canonical worst;
  bool first = true;
  for (const int id : endpoint_ids_) {
    for (const bool rising : {true, false}) {
      const Canonical& a = rising ? rise[static_cast<std::size_t>(id)]
                                  : fall[static_cast<std::size_t>(id)];
      worst = first ? a : statistical_max(worst, a);
      first = false;
    }
  }
  return worst;
}

}  // namespace charlie::sta
