// Canonical first-order delay form for statistical STA.
//
// Every delay and arrival time is represented as
//
//   D = mean + a_0 dX_0 + a_1 dX_1 + a_2 dX_2 + r dR
//
// where dX_i are the standardized (N(0,1)) global process axes -- supply
// scale, threshold shift, drive scale, the same axes core::ProcessPoint
// spans and sim::ProcessVariation samples -- and dR is an independent
// standard normal collecting whatever the shared axes cannot express (the
// variance the statistical max cannot attribute to them). Sums of canonical
// forms are exact (shared axes add coefficient-wise, independent residuals
// add in quadrature); the max of two jointly normal forms is matched to a
// canonical form by Clark's moment method. Propagating these through the
// timing graph yields the full circuit-delay distribution in one pass --
// the screening alternative to a Monte-Carlo batch.
#pragma once

#include <array>
#include <cstddef>

namespace charlie::sta {

/// Standard normal helpers (shared by the canonical algebra and the yield
/// queries; quantile is the inverse CDF, accurate to ~1e-15 after
/// refinement).
double normal_pdf(double z);
double normal_cdf(double z);
double normal_quantile(double q);  // q in (0, 1)

/// Number of correlated process axes: vdd_scale, vth_shift, drive_scale
/// (core::ProcessPoint order).
inline constexpr std::size_t kNAxes = 3;

struct Canonical {
  double mean = 0.0;
  std::array<double, kNAxes> sens{};  // delay shift per +1 sigma of axis [s]
  double sigma_rand = 0.0;            // independent residual sigma [s]

  static Canonical constant(double value) {
    Canonical c;
    c.mean = value;
    return c;
  }

  double variance() const;
  double sigma() const;

  /// Value at the q-th quantile of the implied normal: mean + z_q sigma.
  double quantile(double q) const;

  /// P(D <= x) under the implied normal; 1 or 0 for a deterministic form.
  double prob_below(double x) const;

  Canonical& operator+=(const Canonical& other);
};

Canonical operator+(Canonical a, const Canonical& b);

/// Clark's moment-matched statistical max: the exact mean, axis
/// covariances, and variance of max(A, B) for jointly normal A, B are
/// computed in closed form; the result is re-expressed canonically with
/// tightness-weighted sensitivities and a variance-matched residual. When
/// the two forms are (nearly) perfectly correlated the max degenerates to
/// whichever has the larger mean.
Canonical statistical_max(const Canonical& a, const Canonical& b);

}  // namespace charlie::sta
