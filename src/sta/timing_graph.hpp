// Levelized block-based static timing analysis over a validated netlist.
//
// TimingGraph reuses CircuitBuilder's validation and topological order
// (sim::NetlistTopology) -- the exact graph the event engine simulates --
// and propagates per-direction (rise/fall) worst-case times over it:
//
//   * deterministic mode: latest arrival per (net, direction) forward,
//     earliest required time backward from the endpoints against a
//     deadline, slack per net, and top-K critical-path enumeration
//     (best-first backward search scored by exact arrivals, so paths come
//     out in exact decreasing-delay order);
//   * corner mode: the same propagation with arcs re-extracted from a
//     cell::CellLibrary::at_corner derivation of the library (wires stay
//     nominal, matching sim::ProcessBinder);
//   * statistical mode: canonical first-order forms (sta::Canonical)
//     propagated with Clark's statistical max; arc sensitivities come from
//     central differences of the arc set at +-1 sigma per active
//     sim::ProcessVariation axis.
//
// Unateness: positive-unate elements (BUF, AND, OR, wires) feed input rise
// into output rise; negative-unate elements (INV, NAND, NOR) feed input
// rise into output fall; XOR is non-unate and feeds both. Arrival at every
// primary input is 0 in both directions (simultaneous-stimulus convention;
// BatchRunner's response delays are measured against the latest stimulus
// edge, which this bounds).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "core/process_point.hpp"
#include "sim/circuit_builder.hpp"
#include "sim/process_variation.hpp"
#include "sta/arc_delays.hpp"
#include "sta/canonical.hpp"

namespace charlie::sta {

/// One transition along a critical path.
struct PathStep {
  std::string net;
  bool rising = true;
  double t = 0.0;  // path time of this transition (input edge at 0) [s]
};

/// One register-to-register (here: input-to-endpoint) path, primary input
/// first.
struct CriticalPath {
  double delay = 0.0;  // total path delay [s]
  std::vector<PathStep> steps;
};

/// Per-net deterministic timing. Required times are +infinity for nets no
/// declared endpoint depends on (their slack is +infinity too).
struct NetTiming {
  std::string net;
  double arrival_rise = 0.0;
  double arrival_fall = 0.0;
  double required_rise = 0.0;
  double required_fall = 0.0;
  double slack = 0.0;  // min over both directions
};

struct TimingResult {
  double critical_delay = 0.0;  // latest endpoint arrival [s]
  std::string critical_endpoint;
  bool critical_rising = true;  // direction of the latest endpoint arrival
  double worst_slack = 0.0;     // min slack over constrained nets
  std::vector<NetTiming> nets;  // graph net order (inputs first, then topo)
};

/// Canonical (statistical) arc set: one Canonical per element arc, parallel
/// to ArcSet.
struct CanonicalArcSet {
  std::vector<std::vector<Canonical>> rise;  // [element][pin]
  std::vector<std::vector<Canonical>> fall;
};

class TimingGraph {
 public:
  /// Validates `desc` against `library` (same checks and ConfigError
  /// diagnostics as CircuitBuilder::build) and extracts the nominal arc
  /// set. Endpoints are the declared `output(...)` nets, falling back to
  /// the last instance's output (BatchRunner's observation convention).
  TimingGraph(const cell::NetlistDesc& desc,
              std::shared_ptr<const cell::CellLibrary> library);

  const std::vector<std::string>& nets() const { return net_names_; }
  const std::vector<std::string>& endpoints() const { return endpoints_; }
  const ArcSet& nominal_arcs() const { return nominal_arcs_; }

  /// Arc set at a process corner: gates re-derived analytically
  /// (at_corner), wires nominal.
  ArcSet arcs_at(const core::ProcessPoint& point) const;

  /// Deterministic arrival/required/slack pass. `deadline` <= 0 measures
  /// slack against the critical delay itself (worst slack exactly 0).
  TimingResult analyze(const ArcSet& arcs, double deadline) const;

  /// Top-k input-to-endpoint paths in exact decreasing delay order
  /// (best-first backward search; arrivals are an exact admissible bound,
  /// so no path is emitted out of order). Fewer than k paths are returned
  /// only when the circuit has fewer distinct paths (or the expansion
  /// guard trips on a pathologically dense graph).
  std::vector<CriticalPath> critical_paths(const ArcSet& arcs,
                                           std::size_t k) const;

  /// Canonical arc set under `variation`: mean from the nominal arcs,
  /// per-axis sensitivities by central differences at +-1 sigma (six
  /// at_corner derivations, only active axes pay), zero residual (the
  /// process model is fully correlated across a die).
  CanonicalArcSet canonical_arcs(const sim::ProcessVariation& variation) const;

  /// One-pass SSTA: canonical arrivals with statistical max, reduced over
  /// every endpoint in both directions. The result's quantiles/prob_below
  /// answer timing-yield queries without a Monte-Carlo batch.
  Canonical analyze_ssta(const CanonicalArcSet& arcs) const;

 private:
  struct Element {
    sim::GateKind kind = sim::GateKind::kBuf;
    bool wire = false;
    std::vector<int> inputs;  // net ids, pin order
    int output = -1;          // net id
  };

  int net_id(const std::string& name) const;

  /// Generic forward (net, direction) propagation over the topo order;
  /// V is double (deterministic max) or Canonical (statistical max).
  /// Instantiated in timing_graph.cpp only.
  template <typename V, typename ArcOf, typename Join>
  void propagate(ArcOf&& arc_of, Join&& join, std::vector<V>& rise,
                 std::vector<V>& fall) const;

  cell::NetlistDesc desc_;
  std::shared_ptr<const cell::CellLibrary> library_;
  sim::CircuitBuilder builder_;  // wire-table memoization across corners
  std::vector<std::string> net_names_;          // inputs first, element order
  std::unordered_map<std::string, int> net_index_;
  std::vector<int> driver_;                     // net id -> element or -1
  std::vector<Element> elements_;               // unified element indexing
  std::vector<int> order_;                      // element topo order
  std::vector<std::string> endpoints_;
  std::vector<int> endpoint_ids_;
  ArcSet nominal_arcs_;
};

}  // namespace charlie::sta
