#include "sta/arc_delays.hpp"

#include <unordered_map>

namespace charlie::sta {

ArcSet extract_arcs(const cell::NetlistDesc& desc,
                    const cell::CellLibrary& library,
                    const sim::CircuitBuilder& wire_builder) {
  const std::size_t n_gates = desc.instances.size();
  ArcSet arcs;
  arcs.elements.resize(n_gates + desc.wires.size());

  // One arc_table() evaluation per distinct cell spec: the envelope solves
  // a handful of crossing problems per cell, and a netlist instantiates
  // each cell many times.
  std::unordered_map<const cell::CellSpec*, cell::CellArcTable> cache;
  for (std::size_t i = 0; i < n_gates; ++i) {
    const cell::CellSpec& spec = library.spec(desc.instances[i].cell);
    auto it = cache.find(&spec);
    if (it == cache.end()) {
      it = cache.emplace(&spec, spec.arc_table()).first;
    }
    arcs.elements[i].rise = it->second.output_rise;
    arcs.elements[i].fall = it->second.output_fall;
  }
  for (std::size_t w = 0; w < desc.wires.size(); ++w) {
    const auto tables = wire_builder.wire_tables(desc.wires[w]);
    arcs.elements[n_gates + w].rise = {tables->step_delay(/*rising=*/true)};
    arcs.elements[n_gates + w].fall = {tables->step_delay(/*rising=*/false)};
  }
  return arcs;
}

}  // namespace charlie::sta
