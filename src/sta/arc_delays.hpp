// Static per-arc delay extraction: the bridge from the fitted hybrid model
// to the timing graph.
//
// The event engine answers "when does this output cross V_th" per stimulus;
// static timing analysis wants one number per (input pin, output direction)
// arc that bounds every answer the engine can produce. Those numbers come
// straight from the characterized model, no simulation:
//
//   * hybrid MIS gates: the conservative characteristic envelope
//     core::gate_arc_envelope on the cell's shared mode tables -- per pin,
//     the max of the single-input-switching delay (worst-case internal
//     hold) and the all-inputs-simultaneous delay -- plus the pure delay
//     delta_min (cell::CellSpec::arc_table);
//   * SIS cells: the characterized inertial rise/fall delay on every pin;
//   * wires: the collapsed Pade model's settled-line step-response crossing
//     plus the drive-shape correction (wire::WireModeTables::step_delay).
//
// The conservatism argument (why these bound the event engine's delays over
// every switching context) is spelled out in docs/sta.md.
#pragma once

#include <vector>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "sim/circuit_builder.hpp"

namespace charlie::sta {

/// Static pin-to-pin arcs of one netlist element (gate or wire): entry i
/// bounds the delay from input i's transition to the output crossing in the
/// named direction.
struct ElementArcs {
  std::vector<double> rise;  // arc input i -> output rising [s]
  std::vector<double> fall;  // arc input i -> output falling [s]
};

/// Arc delays of every element of a netlist, unified element indexing
/// (gates first in netlist order, wires after; sim::NetlistTopology).
struct ArcSet {
  std::vector<ElementArcs> elements;
};

/// Extract the static arc set of `desc` at `library`'s process point. Gate
/// arcs evaluate once per distinct cell spec (instances share); wire arcs
/// read the collapsed tables through `wire_builder` (memoized per geometry,
/// and process-independent: wires stay nominal at every corner, matching
/// sim::ProcessBinder). `library` may be a corner library (at_corner);
/// `wire_builder` may be bound to a different (e.g. nominal) library.
/// Throws ConfigError for instances of cells the library does not have.
ArcSet extract_arcs(const cell::NetlistDesc& desc,
                    const cell::CellLibrary& library,
                    const sim::CircuitBuilder& wire_builder);

}  // namespace charlie::sta
