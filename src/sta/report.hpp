// One-call STA report: the screening front door.
//
// analyze() wraps the TimingGraph passes into the report a designer (or
// tools/sta_report, or a test) consumes: nominal arrival/slack and the
// top-K critical paths, per-sampled-corner critical delays with an
// endpoint-criticality tally, and the canonical SSTA delay distribution
// with quantiles and timing yield. Corner c uses exactly the process point
// sim::ProcessVariation::sample(base_seed, c) -- the same sample Monte-
// Carlo run c of a BatchRunner with that base_seed draws -- so STA-vs-sim
// comparisons line up run for run.
//
// The intended workflow (docs/sta.md, docs/statistical_timing.md): screen
// a design with analyze() first -- milliseconds, conservative -- and spend
// the Monte-Carlo batch budget only on designs whose STA yield is
// marginal.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "core/process_point.hpp"
#include "sim/net_criticality.hpp"
#include "sim/process_variation.hpp"
#include "sta/canonical.hpp"
#include "sta/timing_graph.hpp"

namespace charlie::sta {

struct StaOptions {
  // Timing deadline [s]; 0 = unconstrained (slack is measured against the
  // nominal critical delay, and no yield is reported).
  double deadline = 0.0;
  std::size_t n_paths = 5;    // critical paths to enumerate
  // Sampled process corners for corner STA; corner c = variation.sample(
  // base_seed, c), matching BatchRunner run c under the same base_seed.
  std::size_t n_corners = 0;
  std::uint64_t base_seed = 1;
  sim::ProcessVariation variation;  // axes for corners and SSTA
  std::vector<double> quantiles = {0.5, 0.95, 0.99};
};

/// One sampled corner's deterministic STA summary.
struct CornerSummary {
  core::ProcessPoint point;
  double critical_delay = 0.0;
  double worst_slack = 0.0;
  std::string critical_endpoint;
};

/// Canonical SSTA summary; valid only when variation is enabled.
struct SstaSummary {
  bool valid = false;
  Canonical delay;  // statistical max over all endpoints
  std::vector<std::pair<double, double>> quantiles;  // (q, delay)
  double yield = 0.0;  // P(delay <= deadline); 0 when no deadline
};

struct Report {
  double deadline = 0.0;  // effective deadline slack was measured against
  std::vector<std::string> endpoints;  // analyzed endpoint nets
  TimingResult nominal;
  std::vector<CriticalPath> paths;
  std::vector<CornerSummary> corners;
  // Endpoint criticality across the sampled corners (shared presentation
  // with BatchResult::criticality_ranking).
  std::vector<sim::NetCriticality> corner_criticality;
  SstaSummary ssta;

  /// Non-negative worst slack at nominal and at every sampled corner.
  bool meets_deadline() const;
};

/// Full STA pass over `desc` at `library`'s process point. Throws
/// ConfigError for the same netlist/library problems CircuitBuilder::build
/// rejects.
Report analyze(const cell::NetlistDesc& desc,
               std::shared_ptr<const cell::CellLibrary> library,
               const StaOptions& options);

}  // namespace charlie::sta
