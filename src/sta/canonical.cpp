#include "sta/canonical.hpp"

#include <cmath>

#include "util/error.hpp"

namespace charlie::sta {

namespace {
constexpr double kSqrt2Pi = 2.5066282746310002;
}  // namespace

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / kSqrt2Pi;
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double normal_quantile(double q) {
  CHARLIE_ASSERT_MSG(q > 0.0 && q < 1.0,
                     "normal_quantile: q outside (0, 1)");
  // Acklam's rational approximation (|rel err| < 1.2e-9), polished by one
  // Halley step against the exact CDF.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00, 2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;
  double x = 0.0;
  if (q < kLow) {
    const double u = std::sqrt(-2.0 * std::log(q));
    x = (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  } else if (q <= 1.0 - kLow) {
    const double u = q - 0.5;
    const double r = u * u;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        u /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double u = std::sqrt(-2.0 * std::log(1.0 - q));
    x = -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u +
          c[5]) /
        ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1.0);
  }
  const double e = normal_cdf(x) - q;
  const double u = e * kSqrt2Pi * std::exp(0.5 * x * x);
  return x - u / (1.0 + 0.5 * x * u);
}

double Canonical::variance() const {
  double v = sigma_rand * sigma_rand;
  for (const double s : sens) v += s * s;
  return v;
}

double Canonical::sigma() const { return std::sqrt(variance()); }

double Canonical::quantile(double q) const {
  return mean + normal_quantile(q) * sigma();
}

double Canonical::prob_below(double x) const {
  const double s = sigma();
  if (s <= 0.0) return x >= mean ? 1.0 : 0.0;
  return normal_cdf((x - mean) / s);
}

Canonical& Canonical::operator+=(const Canonical& other) {
  mean += other.mean;
  for (std::size_t i = 0; i < kNAxes; ++i) sens[i] += other.sens[i];
  sigma_rand = std::hypot(sigma_rand, other.sigma_rand);
  return *this;
}

Canonical operator+(Canonical a, const Canonical& b) {
  a += b;
  return a;
}

Canonical statistical_max(const Canonical& a, const Canonical& b) {
  const double va = a.variance();
  const double vb = b.variance();
  // Covariance through the shared axes only; the residuals are independent.
  double cov = 0.0;
  for (std::size_t i = 0; i < kNAxes; ++i) cov += a.sens[i] * b.sens[i];
  const double theta2 = va + vb - 2.0 * cov;
  // (Nearly) perfectly correlated -- A - B is deterministic at this scale,
  // so the max is whichever form sits higher. The threshold is relative to
  // the spread itself, so purely deterministic inputs land here too.
  if (theta2 <= 1e-24 * (va + vb) || theta2 <= 0.0) {
    return a.mean >= b.mean ? a : b;
  }
  const double theta = std::sqrt(theta2);
  const double alpha = (a.mean - b.mean) / theta;
  const double phi = normal_pdf(alpha);
  const double big_phi = normal_cdf(alpha);

  Canonical out;
  out.mean = a.mean * big_phi + b.mean * (1.0 - big_phi) + theta * phi;
  for (std::size_t i = 0; i < kNAxes; ++i) {
    out.sens[i] = a.sens[i] * big_phi + b.sens[i] * (1.0 - big_phi);
  }
  // Variance by the exact second moment of the max, residual matched so the
  // canonical form reproduces it.
  const double second = (a.mean * a.mean + va) * big_phi +
                        (b.mean * b.mean + vb) * (1.0 - big_phi) +
                        (a.mean + b.mean) * theta * phi;
  double var = second - out.mean * out.mean;
  for (const double s : out.sens) var -= s * s;
  out.sigma_rand = var > 0.0 ? std::sqrt(var) : 0.0;
  return out;
}

}  // namespace charlie::sta
