// Log-space parameter transform for positivity-constrained fitting.
//
// Resistances and capacitances must stay strictly positive during
// optimization; fitting log(p) instead of p enforces this without explicit
// constraints and equalizes the scale between ~1e4-ohm resistors and
// ~1e-16-farad capacitors.
#pragma once

#include <vector>

namespace charlie::fit {

/// Element-wise natural log; every entry must be > 0.
std::vector<double> to_log_space(const std::vector<double>& params);

/// Element-wise exp (inverse of to_log_space).
std::vector<double> from_log_space(const std::vector<double>& log_params);

}  // namespace charlie::fit
