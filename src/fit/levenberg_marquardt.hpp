// Small dense Levenberg-Marquardt least-squares solver with a numeric
// (forward-difference) Jacobian.
//
// Used for the characteristic-delay parametrization as a refinement stage
// after Nelder-Mead, and independently tested on standard curve-fit
// problems.
#pragma once

#include <functional>
#include <vector>

namespace charlie::fit {

/// Residual function: given parameters, returns the residual vector r(p)
/// whose squared norm is minimized.
using ResidualFn =
    std::function<std::vector<double>(const std::vector<double>&)>;

struct LmOptions {
  int max_iterations = 200;
  double f_tol = 1e-14;        // stop on relative cost decrease below this
  double g_tol = 1e-12;        // stop on gradient infinity norm below this
  double initial_lambda = 1e-3;
  double jacobian_step = 1e-7; // relative forward-difference step
};

struct LmResult {
  std::vector<double> x;
  double cost = 0.0;  // 0.5 * ||r||^2
  int iterations = 0;
  bool converged = false;
};

/// Minimize 0.5*||r(p)||^2 starting from `x0`.
LmResult levenberg_marquardt(const ResidualFn& residuals,
                             const std::vector<double>& x0,
                             const LmOptions& opts = {});

}  // namespace charlie::fit
