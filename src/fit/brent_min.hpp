// 1-D minimization (Brent's parabolic-interpolation method).
//
// Plays the role of MATLAB's fminbnd, which the paper used to validate its
// characteristic-delay equations; we use it for the delta_min line search in
// the parametrization fit.
#pragma once

#include <functional>

namespace charlie::fit {

struct MinimizeOptions {
  double xtol = 1e-10;
  int max_iterations = 200;
};

struct MinimizeResult {
  double x = 0.0;
  double f = 0.0;
  int iterations = 0;
};

/// Minimize `f` over [a, b]. Unimodality is assumed; for multimodal
/// functions the result is a local minimum.
MinimizeResult brent_minimize(const std::function<double(double)>& f,
                              double a, double b,
                              const MinimizeOptions& opts = {});

}  // namespace charlie::fit
