#include "fit/brent_root.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace charlie::fit {

double brent_root(const ScalarFn& f, double a, double b,
                  const RootOptions& opts) {
  double fa = f(a);
  double fb = f(b);
  CHARLIE_ASSERT_MSG(fa * fb <= 0.0, "brent_root: no sign change in bracket");
  if (fa == 0.0) return a;
  if (fb == 0.0) return b;

  double c = a;
  double fc = fa;
  double d = b - a;
  double e = d;

  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    if (std::fabs(fc) < std::fabs(fb)) {
      a = b;
      b = c;
      c = a;
      fa = fb;
      fb = fc;
      fc = fa;
    }
    const double tol =
        2.0 * opts.rtol * std::fabs(b) + 0.5 * opts.xtol;
    const double m = 0.5 * (c - b);
    if (std::fabs(m) <= tol || fb == 0.0) {
      return b;
    }
    if (std::fabs(e) < tol || std::fabs(fa) <= std::fabs(fb)) {
      d = m;  // bisection
      e = m;
    } else {
      double p;
      double q;
      const double s = fb / fa;
      if (a == c) {
        // Secant step.
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {
        // Inverse quadratic interpolation.
        const double q1 = fa / fc;
        const double r = fb / fc;
        p = s * (2.0 * m * q1 * (q1 - r) - (b - a) * (r - 1.0));
        q = (q1 - 1.0) * (r - 1.0) * (s - 1.0);
      }
      if (p > 0.0) {
        q = -q;
      } else {
        p = -p;
      }
      if (2.0 * p < std::min(3.0 * m * q - std::fabs(tol * q),
                             std::fabs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;  // fall back to bisection
        e = m;
      }
    }
    a = b;
    fa = fb;
    b += (std::fabs(d) > tol) ? d : std::copysign(tol, m);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      e = b - a;
      d = e;
    }
  }
  throw charlie::ConvergenceError("brent_root: max iterations exceeded");
}

std::optional<std::pair<double, double>> expand_bracket_right(
    const ScalarFn& f, double a, double b, double limit, double growth) {
  CHARLIE_ASSERT(b > a);
  CHARLIE_ASSERT(growth > 1.0);
  double fa = f(a);
  double fb = f(b);
  while (fa * fb > 0.0) {
    if (b >= limit) return std::nullopt;
    const double width = (b - a) * growth;
    a = b;
    fa = fb;
    b = std::min(a + width, limit);
    fb = f(b);
  }
  return std::make_pair(a, b);
}

std::optional<double> first_root_after(const ScalarFn& f, double t0,
                                       double step, double limit,
                                       const RootOptions& opts) {
  CHARLIE_ASSERT(step > 0.0);
  CHARLIE_ASSERT(limit > t0);
  double a = t0;
  double fa = f(a);
  if (fa == 0.0) return a;
  while (a < limit) {
    const double b = std::min(a + step, limit);
    const double fb = f(b);
    if (fa * fb <= 0.0) {
      return brent_root(f, a, b, opts);
    }
    a = b;
    fa = fb;
  }
  return std::nullopt;
}

}  // namespace charlie::fit
