// Scalar root finding (Brent's method) and bracket expansion.
//
// Used by the core library to locate output threshold crossings
// V_O(t) = VDD/2 on the closed-form mode trajectories.
#pragma once

#include <functional>
#include <optional>

namespace charlie::fit {

using ScalarFn = std::function<double(double)>;

struct RootOptions {
  double xtol = 1e-18;   // absolute tolerance on the root location
  double rtol = 1e-14;   // relative tolerance on the root location
  int max_iterations = 200;
};

/// Root of `f` in [a, b]; requires sign change f(a)*f(b) <= 0.
/// Throws ConvergenceError when iterations are exhausted and AssertionError
/// when the bracket is invalid.
double brent_root(const ScalarFn& f, double a, double b,
                  const RootOptions& opts = {});

/// Expand [a, b] geometrically to the right until f changes sign or `limit`
/// is reached. Returns the bracketing interval, or nullopt if no sign change
/// was found below the limit.
std::optional<std::pair<double, double>> expand_bracket_right(
    const ScalarFn& f, double a, double b, double limit,
    double growth = 2.0);

/// Convenience: find the first root of `f` at or after `t0`, scanning with
/// initial step `step` up to `limit`. Returns nullopt when f never changes
/// sign in [t0, limit]. The scan subdivides each step so a double crossing
/// inside one step is still detected as long as step <= the feature width.
std::optional<double> first_root_after(const ScalarFn& f, double t0,
                                       double step, double limit,
                                       const RootOptions& opts = {});

}  // namespace charlie::fit
