// Nelder-Mead downhill simplex for small, noisy, derivative-free problems.
//
// The model parametrization (paper Section V) minimizes squared mismatch of
// the characteristic Charlie delays over (R1..R4, C_N, C_O); the objective
// involves root finding, so gradients are awkward -- a simplex method is a
// natural fit.
#pragma once

#include <functional>
#include <vector>

namespace charlie::fit {

using VectorFn = std::function<double(const std::vector<double>&)>;

struct NelderMeadOptions {
  double f_tol = 1e-12;          // stop when the simplex f-spread drops below
  double x_tol = 1e-12;          // ... or the simplex size does
  int max_evaluations = 20'000;
  double initial_step = 0.1;     // relative perturbation building the simplex
};

struct NelderMeadResult {
  std::vector<double> x;
  double f = 0.0;
  int evaluations = 0;
  bool converged = false;
};

/// Minimize `f` starting from `x0`.
NelderMeadResult nelder_mead(const VectorFn& f, const std::vector<double>& x0,
                             const NelderMeadOptions& opts = {});

}  // namespace charlie::fit
