#include "fit/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace charlie::fit {

NelderMeadResult nelder_mead(const VectorFn& f, const std::vector<double>& x0,
                             const NelderMeadOptions& opts) {
  const std::size_t n = x0.size();
  CHARLIE_ASSERT_MSG(n >= 1, "nelder_mead: empty start point");

  // Standard coefficients.
  constexpr double kAlpha = 1.0;   // reflection
  constexpr double kGamma = 2.0;   // expansion
  constexpr double kRho = 0.5;     // contraction
  constexpr double kSigma = 0.5;   // shrink

  int evals = 0;
  auto eval = [&](const std::vector<double>& x) {
    ++evals;
    return f(x);
  };

  // Build the initial simplex by perturbing each coordinate.
  std::vector<std::vector<double>> simplex(n + 1, x0);
  std::vector<double> fvals(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    double& coord = simplex[i + 1][i];
    const double step = (coord != 0.0) ? opts.initial_step * std::fabs(coord)
                                       : opts.initial_step;
    coord += step;
  }
  for (std::size_t i = 0; i <= n; ++i) fvals[i] = eval(simplex[i]);

  std::vector<std::size_t> order(n + 1);
  NelderMeadResult result;
  while (evals < opts.max_evaluations) {
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fvals[a] < fvals[b]; });
    const std::size_t best = order.front();
    const std::size_t worst = order.back();
    const std::size_t second_worst = order[n - 1];

    // Convergence: f-spread and simplex diameter.
    const double f_spread = std::fabs(fvals[worst] - fvals[best]);
    double diameter = 0.0;
    for (std::size_t i = 0; i <= n; ++i) {
      double dist = 0.0;
      for (std::size_t j = 0; j < n; ++j) {
        const double d = simplex[i][j] - simplex[best][j];
        dist += d * d;
      }
      diameter = std::max(diameter, std::sqrt(dist));
    }
    if (f_spread < opts.f_tol || diameter < opts.x_tol) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst point.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coeff) {
      std::vector<double> x(n);
      for (std::size_t j = 0; j < n; ++j) {
        x[j] = centroid[j] + coeff * (centroid[j] - simplex[worst][j]);
      }
      return x;
    };

    const std::vector<double> reflected = blend(kAlpha);
    const double f_reflected = eval(reflected);
    if (f_reflected < fvals[order[0]]) {
      const std::vector<double> expanded = blend(kAlpha * kGamma);
      const double f_expanded = eval(expanded);
      if (f_expanded < f_reflected) {
        simplex[worst] = expanded;
        fvals[worst] = f_expanded;
      } else {
        simplex[worst] = reflected;
        fvals[worst] = f_reflected;
      }
      continue;
    }
    if (f_reflected < fvals[second_worst]) {
      simplex[worst] = reflected;
      fvals[worst] = f_reflected;
      continue;
    }
    // Contraction (outside if the reflected point improved on the worst).
    const bool outside = f_reflected < fvals[worst];
    const std::vector<double> contracted =
        blend(outside ? kAlpha * kRho : -kRho);
    const double f_contracted = eval(contracted);
    if (f_contracted < std::min(f_reflected, fvals[worst])) {
      simplex[worst] = contracted;
      fvals[worst] = f_contracted;
      continue;
    }
    // Shrink toward the best vertex.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (std::size_t j = 0; j < n; ++j) {
        simplex[i][j] =
            simplex[best][j] + kSigma * (simplex[i][j] - simplex[best][j]);
      }
      fvals[i] = eval(simplex[i]);
    }
  }

  const std::size_t best = static_cast<std::size_t>(std::distance(
      fvals.begin(), std::min_element(fvals.begin(), fvals.end())));
  result.x = simplex[best];
  result.f = fvals[best];
  result.evaluations = evals;
  return result;
}

}  // namespace charlie::fit
