#include "fit/levenberg_marquardt.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace charlie::fit {
namespace {

double cost_of(const std::vector<double>& r) {
  double acc = 0.0;
  for (double v : r) acc += v * v;
  return 0.5 * acc;
}

// Solve (JtJ + lambda*diag(JtJ)) dx = Jtr via Cholesky-free Gaussian
// elimination with partial pivoting (systems here are tiny: <= ~8 params).
std::vector<double> solve_damped(std::vector<std::vector<double>> a,
                                 std::vector<double> b) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    const double diag = a[col][col];
    if (diag == 0.0) {
      throw charlie::ConvergenceError("LM: singular normal equations");
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / diag;
      if (factor == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double acc = b[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= a[i][k] * x[k];
    x[i] = acc / a[i][i];
  }
  return x;
}

}  // namespace

LmResult levenberg_marquardt(const ResidualFn& residuals,
                             const std::vector<double>& x0,
                             const LmOptions& opts) {
  const std::size_t n = x0.size();
  CHARLIE_ASSERT_MSG(n >= 1, "LM: empty start point");

  std::vector<double> x = x0;
  std::vector<double> r = residuals(x);
  const std::size_t m = r.size();
  CHARLIE_ASSERT_MSG(m >= 1, "LM: empty residual vector");
  double cost = cost_of(r);
  double lambda = opts.initial_lambda;

  LmResult result;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    result.iterations = iter + 1;

    // Forward-difference Jacobian J[i][j] = dr_i/dx_j. The step scale
    // floors at O(1) so parameters sitting at zero still perturb enough to
    // register against O(1) residuals.
    std::vector<std::vector<double>> jac(m, std::vector<double>(n, 0.0));
    for (std::size_t j = 0; j < n; ++j) {
      const double step = opts.jacobian_step * (std::fabs(x[j]) + 1.0);
      std::vector<double> xp = x;
      xp[j] += step;
      const std::vector<double> rp = residuals(xp);
      CHARLIE_ASSERT(rp.size() == m);
      for (std::size_t i = 0; i < m; ++i) {
        jac[i][j] = (rp[i] - r[i]) / step;
      }
    }

    // Normal equations JtJ and gradient Jtr.
    std::vector<std::vector<double>> jtj(n, std::vector<double>(n, 0.0));
    std::vector<double> jtr(n, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        jtr[j] += jac[i][j] * r[i];
        for (std::size_t k = j; k < n; ++k) {
          jtj[j][k] += jac[i][j] * jac[i][k];
        }
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = 0; k < j; ++k) jtj[j][k] = jtj[k][j];
    }

    double g_norm = 0.0;
    for (double g : jtr) g_norm = std::max(g_norm, std::fabs(g));
    if (g_norm < opts.g_tol) {
      result.converged = true;
      break;
    }

    // Try damped steps, growing lambda until the cost decreases.
    bool accepted = false;
    for (int attempt = 0; attempt < 30; ++attempt) {
      std::vector<std::vector<double>> damped = jtj;
      for (std::size_t j = 0; j < n; ++j) {
        damped[j][j] += lambda * std::max(jtj[j][j], 1e-30);
      }
      std::vector<double> neg_g(n);
      for (std::size_t j = 0; j < n; ++j) neg_g[j] = -jtr[j];
      std::vector<double> dx;
      try {
        dx = solve_damped(std::move(damped), std::move(neg_g));
      } catch (const charlie::ConvergenceError&) {
        lambda *= 10.0;
        continue;
      }
      std::vector<double> x_new = x;
      for (std::size_t j = 0; j < n; ++j) x_new[j] += dx[j];
      const std::vector<double> r_new = residuals(x_new);
      const double cost_new = cost_of(r_new);
      if (cost_new < cost) {
        const double rel_drop = (cost - cost_new) / std::max(cost, 1e-300);
        x = std::move(x_new);
        r = r_new;
        cost = cost_new;
        lambda = std::max(lambda * 0.3, 1e-12);
        accepted = true;
        if (rel_drop < opts.f_tol) {
          result.converged = true;
        }
        break;
      }
      lambda *= 10.0;
      if (lambda > 1e12) break;
    }
    if (!accepted || result.converged) {
      result.converged = result.converged || !accepted;
      break;
    }
  }

  result.x = std::move(x);
  result.cost = cost;
  return result;
}

}  // namespace charlie::fit
