#include "fit/param_transform.hpp"

#include <cmath>

#include "util/error.hpp"

namespace charlie::fit {

std::vector<double> to_log_space(const std::vector<double>& params) {
  std::vector<double> out;
  out.reserve(params.size());
  for (double p : params) {
    CHARLIE_ASSERT_MSG(p > 0.0, "to_log_space: parameter must be positive");
    out.push_back(std::log(p));
  }
  return out;
}

std::vector<double> from_log_space(const std::vector<double>& log_params) {
  std::vector<double> out;
  out.reserve(log_params.size());
  for (double lp : log_params) out.push_back(std::exp(lp));
  return out;
}

}  // namespace charlie::fit
