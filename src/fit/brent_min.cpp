#include "fit/brent_min.hpp"

#include <cmath>

#include "util/error.hpp"

namespace charlie::fit {

MinimizeResult brent_minimize(const std::function<double(double)>& f,
                              double a, double b,
                              const MinimizeOptions& opts) {
  CHARLIE_ASSERT_MSG(b > a, "brent_minimize: empty interval");
  constexpr double kGolden = 0.3819660112501051;  // 2 - phi

  double x = a + kGolden * (b - a);
  double w = x;
  double v = x;
  double fx = f(x);
  double fw = fx;
  double fv = fx;
  double d = 0.0;
  double e = 0.0;

  MinimizeResult result;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    const double m = 0.5 * (a + b);
    const double tol = opts.xtol * std::fabs(x) + 1e-25;
    const double tol2 = 2.0 * tol;
    if (std::fabs(x - m) <= tol2 - 0.5 * (b - a)) {
      result.x = x;
      result.f = fx;
      result.iterations = iter;
      return result;
    }
    bool use_golden = true;
    if (std::fabs(e) > tol) {
      // Parabolic fit through (v,fv), (w,fw), (x,fx).
      const double r = (x - w) * (fx - fv);
      double q = (x - v) * (fx - fw);
      double p = (x - v) * q - (x - w) * r;
      q = 2.0 * (q - r);
      if (q > 0.0) p = -p;
      q = std::fabs(q);
      const double e_old = e;
      e = d;
      if (std::fabs(p) < std::fabs(0.5 * q * e_old) && p > q * (a - x) &&
          p < q * (b - x)) {
        d = p / q;
        const double u = x + d;
        if (u - a < tol2 || b - u < tol2) {
          d = std::copysign(tol, m - x);
        }
        use_golden = false;
      }
    }
    if (use_golden) {
      e = (x < m) ? b - x : a - x;
      d = kGolden * e;
    }
    const double u =
        (std::fabs(d) >= tol) ? x + d : x + std::copysign(tol, d);
    const double fu = f(u);
    if (fu <= fx) {
      if (u < x) {
        b = x;
      } else {
        a = x;
      }
      v = w;
      fv = fw;
      w = x;
      fw = fx;
      x = u;
      fx = fu;
    } else {
      if (u < x) {
        a = u;
      } else {
        b = u;
      }
      if (fu <= fw || w == x) {
        v = w;
        fv = fw;
        w = u;
        fw = fu;
      } else if (fu <= fv || v == x || v == w) {
        v = u;
        fv = fu;
      }
    }
  }
  result.x = x;
  result.f = fx;
  result.iterations = opts.max_iterations;
  return result;
}

}  // namespace charlie::fit
