#!/usr/bin/env python3
"""Structural checker for VCD files (the subset waveform/vcd.cpp emits).

Usage: check_vcd.py FILE [--min-signals N] [--min-changes N]

Validates, without any third-party dependency, that a VCD file is loadable
by a standards-following viewer:

  * $timescale is present and one of the legal {1,10,100}{s..fs} decades
  * $enddefinitions closes the header
  * every $var is a 1-bit wire or a real, with a unique id code
  * every value change references a declared id
  * '#' time marks are non-decreasing integers

Exits 0 and prints a one-line summary on success; exits 1 with a message
on the first structural violation. CI (the obs-smoke job) runs this over
tools/trace_run output to lock the writer against regressions.
"""

import argparse
import sys

LEGAL_MAGNITUDES = {"1", "10", "100"}
LEGAL_UNITS = {"s", "ms", "us", "ns", "ps", "fs"}


def fail(message):
    print(f"check_vcd: {message}", file=sys.stderr)
    sys.exit(1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file")
    parser.add_argument("--min-signals", type=int, default=1,
                        help="fail unless at least N signals are declared")
    parser.add_argument("--min-changes", type=int, default=0,
                        help="fail unless at least N value changes appear")
    args = parser.parse_args()

    with open(args.file, encoding="ascii") as handle:
        tokens = handle.read().split()

    ids = {}  # id code -> (name, is_real)
    saw_timescale = False
    saw_enddefinitions = False
    last_tick = -1
    n_changes = 0

    i = 0
    while i < len(tokens):
        token = tokens[i]
        if token.startswith("$") and token != "$end":
            directive = token
            words = []
            i += 1
            if directive in ("$dumpvars", "$dumpall", "$dumpon", "$dumpoff"):
                continue  # contents parse as ordinary value changes
            while i < len(tokens) and tokens[i] != "$end":
                words.append(tokens[i])
                i += 1
            if i == len(tokens):
                fail(f"unterminated {directive}")
            i += 1  # consume $end
            if directive == "$timescale":
                text = "".join(words)
                magnitude = "".join(c for c in text if c.isdigit())
                unit = text[len(magnitude):]
                if magnitude not in LEGAL_MAGNITUDES or unit not in LEGAL_UNITS:
                    fail(f"illegal $timescale '{' '.join(words)}'")
                saw_timescale = True
            elif directive == "$var":
                if len(words) < 4:
                    fail(f"malformed $var '{' '.join(words)}'")
                var_type, width, id_code = words[0], words[1], words[2]
                name = "".join(words[3:])
                if id_code in ids:
                    fail(f"duplicate id code '{id_code}'")
                if var_type == "real":
                    ids[id_code] = (name, True)
                elif var_type == "wire":
                    if width != "1":
                        fail(f"wire '{name}' has width {width}, expected 1")
                    ids[id_code] = (name, False)
                else:
                    fail(f"unsupported $var type '{var_type}'")
            elif directive == "$enddefinitions":
                saw_enddefinitions = True
            continue
        i += 1
        if token == "$end":
            continue  # closes a $dumpvars block
        if token.startswith("#"):
            try:
                tick = int(token[1:])
            except ValueError:
                fail(f"malformed time mark '{token}'")
            if tick < last_tick:
                fail(f"time mark #{tick} goes backwards (after #{last_tick})")
            last_tick = tick
            continue
        if token[0] in "01xXzZ":
            id_code = token[1:]
            if id_code not in ids:
                fail(f"value change for undeclared id '{id_code}'")
            if ids[id_code][1]:
                fail(f"scalar change on real signal id '{id_code}'")
            n_changes += 1
            continue
        if token[0] in "rR":
            if i >= len(tokens):
                fail("truncated real value change")
            id_code = tokens[i]
            i += 1
            if id_code not in ids:
                fail(f"real change for undeclared id '{id_code}'")
            if not ids[id_code][1]:
                fail(f"real change on wire id '{id_code}'")
            n_changes += 1
            continue
        fail(f"unrecognized token '{token}'")

    if not saw_timescale:
        fail("missing $timescale")
    if not saw_enddefinitions:
        fail("missing $enddefinitions")
    if len(ids) < args.min_signals:
        fail(f"only {len(ids)} signal(s) declared, need {args.min_signals}")
    if n_changes < args.min_changes:
        fail(f"only {n_changes} value change(s), need {args.min_changes}")
    print(f"check_vcd: OK ({len(ids)} signals, {n_changes} changes, "
          f"last tick #{max(last_tick, 0)})")


if __name__ == "__main__":
    main()
