// Static timing report CLI: netlist in, slack table + critical paths +
// corner/SSTA screening out.
//
//   sta_report --netlist examples/netlists/c432.net --deadline 5e-9
//   sta_report --netlist big.net --deadline 2e-9 --corners 64 \
//              --sigma-vdd 0.05 --sigma-vth 0.02 --sigma-drive 0.05
//
// Flags:
//   --netlist FILE    netlist to analyze (docs/netlist_format.md); required
//   --deadline T      timing deadline [s]; 0 (default) = report only
//   --paths K         critical paths to print (default 5)
//   --corners N       sampled process corners (default 0 = nominal only)
//   --seed S          corner sample seed (default 1; corner c matches
//                     Monte-Carlo run c of a BatchRunner with base_seed S)
//   --sigma-vdd/--sigma-vth/--sigma-drive
//                     process sigmas (enable corners and SSTA)
//   --all-nets        print the full per-net slack table, worst first
//   --trace-out FILE  arm the execution tracer around the analysis and
//                     write Chrome trace-event JSON (Perfetto-loadable)
//   --metrics-out FILE
//                     write the report's obs::MetricsRegistry as JSON
//   --vcd-out FILE    additionally run one seeded event-engine simulation
//                     of the netlist and dump its input/output waveforms as
//                     VCD (GTKWave-loadable; docs/observability.md)
//
// Exit status: 0 when the design meets the deadline at nominal and at every
// sampled corner, 1 on negative slack (or bad arguments) -- so CI can gate
// on it directly. The report is conservative: an exit of 0 bounds every
// delay the event engine can produce at the analyzed points (docs/sta.md).
#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/circuit_builder.hpp"
#include "sta/report.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"
#include "waveform/generator.hpp"
#include "waveform/vcd.hpp"

using namespace charlie;

namespace {

std::string format_path(const sta::CriticalPath& path) {
  std::string out;
  for (std::size_t i = 0; i < path.steps.size(); ++i) {
    const sta::PathStep& step = path.steps[i];
    if (i > 0) out += " -> ";
    out += step.net;
    out += step.rising ? "^" : "v";
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    util::Cli cli(argc, argv);
    const std::string netlist_path = cli.get_string("--netlist", "");
    sta::StaOptions options;
    options.deadline = cli.get_double("--deadline", 0.0);
    options.n_paths =
        static_cast<std::size_t>(cli.get_int("--paths", 5));
    options.n_corners =
        static_cast<std::size_t>(cli.get_int("--corners", 0));
    options.base_seed = static_cast<std::uint64_t>(cli.get_int("--seed", 1));
    options.variation.vdd_sigma = cli.get_double("--sigma-vdd", 0.0);
    options.variation.vth_sigma = cli.get_double("--sigma-vth", 0.0);
    options.variation.drive_sigma = cli.get_double("--sigma-drive", 0.0);
    const bool all_nets = cli.has_flag("--all-nets");
    const std::string trace_out = cli.get_string("--trace-out", "");
    const std::string metrics_out = cli.get_string("--metrics-out", "");
    const std::string vcd_out = cli.get_string("--vcd-out", "");
    cli.finish();
    if (netlist_path.empty()) {
      throw ConfigError("--netlist is required");
    }

    const cell::NetlistDesc desc = cell::read_netlist_file(netlist_path);
    const auto library = std::make_shared<const cell::CellLibrary>(
        cell::CellLibrary::reference());
    if (!trace_out.empty()) obs::TraceRecorder::start();
    const sta::Report report = sta::analyze(desc, library, options);

    // One seeded event-engine run of the same netlist, dumped as VCD: the
    // waveforms that realize (one sample of) the delays the report bounds.
    if (!vcd_out.empty()) {
      const sim::CircuitBuilder builder(library);
      const auto circuit = builder.build(desc);
      waveform::TraceConfig trace_config;
      trace_config.mu = 150e-12;
      trace_config.sigma = 60e-12;
      trace_config.n_transitions = 64;
      util::Rng rng(options.base_seed);
      const auto stimuli = waveform::generate_traces(
          trace_config, circuit->n_inputs(), rng);
      double t_last = trace_config.t_start;
      for (const auto& trace : stimuli) {
        if (!trace.empty()) {
          t_last = std::max(t_last, trace.transitions().back());
        }
      }
      const sim::Circuit::SimResult sim_result =
          circuit->simulate(stimuli, 0.0, t_last + 1e-9);
      std::vector<waveform::VcdDigitalSignal> signals;
      for (std::size_t i = 0; i < circuit->n_inputs(); ++i) {
        const sim::Circuit::NetId id = circuit->input_net(i);
        signals.push_back({circuit->net_name(id), &sim_result.trace(id)});
      }
      std::vector<std::string> out_nets = desc.outputs;
      if (out_nets.empty() && !desc.instances.empty()) {
        out_nets.push_back(desc.instances.back().output);
      }
      for (const std::string& net : out_nets) {
        signals.push_back({net, &sim_result.trace(circuit->find_net(net))});
      }
      waveform::write_vcd(vcd_out, signals);
      std::printf("vcd              : %zu signals -> %s\n", signals.size(),
                  vcd_out.c_str());
    }

    if (!trace_out.empty()) {
      obs::TraceRecorder::stop();
      const auto snapshot = obs::TraceRecorder::collect();
      obs::write_chrome_trace(snapshot, trace_out);
      std::printf("trace            : %zu events -> %s\n",
                  snapshot.events.size(), trace_out.c_str());
    }
    if (!metrics_out.empty()) {
      obs::MetricsRegistry metrics;
      metrics.add("sta.endpoints",
                  static_cast<long long>(report.endpoints.size()));
      metrics.add("sta.paths", static_cast<long long>(report.paths.size()));
      metrics.add("sta.corners",
                  static_cast<long long>(report.corners.size()));
      for (const sta::NetTiming& t : report.nominal.nets) {
        metrics.observe("sta.arrival",
                        std::max(t.arrival_rise, t.arrival_fall));
      }
      for (const sta::CornerSummary& corner : report.corners) {
        metrics.observe("sta.corner_delay", corner.critical_delay);
      }
      metrics.write_json(metrics_out);
      std::printf("metrics          : %s\n", metrics_out.c_str());
    }

    std::printf("netlist          : %s (%zu gates, %zu wires, %zu inputs, "
                "%zu outputs)\n",
                netlist_path.c_str(), desc.n_gates(), desc.n_wires(),
                desc.inputs.size(), desc.outputs.size());
    std::printf("critical delay   : %s (endpoint %s %s)\n",
                units::format_time(report.nominal.critical_delay).c_str(),
                report.nominal.critical_endpoint.c_str(),
                report.nominal.critical_rising ? "rising" : "falling");
    std::printf("deadline         : %s%s\n",
                units::format_time(report.deadline).c_str(),
                options.deadline > 0.0 ? "" : " (= critical delay; "
                                              "unconstrained)");
    std::printf("worst slack      : %s\n",
                units::format_time(report.nominal.worst_slack).c_str());

    std::printf("critical paths   :\n");
    for (std::size_t i = 0; i < report.paths.size(); ++i) {
      std::printf("  #%zu %10s : %s\n", i + 1,
                  units::format_time(report.paths[i].delay).c_str(),
                  format_path(report.paths[i]).c_str());
    }

    // Slack table: endpoints by default, every net with --all-nets; worst
    // slack first, declaration order on ties.
    const std::set<std::string> endpoint_set(report.endpoints.begin(),
                                             report.endpoints.end());
    std::vector<const sta::NetTiming*> rows;
    for (const sta::NetTiming& t : report.nominal.nets) {
      if (all_nets || endpoint_set.count(t.net) > 0) rows.push_back(&t);
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const sta::NetTiming* a, const sta::NetTiming* b) {
                       return a->slack < b->slack;
                     });
    std::printf("slack table      : %zu net%s (%s)\n", rows.size(),
                rows.size() == 1 ? "" : "s",
                all_nets ? "all" : "endpoints");
    std::printf("  %-16s %12s %12s %12s\n", "net", "arr rise", "arr fall",
                "slack");
    for (const sta::NetTiming* t : rows) {
      std::printf("  %-16s %12s %12s %12s\n", t->net.c_str(),
                  units::format_time(t->arrival_rise).c_str(),
                  units::format_time(t->arrival_fall).c_str(),
                  units::format_time(t->slack).c_str());
    }

    if (!report.corners.empty()) {
      double lo = report.corners.front().critical_delay;
      double hi = lo;
      double sum = 0.0;
      double worst_slack = report.corners.front().worst_slack;
      for (const sta::CornerSummary& corner : report.corners) {
        lo = std::min(lo, corner.critical_delay);
        hi = std::max(hi, corner.critical_delay);
        sum += corner.critical_delay;
        worst_slack = std::min(worst_slack, corner.worst_slack);
      }
      std::printf("corners          : %zu sampled (seed %llu), critical "
                  "delay %s..%s (mean %s), worst slack %s\n",
                  report.corners.size(),
                  static_cast<unsigned long long>(options.base_seed),
                  units::format_time(lo).c_str(),
                  units::format_time(hi).c_str(),
                  units::format_time(sum / static_cast<double>(
                                               report.corners.size()))
                      .c_str(),
                  units::format_time(worst_slack).c_str());
      std::printf("criticality      :");
      for (const auto& [net, count] : report.corner_criticality) {
        std::printf(" %s=%llu", net.c_str(),
                    static_cast<unsigned long long>(count));
      }
      std::printf("\n");
    }

    if (report.ssta.valid) {
      std::printf("ssta delay       : mean %s sigma %s (vdd %s, vth %s, "
                  "drive %s, rand %s)\n",
                  units::format_time(report.ssta.delay.mean).c_str(),
                  units::format_time(report.ssta.delay.sigma()).c_str(),
                  units::format_time(report.ssta.delay.sens[0]).c_str(),
                  units::format_time(report.ssta.delay.sens[1]).c_str(),
                  units::format_time(report.ssta.delay.sens[2]).c_str(),
                  units::format_time(report.ssta.delay.sigma_rand).c_str());
      for (const auto& [q, value] : report.ssta.quantiles) {
        std::printf("  q%-5.3g         : %s\n", 100.0 * q,
                    units::format_time(value).c_str());
      }
      if (options.deadline > 0.0) {
        std::printf("yield (ssta)     : %.2f%% at %s\n",
                    100.0 * report.ssta.yield,
                    units::format_time(report.deadline).c_str());
      }
    }

    const bool ok = options.deadline <= 0.0 || report.meets_deadline();
    std::printf("verdict          : %s\n",
                options.deadline <= 0.0
                    ? "unconstrained"
                    : (ok ? "MEETS deadline" : "VIOLATES deadline"));
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sta_report: %s\n", e.what());
    return 1;
  }
}
