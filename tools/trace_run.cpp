// Observability driver: run a netlist through the event engine and export
// every observability artifact in one shot -- execution trace (Chrome
// trace-event JSON, load in Perfetto / chrome://tracing), metrics registry
// JSON, and VCD waveforms (load in GTKWave).
//
//   trace_run --netlist examples/netlists/c432.net --runs 8 --threads 4 \
//             --trace-out run.trace.json --metrics-out run.metrics.json \
//             --vcd-out run.vcd
//   trace_run --netlist big.net --shards 4 --trace-out wavefront.json
//
// Flags:
//   --netlist FILE    netlist to simulate (docs/netlist_format.md); required
//   --runs N          Monte-Carlo batch size (default 4; batch mode only)
//   --threads N       worker threads (default 0 = hardware concurrency)
//   --shards K        K > 0 switches to the sharded single-circuit engine:
//                     one simulation of the netlist partitioned into K
//                     shards, traced per (shard, window) wavefront task
//   --seed S          stimulus seed (default 2022)
//   --transitions N   stimulus transitions per input (default 64)
//   --trace-out FILE  Chrome trace-event JSON of the armed run
//   --metrics-out FILE metrics registry JSON (schema: docs/observability.md)
//   --vcd-out FILE    VCD waveforms (batch: run 0's inputs + observed nets;
//                     sharded: the single run's inputs + outputs)
//
// The tracer is armed for the simulation only when --trace-out is given;
// with no output flags the tool still runs and prints the summary (useful
// as a smoke check). Exit status 0 iff every run finished kOk.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/batch_runner.hpp"
#include "sim/circuit_builder.hpp"
#include "sim/sharded_circuit.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "waveform/generator.hpp"
#include "waveform/vcd.hpp"

using namespace charlie;

int main(int argc, char** argv) {
  try {
    util::Cli cli(argc, argv);
    const std::string netlist_path = cli.get_string("--netlist", "");
    const auto n_runs = static_cast<std::size_t>(cli.get_int("--runs", 4));
    const auto n_threads =
        static_cast<std::size_t>(cli.get_int("--threads", 0));
    const auto n_shards = static_cast<std::size_t>(cli.get_int("--shards", 0));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("--seed", 2022));
    const auto n_transitions =
        static_cast<std::size_t>(cli.get_int("--transitions", 64));
    const std::string trace_out = cli.get_string("--trace-out", "");
    const std::string metrics_out = cli.get_string("--metrics-out", "");
    const std::string vcd_out = cli.get_string("--vcd-out", "");
    cli.finish();
    if (netlist_path.empty()) throw ConfigError("--netlist is required");

    const cell::NetlistDesc desc = cell::read_netlist_file(netlist_path);
    const auto library = std::make_shared<const cell::CellLibrary>(
        cell::CellLibrary::reference());
    const sim::CircuitBuilder builder(library);
    std::vector<std::string> out_nets = desc.outputs;
    if (out_nets.empty() && !desc.instances.empty()) {
      out_nets.push_back(desc.instances.back().output);
    }

    waveform::TraceConfig trace_config;
    trace_config.mu = 150e-12;
    trace_config.sigma = 60e-12;
    trace_config.n_transitions = n_transitions;

    obs::MetricsRegistry metrics;
    std::vector<waveform::VcdDigitalSignal> vcd_signals;
    // Backing storage for vcd_signals in the sharded path (the batch path
    // borrows BatchResult::captured instead).
    bool all_ok = true;

    if (!trace_out.empty()) obs::TraceRecorder::start();

    sim::BatchResult batch;           // kept alive for captured traces
    sim::ShardedCircuit::Result sharded;  // keeps pointers into `circuit`
    std::unique_ptr<sim::ShardedCircuit> circuit;
    if (n_shards > 0) {
      // Sharded mode: one simulation of the whole netlist, wavefront-
      // parallel across shards.
      circuit = builder.build_sharded(desc, n_shards);
      util::Rng rng(seed);
      const auto stimuli = waveform::generate_traces(
          trace_config, circuit->n_inputs(), rng);
      double t_last = trace_config.t_start;
      for (const auto& trace : stimuli) {
        if (!trace.empty()) {
          t_last = std::max(t_last, trace.transitions().back());
        }
      }
      sim::ShardedSimConfig config;
      config.n_threads = n_threads;
      sharded = circuit->simulate(stimuli, 0.0, t_last + 1e-9, config);
      all_ok = sharded.ok();
      metrics = sharded.metrics;
      std::printf("mode            : sharded (%zu shards, %zu windows)\n",
                  circuit->n_shards(), sharded.n_windows);
      std::printf("engine events   : %ld\n", sharded.n_events);
      std::printf("load imbalance  : %.3f (1.0 = balanced)\n",
                  sharded.load_imbalance());
      if (!vcd_out.empty()) {
        for (std::size_t i = 0; i < desc.inputs.size(); ++i) {
          vcd_signals.push_back(
              {desc.inputs[i], &sharded.trace(desc.inputs[i])});
        }
        for (const std::string& net : out_nets) {
          vcd_signals.push_back({net, &sharded.trace(net)});
        }
      }
    } else {
      sim::BatchConfig config;
      config.trace = trace_config;
      config.n_runs = n_runs;
      config.n_threads = n_threads;
      config.base_seed = seed;
      if (!vcd_out.empty()) config.capture_run = 0;
      sim::BatchRunner runner([&] { return builder.build(desc); }, out_nets,
                              config);
      batch = runner.run();
      all_ok = batch.all_ok();
      metrics = batch.metrics;
      std::printf("mode            : batch (%zu runs, %zu threads)\n",
                  batch.n_runs, batch.n_threads);
      std::printf("engine events   : %lld\n", batch.total_events);
      if (!vcd_out.empty()) {
        for (const auto& captured : batch.captured) {
          vcd_signals.push_back({captured.net, &captured.trace});
        }
      }
    }

    if (!trace_out.empty()) {
      obs::TraceRecorder::stop();
      const auto snapshot = obs::TraceRecorder::collect();
      obs::write_chrome_trace(snapshot, trace_out);
      metrics.add("trace.events",
                  static_cast<long long>(snapshot.events.size()));
      metrics.add("trace.dropped",
                  static_cast<long long>(snapshot.n_dropped));
      std::printf("trace           : %zu events -> %s%s\n",
                  snapshot.events.size(), trace_out.c_str(),
                  snapshot.n_dropped > 0 ? " (ring overflow, raise capacity)"
                                         : "");
    }
    if (!metrics_out.empty()) {
      metrics.write_json(metrics_out);
      std::printf("metrics         : %s\n", metrics_out.c_str());
    }
    if (!vcd_out.empty()) {
      waveform::write_vcd(vcd_out, vcd_signals);
      std::printf("vcd             : %zu signals -> %s\n", vcd_signals.size(),
                  vcd_out.c_str());
    }
    return all_ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_run: %s\n", e.what());
    return 1;
  }
}
