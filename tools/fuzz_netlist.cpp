// Fuzz harness for the structural netlist parser (cell::parse_netlist).
//
// The parser is the library's main untrusted-input boundary: netlist files
// come from users and generators, so every byte sequence must either parse
// or throw a structured ConfigError -- never assert, crash, or hang. The
// harness also round-trips anything that parses through write_netlist and
// re-parses it, so printer/parser drift traps too.
//
// Two build modes share LLVMFuzzerTestOneInput:
//
//   * libFuzzer (clang, -DCHARLIE_LIBFUZZER=ON): coverage-guided fuzzing.
//       ./fuzz_netlist -max_total_time=30 tests/fuzz/netlist
//   * standalone (any compiler, the default): a corpus replay driver that
//     feeds every file (or every regular file under a directory) to the
//     same entry point. Wired into ctest so the seed corpus is replayed by
//     the tier-1 suite on every build, gcc included.
//       ./fuzz_netlist tests/fuzz/netlist seed.net ...
#include <cstddef>
#include <cstdint>
#include <string>

#include "cell/netlist.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  try {
    const charlie::cell::NetlistDesc desc =
        charlie::cell::parse_netlist(text, "fuzz");
    // Round-trip invariant: a parsed netlist serializes to text that parses
    // back to the same shape.
    const charlie::cell::NetlistDesc again = charlie::cell::parse_netlist(
        charlie::cell::write_netlist(desc), "fuzz");
    if (again.inputs.size() != desc.inputs.size() ||
        again.outputs.size() != desc.outputs.size() ||
        again.instances.size() != desc.instances.size() ||
        again.wires.size() != desc.wires.size()) {
      __builtin_trap();
    }
  } catch (const charlie::ConfigError&) {
    // The one contractual failure mode: a structured syntax error.
  }
  return 0;
}

#ifndef CHARLIE_FUZZ_LIBFUZZER

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace {

int replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz_netlist: cannot open %s\n",
                 path.string().c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(text.data()),
                         text.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: fuzz_netlist <corpus-file-or-dir>...\n"
                 "(standalone replay driver; build with "
                 "-DCHARLIE_LIBFUZZER=ON under clang for real fuzzing)\n");
    return 2;
  }
  int failures = 0;
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        failures += replay_file(file);
        ++replayed;
      }
    } else {
      failures += replay_file(arg);
      ++replayed;
    }
  }
  std::printf("fuzz_netlist: replayed %zu input%s, %d unreadable\n", replayed,
              replayed == 1 ? "" : "s", failures);
  return failures == 0 ? 0 : 1;
}

#endif  // CHARLIE_FUZZ_LIBFUZZER
