#!/usr/bin/env bash
# Static determinism lint: greps src/ for constructs that have historically
# broken the repo's bit-identical-results guarantee (BatchRunner aggregates,
# sharded simulation, corner caches are all reduced in fixed order from
# seeded counter-RNG streams -- see docs/determinism.md if present, and the
# BatchRunner header comment).
#
# Findings and why they are banned:
#   * rand() / srand()          -- hidden global state, platform-dependent
#                                  sequences; use util::Rng / util::CounterRng.
#   * std::random_device        -- nondeterministic entropy; only util/rng may
#                                  touch it (it currently does not).
#   * time(0) / std::time / time(nullptr), std::chrono::*_clock::now() used
#     as a seed -- wall-clock seeding makes runs unreproducible. Clocks are
#     allowed in diagnostics (deadlines, wall-time reporting), so only
#     seed-context uses are flagged (a `seed` on the same line).
#   * range-for directly over a std::unordered_ container -- iteration order
#     is implementation-defined; reductions must walk a sorted or
#     declaration-ordered index instead (see sim/net_criticality).
#
# Exit 1 with a file:line listing on any finding; silent success otherwise.
# An inline `// lint-determinism: allow` comment suppresses a line.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

report() {
  local label="$1"
  local matches="$2"
  if [[ -n "$matches" ]]; then
    echo "lint_determinism: $label:" >&2
    echo "$matches" | sed 's/^/  /' >&2
    fail=1
  fi
}

filter_allowed() {
  grep -v 'lint-determinism: allow' || true
}

# Bare C rand()/srand(). \b keeps sigma_rand / rand_delay identifiers out.
report "C rand()/srand() (use util::Rng)" \
  "$(grep -rnE '\b(s?rand)\(' src/ | filter_allowed)"

# Nondeterministic entropy outside the RNG utility.
report "std::random_device outside src/util/rng" \
  "$(grep -rn 'random_device' src/ | grep -v '^src/util/rng' \
     | filter_allowed)"

# Wall-clock seeding. Clock reads feeding anything named seed are flagged;
# plain diagnostics timing is fine.
report "wall-clock seeding (time()/now() near a seed)" \
  "$(grep -rnE '(std::time\(|[^a-z_]time\(0\)|time\(nullptr\)|_clock::now)' \
     src/ | grep -i 'seed' | filter_allowed)"

# Direct iteration over unordered containers: order is not deterministic.
report "range-for over a std::unordered_ container (iterate a sorted or \
declaration-ordered index instead)" \
  "$(grep -rnE 'for \([^)]*:[^)]*unordered_' src/ | filter_allowed)"

if [[ "$fail" -ne 0 ]]; then
  echo "lint_determinism: FAILED (suppress a deliberate use with" \
    "'// lint-determinism: allow')" >&2
  exit 1
fi
echo "lint_determinism: OK"
