#!/usr/bin/env bash
# Build the ASan+UBSan preset and run the full ctest suite under it.
# Any sanitizer report aborts the offending test (-fno-sanitize-recover=all),
# so a green run means the suite is clean of addressability and UB findings.
#
#   $ tools/run_sanitized_tests.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j"$(nproc)"
ctest --preset asan-ubsan -j"$(nproc)" "$@"
