#!/usr/bin/env bash
# Build the ThreadSanitizer preset and run the concurrency-bearing test
# suites under it: the worker pool (chunked atomic work claiming), the
# Monte-Carlo batch runner (per-worker clones + shared reduction buffers),
# and the sharded single-circuit engine (wavefront exchange buckets). Any
# data-race report aborts the offending test (-fno-sanitize-recover=all),
# so a green run means TSan sees no races on these paths.
#
# The threaded suites are selected by test-name regex rather than running
# everything: the full suite under TSan multiplies runtime ~10x for files
# that never spawn a thread.
#
#   $ tools/run_tsan_tests.sh [extra ctest args...]
set -euo pipefail
cd "$(dirname "$0")/.."

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" \
  --target charlie_test_util charlie_test_sim charlie_test_cell
ctest --preset tsan -j1 \
  -R 'ThreadPool|BatchRunner|ShardedCircuit|NetlistGen|WireTableCache' "$@"
