#!/usr/bin/env bash
# Pre-commit tree gate: repo hygiene + full configure/build/ctest.
#
#   tools/check_tree.sh                # hygiene + build + tests
#   tools/check_tree.sh --hygiene-only # just the fast tracked-file checks
#
# Hygiene: no build tree (build*/) may be tracked by git -- PR 3
# accidentally committed 641 build artifacts, this keeps them out for good.
# The determinism lint (tools/lint_determinism.sh) rides along: src/ must
# stay free of nondeterminism sources (bare rand(), std::random_device,
# wall-clock seeding, unordered-container iteration).
set -euo pipefail
cd "$(dirname "$0")/.."

tracked_build=$(git ls-files | grep -E '^build[^/]*/' || true)
if [[ -n "$tracked_build" ]]; then
  echo "error: build trees are tracked by git (extend .gitignore, then" >&2
  echo "       git rm -r --cached <dir>):" >&2
  echo "$tracked_build" | head -10 >&2
  exit 1
fi

tools/lint_determinism.sh

if [[ "${1:-}" == "--hygiene-only" ]]; then
  echo "check_tree: hygiene OK"
  exit 0
fi

cmake --preset release
cmake --build --preset release -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
echo "check_tree: OK"
