// Synthetic benchmark netlist generator (cell::generate_netlist CLI).
//
//   gen_netlist --gates 100000 --out big.net
//   gen_netlist --gates 250000 --inputs 128 --wire-fraction 0.05 --seed 7
//
// Emits the repo's netlist text format (docs/netlist_format.md) to --out,
// or stdout when --out is omitted. Deterministic for a fixed flag set; the
// defaults produce the >= 100k-gate workload the sharded-simulation
// benchmark uses (bench/bench_sharded_throughput.cpp regenerates the same
// netlist in-process, so no generated file needs to be checked in).
#include <cstdio>
#include <iostream>

#include "cell/netlist_gen.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"

int main(int argc, char** argv) {
  using namespace charlie;
  try {
    util::Cli cli(argc, argv);
    cell::NetlistGenConfig config;
    config.n_gates = static_cast<std::size_t>(
        cli.get_int("--gates", static_cast<int>(config.n_gates)));
    config.n_inputs = static_cast<std::size_t>(
        cli.get_int("--inputs", static_cast<int>(config.n_inputs)));
    config.n_outputs = static_cast<std::size_t>(
        cli.get_int("--outputs", static_cast<int>(config.n_outputs)));
    config.layer_width = static_cast<std::size_t>(
        cli.get_int("--width", static_cast<int>(config.layer_width)));
    config.locality = static_cast<std::size_t>(
        cli.get_int("--locality", static_cast<int>(config.locality)));
    config.wire_fraction =
        cli.get_double("--wire-fraction", config.wire_fraction);
    config.seed =
        static_cast<std::uint64_t>(cli.get_int("--seed", 1));
    const std::string out = cli.get_string("--out", "");
    cli.finish();

    const cell::NetlistDesc desc = cell::generate_netlist(config);
    if (out.empty()) {
      std::cout << cell::write_netlist(desc);
    } else {
      cell::write_netlist_file(desc, out);
      std::fprintf(stderr,
                   "gen_netlist: wrote %zu gates, %zu wires, %zu inputs, "
                   "%zu outputs to %s\n",
                   desc.n_gates(), desc.n_wires(), desc.inputs.size(),
                   desc.outputs.size(), out.c_str());
    }
    return 0;
  } catch (const ConfigError& e) {
    std::fprintf(stderr, "gen_netlist: %s\n", e.what());
    return 1;
  }
}
