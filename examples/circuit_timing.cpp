// Multi-gate digital timing simulation with MIS-aware channels, built
// through the cell-library front-end: the classic MUX glitch circuit and a
// marginal-pulse sweep, comparing channel models on glitch behaviour.
//
//   sel ----------------+----------------\
//                       |                 NOR2 (y1)
//   a ---- INV ---- na --+--- NOR2 (x1) --/
//
// With a = sel switching together, reconvergent paths create glitch
// hazards whose propagation depends on the delay model.
//
// Circuits come from a structural netlist (docs/netlist_format.md) via
// sim::CircuitBuilder against CellLibrary::reference() -- the Table-I
// paper-regime cells, no substrate characterization at startup. The
// inverter delay sweep overrides the library's INV spec per iteration
// (CellLibrary::set_sis_delays); the inertial baseline shows the legacy
// hand-wired Circuit::add_gate path for contrast.
//
//   $ ./examples/circuit_timing
#include <iostream>
#include <memory>

#include "cell/cell_library.hpp"
#include "sim/circuit.hpp"
#include "sim/circuit_builder.hpp"
#include "sim/inertial.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

// in -> INV -> ninv; x = NOR(in, ninv); y = NOR(x, in). The INV + NOR
// reconvergence generates a hazard on x when `in` rises.
constexpr const char* kGlitchNetlist = R"(
input(in)
INV(ninv, in)
NOR2(x, in, ninv)
NOR2(y, x, in)
)";

}  // namespace

int main() {
  using namespace charlie;

  auto build = [&](bool mis_aware, double inv_delay) {
    if (mis_aware) {
      cell::CellLibrary library = cell::CellLibrary::reference();
      library.set_sis_delays("INV", inv_delay, inv_delay);
      return sim::CircuitBuilder(library).build_text(kGlitchNetlist);
    }
    // Legacy path: the same topology hand-wired gate by gate with SIS
    // inertial channels (what every circuit looked like before the
    // cell-library front-end).
    auto c = std::make_unique<sim::Circuit>();
    const auto in = c->add_input("in");
    const auto ninv =
        c->add_gate(sim::GateKind::kInv, "ninv", {in},
                    std::make_unique<sim::InertialChannel>(inv_delay,
                                                           inv_delay));
    const auto x =
        c->add_gate(sim::GateKind::kNor2, "x", {in, ninv},
                    std::make_unique<sim::InertialChannel>(53e-12, 39e-12));
    c->add_gate(sim::GateKind::kNor2, "y", {x, in},
                std::make_unique<sim::InertialChannel>(53e-12, 39e-12));
    return c;
  };

  const waveform::DigitalTrace stimulus(false, {1e-9, 3e-9});
  util::TextTable table({"model", "inv delay [ps]", "x transitions",
                         "y transitions"});
  for (const double inv_delay : {15e-12, 60e-12, 120e-12}) {
    for (const bool mis : {false, true}) {
      auto c = build(mis, inv_delay);
      const auto result = c->simulate({stimulus}, 0.0, 5e-9);
      table.add_row(
          {mis ? "hybrid (MIS-aware)" : "inertial",
           util::fmt(inv_delay / units::ps, 0),
           std::to_string(result.trace(c->find_net("x")).n_transitions()),
           std::to_string(result.trace(c->find_net("y")).n_transitions())});
    }
  }
  table.print(std::cout);

  std::cout
      << "\nReading the table:\n"
      << "  * With a short inverter delay the hazard pulse on x is brief:\n"
      << "    both channel types suppress it (glitch cancellation).\n"
      << "  * As the inverter slows down, the hazard widens until it\n"
      << "    propagates; the MIS-aware channel resolves the marginal\n"
      << "    cases with analog fidelity (its cancellation threshold\n"
      << "    emerges from the ODE trajectory, not from a fixed pulse\n"
      << "    width).\n";

  // Show the exact marginal-pulse behaviour of the hybrid channel. One
  // builder, one parsed netlist, one circuit per sweep point: the library's
  // NOR2 mode tables are derived once and shared by every instantiation.
  std::cout << "\nMarginal pulse sweep on a single MIS-aware NOR "
               "(B pulses high for w ps):\n";
  const sim::CircuitBuilder builder(cell::CellLibrary::reference());
  const auto nor_desc = cell::parse_netlist("input(a, b)\nNOR2(out, a, b)\n");
  util::TextTable sweep({"pulse width [ps]", "output transitions"});
  for (double w_ps : {5.0, 10.0, 15.0, 20.0, 30.0, 60.0}) {
    const auto c = builder.build(nor_desc);
    const waveform::DigitalTrace quiet(false, {});
    const waveform::DigitalTrace pulse(
        false, {1e-9, 1e-9 + w_ps * units::ps});
    const auto r = c->simulate({quiet, pulse}, 0.0, 3e-9);
    sweep.add_row({util::fmt(w_ps, 0),
                   std::to_string(
                       r.trace(c->find_net("out")).n_transitions())});
  }
  sweep.print(std::cout);
  std::cout << "(short pulses vanish, long ones pass -- the inertial-like "
               "filtering arises\n from the hybrid trajectories "
               "themselves)\n";
  return 0;
}
