// Random-trace accuracy comparison on one NOR gate: golden analog
// simulation vs four digital delay models (a single-configuration version
// of the paper's Fig 7 experiment).
//
//   $ ./examples/trace_accuracy [--mu-ps 150] [--sigma-ps 60] [--n 80]
//                               [--reps 3] [--global]
#include <iostream>

#include "core/parametrize.hpp"
#include "sim/accuracy.hpp"
#include "sim/hybrid_nor_channel.hpp"
#include "sim/nor_models.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace charlie;
  util::Cli cli(argc, argv);
  waveform::TraceConfig cfg;
  cfg.mu = cli.get_double("--mu-ps", 150.0) * units::ps;
  cfg.sigma = cli.get_double("--sigma-ps", 60.0) * units::ps;
  cfg.n_transitions = static_cast<std::size_t>(cli.get_int("--n", 80));
  cfg.global_mode = cli.has_flag("--global");
  sim::AccuracyOptions opts;
  opts.repetitions = cli.get_int("--reps", 3);
  cli.finish();

  const auto tech = spice::Technology::freepdk15_like();
  std::cout << "Calibrating hybrid model against the analog substrate...\n";
  const auto sub = spice::measure_characteristics(tech);
  core::CharacteristicDelays targets;
  targets.fall_minus_inf = sub.fall_minus_inf;
  targets.fall_zero = sub.fall_zero;
  targets.fall_plus_inf = sub.fall_plus_inf;
  targets.rise_minus_inf = sub.rise_minus_inf;
  targets.rise_zero = sub.rise_zero;
  targets.rise_plus_inf = sub.rise_plus_inf;
  core::FitOptions fopts;
  fopts.vdd = tech.vdd;
  const auto fit = core::fit_nor_params(targets, fopts);

  sim::SisNorDelays sis;
  sis.rise = 0.5 * (sub.rise_minus_inf + sub.rise_plus_inf);
  sis.fall = 0.5 * (sub.fall_minus_inf + sub.fall_plus_inf);

  std::vector<sim::ModelUnderTest> models;
  models.push_back(
      {"inertial", [&] { return sim::make_inertial_nor(sis); }, true});
  models.push_back(
      {"pure delay", [&] { return sim::make_pure_nor(sis); }, false});
  models.push_back(
      {"exp (IDM)", [&] { return sim::make_exp_nor(sis, 20e-12); }, false});
  models.push_back(
      {"sumexp (IDM)",
       [&] { return sim::make_sumexp_nor(sis, 20e-12); }, false});
  models.push_back({"hybrid (paper)",
                    [&] {
                      return std::make_unique<sim::HybridNorChannel>(
                          fit.params);
                    },
                    false});

  std::cout << "Evaluating " << opts.repetitions << " random traces of "
            << cfg.n_transitions << " transitions (" << cfg.label()
            << ")...\n\n";
  const auto result = sim::evaluate_accuracy(tech, cfg, models, opts);

  util::TextTable table(
      {"model", "deviation area [ps]", "normalized", "stddev [ps]"});
  for (const auto& m : result.models) {
    table.add_row({m.name, util::fmt(m.mean_area / units::ps, 1),
                   util::fmt(m.normalized, 3),
                   util::fmt(m.stddev_area / units::ps, 1)});
  }
  table.print(std::cout);
  std::cout << "\n(lower is better; 'normalized' is relative to the "
               "inertial baseline, as in paper Fig 7)\n";
  return 0;
}
