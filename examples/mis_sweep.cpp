// MIS characterization sweep: measure a transistor-level NOR2 on the
// analog substrate, fit the hybrid model to it, and print/export the
// model-vs-analog delay curves (the Fig 5 / Fig 6 workflow as a library
// use case). With --gates, additionally characterize + fit the multi-input
// cells (NOR3/NAND2/NAND3) and report each hybrid channel's deviation area
// against the analog golden output, normalized to the inertial baseline.
//
//   $ ./examples/mis_sweep [--points N] [--csv] [--gates] [--reps N]
#include <iostream>

#include "core/delay_model.hpp"
#include "core/gate_parametrize.hpp"
#include "core/parametrize.hpp"
#include "sim/accuracy.hpp"
#include "sim/gate_models.hpp"
#include "sim/hybrid_gate_channel.hpp"
#include "spice/characterize.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

// Characterize one multi-input cell, fit the generalized hybrid model, and
// run the Fig-7-style deviation-area comparison against the SIS baselines.
void report_gate_accuracy(const charlie::spice::Technology& tech,
                          charlie::spice::CellKind cell, int reps,
                          charlie::util::TextTable& table,
                          charlie::util::CsvWriter* out) {
  using namespace charlie;
  const int n = spice::cell_arity(cell);
  const auto topology = spice::cell_is_nand(cell)
                            ? core::GateTopology::kNandLike
                            : core::GateTopology::kNorLike;

  const auto measured = spice::measure_gate_targets(tech, cell);
  core::GateTargets targets;
  targets.fall = measured.fall;
  targets.rise = measured.rise;
  targets.fall_all = measured.fall_all;
  targets.rise_all = measured.rise_all;
  core::GateFitOptions fit_opts;
  fit_opts.vdd = tech.vdd;
  const auto fit = core::fit_gate_params(topology, targets, fit_opts);

  sim::SisGateDelays sis;
  sis.fall = math::mean(measured.fall);
  sis.rise = math::mean(measured.rise);
  std::vector<sim::ModelUnderTest> models;
  models.push_back({"inertial",
                    [&] { return sim::make_inertial_gate(topology, n, sis); },
                    true});
  models.push_back(
      {"pure", [&] { return sim::make_pure_gate(topology, n, sis); }, false});
  models.push_back({"hm",
                    [&] {
                      return std::make_unique<sim::HybridGateChannel>(
                          fit.params);
                    },
                    false});

  waveform::TraceConfig cfg;
  cfg.mu = 400e-12;
  cfg.sigma = 200e-12;
  cfg.n_transitions = 40;
  sim::AccuracyOptions opts;
  opts.repetitions = reps;
  const auto result = sim::evaluate_gate_accuracy(tech, cell, cfg, models, opts);

  table.add_row({spice::cell_name(cell),
                 util::fmt(result.models[0].mean_area / units::ps, 1),
                 util::fmt(result.models[1].normalized, 3),
                 util::fmt(result.models[2].normalized, 3),
                 util::fmt(fit.rms_error / units::ps, 2)});
  if (out != nullptr) {
    out->row_text({spice::cell_name(cell), std::to_string(n),
                   util::fmt(result.models[0].mean_area / units::ps, 3),
                   util::fmt(result.models[1].normalized, 4),
                   util::fmt(result.models[2].normalized, 4),
                   util::fmt(fit.rms_error / units::ps, 3)});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace charlie;
  util::Cli cli(argc, argv);
  const int n_points = cli.get_int("--points", 13);
  const bool csv = cli.has_flag("--csv");
  const bool gates = cli.has_flag("--gates");
  const int reps = cli.get_int("--reps", 2);
  cli.finish();

  // 1. The device under test: a Level-1 transistor netlist of the NOR2
  //    with parasitics (stand-in for the paper's Spectre testbench).
  const auto tech = spice::Technology::freepdk15_like();

  // 2. Characterize: six characteristic Charlie delays from six transient
  //    analyses.
  std::cout << "Measuring characteristic delays on the analog substrate...\n";
  const auto sub = spice::measure_characteristics(tech);

  // 3. Fit the hybrid model (picks delta_min by the ratio rule, then
  //    least-squares on R1..R4, C_N, C_O).
  core::CharacteristicDelays targets;
  targets.fall_minus_inf = sub.fall_minus_inf;
  targets.fall_zero = sub.fall_zero;
  targets.fall_plus_inf = sub.fall_plus_inf;
  targets.rise_minus_inf = sub.rise_minus_inf;
  targets.rise_zero = sub.rise_zero;
  targets.rise_plus_inf = sub.rise_plus_inf;
  core::FitOptions opts;
  opts.vdd = tech.vdd;
  const auto fit = core::fit_nor_params(targets, opts);
  std::cout << "Fitted: " << fit.params.to_string() << "\n"
            << "RMS error over targets: " << units::format_time(fit.rms_error)
            << "\n\n";

  // 4. Sweep Delta and compare.
  const core::NorDelayModel model(fit.params);
  util::TextTable table({"Delta [ps]", "fall model", "fall analog",
                         "rise model", "rise analog"});
  std::unique_ptr<util::CsvWriter> out;
  if (csv) {
    out = std::make_unique<util::CsvWriter>(
        "example_out/mis_sweep.csv",
        std::vector<std::string>{"delta_ps", "fall_model_ps",
                                 "fall_analog_ps", "rise_model_ps",
                                 "rise_analog_ps"});
  }
  for (double delta : math::linspace(-60e-12, 60e-12, n_points)) {
    const double fm = model.falling_delay(delta).delay / units::ps;
    const double fs =
        spice::measure_falling_delay(tech, delta).delay / units::ps;
    const double rm = model.rising_delay(delta, 0.0).delay / units::ps;
    const double rs =
        spice::measure_rising_delay(tech, delta,
                                    spice::NorHistory::kInternalDrained)
            .delay /
        units::ps;
    table.add_row({delta / units::ps, fm, fs, rm, rs}, 2);
    if (out) out->row({delta / units::ps, fm, fs, rm, rs});
  }
  table.print(std::cout);
  std::cout << "\nNote the falling curve's tight match and the rising "
               "curve's missing bump\nnear Delta = 0 -- the model "
               "limitation the paper documents.\n";
  if (csv) std::cout << "CSV written to example_out/mis_sweep.csv\n";

  if (gates) {
    // 5. Multi-input gates: characterize, fit, and compare deviation areas
    //    on an MIS-heavy random workload (hybrid vs the SIS baselines).
    std::cout << "\nMulti-input cells (deviation areas vs analog golden, "
                 "normalized to inertial):\n";
    util::TextTable gate_table({"cell", "inertial [ps]", "pure (norm)",
                                "hm (norm)", "fit RMS [ps]"});
    std::unique_ptr<util::CsvWriter> gate_out;
    if (csv) {
      gate_out = std::make_unique<util::CsvWriter>(
          "example_out/multi_input_accuracy.csv",
          std::vector<std::string>{"cell", "n_inputs", "inertial_area_ps",
                                   "pure_normalized", "hm_normalized",
                                   "fit_rms_ps"});
    }
    for (auto cell : {spice::CellKind::kNor3, spice::CellKind::kNand2,
                      spice::CellKind::kNand3}) {
      std::cout << "  characterizing + fitting " << spice::cell_name(cell)
                << "...\n";
      report_gate_accuracy(tech, cell, reps, gate_table, gate_out.get());
    }
    gate_table.print(std::cout);
    std::cout << "\nThe hybrid channel tracks multi-input switching "
                 "(normalized area well below 1)\nwhere the pure-delay "
                 "channel cannot; the inertial baseline defines 1.0.\n";
    if (csv) {
      std::cout << "CSV written to example_out/multi_input_accuracy.csv\n";
    }
  }
  return 0;
}
