// MIS characterization sweep: measure a transistor-level NOR2 on the
// analog substrate, fit the hybrid model to it, and print/export the
// model-vs-analog delay curves (the Fig 5 / Fig 6 workflow as a library
// use case).
//
//   $ ./examples/mis_sweep [--points N] [--csv]
#include <iostream>

#include "core/delay_model.hpp"
#include "core/parametrize.hpp"
#include "spice/characterize.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/math.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace charlie;
  util::Cli cli(argc, argv);
  const int n_points = cli.get_int("--points", 13);
  const bool csv = cli.has_flag("--csv");
  cli.finish();

  // 1. The device under test: a Level-1 transistor netlist of the NOR2
  //    with parasitics (stand-in for the paper's Spectre testbench).
  const auto tech = spice::Technology::freepdk15_like();

  // 2. Characterize: six characteristic Charlie delays from six transient
  //    analyses.
  std::cout << "Measuring characteristic delays on the analog substrate...\n";
  const auto sub = spice::measure_characteristics(tech);

  // 3. Fit the hybrid model (picks delta_min by the ratio rule, then
  //    least-squares on R1..R4, C_N, C_O).
  core::CharacteristicDelays targets;
  targets.fall_minus_inf = sub.fall_minus_inf;
  targets.fall_zero = sub.fall_zero;
  targets.fall_plus_inf = sub.fall_plus_inf;
  targets.rise_minus_inf = sub.rise_minus_inf;
  targets.rise_zero = sub.rise_zero;
  targets.rise_plus_inf = sub.rise_plus_inf;
  core::FitOptions opts;
  opts.vdd = tech.vdd;
  const auto fit = core::fit_nor_params(targets, opts);
  std::cout << "Fitted: " << fit.params.to_string() << "\n"
            << "RMS error over targets: " << units::format_time(fit.rms_error)
            << "\n\n";

  // 4. Sweep Delta and compare.
  const core::NorDelayModel model(fit.params);
  util::TextTable table({"Delta [ps]", "fall model", "fall analog",
                         "rise model", "rise analog"});
  std::unique_ptr<util::CsvWriter> out;
  if (csv) {
    out = std::make_unique<util::CsvWriter>(
        "example_out/mis_sweep.csv",
        std::vector<std::string>{"delta_ps", "fall_model_ps",
                                 "fall_analog_ps", "rise_model_ps",
                                 "rise_analog_ps"});
  }
  for (double delta : math::linspace(-60e-12, 60e-12, n_points)) {
    const double fm = model.falling_delay(delta).delay / units::ps;
    const double fs =
        spice::measure_falling_delay(tech, delta).delay / units::ps;
    const double rm = model.rising_delay(delta, 0.0).delay / units::ps;
    const double rs =
        spice::measure_rising_delay(tech, delta,
                                    spice::NorHistory::kInternalDrained)
            .delay /
        units::ps;
    table.add_row({delta / units::ps, fm, fs, rm, rs}, 2);
    if (out) out->row({delta / units::ps, fm, fs, rm, rs});
  }
  table.print(std::cout);
  std::cout << "\nNote the falling curve's tight match and the rising "
               "curve's missing bump\nnear Delta = 0 -- the model "
               "limitation the paper documents.\n";
  if (csv) std::cout << "CSV written to example_out/mis_sweep.csv\n";
  return 0;
}
