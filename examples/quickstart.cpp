// Quickstart: the hybrid NOR delay model in five minutes.
//
// Builds the model with the paper's Table I parameters, queries MIS delays,
// and shows the Charlie effect (the delay dependence on the input
// separation Delta = tB - tA).
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/charlie_delays.hpp"
#include "core/delay_model.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace charlie;

  // 1. Parameters: the paper's fitted values for a FreePDK15 NOR2.
  const core::NorParams params = core::NorParams::paper_table1();
  std::cout << "Model parameters (paper Table I):\n  " << params.to_string()
            << "\n\n";

  // 2. The delay model. Falling output: both inputs rise, the delay is
  //    measured from the earlier one. Rising output: both inputs fall,
  //    measured from the later one.
  const core::NorDelayModel model(params);

  std::cout << "Falling-output MIS delay (the Charlie speed-up):\n";
  util::TextTable fall({"Delta [ps]", "delay [ps]"});
  for (double delta_ps : {-60.0, -30.0, -10.0, 0.0, 10.0, 30.0, 60.0}) {
    const auto r = model.falling_delay(delta_ps * units::ps);
    fall.add_row({delta_ps, r.delay / units::ps}, 2);
  }
  fall.print(std::cout);
  std::cout << "  -> minimum at Delta = 0: simultaneous rising inputs close "
               "both pull-down\n     transistors, draining the output "
               "twice as fast.\n\n";

  std::cout << "Rising-output MIS delay (series p-stack history):\n";
  util::TextTable rise({"Delta [ps]", "VN=GND [ps]", "VN=VDD [ps]"});
  for (double delta_ps : {-60.0, -20.0, 0.0, 20.0, 60.0}) {
    const auto gnd = model.rising_delay(delta_ps * units::ps, 0.0);
    const auto vdd = model.rising_delay(delta_ps * units::ps, params.vdd);
    rise.add_row({delta_ps, gnd.delay / units::ps, vdd.delay / units::ps}, 2);
  }
  rise.print(std::cout);
  std::cout << "  -> the internal node's history (V_N when the gate entered "
               "(1,1)) shifts\n     the Delta < 0 branch.\n\n";

  // 3. Characteristic Charlie delays: the six values that summarize a
  //    gate's MIS behaviour and drive parametrization (paper Section V).
  const auto chars = core::characteristic_delays_exact(params);
  std::cout << "Characteristic Charlie delays:\n"
            << "  fall(-inf/0/+inf): "
            << units::format_time(chars.fall_minus_inf) << " / "
            << units::format_time(chars.fall_zero) << " / "
            << units::format_time(chars.fall_plus_inf) << "\n"
            << "  rise(-inf/0/+inf): "
            << units::format_time(chars.rise_minus_inf) << " / "
            << units::format_time(chars.rise_zero) << " / "
            << units::format_time(chars.rise_plus_inf) << "\n";
  return 0;
}
