// Parametrize a hybrid NOR model from externally measured characteristic
// delays -- the workflow a user follows when they have their own SPICE
// characterization data instead of our built-in substrate.
//
//   $ ./examples/parametrize_gate \
//       --fall-minus-inf-ps 38 --fall-zero-ps 28 --fall-plus-inf-ps 39 \
//       --rise-minus-inf-ps 55.4 --rise-zero-ps 56.5 --rise-plus-inf-ps 53
//
// Defaults are the paper's Fig 2 values, so running it bare reproduces the
// Section V parametrization including delta_min = 18 ps.
#include <iostream>

#include "core/charlie_delays.hpp"
#include "core/delay_model.hpp"
#include "core/parametrize.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace charlie;
  util::Cli cli(argc, argv);
  core::CharacteristicDelays targets;
  targets.fall_minus_inf =
      cli.get_double("--fall-minus-inf-ps", 38.0) * units::ps;
  targets.fall_zero = cli.get_double("--fall-zero-ps", 28.0) * units::ps;
  targets.fall_plus_inf =
      cli.get_double("--fall-plus-inf-ps", 39.0) * units::ps;
  targets.rise_minus_inf =
      cli.get_double("--rise-minus-inf-ps", 55.4) * units::ps;
  targets.rise_zero = cli.get_double("--rise-zero-ps", 56.5) * units::ps;
  targets.rise_plus_inf =
      cli.get_double("--rise-plus-inf-ps", 53.0) * units::ps;
  const double vdd = cli.get_double("--vdd", 0.8);
  const bool fit_dmin = cli.has_flag("--fit-delta-min");
  cli.finish();

  std::cout << "Target characteristic delays:\n"
            << "  fall(-inf/0/+inf): "
            << units::format_time(targets.fall_minus_inf) << " / "
            << units::format_time(targets.fall_zero) << " / "
            << units::format_time(targets.fall_plus_inf) << "\n"
            << "  rise(-inf/0/+inf): "
            << units::format_time(targets.rise_minus_inf) << " / "
            << units::format_time(targets.rise_zero) << " / "
            << units::format_time(targets.rise_plus_inf) << "\n\n";

  // The ratio argument of paper Section IV: the raw RC model can only
  // achieve fall(-inf)/fall(0) ~ (R3+R4)/R3 ~ 2, so a pure delay is
  // subtracted first.
  const double dmin_rule = core::delta_min_for_ratio(
      targets.fall_minus_inf, targets.fall_zero);
  std::cout << "delta_min from the ratio-2 rule: "
            << units::format_time(dmin_rule)
            << "   (paper: 18 ps for the 38/28 ps targets)\n\n";

  core::FitOptions opts;
  opts.vdd = vdd;
  opts.fit_delta_min = fit_dmin;
  std::cout << "Fitting (Nelder-Mead + Levenberg-Marquardt in log space)...\n";
  const auto fit = core::fit_nor_params(targets, opts);

  std::cout << "\nResult: " << fit.params.to_string() << "\n"
            << "objective " << fit.objective << ", RMS error "
            << units::format_time(fit.rms_error) << ", "
            << fit.evaluations << " evaluations\n\n";

  util::TextTable table({"quantity", "target [ps]", "achieved [ps]"});
  const auto& a = fit.achieved;
  auto row = [&](const char* name, double t, double v) {
    table.add_row({name, util::fmt(t / units::ps, 2),
                   util::fmt(v / units::ps, 2)});
  };
  row("fall(-inf)", targets.fall_minus_inf, a.fall_minus_inf);
  row("fall(0)", targets.fall_zero, a.fall_zero);
  row("fall(+inf)", targets.fall_plus_inf, a.fall_plus_inf);
  row("rise(-inf)", targets.rise_minus_inf, a.rise_minus_inf);
  row("rise(0)", targets.rise_zero, a.rise_zero);
  row("rise(+inf)", targets.rise_plus_inf, a.rise_plus_inf);
  table.print(std::cout);
  std::cout << "\nNote: rise(0) generally cannot be matched for the GND "
               "history -- the model's\nrising MIS peak deficiency (paper "
               "Section IV).\n";
  return 0;
}
