// Stand-alone use of the analog substrate: build transistor netlists,
// run DC and transient analyses, extract delays -- without any of the
// hybrid-model machinery. Demonstrates the substrate as a reusable
// SPICE-class library.
//
//   $ ./examples/spice_playground
#include <iostream>

#include "spice/cells.hpp"
#include "spice/dcop.hpp"
#include "spice/transient.hpp"
#include "util/table.hpp"
#include "util/units.hpp"
#include "waveform/digitize.hpp"
#include "waveform/edges.hpp"

int main() {
  using namespace charlie;
  const auto tech = spice::Technology::freepdk15_like();

  // --- 1. Inverter voltage transfer curve --------------------------------
  std::cout << "Inverter VTC (DC sweep):\n";
  util::TextTable vtc({"vin [V]", "vout [V]"});
  for (int i = 0; i <= 8; ++i) {
    const double vin = tech.vdd * i / 8.0;
    spice::Netlist nl;
    const auto inv = spice::build_inverter(nl, tech);
    nl.add_vsource(inv.vdd, spice::kGround, tech.vdd);
    nl.add_vsource(inv.in, spice::kGround, vin);
    const auto x = spice::dc_operating_point(nl);
    vtc.add_row({vin, x[inv.out - 1]}, 3);
  }
  vtc.print(std::cout);

  // --- 2. Ring-like chain delay -------------------------------------------
  std::cout << "\nThree-inverter chain, per-stage delays:\n";
  spice::Netlist nl;
  const auto vdd = nl.node("vdd");
  nl.add_vsource(vdd, spice::kGround, tech.vdd);
  const auto i1 = spice::build_inverter(nl, tech, "s1_");
  const auto i2 = spice::build_inverter(nl, tech, "s2_");
  const auto i3 = spice::build_inverter(nl, tech, "s3_");
  nl.add_resistor(i1.out, i2.in, 1.0);
  nl.add_resistor(i2.out, i3.in, 1.0);
  waveform::EdgeParams edges;
  edges.v_high = tech.vdd;
  edges.rise_time = tech.input_rise_time;
  const waveform::DigitalTrace step_trace(false, {300e-12});
  nl.add_vsource_pwl(i1.in, spice::kGround,
                     waveform::slew_limited_waveform(step_trace, edges, 0.0,
                                                     2.5e-9));
  spice::TransientOptions topts;
  topts.t_end = 2.5e-9;
  const auto tr = spice::transient_analysis(
      nl, {"s1_out", "s2_out", "s3_out"}, topts);
  util::TextTable stages({"stage", "output crossing [ps]", "stage delay [ps]"});
  double prev = 300e-12;
  int idx = 1;
  for (const char* node : {"s1_out", "s2_out", "s3_out"}) {
    const auto dig = waveform::digitize(tr.wave(node), tech.vth());
    const double t = dig.transitions().at(0);
    stages.add_row({std::string("inv") + std::to_string(idx),
                    util::fmt(t / units::ps, 2),
                    util::fmt((t - prev) / units::ps, 2)});
    prev = t;
    ++idx;
  }
  stages.print(std::cout);
  std::cout << "steps accepted: " << tr.n_accepted
            << ", rejected: " << tr.n_rejected << "\n";

  // --- 3. NAND2 MIS check (the dual of the paper's NOR) ------------------
  std::cout << "\nNAND2 falling-output MIS (series nMOS => slow-down, the "
               "dual of the NOR's speed-up):\n";
  util::TextTable nandt({"Delta [ps]", "delay [ps]"});
  for (double delta : {-100e-12, -20e-12, 0.0, 20e-12, 100e-12}) {
    // Both inputs rise; output falls through the series n-stack.
    spice::Netlist nn;
    const auto nand = spice::build_nand2(nn, tech);
    nn.add_vsource(nand.vdd, spice::kGround, tech.vdd);
    const double t0 = 400e-12;
    const double ta = delta >= 0.0 ? t0 : t0 - delta;
    const double tb = ta + delta;
    const waveform::DigitalTrace a(false, {ta});
    const waveform::DigitalTrace b(false, {tb});
    nn.add_vsource_pwl(nand.a, spice::kGround,
                       waveform::slew_limited_waveform(a, edges, 0.0, 1.5e-9));
    nn.add_vsource_pwl(nand.b, spice::kGround,
                       waveform::slew_limited_waveform(b, edges, 0.0, 1.5e-9));
    spice::TransientOptions to2;
    to2.t_end = 1.5e-9;
    const auto r = spice::transient_analysis(nn, {"o"}, to2);
    const auto dig = waveform::digitize(r.wave("o"), tech.vth());
    const double t_out = dig.transitions().at(0);
    nandt.add_row({delta / units::ps,
                   (t_out - std::max(ta, tb)) / units::ps},
                  2);
  }
  nandt.print(std::cout);
  std::cout << "(delay measured from the LATER input: for the NAND the "
               "output only falls\n once both series nMOS conduct)\n";
  return 0;
}
