// Monte-Carlo batch simulation demo: N randomized traces through a chain
// of MIS-aware NOR gates, spread over a worker pool, with aggregated
// delay histograms. Results are bit-identical for any thread count.
//
//   ./example_monte_carlo [n_runs] [n_threads]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/mode_tables.hpp"
#include "sim/batch_runner.hpp"
#include "sim/hybrid_nor_channel.hpp"
#include "util/units.hpp"

using namespace charlie;

namespace {

void print_histogram(const char* title, const sim::Histogram& h) {
  std::printf("%s: n=%llu mean=%s\n", title,
              static_cast<unsigned long long>(h.count()),
              units::format_time(h.mean()).c_str());
  std::uint64_t peak = 1;
  for (const auto count : h.bins()) peak = std::max(peak, count);
  const double bin_width =
      (h.hi() - h.lo()) / static_cast<double>(h.bins().size());
  for (std::size_t i = 0; i < h.bins().size(); ++i) {
    const double lo = h.lo() + static_cast<double>(i) * bin_width;
    const int stars =
        static_cast<int>(50.0 * static_cast<double>(h.bins()[i]) /
                         static_cast<double>(peak));
    std::printf("  %8s |%.*s%s\n", units::format_time(lo).c_str(), stars,
                "**************************************************",
                h.bins()[i] > 0 && stars == 0 ? "." : "");
  }
  if (h.overflow() > 0) {
    std::printf("  (+%llu above range)\n",
                static_cast<unsigned long long>(h.overflow()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n_runs =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 64;
  const std::size_t n_threads =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 0;

  // One shared mode table for all gate instances in all worker clones.
  const auto tables =
      core::NorModeTables::make(core::NorParams::paper_table1());
  auto factory = [tables] {
    auto circuit = std::make_unique<sim::Circuit>();
    auto a = circuit->add_input("a");
    auto b = circuit->add_input("b");
    for (int stage = 0; stage < 3; ++stage) {
      const auto next = circuit->add_nor2_mis(
          "n" + std::to_string(stage), a, b,
          std::make_unique<sim::HybridNorChannel>(tables));
      a = b;
      b = next;
    }
    circuit->add_nor2_mis("out", a, b,
                          std::make_unique<sim::HybridNorChannel>(tables));
    return circuit;
  };

  sim::BatchConfig config;
  config.trace.mu = 150e-12;
  config.trace.sigma = 60e-12;
  config.trace.n_transitions = 400;
  config.n_runs = n_runs;
  config.n_threads = n_threads;
  config.base_seed = 2022;

  sim::BatchRunner runner(factory, "out", config);
  const auto result = runner.run();

  std::printf("runs            : %zu (threads: %zu)\n", result.n_runs,
              result.n_threads);
  std::printf("engine events   : %lld\n", result.total_events);
  std::printf("out transitions : %lld\n", result.total_output_transitions);
  print_histogram("output pulse width", result.pulse_width);
  print_histogram("response delay", result.response_delay);
  return 0;
}
