// Monte-Carlo batch simulation demo: N randomized traces through a
// netlist-built chain of MIS-aware NOR gates, spread over a worker pool,
// with aggregated delay histograms. Results are bit-identical for any
// thread count.
//
// The circuit comes from the cell-library front-end: a structural netlist
// (embedded below, or any file in docs/netlist_format.md syntax) is parsed
// once and re-instantiated per worker clone by sim::CircuitBuilder; all
// clones share the library's per-cell mode tables, so the mode derivation
// happens exactly once per cell no matter how many runs or threads.
//
//   ./example_monte_carlo [n_runs] [n_threads] [netlist_file] [max_events] \
//                         [sigma_vdd=S] [sigma_vth=S] [sigma_drive=S]
//                         [grid=N] [deadline=T] [trace_out=F] \
//                         [metrics_out=F] [vcd_out=F]
//
// Observability knobs (docs/observability.md): trace_out=F arms the
// execution tracer around the batch and writes Chrome trace-event JSON to
// F (load in Perfetto); metrics_out=F writes the batch's aggregated
// obs::MetricsRegistry as JSON; vcd_out=F captures run 0's input and
// observed-net traces and writes them as a VCD waveform (load in GTKWave).
//
// The observed nets are the netlist's `output(...)` declarations (all of
// them -- each gets its own aggregate); a netlist without declarations
// falls back to the last instance's output. Try
// examples/netlists/c432.net for a large multi-output workload.
//
// Variation mode: any non-zero sigma_* knob (key=value arguments, any
// position) switches the batch to statistical timing -- every run draws its
// own process sample (supply scale, threshold shift, drive scale) from a
// counter-based stream, the per-worker circuit clones are rebound through
// the collocation grid (`grid=N` points per active axis), and the report
// grows the critical-delay distribution: mean/stddev, quantiles, yield
// against `deadline=T` (seconds), and per-net criticality counts. See
// docs/statistical_timing.md.
//
// Every run executes under a RunGuard: an optional per-run event budget
// (4th argument; 0 = unlimited) plus the numerical-guard telemetry. The
// health section at the end summarizes per-run outcomes and any
// degradation-path counters (docs/robustness.md).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/batch_runner.hpp"
#include "sim/circuit_builder.hpp"
#include "sim/run_guard.hpp"
#include "util/units.hpp"
#include "waveform/vcd.hpp"

using namespace charlie;

namespace {

// The PR-2 four-stage NOR chain, now as a netlist.
constexpr const char* kNorChain = R"(
input(a, b)
NOR2(n0, a, b)
NOR2(n1, b, n0)
NOR2(n2, n0, n1)
NOR2(out, n1, n2)
)";

void print_histogram(const char* title, const sim::Histogram& h) {
  std::printf("%s: n=%llu mean=%s\n", title,
              static_cast<unsigned long long>(h.count()),
              units::format_time(h.mean()).c_str());
  std::uint64_t peak = 1;
  for (const auto count : h.bins()) peak = std::max(peak, count);
  const double bin_width =
      (h.hi() - h.lo()) / static_cast<double>(h.bins().size());
  for (std::size_t i = 0; i < h.bins().size(); ++i) {
    const double lo = h.lo() + static_cast<double>(i) * bin_width;
    const int stars =
        static_cast<int>(50.0 * static_cast<double>(h.bins()[i]) /
                         static_cast<double>(peak));
    std::printf("  %8s |%.*s%s\n", units::format_time(lo).c_str(), stars,
                "**************************************************",
                h.bins()[i] > 0 && stars == 0 ? "." : "");
  }
  if (h.overflow() > 0) {
    std::printf("  (+%llu above range)\n",
                static_cast<unsigned long long>(h.overflow()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  // key=value knobs may sit at any position; the rest stay positional.
  sim::ProcessVariation variation;
  double deadline = 0.0;
  std::string trace_out;
  std::string metrics_out;
  std::string vcd_out;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      positional.push_back(arg);
      continue;
    }
    const std::string key = arg.substr(0, eq);
    if (key == "trace_out") {
      trace_out = arg.substr(eq + 1);
      continue;
    }
    if (key == "metrics_out") {
      metrics_out = arg.substr(eq + 1);
      continue;
    }
    if (key == "vcd_out") {
      vcd_out = arg.substr(eq + 1);
      continue;
    }
    const double value = std::atof(arg.c_str() + eq + 1);
    if (key == "sigma_vdd") {
      variation.vdd_sigma = value;
    } else if (key == "sigma_vth") {
      variation.vth_sigma = value;
    } else if (key == "sigma_drive") {
      variation.drive_sigma = value;
    } else if (key == "grid") {
      variation.grid_levels = static_cast<int>(value);
    } else if (key == "deadline") {
      deadline = value;
    } else {
      std::fprintf(stderr, "unknown knob \"%s\"\n", key.c_str());
      return 1;
    }
  }
  const std::size_t n_runs =
      !positional.empty()
          ? static_cast<std::size_t>(std::atoi(positional[0].c_str()))
          : 64;
  const std::size_t n_threads =
      positional.size() > 1
          ? static_cast<std::size_t>(std::atoi(positional[1].c_str()))
          : 0;
  const long max_events =
      positional.size() > 3 ? std::atol(positional[3].c_str()) : 0;

  // Characterize-once / instantiate-many: the reference library derives
  // each cell's mode tables a single time; every worker clone below shares
  // them through the specs.
  const auto library =
      std::make_shared<const cell::CellLibrary>(cell::CellLibrary::reference());
  const cell::NetlistDesc netlist =
      positional.size() > 2 && !positional[2].empty()
          ? cell::read_netlist_file(positional[2])
          : cell::parse_netlist(kNorChain);  // "" = embedded chain
  if (netlist.instances.empty()) {
    std::fprintf(stderr, "netlist has no gates\n");
    return 1;
  }
  std::vector<std::string> out_nets = netlist.outputs;
  if (out_nets.empty()) out_nets.push_back(netlist.instances.back().output);

  sim::CircuitBuilder builder(library);
  auto factory = [&builder, &netlist] { return builder.build(netlist); };

  sim::BatchConfig config;
  config.trace.mu = 150e-12;
  config.trace.sigma = 60e-12;
  config.trace.n_transitions = 400;
  config.n_runs = n_runs;
  config.n_threads = n_threads;
  config.base_seed = 2022;
  config.budget.max_events = max_events;  // 0 = unlimited
  config.variation = variation;
  config.stat_deadline = deadline;
  if (!vcd_out.empty()) config.capture_run = 0;

  sim::BatchRunner runner(factory, out_nets, config);
  if (!trace_out.empty()) obs::TraceRecorder::start();
  const auto result = runner.run();
  if (!trace_out.empty()) {
    obs::TraceRecorder::stop();
    const auto snapshot = obs::TraceRecorder::collect();
    obs::write_chrome_trace(snapshot, trace_out);
    std::printf("trace           : %zu events -> %s\n", snapshot.events.size(),
                trace_out.c_str());
  }
  if (!metrics_out.empty()) {
    result.metrics.write_json(metrics_out);
    std::printf("metrics         : %s\n", metrics_out.c_str());
  }
  if (!vcd_out.empty()) {
    std::vector<waveform::VcdDigitalSignal> signals;
    signals.reserve(result.captured.size());
    for (const auto& captured : result.captured) {
      signals.push_back({captured.net, &captured.trace});
    }
    waveform::write_vcd(vcd_out, signals);
    std::printf("vcd             : run 0, %zu signals -> %s\n", signals.size(),
                vcd_out.c_str());
  }

  std::printf("gates           : %zu (observing %zu net%s)\n",
              netlist.n_gates(), out_nets.size(),
              out_nets.size() == 1 ? "" : "s");
  std::printf("runs            : %zu (threads: %zu)\n", result.n_runs,
              result.n_threads);
  std::printf("engine events   : %lld\n", result.total_events);
  for (const auto& agg : result.nets) {
    std::printf("net %-12s: %lld transitions, mean pulse %s, mean response "
                "%s\n",
                agg.net.c_str(), agg.transitions,
                units::format_time(agg.pulse_width.mean()).c_str(),
                units::format_time(agg.response_delay.mean()).c_str());
  }
  print_histogram("output pulse width", result.pulse_width);
  print_histogram("response delay", result.response_delay);

  // Statistical timing report (variation mode): the critical-delay
  // distribution across process samples.
  if (variation.enabled()) {
    const sim::BatchStats& st = result.stats;
    std::printf("process sigmas  : vdd %.3g, vth %.3g V, drive %.3g "
                "(grid %d^axis, clamp %.1f sigma)\n",
                variation.vdd_sigma, variation.vth_sigma,
                variation.drive_sigma, variation.grid_levels,
                variation.max_sigma);
    std::printf("critical delay  : n=%zu mean=%s stddev=%s min=%s max=%s\n",
                st.n_samples, units::format_time(st.mean).c_str(),
                units::format_time(st.stddev).c_str(),
                units::format_time(st.min).c_str(),
                units::format_time(st.max).c_str());
    for (const auto& [q, value] : st.quantiles) {
      std::printf("  q%-5.3g       : %s\n", 100.0 * q,
                  units::format_time(value).c_str());
    }
    if (st.deadline > 0.0) {
      std::printf("yield           : %.1f%% (%zu/%zu meet %s)\n",
                  100.0 * st.yield, st.n_meeting_deadline, st.n_samples,
                  units::format_time(st.deadline).c_str());
    }
    std::printf("criticality     :");
    for (const auto& [net, count] : result.criticality_ranking()) {
      std::printf(" %s=%llu", net.c_str(),
                  static_cast<unsigned long long>(count));
    }
    std::printf("\n");
  }

  // Run health: per-run outcomes plus the numerical degradation-path
  // telemetry, read back from the batch's metrics registry (the per-run
  // RunCounters fold into it during the run-order reduction).
  std::size_t per_status[5] = {};
  for (const auto& diag : result.diagnostics) {
    ++per_status[static_cast<std::size_t>(diag.status)];
  }
  std::printf("run health      : %zu/%zu ok", result.n_runs - result.n_failed,
              result.n_runs);
  for (const sim::RunStatus status :
       {sim::RunStatus::kBudgetExhausted, sim::RunStatus::kDeadlineExceeded,
        sim::RunStatus::kCancelled, sim::RunStatus::kFailed}) {
    const std::size_t n = per_status[static_cast<std::size_t>(status)];
    if (n > 0) std::printf(", %zu %s", n, sim::to_string(status));
  }
  std::printf("\n");
  const long long newton_brent =
      result.metrics.counter("run.newton_brent_fallbacks");
  const long long scan = result.metrics.counter("run.scan_fallbacks");
  const long long nonfinite =
      result.metrics.counter("run.nonfinite_guard_trips");
  if (newton_brent + scan + nonfinite +
          result.metrics.counter("run.fit_fallbacks") >
      0) {
    std::printf("guard telemetry : %lld newton->brent, %lld scan fallbacks, "
                "%lld non-finite trips\n",
                newton_brent, scan, nonfinite);
  }
  for (std::size_t run = 0; run < result.diagnostics.size(); ++run) {
    const auto& diag = result.diagnostics[run];
    if (diag.status != sim::RunStatus::kOk) {
      std::printf("  run %zu: %s\n", run, diag.summary().c_str());
    }
  }
  return result.all_ok() ? 0 : 1;
}
