// Reproduces paper Fig 2: analog (substrate) MIS delays of the NOR gate.
//   Fig 2a/2c -- waveform CSV dumps (with --csv)
//   Fig 2b    -- falling-output delay over input separation Delta
//   Fig 2d    -- rising-output delay over Delta
// Printed percentages correspond to the paper's -28.01/-28.43 % (falling)
// and +2.08/+7.26 % (rising) annotations.
#include <iostream>

#include "bench_common.hpp"
#include "util/math.hpp"
#include "waveform/digital_trace.hpp"

int main(int argc, char** argv) {
  using namespace charlie;
  util::Cli cli(argc, argv);
  const int n_points = cli.get_int("--points", 25);
  const double delta_max = cli.get_double("--delta-max-ps", 60.0) * 1e-12;
  const bool csv = cli.has_flag("--csv");
  cli.finish();

  const auto tech = spice::Technology::freepdk15_like();
  std::cout << "=== Fig 2b: falling output delay delta_fall(Delta) ===\n";
  util::TextTable fall({"Delta [ps]", "delay [ps]"});
  double fall_zero = 0.0;
  double fall_minus = 0.0;
  double fall_plus = 0.0;
  std::unique_ptr<util::CsvWriter> fall_csv;
  if (csv) {
    fall_csv = std::make_unique<util::CsvWriter>(
        "bench_out/fig2b_falling.csv",
        std::vector<std::string>{"delta_ps", "delay_ps"});
  }
  for (double delta :
       math::linspace(-delta_max, delta_max, n_points)) {
    const double d = spice::measure_falling_delay(tech, delta).delay;
    fall.add_row({bench::ps(delta), bench::ps(d)}, 2);
    if (fall_csv) fall_csv->row({bench::ps(delta), bench::ps(d)});
    if (delta == -delta_max) fall_minus = d;
    if (delta == delta_max) fall_plus = d;
    if (std::abs(delta) < 1e-15) fall_zero = d;
  }
  fall.print(std::cout);
  std::cout << "speed-up at Delta=0: "
            << util::fmt_percent(fall_zero / fall_minus - 1.0) << " / "
            << util::fmt_percent(fall_zero / fall_plus - 1.0)
            << "   (paper: -28.01 % / -28.43 %)\n\n";

  std::cout << "=== Fig 2d: rising output delay delta_rise(Delta) ===\n";
  util::TextTable rise({"Delta [ps]", "delay [ps]"});
  double rise_zero = 0.0;
  double rise_minus = 0.0;
  double rise_plus = 0.0;
  std::unique_ptr<util::CsvWriter> rise_csv;
  if (csv) {
    rise_csv = std::make_unique<util::CsvWriter>(
        "bench_out/fig2d_rising.csv",
        std::vector<std::string>{"delta_ps", "delay_ps"});
  }
  for (double delta :
       math::linspace(-delta_max, delta_max, n_points)) {
    const double d = spice::measure_rising_delay(
                         tech, delta, spice::NorHistory::kInternalDrained)
                         .delay;
    rise.add_row({bench::ps(delta), bench::ps(d)}, 2);
    if (rise_csv) rise_csv->row({bench::ps(delta), bench::ps(d)});
    if (delta == -delta_max) rise_minus = d;
    if (delta == delta_max) rise_plus = d;
    if (std::abs(delta) < 1e-15) rise_zero = d;
  }
  rise.print(std::cout);
  std::cout << "slow-down at Delta=0: "
            << util::fmt_percent(rise_zero / rise_minus - 1.0) << " / "
            << util::fmt_percent(rise_zero / rise_plus - 1.0)
            << "   (paper: +2.08 % / +7.26 %)\n";

  if (csv) {
    // Fig 2a/2c-style waveforms: falling (both inputs rise, Delta=20ps)
    // and rising (both fall) transitions.
    const double t0 = 300e-12;
    {
      waveform::DigitalTrace a(false, {t0});
      waveform::DigitalTrace b(false, {t0 + 20e-12});
      const auto sim = spice::run_nor2(tech, a, b, t0 + 400e-12, {});
      util::CsvWriter w("bench_out/fig2a_waveforms.csv",
                        {"t_ps", "va", "vb", "vo", "vn"});
      for (const auto& s : sim.vo.samples()) {
        w.row({bench::ps(s.t), sim.va.value_at(s.t), sim.vb.value_at(s.t),
               s.v, sim.vn.value_at(s.t)});
      }
    }
    {
      waveform::DigitalTrace a(false, {100e-12, t0 + 200e-12});
      waveform::DigitalTrace b(false, {150e-12, t0 + 220e-12});
      const auto sim = spice::run_nor2(tech, a, b, t0 + 600e-12, {});
      util::CsvWriter w("bench_out/fig2c_waveforms.csv",
                        {"t_ps", "va", "vb", "vo", "vn"});
      for (const auto& s : sim.vo.samples()) {
        w.row({bench::ps(s.t), sim.va.value_at(s.t), sim.vb.value_at(s.t),
               s.v, sim.vn.value_at(s.t)});
      }
    }
    std::cout << "\nCSV dumps written to bench_out/fig2*.csv\n";
  }
  return 0;
}
