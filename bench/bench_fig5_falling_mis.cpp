// Reproduces paper Fig 5: computed MIS delays (hybrid model) vs analog
// reference for falling output transitions -- the paper's "very good fit"
// case.
#include <iostream>

#include "bench_common.hpp"
#include "core/delay_model.hpp"
#include "util/math.hpp"

int main(int argc, char** argv) {
  using namespace charlie;
  util::Cli cli(argc, argv);
  const int n_points = cli.get_int("--points", 25);
  const double delta_max = cli.get_double("--delta-max-ps", 60.0) * 1e-12;
  const bool csv = cli.has_flag("--csv");
  cli.finish();

  const auto cal = bench::calibrate();
  const core::NorDelayModel model(cal.params);

  std::cout << "=== Fig 5: delta_fall -- hybrid model (M) vs analog (S) ===\n";
  util::TextTable t({"Delta [ps]", "model [ps]", "analog [ps]", "error [ps]"});
  std::unique_ptr<util::CsvWriter> out;
  if (csv) {
    out = std::make_unique<util::CsvWriter>(
        "bench_out/fig5_falling.csv",
        std::vector<std::string>{"delta_ps", "model_ps", "analog_ps"});
  }
  double max_err = 0.0;
  double sum_abs = 0.0;
  for (double delta : math::linspace(-delta_max, delta_max, n_points)) {
    const double m = model.falling_delay(delta).delay;
    const double s = spice::measure_falling_delay(cal.tech, delta).delay;
    t.add_row({bench::ps(delta), bench::ps(m), bench::ps(s),
               bench::ps(m - s)},
              2);
    if (out) out->row({bench::ps(delta), bench::ps(m), bench::ps(s)});
    max_err = std::max(max_err, std::abs(m - s));
    sum_abs += std::abs(m - s);
  }
  t.print(std::cout);
  std::cout << "mean |error| = "
            << units::format_time(sum_abs / n_points)
            << ", max |error| = " << units::format_time(max_err) << "\n"
            << "(paper Fig 5 shows the model tracking the analog curve "
               "closely across the whole Delta range)\n";
  if (csv) std::cout << "CSV written to bench_out/fig5_falling.csv\n";
  return 0;
}
