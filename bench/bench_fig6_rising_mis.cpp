// Reproduces paper Fig 6: computed MIS delays for rising output
// transitions, for the three (1,1)-history values V_N in {GND, VDD/2, VDD},
// against the analog reference.
//
// Expected outcome (the paper's honest negative result): none of the
// initial values reproduces the analog slow-down bump around Delta = 0 --
// for V_N = GND the Delta < 0 branch is flat, and the peak is absent.
#include <iostream>

#include "bench_common.hpp"
#include "core/delay_model.hpp"
#include "util/math.hpp"

int main(int argc, char** argv) {
  using namespace charlie;
  util::Cli cli(argc, argv);
  const int n_points = cli.get_int("--points", 19);
  const double delta_max = cli.get_double("--delta-max-ps", 90.0) * 1e-12;
  const bool csv = cli.has_flag("--csv");
  cli.finish();

  const auto cal = bench::calibrate();
  const core::NorDelayModel model(cal.params);
  const double vdd = cal.params.vdd;

  std::cout << "=== Fig 6: delta_rise -- model for VN in {GND, VDD/2, VDD} "
               "vs analog ===\n";
  util::TextTable t({"Delta [ps]", "M|VN=GND", "M|VN=VDD/2", "M|VN=VDD",
                     "analog [ps]"});
  std::unique_ptr<util::CsvWriter> out;
  if (csv) {
    out = std::make_unique<util::CsvWriter>(
        "bench_out/fig6_rising.csv",
        std::vector<std::string>{"delta_ps", "m_gnd_ps", "m_half_ps",
                                 "m_vdd_ps", "analog_ps"});
  }
  double model_peak = 0.0;
  double analog_peak = 0.0;
  double analog_edge = 0.0;
  for (double delta : math::linspace(-delta_max, delta_max, n_points)) {
    const double m0 = model.rising_delay(delta, 0.0).delay;
    const double mh = model.rising_delay(delta, vdd / 2.0).delay;
    const double mv = model.rising_delay(delta, vdd).delay;
    const double s =
        spice::measure_rising_delay(cal.tech, delta,
                                    spice::NorHistory::kInternalDrained)
            .delay;
    t.add_row({bench::ps(delta), bench::ps(m0), bench::ps(mh), bench::ps(mv),
               bench::ps(s)},
              2);
    if (out) {
      out->row({bench::ps(delta), bench::ps(m0), bench::ps(mh),
                bench::ps(mv), bench::ps(s)});
    }
    model_peak = std::max(model_peak, m0);
    analog_peak = std::max(analog_peak, s);
    if (delta == -delta_max) analog_edge = s;
  }
  t.print(std::cout);

  std::cout << "\nanalog MIS peak above its Delta=-inf value: "
            << util::fmt_percent(analog_peak / analog_edge - 1.0) << "\n"
            << "model  (VN=GND) peak above same reference:   "
            << util::fmt_percent(model_peak / analog_edge - 1.0) << "\n"
            << "==> the model misses the rising MIS bump, exactly the "
               "deficiency the paper reports for this case\n";
  if (csv) std::cout << "CSV written to bench_out/fig6_rising.csv\n";
  return 0;
}
