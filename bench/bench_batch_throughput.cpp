// Whole-circuit Monte-Carlo throughput: events/second through the indexed
// event heap, single-thread vs. worker-pool scaling, with shared
// NorModeTables across all gate instances. Complements the per-event
// channel microbenches in bench_runtime_overhead.cpp.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "core/mode_tables.hpp"
#include "sim/batch_runner.hpp"
#include "sim/hybrid_nor_channel.hpp"
#include "util/rng.hpp"
#include "waveform/generator.hpp"

namespace {

using namespace charlie;

// A reconvergent mesh of MIS-aware NOR stages: inputs a, b feed a chain of
// NOR pairs so every stage sees real multi-input switching activity.
sim::CircuitFactory mesh_factory(int n_stages) {
  const auto tables =
      core::NorModeTables::make(core::NorParams::paper_table1());
  return [tables, n_stages] {
    auto circuit = std::make_unique<sim::Circuit>();
    auto a = circuit->add_input("a");
    auto b = circuit->add_input("b");
    sim::Circuit::NetId x = a;
    sim::Circuit::NetId y = b;
    for (int s = 0; s < n_stages; ++s) {
      const auto nx = circuit->add_nor2_mis(
          "x" + std::to_string(s), x, y,
          std::make_unique<sim::HybridNorChannel>(tables));
      const auto ny = circuit->add_nor2_mis(
          "y" + std::to_string(s), y, x,
          std::make_unique<sim::HybridNorChannel>(tables));
      x = nx;
      y = ny;
    }
    circuit->add_nor2_mis("out", x, y,
                          std::make_unique<sim::HybridNorChannel>(tables));
    return circuit;
  };
}

sim::BatchConfig batch_config(std::size_t n_runs, std::size_t n_threads) {
  sim::BatchConfig config;
  config.trace.mu = 150e-12;
  config.trace.sigma = 60e-12;
  config.trace.n_transitions = 200;
  config.n_runs = n_runs;
  config.base_seed = 7;
  config.n_threads = n_threads;
  return config;
}

// The runner (pool + per-worker circuit clones + trace arenas) is built
// once outside the timed loop: each iteration measures the steady-state
// batch, which is what scales with threads. Wall clock (UseRealTime) is
// the scaling headline; process CPU time exposes parallel overhead.
void BM_BatchThroughput(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  auto factory = mesh_factory(4);
  sim::BatchRunner runner(factory, "out", batch_config(16, n_threads));
  long long events = 0;
  for (auto _ : state) {
    const auto result = runner.run();
    events += result.total_events;
    benchmark::DoNotOptimize(result.total_events);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_BatchThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Single simulate() call through the Circuit engine (heap + devirtualized
// eval), for tracking the engine overhead itself: circuit and stimuli are
// built once outside the timed loop, so no BatchRunner / ThreadPool /
// factory construction pollutes the counter.
void BM_CircuitMeshTrace(benchmark::State& state) {
  auto circuit = mesh_factory(4)();
  util::Rng rng(7);
  waveform::TraceConfig trace = batch_config(1, 1).trace;
  const auto stimuli =
      waveform::generate_traces(trace, circuit->n_inputs(), rng);
  double t_last = trace.t_start;
  for (const auto& t : stimuli) {
    if (!t.empty()) t_last = std::max(t_last, t.transitions().back());
  }
  const double t_end = t_last + 1e-9;
  long long events = 0;
  for (auto _ : state) {
    const auto result = circuit->simulate(stimuli, 0.0, t_end);
    events += result.n_events;
    benchmark::DoNotOptimize(result.n_events);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CircuitMeshTrace);

}  // namespace

BENCHMARK_MAIN();
