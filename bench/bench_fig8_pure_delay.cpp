// Reproduces paper Fig 8: falling-delay matching of the hybrid model with
// and without the pure delay delta_min, against the analog reference.
// Without delta_min the whole curve sits ~delta_min too low (the paper's
// explanation for the poor Fig 7 score of "HM without delta_min").
#include <iostream>

#include "bench_common.hpp"
#include "core/delay_model.hpp"
#include "util/math.hpp"

int main(int argc, char** argv) {
  using namespace charlie;
  util::Cli cli(argc, argv);
  const int n_points = cli.get_int("--points", 25);
  const double delta_max = cli.get_double("--delta-max-ps", 60.0) * 1e-12;
  const bool csv = cli.has_flag("--csv");
  cli.finish();

  const auto cal = bench::calibrate();
  const core::NorDelayModel with(cal.params);
  const core::NorDelayModel without(cal.params_stripped);

  std::cout << "=== Fig 8: falling delay -- analog vs HM with/without "
               "delta_min ===\n";
  util::TextTable t(
      {"Delta [ps]", "analog [ps]", "HM w/ dmin [ps]", "HM w/o dmin [ps]"});
  std::unique_ptr<util::CsvWriter> out;
  if (csv) {
    out = std::make_unique<util::CsvWriter>(
        "bench_out/fig8_pure_delay.csv",
        std::vector<std::string>{"delta_ps", "analog_ps", "hm_with_ps",
                                 "hm_without_ps"});
  }
  double err_with = 0.0;
  double err_without = 0.0;
  for (double delta : math::linspace(-delta_max, delta_max, n_points)) {
    const double s = spice::measure_falling_delay(cal.tech, delta).delay;
    const double mw = with.falling_delay(delta).delay;
    const double mo = without.falling_delay(delta).delay;
    t.add_row({bench::ps(delta), bench::ps(s), bench::ps(mw), bench::ps(mo)},
              2);
    if (out) {
      out->row({bench::ps(delta), bench::ps(s), bench::ps(mw),
                bench::ps(mo)});
    }
    err_with += std::abs(mw - s);
    err_without += std::abs(mo - s);
  }
  t.print(std::cout);
  std::cout << "mean |error| with delta_min:    "
            << units::format_time(err_with / n_points) << "\n"
            << "mean |error| without delta_min: "
            << units::format_time(err_without / n_points)
            << "   (~delta_min = "
            << units::format_time(cal.params.delta_min)
            << " systematic shift, as in the paper)\n";
  if (csv) std::cout << "CSV written to bench_out/fig8_pure_delay.csv\n";
  return 0;
}
