// Static-timing-analysis throughput: what a screening pass costs next to
// the Monte-Carlo batch it replaces.
//
// All rows run on generated netlists (cell::generate_netlist, the
// bench_sharded_throughput workload family) against the reference library:
//   * BM_StaGraphBuild:    netlist validation + per-arc extraction (the
//                          one-time TimingGraph construction);
//   * BM_StaAnalyze:       one deterministic arrival/required/slack pass;
//   * BM_StaCriticalPaths: top-5 path enumeration;
//   * BM_StaCorner:        one sampled corner -- at_corner library
//                          derivation, arc re-extraction, analysis (the
//                          per-corner marginal cost);
//   * BM_StaSsta:          one canonical SSTA pass over prebuilt canonical
//                          arcs (the whole-distribution query).
// The ledger tracks elements/s of BM_StaAnalyze: the screening pass must
// stay orders of magnitude cheaper than one event-driven run of the same
// netlist (bench_netlist_throughput) for the screen-then-simulate workflow
// to pay off.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "cell/cell_library.hpp"
#include "cell/netlist_gen.hpp"
#include "sim/process_variation.hpp"
#include "sta/timing_graph.hpp"

namespace {

using namespace charlie;

cell::NetlistDesc bench_netlist(std::size_t n_gates) {
  cell::NetlistGenConfig config;
  config.n_gates = n_gates;
  config.seed = 7;
  return cell::generate_netlist(config);
}

std::shared_ptr<const cell::CellLibrary> bench_library() {
  static const auto library = std::make_shared<const cell::CellLibrary>(
      cell::CellLibrary::reference());
  return library;
}

sim::ProcessVariation bench_variation() {
  sim::ProcessVariation v;
  v.vdd_sigma = 0.02;
  v.vth_sigma = 0.01;
  v.drive_sigma = 0.03;
  return v;
}

void BM_StaGraphBuild(benchmark::State& state) {
  const auto n_gates = static_cast<std::size_t>(state.range(0));
  const cell::NetlistDesc desc = bench_netlist(n_gates);
  const auto library = bench_library();
  for (auto _ : state) {
    const sta::TimingGraph graph(desc, library);
    benchmark::DoNotOptimize(graph.nominal_arcs().elements.size());
  }
  state.counters["elements/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * (desc.n_gates() +
                                                desc.n_wires())),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StaGraphBuild)->Arg(1000)->Arg(10000);

void BM_StaAnalyze(benchmark::State& state) {
  const auto n_gates = static_cast<std::size_t>(state.range(0));
  const cell::NetlistDesc desc = bench_netlist(n_gates);
  const sta::TimingGraph graph(desc, bench_library());
  for (auto _ : state) {
    const sta::TimingResult res = graph.analyze(graph.nominal_arcs(), 0.0);
    benchmark::DoNotOptimize(res.critical_delay);
  }
  state.counters["elements/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * (desc.n_gates() +
                                                desc.n_wires())),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StaAnalyze)->Arg(1000)->Arg(10000);

void BM_StaCriticalPaths(benchmark::State& state) {
  const auto n_gates = static_cast<std::size_t>(state.range(0));
  const cell::NetlistDesc desc = bench_netlist(n_gates);
  const sta::TimingGraph graph(desc, bench_library());
  for (auto _ : state) {
    const auto paths = graph.critical_paths(graph.nominal_arcs(), 5);
    benchmark::DoNotOptimize(paths.size());
  }
}
BENCHMARK(BM_StaCriticalPaths)->Arg(1000)->Arg(10000);

void BM_StaCorner(benchmark::State& state) {
  const auto n_gates = static_cast<std::size_t>(state.range(0));
  const cell::NetlistDesc desc = bench_netlist(n_gates);
  const sta::TimingGraph graph(desc, bench_library());
  const sim::ProcessVariation variation = bench_variation();
  std::uint64_t corner = 0;
  for (auto _ : state) {
    const sta::TimingResult res =
        graph.analyze(graph.arcs_at(variation.sample(7, corner++)), 0.0);
    benchmark::DoNotOptimize(res.critical_delay);
  }
}
BENCHMARK(BM_StaCorner)->Arg(1000);

void BM_StaSsta(benchmark::State& state) {
  const auto n_gates = static_cast<std::size_t>(state.range(0));
  const cell::NetlistDesc desc = bench_netlist(n_gates);
  const sta::TimingGraph graph(desc, bench_library());
  const sta::CanonicalArcSet arcs = graph.canonical_arcs(bench_variation());
  for (auto _ : state) {
    const sta::Canonical delay = graph.analyze_ssta(arcs);
    benchmark::DoNotOptimize(delay.mean);
  }
  state.counters["elements/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * (desc.n_gates() +
                                                desc.n_wires())),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StaSsta)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
