// Reproduces paper Fig 7: average modeling accuracy (deviation area,
// normalized to inertial delay) of
//   * inertial delay,
//   * Exp-Channel (IDM) with delta_min = 20 ps,
//   * hybrid model without pure delay (same R/C, delta_min stripped),
//   * hybrid model with delta_min,
// over the four waveform configurations 100/50-LOCAL, 200/100-LOCAL,
// 2000/1000-GLOBAL, 5000/5-GLOBAL. Lower is better.
//
// Paper defaults are 500 transitions (250 for the last config) and 20
// repetitions; the bench defaults are scaled down for quick runs -- pass
// --full for paper-scale, or set --reps/--scale explicitly. An extra
// "hm refit dmin=0" ablation column (R/C refitted under a forced
// delta_min = 0) can be enabled with --ablation.
#include <iostream>

#include "bench_common.hpp"
#include "sim/accuracy.hpp"
#include "sim/hybrid_nor_channel.hpp"
#include "sim/nor_models.hpp"
#include "sim/surface_nor_channel.hpp"

int main(int argc, char** argv) {
  using namespace charlie;
  util::Cli cli(argc, argv);
  const bool full = cli.has_flag("--full");
  const int reps = cli.get_int("--reps", full ? 20 : 5);
  const int scale = cli.get_int("--scale", full ? 1 : 5);  // divide counts
  const bool ablation = cli.has_flag("--ablation");
  const bool csv = cli.has_flag("--csv");
  cli.finish();

  const auto cal = bench::calibrate();

  sim::SisNorDelays sis;
  sis.rise =
      0.5 * (cal.substrate.rise_minus_inf + cal.substrate.rise_plus_inf);
  sis.fall =
      0.5 * (cal.substrate.fall_minus_inf + cal.substrate.fall_plus_inf);

  core::FitResult fit0;
  std::unique_ptr<core::DelaySurface> surface;
  if (ablation) {
    surface = std::make_unique<core::DelaySurface>(
        core::DelaySurface::build(cal.params, 200e-12, 401));
    core::FitOptions o0;
    o0.vdd = cal.tech.vdd;
    o0.forced_delta_min = 0.0;
    o0.nelder_mead_evaluations = 1500;
    fit0 = core::fit_nor_params(bench::to_targets(cal.substrate), o0);
  }

  std::vector<sim::ModelUnderTest> models;
  models.push_back(
      {"inertial delay", [&] { return sim::make_inertial_nor(sis); }, true});
  models.push_back({"Exp-Channel dmin=20ps",
                    [&] { return sim::make_exp_nor(sis, 20e-12); }, false});
  models.push_back({"HM without dmin",
                    [&] {
                      return std::make_unique<sim::HybridNorChannel>(
                          cal.params_stripped);
                    },
                    false});
  models.push_back({"HM with dmin",
                    [&] {
                      return std::make_unique<sim::HybridNorChannel>(
                          cal.params);
                    },
                    false});
  if (ablation) {
    models.push_back({"HM refit dmin=0",
                      [&] {
                        return std::make_unique<sim::HybridNorChannel>(
                            fit0.params);
                      },
                      false});
    models.push_back({"HM delay-function",
                      [&] {
                        return std::make_unique<sim::SurfaceNorChannel>(
                            *surface);
                      },
                      false});
  }

  std::cout << "=== Fig 7: normalized deviation area (lower = better) ===\n"
            << "repetitions=" << reps << ", transition counts scaled by 1/"
            << scale << "\n\n";

  std::vector<std::string> header{"configuration"};
  for (const auto& m : models) header.push_back(m.name);
  util::TextTable table(header);
  std::unique_ptr<util::CsvWriter> out;
  if (csv) {
    std::vector<std::string> cols{"config"};
    for (const auto& m : models) cols.push_back(m.name);
    out = std::make_unique<util::CsvWriter>("bench_out/fig7_accuracy.csv",
                                            cols);
  }

  for (auto cfg : waveform::paper_fig7_configs()) {
    cfg.n_transitions = std::max<std::size_t>(20, cfg.n_transitions / scale);
    sim::AccuracyOptions opts;
    opts.repetitions = reps;
    const auto result = sim::evaluate_accuracy(cal.tech, cfg, models, opts);
    std::vector<std::string> row{result.config_label};
    std::vector<std::string> csv_row{result.config_label};
    for (const auto& m : result.models) {
      row.push_back(util::fmt(m.normalized, 2));
      csv_row.push_back(util::fmt(m.normalized, 4));
    }
    table.add_row(row);
    if (out) out->row_text(csv_row);
  }
  table.print(std::cout);

  std::cout
      << "\npaper Fig 7 reference (normalized):\n"
      << "  100/50-L   : inertial 1.00, Exp 0.71, HM w/o 1.44, HM 0.52\n"
      << "  200/100-L  : inertial 1.00, Exp 0.72, HM w/o 1.96, HM 0.47\n"
      << "  2000/1000-G: inertial 1.00, Exp 1.60, HM w/o 1.15, HM 0.97\n"
      << "  5000/5-G   : inertial 1.00, Exp 1.65, HM w/o 1.01, HM 1.01\n"
      << "Expected agreements: HM-with-dmin wins for short pulses; HM\n"
      << "without dmin is worse than inertial. See EXPERIMENTS.md for the\n"
      << "discussion of the GLOBAL columns (our fixed-slew substrate has\n"
      << "no common error floor, so HM keeps winning there).\n";
  return 0;
}
