// Reproduces paper Fig 4: temporal evolution of (V_N, V_O) for all four
// mode systems with the paper's initial values (Table I parameters).
//   V_N(0) = V_O(0) = VDD, except system (0,0) starting at GND and
//   system (1,1) with V_N = VDD/2.
#include <iostream>

#include "bench_common.hpp"
#include "core/trajectory.hpp"
#include "util/math.hpp"

int main(int argc, char** argv) {
  using namespace charlie;
  util::Cli cli(argc, argv);
  const int n_points = cli.get_int("--points", 16);
  const double t_end = cli.get_double("--t-end-ps", 150.0) * 1e-12;
  const bool csv = cli.has_flag("--csv");
  cli.finish();

  const auto p = core::NorParams::paper_table1();

  struct Row {
    core::Mode mode;
    ode::Vec2 x0;
  };
  const Row systems[] = {
      {core::Mode::kS00, {0.0, 0.0}},
      {core::Mode::kS01, {p.vdd, p.vdd}},
      {core::Mode::kS10, {p.vdd, p.vdd}},
      {core::Mode::kS11, {p.vdd / 2.0, p.vdd}},
  };

  std::cout << "=== Fig 4: mode trajectories (Table I parameters) ===\n";
  util::TextTable table({"t [ps]", "VN(0,0)", "VN(0,1)", "VN(1,0)",
                         "VN(1,1)", "VO(0,0)", "VO(0,1)", "VO(1,0)",
                         "VO(1,1)"});
  std::unique_ptr<util::CsvWriter> out;
  if (csv) {
    out = std::make_unique<util::CsvWriter>(
        "bench_out/fig4_trajectories.csv",
        std::vector<std::string>{"t_ps", "vn00", "vn01", "vn10", "vn11",
                                 "vo00", "vo01", "vo10", "vo11"});
  }
  for (double t : math::linspace(0.0, t_end, n_points)) {
    std::vector<double> row{bench::ps(t)};
    std::vector<double> vn_vals;
    std::vector<double> vo_vals;
    for (const Row& sys : systems) {
      const core::NorTrajectory traj(p, 0.0, sys.mode, sys.x0);
      vn_vals.push_back(traj.vn_at(t));
      vo_vals.push_back(traj.vo_at(t));
    }
    row.insert(row.end(), vn_vals.begin(), vn_vals.end());
    row.insert(row.end(), vo_vals.begin(), vo_vals.end());
    table.add_row(row, 3);
    if (out) out->row(row);
  }
  table.print(std::cout);

  std::cout << "\nChecks (paper Section III F):\n"
            << "  * V_N(1,1) stays frozen at VDD/2\n"
            << "  * V_O(1,1) is the steepest falling trajectory "
               "(parallel nMOS discharge)\n"
            << "  * V_N(0,0)/V_O(0,0) charge toward VDD, N leading O\n";
  if (csv) std::cout << "CSV written to bench_out/fig4_trajectories.csv\n";
  return 0;
}
