// Process-sample retargeting cost: what one Monte-Carlo sample pays to move
// a cell's mode tables to a sampled process point, and the statistical
// batch throughput it buys.
//
// Three BM_ProcessSampleDerive flavors, same work per iteration (one
// process point, all 2^N modes of a 3-input cell):
//   * exact_fresh:   GateParams::derive_for + a freshly constructed
//                    GateModeTables (the naive per-sample path);
//   * exact_inplace: GateModeTables::rederive_at into preallocated storage
//                    (no allocation, still exact eigen-solves per mode);
//   * grid:          ModeTableGrid::interpolate_into (the BatchRunner path;
//                    corner derivations amortized at construction).
// The grid row is the one the statistical pipeline rides; the ledger tracks
// its headroom over exact derivation (>= 10x on the seed host).
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>

#include "core/gate_mode_tables.hpp"
#include "core/gate_params.hpp"
#include "core/mode_table_grid.hpp"
#include "core/process_point.hpp"
#include "sim/batch_runner.hpp"
#include "sim/hybrid_gate_channel.hpp"
#include "sim/process_variation.hpp"

namespace {

using namespace charlie;

core::GateParams bench_params() { return core::GateParams::nor3_reference(); }

sim::ProcessVariation bench_variation() {
  sim::ProcessVariation v;
  v.vdd_sigma = 0.02;
  v.vth_sigma = 0.01;
  v.drive_sigma = 0.03;
  return v;
}

// One sampled point per iteration, cycled from a fixed set so the work
// matches the batch runner's per-run draw without timing the RNG.
struct SampledPoints {
  static constexpr std::size_t kCount = 64;
  core::ProcessPoint points[kCount];
  SampledPoints() {
    const sim::ProcessVariation v = bench_variation();
    for (std::uint64_t i = 0; i < kCount; ++i) points[i] = v.sample(7, i);
  }
};

void BM_ProcessSampleDerive_ExactFresh(benchmark::State& state) {
  const core::GateParams nominal = bench_params();
  const SampledPoints sampled;
  std::size_t i = 0;
  for (auto _ : state) {
    const core::GateModeTables tables(
        nominal.derive_for(sampled.points[i % SampledPoints::kCount]));
    benchmark::DoNotOptimize(tables.state_table(0).d);
    ++i;
  }
}
BENCHMARK(BM_ProcessSampleDerive_ExactFresh);

void BM_ProcessSampleDerive_ExactInPlace(benchmark::State& state) {
  const core::GateParams nominal = bench_params();
  core::GateModeTables tables(nominal);
  const SampledPoints sampled;
  std::size_t i = 0;
  for (auto _ : state) {
    tables.rederive_at(nominal, sampled.points[i % SampledPoints::kCount]);
    benchmark::DoNotOptimize(tables.state_table(0).d);
    ++i;
  }
}
BENCHMARK(BM_ProcessSampleDerive_ExactInPlace);

void BM_ProcessSampleDerive_Grid(benchmark::State& state) {
  const core::GateParams nominal = bench_params();
  const core::ModeTableGrid grid(nominal, bench_variation().grid_spec());
  core::GateModeTables tables(nominal);  // worker-local copy, reused
  const SampledPoints sampled;
  std::size_t i = 0;
  for (auto _ : state) {
    grid.interpolate_into(sampled.points[i % SampledPoints::kCount], tables);
    benchmark::DoNotOptimize(tables.state_table(0).d);
    ++i;
  }
}
BENCHMARK(BM_ProcessSampleDerive_Grid);

// Statistical batch throughput: the bench_batch_throughput mesh with
// process variation enabled -- every run rebinds all channels through the
// grid before simulating. Compare against BM_BatchThroughput at the same
// thread count for the variation overhead.
void BM_StatBatchThroughput(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  const auto tables = core::GateModeTables::make(bench_params());
  auto factory = [tables] {
    auto circuit = std::make_unique<sim::Circuit>();
    const auto a = circuit->add_input("a");
    const auto b = circuit->add_input("b");
    const auto c = circuit->add_input("c");
    sim::Circuit::NetId x = a, y = b, z = c;
    for (int s = 0; s < 3; ++s) {
      const auto tag = std::to_string(s);
      x = circuit->add_mis_gate(
          sim::GateKind::kNor3, "x" + tag, {x, y, z},
          std::make_unique<sim::HybridGateChannel>(tables));
      y = circuit->add_mis_gate(
          sim::GateKind::kNor3, "y" + tag, {y, z, x},
          std::make_unique<sim::HybridGateChannel>(tables));
      z = circuit->add_mis_gate(
          sim::GateKind::kNor3, "z" + tag, {z, x, y},
          std::make_unique<sim::HybridGateChannel>(tables));
    }
    circuit->add_mis_gate(sim::GateKind::kNor3, "out", {x, y, z},
                          std::make_unique<sim::HybridGateChannel>(tables));
    return circuit;
  };
  sim::BatchConfig config;
  config.trace.mu = 150e-12;
  config.trace.sigma = 60e-12;
  config.trace.n_transitions = 200;
  config.n_runs = 16;
  config.base_seed = 7;
  config.n_threads = n_threads;
  config.variation = bench_variation();
  sim::BatchRunner runner(factory, "out", config);
  long long events = 0;
  for (auto _ : state) {
    const auto result = runner.run();
    events += result.total_events;
    benchmark::DoNotOptimize(result.stats.mean);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StatBatchThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
