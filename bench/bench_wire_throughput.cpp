// Interconnect throughput: the hybrid wire channel's per-event cost (the
// two-exponential crossing solve on the collapsed RC ladder), the
// WireModeTables collapse cost, and a wired netlist -- every gate-to-gate
// net an RC section -- through sim::BatchRunner. The wired batch is the
// number to watch: it prices the analog handoff against the zero-delay
// nets of bench_netlist_throughput.cpp.
#include <benchmark/benchmark.h>

#include <memory>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "sim/batch_runner.hpp"
#include "sim/circuit_builder.hpp"
#include "sim/wire_channel.hpp"
#include "wire/wire_tables.hpp"

namespace {

using namespace charlie;

// The mixed tree of bench_netlist_throughput.cpp with an RC wire on every
// internal net (reference geometry, ~63 ps Elmore -- comparable to the
// cell delays, so the wires shape real event activity).
constexpr const char* kWiredTree = R"(
input(a, b, c, d, e, f)
output(out)
NOR2(g1, a, b)
NAND2(g2, b, c)
NOR3(g3, c, d, e)
NAND3(g4, d, e, f)
WIRE(w1, g1, r=15e3, c=3e-15, sections=8, rdrive=10e3, cload=300e-18)
WIRE(w2, g2, r=15e3, c=3e-15, sections=8, rdrive=10e3, cload=300e-18)
WIRE(w3, g3, r=15e3, c=3e-15, sections=8, rdrive=10e3, cload=300e-18)
WIRE(w4, g4, r=15e3, c=3e-15, sections=8, rdrive=10e3, cload=300e-18)
NOR2(g5, w1, w2)
NAND2(g6, w3, w4)
NOR3(g7, w1, w3, f)
NAND3(g8, w2, w4, a)
NOR2(g9, g5, g7)
NAND2(g10, g6, g8)
NOR2(out, g9, g10)
)";

std::shared_ptr<const cell::CellLibrary> shared_library() {
  static const auto library = std::make_shared<const cell::CellLibrary>(
      cell::CellLibrary::reference());
  return library;
}

sim::BatchConfig batch_config(std::size_t n_runs, std::size_t n_threads) {
  sim::BatchConfig config;
  config.trace.mu = 150e-12;
  config.trace.sigma = 60e-12;
  config.trace.n_transitions = 200;
  config.n_runs = n_runs;
  config.base_seed = 7;
  config.n_threads = n_threads;
  return config;
}

// Single wire event: drive flip + analog handoff + crossing solve. The
// direct counterpart of BM_HybridSingleEvent for interconnect.
void BM_WireSingleEvent(benchmark::State& state) {
  const auto tables =
      wire::WireModeTables::make(wire::WireParams::reference());
  sim::WireChannel channel(tables);
  channel.initialize(0.0, false);
  double t = 0.0;
  bool value = true;
  for (auto _ : state) {
    t += 500e-12;  // beyond the previous flight: full charge/discharge
    channel.on_input(t, value);
    const auto pending = channel.pending();
    benchmark::DoNotOptimize(pending);
    if (pending.has_value()) channel.on_fire(*pending);
    value = !value;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireSingleEvent);

// The collapse itself: moments + Pade + both drive tables. Paid once per
// wire geometry per process (the builder memoizes), so this is setup cost,
// not hot path.
void BM_WireTableCollapse(benchmark::State& state) {
  wire::WireParams params = wire::WireParams::reference();
  params.n_sections = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const wire::WireModeTables tables(params);
    benchmark::DoNotOptimize(tables.b2());
  }
}
BENCHMARK(BM_WireTableCollapse)->Arg(1)->Arg(8)->Arg(64);

// Monte-Carlo batches over the wired tree: events/second with four live
// wire channels per circuit plus the hybrid gates they couple.
void BM_WireBatchThroughput(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  const auto desc = cell::parse_netlist(kWiredTree);
  const sim::CircuitBuilder builder(shared_library());
  auto factory = [&builder, &desc] { return builder.build(desc); };
  // Built once outside the timed loop: pool + clones persist across runs.
  sim::BatchRunner runner(factory, desc.outputs, batch_config(16, n_threads));
  long long events = 0;
  for (auto _ : state) {
    const auto result = runner.run();
    events += result.total_events;
    benchmark::DoNotOptimize(result.total_events);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_WireBatchThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
