// Reproduces the paper's Section VI runtime claim: the hybrid channel adds
// only a small overhead (paper: ~6 %) over inertial / Exp channels in
// event-driven simulation. google-benchmark microbenches of the per-event
// channel work, plus a whole-trace comparison.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/nor_params.hpp"
#include "obs/trace_recorder.hpp"
#include "sim/circuit.hpp"
#include "sim/hybrid_nor_channel.hpp"
#include "sim/nor_models.hpp"
#include "sim/run_channel.hpp"
#include "sim/run_guard.hpp"
#include "util/rng.hpp"
#include "waveform/generator.hpp"

namespace {

using namespace charlie;

waveform::DigitalTrace make_trace(std::uint64_t seed, std::size_t n) {
  util::Rng rng(seed);
  waveform::TraceConfig cfg;
  cfg.mu = 150e-12;
  cfg.sigma = 60e-12;
  cfg.n_transitions = n;
  return waveform::generate_traces(cfg, 1, rng)[0];
}

const waveform::DigitalTrace& trace_a() {
  static const auto t = make_trace(1, 400);
  return t;
}
const waveform::DigitalTrace& trace_b() {
  static const auto t = make_trace(2, 400);
  return t;
}

double t_end() {
  return std::max(trace_a().transitions().back(),
                  trace_b().transitions().back()) +
         1e-9;
}

sim::SisNorDelays sis_delays() { return {51e-12, 46e-12}; }

void BM_InertialNorTrace(benchmark::State& state) {
  for (auto _ : state) {
    auto gate = sim::make_inertial_nor(sis_delays());
    const auto out =
        sim::run_gate_channel(*gate, trace_a(), trace_b(), 0.0, t_end());
    benchmark::DoNotOptimize(out.n_transitions());
  }
}
BENCHMARK(BM_InertialNorTrace);

void BM_ExpNorTrace(benchmark::State& state) {
  for (auto _ : state) {
    auto gate = sim::make_exp_nor(sis_delays(), 20e-12);
    const auto out =
        sim::run_gate_channel(*gate, trace_a(), trace_b(), 0.0, t_end());
    benchmark::DoNotOptimize(out.n_transitions());
  }
}
BENCHMARK(BM_ExpNorTrace);

void BM_SumExpNorTrace(benchmark::State& state) {
  for (auto _ : state) {
    auto gate = sim::make_sumexp_nor(sis_delays(), 20e-12);
    const auto out =
        sim::run_gate_channel(*gate, trace_a(), trace_b(), 0.0, t_end());
    benchmark::DoNotOptimize(out.n_transitions());
  }
}
BENCHMARK(BM_SumExpNorTrace);

void BM_HybridNorTrace(benchmark::State& state) {
  const auto params = core::NorParams::paper_table1();
  for (auto _ : state) {
    sim::HybridNorChannel gate(params);
    const auto out =
        sim::run_gate_channel(gate, trace_a(), trace_b(), 0.0, t_end());
    benchmark::DoNotOptimize(out.n_transitions());
  }
}
BENCHMARK(BM_HybridNorTrace);

// Per-event costs: one input transition + pending query.
void BM_HybridSingleEvent(benchmark::State& state) {
  const auto params = core::NorParams::paper_table1();
  sim::HybridNorChannel gate(params);
  gate.initialize(0.0, {false, false});
  double t = 0.0;
  bool v = true;
  for (auto _ : state) {
    t += 1e-9;
    gate.on_input(t, 0, v);
    v = !v;
    benchmark::DoNotOptimize(gate.pending());
  }
}
BENCHMARK(BM_HybridSingleEvent);

// RunGuard overhead: the same hybrid-NOR workload through the engine's
// event loop with no budget vs. a fully armed (but never tripping) budget.
// The guard adds one compare per event plus a wall-clock poll every
// check_interval events; the pair of numbers documents that this is in the
// measurement noise (acceptance bar: < 2 %).
void BM_HybridCircuitTrace(benchmark::State& state) {
  const auto params = core::NorParams::paper_table1();
  sim::Circuit circuit;
  const auto a = circuit.add_input("a");
  const auto b = circuit.add_input("b");
  circuit.add_nor2_mis("out", a, b,
                       std::make_unique<sim::HybridNorChannel>(params));
  const std::vector<waveform::DigitalTrace> stimuli{trace_a(), trace_b()};
  for (auto _ : state) {
    const auto out = circuit.simulate(stimuli, 0.0, t_end());
    benchmark::DoNotOptimize(out.n_events);
  }
}
BENCHMARK(BM_HybridCircuitTrace);

void BM_HybridCircuitTraceGuarded(benchmark::State& state) {
  const auto params = core::NorParams::paper_table1();
  sim::Circuit circuit;
  const auto a = circuit.add_input("a");
  const auto b = circuit.add_input("b");
  circuit.add_nor2_mis("out", a, b,
                       std::make_unique<sim::HybridNorChannel>(params));
  const std::vector<waveform::DigitalTrace> stimuli{trace_a(), trace_b()};
  sim::RunBudget budget;
  budget.max_events = 1'000'000'000;  // armed, never trips
  budget.max_wall_seconds = 3600.0;
  for (auto _ : state) {
    const auto out = circuit.simulate(stimuli, 0.0, t_end(), budget);
    benchmark::DoNotOptimize(out.n_events);
  }
}
BENCHMARK(BM_HybridCircuitTraceGuarded);

// Observability overhead: the same workload with the trace recorder armed
// (per-advance spans into the per-thread ring). BM_HybridCircuitTrace is
// the disarmed baseline -- its loop already pays the one-branch armed()
// check, so the Trace/TraceInstrumented pair bounds both costs: disarmed
// instrumentation must be in the noise, armed recording stays small (one
// clock pair + ring store per window slice, not per event).
void BM_HybridCircuitTraceInstrumented(benchmark::State& state) {
  const auto params = core::NorParams::paper_table1();
  sim::Circuit circuit;
  const auto a = circuit.add_input("a");
  const auto b = circuit.add_input("b");
  circuit.add_nor2_mis("out", a, b,
                       std::make_unique<sim::HybridNorChannel>(params));
  const std::vector<waveform::DigitalTrace> stimuli{trace_a(), trace_b()};
  obs::TraceRecorder::start();
  for (auto _ : state) {
    const auto out = circuit.simulate(stimuli, 0.0, t_end());
    benchmark::DoNotOptimize(out.n_events);
  }
  obs::TraceRecorder::stop();
  state.counters["events_traced"] =
      static_cast<double>(obs::TraceRecorder::collect().events.size());
}
BENCHMARK(BM_HybridCircuitTraceInstrumented);

void BM_ExpSingleEvent(benchmark::State& state) {
  sim::ExpChannelParams p;
  p.delta_inf_up = 51e-12;
  p.delta_inf_down = 46e-12;
  p.delta_min = 20e-12;
  sim::ExpChannel ch(p);
  ch.initialize(0.0, false);
  double t = 0.0;
  bool v = true;
  for (auto _ : state) {
    t += 1e-9;
    ch.on_input(t, v);
    v = !v;
    benchmark::DoNotOptimize(ch.pending());
  }
}
BENCHMARK(BM_ExpSingleEvent);

}  // namespace

BENCHMARK_MAIN();
