#!/usr/bin/env bash
# Build the Release configuration and run the runtime benchmark suites,
# merging their google-benchmark JSON into BENCH_runtime.json (or $1) at the
# repo root. See bench/README.md for how to read the numbers.
#
# The ledger is guarded: the script refuses to write it from a project tree
# configured as anything but Release (debug timings are noise, not a
# baseline). Host-level caveats that cannot be fixed from here -- benchmarked
# thread counts above the machine's core count, a Debug-built
# google-benchmark *library* -- are loud warnings, recorded in the merged
# JSON context so a reader of the ledger sees them without rerunning.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_runtime.json}"

# Pre-commit hygiene gate (fast): refuse to publish numbers from a tree
# that tracks build artifacts. tools/check_tree.sh (no flag) is the full
# build+test gate.
tools/check_tree.sh --hygiene-only

cmake --preset release
cmake --build --preset release -j"$(nproc)"

# Ledger guard: only a Release-configured project build may publish numbers.
build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' build/CMakeCache.txt)
if [ "$build_type" != "Release" ]; then
  echo "run_benchmarks.sh: refusing to write $out:" \
    "build/ is configured as '${build_type:-<unset>}', not Release" >&2
  exit 1
fi

# The deepest thread count the suites exercise (BM_BatchThroughput/4,
# BM_StatBatchThroughput/4, BM_ShardedCircuitThroughput shards:4/threads:4).
max_bench_threads=4
n_cores=$(nproc)
warnings=()
if [ "$n_cores" -lt "$max_bench_threads" ]; then
  w="benchmarked thread counts reach $max_bench_threads but this host has \
$n_cores core(s): multi-thread rows measure oversubscription, not scaling"
  echo "run_benchmarks.sh: WARNING: $w" >&2
  warnings+=("$w")
fi

tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT

./build/bench/bench_runtime_overhead --benchmark_format=json \
  >"$tmp_dir/runtime.json"
./build/bench/bench_batch_throughput --benchmark_format=json \
  >"$tmp_dir/batch.json"
./build/bench/bench_netlist_throughput --benchmark_format=json \
  >"$tmp_dir/netlist.json"
./build/bench/bench_wire_throughput --benchmark_format=json \
  >"$tmp_dir/wire.json"
./build/bench/bench_sharded_throughput --benchmark_format=json \
  >"$tmp_dir/sharded.json"
./build/bench/bench_process_derive --benchmark_format=json \
  >"$tmp_dir/process.json"
./build/bench/bench_sta --benchmark_format=json \
  >"$tmp_dir/sta.json"

# Merge into a temp file and move it into place atomically: a failure
# anywhere above (set -euo pipefail) or inside the merge leaves any previous
# $out untouched instead of replacing it with partial JSON. The merge also
# folds host caveats (oversubscription warning above, a Debug-built
# google-benchmark library reported by the context itself) into
# context.warnings.
merge_warnings=""
if [ "${#warnings[@]}" -gt 0 ]; then merge_warnings="${warnings[0]}"; fi
WARNINGS="$merge_warnings" python3 - "$tmp_dir/runtime.json" \
  "$tmp_dir/batch.json" "$tmp_dir/netlist.json" "$tmp_dir/wire.json" \
  "$tmp_dir/sharded.json" "$tmp_dir/process.json" "$tmp_dir/sta.json" \
  "$tmp_dir/merged.json" <<'EOF'
import json, os, sys
runtime, *extras, out = sys.argv[1:]
with open(runtime) as f:
    merged = json.load(f)
for path in extras:
    with open(path) as f:
        merged["benchmarks"] += json.load(f)["benchmarks"]
warnings = [w for w in [os.environ.get("WARNINGS", "")] if w]
if merged["context"].get("library_build_type") != "release":
    warnings.append(
        "google-benchmark library was built as "
        f"{merged['context'].get('library_build_type', 'unknown')}: "
        "timing overhead is inflated (the simulator itself is Release)")
if warnings:
    merged["context"]["warnings"] = warnings
    for w in warnings:
        print(f"run_benchmarks.sh: WARNING (recorded in context): {w}",
              file=sys.stderr)
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
EOF
mv "$tmp_dir/merged.json" "$out"

echo "wrote $out"
