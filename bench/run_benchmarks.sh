#!/usr/bin/env bash
# Build the Release configuration and run the runtime benchmark suites,
# merging their google-benchmark JSON into BENCH_runtime.json (or $1) at the
# repo root. See bench/README.md for how to read the numbers.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_runtime.json}"

# Pre-commit hygiene gate (fast): refuse to publish numbers from a tree
# that tracks build artifacts. tools/check_tree.sh (no flag) is the full
# build+test gate.
tools/check_tree.sh --hygiene-only

cmake --preset release
cmake --build --preset release -j"$(nproc)"

tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT

./build/bench/bench_runtime_overhead --benchmark_format=json \
  >"$tmp_dir/runtime.json"
./build/bench/bench_batch_throughput --benchmark_format=json \
  >"$tmp_dir/batch.json"
./build/bench/bench_netlist_throughput --benchmark_format=json \
  >"$tmp_dir/netlist.json"
./build/bench/bench_wire_throughput --benchmark_format=json \
  >"$tmp_dir/wire.json"

# Merge into a temp file and move it into place atomically: a failure
# anywhere above (set -euo pipefail) or inside the merge leaves any previous
# $out untouched instead of replacing it with partial JSON.
python3 - "$tmp_dir/runtime.json" "$tmp_dir/batch.json" \
  "$tmp_dir/netlist.json" "$tmp_dir/wire.json" "$tmp_dir/merged.json" <<'EOF'
import json, sys
runtime, *extras, out = sys.argv[1:]
with open(runtime) as f:
    merged = json.load(f)
for path in extras:
    with open(path) as f:
        merged["benchmarks"] += json.load(f)["benchmarks"]
with open(out, "w") as f:
    json.dump(merged, f, indent=1)
    f.write("\n")
EOF
mv "$tmp_dir/merged.json" "$out"

echo "wrote $out"
