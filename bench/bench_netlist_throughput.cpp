// Netlist-front-end throughput: a mixed-arity standard-cell netlist
// (NOR2/NOR3/NAND2/NAND3 hybrid channels) instantiated by
// sim::CircuitBuilder and driven through sim::BatchRunner -- the
// realistic-workload complement to the NOR-mesh numbers in
// bench_batch_throughput.cpp. Also tracks the front-end itself:
// parse + validate + instantiate cost per circuit clone.
#include <benchmark/benchmark.h>

#include <memory>

#include "cell/cell_library.hpp"
#include "cell/netlist.hpp"
#include "sim/batch_runner.hpp"
#include "sim/circuit_builder.hpp"

namespace {

using namespace charlie;

// Same topology as examples/netlists/mixed_tree.net: 11 hybrid gates over
// all four characterized cells, reconvergent so every stage sees real MIS
// activity. Embedded so the bench binary runs from any directory.
constexpr const char* kMixedTree = R"(
input(a, b, c, d, e, f)
NOR2(g1, a, b)
NAND2(g2, b, c)
NOR3(g3, c, d, e)
NAND3(g4, d, e, f)
NOR2(g5, g1, g2)
NAND2(g6, g3, g4)
NOR3(g7, g1, g3, f)
NAND3(g8, g2, g4, a)
NOR2(g9, g5, g7)
NAND2(g10, g6, g8)
NOR2(out, g9, g10)
)";

std::shared_ptr<const cell::CellLibrary> shared_library() {
  // Reference cells (Table-I regime): the bench measures the engine and the
  // front-end, not substrate characterization.
  static const auto library = std::make_shared<const cell::CellLibrary>(
      cell::CellLibrary::reference());
  return library;
}

sim::BatchConfig batch_config(std::size_t n_runs, std::size_t n_threads) {
  sim::BatchConfig config;
  config.trace.mu = 150e-12;
  config.trace.sigma = 60e-12;
  config.trace.n_transitions = 200;
  config.n_runs = n_runs;
  config.base_seed = 7;
  config.n_threads = n_threads;
  return config;
}

// Monte-Carlo batches over the mixed netlist: events/second through the
// event heap with all four hybrid cell tables live at once. The runner
// (pool + per-worker clones) is constructed once outside the timed loop --
// the steady-state batch cost is the workload, not thread spin-up.
void BM_NetlistBatchThroughput(benchmark::State& state) {
  const auto n_threads = static_cast<std::size_t>(state.range(0));
  const auto desc = cell::parse_netlist(kMixedTree);
  const sim::CircuitBuilder builder(shared_library());
  auto factory = [&builder, &desc] { return builder.build(desc); };
  sim::BatchRunner runner(factory, "out", batch_config(16, n_threads));
  long long events = 0;
  for (auto _ : state) {
    const auto result = runner.run();
    events += result.total_events;
    benchmark::DoNotOptimize(result.total_events);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetlistBatchThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

// Front-end cost per worker clone: netlist validation + topological sort +
// channel instantiation against the shared library (the parse is excluded,
// matching the parse-once/build-many lifecycle of BatchRunner factories).
void BM_NetlistBuild(benchmark::State& state) {
  const auto desc = cell::parse_netlist(kMixedTree);
  const sim::CircuitBuilder builder(shared_library());
  for (auto _ : state) {
    auto circuit = builder.build(desc);
    benchmark::DoNotOptimize(circuit->n_gates());
  }
  state.counters["gates/s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * desc.n_gates()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_NetlistBuild);

// Text front door: parse + build together, for the file-driven entry path.
void BM_NetlistParseAndBuild(benchmark::State& state) {
  const sim::CircuitBuilder builder(shared_library());
  for (auto _ : state) {
    auto circuit = builder.build_text(kMixedTree);
    benchmark::DoNotOptimize(circuit->n_gates());
  }
}
BENCHMARK(BM_NetlistParseAndBuild);

}  // namespace

BENCHMARK_MAIN();
