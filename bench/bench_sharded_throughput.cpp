// Single-large-circuit scaling: one >= 100k-gate synthetic netlist
// (cell::generate_netlist, mixed SIS / hybrid-MIS cells plus RC wires)
// partitioned across workers by CircuitBuilder::build_sharded and
// simulated with the conservative windowed wavefront. Complements
// bench_batch_throughput.cpp, which scales across *independent* runs: here
// every worker cooperates on the same simulation, exchanging boundary
// events, and the result is bit-identical to the monolithic engine.
//
// Multi-threaded timing: wall clock (UseRealTime) is the scaling headline,
// process CPU time (MeasureProcessCPUTime) exposes the parallel overhead.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>

#include "cell/cell_library.hpp"
#include "cell/netlist_gen.hpp"
#include "sim/circuit_builder.hpp"
#include "sim/sharded_circuit.hpp"
#include "util/rng.hpp"
#include "waveform/generator.hpp"

namespace {

using namespace charlie;

constexpr std::size_t kGates = 100000;

const cell::NetlistDesc& big_netlist() {
  static const cell::NetlistDesc desc = [] {
    cell::NetlistGenConfig config;
    config.n_gates = kGates;
    config.n_inputs = 64;
    config.n_outputs = 32;
    config.wire_fraction = 0.02;
    config.seed = 7;
    return cell::generate_netlist(config);
  }();
  return desc;
}

const sim::CircuitBuilder& builder() {
  static const sim::CircuitBuilder b(std::make_shared<const cell::CellLibrary>(
      cell::CellLibrary::reference()));
  return b;
}

std::vector<waveform::DigitalTrace> stimuli() {
  waveform::TraceConfig config;
  config.mu = 150e-12;
  config.sigma = 60e-12;
  config.n_transitions = 60;
  util::Rng rng(7);
  return waveform::generate_traces(config, big_netlist().inputs.size(), rng);
}

double end_time(const std::vector<waveform::DigitalTrace>& traces) {
  double t_last = 0.0;
  for (const auto& trace : traces) {
    if (!trace.empty()) t_last = std::max(t_last, trace.transitions().back());
  }
  return t_last + 2e-9;
}

void BM_ShardedCircuitThroughput(benchmark::State& state) {
  const auto n_shards = static_cast<std::size_t>(state.range(0));
  const auto n_threads = static_cast<std::size_t>(state.range(1));
  // Partitioning and the worker pool live outside the timed loop, like
  // netlist parsing in a real front-end; the simulation is the workload.
  auto sharded = builder().build_sharded(big_netlist(), n_shards);
  const auto traces = stimuli();
  const double t_end = end_time(traces);
  sim::ShardedSimConfig config;
  config.n_threads = n_threads;

  long long events = 0;
  for (auto _ : state) {
    const auto result = sharded->simulate(traces, 0.0, t_end, config);
    events += result.n_events;
    benchmark::DoNotOptimize(result.n_events);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["gates"] =
      benchmark::Counter(static_cast<double>(sharded->n_gates()));
  state.counters["boundary_edges"] =
      benchmark::Counter(static_cast<double>(sharded->n_boundary_edges()));
}
BENCHMARK(BM_ShardedCircuitThroughput)
    ->ArgNames({"shards", "threads"})
    ->Args({1, 1})
    ->Args({2, 2})
    ->Args({4, 4})
    ->MeasureProcessCPUTime()
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
