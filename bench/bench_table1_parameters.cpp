// Reproduces paper Table I: the parametrization flow of Section V.
//   1. Measure the six characteristic Charlie delays on the analog
//      substrate (the paper measured Spectre/FreePDK15).
//   2. Choose delta_min by the ratio rule (paper: 18 ps).
//   3. Least-squares fit (R1..R4, C_N, C_O).
// Also validates eqs (8)-(12) for the fitted parameter set and prints the
// paper's own Table I for comparison.
#include <iostream>

#include "bench_common.hpp"
#include "core/charlie_delays.hpp"
#include "core/delay_model.hpp"

int main(int argc, char** argv) {
  using namespace charlie;
  util::Cli cli(argc, argv);
  cli.finish();

  const auto cal = bench::calibrate();

  std::cout << "=== Substrate characteristic Charlie delays (cf. Fig 2) ===\n";
  util::TextTable meas({"quantity", "measured [ps]", "fitted model [ps]"});
  const auto& s = cal.substrate;
  const auto& a = cal.fit.achieved;
  meas.add_row({"fall(-inf)", util::fmt(bench::ps(s.fall_minus_inf), 2),
                util::fmt(bench::ps(a.fall_minus_inf), 2)});
  meas.add_row({"fall(0)", util::fmt(bench::ps(s.fall_zero), 2),
                util::fmt(bench::ps(a.fall_zero), 2)});
  meas.add_row({"fall(+inf)", util::fmt(bench::ps(s.fall_plus_inf), 2),
                util::fmt(bench::ps(a.fall_plus_inf), 2)});
  meas.add_row({"rise(-inf)", util::fmt(bench::ps(s.rise_minus_inf), 2),
                util::fmt(bench::ps(a.rise_minus_inf), 2)});
  meas.add_row({"rise(0)", util::fmt(bench::ps(s.rise_zero), 2),
                util::fmt(bench::ps(a.rise_zero), 2)});
  meas.add_row({"rise(+inf)", util::fmt(bench::ps(s.rise_plus_inf), 2),
                util::fmt(bench::ps(a.rise_plus_inf), 2)});
  meas.print(std::cout);

  std::cout << "\n=== Table I: fitted parameter values ===\n";
  const auto paper = core::NorParams::paper_table1();
  util::TextTable t({"Parameter", "fitted (this substrate)",
                     "paper Table I (FreePDK15)"});
  t.add_row({"R1", units::format_resistance(cal.params.r1),
             units::format_resistance(paper.r1)});
  t.add_row({"R2", units::format_resistance(cal.params.r2),
             units::format_resistance(paper.r2)});
  t.add_row({"R3", units::format_resistance(cal.params.r3),
             units::format_resistance(paper.r3)});
  t.add_row({"R4", units::format_resistance(cal.params.r4),
             units::format_resistance(paper.r4)});
  t.add_row({"CN", units::format_capacitance(cal.params.cn),
             units::format_capacitance(paper.cn)});
  t.add_row({"CO", units::format_capacitance(cal.params.co),
             units::format_capacitance(paper.co)});
  t.add_row({"delta_min", units::format_time(cal.params.delta_min),
             units::format_time(paper.delta_min)});
  t.print(std::cout);
  std::cout << "fit RMS over the six targets: "
            << units::format_time(cal.fit.rms_error) << "\n";

  std::cout << "\n=== eqs (8)-(12) vs exact crossings (fitted params, raw "
               "RC, no delta_min) ===\n";
  core::NorParams raw = cal.params;
  raw.delta_min = 0.0;
  const core::NorDelayModel model(raw);
  util::TextTable eq({"equation", "closed form [ps]", "exact [ps]"});
  eq.add_row({"(8)  fall(0)", util::fmt(bench::ps(core::paper_fall_zero(raw)), 3),
              util::fmt(bench::ps(model.falling_delay(0.0).delay), 3)});
  eq.add_row({"(9)  fall(-inf)",
              util::fmt(bench::ps(core::paper_fall_minus_inf(raw)), 3),
              util::fmt(bench::ps(model.falling_sis_b_first()), 3)});
  eq.add_row({"(10) fall(+inf)",
              util::fmt(bench::ps(core::paper_fall_plus_inf(raw)), 3),
              util::fmt(bench::ps(model.falling_sis_a_first()), 3)});
  eq.add_row({"(11) rise(60ps, X=0)",
              util::fmt(bench::ps(core::paper_rise_nonneg(raw, 60e-12, 0.0)), 3),
              util::fmt(bench::ps(model.rising_delay(60e-12, 0.0).delay), 3)});
  eq.add_row({"(12) rise(-60ps, X=0)",
              util::fmt(bench::ps(core::paper_rise_neg(raw, -60e-12, 0.0)), 3),
              util::fmt(bench::ps(model.rising_delay(-60e-12, 0.0).delay), 3)});
  eq.print(std::cout);

  std::cout << "\nratio fall(-inf)/fall(0) raw = "
            << util::fmt(core::paper_fall_minus_inf(raw) /
                             core::paper_fall_zero(raw),
                         3)
            << "  (paper Section IV: ~(R3+R4)/R3 ~ 2)\n"
            << "delta_min from ratio rule = "
            << units::format_time(core::delta_min_for_ratio(
                   s.fall_minus_inf, s.fall_zero))
            << "\n";
  return 0;
}
