// Shared machinery for the figure/table reproduction benches: substrate
// characterization and hybrid-model calibration, done once per process.
#pragma once

#include <iostream>
#include <string>

#include "core/parametrize.hpp"
#include "spice/characterize.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace charlie::bench {

struct Calibration {
  spice::Technology tech;
  spice::SubstrateCharacteristics substrate;
  core::FitResult fit;           // with the ratio-rule delta_min
  core::NorParams params;        // fit.params
  core::NorParams params_stripped;  // same R/C, delta_min = 0 ("HM w/o dmin")
};

inline core::CharacteristicDelays to_targets(
    const spice::SubstrateCharacteristics& s) {
  core::CharacteristicDelays t;
  t.fall_minus_inf = s.fall_minus_inf;
  t.fall_zero = s.fall_zero;
  t.fall_plus_inf = s.fall_plus_inf;
  t.rise_minus_inf = s.rise_minus_inf;
  t.rise_zero = s.rise_zero;
  t.rise_plus_inf = s.rise_plus_inf;
  return t;
}

/// Measure the analog NOR2 and fit the hybrid model to it (Section V flow).
inline Calibration calibrate(bool verbose = true) {
  Calibration c;
  c.tech = spice::Technology::freepdk15_like();
  if (verbose) std::cout << "[calibrate] measuring analog substrate...\n";
  c.substrate = spice::measure_characteristics(c.tech);
  core::FitOptions opts;
  opts.vdd = c.tech.vdd;
  opts.nelder_mead_evaluations = 2000;
  if (verbose) std::cout << "[calibrate] fitting hybrid model...\n";
  c.fit = core::fit_nor_params(to_targets(c.substrate), opts);
  c.params = c.fit.params;
  c.params_stripped = c.fit.params;
  c.params_stripped.delta_min = 0.0;
  if (verbose) {
    std::cout << "[calibrate] " << c.params.to_string() << "\n"
              << "[calibrate] fit RMS error "
              << units::format_time(c.fit.rms_error) << "\n\n";
  }
  return c;
}

inline double ps(double seconds) { return seconds / units::ps; }

}  // namespace charlie::bench
