file(REMOVE_RECURSE
  "CMakeFiles/charlie_test_sim.dir/sim/test_basic_channels.cpp.o"
  "CMakeFiles/charlie_test_sim.dir/sim/test_basic_channels.cpp.o.d"
  "CMakeFiles/charlie_test_sim.dir/sim/test_batch_runner.cpp.o"
  "CMakeFiles/charlie_test_sim.dir/sim/test_batch_runner.cpp.o.d"
  "CMakeFiles/charlie_test_sim.dir/sim/test_circuit.cpp.o"
  "CMakeFiles/charlie_test_sim.dir/sim/test_circuit.cpp.o.d"
  "CMakeFiles/charlie_test_sim.dir/sim/test_event_heap.cpp.o"
  "CMakeFiles/charlie_test_sim.dir/sim/test_event_heap.cpp.o.d"
  "CMakeFiles/charlie_test_sim.dir/sim/test_exp_channel.cpp.o"
  "CMakeFiles/charlie_test_sim.dir/sim/test_exp_channel.cpp.o.d"
  "CMakeFiles/charlie_test_sim.dir/sim/test_hybrid_channel.cpp.o"
  "CMakeFiles/charlie_test_sim.dir/sim/test_hybrid_channel.cpp.o.d"
  "CMakeFiles/charlie_test_sim.dir/sim/test_hybrid_gate_channel.cpp.o"
  "CMakeFiles/charlie_test_sim.dir/sim/test_hybrid_gate_channel.cpp.o.d"
  "CMakeFiles/charlie_test_sim.dir/sim/test_nor_models.cpp.o"
  "CMakeFiles/charlie_test_sim.dir/sim/test_nor_models.cpp.o.d"
  "CMakeFiles/charlie_test_sim.dir/sim/test_run_channel.cpp.o"
  "CMakeFiles/charlie_test_sim.dir/sim/test_run_channel.cpp.o.d"
  "CMakeFiles/charlie_test_sim.dir/sim/test_sumexp_channel.cpp.o"
  "CMakeFiles/charlie_test_sim.dir/sim/test_sumexp_channel.cpp.o.d"
  "CMakeFiles/charlie_test_sim.dir/sim/test_surface_channel.cpp.o"
  "CMakeFiles/charlie_test_sim.dir/sim/test_surface_channel.cpp.o.d"
  "charlie_test_sim"
  "charlie_test_sim.pdb"
  "charlie_test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlie_test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
