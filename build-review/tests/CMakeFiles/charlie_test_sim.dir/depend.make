# Empty dependencies file for charlie_test_sim.
# This may be replaced when dependencies are built.
