
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_basic_channels.cpp" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_basic_channels.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_basic_channels.cpp.o.d"
  "/root/repo/tests/sim/test_batch_runner.cpp" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_batch_runner.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_batch_runner.cpp.o.d"
  "/root/repo/tests/sim/test_circuit.cpp" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_circuit.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_circuit.cpp.o.d"
  "/root/repo/tests/sim/test_event_heap.cpp" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_event_heap.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_event_heap.cpp.o.d"
  "/root/repo/tests/sim/test_exp_channel.cpp" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_exp_channel.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_exp_channel.cpp.o.d"
  "/root/repo/tests/sim/test_hybrid_channel.cpp" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_hybrid_channel.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_hybrid_channel.cpp.o.d"
  "/root/repo/tests/sim/test_hybrid_gate_channel.cpp" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_hybrid_gate_channel.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_hybrid_gate_channel.cpp.o.d"
  "/root/repo/tests/sim/test_nor_models.cpp" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_nor_models.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_nor_models.cpp.o.d"
  "/root/repo/tests/sim/test_run_channel.cpp" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_run_channel.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_run_channel.cpp.o.d"
  "/root/repo/tests/sim/test_sumexp_channel.cpp" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_sumexp_channel.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_sumexp_channel.cpp.o.d"
  "/root/repo/tests/sim/test_surface_channel.cpp" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_surface_channel.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_sim.dir/sim/test_surface_channel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/charlie_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_fit.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_ode.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_spice.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_waveform.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
