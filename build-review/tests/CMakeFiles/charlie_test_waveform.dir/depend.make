# Empty dependencies file for charlie_test_waveform.
# This may be replaced when dependencies are built.
