file(REMOVE_RECURSE
  "CMakeFiles/charlie_test_waveform.dir/waveform/test_digital_trace.cpp.o"
  "CMakeFiles/charlie_test_waveform.dir/waveform/test_digital_trace.cpp.o.d"
  "CMakeFiles/charlie_test_waveform.dir/waveform/test_digitize.cpp.o"
  "CMakeFiles/charlie_test_waveform.dir/waveform/test_digitize.cpp.o.d"
  "CMakeFiles/charlie_test_waveform.dir/waveform/test_edges.cpp.o"
  "CMakeFiles/charlie_test_waveform.dir/waveform/test_edges.cpp.o.d"
  "CMakeFiles/charlie_test_waveform.dir/waveform/test_generator.cpp.o"
  "CMakeFiles/charlie_test_waveform.dir/waveform/test_generator.cpp.o.d"
  "CMakeFiles/charlie_test_waveform.dir/waveform/test_metrics.cpp.o"
  "CMakeFiles/charlie_test_waveform.dir/waveform/test_metrics.cpp.o.d"
  "CMakeFiles/charlie_test_waveform.dir/waveform/test_waveform.cpp.o"
  "CMakeFiles/charlie_test_waveform.dir/waveform/test_waveform.cpp.o.d"
  "charlie_test_waveform"
  "charlie_test_waveform.pdb"
  "charlie_test_waveform[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlie_test_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
