file(REMOVE_RECURSE
  "CMakeFiles/charlie_test_fit.dir/fit/test_brent_min.cpp.o"
  "CMakeFiles/charlie_test_fit.dir/fit/test_brent_min.cpp.o.d"
  "CMakeFiles/charlie_test_fit.dir/fit/test_brent_root.cpp.o"
  "CMakeFiles/charlie_test_fit.dir/fit/test_brent_root.cpp.o.d"
  "CMakeFiles/charlie_test_fit.dir/fit/test_levenberg_marquardt.cpp.o"
  "CMakeFiles/charlie_test_fit.dir/fit/test_levenberg_marquardt.cpp.o.d"
  "CMakeFiles/charlie_test_fit.dir/fit/test_nelder_mead.cpp.o"
  "CMakeFiles/charlie_test_fit.dir/fit/test_nelder_mead.cpp.o.d"
  "charlie_test_fit"
  "charlie_test_fit.pdb"
  "charlie_test_fit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlie_test_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
