# Empty dependencies file for charlie_test_fit.
# This may be replaced when dependencies are built.
