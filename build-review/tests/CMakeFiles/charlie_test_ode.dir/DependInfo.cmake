
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ode/test_eigen2.cpp" "tests/CMakeFiles/charlie_test_ode.dir/ode/test_eigen2.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_ode.dir/ode/test_eigen2.cpp.o.d"
  "/root/repo/tests/ode/test_expm.cpp" "tests/CMakeFiles/charlie_test_ode.dir/ode/test_expm.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_ode.dir/ode/test_expm.cpp.o.d"
  "/root/repo/tests/ode/test_linear_ode2.cpp" "tests/CMakeFiles/charlie_test_ode.dir/ode/test_linear_ode2.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_ode.dir/ode/test_linear_ode2.cpp.o.d"
  "/root/repo/tests/ode/test_piecewise.cpp" "tests/CMakeFiles/charlie_test_ode.dir/ode/test_piecewise.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_ode.dir/ode/test_piecewise.cpp.o.d"
  "/root/repo/tests/ode/test_rk45.cpp" "tests/CMakeFiles/charlie_test_ode.dir/ode/test_rk45.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_ode.dir/ode/test_rk45.cpp.o.d"
  "/root/repo/tests/ode/test_vec_mat.cpp" "tests/CMakeFiles/charlie_test_ode.dir/ode/test_vec_mat.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_ode.dir/ode/test_vec_mat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/charlie_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_fit.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_ode.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_spice.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_waveform.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
