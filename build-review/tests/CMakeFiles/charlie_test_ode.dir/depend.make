# Empty dependencies file for charlie_test_ode.
# This may be replaced when dependencies are built.
