file(REMOVE_RECURSE
  "CMakeFiles/charlie_test_ode.dir/ode/test_eigen2.cpp.o"
  "CMakeFiles/charlie_test_ode.dir/ode/test_eigen2.cpp.o.d"
  "CMakeFiles/charlie_test_ode.dir/ode/test_expm.cpp.o"
  "CMakeFiles/charlie_test_ode.dir/ode/test_expm.cpp.o.d"
  "CMakeFiles/charlie_test_ode.dir/ode/test_linear_ode2.cpp.o"
  "CMakeFiles/charlie_test_ode.dir/ode/test_linear_ode2.cpp.o.d"
  "CMakeFiles/charlie_test_ode.dir/ode/test_piecewise.cpp.o"
  "CMakeFiles/charlie_test_ode.dir/ode/test_piecewise.cpp.o.d"
  "CMakeFiles/charlie_test_ode.dir/ode/test_rk45.cpp.o"
  "CMakeFiles/charlie_test_ode.dir/ode/test_rk45.cpp.o.d"
  "CMakeFiles/charlie_test_ode.dir/ode/test_vec_mat.cpp.o"
  "CMakeFiles/charlie_test_ode.dir/ode/test_vec_mat.cpp.o.d"
  "charlie_test_ode"
  "charlie_test_ode.pdb"
  "charlie_test_ode[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlie_test_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
