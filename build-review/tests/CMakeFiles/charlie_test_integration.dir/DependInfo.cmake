
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_end_to_end.cpp" "tests/CMakeFiles/charlie_test_integration.dir/integration/test_end_to_end.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_integration.dir/integration/test_end_to_end.cpp.o.d"
  "/root/repo/tests/integration/test_model_vs_rk45.cpp" "tests/CMakeFiles/charlie_test_integration.dir/integration/test_model_vs_rk45.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_integration.dir/integration/test_model_vs_rk45.cpp.o.d"
  "/root/repo/tests/integration/test_multi_input_gates.cpp" "tests/CMakeFiles/charlie_test_integration.dir/integration/test_multi_input_gates.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_integration.dir/integration/test_multi_input_gates.cpp.o.d"
  "/root/repo/tests/integration/test_paper_consistency.cpp" "tests/CMakeFiles/charlie_test_integration.dir/integration/test_paper_consistency.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_integration.dir/integration/test_paper_consistency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/charlie_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_fit.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_ode.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_spice.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_waveform.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
