file(REMOVE_RECURSE
  "CMakeFiles/charlie_test_integration.dir/integration/test_end_to_end.cpp.o"
  "CMakeFiles/charlie_test_integration.dir/integration/test_end_to_end.cpp.o.d"
  "CMakeFiles/charlie_test_integration.dir/integration/test_model_vs_rk45.cpp.o"
  "CMakeFiles/charlie_test_integration.dir/integration/test_model_vs_rk45.cpp.o.d"
  "CMakeFiles/charlie_test_integration.dir/integration/test_multi_input_gates.cpp.o"
  "CMakeFiles/charlie_test_integration.dir/integration/test_multi_input_gates.cpp.o.d"
  "CMakeFiles/charlie_test_integration.dir/integration/test_paper_consistency.cpp.o"
  "CMakeFiles/charlie_test_integration.dir/integration/test_paper_consistency.cpp.o.d"
  "charlie_test_integration"
  "charlie_test_integration.pdb"
  "charlie_test_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlie_test_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
