# Empty compiler generated dependencies file for charlie_test_integration.
# This may be replaced when dependencies are built.
