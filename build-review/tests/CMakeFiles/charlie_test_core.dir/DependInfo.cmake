
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_charlie_delays.cpp" "tests/CMakeFiles/charlie_test_core.dir/core/test_charlie_delays.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_core.dir/core/test_charlie_delays.cpp.o.d"
  "/root/repo/tests/core/test_crossing.cpp" "tests/CMakeFiles/charlie_test_core.dir/core/test_crossing.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_core.dir/core/test_crossing.cpp.o.d"
  "/root/repo/tests/core/test_delay_model.cpp" "tests/CMakeFiles/charlie_test_core.dir/core/test_delay_model.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_core.dir/core/test_delay_model.cpp.o.d"
  "/root/repo/tests/core/test_delay_surface.cpp" "tests/CMakeFiles/charlie_test_core.dir/core/test_delay_surface.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_core.dir/core/test_delay_surface.cpp.o.d"
  "/root/repo/tests/core/test_gate_delay.cpp" "tests/CMakeFiles/charlie_test_core.dir/core/test_gate_delay.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_core.dir/core/test_gate_delay.cpp.o.d"
  "/root/repo/tests/core/test_gate_modes.cpp" "tests/CMakeFiles/charlie_test_core.dir/core/test_gate_modes.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_core.dir/core/test_gate_modes.cpp.o.d"
  "/root/repo/tests/core/test_mode_tables.cpp" "tests/CMakeFiles/charlie_test_core.dir/core/test_mode_tables.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_core.dir/core/test_mode_tables.cpp.o.d"
  "/root/repo/tests/core/test_modes.cpp" "tests/CMakeFiles/charlie_test_core.dir/core/test_modes.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_core.dir/core/test_modes.cpp.o.d"
  "/root/repo/tests/core/test_parametrize.cpp" "tests/CMakeFiles/charlie_test_core.dir/core/test_parametrize.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_core.dir/core/test_parametrize.cpp.o.d"
  "/root/repo/tests/core/test_trajectory.cpp" "tests/CMakeFiles/charlie_test_core.dir/core/test_trajectory.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_core.dir/core/test_trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/charlie_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_fit.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_ode.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_spice.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_waveform.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
