# Empty dependencies file for charlie_test_core.
# This may be replaced when dependencies are built.
