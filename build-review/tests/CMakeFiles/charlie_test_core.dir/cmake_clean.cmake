file(REMOVE_RECURSE
  "CMakeFiles/charlie_test_core.dir/core/test_charlie_delays.cpp.o"
  "CMakeFiles/charlie_test_core.dir/core/test_charlie_delays.cpp.o.d"
  "CMakeFiles/charlie_test_core.dir/core/test_crossing.cpp.o"
  "CMakeFiles/charlie_test_core.dir/core/test_crossing.cpp.o.d"
  "CMakeFiles/charlie_test_core.dir/core/test_delay_model.cpp.o"
  "CMakeFiles/charlie_test_core.dir/core/test_delay_model.cpp.o.d"
  "CMakeFiles/charlie_test_core.dir/core/test_delay_surface.cpp.o"
  "CMakeFiles/charlie_test_core.dir/core/test_delay_surface.cpp.o.d"
  "CMakeFiles/charlie_test_core.dir/core/test_gate_delay.cpp.o"
  "CMakeFiles/charlie_test_core.dir/core/test_gate_delay.cpp.o.d"
  "CMakeFiles/charlie_test_core.dir/core/test_gate_modes.cpp.o"
  "CMakeFiles/charlie_test_core.dir/core/test_gate_modes.cpp.o.d"
  "CMakeFiles/charlie_test_core.dir/core/test_mode_tables.cpp.o"
  "CMakeFiles/charlie_test_core.dir/core/test_mode_tables.cpp.o.d"
  "CMakeFiles/charlie_test_core.dir/core/test_modes.cpp.o"
  "CMakeFiles/charlie_test_core.dir/core/test_modes.cpp.o.d"
  "CMakeFiles/charlie_test_core.dir/core/test_parametrize.cpp.o"
  "CMakeFiles/charlie_test_core.dir/core/test_parametrize.cpp.o.d"
  "CMakeFiles/charlie_test_core.dir/core/test_trajectory.cpp.o"
  "CMakeFiles/charlie_test_core.dir/core/test_trajectory.cpp.o.d"
  "charlie_test_core"
  "charlie_test_core.pdb"
  "charlie_test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlie_test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
