# Empty compiler generated dependencies file for charlie_test_spice.
# This may be replaced when dependencies are built.
