file(REMOVE_RECURSE
  "CMakeFiles/charlie_test_spice.dir/spice/test_cells.cpp.o"
  "CMakeFiles/charlie_test_spice.dir/spice/test_cells.cpp.o.d"
  "CMakeFiles/charlie_test_spice.dir/spice/test_characterize.cpp.o"
  "CMakeFiles/charlie_test_spice.dir/spice/test_characterize.cpp.o.d"
  "CMakeFiles/charlie_test_spice.dir/spice/test_dcop.cpp.o"
  "CMakeFiles/charlie_test_spice.dir/spice/test_dcop.cpp.o.d"
  "CMakeFiles/charlie_test_spice.dir/spice/test_linear_circuits.cpp.o"
  "CMakeFiles/charlie_test_spice.dir/spice/test_linear_circuits.cpp.o.d"
  "CMakeFiles/charlie_test_spice.dir/spice/test_lu.cpp.o"
  "CMakeFiles/charlie_test_spice.dir/spice/test_lu.cpp.o.d"
  "CMakeFiles/charlie_test_spice.dir/spice/test_mosfet.cpp.o"
  "CMakeFiles/charlie_test_spice.dir/spice/test_mosfet.cpp.o.d"
  "CMakeFiles/charlie_test_spice.dir/spice/test_transient.cpp.o"
  "CMakeFiles/charlie_test_spice.dir/spice/test_transient.cpp.o.d"
  "charlie_test_spice"
  "charlie_test_spice.pdb"
  "charlie_test_spice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlie_test_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
