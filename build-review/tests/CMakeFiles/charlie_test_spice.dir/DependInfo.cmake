
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spice/test_cells.cpp" "tests/CMakeFiles/charlie_test_spice.dir/spice/test_cells.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_spice.dir/spice/test_cells.cpp.o.d"
  "/root/repo/tests/spice/test_characterize.cpp" "tests/CMakeFiles/charlie_test_spice.dir/spice/test_characterize.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_spice.dir/spice/test_characterize.cpp.o.d"
  "/root/repo/tests/spice/test_dcop.cpp" "tests/CMakeFiles/charlie_test_spice.dir/spice/test_dcop.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_spice.dir/spice/test_dcop.cpp.o.d"
  "/root/repo/tests/spice/test_linear_circuits.cpp" "tests/CMakeFiles/charlie_test_spice.dir/spice/test_linear_circuits.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_spice.dir/spice/test_linear_circuits.cpp.o.d"
  "/root/repo/tests/spice/test_lu.cpp" "tests/CMakeFiles/charlie_test_spice.dir/spice/test_lu.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_spice.dir/spice/test_lu.cpp.o.d"
  "/root/repo/tests/spice/test_mosfet.cpp" "tests/CMakeFiles/charlie_test_spice.dir/spice/test_mosfet.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_spice.dir/spice/test_mosfet.cpp.o.d"
  "/root/repo/tests/spice/test_transient.cpp" "tests/CMakeFiles/charlie_test_spice.dir/spice/test_transient.cpp.o" "gcc" "tests/CMakeFiles/charlie_test_spice.dir/spice/test_transient.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/charlie_sim.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_core.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_fit.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_ode.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_spice.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_waveform.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
