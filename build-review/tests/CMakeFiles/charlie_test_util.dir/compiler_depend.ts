# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for charlie_test_util.
