# Empty compiler generated dependencies file for charlie_test_util.
# This may be replaced when dependencies are built.
