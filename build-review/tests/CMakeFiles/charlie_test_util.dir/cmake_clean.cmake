file(REMOVE_RECURSE
  "CMakeFiles/charlie_test_util.dir/util/test_cli.cpp.o"
  "CMakeFiles/charlie_test_util.dir/util/test_cli.cpp.o.d"
  "CMakeFiles/charlie_test_util.dir/util/test_csv_table.cpp.o"
  "CMakeFiles/charlie_test_util.dir/util/test_csv_table.cpp.o.d"
  "CMakeFiles/charlie_test_util.dir/util/test_math.cpp.o"
  "CMakeFiles/charlie_test_util.dir/util/test_math.cpp.o.d"
  "CMakeFiles/charlie_test_util.dir/util/test_rng.cpp.o"
  "CMakeFiles/charlie_test_util.dir/util/test_rng.cpp.o.d"
  "CMakeFiles/charlie_test_util.dir/util/test_thread_pool.cpp.o"
  "CMakeFiles/charlie_test_util.dir/util/test_thread_pool.cpp.o.d"
  "CMakeFiles/charlie_test_util.dir/util/test_units.cpp.o"
  "CMakeFiles/charlie_test_util.dir/util/test_units.cpp.o.d"
  "charlie_test_util"
  "charlie_test_util.pdb"
  "charlie_test_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlie_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
