# Empty dependencies file for charlie_core.
# This may be replaced when dependencies are built.
