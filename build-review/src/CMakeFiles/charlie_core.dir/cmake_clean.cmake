file(REMOVE_RECURSE
  "CMakeFiles/charlie_core.dir/core/charlie_delays.cpp.o"
  "CMakeFiles/charlie_core.dir/core/charlie_delays.cpp.o.d"
  "CMakeFiles/charlie_core.dir/core/crossing.cpp.o"
  "CMakeFiles/charlie_core.dir/core/crossing.cpp.o.d"
  "CMakeFiles/charlie_core.dir/core/delay_model.cpp.o"
  "CMakeFiles/charlie_core.dir/core/delay_model.cpp.o.d"
  "CMakeFiles/charlie_core.dir/core/delay_surface.cpp.o"
  "CMakeFiles/charlie_core.dir/core/delay_surface.cpp.o.d"
  "CMakeFiles/charlie_core.dir/core/gate_delay.cpp.o"
  "CMakeFiles/charlie_core.dir/core/gate_delay.cpp.o.d"
  "CMakeFiles/charlie_core.dir/core/gate_mode_tables.cpp.o"
  "CMakeFiles/charlie_core.dir/core/gate_mode_tables.cpp.o.d"
  "CMakeFiles/charlie_core.dir/core/gate_modes.cpp.o"
  "CMakeFiles/charlie_core.dir/core/gate_modes.cpp.o.d"
  "CMakeFiles/charlie_core.dir/core/gate_parametrize.cpp.o"
  "CMakeFiles/charlie_core.dir/core/gate_parametrize.cpp.o.d"
  "CMakeFiles/charlie_core.dir/core/gate_params.cpp.o"
  "CMakeFiles/charlie_core.dir/core/gate_params.cpp.o.d"
  "CMakeFiles/charlie_core.dir/core/modes.cpp.o"
  "CMakeFiles/charlie_core.dir/core/modes.cpp.o.d"
  "CMakeFiles/charlie_core.dir/core/nor_params.cpp.o"
  "CMakeFiles/charlie_core.dir/core/nor_params.cpp.o.d"
  "CMakeFiles/charlie_core.dir/core/parametrize.cpp.o"
  "CMakeFiles/charlie_core.dir/core/parametrize.cpp.o.d"
  "CMakeFiles/charlie_core.dir/core/trajectory.cpp.o"
  "CMakeFiles/charlie_core.dir/core/trajectory.cpp.o.d"
  "libcharlie_core.a"
  "libcharlie_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlie_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
