file(REMOVE_RECURSE
  "libcharlie_core.a"
)
