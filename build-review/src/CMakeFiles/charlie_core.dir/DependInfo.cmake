
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/charlie_delays.cpp" "src/CMakeFiles/charlie_core.dir/core/charlie_delays.cpp.o" "gcc" "src/CMakeFiles/charlie_core.dir/core/charlie_delays.cpp.o.d"
  "/root/repo/src/core/crossing.cpp" "src/CMakeFiles/charlie_core.dir/core/crossing.cpp.o" "gcc" "src/CMakeFiles/charlie_core.dir/core/crossing.cpp.o.d"
  "/root/repo/src/core/delay_model.cpp" "src/CMakeFiles/charlie_core.dir/core/delay_model.cpp.o" "gcc" "src/CMakeFiles/charlie_core.dir/core/delay_model.cpp.o.d"
  "/root/repo/src/core/delay_surface.cpp" "src/CMakeFiles/charlie_core.dir/core/delay_surface.cpp.o" "gcc" "src/CMakeFiles/charlie_core.dir/core/delay_surface.cpp.o.d"
  "/root/repo/src/core/gate_delay.cpp" "src/CMakeFiles/charlie_core.dir/core/gate_delay.cpp.o" "gcc" "src/CMakeFiles/charlie_core.dir/core/gate_delay.cpp.o.d"
  "/root/repo/src/core/gate_mode_tables.cpp" "src/CMakeFiles/charlie_core.dir/core/gate_mode_tables.cpp.o" "gcc" "src/CMakeFiles/charlie_core.dir/core/gate_mode_tables.cpp.o.d"
  "/root/repo/src/core/gate_modes.cpp" "src/CMakeFiles/charlie_core.dir/core/gate_modes.cpp.o" "gcc" "src/CMakeFiles/charlie_core.dir/core/gate_modes.cpp.o.d"
  "/root/repo/src/core/gate_parametrize.cpp" "src/CMakeFiles/charlie_core.dir/core/gate_parametrize.cpp.o" "gcc" "src/CMakeFiles/charlie_core.dir/core/gate_parametrize.cpp.o.d"
  "/root/repo/src/core/gate_params.cpp" "src/CMakeFiles/charlie_core.dir/core/gate_params.cpp.o" "gcc" "src/CMakeFiles/charlie_core.dir/core/gate_params.cpp.o.d"
  "/root/repo/src/core/modes.cpp" "src/CMakeFiles/charlie_core.dir/core/modes.cpp.o" "gcc" "src/CMakeFiles/charlie_core.dir/core/modes.cpp.o.d"
  "/root/repo/src/core/nor_params.cpp" "src/CMakeFiles/charlie_core.dir/core/nor_params.cpp.o" "gcc" "src/CMakeFiles/charlie_core.dir/core/nor_params.cpp.o.d"
  "/root/repo/src/core/parametrize.cpp" "src/CMakeFiles/charlie_core.dir/core/parametrize.cpp.o" "gcc" "src/CMakeFiles/charlie_core.dir/core/parametrize.cpp.o.d"
  "/root/repo/src/core/trajectory.cpp" "src/CMakeFiles/charlie_core.dir/core/trajectory.cpp.o" "gcc" "src/CMakeFiles/charlie_core.dir/core/trajectory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/charlie_fit.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_ode.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_util.dir/DependInfo.cmake"
  "/root/repo/build-review/src/CMakeFiles/charlie_waveform.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
