# Empty dependencies file for charlie_ode.
# This may be replaced when dependencies are built.
