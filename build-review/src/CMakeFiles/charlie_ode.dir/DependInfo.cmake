
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ode/eigen2.cpp" "src/CMakeFiles/charlie_ode.dir/ode/eigen2.cpp.o" "gcc" "src/CMakeFiles/charlie_ode.dir/ode/eigen2.cpp.o.d"
  "/root/repo/src/ode/expm.cpp" "src/CMakeFiles/charlie_ode.dir/ode/expm.cpp.o" "gcc" "src/CMakeFiles/charlie_ode.dir/ode/expm.cpp.o.d"
  "/root/repo/src/ode/linear_ode2.cpp" "src/CMakeFiles/charlie_ode.dir/ode/linear_ode2.cpp.o" "gcc" "src/CMakeFiles/charlie_ode.dir/ode/linear_ode2.cpp.o.d"
  "/root/repo/src/ode/mat2.cpp" "src/CMakeFiles/charlie_ode.dir/ode/mat2.cpp.o" "gcc" "src/CMakeFiles/charlie_ode.dir/ode/mat2.cpp.o.d"
  "/root/repo/src/ode/piecewise.cpp" "src/CMakeFiles/charlie_ode.dir/ode/piecewise.cpp.o" "gcc" "src/CMakeFiles/charlie_ode.dir/ode/piecewise.cpp.o.d"
  "/root/repo/src/ode/rk45.cpp" "src/CMakeFiles/charlie_ode.dir/ode/rk45.cpp.o" "gcc" "src/CMakeFiles/charlie_ode.dir/ode/rk45.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/charlie_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
