file(REMOVE_RECURSE
  "libcharlie_ode.a"
)
