file(REMOVE_RECURSE
  "CMakeFiles/charlie_ode.dir/ode/eigen2.cpp.o"
  "CMakeFiles/charlie_ode.dir/ode/eigen2.cpp.o.d"
  "CMakeFiles/charlie_ode.dir/ode/expm.cpp.o"
  "CMakeFiles/charlie_ode.dir/ode/expm.cpp.o.d"
  "CMakeFiles/charlie_ode.dir/ode/linear_ode2.cpp.o"
  "CMakeFiles/charlie_ode.dir/ode/linear_ode2.cpp.o.d"
  "CMakeFiles/charlie_ode.dir/ode/mat2.cpp.o"
  "CMakeFiles/charlie_ode.dir/ode/mat2.cpp.o.d"
  "CMakeFiles/charlie_ode.dir/ode/piecewise.cpp.o"
  "CMakeFiles/charlie_ode.dir/ode/piecewise.cpp.o.d"
  "CMakeFiles/charlie_ode.dir/ode/rk45.cpp.o"
  "CMakeFiles/charlie_ode.dir/ode/rk45.cpp.o.d"
  "libcharlie_ode.a"
  "libcharlie_ode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlie_ode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
