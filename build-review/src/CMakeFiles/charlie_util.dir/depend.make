# Empty dependencies file for charlie_util.
# This may be replaced when dependencies are built.
