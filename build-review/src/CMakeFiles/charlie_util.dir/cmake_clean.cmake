file(REMOVE_RECURSE
  "CMakeFiles/charlie_util.dir/util/cli.cpp.o"
  "CMakeFiles/charlie_util.dir/util/cli.cpp.o.d"
  "CMakeFiles/charlie_util.dir/util/csv.cpp.o"
  "CMakeFiles/charlie_util.dir/util/csv.cpp.o.d"
  "CMakeFiles/charlie_util.dir/util/error.cpp.o"
  "CMakeFiles/charlie_util.dir/util/error.cpp.o.d"
  "CMakeFiles/charlie_util.dir/util/math.cpp.o"
  "CMakeFiles/charlie_util.dir/util/math.cpp.o.d"
  "CMakeFiles/charlie_util.dir/util/rng.cpp.o"
  "CMakeFiles/charlie_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/charlie_util.dir/util/table.cpp.o"
  "CMakeFiles/charlie_util.dir/util/table.cpp.o.d"
  "CMakeFiles/charlie_util.dir/util/thread_pool.cpp.o"
  "CMakeFiles/charlie_util.dir/util/thread_pool.cpp.o.d"
  "CMakeFiles/charlie_util.dir/util/units.cpp.o"
  "CMakeFiles/charlie_util.dir/util/units.cpp.o.d"
  "libcharlie_util.a"
  "libcharlie_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlie_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
