file(REMOVE_RECURSE
  "libcharlie_util.a"
)
