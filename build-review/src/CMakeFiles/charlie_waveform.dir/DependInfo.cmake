
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/waveform/digital_trace.cpp" "src/CMakeFiles/charlie_waveform.dir/waveform/digital_trace.cpp.o" "gcc" "src/CMakeFiles/charlie_waveform.dir/waveform/digital_trace.cpp.o.d"
  "/root/repo/src/waveform/digitize.cpp" "src/CMakeFiles/charlie_waveform.dir/waveform/digitize.cpp.o" "gcc" "src/CMakeFiles/charlie_waveform.dir/waveform/digitize.cpp.o.d"
  "/root/repo/src/waveform/edges.cpp" "src/CMakeFiles/charlie_waveform.dir/waveform/edges.cpp.o" "gcc" "src/CMakeFiles/charlie_waveform.dir/waveform/edges.cpp.o.d"
  "/root/repo/src/waveform/generator.cpp" "src/CMakeFiles/charlie_waveform.dir/waveform/generator.cpp.o" "gcc" "src/CMakeFiles/charlie_waveform.dir/waveform/generator.cpp.o.d"
  "/root/repo/src/waveform/metrics.cpp" "src/CMakeFiles/charlie_waveform.dir/waveform/metrics.cpp.o" "gcc" "src/CMakeFiles/charlie_waveform.dir/waveform/metrics.cpp.o.d"
  "/root/repo/src/waveform/waveform.cpp" "src/CMakeFiles/charlie_waveform.dir/waveform/waveform.cpp.o" "gcc" "src/CMakeFiles/charlie_waveform.dir/waveform/waveform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/charlie_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
