# Empty dependencies file for charlie_waveform.
# This may be replaced when dependencies are built.
