file(REMOVE_RECURSE
  "libcharlie_waveform.a"
)
