file(REMOVE_RECURSE
  "CMakeFiles/charlie_waveform.dir/waveform/digital_trace.cpp.o"
  "CMakeFiles/charlie_waveform.dir/waveform/digital_trace.cpp.o.d"
  "CMakeFiles/charlie_waveform.dir/waveform/digitize.cpp.o"
  "CMakeFiles/charlie_waveform.dir/waveform/digitize.cpp.o.d"
  "CMakeFiles/charlie_waveform.dir/waveform/edges.cpp.o"
  "CMakeFiles/charlie_waveform.dir/waveform/edges.cpp.o.d"
  "CMakeFiles/charlie_waveform.dir/waveform/generator.cpp.o"
  "CMakeFiles/charlie_waveform.dir/waveform/generator.cpp.o.d"
  "CMakeFiles/charlie_waveform.dir/waveform/metrics.cpp.o"
  "CMakeFiles/charlie_waveform.dir/waveform/metrics.cpp.o.d"
  "CMakeFiles/charlie_waveform.dir/waveform/waveform.cpp.o"
  "CMakeFiles/charlie_waveform.dir/waveform/waveform.cpp.o.d"
  "libcharlie_waveform.a"
  "libcharlie_waveform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlie_waveform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
