file(REMOVE_RECURSE
  "libcharlie_fit.a"
)
