file(REMOVE_RECURSE
  "CMakeFiles/charlie_fit.dir/fit/brent_min.cpp.o"
  "CMakeFiles/charlie_fit.dir/fit/brent_min.cpp.o.d"
  "CMakeFiles/charlie_fit.dir/fit/brent_root.cpp.o"
  "CMakeFiles/charlie_fit.dir/fit/brent_root.cpp.o.d"
  "CMakeFiles/charlie_fit.dir/fit/levenberg_marquardt.cpp.o"
  "CMakeFiles/charlie_fit.dir/fit/levenberg_marquardt.cpp.o.d"
  "CMakeFiles/charlie_fit.dir/fit/nelder_mead.cpp.o"
  "CMakeFiles/charlie_fit.dir/fit/nelder_mead.cpp.o.d"
  "CMakeFiles/charlie_fit.dir/fit/param_transform.cpp.o"
  "CMakeFiles/charlie_fit.dir/fit/param_transform.cpp.o.d"
  "libcharlie_fit.a"
  "libcharlie_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/charlie_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
