# Empty compiler generated dependencies file for charlie_fit.
# This may be replaced when dependencies are built.
