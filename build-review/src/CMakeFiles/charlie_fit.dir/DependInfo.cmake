
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fit/brent_min.cpp" "src/CMakeFiles/charlie_fit.dir/fit/brent_min.cpp.o" "gcc" "src/CMakeFiles/charlie_fit.dir/fit/brent_min.cpp.o.d"
  "/root/repo/src/fit/brent_root.cpp" "src/CMakeFiles/charlie_fit.dir/fit/brent_root.cpp.o" "gcc" "src/CMakeFiles/charlie_fit.dir/fit/brent_root.cpp.o.d"
  "/root/repo/src/fit/levenberg_marquardt.cpp" "src/CMakeFiles/charlie_fit.dir/fit/levenberg_marquardt.cpp.o" "gcc" "src/CMakeFiles/charlie_fit.dir/fit/levenberg_marquardt.cpp.o.d"
  "/root/repo/src/fit/nelder_mead.cpp" "src/CMakeFiles/charlie_fit.dir/fit/nelder_mead.cpp.o" "gcc" "src/CMakeFiles/charlie_fit.dir/fit/nelder_mead.cpp.o.d"
  "/root/repo/src/fit/param_transform.cpp" "src/CMakeFiles/charlie_fit.dir/fit/param_transform.cpp.o" "gcc" "src/CMakeFiles/charlie_fit.dir/fit/param_transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-review/src/CMakeFiles/charlie_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
